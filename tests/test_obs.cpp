// obs::MetricsRegistry: arm gating, histogram edge semantics, pinned
// snapshot JSON shape, registry determinism across identical runs, the
// enabled ≡ disabled bit-identity contract across policy × shards ×
// replay_stream, a concurrent-increment hammer (the TSan obs lane filters on
// the ObsRegistryHammer name), and the declarative CLI knob table.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/replay_stream.hpp"
#include "core/sharded_engine.hpp"
#include "obs/metrics.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace r4ncl::obs {
namespace {

/// Restores the process-wide registry to its disarmed, zeroed default so
/// tests that arm metrics() cannot leak state into later tests (or into the
/// bit-identity contracts other test binaries pin).
struct GlobalRegistryGuard {
  GlobalRegistryGuard() {
    metrics().set_armed(false);
    metrics().set_trace(true);
    metrics().reset_values();
  }
  ~GlobalRegistryGuard() {
    metrics().set_armed(false);
    metrics().set_trace(true);
    metrics().reset_values();
  }
};

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

std::size_t probe_entry_bytes(std::size_t T, std::size_t C) {
  core::LatentReplayBuffer probe({.ratio = 1}, T);
  probe.add(random_raster(T, C, 0.3, 1), 0);
  return probe.memory_bytes();
}

constexpr core::ReplayPolicy kAllPolicies[] = {
    core::ReplayPolicy::kFifo, core::ReplayPolicy::kReservoir,
    core::ReplayPolicy::kClassBalanced, core::ReplayPolicy::kLowImportance,
    core::ReplayPolicy::kImportanceClassBalanced};

/// One deterministic add/report/shrink/draw workload.  `use_stream` flips
/// the read side between materialized sample() and the streaming cursor —
/// the replay_stream axis of the bit-identity matrix.
struct RunOutcome {
  data::Dataset final_state;
  data::Dataset drawn;
  std::size_t evictions = 0;
  std::size_t seen = 0;
};

RunOutcome drive_engine(core::ReplayPolicy policy, std::size_t shards, bool use_stream) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  const core::ReplayBufferConfig budget{.capacity_bytes = 9 * entry, .policy = policy,
                                        .seed = 0xfee1600dULL};
  core::ShardedReplayEngine eng({.ratio = 1}, 8, budget, {.shards = shards});
  for (int i = 0; i < 60; ++i) {
    (void)eng.add(random_raster(8, 16, 0.1 + 0.012 * (i % 50), 7000 + i), i % 5);
    if (core::is_importance_policy(policy) && i % 7 == 0 && eng.size() > 2) {
      eng.report_outcome(i % eng.size(), 0.25f + 0.01f * (i % 13));
    }
  }
  eng.set_capacity(5 * entry);
  for (int i = 60; i < 80; ++i) {
    (void)eng.add(random_raster(8, 16, 0.1 + 0.012 * (i % 50), 7000 + i), i % 5);
  }

  RunOutcome out;
  Rng draw_rng(42);
  if (use_stream) {
    core::ReplayStream stream = eng.stream(4, draw_rng, 2);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const data::Sample& s = stream.fetch(i);
      out.drawn.push_back({s.raster, s.label});
    }
  } else {
    out.drawn = eng.sample(4, draw_rng);
  }
  out.final_state = eng.materialize();
  out.evictions = eng.evictions();
  out.seen = eng.stream_seen();
  return out;
}

void expect_identical(const data::Dataset& a, const data::Dataset& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << what << " entry " << i;
    ASSERT_EQ(a[i].raster.bits.size(), b[i].raster.bits.size()) << what << " entry " << i;
    EXPECT_TRUE(std::equal(a[i].raster.bits.begin(), a[i].raster.bits.end(),
                           b[i].raster.bits.begin()))
        << what << " entry " << i << " payload differs";
  }
}

// ---------------------------------------------------------------------------
// Arm gating + handle mechanics
// ---------------------------------------------------------------------------

TEST(ObsRegistry, DisarmedWritesAreNoOps) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", kLatencyEdgesSeconds);
  c.add(3);
  g.set(1.25);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_armed(true);
  c.add(3);
  g.set(1.25);
  h.record(0.5);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(g.value(), 1.25);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsRegistry, HandlesAreStableAndSharedByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same");
  // Force rebalancing pressure: many registrations after the first handle.
  for (int i = 0; i < 200; ++i) {
    (void)reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("same"));
}

TEST(ObsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  reg.set_armed(true);
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h", kLatencyEdgesSeconds);
  c.add(7);
  h.record(1e-3);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(&c, &reg.counter("c"));  // same node survives the reset
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, TraceSpanRecordsOnlyWhenTraceArmed) {
  MetricsRegistry reg;
  reg.set_armed(true);
  reg.set_trace(false);
  { TraceSpan span(reg, "span.seconds"); }
  // trace off: the span never registered (nor recorded into) the histogram.
  EXPECT_EQ(reg.histogram("span.seconds", kLatencyEdgesSeconds).count(), 0u);
  reg.set_trace(true);
  { TraceSpan span(reg, "span.seconds"); }
  EXPECT_EQ(reg.histogram("span.seconds", kLatencyEdgesSeconds).count(), 1u);
}

// ---------------------------------------------------------------------------
// Histogram bucket semantics
// ---------------------------------------------------------------------------

TEST(ObsRegistry, HistogramBucketEdgesArePinned) {
  MetricsRegistry reg;
  reg.set_armed(true);
  constexpr double edges[] = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("h", edges);
  // Bucket i holds v <= edges[i]; the last bucket is overflow.
  EXPECT_EQ(h.bucket_of(-5.0), 0u);
  EXPECT_EQ(h.bucket_of(1.0), 0u);    // edge values land in their own bucket
  EXPECT_EQ(h.bucket_of(1.0001), 1u);
  EXPECT_EQ(h.bucket_of(10.0), 1u);
  EXPECT_EQ(h.bucket_of(100.0), 2u);
  EXPECT_EQ(h.bucket_of(100.0001), 3u);  // overflow bucket

  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0}) h.record(v);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 556.5);
}

TEST(ObsRegistry, HistogramEdgeValidation) {
  MetricsRegistry reg;
  constexpr double good[] = {1.0, 2.0};
  constexpr double unsorted[] = {2.0, 1.0};
  constexpr double different[] = {1.0, 3.0};
  EXPECT_THROW((void)reg.histogram("bad", std::span<const double>{}), Error);
  EXPECT_THROW((void)reg.histogram("bad", unsorted), Error);
  (void)reg.histogram("h", good);
  EXPECT_NO_THROW((void)reg.histogram("h", good));
  EXPECT_THROW((void)reg.histogram("h", different), Error);
}

// ---------------------------------------------------------------------------
// Snapshot shape (pinned) + determinism
// ---------------------------------------------------------------------------

TEST(ObsRegistry, SnapshotJsonShapeIsPinned) {
  MetricsRegistry reg;
  reg.set_armed(true);
  constexpr double edges[] = {1.0, 2.0};
  reg.counter("b.count").add(3);
  reg.counter("a.count").add(1);  // registered later, serialized first
  reg.gauge("mem.bytes").set(2.5);
  Histogram& h = reg.histogram("lat", edges);
  h.record(0.5);
  h.record(3.0);
  const std::string expected =
      "{\n"
      "  \"schema\": \"r4ncl-metrics-v1\",\n"
      "  \"counters\": {\n"
      "    \"a.count\": 1,\n"
      "    \"b.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"mem.bytes\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"lat\": {\"edges\": [1, 2], \"counts\": [1, 0, 1], \"sum\": 3.5, \"count\": 2}\n"
      "  }\n"
      "}";
  EXPECT_EQ(reg.snapshot_json(), expected);
}

TEST(ObsRegistry, EmptySnapshotShapeIsPinned) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.snapshot_json(),
            "{\n  \"schema\": \"r4ncl-metrics-v1\",\n  \"counters\": {},\n"
            "  \"gauges\": {},\n  \"histograms\": {}\n}");
}

TEST(ObsRegistry, WriteSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.set_armed(true);
  reg.counter("c").add(2);
  const std::string path = ::testing::TempDir() + "obs_snapshot.json";
  write_snapshot(reg, path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(4096, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_EQ(contents, reg.snapshot_json() + "\n");
}

TEST(ObsRegistry, CountersDeterministicAcrossIdenticalRuns) {
  GlobalRegistryGuard guard;
  metrics().set_armed(true);
  std::string snapshots[2];
  for (int run = 0; run < 2; ++run) {
    metrics().reset_values();
    (void)drive_engine(core::ReplayPolicy::kClassBalanced, 3, false);
    const std::string full = metrics().snapshot_json();
    // Counters (and bucket *counts*) are the deterministic slice; histogram
    // sums carry wall-clock, so compare up to the gauges section only after
    // dropping nothing — counters end where "gauges" begins.
    snapshots[run] = full.substr(0, full.find("\"gauges\""));
    ASSERT_NE(snapshots[run].find("replay_engine.adds"), std::string::npos);
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
}

// ---------------------------------------------------------------------------
// The observation-only contract: enabled ≡ disabled, bit for bit
// ---------------------------------------------------------------------------

TEST(ObsRegistry, EnabledRunsBitIdenticalToDisabledAcrossPolicyShardsStream) {
  GlobalRegistryGuard guard;
  for (const core::ReplayPolicy policy : kAllPolicies) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
      for (const bool use_stream : {false, true}) {
        const std::string what = std::string(core::to_string(policy)) + "/shards" +
                                 std::to_string(shards) +
                                 (use_stream ? "/stream" : "/sample");
        metrics().set_armed(false);
        metrics().reset_values();
        const RunOutcome off = drive_engine(policy, shards, use_stream);
        metrics().set_armed(true);
        metrics().reset_values();
        const RunOutcome on = drive_engine(policy, shards, use_stream);
        EXPECT_EQ(off.evictions, on.evictions) << what;
        EXPECT_EQ(off.seen, on.seen) << what;
        expect_identical(off.final_state, on.final_state, what.c_str());
        expect_identical(off.drawn, on.drawn, (what + " draw").c_str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency hammer (the TSan obs lane runs exactly this test by name)
// ---------------------------------------------------------------------------

TEST(ObsRegistryHammer, ConcurrentRegistrationAndIncrements) {
  MetricsRegistry reg;
  reg.set_armed(true);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  Counter& shared = reg.counter("hammer.shared");
  Histogram& hist = reg.histogram("hammer.hist", kLatencyEdgesSeconds);
  std::atomic<int> ready{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // Mix shared-handle increments, per-thread registrations (exercising
      // the registry mutex against concurrent lookups) and lock-free
      // histogram records.
      Counter& mine = reg.counter("hammer.thread." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared.add(1);
        mine.add(1);
        hist.record(1e-6 * static_cast<double>(i % 1000));
        if (i % 512 == 0) {
          (void)reg.counter("hammer.rotating." + std::to_string(i % 7));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("hammer.thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
}

// ---------------------------------------------------------------------------
// Declarative CLI knob table + telemetry knobs
// ---------------------------------------------------------------------------

TEST(ObsCliKnobs, TableIsSortedUniqueAndFullyDocumented) {
  const std::span<const core::CliKnob> knobs = core::standard_cli_knobs();
  ASSERT_FALSE(knobs.empty());
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    EXPECT_FALSE(knobs[i].name.empty());
    EXPECT_FALSE(knobs[i].help.empty()) << "knob '" << knobs[i].name << "' lacks help text";
    if (i > 0) {
      EXPECT_LT(knobs[i - 1].name, knobs[i].name)
          << "knob table not sorted/unique at '" << knobs[i].name << "'";
    }
  }
  // The key vocabulary derives from the table — one registration per knob.
  const std::vector<std::string_view> keys = core::standard_cli_keys();
  ASSERT_EQ(keys.size(), knobs.size());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys[i], knobs[i].name);
}

TEST(ObsCliKnobs, TelemetryKnobsAreRegisteredOnce) {
  const auto knobs = core::standard_cli_knobs();
  const auto find = [&](std::string_view name) -> const core::CliKnob* {
    for (const core::CliKnob& k : knobs) {
      if (k.name == name) return &k;
    }
    return nullptr;
  };
  const core::CliKnob* metrics_out = find("metrics_out");
  const core::CliKnob* trace = find("trace");
  ASSERT_NE(metrics_out, nullptr);
  ASSERT_NE(trace, nullptr);
  // Telemetry knobs are read by init_metrics, not the method override pass.
  EXPECT_EQ(metrics_out->apply, nullptr);
  EXPECT_EQ(trace->apply, nullptr);
  // Replay-method knobs keep their override functions.
  const core::CliKnob* budget = find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_NE(budget->apply, nullptr);
}

TEST(ObsCliKnobs, UnknownKeyErrorStillListsSortedVocabulary) {
  Config cfg;
  cfg.set("metrics_typo", "x");
  try {
    core::validate_standard_keys(cfg);
    FAIL() << "expected unknown-key error";
  } catch (const Error& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("metrics_typo"), std::string::npos);
    // The sorted valid-key list now includes the telemetry knobs.
    const std::size_t metrics_at = msg.find("metrics_out");
    const std::size_t trace_at = msg.find("trace");
    ASSERT_NE(metrics_at, std::string::npos);
    ASSERT_NE(trace_at, std::string::npos);
    EXPECT_LT(metrics_at, trace_at);
  }
}

TEST(ObsCliKnobs, InitMetricsArmsOnlyOnExplicitRequest) {
  GlobalRegistryGuard guard;
  {
    const Config cfg;
    const core::MetricsOptions opts = core::init_metrics(cfg);
    EXPECT_TRUE(opts.out_path.empty());
    EXPECT_FALSE(metrics().armed());
  }
  {
    Config cfg;
    cfg.set("metrics_out", "snapshot.json");
    const core::MetricsOptions opts = core::init_metrics(cfg);
    EXPECT_EQ(opts.out_path, "snapshot.json");
    EXPECT_TRUE(metrics().armed());
    EXPECT_TRUE(metrics().trace_armed());
  }
  {
    Config cfg;
    cfg.set("metrics_out", "snapshot.json");
    cfg.set("trace", "0");
    (void)core::init_metrics(cfg);
    EXPECT_TRUE(metrics().armed());
    EXPECT_FALSE(metrics().trace_armed());
  }
}

}  // namespace
}  // namespace r4ncl::obs
