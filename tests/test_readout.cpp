// Leaky readout: integration math, backward consistency, stats.
#include <gtest/gtest.h>

#include "snn/readout.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

TEST(Readout, SingleSpikeLogitGeometry) {
  // One spike at t=0, weight w, β: logits = w·(1 + β + β²)/T over T=3 steps.
  Rng rng(1);
  LeakyReadout ro(1, 1, 0.5f, rng);
  ro.w()(0) = 2.0f;
  Tensor x(3, 1, 1);
  x(0, 0, 0) = 1.0f;
  const Tensor logits = ro.forward(x, nullptr);
  EXPECT_NEAR(logits(0, 0), 2.0f * (1.0f + 0.5f + 0.25f) / 3.0f, 1e-6);
}

TEST(Readout, LaterSpikesContributeLess) {
  Rng rng(2);
  LeakyReadout ro(1, 1, 0.9f, rng);
  ro.w()(0) = 1.0f;
  Tensor early(5, 1, 1), late(5, 1, 1);
  early(0, 0, 0) = 1.0f;
  late(4, 0, 0) = 1.0f;
  EXPECT_GT(ro.forward(early, nullptr)(0, 0), ro.forward(late, nullptr)(0, 0));
}

TEST(Readout, BackwardMatchesFiniteDifference) {
  Rng rng(3);
  LeakyReadout ro(4, 3, 0.8f, rng);
  Tensor x(5, 2, 4);
  Rng data(4);
  for (auto& v : x.values()) v = data.bernoulli(0.5) ? 1.0f : 0.0f;
  const std::int32_t labels[] = {0, 2};

  auto loss_fn = [&]() {
    const Tensor logits = ro.forward(x, nullptr);
    return softmax_cross_entropy(logits, labels, nullptr);
  };

  const Tensor logits = ro.forward(x, nullptr);
  Tensor d_logits(2, 3);
  (void)softmax_cross_entropy(logits, labels, &d_logits);
  ro.zero_grad();
  Tensor d_in(5, 2, 4);
  ro.backward(x, d_logits, &d_in, nullptr);

  const float h = 1e-3f;
  for (std::size_t i = 0; i < ro.w().size(); ++i) {
    float& w = ro.w()(i);
    const float keep = w;
    w = keep + h;
    const double up = loss_fn();
    w = keep - h;
    const double down = loss_fn();
    w = keep;
    EXPECT_NEAR(ro.grad_w()(i), (up - down) / (2.0 * h), 5e-3) << "w[" << i << "]";
  }
}

TEST(Readout, InputGradientFiniteDifference) {
  Rng rng(5);
  LeakyReadout ro(3, 2, 0.7f, rng);
  Tensor x(4, 1, 3);
  Rng data(6);
  for (auto& v : x.values()) v = static_cast<float>(data.uniform(0.0, 1.0));
  const std::int32_t labels[] = {1};

  const Tensor logits = ro.forward(x, nullptr);
  Tensor d_logits(1, 2);
  (void)softmax_cross_entropy(logits, labels, &d_logits);
  ro.zero_grad();
  Tensor d_in(4, 1, 3);
  ro.backward(x, d_logits, &d_in, nullptr);

  const float h = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float keep = x(i);
    x(i) = keep + h;
    const Tensor lu = ro.forward(x, nullptr);
    const double up = softmax_cross_entropy(lu, labels, nullptr);
    x(i) = keep - h;
    const Tensor ld = ro.forward(x, nullptr);
    const double down = softmax_cross_entropy(ld, labels, nullptr);
    x(i) = keep;
    EXPECT_NEAR(d_in(i), (up - down) / (2.0 * h), 5e-3) << "x[" << i << "]";
  }
}

TEST(Readout, StatsCountEvents) {
  Rng rng(7);
  LeakyReadout ro(4, 5, 0.9f, rng);
  Tensor x(3, 2, 4);
  x(0, 0, 0) = 1.0f;
  x(2, 1, 3) = 1.0f;
  SpikeOpStats stats;
  (void)ro.forward(x, &stats);
  EXPECT_EQ(stats.synops, 2u * 5u);
  EXPECT_EQ(stats.neuron_updates, 3u * 2u * 5u);
}

TEST(Readout, SaveLoadRoundTrip) {
  Rng rng(8);
  LeakyReadout ro(6, 4, 0.85f, rng);
  const std::string path = ::testing::TempDir() + "r4ncl_readout.bin";
  {
    BinaryWriter out(path);
    ro.save(out);
    out.close();
  }
  Rng rng2(99);
  LeakyReadout restored(6, 4, 0.1f, rng2);
  {
    BinaryReader in(path);
    restored.load(in);
  }
  for (std::size_t i = 0; i < ro.w().size(); ++i) EXPECT_EQ(ro.w()(i), restored.w()(i));
}

TEST(Readout, RejectsWrongShapes) {
  Rng rng(9);
  LeakyReadout ro(4, 2, 0.9f, rng);
  Tensor bad(3, 1, 5);
  EXPECT_THROW((void)ro.forward(bad, nullptr), Error);
}

}  // namespace
}  // namespace r4ncl::snn
