// AER event-stream encoding: round trips, escapes, size crossover.
#include <gtest/gtest.h>

#include "compress/aer.hpp"
#include "compress/bitpack.hpp"
#include "util/rng.hpp"

namespace r4ncl::compress {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

TEST(Aer, RoundTripRandomDensities) {
  for (double p : {0.0, 0.01, 0.05, 0.2, 0.7, 1.0}) {
    const data::SpikeRaster r = random_raster(40, 50, p, static_cast<std::uint64_t>(p * 100));
    const AerRaster aer = aer_encode(r);
    EXPECT_EQ(aer_decode(aer), r) << "density " << p;
    EXPECT_EQ(aer.num_events, r.spike_count());
  }
}

TEST(Aer, EmptyRaster) {
  const data::SpikeRaster r(10, 10);
  const AerRaster aer = aer_encode(r);
  EXPECT_EQ(aer.payload_bytes(), 0u);
  EXPECT_EQ(aer.num_events, 0u);
  EXPECT_EQ(aer_decode(aer), r);
}

TEST(Aer, SingleLateSpikeUsesEscape) {
  // A spike at t=300 forces the >255 delta escape path.
  data::SpikeRaster r(400, 4);
  r.set(300, 2, true);
  const AerRaster aer = aer_encode(r);
  EXPECT_EQ(aer_decode(aer), r);
  EXPECT_GT(aer.payload_bytes(), 3u) << "escape must add bytes";
}

TEST(Aer, DeltaExactly255) {
  data::SpikeRaster r(300, 2);
  r.set(0, 0, true);
  r.set(255, 1, true);
  EXPECT_EQ(aer_decode(aer_encode(r)), r);
}

TEST(Aer, MultipleSpikesSameTimestep) {
  data::SpikeRaster r(5, 8);
  for (std::size_t c = 0; c < 8; ++c) r.set(2, c, true);
  const AerRaster aer = aer_encode(r);
  EXPECT_EQ(aer.num_events, 8u);
  EXPECT_EQ(aer_decode(aer), r);
}

TEST(Aer, SparseRastersAreSmallerThanBitmap) {
  // 1% density on a 700-channel raster: AER must beat the bitmap.
  const data::SpikeRaster sparse = random_raster(100, 700, 0.01, 3);
  EXPECT_TRUE(aer_is_smaller(sparse));
}

TEST(Aer, DenseRastersPreferBitmap) {
  const data::SpikeRaster dense = random_raster(100, 700, 0.30, 4);
  EXPECT_FALSE(aer_is_smaller(dense));
}

TEST(Aer, SizeGrowsWithEvents) {
  const data::SpikeRaster lo = random_raster(50, 64, 0.02, 5);
  const data::SpikeRaster hi = random_raster(50, 64, 0.10, 6);
  EXPECT_LT(aer_bytes(lo), aer_bytes(hi));
}

TEST(Aer, WideChannelBound) {
  data::SpikeRaster r(2, 700);
  r.set(1, 699, true);
  const data::SpikeRaster back = aer_decode(aer_encode(r));
  EXPECT_EQ(back.at(1, 699), 1);
}

}  // namespace
}  // namespace r4ncl::compress
