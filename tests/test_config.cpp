// Config parsing: CLI tokens, env fallback, typed getters, key validation.
#include <cstdlib>
#include <string_view>

#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/error.hpp"

namespace r4ncl {
namespace {

Config parse(std::initializer_list<const char*> tokens) {
  std::vector<char*> argv;
  static char prog[] = "prog";
  argv.push_back(prog);
  std::vector<std::string> storage(tokens.begin(), tokens.end());
  for (auto& s : storage) argv.push_back(s.data());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValueTokens) {
  const Config cfg = parse({"epochs=5", "lr=0.01", "name=test"});
  EXPECT_EQ(cfg.get_int("epochs", 0), 5);
  EXPECT_DOUBLE_EQ(cfg.get_double("lr", 0.0), 0.01);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
}

TEST(Config, CollectsPositionals) {
  const Config cfg = parse({"run", "epochs=3", "fast"});
  ASSERT_EQ(cfg.positionals().size(), 2u);
  EXPECT_EQ(cfg.positionals()[0], "run");
  EXPECT_EQ(cfg.positionals()[1], "fast");
}

TEST(Config, FallbacksWhenMissing) {
  const Config cfg = parse({});
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, BoolParsing) {
  const Config cfg = parse({"a=1", "b=true", "c=0", "d=off", "e=bogus"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", true)) << "unparseable falls back";
}

TEST(Config, MalformedNumberFallsBack) {
  const Config cfg = parse({"epochs=abc"});
  EXPECT_EQ(cfg.get_int("epochs", 7), 7);
}

TEST(Config, EnvKeyMapping) {
  EXPECT_EQ(env_key_for("epochs"), "R4NCL_EPOCHS");
  EXPECT_EQ(env_key_for("cache-dir"), "R4NCL_CACHE_DIR");
  EXPECT_EQ(env_key_for("a.b"), "R4NCL_A_B");
}

TEST(Config, EnvironmentFallback) {
  ::setenv("R4NCL_TESTKEY_UNIQUE", "123", 1);
  const Config cfg = parse({});
  EXPECT_EQ(cfg.get_int("testkey_unique", 0), 123);
  ::unsetenv("R4NCL_TESTKEY_UNIQUE");
}

TEST(Config, ExplicitValueBeatsEnvironment) {
  ::setenv("R4NCL_PRIORITY_KEY", "1", 1);
  const Config cfg = parse({"priority_key=2"});
  EXPECT_EQ(cfg.get_int("priority_key", 0), 2);
  ::unsetenv("R4NCL_PRIORITY_KEY");
}

TEST(Config, ValidateKeysAcceptsKnownAndPositionals) {
  const Config cfg = parse({"alpha=1", "a-positional", "beta=x"});
  const std::string_view known[] = {"alpha", "beta", "gamma"};
  EXPECT_NO_THROW(cfg.validate_keys(known));
}

TEST(Config, ValidateKeysRejectsUnknownListingValidSorted) {
  const Config cfg = parse({"beta=x", "zeta=1"});
  const std::string_view known[] = {"gamma", "beta", "alpha"};
  try {
    cfg.validate_keys(known);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "unknown config key 'zeta' (valid keys: alpha, beta, gamma)");
  }
}

TEST(Config, ValidateKeysIgnoresEnvironmentVariables) {
  ::setenv("R4NCL_NOT_A_KNOWN_KEY", "1", 1);
  const Config cfg = parse({});
  const std::string_view known[] = {"alpha"};
  EXPECT_NO_THROW(cfg.validate_keys(known));
  ::unsetenv("R4NCL_NOT_A_KNOWN_KEY");
}

}  // namespace
}  // namespace r4ncl
