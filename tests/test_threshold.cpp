// Adaptive threshold controller (Alg. 1 lines 10–17) behaviour.
#include <cmath>

#include <gtest/gtest.h>

#include "snn/threshold.hpp"

namespace r4ncl::snn {
namespace {

TEST(Threshold, FixedPolicyIsConstant) {
  const ThresholdPolicy p = ThresholdPolicy::fixed(0.7f);
  ThresholdState st(p);
  for (int t = 0; t < 20; ++t) EXPECT_EQ(st.threshold_at(t), 0.7f);
  st.observe(3, 100);  // must be ignored
  EXPECT_EQ(st.threshold_at(21), 0.7f);
}

TEST(Threshold, SilentLayerDecaysTowardHalf) {
  // No spikes → Alg. 1 line 16: Vthr = 1/(1+exp(−0.001·t)) ≈ 0.5 for small t.
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40);
  ThresholdState st(p);
  (void)st.threshold_at(0);  // boundary with no observed spikes
  const float v5 = st.threshold_at(5);
  EXPECT_NEAR(v5, 1.0f / (1.0f + std::exp(-0.001f * 5.0f)), 1e-5);
  EXPECT_LT(v5, 0.52f);
  EXPECT_GT(v5, 0.49f);
}

TEST(Threshold, SpikesRaiseThresholdByTimingRule) {
  // Spikes at average time 10 with Tstep 40 → Vthr = 1 + 0.01·(40−10) = 1.3.
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40);
  ThresholdState st(p);
  (void)st.threshold_at(0);
  for (int t = 1; t <= 4; ++t) (void)st.threshold_at(t);
  st.observe(10, 4);  // 4 spikes all at t=10 (window [5,10))... observed pre-boundary
  const float v = st.threshold_at(10);
  EXPECT_NEAR(v, 1.0f + 0.01f * (40.0f - 10.0f), 1e-5);
}

TEST(Threshold, AverageSpikeTimeWeighted) {
  const ThresholdPolicy p = ThresholdPolicy::adaptive(100);
  ThresholdState st(p);
  (void)st.threshold_at(0);
  st.observe(2, 1);   // one spike at t=2
  st.observe(4, 3);   // three spikes at t=4 → avg = (2+12)/4 = 3.5
  const float v = st.threshold_at(5);
  EXPECT_NEAR(v, 1.0f + 0.01f * (100.0f - 3.5f), 1e-5);
}

TEST(Threshold, WindowResetsAfterAdjustment) {
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40);
  ThresholdState st(p);
  (void)st.threshold_at(0);
  st.observe(1, 5);
  (void)st.threshold_at(5);   // consumes window
  // New window with no spikes → decay rule at next boundary.
  const float v = st.threshold_at(10);
  EXPECT_NEAR(v, 1.0f / (1.0f + std::exp(-0.001f * 10.0f)), 1e-5);
}

TEST(Threshold, HoldsBetweenBoundaries) {
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40);
  ThresholdState st(p);
  (void)st.threshold_at(0);
  st.observe(0, 2);
  const float at5 = st.threshold_at(5);
  EXPECT_EQ(st.threshold_at(6), at5);
  EXPECT_EQ(st.threshold_at(7), at5);
  EXPECT_EQ(st.threshold_at(9), at5);
}

TEST(Threshold, EarlySpikesGiveHigherThresholdThanLateSpikes) {
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40);
  ThresholdState early(p), late(p);
  (void)early.threshold_at(0);
  (void)late.threshold_at(0);
  early.observe(1, 10);
  late.observe(4, 10);
  EXPECT_GT(early.threshold_at(5), late.threshold_at(5));
}

TEST(Threshold, AdaptiveBaseRespected) {
  const ThresholdPolicy p = ThresholdPolicy::adaptive(40, /*base=*/0.8f);
  ThresholdState st(p);
  (void)st.threshold_at(0);
  st.observe(40, 1);  // avg time = Tstep → Vthr = base exactly
  EXPECT_NEAR(st.threshold_at(5), 0.8f, 1e-5);
}

TEST(Threshold, PolicyFactoriesSetFields) {
  const auto fixed = ThresholdPolicy::fixed(1.2f);
  EXPECT_EQ(fixed.mode, ThresholdMode::kFixed);
  EXPECT_EQ(fixed.fixed_value, 1.2f);
  const auto adaptive = ThresholdPolicy::adaptive(64, 1.0f, 8, 0.02f, 0.002f);
  EXPECT_EQ(adaptive.mode, ThresholdMode::kAdaptive);
  EXPECT_EQ(adaptive.total_timesteps, 64);
  EXPECT_EQ(adaptive.adjust_interval, 8);
  EXPECT_FLOAT_EQ(adaptive.gain, 0.02f);
  EXPECT_FLOAT_EQ(adaptive.decay, 0.002f);
}

}  // namespace
}  // namespace r4ncl::snn
