// Adam/SGD optimizers: descent direction, state keying, clipping.
#include <cmath>

#include <gtest/gtest.h>

#include "snn/optimizer.hpp"
#include "util/error.hpp"

namespace r4ncl::snn {
namespace {

TEST(Adam, MovesAgainstGradient) {
  AdamOptimizer opt;
  Tensor p(1, 2), g(1, 2);
  p(0) = 1.0f;
  p(1) = -1.0f;
  g(0) = 1.0f;   // positive gradient → parameter must decrease
  g(1) = -1.0f;  // negative gradient → parameter must increase
  opt.step(p, g, 0.1f);
  EXPECT_LT(p(0), 1.0f);
  EXPECT_GT(p(1), -1.0f);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, |Δp| ≈ lr on the first step regardless of |g|.
  AdamOptimizer opt;
  Tensor p(1, 1), g(1, 1);
  g(0) = 0.37f;
  opt.step(p, g, 0.01f);
  EXPECT_NEAR(std::fabs(p(0)), 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimise f(x) = (x − 3)² starting at 0.
  AdamOptimizer opt;
  Tensor p(1, 1), g(1, 1);
  for (int i = 0; i < 2000; ++i) {
    g(0) = 2.0f * (p(0) - 3.0f);
    opt.step(p, g, 0.01f);
  }
  EXPECT_NEAR(p(0), 3.0f, 0.05f);
}

TEST(Adam, IndependentStatePerTensor) {
  AdamOptimizer opt;
  Tensor a(1, 1), b(1, 1), g(1, 1);
  g(0) = 1.0f;
  for (int i = 0; i < 10; ++i) opt.step(a, g, 0.1f);
  opt.step(b, g, 0.1f);
  // b only took one (bias-corrected) step, a took ten.
  EXPECT_LT(a(0), b(0));
}

TEST(Adam, GradClipBoundsUpdateDirection) {
  AdamParams params;
  params.grad_clip = 1.0f;
  AdamOptimizer clipped(params);
  AdamOptimizer unclipped(AdamParams{.grad_clip = 0.0f});
  Tensor p1(1, 1), p2(1, 1), g(1, 1);
  g(0) = 1000.0f;
  clipped.step(p1, g, 0.1f);
  unclipped.step(p2, g, 0.1f);
  // Both move by ≈lr on step one (Adam normalises), so compare the internal
  // moments via a second, small-gradient step: the clipped optimizer's
  // second moment is much smaller, so it keeps moving faster.
  g(0) = 0.001f;
  clipped.step(p1, g, 0.1f);
  unclipped.step(p2, g, 0.1f);
  EXPECT_LT(p1(0), p2(0));
}

TEST(Adam, ResetClearsState) {
  AdamOptimizer opt;
  Tensor p(1, 1), g(1, 1);
  g(0) = 1.0f;
  opt.step(p, g, 0.1f);
  opt.reset();
  Tensor q(1, 1);
  opt.step(q, g, 0.1f);
  EXPECT_NEAR(q(0), p(0), 1e-6) << "post-reset first step equals a fresh first step";
}

TEST(Adam, EmptyParamIsNoop) {
  AdamOptimizer opt;
  Tensor p(0, 0), g(0, 0);
  EXPECT_NO_THROW(opt.step(p, g, 0.1f));
}

TEST(Adam, ShapeMismatchThrows) {
  AdamOptimizer opt;
  Tensor p(2, 2), g(2, 3);
  EXPECT_THROW(opt.step(p, g, 0.1f), Error);
}

TEST(Sgd, PlainStep) {
  SgdOptimizer opt;
  Tensor p(1, 1), g(1, 1);
  p(0) = 1.0f;
  g(0) = 0.5f;
  opt.step(p, g, 0.2f);
  EXPECT_NEAR(p(0), 0.9f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  SgdOptimizer opt(0.9f);
  Tensor p(1, 1), g(1, 1);
  g(0) = 1.0f;
  opt.step(p, g, 0.1f);  // v=1, p=-0.1
  opt.step(p, g, 0.1f);  // v=1.9, p=-0.29
  EXPECT_NEAR(p(0), -0.29f, 1e-5);
}

}  // namespace
}  // namespace r4ncl::snn
