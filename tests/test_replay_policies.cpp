// Capacity-bounded replay buffer: eviction/selection policies, byte-budget
// invariants, sampling statistics, and stream determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/pretrain.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

/// Stored bytes of one raw entry of the given geometry.
std::size_t probe_entry_bytes(std::size_t T, std::size_t C) {
  LatentReplayBuffer probe({.ratio = 1}, T);
  probe.add(random_raster(T, C, 0.3, 1), 0);
  return probe.memory_bytes();
}

// ---------------------------------------------------------------------------
// Policy plumbing
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, NamesRoundTrip) {
  for (const ReplayPolicy p : {ReplayPolicy::kFifo, ReplayPolicy::kReservoir,
                               ReplayPolicy::kClassBalanced}) {
    EXPECT_EQ(parse_replay_policy(to_string(p)), p);
  }
  EXPECT_EQ(parse_replay_policy("balanced"), ReplayPolicy::kClassBalanced);
  EXPECT_THROW((void)parse_replay_policy("lru"), Error);
}

TEST(ReplayPolicy, UnboundedBufferNeverEvicts) {
  LatentReplayBuffer buf({.ratio = 1}, 8);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(buf.add(random_raster(8, 16, 0.3, 100 + i), i % 4));
  }
  EXPECT_EQ(buf.size(), 32u);
  EXPECT_EQ(buf.evictions(), 0u);
  EXPECT_EQ(buf.stream_seen(), 32u);
}

TEST(ReplayPolicy, RejectsCapacityBelowOneEntry) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  LatentReplayBuffer buf({.ratio = 1}, 8, {.capacity_bytes = entry - 1});
  EXPECT_THROW((void)buf.add(random_raster(8, 16, 0.3, 1), 0), Error);
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, FifoEvictsOldestAndHoldsBudget) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  const ReplayBufferConfig budget{.capacity_bytes = 4 * entry,
                                  .policy = ReplayPolicy::kFifo};
  LatentReplayBuffer buf({.ratio = 1}, 8, budget);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(buf.add(random_raster(8, 16, 0.3, 200 + i), i));
    EXPECT_LE(buf.memory_bytes(), budget.capacity_bytes) << "after add " << i;
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.evictions(), 6u);
  EXPECT_EQ(buf.stream_seen(), 10u);
  const data::Dataset ds = buf.materialize();
  ASSERT_EQ(ds.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ds[static_cast<std::size_t>(i)].label, 6 + i);
}

// ---------------------------------------------------------------------------
// Reservoir: stream-uniform retention (the statistical satellite)
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, ReservoirRetentionIsUniformChiSquared) {
  // Stream N = 64 >> capacity K = 8 entries; over repeated independent
  // eviction seeds every stream position must be retained equally often.
  // Label i marks stream position i, so the final occupancy is the retained
  // set.  With 240 trials the expected retention count per position is
  // 240*8/64 = 30; the chi-squared statistic over 63 dof has mean 63,
  // sd ~11.2 — we bound at 110 (~p = 2e-4), generous but damning for any
  // biased scheme (pure FIFO scores thousands).
  constexpr std::size_t kStream = 64;
  constexpr std::size_t kCapacity = 8;
  constexpr int kTrials = 240;
  const std::size_t entry = probe_entry_bytes(4, 8);
  std::vector<int> retained(kStream, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReplayBufferConfig budget{.capacity_bytes = kCapacity * entry,
                              .policy = ReplayPolicy::kReservoir,
                              .seed = 0xC0FFEE + static_cast<std::uint64_t>(trial)};
    LatentReplayBuffer buf({.ratio = 1}, 4, budget);
    for (std::size_t i = 0; i < kStream; ++i) {
      (void)buf.add(random_raster(4, 8, 0.3, i), static_cast<std::int32_t>(i));
      ASSERT_LE(buf.memory_bytes(), budget.capacity_bytes);
    }
    ASSERT_EQ(buf.size(), kCapacity);
    for (const auto& [label, count] : buf.class_occupancy()) {
      ASSERT_EQ(count, 1u);
      retained[static_cast<std::size_t>(label)] += 1;
    }
  }
  const double expected = static_cast<double>(kTrials * kCapacity) / kStream;
  double chi2 = 0.0;
  for (const int c : retained) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 110.0) << "reservoir retention deviates from uniform";
  // Every stream position must be reachable at all.
  EXPECT_GT(*std::min_element(retained.begin(), retained.end()), 0);
}

// ---------------------------------------------------------------------------
// Class-balanced
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, ClassBalancedConvergesToEqualCounts) {
  // Heavily skewed stream: 40 entries of class 0, then 10 each of 1..3.
  // With room for 12 entries the final occupancy must be 3 per class (±1),
  // the skew absorbed by evicting from whichever class is heaviest.
  const std::size_t entry = probe_entry_bytes(6, 12);
  const ReplayBufferConfig budget{.capacity_bytes = 12 * entry,
                                  .policy = ReplayPolicy::kClassBalanced};
  LatentReplayBuffer buf({.ratio = 1}, 6, budget);
  std::vector<std::int32_t> stream(40, 0);
  for (std::int32_t c = 1; c <= 3; ++c) stream.insert(stream.end(), 10, c);
  std::uint64_t salt = 0;
  for (const std::int32_t label : stream) {
    EXPECT_TRUE(buf.add(random_raster(6, 12, 0.3, ++salt), label));
    EXPECT_LE(buf.memory_bytes(), budget.capacity_bytes);
  }
  const auto occupancy = buf.class_occupancy();
  ASSERT_EQ(occupancy.size(), 4u);
  std::size_t total = 0, lo = occupancy.front().second, hi = lo;
  for (const auto& [label, count] : occupancy) {
    total += count;
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  EXPECT_EQ(total, buf.size());
  EXPECT_LE(hi - lo, 1u) << "per-class counts must stay within +-1";
}

// ---------------------------------------------------------------------------
// sample(): draw statistics and decompression accounting
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, SampleDrawsDistinctEntriesAndFallsBackToMaterialize) {
  LatentReplayBuffer buf({.ratio = 1}, 8);
  for (int i = 0; i < 10; ++i) buf.add(random_raster(8, 16, 0.3, 300 + i), i);
  Rng rng(99);
  const data::Dataset drawn = buf.sample(4, rng);
  ASSERT_EQ(drawn.size(), 4u);
  std::vector<std::int32_t> labels;
  for (const auto& s : drawn) labels.push_back(s.label);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::adjacent_find(labels.begin(), labels.end()), labels.end())
      << "sample() must draw without replacement";
  // k >= size degenerates to the full buffer in storage order.
  const data::Dataset all = buf.sample(10, rng);
  const data::Dataset full = buf.materialize();
  ASSERT_EQ(all.size(), full.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].raster, full[i].raster);
    EXPECT_EQ(all[i].label, full[i].label);
  }
}

TEST(ReplayPolicy, SampleChargesDecompressBitsProportionally) {
  LatentReplayBuffer buf({.ratio = 2}, 20);
  for (int i = 0; i < 10; ++i) buf.add(random_raster(20, 16, 0.3, 400 + i), i);
  snn::SpikeOpStats full_stats, sample_stats;
  (void)buf.materialize(&full_stats);
  Rng rng(7);
  (void)buf.sample(3, rng, &sample_stats);
  ASSERT_GT(full_stats.decompress_bits, 0u);
  // Equal-geometry entries: 3 of 10 drawn => exactly 3/10 of the codec work.
  EXPECT_EQ(sample_stats.decompress_bits * 10, full_stats.decompress_bits * 3);
}

TEST(ReplayPolicy, SampleCoversEveryEntryOverManyDraws) {
  LatentReplayBuffer buf({.ratio = 1}, 4);
  for (int i = 0; i < 12; ++i) buf.add(random_raster(4, 8, 0.3, 500 + i), i);
  Rng rng(11);
  std::vector<int> seen(12, 0);
  for (int draw = 0; draw < 60; ++draw) {
    for (const auto& s : buf.sample(3, rng)) seen[static_cast<std::size_t>(s.label)] += 1;
  }
  EXPECT_GT(*std::min_element(seen.begin(), seen.end()), 0)
      << "some entry was never sampled in 60 draws of 3/12";
}

// ---------------------------------------------------------------------------
// Determinism of the RNG plumbing
// ---------------------------------------------------------------------------

TEST(ReplayPolicy, IdenticalSeedsGiveByteIdenticalBuffers) {
  const std::size_t entry = probe_entry_bytes(6, 16);
  const ReplayBufferConfig budget{.capacity_bytes = 6 * entry,
                                  .policy = ReplayPolicy::kReservoir,
                                  .seed = 0xABCD};
  LatentReplayBuffer a({.ratio = 1}, 6, budget);
  LatentReplayBuffer b({.ratio = 1}, 6, budget);
  for (int i = 0; i < 40; ++i) {
    const auto r = random_raster(6, 16, 0.3, 600 + i);
    (void)a.add(r, i % 5);
    (void)b.add(r, i % 5);
  }
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_EQ(a.evictions(), b.evictions());
  const data::Dataset da = a.materialize();
  const data::Dataset db = b.materialize();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].raster, db[i].raster);
    EXPECT_EQ(da[i].label, db[i].label);
  }
}

// ---------------------------------------------------------------------------
// Integration: budgeted sequential streams
// ---------------------------------------------------------------------------

/// Tiny 6-class scenario (geometry of test_sequential) for 2-task streams.
PretrainConfig small_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {96, 48, 24, 12};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 96;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 24;
  cfg.data_params.ridge_width = 5.0;
  cfg.data_params.position_pool = 8;
  cfg.data_params.background_rate = 0.004;
  cfg.data_params.rate_jitter = 0.08;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 14;
  cfg.split.test_per_class = 5;
  cfg.split.replay_per_class = 3;
  cfg.split.seed = 41;
  cfg.epochs = 30;
  cfg.batch_size = 8;
  return cfg;
}

/// Wider 12-class scenario for the 10-task long stream (base = 2 classes).
PretrainConfig wide_config() {
  PretrainConfig cfg = small_config();
  cfg.network.num_classes = 12;
  cfg.data_params.classes = 12;
  cfg.split.test_per_class = 8;
  cfg.split.replay_per_class = 2;
  return cfg;
}

snn::SnnNetwork pretrain_on_base(const PretrainConfig& pc,
                                 const data::SequentialTasks& tasks) {
  snn::SnnNetwork net(pc.network);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = pc.epochs;
  opts.batch_size = pc.batch_size;
  (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  return net;
}

SequentialRunConfig stream_run() {
  SequentialRunConfig cfg;
  cfg.method = NclMethodConfig::replay4ncl(12);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 6;
  cfg.replay_per_new_class = 4;
  return cfg;
}

TEST(BudgetedSequentialRun, TenTaskStreamHoldsThreeTaskBudget) {
  // Acceptance scenario: a 10-task stream whose buffer budget is frozen at
  // the 3-task footprint.  The budget must hold after every task for all
  // three policies, and the selective policies (reservoir, class-balanced)
  // must stay within 5 accuracy points of the unbounded run.  Accuracy is
  // compared on acc_learned smoothed over the last three tasks and averaged
  // over two run seeds — a single final-row comparison at this scale is
  // dominated by per-run jitter, not selection quality.
  const PretrainConfig pc = wide_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 10);
  const snn::SnnNetwork pretrained = pretrain_on_base(pc, tasks);

  SequentialRunConfig run = stream_run();
  run.epochs_per_task = 30;
  run.replay_per_new_class = 16;
  // Fix the per-epoch replay draw so every run trains on the same replay
  // volume: the comparison then isolates *what* each policy retained.
  run.method.replay_samples_per_epoch = 40;
  constexpr std::uint64_t kSeeds[] = {4242, 77};

  auto run_with = [&](std::size_t capacity, ReplayPolicy policy, std::uint64_t seed) {
    snn::SnnNetwork net = pretrained.clone();
    SequentialRunConfig bounded = run;
    bounded.seed = seed;
    bounded.method.replay_budget.capacity_bytes = capacity;
    bounded.method.replay_budget.policy = policy;
    return run_sequential(net, tasks, bounded);
  };
  auto last3 = [](const SequentialRunResult& res) {
    double sum = 0.0;
    for (std::size_t i = res.rows.size() - 3; i < res.rows.size(); ++i) {
      sum += res.rows[i].acc_learned;
    }
    return sum / 3.0;
  };

  double unbounded_acc = 0.0;
  std::size_t budget = 0;
  for (const std::uint64_t seed : kSeeds) {
    const SequentialRunResult unbounded = run_with(0, ReplayPolicy::kFifo, seed);
    ASSERT_EQ(unbounded.rows.size(), 10u);
    budget = unbounded.rows[2].latent_memory_bytes;  // 3-task footprint
    ASSERT_LT(budget, unbounded.rows.back().latent_memory_bytes)
        << "unbounded stream must outgrow the 3-task footprint";
    unbounded_acc += last3(unbounded) / std::size(kSeeds);
  }

  for (const ReplayPolicy policy : {ReplayPolicy::kFifo, ReplayPolicy::kReservoir,
                                    ReplayPolicy::kClassBalanced}) {
    double policy_acc = 0.0;
    for (const std::uint64_t seed : kSeeds) {
      const SequentialRunResult res = run_with(budget, policy, seed);
      ASSERT_EQ(res.rows.size(), 10u);
      for (const auto& row : res.rows) {
        EXPECT_LE(row.latent_memory_bytes, budget)
            << to_string(policy) << " exceeded the budget at task " << row.task_index;
      }
      EXPECT_GT(res.rows.back().buffer_evictions, 0u)
          << to_string(policy) << " never evicted on a 10-task stream";
      policy_acc += last3(res) / std::size(kSeeds);
    }
    if (policy != ReplayPolicy::kFifo) {
      EXPECT_GE(policy_acc, unbounded_acc - 0.05)
          << to_string(policy) << " lost more than 5 points vs unbounded";
    }
  }
}

TEST(BudgetedSequentialRun, SampledReplayMatchesMaterializeAccuracy) {
  // sample(k) replaces the full materialize() on the per-epoch hot path;
  // training outcomes must be statistically indistinguishable, and the
  // sampled run must not cost more (it decompresses and trains on less).
  const PretrainConfig pc = small_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 2);
  const snn::SnnNetwork pretrained = pretrain_on_base(pc, tasks);

  SequentialRunConfig run = stream_run();
  run.epochs_per_task = 30;
  auto run_with = [&](std::size_t samples_per_epoch) {
    snn::SnnNetwork net = pretrained.clone();
    SequentialRunConfig cfg = run;
    cfg.method.replay_samples_per_epoch = samples_per_epoch;
    return run_sequential(net, tasks, cfg);
  };

  const SequentialRunResult full = run_with(0);
  // Buffer holds 4 base classes x 3 + up to 2 x 4 task entries; drawing 10
  // per epoch halves the steady-state replay work per epoch.
  const SequentialRunResult sampled = run_with(10);
  EXPECT_NEAR(sampled.rows.back().acc_learned, full.rows.back().acc_learned, 0.1)
      << "sampled replay diverged from full materialization";
  EXPECT_GT(sampled.rows.back().acc_learned, 0.45);
  EXPECT_LT(sampled.total_latency_ms, full.total_latency_ms)
      << "sampling fewer replay entries must not cost more";
}

TEST(BudgetedSequentialRun, IdenticalSeedsReproduceRunExactly) {
  // Guards the new RNG plumbing: budgeted eviction + per-epoch sampling must
  // not introduce any nondeterminism across identical runs.
  const PretrainConfig pc = small_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 2);
  const snn::SnnNetwork pretrained = pretrain_on_base(pc, tasks);

  SequentialRunConfig run = stream_run();
  run.epochs_per_task = 4;
  run.method.replay_budget.capacity_bytes = 16 * probe_entry_bytes(12, 48);
  run.method.replay_budget.policy = ReplayPolicy::kReservoir;
  run.method.replay_samples_per_epoch = 6;

  auto run_once = [&]() {
    snn::SnnNetwork net = pretrained.clone();
    return run_sequential(net, tasks, run);
  };
  const SequentialRunResult a = run_once();
  const SequentialRunResult b = run_once();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].acc_base, b.rows[i].acc_base);
    EXPECT_EQ(a.rows[i].acc_learned, b.rows[i].acc_learned);
    EXPECT_EQ(a.rows[i].acc_current, b.rows[i].acc_current);
    EXPECT_EQ(a.rows[i].latent_memory_bytes, b.rows[i].latent_memory_bytes);
    EXPECT_EQ(a.rows[i].buffer_entries, b.rows[i].buffer_entries);
    EXPECT_EQ(a.rows[i].buffer_evictions, b.rows[i].buffer_evictions);
    EXPECT_EQ(a.rows[i].latency_ms, b.rows[i].latency_ms);
  }
  EXPECT_EQ(a.total_latency_ms, b.total_latency_ms);
  EXPECT_EQ(a.total_energy_uj, b.total_energy_uj);
}

}  // namespace
}  // namespace r4ncl::core
