// Supervised training loop: the substrate must learn separable spike
// patterns, and evaluate() must score them.
#include <gtest/gtest.h>

#include "snn/trainer.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

/// Tiny separable dataset: class k fires a dense burst on channel band
/// [4k, 4k+4) with light noise elsewhere.
data::Dataset banded_dataset(std::size_t classes, std::size_t per_class, std::size_t T,
                             std::uint64_t seed) {
  const std::size_t channels = 4 * classes;
  data::Dataset out;
  Rng rng(seed);
  for (std::size_t k = 0; k < classes; ++k) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data::Sample s;
      s.label = static_cast<std::int32_t>(k);
      s.raster = data::SpikeRaster(T, channels);
      for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t c = 0; c < channels; ++c) {
          const bool in_band = c >= 4 * k && c < 4 * k + 4;
          const double p = in_band ? 0.65 : 0.03;
          if (rng.bernoulli(p)) s.raster.set(t, c, true);
        }
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

NetworkConfig small_net(std::size_t channels, std::size_t classes) {
  NetworkConfig cfg;
  cfg.layer_sizes = {channels, 24, 16};
  cfg.num_classes = classes;
  cfg.seed = 33;
  return cfg;
}

TEST(Trainer, LearnsSeparablePatterns) {
  const auto train = banded_dataset(3, 10, 12, 1);
  const auto test = banded_dataset(3, 6, 12, 2);
  SnnNetwork net(small_net(12, 3));
  AdamOptimizer opt;
  TrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 6;
  opts.lr = 5e-3f;
  const auto history = train_supervised(net, train, opt, opts);
  ASSERT_EQ(history.size(), 12u);
  EXPECT_LT(history.back().loss, history.front().loss);
  const double acc = evaluate(net, test);
  EXPECT_GT(acc, 0.9) << "separable 3-class problem must be learnable";
}

TEST(Trainer, HistoryRecordsWork) {
  const auto train = banded_dataset(2, 4, 8, 3);
  SnnNetwork net(small_net(8, 2));
  AdamOptimizer opt;
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 4;
  const auto history = train_supervised(net, train, opt, opts);
  for (const auto& rec : history) {
    EXPECT_GT(rec.stats.neuron_updates, 0u);
    EXPECT_GT(rec.stats.backward_synops, 0u);
    EXPECT_GE(rec.wall_seconds, 0.0);
    EXPECT_GE(rec.train_accuracy, 0.0);
    EXPECT_LE(rec.train_accuracy, 1.0);
  }
}

TEST(Trainer, HookSeesEveryEpoch) {
  const auto train = banded_dataset(2, 4, 8, 4);
  SnnNetwork net(small_net(8, 2));
  AdamOptimizer opt;
  TrainOptions opts;
  opts.epochs = 3;
  std::vector<std::size_t> seen;
  (void)train_supervised(net, train, opt, opts,
                         [&](const EpochRecord& r) { seen.push_back(r.epoch); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto train = banded_dataset(2, 6, 8, 5);
  SnnNetwork net_a(small_net(8, 2)), net_b(small_net(8, 2));
  AdamOptimizer opt_a, opt_b;
  TrainOptions opts;
  opts.epochs = 3;
  opts.shuffle_seed = 11;
  const auto ha = train_supervised(net_a, train, opt_a, opts);
  const auto hb = train_supervised(net_b, train, opt_b, opts);
  for (std::size_t e = 0; e < ha.size(); ++e) {
    EXPECT_DOUBLE_EQ(ha[e].loss, hb[e].loss) << "epoch " << e;
  }
}

TEST(Trainer, EmptyDatasetThrows) {
  SnnNetwork net(small_net(8, 2));
  AdamOptimizer opt;
  TrainOptions opts;
  EXPECT_THROW((void)train_supervised(net, data::Dataset{}, opt, opts), Error);
}

TEST(Trainer, EvaluateEmptyDatasetIsZero) {
  SnnNetwork net(small_net(8, 2));
  EXPECT_EQ(evaluate(net, data::Dataset{}), 0.0);
}

TEST(Trainer, EvaluateFromInsertionPoint) {
  // Latent-style dataset fed at the readout's input layer must score without
  // touching the lower layers.
  const std::size_t readout_in = 16;
  data::Dataset latents;
  Rng rng(6);
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 4; ++i) {
      data::Sample s;
      s.label = k;
      s.raster = data::SpikeRaster(8, readout_in);
      for (std::size_t t = 0; t < 8; ++t) {
        for (std::size_t c = 0; c < readout_in; ++c) {
          const bool band = (k == 0) ? c < 8 : c >= 8;
          if (rng.bernoulli(band ? 0.6 : 0.05)) s.raster.set(t, c, true);
        }
      }
      latents.push_back(std::move(s));
    }
  }
  SnnNetwork net(small_net(8, 2));
  const double acc = evaluate(net, latents, /*insertion_layer=*/2);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace r4ncl::snn
