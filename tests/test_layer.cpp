// LIF layer forward dynamics: integration, threshold crossing, reset, decay,
// recurrence, stats accounting.
#include <gtest/gtest.h>

#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

/// A 1→1 layer with a hand-set feedforward weight makes the membrane
/// trajectory fully predictable.
struct ScalarLayer {
  explicit ScalarLayer(float w, float beta = 0.5f, bool recurrent = false) : rng(1) {
    LifParams lif;
    lif.beta = beta;
    lif.recurrent = recurrent;
    layer = std::make_unique<RecurrentLifLayer>(1, 1, lif, SurrogateParams{}, rng);
    layer->w_ff()(0) = w;
    if (recurrent) layer->w_rec()(0) = 0.0f;
  }
  Rng rng;
  std::unique_ptr<RecurrentLifLayer> layer;
};

Tensor constant_input(std::size_t T, float v = 1.0f) {
  Tensor x(T, 1, 1);
  x.fill(v);
  return x;
}

TEST(LifLayer, IntegratesUntilThreshold) {
  // w = 0.4, β = 0.5, θ = 1: V = 0.4, 0.6, 0.7, 0.75... never reaches 1.
  ScalarLayer s(0.4f);
  const Tensor out = s.layer->forward(constant_input(10), SpikeMode::kHard,
                                      ThresholdPolicy::fixed(1.0f), nullptr, nullptr);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_EQ(out(t, 0, 0), 0.0f) << "t=" << t;
}

TEST(LifLayer, SpikesWhenThresholdCrossed) {
  // w = 0.8, β = 0.5: V(0)=0.8, V(1)=1.2 → spike at t=1.
  ScalarLayer s(0.8f);
  LayerCache cache;
  const Tensor out = s.layer->forward(constant_input(3), SpikeMode::kHard,
                                      ThresholdPolicy::fixed(1.0f), &cache, nullptr);
  EXPECT_EQ(out(0, 0, 0), 0.0f);
  EXPECT_EQ(out(1, 0, 0), 1.0f);
  EXPECT_NEAR(cache.membrane(1, 0, 0), 1.2f, 1e-6);
}

TEST(LifLayer, SoftResetSubtractsTheta) {
  // After the spike at t=1 (V=1.2): V(2) = 0.5·1.2 − 1.0 + 0.8 = 0.4.
  ScalarLayer s(0.8f);
  LayerCache cache;
  (void)s.layer->forward(constant_input(3), SpikeMode::kHard, ThresholdPolicy::fixed(1.0f),
                         &cache, nullptr);
  EXPECT_NEAR(cache.membrane(2, 0, 0), 0.4f, 1e-6);
}

TEST(LifLayer, MembraneDecaysWithoutInput) {
  ScalarLayer s(1.5f, 0.5f);
  Tensor x(4, 1, 1);
  x(0, 0, 0) = 1.0f;  // single pulse
  LayerCache cache;
  (void)s.layer->forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(10.0f), &cache, nullptr);
  EXPECT_NEAR(cache.membrane(0, 0, 0), 1.5f, 1e-6);
  EXPECT_NEAR(cache.membrane(1, 0, 0), 0.75f, 1e-6);
  EXPECT_NEAR(cache.membrane(2, 0, 0), 0.375f, 1e-6);
}

TEST(LifLayer, LowerThresholdFiresMore) {
  Rng rng(3);
  LifParams lif;
  RecurrentLifLayer layer(10, 8, lif, SurrogateParams{}, rng);
  Tensor x(20, 2, 10);
  Rng data(5);
  for (auto& v : x.values()) v = data.bernoulli(0.3) ? 1.0f : 0.0f;
  SpikeOpStats high_stats, low_stats;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(1.5f), nullptr, &high_stats);
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(0.4f), nullptr, &low_stats);
  EXPECT_GT(low_stats.spikes, high_stats.spikes);
}

TEST(LifLayer, RecurrentFeedbackChangesDynamics) {
  Rng rng(4);
  LifParams rec_on;
  rec_on.recurrent = true;
  LifParams rec_off;
  rec_off.recurrent = false;
  Rng rng_a(10), rng_b(10);
  RecurrentLifLayer a(6, 6, rec_on, SurrogateParams{}, rng_a);
  RecurrentLifLayer b(6, 6, rec_off, SurrogateParams{}, rng_b);
  // Same feedforward weights (same seed); excitatory recurrence added to a.
  a.w_rec().fill(0.4f);
  Tensor x(15, 1, 6);
  Rng data(6);
  for (auto& v : x.values()) v = data.bernoulli(0.4) ? 1.0f : 0.0f;
  SpikeOpStats sa, sb;
  (void)a.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(1.0f), nullptr, &sa);
  (void)b.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(1.0f), nullptr, &sb);
  EXPECT_GT(sa.spikes, sb.spikes) << "excitatory recurrence must add spikes";
}

TEST(LifLayer, StatsCountsNeuronUpdatesExactly) {
  Rng rng(7);
  RecurrentLifLayer layer(4, 3, LifParams{}, SurrogateParams{}, rng);
  Tensor x(5, 2, 4);
  SpikeOpStats stats;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(1.0f), nullptr, &stats);
  EXPECT_EQ(stats.neuron_updates, 5u * 2u * 3u);
  EXPECT_EQ(stats.timestep_slots, 5u * 2u);
  EXPECT_EQ(stats.synops, 0u) << "no input events → no synops";
  EXPECT_EQ(stats.spikes, 0u);
}

TEST(LifLayer, StatsSynopsScaleWithEvents) {
  Rng rng(8);
  RecurrentLifLayer layer(4, 3, LifParams{}, SurrogateParams{}, rng);
  Tensor x(2, 1, 4);
  x(0, 0, 0) = 1.0f;
  x(0, 0, 1) = 1.0f;
  x(1, 0, 2) = 1.0f;
  SpikeOpStats stats;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(100.0f), nullptr, &stats);
  // 3 input events × fanout 3, no output spikes (θ huge) → no recurrent events.
  EXPECT_EQ(stats.synops, 9u);
}

TEST(LifLayer, AdaptiveThresholdRecordedInCache) {
  Rng rng(9);
  RecurrentLifLayer layer(3, 3, LifParams{}, SurrogateParams{}, rng);
  Tensor x(12, 1, 3);  // silence → decay rule engages
  LayerCache cache;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::adaptive(12), &cache, nullptr);
  ASSERT_EQ(cache.theta.size(), 12u);
  // Silent input: after the first boundary the threshold follows the decay
  // curve (≈0.5), well below the base 1.0.
  EXPECT_LT(cache.theta[5], 0.6f);
}

TEST(LifLayer, RejectsWrongInputWidth) {
  Rng rng(10);
  RecurrentLifLayer layer(4, 2, LifParams{}, SurrogateParams{}, rng);
  Tensor x(3, 1, 5);
  EXPECT_THROW(
      (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(1.0f), nullptr, nullptr),
      Error);
}

TEST(LifLayer, SaveLoadRoundTrip) {
  Rng rng(11);
  RecurrentLifLayer layer(5, 4, LifParams{}, SurrogateParams{}, rng);
  const std::string path = ::testing::TempDir() + "r4ncl_layer.bin";
  {
    BinaryWriter out(path);
    layer.save(out);
    out.close();
  }
  Rng rng2(999);  // different init; load must overwrite
  RecurrentLifLayer restored(5, 4, LifParams{}, SurrogateParams{}, rng2);
  {
    BinaryReader in(path);
    restored.load(in);
  }
  for (std::size_t i = 0; i < layer.w_ff().size(); ++i) {
    EXPECT_EQ(layer.w_ff()(i), restored.w_ff()(i));
  }
  for (std::size_t i = 0; i < layer.w_rec().size(); ++i) {
    EXPECT_EQ(layer.w_rec()(i), restored.w_rec()(i));
  }
  std::remove(path.c_str());
}

TEST(LifLayer, HardSpikesAreBinary) {
  Rng rng(12);
  RecurrentLifLayer layer(8, 6, LifParams{}, SurrogateParams{}, rng);
  Tensor x(10, 3, 8);
  Rng data(13);
  for (auto& v : x.values()) v = data.bernoulli(0.5) ? 1.0f : 0.0f;
  const Tensor out =
      layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(0.5f), nullptr, nullptr);
  for (float v : out.values()) EXPECT_TRUE(v == 0.0f || v == 1.0f);
}

}  // namespace
}  // namespace r4ncl::snn
