// Cost-accounting invariants of the continual-learning engine: what gets
// charged, to whom, and the orderings the paper's efficiency claims rest on.
#include <gtest/gtest.h>

#include "core/continual_trainer.hpp"
#include "core/pretrain.hpp"

namespace r4ncl::core {
namespace {

PretrainConfig micro_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {24, 16, 12, 8};
  cfg.network.num_classes = 4;
  cfg.network.seed = 5;
  cfg.data_params.channels = 24;
  cfg.data_params.classes = 4;
  cfg.data_params.timesteps = 20;
  cfg.data_params.ridge_width = 3.0;
  cfg.data_params.position_pool = 5;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 7;
  cfg.split.train_per_class = 6;
  cfg.split.test_per_class = 3;
  cfg.split.replay_per_class = 2;
  cfg.split.new_class = 3;
  cfg.split.seed = 9;
  cfg.epochs = 6;
  cfg.batch_size = 6;
  return cfg;
}

const PretrainedScenario& scenario() {
  static PretrainedScenario s =
      make_pretrained_scenario(micro_config(), ::testing::TempDir(), true);
  return s;
}

ClRunResult run(const NclMethodConfig& method, std::size_t insertion, std::size_t epochs) {
  snn::SnnNetwork net = scenario().net.clone();
  ClRunConfig cfg;
  cfg.method = method;
  cfg.insertion_layer = insertion;
  cfg.epochs = epochs;
  cfg.eval_every = epochs;
  return run_continual_learning(net, scenario().tasks, cfg);
}

NclMethodConfig micro_sota() {
  NclMethodConfig m = NclMethodConfig::spiking_lr();
  m.cl_timesteps = 20;
  m.batch_size = 6;
  return m;
}

NclMethodConfig micro_r4ncl() {
  NclMethodConfig m = NclMethodConfig::replay4ncl(10);
  m.batch_size = 6;
  return m;
}

TEST(ClAccounting, SotaChargesDecompressionEveryEpoch) {
  const ClRunResult res = run(micro_sota(), 2, 3);
  ASSERT_EQ(res.rows.size(), 3u);
  const auto bits0 = res.rows[0].stats.decompress_bits;
  EXPECT_GT(bits0, 0u);
  // Same buffer decompressed each epoch → identical charge per epoch.
  EXPECT_EQ(res.rows[1].stats.decompress_bits, bits0);
  EXPECT_EQ(res.rows[2].stats.decompress_bits, bits0);
}

TEST(ClAccounting, Replay4NclChargesNoDecompression) {
  const ClRunResult res = run(micro_r4ncl(), 2, 2);
  for (const auto& row : res.rows) EXPECT_EQ(row.stats.decompress_bits, 0u);
}

TEST(ClAccounting, PrepChargedOnceNotPerEpoch) {
  const ClRunResult short_run = run(micro_r4ncl(), 2, 1);
  const ClRunResult long_run = run(micro_r4ncl(), 2, 4);
  EXPECT_EQ(short_run.prep_stats.neuron_updates, long_run.prep_stats.neuron_updates);
  EXPECT_GT(long_run.total_latency_ms(), short_run.total_latency_ms());
}

TEST(ClAccounting, TrainingChargesBackwardWork) {
  const ClRunResult res = run(micro_sota(), 1, 2);
  for (const auto& row : res.rows) {
    EXPECT_GT(row.stats.backward_synops, 0u) << "epoch " << row.epoch;
  }
  // The preparation phase is inference-only.
  EXPECT_EQ(res.prep_stats.backward_synops, 0u);
}

TEST(ClAccounting, ReducedTimestepReducesEveryCostComponent) {
  const ClRunResult sota = run(micro_sota(), 1, 2);
  const ClRunResult r4 = run(micro_r4ncl(), 1, 2);
  snn::SpikeOpStats sota_total = sota.prep_stats;
  for (const auto& r : sota.rows) sota_total.add(r.stats);
  snn::SpikeOpStats r4_total = r4.prep_stats;
  for (const auto& r : r4.rows) r4_total.add(r.stats);
  EXPECT_LT(r4_total.neuron_updates, sota_total.neuron_updates);
  EXPECT_LT(r4_total.backward_synops, sota_total.backward_synops);
  EXPECT_LT(r4_total.timestep_slots, sota_total.timestep_slots);
}

TEST(ClAccounting, LatentWidthMatchesInsertionLayer) {
  for (std::size_t insertion : {1u, 2u, 3u}) {
    const ClRunResult a = run(micro_r4ncl(), insertion, 1);
    const ClRunResult b = run(micro_r4ncl(), insertion, 1);
    EXPECT_EQ(a.latent_memory_bytes, b.latent_memory_bytes) << "memory not deterministic";
  }
  // Wider insertion layers must cost more memory per stored timestep; with
  // widths 16/12/8 and byte padding (2/2/1 bytes per row) layers 1 and 2
  // coincide, layer 3 must be strictly smaller.
  const ClRunResult l1 = run(micro_r4ncl(), 1, 1);
  const ClRunResult l3 = run(micro_r4ncl(), 3, 1);
  EXPECT_GT(l1.latent_memory_bytes, l3.latent_memory_bytes);
}

TEST(ClAccounting, EvaluationIsNeverCharged) {
  // Identical runs with eval every epoch vs only at the end must charge the
  // same modelled work.
  snn::SnnNetwork net_a = scenario().net.clone();
  ClRunConfig cfg_a;
  cfg_a.method = micro_r4ncl();
  cfg_a.insertion_layer = 2;
  cfg_a.epochs = 3;
  cfg_a.eval_every = 1;
  const ClRunResult a = run_continual_learning(net_a, scenario().tasks, cfg_a);
  snn::SnnNetwork net_b = scenario().net.clone();
  ClRunConfig cfg_b = cfg_a;
  cfg_b.eval_every = 3;
  const ClRunResult b = run_continual_learning(net_b, scenario().tasks, cfg_b);
  EXPECT_DOUBLE_EQ(a.total_latency_ms(), b.total_latency_ms());
  EXPECT_DOUBLE_EQ(a.total_energy_uj(), b.total_energy_uj());
}

TEST(ClAccounting, NaiveBaselineHasNoPrepWork) {
  NclMethodConfig naive = NclMethodConfig::naive_baseline();
  naive.cl_timesteps = 20;
  naive.batch_size = 6;
  const ClRunResult res = run(naive, 0, 2);
  EXPECT_EQ(res.prep_stats.neuron_updates, 0u);
  EXPECT_EQ(res.prep_latency_ms, 0.0);
  EXPECT_EQ(res.latent_memory_bytes, 0u);
}

}  // namespace
}  // namespace r4ncl::core
