// Regression tests for the BatchPipeline locking discipline surfaced by the
// thread-safety-annotation audit: stall_seconds()/assemble_seconds() are part
// of the public API and may be polled from a monitoring thread while an epoch
// runs, in BOTH prefetch modes.  The prefetch=0 path originally updated the
// stats counters and consume cursor without mu_, racing those accessors; the
// fix routes every shared-state update through the lock.  These tests pin the
// contract (run them under the `pipeline-stats-tsan` preset to let TSan see
// the poller), plus the mid-epoch shutdown path and prefetch bit-identity at
// the pipeline level.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "data/spike_data.hpp"
#include "snn/batch_pipeline.hpp"
#include "snn/trainer.hpp"
#include "util/rng.hpp"

namespace r4ncl {
namespace {

data::Dataset tiny_dataset(std::size_t n, std::size_t T, std::size_t C) {
  data::Dataset ds;
  ds.reserve(n);
  Rng rng(901);
  for (std::size_t i = 0; i < n; ++i) {
    data::SpikeRaster r(T, C);
    for (auto& b : r.bits) b = rng.bernoulli(0.15) ? 1 : 0;
    ds.push_back({std::move(r), static_cast<std::int32_t>(i % 4)});
  }
  return ds;
}

snn::SampleSource source_over(const data::Dataset& ds) {
  snn::SampleSource source;
  source.size = ds.size();
  source.fetch = [&ds](std::size_t i) -> const data::Sample& { return ds[i]; };
  return source;
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

// Drive several epochs while a second thread hammers the stats accessors.
// Under TSan this is the regression for the unguarded prefetch=0 updates;
// under any sanitizer the monotonicity asserts catch torn reads.
void run_with_stats_poller(std::size_t prefetch) {
  const data::Dataset ds = tiny_dataset(24, 10, 32);
  const snn::SampleSource source = source_over(ds);
  snn::BatchPipeline pipeline(source, /*batch_size=*/5, prefetch);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> polls{0};
  std::thread poller([&] {
    double last_stall = 0.0;
    double last_assemble = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      const double stall = pipeline.stall_seconds();
      const double assemble = pipeline.assemble_seconds();
      EXPECT_GE(stall, last_stall);
      EXPECT_GE(assemble, last_assemble);
      last_stall = stall;
      last_assemble = assemble;
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  const std::vector<std::size_t> order = identity_order(ds.size());
  std::size_t batches = 0;
  std::size_t epochs = 0;
  // At least 4 epochs, then keep going until the poller has provably run at
  // least once (on a loaded single-core runner it may not be scheduled
  // during the first few sub-millisecond epochs).
  while (epochs < 4 || (polls.load() == 0 && epochs < 10000)) {
    pipeline.begin_epoch(order);
    while (const snn::PreparedBatch* pb = pipeline.next_batch()) {
      EXPECT_GT(pb->count, 0u);
      ++batches;
    }
    ++epochs;
  }
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(batches, epochs * ((ds.size() + 4) / 5));
  EXPECT_GT(pipeline.assemble_seconds(), 0.0);
  EXPECT_GT(polls.load(), 0u);
}

TEST(BatchPipelineStats, ConcurrentPollingSynchronousPath) {
  run_with_stats_poller(/*prefetch=*/0);
}

TEST(BatchPipelineStats, ConcurrentPollingPrefetchedPath) {
  run_with_stats_poller(/*prefetch=*/2);
}

TEST(BatchPipelineStats, MidEpochDestructionShutsDownProducer) {
  const data::Dataset ds = tiny_dataset(40, 10, 32);
  const snn::SampleSource source = source_over(ds);
  const std::vector<std::size_t> order = identity_order(ds.size());
  // Destroying the pipeline with most of the epoch unconsumed must wake the
  // parked producer and join it: no hang, no leak, no touched-after-free slot.
  for (std::size_t consumed : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    auto pipeline = std::make_unique<snn::BatchPipeline>(source, 4, /*prefetch=*/3);
    pipeline->begin_epoch(order);
    for (std::size_t i = 0; i < consumed; ++i) {
      ASSERT_NE(pipeline->next_batch(), nullptr);
    }
    pipeline.reset();
  }
}

TEST(BatchPipelineStats, PrefetchedBatchesBitIdenticalToSynchronous) {
  const data::Dataset ds = tiny_dataset(19, 8, 24);
  const snn::SampleSource source = source_over(ds);
  std::vector<std::size_t> order = identity_order(ds.size());
  Rng rng(7);
  rng.shuffle(order);

  snn::BatchPipeline sync_pipe(source, 4, /*prefetch=*/0);
  snn::BatchPipeline async_pipe(source, 4, /*prefetch=*/2);
  sync_pipe.begin_epoch(order);
  async_pipe.begin_epoch(order);
  for (;;) {
    const snn::PreparedBatch* a = sync_pipe.next_batch();
    const snn::PreparedBatch* b = async_pipe.next_batch();
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a == nullptr) break;
    EXPECT_EQ(a->lo, b->lo);
    EXPECT_EQ(a->count, b->count);
    EXPECT_EQ(a->labels, b->labels);
    ASSERT_TRUE(a->batch.same_shape(b->batch));
    EXPECT_EQ(std::memcmp(a->batch.values().data(), b->batch.values().data(),
                          a->batch.values().size() * sizeof(float)),
              0);
  }
}

}  // namespace
}  // namespace r4ncl
