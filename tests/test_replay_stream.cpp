// Streaming minibatch replay: ReplayStream-vs-sample() equivalence (entry
// sets, rng stream, decompress_bits), scratch-pool memory bounds, engine
// equivalence (replay_stream=1 reproduces the materialized run bit for bit),
// the index-ring eviction regression (ring buffer == the historical
// vector-erase semantics across every policy), and the CLI hardening fixes
// (negative values, unknown keys) with their messages pinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/pretrain.hpp"
#include "core/replay_stream.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

/// Buffer with `n` random entries, label i % 5.
LatentReplayBuffer filled_buffer(const compress::CodecConfig& codec, std::size_t n,
                                 std::size_t T = 8, std::size_t C = 24) {
  LatentReplayBuffer buffer(codec, T);
  for (std::size_t i = 0; i < n; ++i) {
    buffer.add(random_raster(T, C, 0.25, 100 + i), static_cast<std::int32_t>(i % 5));
  }
  return buffer;
}

void expect_same_samples(const data::Dataset& a, const std::vector<data::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raster, b[i].raster) << "entry " << i;
    EXPECT_EQ(a[i].label, b[i].label) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Stream vs sample(): identical draws, rng stream, and cost accounting
// ---------------------------------------------------------------------------

TEST(ReplayStream, CursorYieldsSampleEntrySetInOrder) {
  for (const std::uint8_t bits : {std::uint8_t{0}, std::uint8_t{2}}) {
    compress::CodecConfig codec{.ratio = 2, .latent_bits = bits};
    const LatentReplayBuffer buffer = filled_buffer(codec, 20);
    Rng rng_sample(42);
    Rng rng_stream(42);
    snn::SpikeOpStats stats_sample;
    snn::SpikeOpStats stats_stream;
    const data::Dataset drawn = buffer.sample(7, rng_sample, &stats_sample);
    ReplayStream stream = buffer.stream(7, rng_stream, 3, &stats_stream);
    std::vector<data::Sample> streamed;
    while (!stream.done()) {
      for (const data::Sample& s : stream.next()) streamed.push_back(s);
    }
    expect_same_samples(drawn, streamed);
    EXPECT_EQ(stats_sample.decompress_bits, stats_stream.decompress_bits)
        << "bits " << int(bits);
    // Both paths must leave the shared replay Rng in the same state, or a
    // replay_stream toggle would desynchronize every later epoch.
    EXPECT_EQ(rng_sample(), rng_stream());
  }
}

TEST(ReplayStream, FetchRandomAccessMatchesSample) {
  const LatentReplayBuffer buffer = filled_buffer({.ratio = 1, .latent_bits = 4}, 16);
  Rng rng_sample(9);
  Rng rng_stream(9);
  const data::Dataset drawn = buffer.sample(5, rng_sample);
  ReplayStream stream = buffer.stream(5, rng_stream, 2);
  // Out-of-order fetches (the shuffled-trainer access pattern).
  for (const std::size_t i : {std::size_t{4}, std::size_t{0}, std::size_t{2},
                              std::size_t{1}, std::size_t{3}}) {
    const data::Sample& s = stream.fetch(i);
    EXPECT_EQ(s.raster, drawn[i].raster) << "ordinal " << i;
    EXPECT_EQ(s.label, drawn[i].label);
    EXPECT_EQ(stream.label(i), drawn[i].label);
  }
}

TEST(ReplayStream, WholeBufferDrawKeepsOrderAndConsumesNoRng) {
  const LatentReplayBuffer buffer = filled_buffer({.ratio = 1}, 6);
  Rng rng(31);
  Rng untouched(31);
  ReplayStream stream = buffer.stream(buffer.size(), rng, 4);
  const data::Dataset all = buffer.materialize();
  std::vector<data::Sample> streamed;
  while (!stream.done()) {
    for (const data::Sample& s : stream.next()) streamed.push_back(s);
  }
  expect_same_samples(all, streamed);
  EXPECT_EQ(rng(), untouched()) << "materialize-equivalent draw must not consume rng";
}

TEST(ReplayStream, PeakAssemblyBytesBoundedByMinibatch) {
  const std::size_t T = 8;
  const std::size_t C = 24;
  const LatentReplayBuffer buffer = filled_buffer({.ratio = 2}, 30, T, C);
  const std::size_t raster_bytes = T * C;
  Rng rng(5);
  ReplayStream stream = buffer.stream(24, rng, 4);
  while (!stream.done()) (void)stream.next();
  EXPECT_EQ(stream.decoded(), 24u);
  EXPECT_GE(stream.peak_assembly_bytes(), 4 * raster_bytes);
  EXPECT_LT(stream.peak_assembly_bytes(), 24 * raster_bytes)
      << "streamed peak must undercut full materialization";
}

TEST(ReplayStream, EmptyBufferStreamsNothing) {
  const LatentReplayBuffer buffer({.ratio = 1}, 8);
  Rng rng(1);
  ReplayStream stream = buffer.stream(0, rng, 4);
  EXPECT_TRUE(stream.empty());
  EXPECT_TRUE(stream.done());
  EXPECT_TRUE(stream.next().empty());
}

TEST(ReplayStream, DrawIndicesMatchesSampleContract) {
  const LatentReplayBuffer buffer = filled_buffer({.ratio = 1}, 10);
  // k >= size: identity order, no rng consumption.
  Rng rng_a(3);
  Rng rng_b(3);
  const auto all = buffer.draw_indices(10, rng_a);
  EXPECT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  EXPECT_EQ(rng_a(), rng_b());
  // k < size: distinct, in range, exactly k rng draws.
  Rng rng_c(3);
  const auto some = buffer.draw_indices(4, rng_c);
  EXPECT_EQ(some.size(), 4u);
  auto sorted = some;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_LT(sorted.back(), 10u);
}

// ---------------------------------------------------------------------------
// Index-ring eviction regression: ring == historical vector-erase semantics
// ---------------------------------------------------------------------------

/// The pre-ring reference implementation: a plain vector with erase(), the
/// exact algorithm the buffer used before the index-ring refactor.  Runs the
/// same policy logic with the same Rng consumption so any divergence in the
/// ring's logical order shows up as a content mismatch.
struct NaiveBufferModel {
  struct Entry {
    data::SpikeRaster raster;
    std::int32_t label;
  };
  ReplayBufferConfig budget;
  std::size_t entry_bytes;  // all entries share one geometry
  Rng rng;
  std::size_t stream_seen = 0;
  std::size_t evictions = 0;
  std::vector<Entry> entries;

  NaiveBufferModel(const ReplayBufferConfig& b, std::size_t bytes)
      : budget(b), entry_bytes(bytes), rng(b.seed) {}

  bool add(const data::SpikeRaster& raster, std::int32_t label) {
    ++stream_seen;
    const std::size_t capacity = budget.capacity_bytes;
    if (capacity > 0 && (entries.size() + 1) * entry_bytes > capacity) {
      switch (budget.policy) {
        case ReplayPolicy::kFifo:
          while ((entries.size() + 1) * entry_bytes > capacity) evict(0);
          break;
        case ReplayPolicy::kReservoir: {
          const std::uint64_t j = rng.uniform_index(stream_seen);
          if (j >= entries.size()) {
            ++evictions;
            return false;
          }
          evict(static_cast<std::size_t>(j));
          break;
        }
        case ReplayPolicy::kClassBalanced:
          while ((entries.size() + 1) * entry_bytes > capacity) {
            evict(balanced_victim(label));
          }
          break;
        case ReplayPolicy::kLowImportance:
        case ReplayPolicy::kImportanceClassBalanced:
          ADD_FAILURE() << "NaiveBufferModel does not model importance policies";
          break;
      }
    }
    entries.push_back({raster, label});
    return true;
  }

  void evict(std::size_t index) {
    entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(index));
    ++evictions;
  }

  std::size_t balanced_victim(std::int32_t incoming) const {
    std::vector<std::pair<std::int32_t, std::size_t>> counts;
    for (const auto& e : entries) {
      auto it = std::find_if(counts.begin(), counts.end(),
                             [&](const auto& p) { return p.first == e.label; });
      if (it == counts.end()) {
        counts.push_back({e.label, 1});
      } else {
        ++it->second;
      }
    }
    std::sort(counts.begin(), counts.end());
    std::int32_t heaviest = 0;
    std::size_t heaviest_count = 0;
    for (const auto& [label, count] : counts) {
      const std::size_t effective = count + (label == incoming ? 1u : 0u);
      if (effective > heaviest_count) {
        heaviest = label;
        heaviest_count = effective;
      }
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].label == heaviest) return i;
    }
    return 0;
  }
};

class RingEvictionRegression : public ::testing::TestWithParam<ReplayPolicy> {};

TEST_P(RingEvictionRegression, LongStreamMatchesVectorEraseModel) {
  const std::size_t T = 6;
  const std::size_t C = 16;
  // Raw storage so the model can compare decompressed content exactly.
  const compress::CodecConfig codec{.ratio = 1};
  LatentReplayBuffer probe(codec, T);
  probe.add(random_raster(T, C, 0.3, 1), 0);
  const std::size_t entry = probe.memory_bytes();

  const ReplayBufferConfig budget{
      .capacity_bytes = 7 * entry, .policy = GetParam(), .seed = 0xFEED};
  LatentReplayBuffer ring(codec, T, budget);
  NaiveBufferModel model(budget, entry);
  // 400 adds — long enough that FIFO cycles the ring head through multiple
  // compactions and reservoir/balanced hit many middle evictions.
  for (int i = 0; i < 400; ++i) {
    const auto r = random_raster(T, C, 0.3, 5000 + i);
    const std::int32_t label = i % 7;
    EXPECT_EQ(ring.add(r, label), model.add(r, label)) << "add " << i;
  }
  EXPECT_EQ(ring.evictions(), model.evictions);
  EXPECT_EQ(ring.stream_seen(), model.stream_seen);
  const data::Dataset got = ring.materialize();
  ASSERT_EQ(got.size(), model.entries.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].raster, model.entries[i].raster) << "logical index " << i;
    EXPECT_EQ(got[i].label, model.entries[i].label) << "logical index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RingEvictionRegression,
                         ::testing::Values(ReplayPolicy::kFifo, ReplayPolicy::kReservoir,
                                           ReplayPolicy::kClassBalanced),
                         [](const auto& p) { return std::string(to_string(p.param)); });

// ---------------------------------------------------------------------------
// Engine equivalence: replay_stream=1 reproduces the materialized run
// ---------------------------------------------------------------------------

PretrainConfig tiny_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {64, 32, 16, 8};
  cfg.network.num_classes = 6;
  cfg.network.seed = 21;
  cfg.data_params.channels = 64;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 20;
  cfg.data_params.ridge_width = 5.0;
  cfg.data_params.position_pool = 8;
  cfg.data_params.background_rate = 0.004;
  cfg.data_params.rate_jitter = 0.08;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 23;
  cfg.split.train_per_class = 10;
  cfg.split.test_per_class = 4;
  cfg.split.replay_per_class = 3;
  cfg.split.seed = 29;
  cfg.epochs = 12;
  cfg.batch_size = 8;
  return cfg;
}

SequentialRunResult run_tiny_stream(bool streamed, std::size_t replay_samples) {
  const PretrainConfig pc = tiny_config();
  const data::SyntheticShdGenerator generator(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(generator, pc.split, 2);
  snn::SnnNetwork net(pc.network);
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  }
  SequentialRunConfig run;
  run.method = NclMethodConfig::replay4ncl(10);
  run.method.lr_cl = 5e-4f;
  run.method.batch_size = 8;
  run.method.replay_samples_per_epoch = replay_samples;
  run.method.replay_stream = streamed;
  run.insertion_layer = 1;
  run.epochs_per_task = 3;
  run.replay_per_new_class = 3;
  run.seed = 77;
  return run_sequential(net, tasks, run);
}

TEST(ReplayStream, SequentialRunBitIdenticalToMaterializedRun) {
  // Both the sampled draw (k > 0) and the full-buffer draw (k = 0): the
  // streamed engine path must reproduce accuracies, buffer accounting, and
  // modelled cost exactly — same Rng stream, same training batches.
  for (const std::size_t replay_samples : {std::size_t{5}, std::size_t{0}}) {
    const SequentialRunResult a = run_tiny_stream(false, replay_samples);
    const SequentialRunResult b = run_tiny_stream(true, replay_samples);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].acc_base, b.rows[i].acc_base) << "task " << i;
      EXPECT_EQ(a.rows[i].acc_learned, b.rows[i].acc_learned) << "task " << i;
      EXPECT_EQ(a.rows[i].acc_current, b.rows[i].acc_current) << "task " << i;
      EXPECT_EQ(a.rows[i].latent_memory_bytes, b.rows[i].latent_memory_bytes);
      EXPECT_EQ(a.rows[i].buffer_entries, b.rows[i].buffer_entries);
      EXPECT_EQ(a.rows[i].buffer_evictions, b.rows[i].buffer_evictions);
      EXPECT_EQ(a.rows[i].latency_ms, b.rows[i].latency_ms) << "task " << i;
      EXPECT_EQ(a.rows[i].energy_uj, b.rows[i].energy_uj) << "task " << i;
    }
    EXPECT_EQ(a.total_latency_ms, b.total_latency_ms);
    EXPECT_EQ(a.total_energy_uj, b.total_energy_uj);
  }
}

TEST(ReplayStream, ContinualRunBitIdenticalToMaterializedRun) {
  // Same check for the single-task engine (run_continual_learning).
  PretrainConfig pc = tiny_config();
  pc.split.new_class = 5;
  static const PretrainedScenario scenario =
      make_pretrained_scenario(pc, ::testing::TempDir(), true);
  const auto run_once = [&](bool streamed) {
    snn::SnnNetwork net = scenario.net.clone();
    ClRunConfig cfg;
    cfg.method = NclMethodConfig::replay4ncl(10);
    cfg.method.batch_size = 8;
    cfg.method.replay_samples_per_epoch = 4;
    cfg.method.replay_stream = streamed;
    cfg.insertion_layer = 2;
    cfg.epochs = 4;
    cfg.seed = 99;
    return run_continual_learning(net, scenario.tasks, cfg);
  };
  const ClRunResult a = run_once(false);
  const ClRunResult b = run_once(true);
  EXPECT_EQ(a.final_acc_old, b.final_acc_old);
  EXPECT_EQ(a.final_acc_new, b.final_acc_new);
  EXPECT_EQ(a.latent_memory_bytes, b.latent_memory_bytes);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].loss, b.rows[i].loss) << "epoch " << i;
    EXPECT_EQ(a.rows[i].acc_old, b.rows[i].acc_old) << "epoch " << i;
    EXPECT_EQ(a.rows[i].acc_new, b.rows[i].acc_new) << "epoch " << i;
    EXPECT_EQ(a.rows[i].latency_ms, b.rows[i].latency_ms) << "epoch " << i;
    EXPECT_EQ(a.rows[i].energy_uj, b.rows[i].energy_uj) << "epoch " << i;
  }
}

// ---------------------------------------------------------------------------
// CLI hardening: negative values and unknown keys fail loudly
// ---------------------------------------------------------------------------

TEST(ReplayCliOverrides, NegativeBudgetThrowsInsteadOfWrapping) {
  Config cfg;
  cfg.set("budget", "-1");
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  try {
    apply_replay_overrides(method, cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("budget=-1"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("non-negative"), std::string::npos) << e.what();
  }
  // The method config must be untouched up to the failing knob's default.
  EXPECT_EQ(NclMethodConfig::replay4ncl().replay_budget.capacity_bytes,
            method.replay_budget.capacity_bytes);
}

TEST(ReplayCliOverrides, NegativeReplaySamplesThrowsInsteadOfWrapping) {
  Config cfg;
  cfg.set("replay_samples", "-3");
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  try {
    apply_replay_overrides(method, cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("replay_samples=-3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("non-negative"), std::string::npos) << e.what();
  }
}

TEST(ReplayCliOverrides, ReplayStreamKnobParses) {
  Config cfg;
  cfg.set("replay_stream", "1");
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  EXPECT_FALSE(method.replay_stream);
  apply_replay_overrides(method, cfg);
  EXPECT_TRUE(method.replay_stream);
}

TEST(ReplayCliOverrides, UnknownKeyIsRejectedWithValidList) {
  Config cfg;
  cfg.set("latentbits", "4");  // typo for latent_bits
  try {
    validate_standard_keys(cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown config key 'latentbits'"), std::string::npos) << what;
    EXPECT_NE(what.find("latent_bits"), std::string::npos) << what;
    EXPECT_NE(what.find("replay_stream"), std::string::npos) << what;
  }
}

TEST(ReplayCliOverrides, ExtraKeysExtendTheVocabulary) {
  Config cfg;
  cfg.set("tasks", "4");
  cfg.set("scale", "0.5");
  EXPECT_THROW(validate_standard_keys(cfg), Error);
  EXPECT_NO_THROW(validate_standard_keys(cfg, {"tasks"}));
}

}  // namespace
}  // namespace r4ncl::core
