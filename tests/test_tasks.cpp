// Class-incremental task protocol construction.
#include <gtest/gtest.h>

#include "data/tasks.hpp"

namespace r4ncl::data {
namespace {

ShdSynthParams small_params() {
  ShdSynthParams p;
  p.channels = 32;
  p.classes = 5;
  p.timesteps = 20;
  p.seed = 3;
  return p;
}

TaskSplitParams small_split() {
  TaskSplitParams s;
  s.train_per_class = 4;
  s.test_per_class = 2;
  s.replay_per_class = 2;
  s.new_class = 4;
  s.seed = 10;
  return s;
}

TEST(Tasks, SplitSizes) {
  const SyntheticShdGenerator gen(small_params());
  const auto tasks = build_class_incremental(gen, small_split());
  EXPECT_EQ(tasks.old_classes.size(), 4u);
  EXPECT_EQ(tasks.pretrain_train.size(), 16u);
  EXPECT_EQ(tasks.pretrain_test.size(), 8u);
  EXPECT_EQ(tasks.replay_subset.size(), 8u);
  EXPECT_EQ(tasks.new_train.size(), 4u);
  EXPECT_EQ(tasks.new_test.size(), 2u);
}

TEST(Tasks, NewClassExcludedFromOldSets) {
  const SyntheticShdGenerator gen(small_params());
  const auto tasks = build_class_incremental(gen, small_split());
  const std::int32_t new_cls[] = {4};
  EXPECT_EQ(fraction_with_labels(tasks.pretrain_train, new_cls), 0.0);
  EXPECT_EQ(fraction_with_labels(tasks.pretrain_test, new_cls), 0.0);
  EXPECT_EQ(fraction_with_labels(tasks.replay_subset, new_cls), 0.0);
  EXPECT_EQ(fraction_with_labels(tasks.new_train, new_cls), 1.0);
  EXPECT_EQ(fraction_with_labels(tasks.new_test, new_cls), 1.0);
}

TEST(Tasks, ReplaySubsetDrawnFromPretrainTrain) {
  const SyntheticShdGenerator gen(small_params());
  const auto tasks = build_class_incremental(gen, small_split());
  // Every replay raster must appear verbatim in the pre-training set
  // (TS_replay ⊆ TS_pre, Alg. 1).
  for (const auto& r : tasks.replay_subset) {
    bool found = false;
    for (const auto& p : tasks.pretrain_train) {
      if (p.label == r.label && p.raster == r.raster) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Tasks, ReplayCoversEveryOldClass) {
  const SyntheticShdGenerator gen(small_params());
  const auto tasks = build_class_incremental(gen, small_split());
  EXPECT_EQ(classes_of(tasks.replay_subset), tasks.old_classes);
}

TEST(Tasks, TrainAndTestSetsDisjoint) {
  const SyntheticShdGenerator gen(small_params());
  const auto tasks = build_class_incremental(gen, small_split());
  for (const auto& te : tasks.pretrain_test) {
    for (const auto& tr : tasks.pretrain_train) {
      EXPECT_FALSE(te.label == tr.label && te.raster == tr.raster)
          << "test sample duplicated in train set";
    }
  }
}

TEST(Tasks, NonDefaultNewClass) {
  const SyntheticShdGenerator gen(small_params());
  TaskSplitParams split = small_split();
  split.new_class = 0;
  const auto tasks = build_class_incremental(gen, split);
  EXPECT_EQ(tasks.new_class, 0);
  EXPECT_EQ(tasks.old_classes, (std::vector<std::int32_t>{1, 2, 3, 4}));
}

TEST(Tasks, RejectsBadConfig) {
  const SyntheticShdGenerator gen(small_params());
  TaskSplitParams bad = small_split();
  bad.new_class = 7;
  EXPECT_THROW((void)build_class_incremental(gen, bad), Error);
  bad = small_split();
  bad.replay_per_class = 100;
  EXPECT_THROW((void)build_class_incremental(gen, bad), Error);
}

TEST(Tasks, FractionWithLabelsEdgeCases) {
  const std::int32_t cls[] = {1};
  EXPECT_EQ(fraction_with_labels({}, cls), 0.0);
  Dataset ds;
  ds.push_back({SpikeRaster(1, 1), 1});
  ds.push_back({SpikeRaster(1, 1), 2});
  EXPECT_DOUBLE_EQ(fraction_with_labels(ds, cls), 0.5);
}

}  // namespace
}  // namespace r4ncl::data
