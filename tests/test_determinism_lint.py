#!/usr/bin/env python3
"""Unit tests for tools/lint/determinism_lint.py (ctest: lint_unit).

Covers every rule, every suppression form (same-line, line-above, bare,
stale, unknown-rule), the path-scoped exemptions, the pinned finding format
`<path>:<line>: [<rule>] <message>`, and the CLI exit codes.  Stdlib
unittest only — the container has no pytest.
"""

import io
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools" / "lint"))

import determinism_lint as dl  # noqa: E402


def lint(source: str, relpath: str = "src/fixture.cpp"):
    return dl.lint_lines(source.splitlines(), relpath)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class RuleFiringTest(unittest.TestCase):
    """Each rule must fire on its canonical bad construct."""

    def test_unordered_iteration_range_for(self):
        src = (
            "#include <unordered_map>\n"
            "std::unordered_map<int, float> scores;\n"
            "float total() {\n"
            "  float t = 0;\n"
            "  for (const auto& [k, v] : scores) t += v;\n"
            "  return t;\n"
            "}\n"
        )
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["unordered-iteration"])
        self.assertEqual(findings[0].line, 5)

    def test_unordered_iteration_begin_call(self):
        src = (
            "#include <unordered_set>\n"
            "std::unordered_set<int> seen;\n"
            "int first() { return *seen.begin(); }\n"
        )
        self.assertEqual(rules_of(lint(src)), ["unordered-iteration"])

    def test_raw_random_variants(self):
        for call in ("rand()", "srand(7)", "time(nullptr)",
                     "std::rand()", "std::random_device{}()"):
            findings = lint(f"int f() {{ return (int){call}; }}\n")
            self.assertEqual(rules_of(findings), ["raw-random"], msg=call)

    def test_omp_float_accum(self):
        src = (
            "void sum(const float* x, int n) {\n"
            "  double acc = 0;\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    acc += x[i];\n"
            "  }\n"
            "}\n"
        )
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["omp-float-accum"])
        self.assertEqual(findings[0].line, 5)

    def test_run_workers_float_accum(self):
        src = (
            "void fleet() {\n"
            "  float total = 0;\n"
            "  r4ncl::run_workers(4, [&](std::size_t w) {\n"
            "    total += 1.0f;\n"
            "  });\n"
            "}\n"
        )
        self.assertEqual(rules_of(lint(src)), ["omp-float-accum"])

    def test_static_local(self):
        src = "int counter() {\n  static int calls = 0;\n  return ++calls;\n}\n"
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["static-local"])
        self.assertEqual(findings[0].line, 2)

    def test_raw_mutex(self):
        src = (
            "#include <mutex>\n"
            "class C {\n"
            "  std::mutex mu_;\n"
            "  int n_ = 0;\n"
            "};\n"
        )
        self.assertEqual(rules_of(lint(src)), ["raw-mutex"])


class ExemptionTest(unittest.TestCase):
    """Constructs the rules must deliberately NOT flag."""

    def test_unordered_lookup_is_fine(self):
        src = (
            "#include <unordered_map>\n"
            "std::unordered_map<int, float> scores;\n"
            "float at(int k) { return scores.at(k); }\n"
        )
        self.assertEqual(lint(src), [])

    def test_raw_random_exempt_under_util_rng(self):
        src = "unsigned seed() { return std::random_device{}(); }\n"
        self.assertEqual(lint(src, "src/util/rng.cpp"), [])
        self.assertEqual(rules_of(lint(src, "src/core/engine.cpp")),
                         ["raw-random"])

    def test_identifier_containing_time_is_fine(self):
        src = "double f() { return elapsed_time(1.0) + g.time(); }\n"
        # A member call `g.time()` and a free fn `elapsed_time` are not
        # ::time(); only the bare/std-qualified libc call is flagged.
        self.assertEqual(lint(src), [])

    def test_fixed_order_marker_silences_omp_accum(self):
        src = (
            "void sum(const float* x, int n) {\n"
            "  double acc = 0;\n"
            "  // partials folded serially below in fixed-order\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    acc += x[i];\n"
            "  }\n"
            "}\n"
        )
        self.assertEqual(lint(src), [])

    def test_static_const_and_constexpr_are_fine(self):
        src = (
            "int limit() {\n"
            "  static const int cap = 64;\n"
            "  static constexpr int floor_v = 2;\n"
            "  return cap + floor_v;\n"
            "}\n"
        )
        self.assertEqual(lint(src), [])

    def test_static_local_exempt_in_tests(self):
        src = "int counter() {\n  static int calls = 0;\n  return ++calls;\n}\n"
        self.assertEqual(lint(src, "tests/test_x.cpp"), [])
        self.assertEqual(rules_of(lint(src, "bench/b.cpp")), ["static-local"])

    def test_static_member_function_declaration_is_fine(self):
        src = (
            "class C {\n"
            "  static int make(int x);\n"
            "  static C from_parts(int a, int b) { return C{}; }\n"
            "};\n"
        )
        self.assertEqual(lint(src), [])

    def test_guarded_mutex_is_fine(self):
        src = (
            "#include <mutex>\n"
            "class C {\n"
            "  std::mutex mu_;\n"
            "  int n_ R4NCL_GUARDED_BY(mu_) = 0;\n"
            "};\n"
        )
        self.assertEqual(lint(src), [])

    def test_string_literals_do_not_match(self):
        src = 'const char* kMsg = "call rand() over the unordered_map";\n'
        self.assertEqual(lint(src), [])


class SuppressionTest(unittest.TestCase):
    """Every allow() form: same-line, line-above, bare, stale, unknown."""

    BAD_FOR = "for (const auto& [k, v] : m) t += v;"
    PREFIX = ("#include <unordered_map>\n"
              "std::unordered_map<int, int> m;\n"
              "int fold() {\n"
              "  int t = 0;\n")

    def test_allow_on_line_above(self):
        src = (self.PREFIX +
               "  // r4ncl-lint: allow(unordered-iteration) int add commutes\n"
               f"  {self.BAD_FOR}\n  return t;\n}}\n")
        self.assertEqual(lint(src), [])

    def test_allow_on_same_line(self):
        src = (self.PREFIX +
               f"  {self.BAD_FOR}  "
               "// r4ncl-lint: allow(unordered-iteration) int add commutes\n"
               "  return t;\n}\n")
        self.assertEqual(lint(src), [])

    def test_allow_does_not_reach_two_lines_down(self):
        src = (self.PREFIX +
               "  // r4ncl-lint: allow(unordered-iteration) int add commutes\n"
               "  t += 1;\n"
               f"  {self.BAD_FOR}\n  return t;\n}}\n")
        self.assertEqual(rules_of(lint(src)),
                         ["stale-allow", "unordered-iteration"])

    def test_allow_for_wrong_rule_does_not_suppress(self):
        src = (self.PREFIX +
               "  // r4ncl-lint: allow(raw-random) not even the right rule\n"
               f"  {self.BAD_FOR}\n  return t;\n}}\n")
        self.assertEqual(rules_of(lint(src)),
                         ["stale-allow", "unordered-iteration"])

    def test_bare_allow_is_an_error(self):
        src = (self.PREFIX +
               "  // r4ncl-lint: allow(unordered-iteration)\n"
               f"  {self.BAD_FOR}\n  return t;\n}}\n")
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["bare-allow"])
        self.assertEqual(findings[0].line, 5)

    def test_stale_allow_is_an_error(self):
        src = "// r4ncl-lint: allow(raw-random) nothing random here\nint f();\n"
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["stale-allow"])
        self.assertEqual(findings[0].line, 1)

    def test_unknown_rule_is_an_error(self):
        src = "// r4ncl-lint: allow(made-up-rule) reasons\nint f();\n"
        findings = lint(src)
        self.assertEqual(rules_of(findings), ["unknown-rule"])
        self.assertIn("unknown-rule", str(findings[0]))


class FindingFormatTest(unittest.TestCase):
    def test_pinned_format(self):
        src = "int f() {\n  static int n = 0;\n  return ++n;\n}\n"
        findings = lint(src, "src/x.cpp")
        self.assertEqual(len(findings), 1)
        text = str(findings[0])
        # Format is load-bearing: editors and the CI annotator parse it.
        self.assertRegex(text, r"^src/x\.cpp:2: \[static-local\] .+$")

    def test_findings_sorted_by_line(self):
        src = (
            "#include <cstdlib>\n"
            "int a() { return rand(); }\n"
            "int b() {\n  static int n = 0;\n  return ++n + rand();\n}\n"
        )
        findings = lint(src)
        self.assertEqual([f.line for f in findings], sorted(f.line for f in findings))


class CliTest(unittest.TestCase):
    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = dl.main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_self_test_passes(self):
        code, out, _ = self.run_main(["--self-test"])
        self.assertEqual(code, 0)
        self.assertIn("fixtures passed", out)

    def test_list_rules(self):
        code, out, _ = self.run_main(["--list-rules"])
        self.assertEqual(code, 0)
        self.assertEqual(out.split(), list(dl.RULES))

    def test_clean_file_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = Path(tmp) / "clean.cpp"
            p.write_text("int f() { return 1; }\n")
            code, out, _ = self.run_main(["--root", tmp, str(p)])
        self.assertEqual(code, 0)
        self.assertIn("clean", out)

    def test_findings_exit_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = Path(tmp) / "dirty.cpp"
            p.write_text("#include <cstdlib>\nint f() { return rand(); }\n")
            code, out, _ = self.run_main(["--root", tmp, str(p)])
        self.assertEqual(code, 1)
        self.assertIn("[raw-random]", out)

    def test_missing_path_exits_two(self):
        code, _, err = self.run_main(["/no/such/path.cpp"])
        self.assertEqual(code, 2)
        self.assertIn("no such path", err)

    def test_repo_tree_is_clean(self):
        # The wall's headline invariant: the checked-in tree has zero
        # unsuppressed findings.
        root = Path(__file__).resolve().parents[1]
        code, out, _ = self.run_main(["--root", str(root)])
        self.assertEqual(code, 0, msg=out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
