// Sub-byte quantized latent replays: quantizer/packing property tests,
// storage-footprint guarantees, the capacity-multiplication statistic, and
// end-to-end determinism of quantized budgeted streams.
//
// The legacy (latent_bits == 0) expectations pinned here are the PR 2
// baselines: stored-byte layouts and payload identities that budgeted-replay
// results were recorded against — they must never drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/pretrain.hpp"
#include "core/sequential.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

constexpr unsigned kDepths[] = {1, 2, 4, 8};

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

/// Spikes of `raster` in channel c over source group tc (codec ratio r).
std::uint32_t group_count(const data::SpikeRaster& raster, std::size_t tc, std::size_t c,
                          std::uint32_t ratio) {
  const std::size_t lo = tc * ratio;
  const std::size_t hi = std::min<std::size_t>(lo + ratio, raster.timesteps);
  std::uint32_t count = 0;
  for (std::size_t t = lo; t < hi; ++t) count += raster.bits[t * raster.channels + c];
  return count;
}

// ---------------------------------------------------------------------------
// Packing: multi-bit elements through PackedRaster
// ---------------------------------------------------------------------------

TEST(QuantizedLatents, PackElementsRoundTripsExactlyAtEveryDepth) {
  Rng rng(17);
  for (const unsigned bits : kDepths) {
    const unsigned mask = (1u << bits) - 1u;
    std::vector<std::uint8_t> values(9 * 21);
    for (auto& v : values) v = static_cast<std::uint8_t>(rng.uniform_index(mask + 1));
    const compress::PackedRaster packed = compress::pack_elements(values, 9, 21, bits);
    EXPECT_EQ(packed.bits_per_element, bits);
    EXPECT_EQ(packed.payload_bytes(), 9u * ((21u * bits + 7u) / 8u));
    EXPECT_EQ(compress::unpack_elements(packed), values);
  }
}

TEST(QuantizedLatents, PackElementsRejectsOutOfRangeValues) {
  const std::vector<std::uint8_t> values = {0, 1, 2, 3};  // 3 needs 2 bits
  EXPECT_THROW((void)compress::pack_elements(values, 2, 2, 1), Error);
  EXPECT_THROW((void)compress::pack_elements(values, 2, 2, 3), Error);  // bad depth
  const auto packed = compress::pack_elements(values, 2, 2, 2);
  EXPECT_EQ(compress::unpack_elements(packed), values);
}

// ---------------------------------------------------------------------------
// The count quantizer: exactness, idempotence, error bound (exhaustive)
// ---------------------------------------------------------------------------

TEST(QuantizedLatents, QuantizerIsExactWhenLevelsCoverTheRange) {
  // 2^bits - 1 >= ratio makes the quantizer injective: 8 bits is lossless
  // for every supported ratio, 4 bits up to ratio 15, 2 bits up to 3.
  for (const unsigned bits : kDepths) {
    const std::uint32_t levels = (1u << bits) - 1u;
    for (std::uint32_t ratio = 1; ratio <= std::min<std::uint32_t>(levels, 255); ++ratio) {
      for (std::uint32_t c = 0; c <= ratio; ++c) {
        EXPECT_EQ(compress::dequantize_count(compress::quantize_count(c, ratio, bits),
                                             ratio, bits),
                  c)
            << "bits=" << bits << " ratio=" << ratio << " count=" << c;
      }
    }
  }
}

TEST(QuantizedLatents, QuantizerIsIdempotentAtEveryDepth) {
  // dequantize lands on a codebook point: re-quantizing must return the same
  // level, for every depth and every ratio (exhaustive over counts).
  for (const unsigned bits : kDepths) {
    for (std::uint32_t ratio = 1; ratio <= 64; ++ratio) {
      for (std::uint32_t c = 0; c <= ratio; ++c) {
        const std::uint32_t level = compress::quantize_count(c, ratio, bits);
        const std::uint32_t rec = compress::dequantize_count(level, ratio, bits);
        ASSERT_LE(rec, ratio);
        EXPECT_EQ(compress::quantize_count(rec, ratio, bits), level)
            << "bits=" << bits << " ratio=" << ratio << " count=" << c;
      }
    }
  }
}

TEST(QuantizedLatents, QuantizerErrorIsBoundedByHalfAnLsb) {
  // |count - reconstruction| <= LSB/2 (LSB = ratio / (2^bits - 1)) plus the
  // half-count slack of rounding reconstructions to whole spikes.
  for (const unsigned bits : kDepths) {
    const double levels = static_cast<double>((1u << bits) - 1u);
    for (std::uint32_t ratio = 1; ratio <= 64; ++ratio) {
      const double bound = static_cast<double>(ratio) / (2.0 * levels) + 0.5;
      for (std::uint32_t c = 0; c <= ratio; ++c) {
        const std::uint32_t rec = compress::dequantize_count(
            compress::quantize_count(c, ratio, bits), ratio, bits);
        EXPECT_LE(std::fabs(static_cast<double>(c) - static_cast<double>(rec)), bound)
            << "bits=" << bits << " ratio=" << ratio << " count=" << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec round trips through the packed payload
// ---------------------------------------------------------------------------

TEST(QuantizedLatents, EightBitRoundTripPreservesEveryGroupCount) {
  // At 8 bits every group count (ratio <= 255) survives exactly, so the
  // round trip loses only within-group spike positions — total and per-group
  // spike counts are identical and retention is exactly 1.
  for (const std::uint32_t ratio : {1u, 2u, 5u, 16u}) {
    const compress::CodecConfig cfg{.ratio = ratio, .latent_bits = 8};
    const data::SpikeRaster r = random_raster(48, 13, 0.3, 900 + ratio);
    const compress::PackedRaster packed = compress::compress_packed(r, cfg);
    const data::SpikeRaster round = compress::decompress_packed(packed, 48, cfg);
    for (std::size_t tc = 0; tc < packed.timesteps; ++tc) {
      for (std::size_t c = 0; c < r.channels; ++c) {
        ASSERT_EQ(group_count(round, tc, c, ratio), group_count(r, tc, c, ratio))
            << "ratio=" << ratio << " group=" << tc << " channel=" << c;
      }
    }
    EXPECT_DOUBLE_EQ(compress::spike_retention(r, cfg), 1.0);
    // Ratio 1 has nothing to regroup: the raster itself round-trips exactly.
    if (ratio == 1) {
      EXPECT_EQ(round, r);
    }
  }
}

TEST(QuantizedLatents, CodecRoundTripIsIdempotentAtEveryDepth) {
  // One round trip canonicalises (quantized counts at group-leading slots);
  // a second must be the identity — payload and raster fixed points — even
  // when the last group is a partial tail (T not divisible by ratio).
  Rng rng(23);
  for (const unsigned bits : kDepths) {
    for (const std::uint32_t ratio : {1u, 2u, 3u, 5u, 16u}) {
      for (const std::size_t T : {std::size_t{20}, std::size_t{21}}) {
        const compress::CodecConfig cfg{.ratio = ratio,
                                        .latent_bits = static_cast<std::uint8_t>(bits)};
        data::SpikeRaster r(T, 9);
        for (auto& b : r.bits) b = rng.bernoulli(0.35) ? 1 : 0;
        const compress::PackedRaster p1 = compress::compress_packed(r, cfg);
        const data::SpikeRaster d1 = compress::decompress_packed(p1, T, cfg);
        const compress::PackedRaster p2 = compress::compress_packed(d1, cfg);
        const data::SpikeRaster d2 = compress::decompress_packed(p2, T, cfg);
        EXPECT_EQ(p2.payload, p1.payload)
            << "bits=" << bits << " ratio=" << ratio << " T=" << T;
        EXPECT_EQ(d2, d1) << "bits=" << bits << " ratio=" << ratio << " T=" << T;
      }
    }
  }
}

TEST(QuantizedLatents, LegacyConfigStaysBitIdenticalToBinaryPath) {
  // latent_bits == 0 must produce byte-for-byte the PR 2 payloads.
  const data::SpikeRaster r = random_raster(24, 17, 0.3, 1234);
  for (const std::uint32_t ratio : {1u, 2u, 4u}) {
    const compress::CodecConfig legacy{.ratio = ratio};
    ASSERT_FALSE(legacy.quantized());
    const compress::PackedRaster packed = compress::compress_packed(r, legacy);
    EXPECT_EQ(packed.bits_per_element, 1);
    EXPECT_EQ(packed.payload, compress::pack(compress::compress(r, legacy)).payload);
  }
}

// ---------------------------------------------------------------------------
// Storage footprint: stored_bytes shrinks proportionally with depth
// ---------------------------------------------------------------------------

TEST(QuantizedLatents, StoredBytesShrinkProportionallyWithDepth) {
  // C = 48 keeps every depth free of row padding, so payloads are exactly
  // proportional: T*C bits at depth 1, times the depth otherwise.
  constexpr std::size_t T = 12, C = 48;
  const data::SpikeRaster r = random_raster(T, C, 0.3, 55);
  std::size_t expected_payload[9] = {};
  expected_payload[1] = T * C / 8;
  for (const unsigned bits : kDepths) {
    const compress::CodecConfig cfg{.ratio = 1,
                                    .latent_bits = static_cast<std::uint8_t>(bits)};
    LatentReplayBuffer buf(cfg, T);
    ASSERT_TRUE(buf.add(r, 0));
    const std::size_t payload = T * C * bits / 8;
    EXPECT_EQ(buf.memory_bytes(), payload + 24u) << "bits=" << bits;
    if (bits > 1) {
      EXPECT_EQ(payload, expected_payload[1] * bits) << "bits=" << bits;
    }
  }
  // PR 2 baseline layouts, pinned: raw binary entries cost row-padded bits
  // plus a 16-byte header; ratio-2 codec entries add the 8-byte codec header.
  LatentReplayBuffer raw({.ratio = 1}, T);
  raw.add(r, 0);
  EXPECT_EQ(raw.memory_bytes(), T * ((C + 7) / 8) + 16u);
  LatentReplayBuffer codec({.ratio = 2}, T);
  codec.add(r, 0);
  EXPECT_EQ(codec.memory_bytes(), (T / 2) * ((C + 7) / 8) + 24u);
}

TEST(QuantizedLatents, QuantizedSampleChargesDecompressBitsProportionally) {
  // sample(k) must charge exactly k/n of materialize()'s codec work, and a
  // 4-bit buffer must charge half the bits of the 8-bit one.
  auto charge = [](std::uint8_t bits, std::size_t draw) {
    const compress::CodecConfig cfg{.ratio = 1, .latent_bits = bits};
    LatentReplayBuffer buf(cfg, 12);
    for (int i = 0; i < 10; ++i) buf.add(random_raster(12, 48, 0.3, 700 + i), i);
    snn::SpikeOpStats stats;
    if (draw == 0) {
      (void)buf.materialize(&stats);
    } else {
      Rng rng(5);
      (void)buf.sample(draw, rng, &stats);
    }
    return stats.decompress_bits;
  };
  const auto full8 = charge(8, 0);
  ASSERT_GT(full8, 0u);
  EXPECT_EQ(charge(8, 3) * 10, full8 * 3);
  EXPECT_EQ(charge(4, 0) * 2, full8);
  EXPECT_EQ(charge(4, 3) * 20, full8 * 3);
}

// ---------------------------------------------------------------------------
// The capacity statistic: 4 bits holds ~2x the entries of 8 bits
// ---------------------------------------------------------------------------

TEST(QuantizedLatents, FourBitBudgetHoldsTwiceTheEntriesOfEightBit) {
  // Same stream, same capacity_bytes, same reservoir policy — only the
  // stored depth differs.  Depth 4 must retain ~2x the entries of depth 8
  // (within [1.9, 2.1]: headers keep it just under exactly 2x), and the
  // retained set must stay stream-uniform across eviction seeds.
  constexpr std::size_t T = 12, C = 48, kStream = 120;
  const std::size_t capacity = 15000;
  auto fill = [&](std::uint8_t bits, std::uint64_t seed) {
    const compress::CodecConfig cfg{.ratio = 1, .latent_bits = bits};
    LatentReplayBuffer buf(cfg, T,
                           {.capacity_bytes = capacity,
                            .policy = ReplayPolicy::kReservoir,
                            .seed = seed});
    for (std::size_t i = 0; i < kStream; ++i) {
      (void)buf.add(random_raster(T, C, 0.3, 2000 + i), static_cast<std::int32_t>(i % 6));
      EXPECT_LE(buf.memory_bytes(), capacity);
    }
    return buf;
  };
  std::size_t entries8 = 0, entries4 = 0;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto buf8 = fill(8, seed);
    const auto buf4 = fill(4, seed);
    // Equal-geometry entries: the resident count is capacity-determined and
    // must not vary with the eviction seed.
    if (entries8 == 0) {
      entries8 = buf8.size();
      entries4 = buf4.size();
    }
    EXPECT_EQ(buf8.size(), entries8);
    EXPECT_EQ(buf4.size(), entries4);
    EXPECT_GT(buf8.evictions(), 0u);
    EXPECT_GT(buf4.evictions(), 0u);
  }
  const double gain =
      static_cast<double>(entries4) / static_cast<double>(entries8);
  EXPECT_GE(gain, 1.9) << entries4 << " vs " << entries8;
  EXPECT_LE(gain, 2.1) << entries4 << " vs " << entries8;
  // And depth 2 stretches further still.
  const auto buf2 = fill(2, 11);
  EXPECT_GT(buf2.size(), entries4);
}

// ---------------------------------------------------------------------------
// End-to-end: quantized budgeted streams through the sequential engine
// ---------------------------------------------------------------------------

/// Tiny 6-class scenario (geometry of test_sequential) for 2-task streams.
PretrainConfig small_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {96, 48, 24, 12};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 96;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 24;
  cfg.data_params.ridge_width = 5.0;
  cfg.data_params.position_pool = 8;
  cfg.data_params.background_rate = 0.004;
  cfg.data_params.rate_jitter = 0.08;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 14;
  cfg.split.test_per_class = 5;
  cfg.split.replay_per_class = 3;
  cfg.split.seed = 41;
  cfg.epochs = 30;
  cfg.batch_size = 8;
  return cfg;
}

/// Wider 12-class scenario for the 10-task long stream (base = 2 classes).
PretrainConfig wide_config() {
  PretrainConfig cfg = small_config();
  cfg.network.num_classes = 12;
  cfg.data_params.classes = 12;
  cfg.split.test_per_class = 8;
  cfg.split.replay_per_class = 2;
  return cfg;
}

snn::SnnNetwork pretrain_on_base(const PretrainConfig& pc,
                                 const data::SequentialTasks& tasks) {
  snn::SnnNetwork net(pc.network);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = pc.epochs;
  opts.batch_size = pc.batch_size;
  (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  return net;
}

SequentialRunConfig stream_run() {
  SequentialRunConfig cfg;
  cfg.method = NclMethodConfig::replay4ncl(12);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 6;
  cfg.replay_per_new_class = 4;
  return cfg;
}

TEST(QuantizedSequentialRun, IdenticalSeedsReproduceQuantizedRunExactly) {
  // The end-to-end determinism satellite: identical seeds + latent_bits must
  // produce byte-identical accuracy traces through eviction, quantization
  // and per-epoch sampling.
  const PretrainConfig pc = small_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 2);
  const snn::SnnNetwork pretrained = pretrain_on_base(pc, tasks);

  SequentialRunConfig run = stream_run();
  run.epochs_per_task = 4;
  run.method = run.method.with_latent_bits(2);
  {
    LatentReplayBuffer probe(run.method.storage_codec, run.method.cl_timesteps);
    probe.add(data::SpikeRaster(run.method.cl_timesteps, 48), 0);
    run.method.replay_budget.capacity_bytes = 16 * probe.memory_bytes();
  }
  run.method.replay_budget.policy = ReplayPolicy::kReservoir;
  run.method.replay_samples_per_epoch = 6;

  auto run_once = [&]() {
    snn::SnnNetwork net = pretrained.clone();
    return run_sequential(net, tasks, run);
  };
  const SequentialRunResult a = run_once();
  const SequentialRunResult b = run_once();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].acc_base, b.rows[i].acc_base);
    EXPECT_EQ(a.rows[i].acc_learned, b.rows[i].acc_learned);
    EXPECT_EQ(a.rows[i].acc_current, b.rows[i].acc_current);
    EXPECT_EQ(a.rows[i].latent_memory_bytes, b.rows[i].latent_memory_bytes);
    EXPECT_EQ(a.rows[i].buffer_entries, b.rows[i].buffer_entries);
    EXPECT_EQ(a.rows[i].buffer_evictions, b.rows[i].buffer_evictions);
    EXPECT_EQ(a.rows[i].latency_ms, b.rows[i].latency_ms);
  }
  EXPECT_EQ(a.total_latency_ms, b.total_latency_ms);
  EXPECT_EQ(a.total_energy_uj, b.total_energy_uj);
}

TEST(QuantizedSequentialRun, FourBitTenTaskStreamMatchesEightBitAccuracy) {
  // The acceptance scenario: a 10-task stream under one fixed capacity_bytes
  // sized to starve the 8-bit configuration (the 8-bit 3-task demand).  At
  // 4 bits the same budget must hold >= 1.9x the entries, and the final
  // average stream accuracy must stay within 2 points of the 8-bit
  // (full-precision: ratio 1 makes 8-bit storage lossless) run.  Accuracy is
  // smoothed over the last three tasks and averaged over two run seeds, as
  // in the PR 2 budget acceptance test.
  const PretrainConfig pc = wide_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 10);
  const snn::SnnNetwork pretrained = pretrain_on_base(pc, tasks);

  SequentialRunConfig run = stream_run();
  run.epochs_per_task = 30;
  run.replay_per_new_class = 14;  // = train_per_class: every sample recorded
  run.method.replay_samples_per_epoch = 40;
  run.method.replay_budget.policy = ReplayPolicy::kReservoir;

  // 8-bit per-entry cost at the insertion geometry (T* = 12, width 48).
  std::size_t entry8 = 0;
  {
    LatentReplayBuffer probe(run.method.with_latent_bits(8).storage_codec,
                             run.method.cl_timesteps);
    probe.add(data::SpikeRaster(run.method.cl_timesteps, 48), 0);
    entry8 = probe.memory_bytes();
  }
  // 8-bit demand after three tasks: the base latents plus three recordings.
  const std::size_t capacity =
      entry8 * (tasks.replay_subset.size() + 3 * run.replay_per_new_class);

  auto run_with = [&](std::uint8_t bits, std::uint64_t seed) {
    snn::SnnNetwork net = pretrained.clone();
    SequentialRunConfig bounded = run;
    bounded.seed = seed;
    bounded.method = run.method.with_latent_bits(bits);
    bounded.method.replay_budget.capacity_bytes = capacity;
    return run_sequential(net, tasks, bounded);
  };
  auto last3 = [](const SequentialRunResult& res) {
    double sum = 0.0;
    for (std::size_t i = res.rows.size() - 3; i < res.rows.size(); ++i) {
      sum += res.rows[i].acc_learned;
    }
    return sum / 3.0;
  };

  constexpr std::uint64_t kSeeds[] = {4242, 77};
  double acc8 = 0.0, acc4 = 0.0;
  std::size_t entries8 = 0, entries4 = 0;
  for (const std::uint64_t seed : kSeeds) {
    const SequentialRunResult r8 = run_with(8, seed);
    const SequentialRunResult r4 = run_with(4, seed);
    ASSERT_EQ(r8.rows.size(), 10u);
    ASSERT_EQ(r4.rows.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_LE(r8.rows[i].latent_memory_bytes, capacity);
      ASSERT_LE(r4.rows[i].latent_memory_bytes, capacity);
    }
    EXPECT_GT(r8.rows.back().buffer_evictions, 0u)
        << "8-bit run must be budget-starved for the comparison to bite";
    entries8 = r8.rows.back().buffer_entries;
    entries4 = r4.rows.back().buffer_entries;
    acc8 += last3(r8) / std::size(kSeeds);
    acc4 += last3(r4) / std::size(kSeeds);
  }
  EXPECT_GE(static_cast<double>(entries4),
            1.9 * static_cast<double>(entries8))
      << entries4 << " vs " << entries8;
  // "Within 2 points of full precision": sub-byte storage must not cost
  // accuracy.  (It usually *gains* here — double the resident entries.)
  EXPECT_GE(acc4, acc8 - 0.02)
      << "4-bit stream lost more than 2 points vs the 8-bit run";
}

}  // namespace
}  // namespace r4ncl::core
