// Parameterized freeze/learn semantics of the insertion-layer mechanism —
// the structural core of latent replay (Fig. 6 frozen vs learning layers).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "snn/network.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

NetworkConfig tiny_config() {
  NetworkConfig cfg;
  cfg.layer_sizes = {10, 8, 6, 4};
  cfg.num_classes = 3;
  cfg.seed = 77;
  return cfg;
}

Tensor random_spikes(std::size_t T, std::size_t B, std::size_t N, std::uint64_t seed) {
  Tensor x(T, B, N);
  Rng rng(seed);
  for (auto& v : x.values()) v = rng.bernoulli(0.4) ? 1.0f : 0.0f;
  return x;
}

std::vector<float> snapshot(const Tensor& t) {
  return {t.values().begin(), t.values().end()};
}

double movement(const Tensor& t, const std::vector<float>& before) {
  double m = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) m += std::fabs(t(i) - before[i]);
  return m;
}

class InsertionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InsertionSweep, FreezesPrefixTrainsSuffixAndReadout) {
  const std::size_t insertion = GetParam();
  SnnNetwork net(tiny_config());
  AdamOptimizer opt;
  const std::size_t width = net.insertion_width(insertion);
  const Tensor x = random_spikes(6, 3, width, insertion + 1);
  const std::int32_t labels_arr[] = {0, 1, 2};

  std::vector<std::vector<float>> ff_before, rec_before;
  for (std::size_t l = 0; l < net.num_hidden(); ++l) {
    ff_before.push_back(snapshot(net.hidden(l).w_ff()));
    rec_before.push_back(snapshot(net.hidden(l).w_rec()));
  }
  const auto readout_before = snapshot(net.readout().w());

  for (int step = 0; step < 3; ++step) {
    (void)net.train_step(x, {labels_arr, 3}, insertion, ThresholdPolicy::fixed(1.0f), opt,
                         1e-2f);
  }

  for (std::size_t l = 0; l < net.num_hidden(); ++l) {
    const double ff_moved = movement(net.hidden(l).w_ff(), ff_before[l]);
    const double rec_moved = movement(net.hidden(l).w_rec(), rec_before[l]);
    if (l < insertion) {
      EXPECT_EQ(ff_moved, 0.0) << "frozen layer " << l << " moved";
      EXPECT_EQ(rec_moved, 0.0) << "frozen layer " << l << " recurrent moved";
    } else {
      EXPECT_GT(ff_moved, 0.0) << "learning layer " << l << " did not move";
    }
  }
  EXPECT_GT(movement(net.readout().w(), readout_before), 0.0)
      << "readout must always train";
}

TEST_P(InsertionSweep, LogitsShapeFromAnyInsertionPoint) {
  const std::size_t insertion = GetParam();
  SnnNetwork net(tiny_config());
  const Tensor x = random_spikes(5, 2, net.insertion_width(insertion), insertion + 9);
  const Tensor logits = net.forward_logits(x, insertion, ThresholdPolicy::fixed(1.0f));
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST_P(InsertionSweep, StatsOnlyCountExecutedLayers) {
  const std::size_t insertion = GetParam();
  SnnNetwork net(tiny_config());
  const Tensor x = random_spikes(5, 2, net.insertion_width(insertion), insertion + 21);
  SpikeOpStats stats;
  (void)net.forward_logits(x, insertion, ThresholdPolicy::fixed(1.0f), &stats);
  // neuron updates = T·B·(Σ widths of executed hidden layers + classes)
  std::size_t expected = 3;  // readout classes
  for (std::size_t l = insertion; l < net.num_hidden(); ++l) {
    expected += net.insertion_width(l + 1);
  }
  EXPECT_EQ(stats.neuron_updates, 5u * 2u * expected);
}

INSTANTIATE_TEST_SUITE_P(AllInsertionLayers, InsertionSweep,
                         ::testing::Values(0u, 1u, 2u, 3u));

}  // namespace
}  // namespace r4ncl::snn
