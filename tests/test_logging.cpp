// Logger thread safety: concurrent emission through a swappable sink never
// interleaves or drops lines, and sink swap serializes with in-flight emits.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace r4ncl {
namespace {

/// Restores the default sink and level even when a test fails mid-way.
struct SinkGuard {
  LogLevel saved_level = log_level();
  ~SinkGuard() {
    set_log_sink({});
    set_log_level(saved_level);
  }
};

TEST(Logging, SinkReceivesLevelAndMessage) {
  SinkGuard guard;
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  set_log_level(LogLevel::kDebug);
  R4NCL_WARN("warn " << 1);
  R4NCL_DEBUG("debug " << 2);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "warn 1");
  EXPECT_EQ(captured[1].first, LogLevel::kDebug);
  EXPECT_EQ(captured[1].second, "debug 2");
}

TEST(Logging, EmptySinkRestoresDefault) {
  SinkGuard guard;
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  R4NCL_ERROR("through the sink");
  set_log_sink({});
  R4NCL_ERROR("back to stderr");  // must not reach the removed sink
  EXPECT_EQ(calls, 1);
}

TEST(Logging, LevelThresholdDropsBelow) {
  SinkGuard guard;
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  set_log_level(LogLevel::kWarn);
  R4NCL_INFO("dropped");
  R4NCL_DEBUG("dropped");
  R4NCL_WARN("kept");
  R4NCL_ERROR("kept");
  EXPECT_EQ(calls, 2);
}

TEST(Logging, ConcurrentEmissionNeverTearsLines) {
  // The regression this satellite exists for: shard workers logging
  // concurrently must produce whole lines.  The sink runs under the logger's
  // emission mutex, so push_back needs no extra locking — if emission were
  // unserialized this vector (and real stderr lines) would corrupt.
  SinkGuard guard;
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& message) { lines.push_back(message); });
  set_log_level(LogLevel::kInfo);
  const std::size_t workers = 8;
  const std::size_t per_worker = 200;
  run_workers(workers, [&](std::size_t w) {
    for (std::size_t i = 0; i < per_worker; ++i) {
      R4NCL_INFO("worker " << w << " line " << i);
    }
  });
  ASSERT_EQ(lines.size(), workers * per_worker);
  // Every line is exactly one worker's whole message, none interleaved.
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t i = 0; i < per_worker; ++i) {
      const std::string expected =
          "worker " + std::to_string(w) + " line " + std::to_string(i);
      EXPECT_EQ(std::count(lines.begin(), lines.end(), expected), 1)
          << "missing or torn: " << expected;
    }
  }
}

}  // namespace
}  // namespace r4ncl
