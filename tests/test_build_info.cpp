// Guards on the build configuration itself: the library hard-requires C++20
// (std::source_location in util/error.hpp, std::numbers in util/rng.cpp),
// and the OpenMP state of parallel_for must be visible in test reports so a
// silently-serial build is caught in CI, not in a bench regression.
#include <gtest/gtest.h>

#include "util/parallel.hpp"

namespace r4ncl {
namespace {

TEST(BuildInfo, CompiledAsCpp20OrLater) {
  static_assert(__cplusplus >= 202002L, "r4ncl requires C++20");
  EXPECT_GE(__cplusplus, 202002L);
}

TEST(BuildInfo, ReportsOpenMpState) {
  RecordProperty("openmp_enabled", openmp_enabled() ? 1 : 0);
  if (openmp_enabled()) {
    SUCCEED() << "parallel_for dispatches via OpenMP";
  } else {
    SUCCEED() << "parallel_for uses the std::thread fallback (OpenMP absent "
                 "at build time)";
  }
}

TEST(BuildInfo, ThreadCountIsSane) {
  EXPECT_GE(num_threads(), 1);
}

}  // namespace
}  // namespace r4ncl
