// Parameterized properties of time_rescale across target lengths and
// methods — the transformation underlying the paper's timestep optimization.
#include <tuple>

#include <gtest/gtest.h>

#include "data/spike_data.hpp"
#include "util/rng.hpp"

namespace r4ncl::data {
namespace {

class RescaleSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, TimeRescaleMethod>> {
 protected:
  SpikeRaster make_raster(double density, std::uint64_t seed = 5) const {
    SpikeRaster r(100, 16);
    Rng rng(seed);
    for (auto& b : r.bits) b = rng.bernoulli(density) ? 1 : 0;
    return r;
  }
};

TEST_P(RescaleSweep, OutputGeometry) {
  const auto [target, method] = GetParam();
  const SpikeRaster out = time_rescale(make_raster(0.2), target, method);
  EXPECT_EQ(out.timesteps, target);
  EXPECT_EQ(out.channels, 16u);
}

TEST_P(RescaleSweep, NeverCreatesSpikesFromSilence) {
  const auto [target, method] = GetParam();
  const SpikeRaster out = time_rescale(SpikeRaster(100, 16), target, method);
  EXPECT_EQ(out.spike_count(), 0u);
}

TEST_P(RescaleSweep, SpikeCountNeverGrows) {
  const auto [target, method] = GetParam();
  const SpikeRaster r = make_raster(0.3);
  const SpikeRaster out = time_rescale(r, target, method);
  EXPECT_LE(out.spike_count(), r.spike_count());
}

TEST_P(RescaleSweep, FullDensityStaysFull) {
  const auto [target, method] = GetParam();
  SpikeRaster r(100, 4);
  for (auto& b : r.bits) b = 1;
  const SpikeRaster out = time_rescale(r, target, method);
  EXPECT_EQ(out.spike_count(), out.bits.size()) << "all-ones raster must stay all-ones";
}

TEST_P(RescaleSweep, Deterministic) {
  const auto [target, method] = GetParam();
  const SpikeRaster r = make_raster(0.25);
  EXPECT_EQ(time_rescale(r, target, method), time_rescale(r, target, method));
}

TEST_P(RescaleSweep, GroupOrDominatesSubsample) {
  // For any target length, group-OR retains at least as many spikes as
  // subsampling (it ORs the whole bin instead of reading one slot).
  const auto [target, method] = GetParam();
  if (method != TimeRescaleMethod::kGroupOr) GTEST_SKIP();
  const SpikeRaster r = make_raster(0.15);
  EXPECT_GE(time_rescale(r, target, TimeRescaleMethod::kGroupOr).spike_count(),
            time_rescale(r, target, TimeRescaleMethod::kSubsample).spike_count());
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndMethods, RescaleSweep,
    ::testing::Combine(::testing::Values(100u, 99u, 60u, 40u, 20u, 7u, 1u),
                       ::testing::Values(TimeRescaleMethod::kGroupOr,
                                         TimeRescaleMethod::kSubsample)));

TEST(RescaleUpsample, ExpandingKeepsSpikesAtBinStarts) {
  // Rescaling 7 → 14 (used when decompressed data is re-expanded).
  SpikeRaster r(7, 2);
  r.set(3, 1, true);
  const SpikeRaster up = time_rescale(r, 14, TimeRescaleMethod::kSubsample);
  EXPECT_EQ(up.timesteps, 14u);
  EXPECT_GE(up.spike_count(), 1u);
}

}  // namespace
}  // namespace r4ncl::data
