// Bit-packing: round-trip fidelity and byte accounting.
#include <gtest/gtest.h>

#include "compress/bitpack.hpp"
#include "util/rng.hpp"

namespace r4ncl::compress {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

TEST(Bitpack, RoundTripExact) {
  for (std::size_t C : {1u, 7u, 8u, 9u, 50u, 700u}) {
    const data::SpikeRaster r = random_raster(13, C, 0.3, C);
    EXPECT_EQ(unpack(pack(r)), r) << "channels=" << C;
  }
}

TEST(Bitpack, EmptyRasterRoundTrip) {
  const data::SpikeRaster r(5, 10);
  const data::SpikeRaster out = unpack(pack(r));
  EXPECT_EQ(out, r);
  EXPECT_EQ(out.spike_count(), 0u);
}

TEST(Bitpack, RowBytesArePadded) {
  // 50 channels → 7 bytes per row (not 6.25).
  const data::SpikeRaster r = random_raster(4, 50, 0.5, 1);
  const PackedRaster p = pack(r);
  EXPECT_EQ(p.row_bytes(), 7u);
  EXPECT_EQ(p.payload_bytes(), 4u * 7u);
}

TEST(Bitpack, ExactMultipleOfEightNoPadding) {
  const data::SpikeRaster r = random_raster(3, 16, 0.5, 2);
  EXPECT_EQ(pack(r).row_bytes(), 2u);
}

TEST(Bitpack, PayloadScalesLinearlyWithTimesteps) {
  const data::SpikeRaster a = random_raster(10, 50, 0.2, 3);
  const data::SpikeRaster b = random_raster(40, 50, 0.2, 4);
  EXPECT_EQ(pack(b).payload_bytes(), 4u * pack(a).payload_bytes());
}

TEST(Bitpack, StoredBytesAddsHeader) {
  const data::SpikeRaster r = random_raster(4, 8, 0.5, 5);
  const PackedRaster p = pack(r);
  EXPECT_EQ(stored_bytes(p, 16), p.payload_bytes() + 16u);
}

TEST(Bitpack, DensityPreserved) {
  const data::SpikeRaster r = random_raster(20, 33, 0.4, 6);
  EXPECT_EQ(unpack(pack(r)).spike_count(), r.spike_count());
}

}  // namespace
}  // namespace r4ncl::compress
