// Surrogate gradient functions: shapes, symmetry, analytic consistency.
#include <cmath>

#include <gtest/gtest.h>

#include "snn/surrogate.hpp"

namespace r4ncl::snn {
namespace {

TEST(Surrogate, HardSpikeIsStep) {
  EXPECT_EQ(hard_spike(0.1f), 1.0f);
  EXPECT_EQ(hard_spike(-0.1f), 0.0f);
  EXPECT_EQ(hard_spike(0.0f), 0.0f);  // paper: spike iff x > θ
}

TEST(Surrogate, FastSigmoidPeaksAtZero) {
  const SurrogateParams p{SurrogateKind::kFastSigmoid, 10.0f};
  EXPECT_EQ(surrogate_grad(0.0f, p), 1.0f);
  EXPECT_LT(surrogate_grad(0.1f, p), 1.0f);
  EXPECT_LT(surrogate_grad(-0.1f, p), 1.0f);
}

TEST(Surrogate, FastSigmoidIsSymmetric) {
  const SurrogateParams p{SurrogateKind::kFastSigmoid, 10.0f};
  for (float u : {0.01f, 0.05f, 0.2f, 1.0f}) {
    EXPECT_FLOAT_EQ(surrogate_grad(u, p), surrogate_grad(-u, p));
  }
}

TEST(Surrogate, FastSigmoidMatchesPaperFormula) {
  // ∂S/∂x ≈ 1/(scale·x + 1)² for x ≥ 0 (paper Fig. 5b).
  const SurrogateParams p{SurrogateKind::kFastSigmoid, 10.0f};
  for (float u : {0.0f, 0.025f, 0.05f, 0.1f}) {
    const float expected = 1.0f / ((10.0f * u + 1.0f) * (10.0f * u + 1.0f));
    EXPECT_NEAR(surrogate_grad(u, p), expected, 1e-6);
  }
}

TEST(Surrogate, ScaleControlsSharpness) {
  const SurrogateParams narrow{SurrogateKind::kFastSigmoid, 100.0f};
  const SurrogateParams wide{SurrogateKind::kFastSigmoid, 1.0f};
  EXPECT_LT(surrogate_grad(0.1f, narrow), surrogate_grad(0.1f, wide));
}

TEST(Surrogate, AtanFamily) {
  const SurrogateParams p{SurrogateKind::kAtan, 5.0f};
  EXPECT_EQ(surrogate_grad(0.0f, p), 1.0f);
  EXPECT_FLOAT_EQ(surrogate_grad(0.2f, p), surrogate_grad(-0.2f, p));
  EXPECT_LT(surrogate_grad(1.0f, p), 0.05f);
}

TEST(Surrogate, BoxcarFamily) {
  const SurrogateParams p{SurrogateKind::kBoxcar, 10.0f};
  EXPECT_EQ(surrogate_grad(0.05f, p), 1.0f);   // inside |u| < 0.1
  EXPECT_EQ(surrogate_grad(0.15f, p), 0.0f);   // outside
  EXPECT_EQ(surrogate_grad(-0.05f, p), 1.0f);
}

TEST(Surrogate, SoftSpikeDerivativeEqualsSurrogate) {
  // h'(u) == surrogate_grad(u) is the invariant the gradcheck tests rely on;
  // verify it numerically over a range of u.
  const SurrogateParams p{SurrogateKind::kFastSigmoid, 4.0f};
  const float h = 1e-4f;
  for (float u = -0.9f; u <= 0.9f; u += 0.075f) {
    if (std::fabs(u) < 2 * h) continue;  // |u| kink at 0
    const float fd = (soft_spike(u + h, p) - soft_spike(u - h, p)) / (2.0f * h);
    EXPECT_NEAR(fd, surrogate_grad(u, p), 2e-3) << "u=" << u;
  }
}

TEST(Surrogate, SoftSpikeCenteredAtHalf) {
  const SurrogateParams p{SurrogateKind::kFastSigmoid, 10.0f};
  EXPECT_FLOAT_EQ(soft_spike(0.0f, p), 0.5f);
  EXPECT_GT(soft_spike(0.5f, p), 0.5f);
  EXPECT_LT(soft_spike(-0.5f, p), 0.5f);
}

}  // namespace
}  // namespace r4ncl::snn
