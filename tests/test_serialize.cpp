// Binary writer/reader round-trips and failure modes.
#include <cstdio>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace r4ncl {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

TEST(Serialize, ScalarRoundTrip) {
  const std::string path = temp_path("r4ncl_ser1.bin");
  {
    BinaryWriter w(path);
    w.write_u32(0xdeadbeefu);
    w.write_u64(1ull << 40);
    w.write_i64(-123456789);
    w.write_f32(1.5f);
    w.write_f64(-2.25);
    w.close();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 1ull << 40);
  EXPECT_EQ(r.read_i64(), -123456789);
  EXPECT_EQ(r.read_f32(), 1.5f);
  EXPECT_EQ(r.read_f64(), -2.25);
  std::remove(path.c_str());
}

TEST(Serialize, StringAndVectorRoundTrip) {
  const std::string path = temp_path("r4ncl_ser2.bin");
  const std::vector<float> vf = {1.0f, -2.0f, 0.5f};
  const std::vector<std::uint8_t> vb = {0, 1, 255};
  {
    BinaryWriter w(path);
    w.write_string("hello world");
    w.write_string("");
    w.write_f32_vector(vf);
    w.write_u8_vector(vb);
    w.close();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_f32_vector(), vf);
  EXPECT_EQ(r.read_u8_vector(), vb);
  std::remove(path.c_str());
}

TEST(Serialize, TagMismatchThrows) {
  const std::string path = temp_path("r4ncl_ser3.bin");
  {
    BinaryWriter w(path);
    w.write_tag(make_tag("AAAA"));
    w.close();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.expect_tag(make_tag("BBBB")), Error);
  std::remove(path.c_str());
}

TEST(Serialize, TagMatchesOk) {
  const std::string path = temp_path("r4ncl_ser4.bin");
  {
    BinaryWriter w(path);
    w.write_tag(make_tag("WGHT"));
    w.close();
  }
  BinaryReader r(path);
  EXPECT_NO_THROW(r.expect_tag(make_tag("WGHT")));
  std::remove(path.c_str());
}

TEST(Serialize, ShortReadThrows) {
  const std::string path = temp_path("r4ncl_ser5.bin");
  {
    BinaryWriter w(path);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path);
  (void)r.read_u32();
  EXPECT_THROW(r.read_u64(), Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/dir/file.bin"), Error);
}

TEST(Serialize, MakeTagIsPositional) {
  EXPECT_NE(make_tag("ABCD"), make_tag("DCBA"));
  EXPECT_EQ(make_tag("ABCD"), make_tag("ABCD"));
}

}  // namespace
}  // namespace r4ncl
