// Sequential multi-task continual learning: stream protocol, buffer growth,
// knowledge retention.
#include <gtest/gtest.h>

#include "core/pretrain.hpp"
#include "core/sequential.hpp"

namespace r4ncl::core {
namespace {

PretrainConfig stream_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {96, 48, 24, 12};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 96;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 24;
  cfg.data_params.ridge_width = 5.0;
  cfg.data_params.position_pool = 8;
  cfg.data_params.background_rate = 0.004;
  cfg.data_params.rate_jitter = 0.08;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 14;
  cfg.split.test_per_class = 5;
  cfg.split.replay_per_class = 3;
  cfg.split.seed = 41;
  cfg.epochs = 30;
  cfg.batch_size = 8;
  return cfg;
}

data::SequentialTasks make_stream(std::size_t num_tasks) {
  const data::SyntheticShdGenerator gen(stream_config().data_params);
  return data::build_sequential_tasks(gen, stream_config().split, num_tasks);
}

snn::SnnNetwork pretrained_on_base(const data::SequentialTasks& tasks) {
  snn::SnnNetwork net(stream_config().network);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = stream_config().epochs;
  opts.batch_size = 8;
  (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  return net;
}

SequentialRunConfig stream_run() {
  SequentialRunConfig cfg;
  cfg.method = NclMethodConfig::replay4ncl(12);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 25;
  cfg.replay_per_new_class = 4;
  return cfg;
}

TEST(SequentialTasksSplit, Partition) {
  const auto tasks = make_stream(2);
  EXPECT_EQ(tasks.base_classes, (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(tasks.task_classes, (std::vector<std::int32_t>{4, 5}));
  ASSERT_EQ(tasks.task_train.size(), 2u);
  ASSERT_EQ(tasks.task_test.size(), 2u);
  EXPECT_EQ(tasks.task_train[0].front().label, 4);
  EXPECT_EQ(tasks.task_train[1].front().label, 5);
  const std::int32_t held_out[] = {4, 5};
  EXPECT_EQ(data::fraction_with_labels(tasks.pretrain_train, held_out), 0.0);
}

TEST(SequentialTasksSplit, RejectsDegenerateCounts) {
  const data::SyntheticShdGenerator gen(stream_config().data_params);
  EXPECT_THROW((void)data::build_sequential_tasks(gen, stream_config().split, 0), Error);
  EXPECT_THROW((void)data::build_sequential_tasks(gen, stream_config().split, 6), Error);
}

TEST(SequentialRun, LearnsStreamWithoutCollapsingBase) {
  const auto tasks = make_stream(2);
  snn::SnnNetwork net = pretrained_on_base(tasks);
  const SequentialRunResult res = run_sequential(net, tasks, stream_run());
  ASSERT_EQ(res.rows.size(), 2u);
  for (const auto& row : res.rows) {
    EXPECT_GT(row.acc_base, 0.4) << "base knowledge collapsed at task " << row.task_index;
    EXPECT_GE(row.acc_current, 0.0);
  }
  EXPECT_GT(res.rows.back().acc_learned, 0.5)
      << "stream classes must be at least partially retained";
}

TEST(SequentialRun, BufferGrowsWithEachTask) {
  const auto tasks = make_stream(2);
  snn::SnnNetwork net = pretrained_on_base(tasks);
  SequentialRunConfig cfg = stream_run();
  cfg.epochs_per_task = 2;  // growth is training-independent
  const SequentialRunResult res = run_sequential(net, tasks, cfg);
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_GT(res.rows[0].latent_memory_bytes, 0u);
  EXPECT_GT(res.rows[1].latent_memory_bytes, res.rows[0].latent_memory_bytes);
}

TEST(SequentialRun, CostsAccumulate) {
  const auto tasks = make_stream(2);
  snn::SnnNetwork net = pretrained_on_base(tasks);
  SequentialRunConfig cfg = stream_run();
  cfg.epochs_per_task = 2;
  const SequentialRunResult res = run_sequential(net, tasks, cfg);
  double sum = 0.0;
  for (const auto& row : res.rows) sum += row.latency_ms;
  EXPECT_GT(res.total_latency_ms, sum) << "total must include the preparation phase";
  EXPECT_GT(res.total_energy_uj, 0.0);
}

TEST(SequentialRun, InsertionZeroStoresRawInputLatents) {
  const auto tasks = make_stream(1);
  snn::SnnNetwork net = pretrained_on_base(tasks);
  SequentialRunConfig cfg = stream_run();
  cfg.insertion_layer = 0;
  cfg.epochs_per_task = 2;
  const SequentialRunResult res = run_sequential(net, tasks, cfg);
  // Raw-input latents are 96 channels wide → bigger buffer than layer-1's 48.
  SequentialRunConfig cfg1 = stream_run();
  cfg1.epochs_per_task = 2;
  snn::SnnNetwork net1 = pretrained_on_base(tasks);
  const SequentialRunResult res1 = run_sequential(net1, tasks, cfg1);
  EXPECT_GT(res.rows.back().latent_memory_bytes, res1.rows.back().latent_memory_bytes);
}

TEST(SequentialRun, RejectsBadConfig) {
  const auto tasks = make_stream(1);
  snn::SnnNetwork net = pretrained_on_base(tasks);
  SequentialRunConfig cfg = stream_run();
  cfg.insertion_layer = 7;
  EXPECT_THROW((void)run_sequential(net, tasks, cfg), Error);
  cfg = stream_run();
  cfg.epochs_per_task = 0;
  EXPECT_THROW((void)run_sequential(net, tasks, cfg), Error);
}

}  // namespace
}  // namespace r4ncl::core
