// ShardedReplayEngine: shards=1 bit-identity with LatentReplayBuffer across
// all five eviction policies, per-shard seed determinism, routing and
// capacity-split invariants, concurrent stress, and pinned CLI errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/replay_stream.hpp"
#include "core/sharded_engine.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

/// Stored bytes of one raw entry of the given geometry.
std::size_t probe_entry_bytes(std::size_t T, std::size_t C) {
  LatentReplayBuffer probe({.ratio = 1}, T);
  probe.add(random_raster(T, C, 0.3, 1), 0);
  return probe.memory_bytes();
}

constexpr ReplayPolicy kAllPolicies[] = {
    ReplayPolicy::kFifo, ReplayPolicy::kReservoir, ReplayPolicy::kClassBalanced,
    ReplayPolicy::kLowImportance, ReplayPolicy::kImportanceClassBalanced};

/// Drives one add/report/shrink stream against any store with the buffer's
/// API shape — the same calls, in the same order, for both sides of the
/// bit-identity comparison.
template <typename Store>
void drive_store(Store& store, ReplayPolicy policy, std::size_t entry_bytes) {
  for (int i = 0; i < 60; ++i) {
    (void)store.add(random_raster(8, 16, 0.1 + 0.012 * (i % 50), 7000 + i), i % 5);
    if (is_importance_policy(policy) && i % 7 == 0 && store.size() > 2) {
      store.report_outcome(i % store.size(), 0.25f + 0.01f * (i % 13));
    }
  }
  store.set_capacity(5 * entry_bytes);  // schedule-style shrink re-eviction
  for (int i = 60; i < 80; ++i) {
    (void)store.add(random_raster(8, 16, 0.1 + 0.012 * (i % 50), 7000 + i), i % 5);
  }
}

// ---------------------------------------------------------------------------
// shards=1 bit-identity with LatentReplayBuffer
// ---------------------------------------------------------------------------

TEST(ShardedEngine, SingleShardBitIdenticalAcrossAllPolicies) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  for (const ReplayPolicy policy : kAllPolicies) {
    const ReplayBufferConfig budget{.capacity_bytes = 9 * entry, .policy = policy,
                                    .seed = 0xfee1600dULL};
    LatentReplayBuffer buf({.ratio = 1}, 8, budget);
    ShardedReplayEngine eng({.ratio = 1}, 8, budget, {.shards = 1});
    drive_store(buf, policy, entry);
    drive_store(eng, policy, entry);

    ASSERT_EQ(eng.size(), buf.size()) << to_string(policy);
    EXPECT_EQ(eng.memory_bytes(), buf.memory_bytes()) << to_string(policy);
    EXPECT_EQ(eng.stream_seen(), buf.stream_seen()) << to_string(policy);
    EXPECT_EQ(eng.evictions(), buf.evictions()) << to_string(policy);
    EXPECT_EQ(eng.class_occupancy(), buf.class_occupancy()) << to_string(policy);
    // Entry-for-entry identity: same logical order, same payloads.
    const data::Dataset a = buf.materialize();
    const data::Dataset b = eng.materialize();
    ASSERT_EQ(a.size(), b.size()) << to_string(policy);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label) << to_string(policy) << " entry " << i;
      EXPECT_EQ(a[i].raster, b[i].raster) << to_string(policy) << " entry " << i;
      EXPECT_EQ(buf.importance_at(i), eng.importance_at(i))
          << to_string(policy) << " entry " << i;
    }
  }
}

TEST(ShardedEngine, SingleShardDrawAndStreamMatchBuffer) {
  const ReplayBufferConfig budget{.seed = 0xabcdULL};
  LatentReplayBuffer buf({.ratio = 1}, 8, budget);
  ShardedReplayEngine eng({.ratio = 1}, 8, budget, {.shards = 1});
  for (int i = 0; i < 40; ++i) {
    const data::SpikeRaster r = random_raster(8, 16, 0.3, 9000 + i);
    buf.add(r, i % 4);
    eng.add(r, i % 4);
  }
  // Identical Rng state → identical draw (partial Fisher–Yates consumption)
  // and identical sample sets, both for k < n and the k >= n fallback.
  for (const std::size_t k : {7u, 40u, 64u}) {
    Rng ra(42), rb(42);
    EXPECT_EQ(buf.draw_indices(k, ra), eng.draw_indices(k, rb)) << "k=" << k;
  }
  Rng ra(43), rb(43);
  ReplayStream sa = buf.stream(10, ra, 4);
  ReplayStream sb = eng.stream(10, rb, 4);
  ASSERT_EQ(sa.drawn(), sb.drawn());
  while (!sa.done()) {
    const auto batch_a = sa.next();
    const auto batch_b = sb.next();
    ASSERT_EQ(batch_a.size(), batch_b.size());
    for (std::size_t i = 0; i < batch_a.size(); ++i) {
      EXPECT_EQ(batch_a[i].raster, batch_b[i].raster);
      EXPECT_EQ(batch_a[i].label, batch_b[i].label);
    }
  }
  EXPECT_TRUE(sb.done());
  EXPECT_EQ(sa.peak_assembly_bytes(), sb.peak_assembly_bytes());
}

// ---------------------------------------------------------------------------
// Multi-shard determinism and routing invariants
// ---------------------------------------------------------------------------

TEST(ShardedEngine, MultiShardRunsAreSeedDeterministic) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const ShardKey key : {ShardKey::kClass, ShardKey::kHash}) {
      const ReplayBufferConfig budget{.capacity_bytes = 16 * entry,
                                      .policy = ReplayPolicy::kReservoir,
                                      .seed = 0x5eedULL};
      const ShardedEngineConfig sharding{.shards = shards, .shard_by = key};
      ShardedReplayEngine a({.ratio = 1}, 8, budget, sharding);
      ShardedReplayEngine b({.ratio = 1}, 8, budget, sharding);
      for (int i = 0; i < 120; ++i) {
        const data::SpikeRaster r = random_raster(8, 16, 0.3, 11000 + i);
        a.add(r, i % 10);
        b.add(r, i % 10);
      }
      ASSERT_EQ(a.size(), b.size()) << shards << "/" << to_string(key);
      const data::Dataset da = a.materialize();
      const data::Dataset db = b.materialize();
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].raster, db[i].raster) << "entry " << i;
        EXPECT_EQ(da[i].label, db[i].label) << "entry " << i;
      }
    }
  }
}

TEST(ShardedEngine, ShardSeedsAreDecorrelated) {
  // Shard 0 keeps the base seed; later shards mix in i * kShardSeedMix, so
  // two shards fed the same stream must not evict in lockstep.
  const ShardedEngineConfig sharding{.shards = 4};
  ShardedReplayEngine eng({.ratio = 1}, 8, {.seed = 99}, sharding);
  std::set<std::uint64_t> mixed_seeds;
  for (std::size_t i = 0; i < 4; ++i) {
    mixed_seeds.insert(eng.shard(i).budget().seed);
  }
  EXPECT_EQ(mixed_seeds.size(), 4u);
  EXPECT_EQ(eng.shard(0).budget().seed, 99u);  // the bit-identity anchor
}

TEST(ShardedEngine, ClassRoutingPinsLabelsToShards) {
  ShardedReplayEngine eng({.ratio = 1}, 8, {}, {.shards = 3, .shard_by = ShardKey::kClass});
  for (int i = 0; i < 30; ++i) {
    eng.add(random_raster(8, 16, 0.3, 500 + i), i % 7);
  }
  for (std::size_t s = 0; s < 3; ++s) {
    for (const auto& [label, count] : eng.shard(s).class_occupancy()) {
      EXPECT_EQ(static_cast<std::uint32_t>(label) % 3, s)
          << "label " << label << " in shard " << s;
      EXPECT_GT(count, 0u);
    }
  }
  // The global view merges shard occupancies: every class 0..6, ~30/7 each.
  const auto occupancy = eng.class_occupancy();
  ASSERT_EQ(occupancy.size(), 7u);
  std::size_t total = 0;
  for (const auto& [label, count] : occupancy) total += count;
  EXPECT_EQ(total, eng.size());
}

TEST(ShardedEngine, HashRoutingFollowsRouteHash) {
  ShardedReplayEngine eng({.ratio = 1}, 8, {}, {.shards = 4, .shard_by = ShardKey::kHash});
  for (int i = 0; i < 20; ++i) {
    const data::SpikeRaster r = random_raster(8, 16, 0.3, 800 + i);
    const std::size_t expected = raster_route_hash(r, 3) % 4;
    EXPECT_EQ(eng.shard_of(r, 3), expected);
    const std::size_t before = eng.shard(expected).size();
    eng.add(r, 3);
    EXPECT_EQ(eng.shard(expected).size(), before + 1);
  }
}

TEST(ShardedEngine, CapacitySplitsAcrossShardsWithRemainder) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  const std::size_t total = 7 * entry + 5;  // deliberately not divisible by 3
  ShardedReplayEngine eng({.ratio = 1}, 8, {.capacity_bytes = total}, {.shards = 3});
  EXPECT_EQ(eng.capacity_bytes(), total);
  std::size_t sum = 0;
  std::size_t lo = total, hi = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::size_t share = eng.shard(s).capacity_bytes();
    sum += share;
    lo = std::min(lo, share);
    hi = std::max(hi, share);
  }
  EXPECT_EQ(sum, total);
  EXPECT_LE(hi - lo, 1u);  // remainder bytes go to the first shards

  // Re-split on set_capacity, and unbounded stays unbounded per shard.
  eng.set_capacity(0);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(eng.shard(s).capacity_bytes(), 0u);
  eng.set_capacity(6 * entry);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(eng.shard(s).capacity_bytes(), 2 * entry);
  }
}

TEST(ShardedEngine, ShrinkReEvictsEveryShardUnderItsShare) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  ShardedReplayEngine eng({.ratio = 1}, 8,
                          {.capacity_bytes = 12 * entry, .policy = ReplayPolicy::kFifo},
                          {.shards = 4});
  for (int i = 0; i < 40; ++i) {
    eng.add(random_raster(8, 16, 0.3, 300 + i), i % 4);
  }
  eng.set_capacity(4 * entry);
  EXPECT_LE(eng.memory_bytes(), 4 * entry);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_LE(eng.shard(s).memory_bytes(), eng.shard(s).capacity_bytes());
  }
  EXPECT_EQ(eng.size(), 4u);  // one entry per shard share
}

TEST(ShardedEngine, GlobalIndexSpaceConcatenatesShards) {
  ShardedReplayEngine eng({.ratio = 1}, 8, {}, {.shards = 2, .shard_by = ShardKey::kClass});
  // Labels 0/2 → shard 0, label 1 → shard 1.
  eng.add(random_raster(8, 16, 0.3, 1), 0);
  eng.add(random_raster(8, 16, 0.3, 2), 1);
  eng.add(random_raster(8, 16, 0.3, 3), 2);
  eng.add(random_raster(8, 16, 0.3, 4), 1);
  ASSERT_EQ(eng.size(), 4u);
  // Shard 0's logical order first (0, 2), then shard 1's (1, 1).
  EXPECT_EQ(eng.label_at(0), 0);
  EXPECT_EQ(eng.label_at(1), 2);
  EXPECT_EQ(eng.label_at(2), 1);
  EXPECT_EQ(eng.label_at(3), 1);
  EXPECT_THROW((void)eng.label_at(4), Error);
  // report_outcome routes through the same mapping; out-of-range drops.
  eng.report_outcome(1, 0.75f);
  EXPECT_FLOAT_EQ(eng.importance_at(1), 0.75f);
  EXPECT_FLOAT_EQ(eng.shard(0).importance_at(1), 0.75f);
  EXPECT_NO_THROW(eng.report_outcome(4, 0.5f));
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(ShardedEngine, ConcurrentAddSampleReportStress) {
  const std::size_t entry = probe_entry_bytes(8, 16);
  const std::size_t workers = 8;
  const std::size_t adds_per_worker = 150;
  for (const ShardKey key : {ShardKey::kClass, ShardKey::kHash}) {
    ShardedReplayEngine eng({.ratio = 1}, 8,
                            {.capacity_bytes = 32 * entry,
                             .policy = ReplayPolicy::kImportanceClassBalanced},
                            {.shards = 4, .shard_by = key});
    std::atomic<std::size_t> accepted{0};
    run_workers(workers, [&](std::size_t w) {
      Rng draw_rng(0x1000 + w);
      for (std::size_t i = 0; i < adds_per_worker; ++i) {
        const auto r = random_raster(8, 16, 0.2 + 0.05 * (w % 4),
                                     (w << 20) | i);
        if (eng.add(r, static_cast<std::int32_t>((w * 3 + i) % 11))) {
          accepted.fetch_add(1);
        }
        if (i % 16 == 0) {
          data::Dataset out;
          const auto drawn = eng.sample_into(4, draw_rng, out);
          for (std::size_t d = 0; d < drawn.size(); ++d) {
            eng.report_outcome(drawn[d], 0.5f);
          }
        }
      }
    });
    // Lifetime accounting must balance exactly: every offered entry was
    // either stored or displaced, and the byte budget held throughout.
    EXPECT_EQ(eng.stream_seen(), workers * adds_per_worker) << to_string(key);
    EXPECT_EQ(eng.size(), eng.stream_seen() - eng.evictions()) << to_string(key);
    EXPECT_LE(eng.memory_bytes(), 32 * entry) << to_string(key);
    EXPECT_EQ(eng.size(), 32u) << to_string(key);  // steady state: full
    std::size_t shard_sum = 0;
    for (std::size_t s = 0; s < 4; ++s) shard_sum += eng.shard(s).size();
    EXPECT_EQ(shard_sum, eng.size()) << to_string(key);
  }
}

// ---------------------------------------------------------------------------
// Config plumbing and pinned CLI errors
// ---------------------------------------------------------------------------

TEST(ShardedEngine, ShardKeyNamesRoundTrip) {
  EXPECT_EQ(parse_shard_key(to_string(ShardKey::kClass)), ShardKey::kClass);
  EXPECT_EQ(parse_shard_key(to_string(ShardKey::kHash)), ShardKey::kHash);
  try {
    (void)parse_shard_key("label");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "unknown shard_by 'label' (expected class|hash)");
  }
}

TEST(ShardedEngine, RejectsZeroShardsAtConstruction) {
  try {
    ShardedReplayEngine eng({.ratio = 1}, 8, {}, {.shards = 0});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shards must be >= 1"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedEngine, CliOverridesApplyShardingKnobs) {
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  Config cfg;
  cfg.set("shards", "4");
  cfg.set("shard_by", "hash");
  apply_replay_overrides(method, cfg);
  EXPECT_EQ(method.replay_sharding.shards, 4u);
  EXPECT_EQ(method.replay_sharding.shard_by, ShardKey::kHash);
}

TEST(ShardedEngine, CliRejectsNonPositiveShards) {
  for (const char* bad : {"0", "-3"}) {
    NclMethodConfig method = NclMethodConfig::replay4ncl();
    Config cfg;
    cfg.set("shards", bad);
    try {
      apply_replay_overrides(method, cfg);
      FAIL() << "expected Error for shards=" << bad;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("shards=") + bad),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("must be a positive shard count"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ShardedEngine, CliRejectsUnknownShardKey) {
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  Config cfg;
  cfg.set("shard_by", "bogus");
  try {
    apply_replay_overrides(method, cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "unknown shard_by 'bogus' (expected class|hash)");
  }
}

TEST(ShardedEngine, ShardsAndShardByAreStandardCliKeys) {
  const auto keys = standard_cli_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "shards"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "shard_by"), keys.end());
}

}  // namespace
}  // namespace r4ncl::core
