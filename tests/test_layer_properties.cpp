// Parameterized property sweeps of the LIF layer across (β, θ, recurrence).
//
// Invariants that must hold for every configuration:
//   * hard spikes are binary,
//   * forward is deterministic,
//   * stats totals are exact in the quantities that are closed-form,
//   * lower thresholds never reduce first-layer spike counts on identical
//     input (monotonicity of the threshold mechanism the paper's adjustment
//     relies on),
//   * silence in → silence out (no input events, no bias → no spikes).
#include <tuple>

#include <gtest/gtest.h>

#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

class LifSweep
    : public ::testing::TestWithParam<std::tuple<float /*beta*/, float /*theta*/,
                                                 bool /*recurrent*/>> {
 protected:
  RecurrentLifLayer make_layer(std::uint64_t seed = 3) const {
    const auto [beta, theta, recurrent] = GetParam();
    (void)theta;
    LifParams lif;
    lif.beta = beta;
    lif.recurrent = recurrent;
    Rng rng(seed);
    return RecurrentLifLayer(12, 9, lif, SurrogateParams{}, rng);
  }

  Tensor make_input(double density, std::uint64_t seed = 11) const {
    Tensor x(14, 3, 12);
    Rng rng(seed);
    for (auto& v : x.values()) v = rng.bernoulli(density) ? 1.0f : 0.0f;
    return x;
  }

  float theta() const { return std::get<1>(GetParam()); }
};

TEST_P(LifSweep, HardSpikesAreBinary) {
  const RecurrentLifLayer layer = make_layer();
  const Tensor x = make_input(0.3);
  const Tensor out =
      layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta()), nullptr, nullptr);
  for (float v : out.values()) EXPECT_TRUE(v == 0.0f || v == 1.0f);
}

TEST_P(LifSweep, ForwardIsDeterministic) {
  const RecurrentLifLayer layer = make_layer();
  const Tensor x = make_input(0.4);
  const ThresholdPolicy p = ThresholdPolicy::fixed(theta());
  const Tensor a = layer.forward(x, SpikeMode::kHard, p, nullptr, nullptr);
  const Tensor b = layer.forward(x, SpikeMode::kHard, p, nullptr, nullptr);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a(i), b(i));
}

TEST_P(LifSweep, StatsExactClosedFormCounts) {
  const RecurrentLifLayer layer = make_layer();
  const Tensor x = make_input(0.25);
  SpikeOpStats stats;
  const Tensor out =
      layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta()), nullptr, &stats);
  EXPECT_EQ(stats.neuron_updates, 14u * 3u * 9u);
  EXPECT_EQ(stats.timestep_slots, 14u * 3u);
  std::size_t spikes = 0;
  for (float v : out.values()) spikes += v != 0.0f ? 1 : 0;
  EXPECT_EQ(stats.spikes, spikes);
}

TEST_P(LifSweep, SilenceInSilenceOut) {
  const RecurrentLifLayer layer = make_layer();
  Tensor x(10, 2, 12);  // all zeros
  SpikeOpStats stats;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta()), nullptr, &stats);
  EXPECT_EQ(stats.spikes, 0u);
  EXPECT_EQ(stats.synops, 0u);
}

TEST_P(LifSweep, CacheMatchesReturnedSpikes) {
  const RecurrentLifLayer layer = make_layer();
  const Tensor x = make_input(0.35);
  LayerCache cache;
  const Tensor out =
      layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta()), &cache, nullptr);
  ASSERT_TRUE(cache.spikes.same_shape(out));
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(cache.spikes(i), out(i));
  ASSERT_EQ(cache.theta.size(), 14u);
  for (float th : cache.theta) EXPECT_EQ(th, theta());
}

TEST_P(LifSweep, LowerThresholdNeverFiresLess) {
  const RecurrentLifLayer layer = make_layer();
  const Tensor x = make_input(0.3);
  SpikeOpStats lo, hi;
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta()), nullptr, &hi);
  (void)layer.forward(x, SpikeMode::kHard, ThresholdPolicy::fixed(theta() * 0.5f), nullptr,
                      &lo);
  if (!std::get<2>(GetParam())) {
    // Without recurrence the per-neuron trajectories are independent and a
    // lower threshold can only add spike times, never remove them.
    EXPECT_GE(lo.spikes, hi.spikes);
  } else {
    // With recurrence the comparison is not strictly monotone (feedback can
    // reshape trajectories); require it qualitatively on aggregate.
    EXPECT_GE(lo.spikes + 5, hi.spikes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BetaThetaRecurrence, LifSweep,
    ::testing::Combine(::testing::Values(0.5f, 0.9f, 0.99f),
                       ::testing::Values(0.5f, 1.0f, 1.5f), ::testing::Bool()));

}  // namespace
}  // namespace r4ncl::snn
