// Tensor construction, shape accessors, fills, slab views.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/error.hpp"

namespace r4ncl {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialised) {
  Tensor t(3, 4);
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
}

TEST(Tensor, ElementAccess2d) {
  Tensor t(2, 3);
  t(1, 2) = 5.0f;
  EXPECT_EQ(t(1, 2), 5.0f);
  EXPECT_EQ(t(5), 5.0f);  // row-major flat index
}

TEST(Tensor, ElementAccess3d) {
  Tensor t(2, 3, 4);
  t(1, 2, 3) = 7.0f;
  EXPECT_EQ(t(1, 2, 3), 7.0f);
  EXPECT_EQ(t(23), 7.0f);  // last element
  EXPECT_EQ(t.rank(), 3u);
}

TEST(Tensor, SlabViewsAlias) {
  Tensor t(2, 2, 2);
  t(1, 0, 1) = 9.0f;
  auto slab = t.slab(1);
  EXPECT_EQ(slab.size(), 4u);
  EXPECT_EQ(slab[1], 9.0f);
  slab[1] = 3.0f;
  EXPECT_EQ(t(1, 0, 1), 3.0f);
}

TEST(Tensor, RowPtr) {
  Tensor t(3, 2);
  t(2, 1) = 4.0f;
  EXPECT_EQ(t.row_ptr(2)[1], 4.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t(2, 2);
  t.fill(1.5f);
  for (float v : t.values()) EXPECT_EQ(v, 1.5f);
  t.zero();
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillNormalIsDeterministic) {
  Tensor a(4, 4), b(4, 4);
  Rng r1(5), r2(5);
  a.fill_normal(r1, 0.1f);
  b.fill_normal(r2, 0.1f);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a(i), b(i));
}

TEST(Tensor, FillUniformWithinBounds) {
  Tensor t(10, 10);
  Rng rng(3);
  t.fill_uniform(rng, -0.5f, 0.5f);
  for (float v : t.values()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor(2, 3).same_shape(Tensor(2, 3)));
  EXPECT_FALSE(Tensor(2, 3).same_shape(Tensor(3, 2)));
  EXPECT_FALSE(Tensor(6).same_shape(Tensor(2, 3)));
}

TEST(Tensor, DimOutOfRangeThrows) {
  Tensor t(2, 3);
  EXPECT_THROW((void)t.dim(2), Error);
  EXPECT_THROW((void)Tensor(4).cols(), Error);
}

}  // namespace
}  // namespace r4ncl
