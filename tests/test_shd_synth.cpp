// Synthetic SHD generator: determinism, geometry, class structure.
#include <cmath>

#include <gtest/gtest.h>

#include "data/shd_synth.hpp"

namespace r4ncl::data {
namespace {

ShdSynthParams small_params() {
  ShdSynthParams p;
  p.channels = 64;
  p.classes = 4;
  p.timesteps = 50;
  p.seed = 11;
  return p;
}

TEST(ShdSynth, SampleGeometry) {
  const SyntheticShdGenerator gen(small_params());
  Rng rng(1);
  const Sample s = gen.make_sample(2, rng);
  EXPECT_EQ(s.label, 2);
  EXPECT_EQ(s.raster.timesteps, 50u);
  EXPECT_EQ(s.raster.channels, 64u);
}

TEST(ShdSynth, DeterministicPrototypes) {
  const SyntheticShdGenerator a(small_params()), b(small_params());
  for (std::int32_t k = 0; k < 4; ++k) {
    const auto& ra = a.class_prototype(k);
    const auto& rb = b.class_prototype(k);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_DOUBLE_EQ(ra[i].start_channel, rb[i].start_channel);
      EXPECT_DOUBLE_EQ(ra[i].velocity, rb[i].velocity);
    }
  }
}

TEST(ShdSynth, SeedChangesPrototypes) {
  ShdSynthParams p2 = small_params();
  p2.seed = 999;
  const SyntheticShdGenerator a(small_params()), b(p2);
  bool any_diff = false;
  for (std::int32_t k = 0; k < 4 && !any_diff; ++k) {
    any_diff = a.class_prototype(k)[0].start_channel != b.class_prototype(k)[0].start_channel;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ShdSynth, DatasetDeterministicGivenSeed) {
  const SyntheticShdGenerator gen(small_params());
  const Dataset a = gen.make_dataset(3, 42);
  const Dataset b = gen.make_dataset(3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_TRUE(a[i].raster == b[i].raster) << "sample " << i;
  }
}

TEST(ShdSynth, DifferentDrawSeedsDiffer) {
  const SyntheticShdGenerator gen(small_params());
  const Dataset a = gen.make_dataset(2, 1);
  const Dataset b = gen.make_dataset(2, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = !(a[i].raster == b[i].raster);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ShdSynth, DatasetIsClassMajorAndComplete) {
  const SyntheticShdGenerator gen(small_params());
  const Dataset ds = gen.make_dataset(3, 5);
  ASSERT_EQ(ds.size(), 12u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds[i].label, static_cast<std::int32_t>(i / 3));
  }
}

TEST(ShdSynth, SubsetDatasetOnlyHasRequestedClasses) {
  const SyntheticShdGenerator gen(small_params());
  const std::int32_t classes[] = {1, 3};
  const Dataset ds = gen.make_dataset(classes, 2, 7);
  ASSERT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds[0].label, 1);
  EXPECT_EQ(ds[2].label, 3);
}

TEST(ShdSynth, RidgeActivityAboveBackground) {
  // The class rate field at a ridge centre must clearly exceed background.
  const SyntheticShdGenerator gen(small_params());
  const auto& ridges = gen.class_prototype(0);
  const Ridge& ridge = ridges[0];
  const double t_mid = 0.5 * (ridge.t_on + ridge.t_off);
  const double centre = ridge.start_channel + ridge.velocity * (t_mid - ridge.t_on);
  const double at_ridge = gen.class_rate(0, t_mid, centre);
  EXPECT_GT(at_ridge, 10.0 * small_params().background_rate);
}

TEST(ShdSynth, SamplesCarryClassSignal) {
  // Average rasters per class and check that a class's own mean raster is a
  // better match (higher correlation) than another class's — the dataset
  // must be statistically separable for the CL experiments to be meaningful.
  const SyntheticShdGenerator gen(small_params());
  const std::size_t per_class = 12;
  const Dataset ds = gen.make_dataset(per_class, 3);
  const std::size_t cells = 50 * 64;
  std::vector<std::vector<double>> mean(4, std::vector<double>(cells, 0.0));
  for (const auto& s : ds) {
    for (std::size_t i = 0; i < cells; ++i) {
      mean[static_cast<std::size_t>(s.label)][i] += s.raster.bits[i];
    }
  }
  for (auto& m : mean) {
    for (auto& v : m) v /= per_class;
  }
  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < cells; ++i) acc += a[i] * b[i];
    return acc;
  };
  for (std::size_t k = 0; k < 4; ++k) {
    const double self = dot(mean[k], mean[k]);
    for (std::size_t j = 0; j < 4; ++j) {
      if (j == k) continue;
      EXPECT_GT(self, dot(mean[k], mean[j])) << "classes " << k << " vs " << j;
    }
  }
}

TEST(ShdSynth, DensityInEventDataRange) {
  const SyntheticShdGenerator gen(small_params());
  const Dataset ds = gen.make_dataset(4, 5);
  double density = 0.0;
  for (const auto& s : ds) density += s.raster.density();
  density /= static_cast<double>(ds.size());
  // Event data is sparse but not empty: between 0.5% and 30% of cells.
  EXPECT_GT(density, 0.005);
  EXPECT_LT(density, 0.30);
}

TEST(ShdSynth, RejectsBadClassId) {
  const SyntheticShdGenerator gen(small_params());
  Rng rng(1);
  EXPECT_THROW((void)gen.make_sample(99, rng), Error);
  EXPECT_THROW((void)gen.class_prototype(-1), Error);
}

TEST(ShdSynth, PaperDefaultGeometry) {
  const ShdSynthParams defaults;
  EXPECT_EQ(defaults.channels, 700u);
  EXPECT_EQ(defaults.classes, 20u);
  EXPECT_EQ(defaults.timesteps, 100u);
}

}  // namespace
}  // namespace r4ncl::data
