// Integration tests of the continual-learning engine on a scaled-down
// scenario: replay must mitigate forgetting, Replay4NCL must cost less than
// SpikingLR, and every bookkeeping field must be sane.
#include <gtest/gtest.h>

#include "core/continual_trainer.hpp"
#include "core/pretrain.hpp"

namespace r4ncl::core {
namespace {

/// Small but non-trivial scenario: 5 classes, 48 channels, T = 20 native.
/// Jitter is scaled down with the geometry so the problem stays learnable in
/// a few seconds while keeping the temporal class coding of the full dataset.
PretrainConfig small_scenario_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {48, 32, 16, 8};
  cfg.network.num_classes = 5;
  cfg.network.seed = 17;
  cfg.data_params.channels = 48;
  cfg.data_params.classes = 5;
  cfg.data_params.timesteps = 20;
  cfg.data_params.ridge_width = 4.0;
  cfg.data_params.position_pool = 6;
  cfg.data_params.channel_jitter = 2.0;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 23;
  cfg.split.train_per_class = 10;
  cfg.split.test_per_class = 5;
  cfg.split.replay_per_class = 3;
  cfg.split.new_class = 4;
  cfg.split.seed = 29;
  cfg.epochs = 20;
  cfg.batch_size = 8;
  return cfg;
}

/// Methods rescaled to the small native T = 20.
NclMethodConfig small_replay4ncl() {
  NclMethodConfig m = NclMethodConfig::replay4ncl(10);  // T* = native/2
  m.batch_size = 8;
  return m;
}

NclMethodConfig small_spiking_lr() {
  NclMethodConfig m = NclMethodConfig::spiking_lr();
  m.cl_timesteps = 20;
  m.batch_size = 8;
  return m;
}

/// Shared pre-trained scenario (built once; tests clone the network).
const PretrainedScenario& scenario() {
  static PretrainedScenario s =
      make_pretrained_scenario(small_scenario_config(), ::testing::TempDir(), true);
  return s;
}

ClRunConfig run_config(const NclMethodConfig& method, std::size_t insertion,
                       std::size_t epochs = 6) {
  ClRunConfig cfg;
  cfg.method = method;
  cfg.insertion_layer = insertion;
  cfg.epochs = epochs;
  cfg.seed = 55;
  return cfg;
}

TEST(ContinualIntegration, PretrainingLearnsOldClasses) {
  EXPECT_GT(scenario().pretrain_accuracy, 0.6)
      << "pre-training must learn the old classes for CL tests to be meaningful";
}

TEST(ContinualIntegration, RowsAreWellFormed) {
  snn::SnnNetwork net = scenario().net.clone();
  const ClRunResult res =
      run_continual_learning(net, scenario().tasks, run_config(small_replay4ncl(), 2, 4));
  ASSERT_EQ(res.rows.size(), 4u);
  for (const auto& row : res.rows) {
    EXPECT_GE(row.loss, 0.0);
    EXPECT_GT(row.latency_ms, 0.0);
    EXPECT_GT(row.energy_uj, 0.0);
    EXPECT_GE(row.acc_old, 0.0);  // eval_every=1 → every row evaluated
    EXPECT_LE(row.acc_old, 1.0);
    EXPECT_GE(row.acc_new, 0.0);
    EXPECT_LE(row.acc_new, 1.0);
  }
  EXPECT_GT(res.latent_memory_bytes, 0u);
  EXPECT_GT(res.prep_stats.neuron_updates, 0u);
  EXPECT_EQ(res.insertion_layer, 2u);
  EXPECT_EQ(res.method_name, "Replay4NCL");
}

TEST(ContinualIntegration, NaiveBaselineForgets) {
  snn::SnnNetwork net = scenario().net.clone();
  NclMethodConfig naive = NclMethodConfig::naive_baseline();
  naive.cl_timesteps = 20;
  naive.batch_size = 8;
  const ClRunResult res =
      run_continual_learning(net, scenario().tasks, run_config(naive, 0, 30));
  // Learns the new task...
  EXPECT_GT(res.final_acc_new, 0.6);
  // ...but old-task accuracy collapses well below the pre-training level
  // (Fig. 1a catastrophic forgetting).
  EXPECT_LT(res.final_acc_old, scenario().pretrain_accuracy * 0.6);
  EXPECT_EQ(res.latent_memory_bytes, 0u) << "no replay buffer for the baseline";
}

TEST(ContinualIntegration, ReplayMitigatesForgetting) {
  snn::SnnNetwork net_replay = scenario().net.clone();
  const ClRunResult with_replay = run_continual_learning(
      net_replay, scenario().tasks, run_config(small_spiking_lr(), 2, 8));
  snn::SnnNetwork net_naive = scenario().net.clone();
  NclMethodConfig naive = NclMethodConfig::naive_baseline();
  naive.cl_timesteps = 20;
  naive.batch_size = 8;
  const ClRunResult without =
      run_continual_learning(net_naive, scenario().tasks, run_config(naive, 0, 8));
  EXPECT_GT(with_replay.final_acc_old, without.final_acc_old + 0.15)
      << "latent replay must preserve substantially more old knowledge";
}

TEST(ContinualIntegration, Replay4NclCheaperThanSpikingLr) {
  snn::SnnNetwork net_a = scenario().net.clone();
  const ClRunResult r4 = run_continual_learning(net_a, scenario().tasks,
                                                run_config(small_replay4ncl(), 2, 4));
  snn::SnnNetwork net_b = scenario().net.clone();
  const ClRunResult sota = run_continual_learning(net_b, scenario().tasks,
                                                  run_config(small_spiking_lr(), 2, 4));
  EXPECT_LT(r4.total_latency_ms(), sota.total_latency_ms());
  EXPECT_LT(r4.total_energy_uj(), sota.total_energy_uj());
  EXPECT_LT(r4.latent_memory_bytes, sota.latent_memory_bytes);
}

TEST(ContinualIntegration, InsertionLayerZeroReplaysRawInput) {
  snn::SnnNetwork net = scenario().net.clone();
  const ClRunResult res =
      run_continual_learning(net, scenario().tasks, run_config(small_replay4ncl(), 0, 3));
  // No frozen prefix → preparation does no network work.
  EXPECT_EQ(res.prep_stats.neuron_updates, 0u);
  EXPECT_GT(res.latent_memory_bytes, 0u);
}

TEST(ContinualIntegration, LaterInsertionUsesSmallerLatentMemory) {
  std::size_t previous = SIZE_MAX;
  for (std::size_t layer : {1u, 2u, 3u}) {
    snn::SnnNetwork net = scenario().net.clone();
    const ClRunResult res = run_continual_learning(
        net, scenario().tasks, run_config(small_replay4ncl(), layer, 2));
    EXPECT_LT(res.latent_memory_bytes, previous) << "layer " << layer;
    previous = res.latent_memory_bytes;
  }
}

TEST(ContinualIntegration, EvalEverySkipsIntermediateEvaluations) {
  snn::SnnNetwork net = scenario().net.clone();
  ClRunConfig cfg = run_config(small_replay4ncl(), 2, 5);
  cfg.eval_every = 2;
  const ClRunResult res = run_continual_learning(net, scenario().tasks, cfg);
  EXPECT_GE(res.rows[0].acc_old, 0.0);
  EXPECT_LT(res.rows[1].acc_old, 0.0) << "skipped epoch must carry sentinel -1";
  EXPECT_GE(res.rows[4].acc_old, 0.0) << "final epoch always evaluated";
}

TEST(ContinualIntegration, DeterministicAcrossRuns) {
  snn::SnnNetwork net_a = scenario().net.clone();
  snn::SnnNetwork net_b = scenario().net.clone();
  const ClRunConfig cfg = run_config(small_replay4ncl(), 2, 3);
  const ClRunResult a = run_continual_learning(net_a, scenario().tasks, cfg);
  const ClRunResult b = run_continual_learning(net_b, scenario().tasks, cfg);
  for (std::size_t e = 0; e < a.rows.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.rows[e].loss, b.rows[e].loss);
    EXPECT_DOUBLE_EQ(a.rows[e].acc_old, b.rows[e].acc_old);
  }
}

TEST(ContinualIntegration, RejectsBadConfig) {
  snn::SnnNetwork net = scenario().net.clone();
  ClRunConfig cfg = run_config(small_replay4ncl(), 9);
  EXPECT_THROW((void)run_continual_learning(net, scenario().tasks, cfg), Error);
  cfg = run_config(small_replay4ncl(), 2, 0);
  EXPECT_THROW((void)run_continual_learning(net, scenario().tasks, cfg), Error);
}

TEST(ContinualIntegration, PretrainCacheRoundTrip) {
  // Second call with the same config must hit the checkpoint cache and yield
  // an identical network.
  const PretrainedScenario reloaded =
      make_pretrained_scenario(small_scenario_config(), ::testing::TempDir(), true);
  EXPECT_TRUE(reloaded.loaded_from_cache);
  EXPECT_DOUBLE_EQ(reloaded.pretrain_accuracy, scenario().pretrain_accuracy);
}

TEST(ContinualIntegration, ConfigHashSensitivity) {
  const PretrainConfig base = small_scenario_config();
  PretrainConfig changed = base;
  changed.network.seed += 1;
  EXPECT_NE(pretrain_config_hash(base), pretrain_config_hash(changed));
  changed = base;
  changed.split.replay_per_class += 1;
  EXPECT_NE(pretrain_config_hash(base), pretrain_config_hash(changed));
  EXPECT_EQ(pretrain_config_hash(base), pretrain_config_hash(small_scenario_config()));
}

}  // namespace
}  // namespace r4ncl::core
