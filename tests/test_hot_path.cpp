// Hot-path bit-identity contracts: the event-driven forward must reproduce
// the dense kernel bit for bit (outputs, caches AND SpikeOpStats), the
// batch-parallel loops must make threads=N ≡ threads=1, the prefetched batch
// pipeline must make prefetch=N ≡ prefetch=0 across the materialize/stream ×
// shards matrix, and the trainer/eval batch scratch must stay allocation-free
// after the first minibatch.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/aer.hpp"
#include "core/experiment.hpp"
#include "core/latent_buffer.hpp"
#include "core/pretrain.hpp"
#include "core/replay_stream.hpp"
#include "core/sequential.hpp"
#include "data/spike_data.hpp"
#include "snn/layer.hpp"
#include "snn/network.hpp"
#include "snn/trainer.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace r4ncl {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double density,
                                std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(density) ? 1 : 0;
  return r;
}

Tensor random_cube(std::size_t T, std::size_t B, std::size_t C, double density,
                   std::uint64_t seed) {
  Tensor x(T, B, C);
  Rng rng(seed);
  for (auto& v : x.values()) v = rng.bernoulli(density) ? 1.0f : 0.0f;
  return x;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(float)) == 0;
}

void expect_same_stats(const snn::SpikeOpStats& a, const snn::SpikeOpStats& b) {
  EXPECT_EQ(a.synops, b.synops);
  EXPECT_EQ(a.neuron_updates, b.neuron_updates);
  EXPECT_EQ(a.spikes, b.spikes);
  EXPECT_EQ(a.timestep_slots, b.timestep_slots);
  EXPECT_EQ(a.backward_synops, b.backward_synops);
  EXPECT_EQ(a.decompress_bits, b.decompress_bits);
}

std::vector<float> all_weights(const snn::SnnNetwork& net) {
  std::vector<float> w;
  for (std::size_t i = 0; i < net.num_hidden(); ++i) {
    const auto ff = net.hidden(i).w_ff().values();
    const auto rec = net.hidden(i).w_rec().values();
    w.insert(w.end(), ff.begin(), ff.end());
    w.insert(w.end(), rec.begin(), rec.end());
  }
  const auto ro = net.readout().w().values();
  w.insert(w.end(), ro.begin(), ro.end());
  return w;
}

bool same_weights(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Runs forward on both kernels and asserts bitwise-identical outputs,
/// caches and stats.
void expect_sparse_matches_dense(const snn::RecurrentLifLayer& layer, const Tensor& x,
                                 const snn::ThresholdPolicy& policy) {
  snn::LayerCache dense_cache, sparse_cache;
  snn::SpikeOpStats dense_stats, sparse_stats;
  snn::set_sparse_forward(snn::SparseForward::kNever);
  const Tensor dense =
      layer.forward(x, snn::SpikeMode::kHard, policy, &dense_cache, &dense_stats);
  snn::set_sparse_forward(snn::SparseForward::kAuto);
  const Tensor sparse =
      layer.forward(x, snn::SpikeMode::kHard, policy, &sparse_cache, &sparse_stats);
  EXPECT_TRUE(same_bits(dense, sparse));
  EXPECT_TRUE(same_bits(dense_cache.membrane, sparse_cache.membrane));
  EXPECT_TRUE(same_bits(dense_cache.spikes, sparse_cache.spikes));
  EXPECT_EQ(dense_cache.theta, sparse_cache.theta);
  expect_same_stats(dense_stats, sparse_stats);
}

snn::RecurrentLifLayer make_layer(std::size_t C, std::size_t n_out, bool recurrent,
                                  std::uint64_t seed) {
  snn::LifParams lif;
  lif.recurrent = recurrent;
  Rng rng(seed);
  return snn::RecurrentLifLayer(C, n_out, lif, snn::SurrogateParams{}, rng);
}

TEST(SparseForward, MatchesDenseAcrossDensities) {
  const std::size_t T = 10, B = 4, C = 48, N = 32;
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  for (const bool recurrent : {true, false}) {
    const auto layer = make_layer(C, N, recurrent, 7);
    for (const double density : {0.0, 0.05, 0.3, 1.0}) {
      SCOPED_TRACE(testing::Message() << "recurrent=" << recurrent
                                      << " density=" << density);
      expect_sparse_matches_dense(
          layer, random_cube(T, B, C, density, 100 + static_cast<int>(density * 100)),
          policy);
    }
  }
}

TEST(SparseForward, MatchesDenseWithAllZeroAndAllOnesTimesteps) {
  const std::size_t T = 8, B = 3, C = 40, N = 24;
  Tensor x = random_cube(T, B, C, 0.2, 55);
  // Timestep 0 fully silent, timestep 1 fully active: the event list must
  // handle empty rows and full rows without drifting from the dense kernel.
  for (std::size_t i = 0; i < B * C; ++i) {
    x.values()[i] = 0.0f;
    x.values()[B * C + i] = 1.0f;
  }
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  for (const bool recurrent : {true, false}) {
    SCOPED_TRACE(testing::Message() << "recurrent=" << recurrent);
    expect_sparse_matches_dense(make_layer(C, N, recurrent, 8), x, policy);
  }
}

TEST(SparseForward, MatchesDenseUnderAdaptivePolicy) {
  const std::size_t T = 12, B = 4, C = 48, N = 32;
  // The adaptive controller couples timesteps across the batch, which routes
  // the sparse path through its per-timestep loop (observe() feedback) —
  // still bit-identical.
  const auto policy = snn::ThresholdPolicy::adaptive(static_cast<int>(T));
  expect_sparse_matches_dense(make_layer(C, N, true, 9),
                              random_cube(T, B, C, 0.15, 77), policy);
}

TEST(SparseForward, MatchesDenseOnNonBinaryValues) {
  const std::size_t T = 6, B = 3, C = 32, N = 20;
  Tensor x(T, B, C);
  Rng rng(13);
  // Graded activations (latent insertions are not always 0/1): the event
  // list records values, and the value-weighted accumulation must follow the
  // dense kernel's exact multiply-add order.
  for (auto& v : x.values()) {
    if (!rng.bernoulli(0.2)) continue;
    v = rng.bernoulli(0.5) ? 0.5f : -0.25f;
  }
  expect_sparse_matches_dense(make_layer(C, N, true, 10), x,
                              snn::ThresholdPolicy::fixed(1.0f));
}

TEST(SparseForward, EventsFromAerMatchEventsFromBatch) {
  const std::size_t T = 10, B = 5, C = 64, N = 32;
  std::vector<compress::AerRaster> aer;
  Tensor x;
  data::ensure_batch_shape(x, T, B, C);
  for (std::size_t b = 0; b < B; ++b) {
    const data::SpikeRaster r = random_raster(T, C, 0.1, 300 + b);
    data::fill_batch_column(x, b, r);
    aer.push_back(compress::aer_encode(r));
  }
  const compress::BatchEventList from_batch = compress::events_from_batch(x);
  const compress::BatchEventList from_aer = compress::events_from_aer(aer);
  EXPECT_EQ(from_batch.offsets, from_aer.offsets);
  EXPECT_EQ(from_batch.channel, from_aer.channel);
  EXPECT_EQ(from_batch.value, from_aer.value);
  EXPECT_TRUE(from_aer.unit_values);

  // forward_events over the AER-built list ≡ dense forward over the cube.
  const auto layer = make_layer(C, N, true, 11);
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  snn::SpikeOpStats dense_stats, event_stats;
  snn::set_sparse_forward(snn::SparseForward::kNever);
  const Tensor dense = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, &dense_stats);
  snn::set_sparse_forward(snn::SparseForward::kAuto);
  const Tensor evented =
      layer.forward_events(from_aer, snn::SpikeMode::kHard, policy, &event_stats);
  EXPECT_TRUE(same_bits(dense, evented));
  expect_same_stats(dense_stats, event_stats);
}

TEST(ThreadIdentity, ForwardBitIdentical) {
  const std::size_t T = 10, B = 6, C = 48, N = 32;
  const auto layer = make_layer(C, N, true, 15);
  const Tensor x = random_cube(T, B, C, 0.1, 200);
  const int base = num_threads();
  for (const auto& policy : {snn::ThresholdPolicy::fixed(1.0f),
                             snn::ThresholdPolicy::adaptive(static_cast<int>(T))}) {
    set_num_threads(1);
    const Tensor one = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, nullptr);
    set_num_threads(4);
    const Tensor four = layer.forward(x, snn::SpikeMode::kHard, policy, nullptr, nullptr);
    EXPECT_TRUE(same_bits(one, four));
  }
  set_num_threads(base);
}

TEST(ThreadIdentity, BackwardGradsBitIdentical) {
  const std::size_t T = 10, B = 6, C = 48, N = 32;
  const Tensor x = random_cube(T, B, C, 0.1, 201);
  Tensor d_out(T, B, N);
  Rng rng(19);
  for (auto& v : d_out.values()) v = (static_cast<float>(rng.bernoulli(0.5)) - 0.5f) * 0.1f;
  const auto policy = snn::ThresholdPolicy::fixed(1.0f);
  const int base = num_threads();

  const auto run = [&](int threads, Tensor* d_in) {
    set_num_threads(threads);
    auto layer = make_layer(C, N, true, 16);
    snn::LayerCache cache;
    snn::SpikeOpStats stats;
    (void)layer.forward(x, snn::SpikeMode::kHard, policy, &cache, &stats);
    layer.backward(x, cache, d_out, d_in, &stats);
    return std::make_pair(layer.grad_w_ff(), layer.grad_w_rec());
  };
  Tensor d_in1(T, B, C), d_in4(T, B, C);
  const auto [ff1, rec1] = run(1, &d_in1);
  const auto [ff4, rec4] = run(4, &d_in4);
  set_num_threads(base);
  EXPECT_TRUE(same_bits(ff1, ff4));
  EXPECT_TRUE(same_bits(rec1, rec4));
  EXPECT_TRUE(same_bits(d_in1, d_in4));
}

// -- engine-level identity fixtures -----------------------------------------

core::PretrainConfig tiny_pretrain() {
  core::PretrainConfig cfg;
  cfg.network.layer_sizes = {64, 32, 16, 12};
  cfg.network.num_classes = 5;
  cfg.network.seed = 51;
  cfg.data_params.channels = 64;
  cfg.data_params.classes = 5;
  cfg.data_params.timesteps = 16;
  cfg.data_params.seed = 53;
  cfg.split.train_per_class = 6;
  cfg.split.test_per_class = 4;
  cfg.split.replay_per_class = 2;
  cfg.split.seed = 57;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  return cfg;
}

data::SequentialTasks tiny_stream(std::size_t num_tasks) {
  const data::SyntheticShdGenerator gen(tiny_pretrain().data_params);
  return data::build_sequential_tasks(gen, tiny_pretrain().split, num_tasks);
}

snn::SnnNetwork tiny_pretrained(const data::SequentialTasks& tasks) {
  snn::SnnNetwork net(tiny_pretrain().network);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = tiny_pretrain().epochs;
  opts.batch_size = tiny_pretrain().batch_size;
  (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  return net;
}

core::SequentialRunConfig tiny_run() {
  core::SequentialRunConfig cfg;
  cfg.method = core::NclMethodConfig::replay4ncl(16);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 3;
  cfg.replay_per_new_class = 2;
  return cfg;
}

void expect_same_rows(const core::SequentialRunResult& a,
                      const core::SequentialRunResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].acc_base, b.rows[i].acc_base);
    EXPECT_EQ(a.rows[i].acc_learned, b.rows[i].acc_learned);
    EXPECT_EQ(a.rows[i].acc_current, b.rows[i].acc_current);
    EXPECT_EQ(a.rows[i].latent_memory_bytes, b.rows[i].latent_memory_bytes);
  }
}

TEST(ThreadIdentity, SequentialEngineBitIdentical) {
  const auto tasks = tiny_stream(2);
  const snn::SnnNetwork base = tiny_pretrained(tasks);
  const int saved = num_threads();
  const auto run = [&](int threads, std::vector<float>* weights) {
    snn::SnnNetwork net = base.clone();
    core::SequentialRunConfig cfg = tiny_run();
    cfg.method.threads = threads;
    const auto result = core::run_sequential(net, tasks, cfg);
    *weights = all_weights(net);
    return result;
  };
  std::vector<float> w1, w4;
  const auto r1 = run(1, &w1);
  const auto r4 = run(4, &w4);
  set_num_threads(saved);
  EXPECT_TRUE(same_weights(w1, w4));
  expect_same_rows(r1, r4);
}

TEST(PrefetchIdentity, TrainSupervisedBitIdentical) {
  snn::NetworkConfig ncfg;
  ncfg.layer_sizes = {48, 32, 16};
  ncfg.num_classes = 4;
  ncfg.seed = 61;
  const snn::SnnNetwork base(ncfg);
  data::Dataset train;
  for (std::size_t i = 0; i < 32; ++i) {
    train.push_back({random_raster(12, 48, 0.1, 900 + i), static_cast<std::int32_t>(i % 4)});
  }
  const auto run = [&](std::size_t prefetch) {
    snn::SnnNetwork net = base.clone();
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 8;
    opts.shuffle_seed = 5;
    opts.prefetch = prefetch;
    (void)snn::train_supervised(net, train, opt, opts);
    return all_weights(net);
  };
  const auto w0 = run(0);
  EXPECT_TRUE(same_weights(w0, run(1)));
  EXPECT_TRUE(same_weights(w0, run(2)));
}

TEST(PrefetchIdentity, StreamedReplaySourceBitIdentical) {
  // The bench's train_prefetch case in miniature: a quantized replay stream
  // is the one SampleSource whose fetch does real decode work per call.
  const std::size_t T = 12, C = 48;
  snn::NetworkConfig ncfg;
  ncfg.layer_sizes = {C, 24, 16};
  ncfg.num_classes = 4;
  ncfg.seed = 63;
  const snn::SnnNetwork base(ncfg);
  core::LatentReplayBuffer buffer({.ratio = 2, .latent_bits = 2}, T);
  for (std::size_t i = 0; i < 24; ++i) {
    buffer.add(random_raster(T, C, 0.1, 1200 + i), static_cast<std::int32_t>(i % 4));
  }
  const auto run = [&](std::size_t prefetch) {
    snn::SnnNetwork net = base.clone();
    snn::AdamOptimizer opt;
    Rng rng(3);
    core::ReplayStream stream = buffer.stream(24, rng, 8, nullptr);
    snn::SampleSource source;
    source.size = stream.size();
    source.fetch = [&stream](std::size_t i) -> const data::Sample& { return stream.fetch(i); };
    snn::TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 8;
    opts.shuffle_seed = 5;
    opts.prefetch = prefetch;
    (void)snn::train_supervised(net, source, opt, opts);
    return all_weights(net);
  };
  const auto w0 = run(0);
  EXPECT_TRUE(same_weights(w0, run(1)));
}

TEST(PrefetchIdentity, SequentialEngineAcrossStreamAndShards) {
  const auto tasks = tiny_stream(2);
  const snn::SnnNetwork base = tiny_pretrained(tasks);
  const auto run = [&](bool prefetch, bool stream, std::size_t shards,
                       std::vector<float>* weights) {
    snn::SnnNetwork net = base.clone();
    core::SequentialRunConfig cfg = tiny_run();
    cfg.method.prefetch = prefetch;
    cfg.method.replay_stream = stream;
    cfg.method.replay_samples_per_epoch = stream ? 4 : 0;
    cfg.method.replay_sharding.shards = shards;
    const auto result = core::run_sequential(net, tasks, cfg);
    *weights = all_weights(net);
    return result;
  };
  // prefetch=1 must be a pure overlap knob in every engine configuration:
  // materialized and streamed replay, single-buffer and 4-shard stores.
  for (const bool stream : {false, true}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(testing::Message() << "stream=" << stream << " shards=" << shards);
      std::vector<float> w0, w1;
      const auto r0 = run(false, stream, shards, &w0);
      const auto r1 = run(true, stream, shards, &w1);
      EXPECT_TRUE(same_weights(w0, w1));
      expect_same_rows(r0, r1);
    }
  }
}

TEST(BatchScratch, TrainerAllocationsPinnedPerSlot) {
  snn::NetworkConfig ncfg;
  ncfg.layer_sizes = {32, 16, 8};
  ncfg.num_classes = 4;
  ncfg.seed = 71;
  data::Dataset train;
  // 32 samples at batch 8: every minibatch has the same shape, so each
  // pipeline slot allocates its scratch exactly once, then reuses it for the
  // whole run no matter how many epochs follow.
  for (std::size_t i = 0; i < 32; ++i) {
    train.push_back({random_raster(10, 32, 0.1, 1500 + i), static_cast<std::int32_t>(i % 4)});
  }
  const auto allocations = [&](std::size_t epochs, std::size_t prefetch) {
    snn::SnnNetwork net(ncfg);
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = epochs;
    opts.batch_size = 8;
    opts.prefetch = prefetch;
    const std::uint64_t before = data::batch_tensor_allocations();
    (void)snn::train_supervised(net, train, opt, opts);
    return data::batch_tensor_allocations() - before;
  };
  // prefetch=0 runs one slot; prefetch=1 double-buffers with two.  More
  // epochs must not add a single allocation.
  EXPECT_EQ(allocations(1, 0), 1u);
  EXPECT_EQ(allocations(3, 0), 1u);
  EXPECT_EQ(allocations(3, 1), 2u);
}

TEST(BatchScratch, EvaluateSourceMatchesDatasetAndReusesScratch) {
  snn::NetworkConfig ncfg;
  ncfg.layer_sizes = {32, 16, 8};
  ncfg.num_classes = 4;
  ncfg.seed = 73;
  const snn::SnnNetwork net(ncfg);
  data::Dataset test;
  for (std::size_t i = 0; i < 24; ++i) {
    test.push_back({random_raster(10, 32, 0.1, 1700 + i), static_cast<std::int32_t>(i % 4)});
  }
  snn::SampleSource source;
  source.size = test.size();
  source.fetch = [&test](std::size_t i) -> const data::Sample& { return test[i]; };

  snn::SpikeOpStats dataset_stats, source_stats;
  const double acc_dataset = snn::evaluate(net, test, 0, snn::ThresholdPolicy::fixed(1.0f),
                                           8, &dataset_stats);
  const std::uint64_t before = data::batch_tensor_allocations();
  const double acc_source = snn::evaluate(net, source, 0, snn::ThresholdPolicy::fixed(1.0f),
                                          8, &source_stats);
  const std::uint64_t delta = data::batch_tensor_allocations() - before;
  EXPECT_EQ(acc_dataset, acc_source);
  expect_same_stats(dataset_stats, source_stats);
  // 24 samples at batch 8: three equal-shape batches through one scratch.
  EXPECT_EQ(delta, 1u);
}

TEST(CliKnobs, NegativeThreadsRejectedEagerly) {
  core::NclMethodConfig method = core::NclMethodConfig::replay4ncl(16);
  Config cfg;
  cfg.set("threads", "-1");
  try {
    core::apply_replay_overrides(method, cfg);
    FAIL() << "threads=-1 must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-negative worker count"), std::string::npos);
  }
}

}  // namespace
}  // namespace r4ncl
