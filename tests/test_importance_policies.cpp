// Importance-aware replay selection and per-task budget schedules: score
// bookkeeping across the slot ring (evictions, middle splices, head
// compaction), the report_outcome feedback channel, schedule parsing and
// boundary re-eviction determinism, retention statistics, and the pinned
// CLI error messages of the eager validation path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/pretrain.hpp"
#include "core/sequential.hpp"
#include "snn/trainer.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

/// Raster with exactly `spikes` set cells (deterministic positions), so the
/// recorded density is exactly spikes / (T*C).
data::SpikeRaster counted_raster(std::size_t T, std::size_t C, std::size_t spikes) {
  data::SpikeRaster r(T, C);
  for (std::size_t i = 0; i < spikes && i < T * C; ++i) r.bits[i] = 1;
  return r;
}

std::size_t probe_entry_bytes(std::size_t T, std::size_t C) {
  LatentReplayBuffer probe({.ratio = 1}, T);
  probe.add(counted_raster(T, C, 1), 0);
  return probe.memory_bytes();
}

// ---------------------------------------------------------------------------
// Policy plumbing
// ---------------------------------------------------------------------------

TEST(ImportancePolicy, NamesRoundTripAndPinnedError) {
  for (const ReplayPolicy p : {ReplayPolicy::kLowImportance,
                               ReplayPolicy::kImportanceClassBalanced}) {
    EXPECT_EQ(parse_replay_policy(to_string(p)), p);
    EXPECT_TRUE(is_importance_policy(p));
  }
  EXPECT_FALSE(is_importance_policy(ReplayPolicy::kFifo));
  EXPECT_FALSE(is_importance_policy(ReplayPolicy::kReservoir));
  EXPECT_FALSE(is_importance_policy(ReplayPolicy::kClassBalanced));
  EXPECT_EQ(parse_replay_policy("importance_balanced"),
            ReplayPolicy::kImportanceClassBalanced);
  try {
    (void)parse_replay_policy("lru");
    FAIL() << "expected Error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find(
                  "unknown replay policy 'lru' (expected fifo|reservoir|"
                  "class_balanced|low_importance|importance_class_balanced)"),
              std::string::npos)
        << err.what();
  }
}

TEST(ImportancePolicy, DensityRecordedAtInsert) {
  LatentReplayBuffer buf({.ratio = 1}, 4);
  const std::size_t cells = 4 * 8;
  for (std::size_t spikes : {0u, 3u, 16u, 32u}) {
    buf.add(counted_raster(4, 8, spikes), static_cast<std::int32_t>(spikes));
  }
  ASSERT_EQ(buf.size(), 4u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const float expected =
        static_cast<float>(buf.label_at(i)) / static_cast<float>(cells);
    EXPECT_FLOAT_EQ(buf.density_at(i), expected);
    // No outcome reported yet: importance is the density proxy.
    EXPECT_FLOAT_EQ(buf.importance_at(i), buf.density_at(i));
  }
}

// ---------------------------------------------------------------------------
// Low-importance eviction
// ---------------------------------------------------------------------------

TEST(ImportancePolicy, LowImportanceEvictsLeastDense) {
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 4 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  // Densities 8, 2, 6, 4 spikes -> labels mark identity.
  for (const std::size_t spikes : {8u, 2u, 6u, 4u}) {
    EXPECT_TRUE(buf.add(counted_raster(4, 8, spikes), static_cast<std::int32_t>(spikes)));
  }
  // A denser newcomer displaces the sparsest stored entry (2 spikes).
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 10), 10));
  std::vector<std::int32_t> labels;
  for (std::size_t i = 0; i < buf.size(); ++i) labels.push_back(buf.label_at(i));
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::int32_t>{4, 6, 8, 10}));
  EXPECT_EQ(buf.evictions(), 1u);
}

TEST(ImportancePolicy, LowImportanceRejectsSparserNewcomer) {
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 3 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  for (const std::size_t spikes : {8u, 6u, 4u}) {
    EXPECT_TRUE(buf.add(counted_raster(4, 8, spikes), static_cast<std::int32_t>(spikes)));
  }
  // Strictly sparser than everything stored: the incoming entry loses.
  EXPECT_FALSE(buf.add(counted_raster(4, 8, 1), 1));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.evictions(), 1u);
  EXPECT_EQ(buf.stream_seen(), 4u);
  // An equal-score newcomer is accepted (ties evict the stored oldest-least).
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 4), 40));
  std::vector<std::int32_t> labels;
  for (std::size_t i = 0; i < buf.size(); ++i) labels.push_back(buf.label_at(i));
  EXPECT_EQ(std::count(labels.begin(), labels.end(), 40), 1);
}

TEST(ImportancePolicy, SaturatedOutcomesNeverBlockAdmission) {
  // Newcomer rejection is density-vs-density only: once every stored entry
  // carries a trainer-fed error score (here saturated at 1.0, far above any
  // density), a sparse new-task latent must still be admitted — otherwise a
  // misclassified old buffer would permanently starve new classes out.
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 3 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  for (std::int32_t i = 0; i < 3; ++i) EXPECT_TRUE(buf.add(counted_raster(4, 8, 20), i));
  for (std::size_t i = 0; i < 3; ++i) buf.report_outcome(i, 1.0f);
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 1), 99))
      << "outcome-scored victims must not reject sparser newcomers";
  std::vector<std::int32_t> labels;
  for (std::size_t i = 0; i < buf.size(); ++i) labels.push_back(buf.label_at(i));
  EXPECT_EQ(std::count(labels.begin(), labels.end(), 99), 1);
  EXPECT_EQ(buf.evictions(), 1u);
}

TEST(ImportancePolicy, ScoresSurviveRingEvictionsAndCompaction) {
  // 300 adds through a 100-entry FIFO window force >= 64 head evictions and
  // multiple dead-prefix compactions of the order ring; every surviving
  // logical index must still resolve to its own density (label encodes the
  // spike count, so the mapping is checkable without decoding).
  const std::size_t entry = probe_entry_bytes(4, 16);
  LatentReplayBuffer fifo({.ratio = 1}, 4,
                          {.capacity_bytes = 100 * entry, .policy = ReplayPolicy::kFifo});
  for (std::size_t i = 0; i < 300; ++i) {
    const std::size_t spikes = i % 60;
    fifo.add(counted_raster(4, 16, spikes), static_cast<std::int32_t>(spikes));
  }
  ASSERT_EQ(fifo.size(), 100u);
  EXPECT_EQ(fifo.evictions(), 200u);
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    const float expected = static_cast<float>(fifo.label_at(i)) / (4.0f * 16.0f);
    ASSERT_FLOAT_EQ(fifo.density_at(i), expected) << "index " << i;
  }

  // Middle splices + slot reuse: the importance policy evicts interior ring
  // positions, so slot ids get recycled; scores must follow the entries.
  LatentReplayBuffer imp({.ratio = 1}, 4,
                         {.capacity_bytes = 20 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  Rng order_rng(77);
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t spikes = 1 + order_rng.uniform_index(60);
    imp.add(counted_raster(4, 16, spikes), static_cast<std::int32_t>(spikes));
  }
  ASSERT_EQ(imp.size(), 20u);
  for (std::size_t i = 0; i < imp.size(); ++i) {
    const float expected = static_cast<float>(imp.label_at(i)) / (4.0f * 16.0f);
    ASSERT_FLOAT_EQ(imp.density_at(i), expected) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Trainer feedback (report_outcome)
// ---------------------------------------------------------------------------

TEST(ImportancePolicy, ReportOutcomeEmaMath) {
  LatentReplayBuffer buf({.ratio = 1}, 4);
  buf.add(counted_raster(4, 8, 16), 0);
  EXPECT_FLOAT_EQ(buf.importance_at(0), 0.5f);  // density proxy
  buf.report_outcome(0, 1.0f);
  EXPECT_FLOAT_EQ(buf.importance_at(0), 1.0f);  // first report replaces
  buf.report_outcome(0, 0.0f);
  EXPECT_FLOAT_EQ(buf.importance_at(0), 1.0f - kOutcomeEma);
  buf.report_outcome(0, 0.0f);
  EXPECT_FLOAT_EQ(buf.importance_at(0), (1.0f - kOutcomeEma) * (1.0f - kOutcomeEma));
  // Density itself is untouched (it is the raw insert-time record).
  EXPECT_FLOAT_EQ(buf.density_at(0), 0.5f);
}

TEST(ImportancePolicy, OutcomeOverridesDensityForEviction) {
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 3 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  // All equal density; labels 0,1,2.
  for (std::int32_t i = 0; i < 3; ++i) EXPECT_TRUE(buf.add(counted_raster(4, 8, 16), i));
  // The trainer consistently gets entry 1 right (error 0) and the others
  // wrong — entry 1 becomes the least informative.
  buf.report_outcome(0, 1.0f);
  buf.report_outcome(1, 0.0f);
  buf.report_outcome(2, 1.0f);
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 16), 3));
  std::vector<std::int32_t> labels;
  for (std::size_t i = 0; i < buf.size(); ++i) labels.push_back(buf.label_at(i));
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::int32_t>{0, 2, 3}));
}

TEST(ImportancePolicy, ImportanceClassBalancedEvictsLeastImportantOfHeaviestClass) {
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 5 * entry,
                          .policy = ReplayPolicy::kImportanceClassBalanced});
  // Class 0 holds three entries with densities 24 > 8 > 16 spikes; class 1
  // holds two.  An arriving class-1 entry makes class 0 the heaviest, so its
  // least dense member (8 spikes, stream position 1) must give way even
  // though class 1 has sparser members overall.
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 24), 0));
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 8), 0));
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 16), 0));
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 2), 1));
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 4), 1));
  EXPECT_TRUE(buf.add(counted_raster(4, 8, 6), 1));
  auto occupancy = buf.class_occupancy();
  ASSERT_EQ(occupancy.size(), 2u);
  EXPECT_EQ(occupancy[0].second, 2u);  // class 0 shed its least important
  EXPECT_EQ(occupancy[1].second, 3u);
  std::vector<std::int32_t> class0_spikes;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf.label_at(i) == 0) {
      class0_spikes.push_back(
          static_cast<std::int32_t>(std::lround(buf.density_at(i) * 4 * 8)));
    }
  }
  std::sort(class0_spikes.begin(), class0_spikes.end());
  EXPECT_EQ(class0_spikes, (std::vector<std::int32_t>{16, 24}));
}

// ---------------------------------------------------------------------------
// Retention statistics
// ---------------------------------------------------------------------------

TEST(ImportancePolicy, ChiSquaredRetentionFavorsDenseEntries) {
  // 64-entry stream, half dense (~0.45) and half sparse (~0.05), capacity 16
  // entries.  Under content-blind uniform retention each bucket expects 8 of
  // the 16 survivors; low_importance must retain (nearly) only dense
  // entries, so the chi-squared statistic against the uniform null must
  // exceed any plausible noise threshold (1 dof; 10.83 ~ p = 0.001).
  const std::size_t entry = probe_entry_bytes(6, 16);
  LatentReplayBuffer buf({.ratio = 1}, 6,
                         {.capacity_bytes = 16 * entry,
                          .policy = ReplayPolicy::kLowImportance});
  std::size_t added = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const bool dense = (i % 2) == 0;
    (void)buf.add(random_raster(6, 16, dense ? 0.45 : 0.05, 1000 + i),
                  dense ? 1 : 0);
    ++added;
  }
  ASSERT_EQ(added, 64u);
  ASSERT_EQ(buf.size(), 16u);
  std::size_t dense_kept = 0, sparse_kept = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    (buf.label_at(i) == 1 ? dense_kept : sparse_kept) += 1;
  }
  const double expected = 8.0;
  const double chi2 = (dense_kept - expected) * (dense_kept - expected) / expected +
                      (sparse_kept - expected) * (sparse_kept - expected) / expected;
  EXPECT_GT(chi2, 10.83) << "retention indistinguishable from content-blind uniform "
                            "(dense " << dense_kept << ", sparse " << sparse_kept << ")";
  EXPECT_GE(dense_kept, 15u);
}

// ---------------------------------------------------------------------------
// Budget schedules
// ---------------------------------------------------------------------------

TEST(BudgetSchedule, ParseRoundTripAndPinnedErrors) {
  EXPECT_EQ(parse_budget_schedule("const").kind, BudgetScheduleKind::kConst);
  EXPECT_EQ(parse_budget_schedule("const").spec(), "const");

  const BudgetSchedule linear = parse_budget_schedule("linear:4096:1024");
  EXPECT_EQ(linear.kind, BudgetScheduleKind::kLinear);
  EXPECT_EQ(linear.linear_start, 4096u);
  EXPECT_EQ(linear.linear_end, 1024u);
  EXPECT_EQ(linear.spec(), "linear:4096:1024");

  const BudgetSchedule step = parse_budget_schedule("step:3:2048");
  EXPECT_EQ(step.kind, BudgetScheduleKind::kStep);
  EXPECT_EQ(step.step_task, 3u);
  EXPECT_EQ(step.step_bytes, 2048u);
  EXPECT_EQ(step.spec(), "step:3:2048");

  for (const std::string_view bad :
       {"linear", "linear:5", "linear:5:6:7", "linear:a:6", "linear::6", "step:-1:5",
        "ramp:1:2", "", "const:1:2",
        // A size_t-overflowing byte count must throw, not wrap to a small
        // (or 0 = unbounded) capacity.
        "linear:18446744073709551616:4096"}) {
    try {
      (void)parse_budget_schedule(bad);
      FAIL() << "expected Error for '" << bad << "'";
    } catch (const Error& err) {
      EXPECT_NE(std::string(err.what()).find(
                    "(expected const|linear:<start>:<end>|step:<task>:<bytes>)"),
                std::string::npos)
          << err.what();
    }
  }
}

TEST(BudgetSchedule, CapacityForTaskMath) {
  BudgetSchedule none;
  EXPECT_EQ(none.capacity_for_task(5, 10, 777u), 777u);
  EXPECT_FALSE(none.active());

  const BudgetSchedule linear = parse_budget_schedule("linear:1000:200");
  EXPECT_TRUE(linear.active());
  EXPECT_EQ(linear.capacity_for_task(0, 5, 777u), 1000u);
  EXPECT_EQ(linear.capacity_for_task(4, 5, 777u), 200u);
  EXPECT_EQ(linear.capacity_for_task(2, 5, 777u), 600u);   // exact midpoint
  EXPECT_EQ(linear.capacity_for_task(1, 5, 777u), 800u);
  EXPECT_EQ(linear.capacity_for_task(9, 5, 777u), 200u);   // clamped past end
  EXPECT_EQ(linear.capacity_for_task(0, 1, 777u), 1000u);  // 1-task stream
  // Rising schedules interpolate too.
  const BudgetSchedule rising = parse_budget_schedule("linear:200:1000");
  EXPECT_EQ(rising.capacity_for_task(2, 5, 0u), 600u);

  // Byte counts near SIZE_MAX (which the parser admits) interpolate without
  // wrapping: halfway from 0 to 2^64-2 over 10 steps is 2^63-1, not garbage.
  const std::size_t big = ~static_cast<std::size_t>(0) - 1;
  const BudgetSchedule huge = parse_budget_schedule("linear:0:" + std::to_string(big));
  EXPECT_EQ(huge.capacity_for_task(5, 11, 0u), 9223372036854775807ull);

  const BudgetSchedule step = parse_budget_schedule("step:2:100");
  EXPECT_EQ(step.capacity_for_task(0, 5, 777u), 777u);
  EXPECT_EQ(step.capacity_for_task(1, 5, 777u), 777u);
  EXPECT_EQ(step.capacity_for_task(2, 5, 777u), 100u);
  EXPECT_EQ(step.capacity_for_task(4, 5, 777u), 100u);
}

TEST(BudgetSchedule, SetCapacityShrinkIsDeterministic) {
  // Identical seeds and streams must re-evict to byte-identical buffers at a
  // schedule boundary — for the rng-consuming policy (reservoir) and the
  // score-driven one (low_importance).
  const std::size_t entry = probe_entry_bytes(6, 16);
  for (const ReplayPolicy policy :
       {ReplayPolicy::kReservoir, ReplayPolicy::kLowImportance,
        ReplayPolicy::kImportanceClassBalanced}) {
    const ReplayBufferConfig budget{.capacity_bytes = 24 * entry, .policy = policy,
                                    .seed = 0xFEED + static_cast<std::uint64_t>(policy)};
    LatentReplayBuffer a({.ratio = 1}, 6, budget);
    LatentReplayBuffer b({.ratio = 1}, 6, budget);
    for (std::size_t i = 0; i < 40; ++i) {
      const auto r = random_raster(6, 16, 0.2 + 0.01 * static_cast<double>(i % 10),
                                   900 + i);
      (void)a.add(r, static_cast<std::int32_t>(i % 5));
      (void)b.add(r, static_cast<std::int32_t>(i % 5));
    }
    a.set_capacity(7 * entry);
    b.set_capacity(7 * entry);
    ASSERT_EQ(a.size(), b.size()) << to_string(policy);
    ASSERT_LE(a.memory_bytes(), 7 * entry) << to_string(policy);
    EXPECT_EQ(a.capacity_bytes(), 7 * entry);
    const data::Dataset da = a.materialize();
    const data::Dataset db = b.materialize();
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i].raster, db[i].raster) << to_string(policy) << " entry " << i;
      ASSERT_EQ(da[i].label, db[i].label);
    }
    // Re-running the shrink at the same cap is a no-op (no rng consumption).
    const std::size_t before = a.evictions();
    a.set_capacity(7 * entry);
    EXPECT_EQ(a.evictions(), before);
  }
}

TEST(BudgetSchedule, SetCapacityGrowAndUnboundedKeepEntries) {
  const std::size_t entry = probe_entry_bytes(4, 8);
  LatentReplayBuffer buf({.ratio = 1}, 4,
                         {.capacity_bytes = 4 * entry, .policy = ReplayPolicy::kFifo});
  for (std::int32_t i = 0; i < 8; ++i) buf.add(counted_raster(4, 8, 5), i);
  ASSERT_EQ(buf.size(), 4u);
  buf.set_capacity(16 * entry);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.capacity_bytes(), 16 * entry);
  for (std::int32_t i = 8; i < 20; ++i) buf.add(counted_raster(4, 8, 5), i);
  EXPECT_EQ(buf.size(), 16u);
  buf.set_capacity(0);  // unbounded: nothing evicts, growth resumes
  for (std::int32_t i = 20; i < 30; ++i) buf.add(counted_raster(4, 8, 5), i);
  EXPECT_EQ(buf.size(), 26u);
}

// ---------------------------------------------------------------------------
// Pinned CLI errors (eager validation in apply_replay_overrides)
// ---------------------------------------------------------------------------

TEST(ImportanceCli, PinnedErrorMessages) {
  const auto message_for = [](const char* key, const char* value) -> std::string {
    NclMethodConfig method = NclMethodConfig::replay4ncl();
    Config cfg;
    cfg.set(key, value);
    try {
      apply_replay_overrides(method, cfg);
    } catch (const Error& err) {
      return err.what();
    }
    return {};
  };
  EXPECT_NE(message_for("policy", "lfu").find(
                "unknown replay policy 'lfu' (expected fifo|reservoir|class_balanced|"
                "low_importance|importance_class_balanced)"),
            std::string::npos);
  EXPECT_NE(message_for("budget_schedule", "linear:1k:2k").find(
                "unknown budget_schedule 'linear:1k:2k' "
                "(expected const|linear:<start>:<end>|step:<task>:<bytes>)"),
            std::string::npos);
  EXPECT_NE(message_for("replay_seed", "-1").find(
                "replay_seed=-1 must be a non-negative eviction seed"),
            std::string::npos);
  // Strict decimal: a lax get_int would read "0x10" as 0 and run the wrong
  // seed without a word.
  EXPECT_NE(message_for("replay_seed", "0x10").find(
                "replay_seed=0x10 must be a non-negative eviction seed"),
            std::string::npos);
  EXPECT_TRUE(message_for("budget_schedule", "step:2:4096").empty());
  EXPECT_TRUE(message_for("policy", "importance_balanced").empty());
  // The full uint64 seed range is admissible.
  EXPECT_TRUE(message_for("replay_seed", "18446744073709551615").empty());
}

TEST(ImportanceCli, OverridesApplyToMethod) {
  NclMethodConfig method = NclMethodConfig::replay4ncl();
  Config cfg;
  cfg.set("policy", "low_importance");
  cfg.set("budget_schedule", "linear:9000:3000");
  cfg.set("replay_seed", "1234");
  cfg.set("importance_feedback", "0");
  apply_replay_overrides(method, cfg);
  EXPECT_EQ(method.replay_budget.policy, ReplayPolicy::kLowImportance);
  EXPECT_EQ(method.budget_schedule.kind, BudgetScheduleKind::kLinear);
  EXPECT_EQ(method.budget_schedule.linear_start, 9000u);
  EXPECT_EQ(method.budget_schedule.linear_end, 3000u);
  EXPECT_EQ(method.replay_budget.seed, 1234u);
  EXPECT_FALSE(method.importance_feedback);
}

// ---------------------------------------------------------------------------
// Trainer feedback channel
// ---------------------------------------------------------------------------

TEST(ImportanceFeedback, SampleOutcomeHookCoversEverySamplePerEpoch) {
  // Reuse the banded-dataset idea of test_trainer: 2 classes, 8 channels.
  data::Dataset train;
  Rng rng(5);
  for (std::int32_t k = 0; k < 2; ++k) {
    for (int i = 0; i < 6; ++i) {
      data::Sample s;
      s.label = k;
      s.raster = data::SpikeRaster(8, 8);
      for (std::size_t t = 0; t < 8; ++t) {
        for (std::size_t c = 0; c < 8; ++c) {
          const bool band = (k == 0) ? c < 4 : c >= 4;
          if (rng.bernoulli(band ? 0.6 : 0.05)) s.raster.set(t, c, true);
        }
      }
      train.push_back(std::move(s));
    }
  }
  snn::NetworkConfig nc;
  nc.layer_sizes = {8, 12};
  nc.num_classes = 2;
  nc.seed = 21;
  snn::SnnNetwork net(nc);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 5;  // ragged final batch: the hook must still fire
  std::vector<int> seen(train.size(), 0);
  std::size_t calls = 0;
  bool errors_binary = true;
  opts.sample_outcome = [&](std::size_t index, float error) {
    ASSERT_LT(index, train.size());
    seen[index] += 1;
    errors_binary = errors_binary && (error == 0.0f || error == 1.0f);
    ++calls;
  };
  (void)snn::train_supervised(net, train, opt, opts);
  EXPECT_EQ(calls, train.size() * opts.epochs);
  EXPECT_TRUE(errors_binary);
  for (const int count : seen) EXPECT_EQ(count, 3);
}

// ---------------------------------------------------------------------------
// Engine integration: schedule boundaries in run_sequential
// ---------------------------------------------------------------------------

/// Tiny 6-class scenario (geometry of test_sequential) for 2-task streams.
PretrainConfig small_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {96, 48, 24, 12};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 96;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 24;
  cfg.data_params.ridge_width = 5.0;
  cfg.data_params.position_pool = 8;
  cfg.data_params.background_rate = 0.004;
  cfg.data_params.rate_jitter = 0.08;
  cfg.data_params.channel_jitter = 1.5;
  cfg.data_params.time_jitter = 1.0;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 14;
  cfg.split.test_per_class = 5;
  cfg.split.replay_per_class = 3;
  cfg.split.seed = 41;
  cfg.epochs = 12;
  cfg.batch_size = 8;
  return cfg;
}

TEST(BudgetSchedule, SequentialRunHonorsPerTaskBudgetsDeterministically) {
  const PretrainConfig pc = small_config();
  const data::SyntheticShdGenerator gen(pc.data_params);
  const data::SequentialTasks tasks = data::build_sequential_tasks(gen, pc.split, 2);
  snn::SnnNetwork pretrained(pc.network);
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    (void)snn::train_supervised(pretrained, tasks.pretrain_train, opt, opts);
  }

  const std::size_t entry = probe_entry_bytes(12, 48);
  SequentialRunConfig run;
  run.method = NclMethodConfig::replay4ncl(12);
  run.method.lr_cl = 5e-4f;
  run.method.batch_size = 8;
  run.method.replay_budget.policy = ReplayPolicy::kLowImportance;
  run.method.budget_schedule = parse_budget_schedule(
      "linear:" + std::to_string(14 * entry) + ":" + std::to_string(6 * entry));
  run.insertion_layer = 1;
  run.epochs_per_task = 3;
  run.replay_per_new_class = 4;

  auto run_once = [&]() {
    snn::SnnNetwork net = pretrained.clone();
    return run_sequential(net, tasks, run);
  };
  const SequentialRunResult a = run_once();
  ASSERT_EQ(a.rows.size(), 2u);
  // The schedule pins task budgets to its endpoints on a 2-task stream, and
  // each task's buffer state respects the budget in force.
  EXPECT_EQ(a.rows[0].budget_bytes, 14 * entry);
  EXPECT_EQ(a.rows[1].budget_bytes, 6 * entry);
  for (const auto& row : a.rows) {
    EXPECT_LE(row.latent_memory_bytes, row.budget_bytes) << "task " << row.task_index;
  }
  // 3 base classes x 3 latents seed 9 entries; the task-1 shrink to 6 forces
  // evictions even before arrivals are counted.
  EXPECT_GT(a.rows.back().buffer_evictions, 0u);

  // Same config, same seeds: bit-identical rows (schedule re-eviction and
  // outcome feedback included).
  const SequentialRunResult b = run_once();
  ASSERT_EQ(b.rows.size(), a.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].acc_base, b.rows[i].acc_base);
    EXPECT_EQ(a.rows[i].acc_learned, b.rows[i].acc_learned);
    EXPECT_EQ(a.rows[i].latent_memory_bytes, b.rows[i].latent_memory_bytes);
    EXPECT_EQ(a.rows[i].budget_bytes, b.rows[i].budget_bytes);
    EXPECT_EQ(a.rows[i].buffer_entries, b.rows[i].buffer_entries);
    EXPECT_EQ(a.rows[i].buffer_evictions, b.rows[i].buffer_evictions);
    EXPECT_EQ(a.rows[i].latency_ms, b.rows[i].latency_ms);
  }
}

}  // namespace
}  // namespace r4ncl::core
