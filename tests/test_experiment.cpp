// Experiment presets: paper geometry, scaling behaviour, bench method
// factories, summaries.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace r4ncl::core {
namespace {

TEST(Experiment, StandardConfigMatchesPaperGeometry) {
  const PretrainConfig cfg = standard_pretrain_config(1.0);
  EXPECT_EQ(cfg.network.layer_sizes, (std::vector<std::size_t>{700, 200, 100, 50}));
  EXPECT_EQ(cfg.network.num_classes, 20u);
  EXPECT_EQ(cfg.data_params.channels, 700u);
  EXPECT_EQ(cfg.data_params.timesteps, 100u);
  EXPECT_EQ(cfg.split.new_class, 19);
  EXPECT_FLOAT_EQ(cfg.lr, kEtaPre);
  EXPECT_EQ(cfg.network.surrogate.kind, snn::SurrogateKind::kFastSigmoid);
  EXPECT_FLOAT_EQ(cfg.network.surrogate.scale, 10.0f);
}

TEST(Experiment, ScaleShrinksSampleCountsNotArchitecture) {
  const PretrainConfig full = standard_pretrain_config(1.0);
  const PretrainConfig half = standard_pretrain_config(0.5);
  EXPECT_EQ(half.network.layer_sizes, full.network.layer_sizes);
  EXPECT_EQ(half.data_params.timesteps, full.data_params.timesteps);
  EXPECT_LT(half.split.train_per_class, full.split.train_per_class);
  EXPECT_LE(half.split.test_per_class, full.split.test_per_class);
}

TEST(Experiment, ScaleHasFloors) {
  const PretrainConfig tiny = standard_pretrain_config(0.01);
  EXPECT_GE(tiny.split.train_per_class, 4u);
  EXPECT_GE(tiny.split.test_per_class, 4u);
  EXPECT_GE(tiny.split.replay_per_class, 2u);
}

TEST(Experiment, ScaleClampInsaneValues) {
  EXPECT_NO_THROW(standard_pretrain_config(-5.0));
  EXPECT_NO_THROW(standard_pretrain_config(1e9));
}

TEST(Experiment, ReplaySubsetSmallerThanTrainSet) {
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    const PretrainConfig cfg = standard_pretrain_config(scale);
    EXPECT_LE(cfg.split.replay_per_class, cfg.split.train_per_class) << "scale " << scale;
  }
}

TEST(Experiment, ConfigFromArgsOverridesEpochs) {
  Config cfg;
  cfg.set("pretrain_epochs", "3");
  cfg.set("scale", "0.5");
  const PretrainConfig pc = pretrain_config_from(cfg);
  EXPECT_EQ(pc.epochs, 3u);
  EXPECT_LT(pc.split.train_per_class, 12u);
}

TEST(Experiment, BenchReplay4NclPreset) {
  const NclMethodConfig m = bench_replay4ncl();
  EXPECT_EQ(m.cl_timesteps, 40u);
  EXPECT_TRUE(m.adaptive_threshold);
  EXPECT_EQ(m.storage_codec.ratio, 1u);
  // Rescaled η (DESIGN.md §5.10): between the paper divisor and η_pre.
  EXPECT_LT(m.lr_cl, kEtaPre);
  EXPECT_GT(m.lr_cl, kEtaPre / 100.0f);
}

TEST(Experiment, BenchSpikingLrIsPaperExact) {
  const NclMethodConfig m = bench_spiking_lr();
  EXPECT_EQ(m.cl_timesteps, 100u);
  EXPECT_EQ(m.storage_codec.ratio, 2u);
  EXPECT_FLOAT_EQ(m.lr_cl, kEtaPre);
}

TEST(Experiment, BenchReplay4NclCustomTimesteps) {
  EXPECT_EQ(bench_replay4ncl(60).cl_timesteps, 60u);
}

TEST(Experiment, SummarizeMentionsKeyNumbers) {
  ClRunResult res;
  res.method_name = "TestMethod";
  res.insertion_layer = 2;
  res.final_acc_old = 0.5;
  res.final_acc_new = 0.25;
  res.latent_memory_bytes = 1234;
  const std::string s = summarize(res);
  EXPECT_NE(s.find("TestMethod"), std::string::npos);
  EXPECT_NE(s.find("L2"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
}

TEST(Experiment, TotalCostAccumulatesPrepAndEpochs) {
  ClRunResult res;
  res.prep_latency_ms = 10.0;
  res.prep_energy_uj = 1.0;
  ClEpochRow row;
  row.latency_ms = 5.0;
  row.energy_uj = 2.0;
  res.rows.push_back(row);
  res.rows.push_back(row);
  EXPECT_DOUBLE_EQ(res.total_latency_ms(), 20.0);
  EXPECT_DOUBLE_EQ(res.total_energy_uj(), 5.0);
}

}  // namespace
}  // namespace r4ncl::core
