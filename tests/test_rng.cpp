// Determinism and basic statistical sanity of the seeded RNG.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace r4ncl {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(99);
  Rng child = parent.fork();
  const auto child_first = child();
  // Parent keeps producing values unrelated to the child's stream.
  EXPECT_NE(parent(), child_first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(80.0);
  EXPECT_NEAR(sum / n, 80.0, 1.5);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(15);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(16);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(17);
  const auto p = rng.permutation(50);
  std::vector<std::size_t> identity(50);
  for (std::size_t i = 0; i < 50; ++i) identity[i] = i;
  EXPECT_NE(p, identity);
}

}  // namespace
}  // namespace r4ncl
