// parallel_for correctness: full coverage, no double-visits, thread knobs.
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hpp"

namespace r4ncl {
namespace {

TEST(Parallel, VisitsEveryIndexOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](std::size_t i) { visits[i].fetch_add(1); }, 4096);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, NonZeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); }, 4096);
  EXPECT_EQ(sum.load(), 145u);  // 10+11+...+19
}

TEST(Parallel, ThreadCountKnob) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);  // clamped to 1
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
}

TEST(Parallel, SmallGrainRunsSerial) {
  // With grain 1 and a tiny range the body must still run for every index.
  set_num_threads(4);
  std::vector<int> visits(10, 0);
  parallel_for(0, 10, [&](std::size_t i) { visits[i] += 1; }, 1);
  for (int v : visits) EXPECT_EQ(v, 1);
  set_num_threads(2);
}

}  // namespace
}  // namespace r4ncl
