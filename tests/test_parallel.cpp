// parallel_for correctness: full coverage, no double-visits, thread knobs.
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/parallel.hpp"

namespace r4ncl {
namespace {

TEST(Parallel, VisitsEveryIndexOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](std::size_t i) { visits[i].fetch_add(1); }, 4096);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, NonZeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); }, 4096);
  EXPECT_EQ(sum.load(), 145u);  // 10+11+...+19
}

TEST(Parallel, ThreadCountKnob) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);  // clamped to 1
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
}

TEST(Parallel, OpenMpBuildUsesMultipleThreads) {
  // OpenMP honours num_threads() even on single-core hosts, so an OpenMP
  // build must show more than one worker here; the std::thread fallback
  // also passes, but a fully serial dispatch would not.
  if (!openmp_enabled()) {
    GTEST_SKIP() << "built without OpenMP; serial fallback already warned";
  }
#ifdef _OPENMP
  // num_threads() on the pragma is a request, not a guarantee: a runtime
  // capped by OMP_THREAD_LIMIT or with dynamic adjustment may deliver one
  // thread, which is an environment limit, not a dispatch bug.
  if (omp_get_thread_limit() < 2 || omp_get_dynamic()) {
    GTEST_SKIP() << "OpenMP runtime caps the team at 1 thread";
  }
#endif
  const int prev = num_threads();
  set_num_threads(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  parallel_for(0, 8192, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  }, 1);
  set_num_threads(prev);
  EXPECT_GT(ids.size(), 1u);
}

TEST(Parallel, SmallGrainRunsSerial) {
  // With grain 1 and a tiny range the body must still run for every index.
  set_num_threads(4);
  std::vector<int> visits(10, 0);
  parallel_for(0, 10, [&](std::size_t i) { visits[i] += 1; }, 1);
  for (int v : visits) EXPECT_EQ(v, 1);
  set_num_threads(2);
}

TEST(RunWorkers, EveryWorkerIndexRunsOnItsOwnThread) {
  const std::size_t workers = 6;
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<int> visits(workers, 0);
  run_workers(workers, [&](std::size_t w) {
    std::lock_guard<std::mutex> lock(mu);
    visits[w] += 1;
    ids.insert(std::this_thread::get_id());
  });
  for (int v : visits) EXPECT_EQ(v, 1);
  // Coarse fleet tasks get a dedicated thread each, never OpenMP or a serial
  // collapse — that is the whole point of the entry point.
  EXPECT_EQ(ids.size(), workers);
}

TEST(RunWorkers, SingleWorkerStillGetsAThread) {
  std::thread::id body_id;
  run_workers(1, [&](std::size_t) { body_id = std::this_thread::get_id(); });
  EXPECT_NE(body_id, std::this_thread::get_id());
}

TEST(RunWorkers, ZeroWorkersIsNoop) {
  bool called = false;
  run_workers(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(RunWorkers, RethrowsFirstWorkerExceptionAfterJoin) {
  std::atomic<int> completed{0};
  try {
    run_workers(4, [&](std::size_t w) {
      if (w == 2) throw std::runtime_error("worker 2 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 2 failed");
  }
  // The pool joined everyone before rethrowing: no worker was abandoned.
  EXPECT_EQ(completed.load(), 3);
}

}  // namespace
}  // namespace r4ncl
