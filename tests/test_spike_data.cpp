// Spike raster utilities: rescaling, batching, filtering.
#include <gtest/gtest.h>

#include "data/spike_data.hpp"

namespace r4ncl::data {
namespace {

SpikeRaster make_raster(std::size_t T, std::size_t C,
                        std::initializer_list<std::pair<std::size_t, std::size_t>> spikes) {
  SpikeRaster r(T, C);
  for (auto [t, c] : spikes) r.set(t, c, true);
  return r;
}

TEST(SpikeRaster, CountAndDensity) {
  const SpikeRaster r = make_raster(4, 5, {{0, 0}, {1, 2}, {3, 4}});
  EXPECT_EQ(r.spike_count(), 3u);
  EXPECT_DOUBLE_EQ(r.density(), 3.0 / 20.0);
}

TEST(SpikeRaster, EmptyDensityIsZero) {
  SpikeRaster r;
  EXPECT_DOUBLE_EQ(r.density(), 0.0);
}

TEST(TimeRescale, IdentityWhenSameLength) {
  const SpikeRaster r = make_raster(6, 3, {{2, 1}});
  const SpikeRaster out = time_rescale(r, 6);
  EXPECT_EQ(out, r);
}

TEST(TimeRescale, GroupOrKeepsEverySpikeBurst) {
  // 100 → 40: group-OR must preserve any channel-timestep bin with activity.
  SpikeRaster r(100, 2);
  r.set(0, 0, true);
  r.set(99, 0, true);
  r.set(50, 1, true);
  const SpikeRaster out = time_rescale(r, 40, TimeRescaleMethod::kGroupOr);
  EXPECT_EQ(out.timesteps, 40u);
  EXPECT_GE(out.spike_count(), 3u - 1u);  // first/last/middle bins may merge
  EXPECT_EQ(out.at(0, 0), 1);
  EXPECT_EQ(out.at(39, 0), 1);
  EXPECT_EQ(out.at(20, 1), 1);
}

TEST(TimeRescale, GroupOrNeverInventsSpikes) {
  SpikeRaster r(100, 4);  // empty
  const SpikeRaster out = time_rescale(r, 40);
  EXPECT_EQ(out.spike_count(), 0u);
}

TEST(TimeRescale, SubsampleTakesBinStart) {
  // 10 → 5 with ratio 2: target step t reads source step 2t.
  SpikeRaster r(10, 1);
  r.set(0, 0, true);
  r.set(3, 0, true);  // odd step → dropped by subsampling
  r.set(4, 0, true);
  const SpikeRaster out = time_rescale(r, 5, TimeRescaleMethod::kSubsample);
  EXPECT_EQ(out.at(0, 0), 1);
  EXPECT_EQ(out.at(1, 0), 0);
  EXPECT_EQ(out.at(2, 0), 1);
}

TEST(TimeRescale, SpikeCountNonIncreasing) {
  // Re-binning can merge spikes but must never create them (group-OR).
  Rng rng(3);
  SpikeRaster r(100, 10);
  for (auto& b : r.bits) b = rng.bernoulli(0.2) ? 1 : 0;
  for (std::size_t target : {60u, 40u, 20u, 10u}) {
    const SpikeRaster out = time_rescale(r, target);
    EXPECT_LE(out.spike_count(), r.spike_count()) << "target " << target;
    EXPECT_GT(out.spike_count(), 0u);
  }
}

TEST(TimeRescale, DatasetVariantRescalesAll) {
  Dataset ds;
  ds.push_back({make_raster(10, 2, {{0, 0}}), 1});
  ds.push_back({make_raster(10, 2, {{9, 1}}), 2});
  const Dataset out = time_rescale(ds, 5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].raster.timesteps, 5u);
  EXPECT_EQ(out[0].label, 1);
  EXPECT_EQ(out[1].label, 2);
}

TEST(Batching, RoundTripThroughTensor) {
  Dataset ds;
  ds.push_back({make_raster(4, 3, {{0, 0}, {2, 1}}), 0});
  ds.push_back({make_raster(4, 3, {{1, 2}, {3, 0}}), 1});
  const std::size_t idx_arr[] = {0, 1};
  const Tensor batch = make_batch(ds, idx_arr);
  EXPECT_EQ(batch.dim(0), 4u);
  EXPECT_EQ(batch.dim(1), 2u);
  EXPECT_EQ(batch.dim(2), 3u);
  EXPECT_EQ(batch_to_raster(batch, 0), ds[0].raster);
  EXPECT_EQ(batch_to_raster(batch, 1), ds[1].raster);
}

TEST(Batching, LabelsFollowIndices) {
  Dataset ds;
  ds.push_back({SpikeRaster(2, 2), 5});
  ds.push_back({SpikeRaster(2, 2), 9});
  const std::size_t idx_arr[] = {1, 0};
  const auto labels = batch_labels(ds, idx_arr);
  EXPECT_EQ(labels, (std::vector<std::int32_t>{9, 5}));
}

TEST(Batching, RasterToBatchSingle) {
  const SpikeRaster r = make_raster(3, 2, {{1, 1}});
  const Tensor batch = raster_to_batch(r);
  EXPECT_EQ(batch.dim(1), 1u);
  EXPECT_EQ(batch(1, 0, 1), 1.0f);
  EXPECT_EQ(batch(0, 0, 0), 0.0f);
}

TEST(Batching, MixedShapesRejected) {
  Dataset ds;
  ds.push_back({SpikeRaster(4, 3), 0});
  ds.push_back({SpikeRaster(5, 3), 1});
  const std::size_t idx_arr[] = {0, 1};
  EXPECT_THROW((void)make_batch(ds, idx_arr), Error);
}

TEST(Filtering, FilterClasses) {
  Dataset ds;
  for (int k = 0; k < 5; ++k) ds.push_back({SpikeRaster(2, 2), k});
  const std::int32_t keep[] = {1, 3};
  const Dataset out = filter_classes(ds, keep);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].label, 1);
  EXPECT_EQ(out[1].label, 3);
}

TEST(Filtering, TakePerClassCaps) {
  Dataset ds;
  for (int i = 0; i < 6; ++i) ds.push_back({SpikeRaster(2, 2), i % 2});
  const std::int32_t keep[] = {0, 1};
  const Dataset out = take_per_class(ds, keep, 2);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Filtering, ClassesOfSortedUnique) {
  Dataset ds;
  ds.push_back({SpikeRaster(1, 1), 4});
  ds.push_back({SpikeRaster(1, 1), 1});
  ds.push_back({SpikeRaster(1, 1), 4});
  EXPECT_EQ(classes_of(ds), (std::vector<std::int32_t>{1, 4}));
}

}  // namespace
}  // namespace r4ncl::data
