// Hardware mapping estimates: core counts, synapse-memory splitting, SRAM fit.
#include <gtest/gtest.h>

#include "metrics/hw_mapper.hpp"

namespace r4ncl::metrics {
namespace {

snn::SnnNetwork paper_net() { return snn::SnnNetwork{snn::NetworkConfig{}}; }

TEST(HwMapper, PaperNetworkFitsOneLoihiClassChip) {
  const MappingResult m = map_network(paper_net(), 11248 /* R4NCL latent bytes @L3 */);
  EXPECT_TRUE(m.fits_cores);
  EXPECT_TRUE(m.fits_synapses);
  EXPECT_TRUE(m.latent_fits_sram);
  EXPECT_GT(m.total_cores, 0u);
  EXPECT_LE(m.core_utilisation, 1.0);
  ASSERT_EQ(m.layers.size(), 4u);  // 3 hidden + readout
}

TEST(HwMapper, CoresScaleWithNeuronLimit) {
  const snn::SnnNetwork net = paper_net();
  ChipBudget small;
  small.neurons_per_core = 64;
  const MappingResult coarse = map_network(net, 0);
  const MappingResult fine = map_network(net, 0, small);
  EXPECT_GT(fine.total_cores, coarse.total_cores);
}

TEST(HwMapper, SynapseMemoryForcesSplit) {
  // 200 neurons with 900 inputs at 9 b/synapse = 8.1 kb/neuron; with only
  // 32 kb synapse memory per core, ≤4 neurons fit per core → ≥50 cores for
  // layer 0 even though the neuron limit alone would allow one core.
  const snn::SnnNetwork net = paper_net();
  ChipBudget tight;
  tight.synapse_bits_per_core = 32 * 1024;
  tight.cores = 4096;
  const MappingResult m = map_network(net, 0, tight);
  EXPECT_GT(m.layers[0].cores_used, 49u);
  EXPECT_TRUE(m.fits_synapses) << "splitting must bring per-core fill under 1.0";
}

TEST(HwMapper, FanInIncludesRecurrence) {
  const snn::SnnNetwork net = paper_net();
  const MappingResult m = map_network(net, 0);
  // Hidden layer 0: 700 feedforward + 200 recurrent inputs.
  EXPECT_EQ(m.layers[0].fan_in, 900u);
  // Readout: 50 inputs, no recurrence.
  EXPECT_EQ(m.layers.back().fan_in, 50u);
}

TEST(HwMapper, LatentSramVerdict) {
  const snn::SnnNetwork net = paper_net();
  ChipBudget budget;
  budget.shared_sram_bytes = 10 * 1024;
  EXPECT_TRUE(map_network(net, 10 * 1024, budget).latent_fits_sram);
  EXPECT_FALSE(map_network(net, 10 * 1024 + 1, budget).latent_fits_sram);
}

TEST(HwMapper, ChipOverflowReported) {
  const snn::SnnNetwork net = paper_net();
  ChipBudget tiny;
  tiny.cores = 1;
  const MappingResult m = map_network(net, 0, tiny);
  EXPECT_FALSE(m.fits_cores);
  EXPECT_GT(m.core_utilisation, 1.0);
}

TEST(HwMapper, RejectsDegenerateBudget) {
  ChipBudget bad;
  bad.cores = 0;
  EXPECT_THROW((void)map_network(paper_net(), 0, bad), Error);
}

}  // namespace
}  // namespace r4ncl::metrics
