// Cost models and accuracy bookkeeping.
#include <gtest/gtest.h>

#include "metrics/accuracy.hpp"
#include "metrics/cost_model.hpp"

namespace r4ncl::metrics {
namespace {

TEST(CostModel, ZeroStatsZeroCost) {
  const snn::SpikeOpStats stats{};
  EXPECT_DOUBLE_EQ(EnergyModel().energy_uj(stats), 0.0);
  EXPECT_DOUBLE_EQ(LatencyModel().latency_ms(stats), 0.0);
}

TEST(CostModel, EnergyIsLinearInOps) {
  snn::SpikeOpStats a{};
  a.synops = 1000;
  a.neuron_updates = 500;
  snn::SpikeOpStats b = a;
  b.synops *= 2;
  b.neuron_updates *= 2;
  const EnergyModel model;
  EXPECT_NEAR(model.energy_uj(b), 2.0 * model.energy_uj(a), 1e-12);
}

TEST(CostModel, EnergyMatchesHandComputation) {
  EnergyModelParams p;
  p.synop_pj = 10.0;
  p.neuron_update_pj = 2.0;
  p.spike_pj = 1.0;
  p.backward_op_pj = 0.5;
  p.decompress_bit_pj = 0.1;
  p.timestep_slot_pj = 3.0;
  snn::SpikeOpStats s{};
  s.synops = 4;
  s.neuron_updates = 5;
  s.spikes = 6;
  s.backward_synops = 8;
  s.decompress_bits = 10;
  s.timestep_slots = 2;
  // 40 + 10 + 6 + 4 + 1 + 6 = 67 pJ.
  EXPECT_NEAR(EnergyModel(p).energy_uj(s), 67e-6, 1e-12);
}

TEST(CostModel, LatencyMatchesHandComputation) {
  LatencyModelParams p;
  p.synop_ns = 2.0;
  p.neuron_update_ns = 1.0;
  p.spike_ns = 0.0;
  p.backward_op_ns = 0.25;
  p.decompress_bit_ns = 0.5;
  p.timestep_slot_ns = 10.0;
  snn::SpikeOpStats s{};
  s.synops = 10;
  s.neuron_updates = 20;
  s.backward_synops = 8;
  s.decompress_bits = 4;
  s.timestep_slots = 1;
  // 20 + 20 + 2 + 2 + 10 = 54 ns.
  EXPECT_NEAR(LatencyModel(p).latency_ms(s), 54e-6, 1e-12);
}

TEST(CostModel, StatsAddAccumulates) {
  snn::SpikeOpStats a{}, b{};
  a.synops = 1;
  a.spikes = 2;
  b.synops = 10;
  b.backward_synops = 5;
  a.add(b);
  EXPECT_EQ(a.synops, 11u);
  EXPECT_EQ(a.spikes, 2u);
  EXPECT_EQ(a.backward_synops, 5u);
}

TEST(Forgetting, TracksBestMinusCurrent) {
  ForgettingTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.update(0.8), 0.0);
  EXPECT_DOUBLE_EQ(tracker.update(0.9), 0.0);
  EXPECT_DOUBLE_EQ(tracker.update(0.6), 0.3);
  EXPECT_DOUBLE_EQ(tracker.best(), 0.9);
  EXPECT_DOUBLE_EQ(tracker.update(0.95), 0.0);
}

TEST(EvalSettings, DefaultsMatchSota) {
  const EvalSettings s;
  EXPECT_EQ(s.timesteps, 100u);
  EXPECT_EQ(s.policy.mode, snn::ThresholdMode::kFixed);
}

}  // namespace
}  // namespace r4ncl::metrics
