// Full-state checkpoint & warm resume: the bit-identity contract across
// every eviction policy, shard count, and replay_stream setting, plus the
// loader-hardening contract — corrupt or truncated checkpoints raise the
// pinned r4ncl::Error with no crash, no silent partial load, and no
// allocation blow-up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pretrain.hpp"
#include "core/sequential.hpp"
#include "core/sharded_engine.hpp"
#include "util/serialize.hpp"

namespace r4ncl::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::uint8_t* data, std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(n));
}

bool tensor_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::equal(a.values().begin(), a.values().end(), b.values().begin());
}

bool weights_identical(const snn::SnnNetwork& a, const snn::SnnNetwork& b) {
  if (!tensor_equal(a.readout().w(), b.readout().w())) return false;
  for (std::size_t i = 0; i < a.num_hidden(); ++i) {
    if (!tensor_equal(a.hidden(i).w_ff(), b.hidden(i).w_ff())) return false;
    if (a.hidden(i).lif().recurrent &&
        !tensor_equal(a.hidden(i).w_rec(), b.hidden(i).w_rec())) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Sequential-run fixture: tiny 6-class scenario, pre-trained once and cloned
// per run so the whole resume matrix stays cheap.

PretrainConfig seq_config() {
  PretrainConfig cfg;
  cfg.network.layer_sizes = {48, 24, 12, 8};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 48;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 20;
  cfg.data_params.ridge_width = 4.0;
  cfg.data_params.position_pool = 6;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 8;
  cfg.split.test_per_class = 4;
  cfg.split.replay_per_class = 2;
  cfg.split.seed = 41;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  return cfg;
}

const data::SequentialTasks& seq_tasks() {
  static const data::SequentialTasks tasks = [] {
    const data::SyntheticShdGenerator gen(seq_config().data_params);
    return data::build_sequential_tasks(gen, seq_config().split, 2);
  }();
  return tasks;
}

const snn::SnnNetwork& seq_base_net() {
  static const snn::SnnNetwork net = [] {
    snn::SnnNetwork n(seq_config().network);
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = seq_config().epochs;
    opts.batch_size = seq_config().batch_size;
    (void)snn::train_supervised(n, seq_tasks().pretrain_train, opt, opts);
    return n;
  }();
  return net;
}

SequentialRunConfig seq_run(ReplayPolicy policy, std::size_t shards, bool stream) {
  SequentialRunConfig cfg;
  cfg.method = NclMethodConfig::replay4ncl(10);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.method.replay_budget.policy = policy;
  cfg.method.replay_sharding.shards = shards;
  cfg.method.replay_stream = stream;
  cfg.method.replay_samples_per_epoch = 4;  // exercise the replay-draw rng
  cfg.method.importance_feedback = true;    // live feedback for the *_importance policies
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 2;
  cfg.replay_per_new_class = 2;
  return cfg;
}

/// A budget small enough that the 2-task stream actually evicts, measured
/// from one real entry so it tracks geometry/codec changes.
std::size_t seq_budget() {
  static const std::size_t budget = [] {
    const SequentialRunConfig run = seq_run(ReplayPolicy::kFifo, 1, false);
    LatentReplayBuffer probe(run.method.storage_codec, run.method.cl_timesteps);
    const data::Dataset rescaled = data::time_rescale(
        seq_tasks().replay_subset, run.method.cl_timesteps, run.method.rescale);
    const Tensor latent =
        seq_base_net().run_hidden(data::raster_to_batch(rescaled.front().raster), 0,
                                  run.insertion_layer, run.method.policy(), nullptr);
    probe.add(data::batch_to_raster(latent, 0), rescaled.front().label);
    return probe.memory_bytes() * 7;
  }();
  return budget;
}

bool seq_rows_identical(const std::vector<SequentialTaskRow>& a,
                        const std::vector<SequentialTaskRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.task_index != y.task_index || x.class_id != y.class_id ||
        x.acc_base != y.acc_base || x.acc_learned != y.acc_learned ||
        x.acc_current != y.acc_current ||
        x.latent_memory_bytes != y.latent_memory_bytes ||
        x.budget_bytes != y.budget_bytes || x.buffer_entries != y.buffer_entries ||
        x.buffer_evictions != y.buffer_evictions || x.latency_ms != y.latency_ms ||
        x.energy_uj != y.energy_uj) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// The bit-identity matrix: every eviction policy × shards {1, 4} ×
// replay_stream {off, on}.  Each cell runs the stream three ways — full,
// killed after task 1 (checkpoint forced), resumed from disk into a *blank*
// network — and requires every row field, both cost totals, and every weight
// to match the uninterrupted run exactly.

TEST(CheckpointResume, BitIdenticalAcrossPoliciesShardsAndStreaming) {
  const ReplayPolicy policies[] = {
      ReplayPolicy::kFifo, ReplayPolicy::kReservoir, ReplayPolicy::kClassBalanced,
      ReplayPolicy::kLowImportance, ReplayPolicy::kImportanceClassBalanced};
  std::size_t cell = 0;
  for (const ReplayPolicy policy : policies) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const bool stream : {false, true}) {
        SCOPED_TRACE(std::string(to_string(policy)) + " shards=" +
                     std::to_string(shards) + " stream=" + std::to_string(stream));
        SequentialRunConfig cfg = seq_run(policy, shards, stream);
        cfg.method.replay_budget.capacity_bytes = seq_budget();

        snn::SnnNetwork ref_net = seq_base_net().clone();
        const SequentialRunResult full = run_sequential(ref_net, seq_tasks(), cfg);
        ASSERT_EQ(full.rows.size(), 2u);

        const std::string path = temp_path("resume_" + std::to_string(cell++) + ".ckpt");
        snn::SnnNetwork killed_net = seq_base_net().clone();
        CheckpointOptions save_opts;
        save_opts.save_path = path;
        save_opts.stop_after_units = 1;
        const SequentialRunResult partial =
            run_sequential(killed_net, seq_tasks(), cfg, save_opts);
        ASSERT_EQ(partial.rows.size(), 1u);
        EXPECT_TRUE(seq_rows_identical(partial.rows, {full.rows.front()}));

        snn::SnnNetwork resumed_net(seq_config().network);  // blank weights
        CheckpointOptions resume_opts;
        resume_opts.resume_path = path;
        const SequentialRunResult resumed =
            run_sequential(resumed_net, seq_tasks(), cfg, resume_opts);

        EXPECT_TRUE(seq_rows_identical(resumed.rows, full.rows));
        EXPECT_EQ(resumed.total_latency_ms, full.total_latency_ms);
        EXPECT_EQ(resumed.total_energy_uj, full.total_energy_uj);
        EXPECT_TRUE(weights_identical(resumed_net, ref_net));
        std::filesystem::remove(path);
      }
    }
  }
}

TEST(CheckpointResume, DefaultOptionsMatchThreeArgForm) {
  SequentialRunConfig cfg = seq_run(ReplayPolicy::kReservoir, 1, false);
  snn::SnnNetwork a = seq_base_net().clone();
  snn::SnnNetwork b = seq_base_net().clone();
  const SequentialRunResult plain = run_sequential(a, seq_tasks(), cfg);
  const SequentialRunResult with_opts =
      run_sequential(b, seq_tasks(), cfg, CheckpointOptions{});
  EXPECT_TRUE(seq_rows_identical(plain.rows, with_opts.rows));
  EXPECT_TRUE(weights_identical(a, b));
}

TEST(CheckpointResume, CadenceSavesOnlyAtEveryKthUnitAndAtTheEnd) {
  SequentialRunConfig cfg = seq_run(ReplayPolicy::kFifo, 1, false);
  const std::string path = temp_path("cadence.ckpt");
  snn::SnnNetwork net = seq_base_net().clone();
  CheckpointOptions opts;
  opts.save_path = path;
  opts.every = 5;  // larger than the stream: only the run-end save fires
  (void)run_sequential(net, seq_tasks(), cfg, opts);
  EXPECT_TRUE(std::filesystem::exists(path));
  // The run-end snapshot resumes to an immediate no-op finish.
  snn::SnnNetwork resumed_net(seq_config().network);
  CheckpointOptions resume_opts;
  resume_opts.resume_path = path;
  const SequentialRunResult res =
      run_sequential(resumed_net, seq_tasks(), cfg, resume_opts);
  EXPECT_EQ(res.rows.size(), 2u);
  EXPECT_TRUE(weights_identical(resumed_net, net));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Continual-run resume: the run-long Adam moments ride along, so a resumed
// run must continue the *optimizer* exactly, not just the weights.

TEST(CheckpointResume, ContinualRunResumesWithOptimizerState) {
  PretrainConfig cfg = seq_config();
  cfg.split.new_class = 5;
  const PretrainedScenario scenario =
      make_pretrained_scenario(cfg, ::testing::TempDir(), true);

  ClRunConfig run;
  run.method = NclMethodConfig::replay4ncl(10);
  run.method.lr_cl = 5e-4f;
  run.method.batch_size = 8;
  run.insertion_layer = 1;
  run.epochs = 4;
  run.seed = 55;

  snn::SnnNetwork ref_net = scenario.net.clone();
  const ClRunResult full = run_continual_learning(ref_net, scenario.tasks, run);
  ASSERT_EQ(full.rows.size(), 4u);

  const std::string path = temp_path("continual.ckpt");
  snn::SnnNetwork killed_net = scenario.net.clone();
  CheckpointOptions save_opts;
  save_opts.save_path = path;
  save_opts.stop_after_units = 2;
  const ClRunResult partial =
      run_continual_learning(killed_net, scenario.tasks, run, save_opts);
  ASSERT_EQ(partial.rows.size(), 2u);

  snn::SnnNetwork resumed_net(cfg.network);  // blank weights
  CheckpointOptions resume_opts;
  resume_opts.resume_path = path;
  const ClRunResult resumed =
      run_continual_learning(resumed_net, scenario.tasks, run, resume_opts);
  std::filesystem::remove(path);

  ASSERT_EQ(resumed.rows.size(), full.rows.size());
  for (std::size_t e = 0; e < full.rows.size(); ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    const ClEpochRow& x = full.rows[e];
    const ClEpochRow& y = resumed.rows[e];
    // Wall seconds are the one field exempt from the bit-identity contract.
    EXPECT_EQ(x.epoch, y.epoch);
    EXPECT_EQ(x.loss, y.loss);
    EXPECT_EQ(x.acc_old, y.acc_old);
    EXPECT_EQ(x.acc_new, y.acc_new);
    EXPECT_EQ(x.latency_ms, y.latency_ms);
    EXPECT_EQ(x.energy_uj, y.energy_uj);
    EXPECT_EQ(x.stats.synops, y.stats.synops);
    EXPECT_EQ(x.stats.neuron_updates, y.stats.neuron_updates);
    EXPECT_EQ(x.stats.spikes, y.stats.spikes);
    EXPECT_EQ(x.stats.backward_synops, y.stats.backward_synops);
    EXPECT_EQ(x.stats.decompress_bits, y.stats.decompress_bits);
  }
  EXPECT_EQ(resumed.final_acc_old, full.final_acc_old);
  EXPECT_EQ(resumed.final_acc_new, full.final_acc_new);
  EXPECT_EQ(resumed.latent_memory_bytes, full.latent_memory_bytes);
  EXPECT_EQ(resumed.prep_latency_ms, full.prep_latency_ms);
  EXPECT_EQ(resumed.prep_energy_uj, full.prep_energy_uj);
  EXPECT_TRUE(weights_identical(resumed_net, ref_net));
}

// ---------------------------------------------------------------------------
// Fingerprint verification: resuming under any changed configuration is a
// pinned error, not a silently diverging run.

/// A small hand-built checkpoint (tiny net + 2-entry engine) shared by the
/// mismatch and corruption suites; ~a few KB so the exhaustive sweeps stay
/// fast even under sanitizers.
struct TinyCheckpoint {
  snn::NetworkConfig net_config;
  NclMethodConfig method;
  CheckpointMeta meta;
  std::string path;

  TinyCheckpoint() {
    net_config.layer_sizes = {10, 6, 4};
    net_config.num_classes = 3;
    net_config.seed = 5;
    method = NclMethodConfig::replay4ncl(6);
    method.batch_size = 4;
    meta = make_checkpoint_meta(CheckpointKind::kSequential, method, 1, 9, 3);
    meta.next_unit = 1;
    path = temp_path("tiny.ckpt");

    const snn::SnnNetwork net(net_config);
    ShardedReplayEngine engine(method.storage_codec, method.cl_timesteps,
                               method.replay_budget.with_run_seed(9),
                               method.replay_sharding);
    Rng fill(3);
    for (int i = 0; i < 2; ++i) {
      data::SpikeRaster r(method.cl_timesteps, 6);
      for (auto& b : r.bits) b = fill.bernoulli(0.3) ? 1 : 0;
      engine.add(r, i);
    }
    Checkpoint ck;
    ck.meta = meta;
    ck.unit_rng = Rng(11).state();
    ck.replay_rng = Rng(13).state();
    SequentialTaskRow row;
    row.task_index = 0;
    row.class_id = 2;
    row.acc_base = 0.5;
    ck.seq_rows.push_back(row);
    ck.seq_total_latency_ms = 1.5;
    ck.seq_total_energy_uj = 2.5;
    save_checkpoint(path, ck, net, nullptr, engine);
  }

  /// Fresh load targets (partially mutated loads are fine to reuse — every
  /// iteration re-parses from the file).
  [[nodiscard]] Checkpoint load(const CheckpointMeta& expected,
                                snn::AdamOptimizer* optimizer = nullptr) const {
    snn::SnnNetwork net(net_config);
    ShardedReplayEngine engine(method.storage_codec, method.cl_timesteps,
                               method.replay_budget.with_run_seed(9),
                               method.replay_sharding);
    return load_checkpoint(path, expected, net, optimizer, engine);
  }
};

const TinyCheckpoint& tiny() {
  static const TinyCheckpoint t;
  return t;
}

void expect_load_error(const CheckpointMeta& expected, const std::string& needle,
                       snn::AdamOptimizer* optimizer = nullptr) {
  try {
    (void)tiny().load(expected, optimizer);
    FAIL() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(CheckpointMismatch, RoundTripRestoresCarriedState) {
  const Checkpoint ck = tiny().load(tiny().meta);
  EXPECT_EQ(ck.meta.next_unit, 1u);
  ASSERT_EQ(ck.seq_rows.size(), 1u);
  EXPECT_EQ(ck.seq_rows[0].class_id, 2);
  EXPECT_EQ(ck.seq_rows[0].acc_base, 0.5);
  EXPECT_EQ(ck.seq_total_latency_ms, 1.5);
  EXPECT_EQ(ck.seq_total_energy_uj, 2.5);
  EXPECT_EQ(ck.unit_rng, Rng(11).state());
  EXPECT_EQ(ck.replay_rng, Rng(13).state());
}

TEST(CheckpointMismatch, KindPolicySeedAndStreamAllPinned) {
  CheckpointMeta m = tiny().meta;
  m.kind = CheckpointKind::kContinual;
  expect_load_error(m, "checkpoint mismatch: kind");
  m = tiny().meta;
  m.policy = "reservoir";
  expect_load_error(m, "checkpoint mismatch: policy");
  m = tiny().meta;
  m.seed = 10;
  expect_load_error(m, "checkpoint mismatch: seed");
  m = tiny().meta;
  m.replay_stream = true;
  expect_load_error(m, "checkpoint mismatch: replay_stream");
  m = tiny().meta;
  m.shards = 4;
  expect_load_error(m, "checkpoint mismatch: shards");
  m = tiny().meta;
  m.cl_timesteps = 12;
  expect_load_error(m, "checkpoint mismatch: cl_timesteps");
  m = tiny().meta;
  m.total_units = 7;
  expect_load_error(m, "checkpoint mismatch: total_units");
}

TEST(CheckpointMismatch, OptimizerPresenceIsVerified) {
  // Saved without optimizer state; a resuming run that needs it must fail.
  snn::AdamOptimizer optimizer;
  expect_load_error(tiny().meta, "optimizer state", &optimizer);
}

TEST(CheckpointMismatch, NetworkArchitectureIsVerified) {
  snn::NetworkConfig other = tiny().net_config;
  other.layer_sizes = {10, 6, 5};
  snn::SnnNetwork net(other);
  ShardedReplayEngine engine(tiny().method.storage_codec, tiny().method.cl_timesteps,
                             tiny().method.replay_budget.with_run_seed(9),
                             tiny().method.replay_sharding);
  try {
    (void)load_checkpoint(tiny().path, tiny().meta, net, nullptr, engine);
    FAIL() << "expected architecture mismatch";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("architecture mismatch"), std::string::npos)
        << "actual message: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Loader hardening: every strict prefix of a real checkpoint must raise the
// pinned Error; no bit flip anywhere in the file may crash or blow up an
// allocation; a hostile length prefix dies on the bounds check, not in the
// allocator.

TEST(CheckpointCorruption, EveryTruncationRaisesPinnedError) {
  const std::vector<std::uint8_t> bytes = read_file(tiny().path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string mangled = temp_path("truncated.ckpt");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(mangled, bytes.data(), len);
    snn::SnnNetwork net(tiny().net_config);
    ShardedReplayEngine engine(tiny().method.storage_codec, tiny().method.cl_timesteps,
                               tiny().method.replay_budget.with_run_seed(9),
                               tiny().method.replay_sharding);
    EXPECT_THROW((void)load_checkpoint(mangled, tiny().meta, net, nullptr, engine), Error)
        << "truncation at byte " << len << " of " << bytes.size();
  }
  std::filesystem::remove(mangled);
}

TEST(CheckpointCorruption, NoBitFlipCrashesTheLoader) {
  const std::vector<std::uint8_t> bytes = read_file(tiny().path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string mangled = temp_path("bitflip.ckpt");
  std::vector<std::uint8_t> copy = bytes;
  std::size_t pinned_errors = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      copy[i] = bytes[i] ^ static_cast<std::uint8_t>(1u << bit);
      write_file(mangled, copy.data(), copy.size());
      snn::SnnNetwork net(tiny().net_config);
      ShardedReplayEngine engine(tiny().method.storage_codec, tiny().method.cl_timesteps,
                                 tiny().method.replay_budget.with_run_seed(9),
                                 tiny().method.replay_sharding);
      // Contract: either the flip lands in plain data (load succeeds with
      // different values) or the loader raises the pinned Error.  Anything
      // else — a crash, a bad_alloc, an uncaught std exception — fails here.
      try {
        (void)load_checkpoint(mangled, tiny().meta, net, nullptr, engine);
      } catch (const Error&) {
        ++pinned_errors;
      }
    }
    copy[i] = bytes[i];
  }
  // Structural bytes dominate a small checkpoint; most flips must be caught.
  EXPECT_GT(pinned_errors, bytes.size());
  std::filesystem::remove(mangled);
}

TEST(CheckpointCorruption, HostileRowCountDiesOnBoundsCheckNotAllocation) {
  std::vector<std::uint8_t> bytes = read_file(tiny().path);
  // The u64 row count sits right after the "PROG" section tag.
  const std::uint8_t prog[4] = {'P', 'R', 'O', 'G'};
  const auto it = std::search(bytes.begin(), bytes.end(), std::begin(prog), std::end(prog));
  ASSERT_NE(it, bytes.end());
  const std::size_t count_at = static_cast<std::size_t>(it - bytes.begin()) + 4;
  ASSERT_LE(count_at + 8, bytes.size());
  const std::uint64_t huge = 0x4000000000000000ULL;
  std::memcpy(bytes.data() + count_at, &huge, sizeof(huge));
  const std::string mangled = temp_path("hugecount.ckpt");
  write_file(mangled, bytes.data(), bytes.size());
  snn::SnnNetwork net(tiny().net_config);
  ShardedReplayEngine engine(tiny().method.storage_codec, tiny().method.cl_timesteps,
                             tiny().method.replay_budget.with_run_seed(9),
                             tiny().method.replay_sharding);
  try {
    (void)load_checkpoint(mangled, tiny().meta, net, nullptr, engine);
    FAIL() << "expected the row-count bounds check to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("task rows exceed the file"), std::string::npos)
        << "actual message: " << e.what();
  }
  std::filesystem::remove(mangled);
}

TEST(CheckpointCorruption, TrailingGarbageAfterEndTagIsRejected) {
  std::vector<std::uint8_t> bytes = read_file(tiny().path);
  bytes.push_back(0xAB);
  const std::string mangled = temp_path("trailing.ckpt");
  write_file(mangled, bytes.data(), bytes.size());
  snn::SnnNetwork net(tiny().net_config);
  ShardedReplayEngine engine(tiny().method.storage_codec, tiny().method.cl_timesteps,
                             tiny().method.replay_budget.with_run_seed(9),
                             tiny().method.replay_sharding);
  try {
    (void)load_checkpoint(mangled, tiny().meta, net, nullptr, engine);
    FAIL() << "expected the trailing-byte check to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing byte"), std::string::npos)
        << "actual message: " << e.what();
  }
  std::filesystem::remove(mangled);
}

TEST(CheckpointCorruption, HostileVectorLengthDiesOnBoundsCheckNotAllocation) {
  // Serialize-level analogue: a length prefix whose n * sizeof(float) would
  // wrap or exceed the file must die in check_length, not in the allocator.
  const std::string path = temp_path("hugevec.bin");
  {
    BinaryWriter out(path);
    out.write_u64(0x2000000000000000ULL);  // * sizeof(float) wraps a u64
    out.write_f32(1.0f);
    out.close();
  }
  BinaryReader in(path);
  try {
    (void)in.read_f32_vector();
    FAIL() << "expected the length bounds check to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos)
        << "actual message: " << e.what();
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Engine snapshot: entries, labels, counters, and importance scores (both the
// density proxy and trainer-fed outcome EMAs) round-trip per shard.

TEST(EngineSnapshot, RoundTripPreservesEntriesCountersAndImportance) {
  const compress::CodecConfig codec{};
  ReplayBufferConfig budget;
  budget.policy = ReplayPolicy::kLowImportance;
  budget.seed = 77;
  ShardedEngineConfig sharding;
  sharding.shards = 3;
  ShardedReplayEngine engine(codec, 8, budget, sharding);
  Rng fill(21);
  for (int i = 0; i < 9; ++i) {
    data::SpikeRaster r(8, 5);
    for (auto& b : r.bits) b = fill.bernoulli(0.2) ? 1 : 0;
    engine.add(r, i % 4);
  }
  engine.report_outcome(2, 0.75f);
  engine.report_outcome(5, 0.25f);

  const std::string path = temp_path("engine.snap");
  {
    BinaryWriter out(path);
    engine.save(out);
    out.close();
  }
  ShardedReplayEngine loaded(codec, 8, budget, sharding);
  {
    BinaryReader in(path);
    loaded.load(in);
    EXPECT_EQ(in.remaining(), 0u);
  }
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.size(), engine.size());
  EXPECT_EQ(loaded.memory_bytes(), engine.memory_bytes());
  EXPECT_EQ(loaded.stream_seen(), engine.stream_seen());
  EXPECT_EQ(loaded.evictions(), engine.evictions());
  EXPECT_EQ(loaded.channels(), engine.channels());
  EXPECT_EQ(loaded.class_occupancy(), engine.class_occupancy());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    EXPECT_EQ(loaded.label_at(i), engine.label_at(i)) << "entry " << i;
    EXPECT_EQ(loaded.importance_at(i), engine.importance_at(i)) << "entry " << i;
  }
  // Decoded payloads match byte-for-byte.
  for (std::size_t i = 0; i < engine.size(); ++i) {
    data::Sample a, b;
    engine.decompress_into(i, a);
    loaded.decompress_into(i, b);
    EXPECT_EQ(a.raster.bits, b.raster.bits) << "entry " << i;
  }
  // ...and so does all future stochastic behaviour (restored eviction rngs).
  Rng draw_a(31), draw_b(31);
  EXPECT_EQ(engine.draw_indices(4, draw_a), loaded.draw_indices(4, draw_b));
}

TEST(EngineSnapshot, ShardLayoutMismatchesArePinned) {
  const compress::CodecConfig codec{};
  ShardedReplayEngine engine(codec, 8, {}, {.shards = 2});
  const std::string path = temp_path("engine_mismatch.snap");
  {
    BinaryWriter out(path);
    engine.save(out);
    out.close();
  }
  ShardedReplayEngine wrong_count(codec, 8, {}, {.shards = 3});
  {
    BinaryReader in(path);
    EXPECT_THROW(wrong_count.load(in), Error);
  }
  ShardedReplayEngine wrong_key(codec, 8, {}, {.shards = 2, .shard_by = ShardKey::kHash});
  {
    BinaryReader in(path);
    EXPECT_THROW(wrong_key.load(in), Error);
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Rng snapshots: the SplitMix64 state and the Box–Muller spare normal both
// round-trip; dropping the spare would shift every subsequent draw.

TEST(RngSnapshot, RoundTripContinuesTheRawStream) {
  Rng r(123);
  for (int i = 0; i < 5; ++i) (void)r();
  Rng q(999);
  q.restore(r.state());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r(), q());
}

TEST(RngSnapshot, SpareNormalIsPartOfTheStream) {
  Rng r(7);
  (void)r.normal();  // Box–Muller caches the second draw as the spare
  const Rng::State s = r.state();
  EXPECT_TRUE(s.have_spare_normal);

  Rng q(999);
  q.restore(s);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r.normal(), q.normal());

  // Dropping the spare shifts the stream: the next draw differs.
  Rng dropped(999);
  Rng::State no_spare = s;
  no_spare.have_spare_normal = false;
  dropped.restore(no_spare);
  Rng again(999);
  again.restore(s);
  EXPECT_NE(again.normal(), dropped.normal());
}

// ---------------------------------------------------------------------------
// Optimizer snapshots: a loaded optimizer continues the exact update
// sequence, for Adam (m, v, t) and SGD momentum alike.

Tensor filled_tensor(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Tensor t(rows, cols);
  Rng rng(seed);
  t.fill_normal(rng, 0.5f);
  return t;
}

TEST(OptimizerSnapshot, AdamRoundTripContinuesIdentically) {
  const Tensor g1 = filled_tensor(3, 4, 1);
  const Tensor g2 = filled_tensor(3, 4, 2);
  Tensor w = filled_tensor(3, 4, 3);
  snn::AdamOptimizer a;
  a.step("layer.w", w, g1, 0.01f);  // builds non-trivial (m, v, t = 1) state

  const std::string path = temp_path("adam.snap");
  {
    BinaryWriter out(path);
    a.save(out);
    out.close();
  }
  snn::AdamOptimizer b;
  {
    BinaryReader in(path);
    b.load(in);
    EXPECT_EQ(in.remaining(), 0u);
  }
  std::filesystem::remove(path);
  EXPECT_EQ(b.num_states(), a.num_states());

  Tensor wa = w;
  Tensor wb = w;
  a.step("layer.w", wa, g2, 0.01f);
  b.step("layer.w", wb, g2, 0.01f);
  EXPECT_TRUE(tensor_equal(wa, wb))
      << "a restored Adam must take the bias-corrected t=2 step, not restart at t=1";

  // The restored moment shape is still verified against the live parameter.
  Tensor wrong_shape = filled_tensor(4, 3, 4);
  EXPECT_THROW(b.step("layer.w", wrong_shape, filled_tensor(4, 3, 5), 0.01f), Error);
}

TEST(OptimizerSnapshot, SgdMomentumRoundTripContinuesIdentically) {
  const Tensor g1 = filled_tensor(2, 5, 6);
  const Tensor g2 = filled_tensor(2, 5, 7);
  Tensor w = filled_tensor(2, 5, 8);
  snn::SgdOptimizer a(0.9f);
  a.step("layer.w", w, g1, 0.05f);

  const std::string path = temp_path("sgd.snap");
  {
    BinaryWriter out(path);
    a.save(out);
    out.close();
  }
  snn::SgdOptimizer b(0.9f);
  {
    BinaryReader in(path);
    b.load(in);
    EXPECT_EQ(in.remaining(), 0u);
  }
  std::filesystem::remove(path);

  Tensor wa = w;
  Tensor wb = w;
  a.step("layer.w", wa, g2, 0.05f);
  b.step("layer.w", wb, g2, 0.05f);
  EXPECT_TRUE(tensor_equal(wa, wb))
      << "restored momentum must feed the next velocity update";
}

}  // namespace
}  // namespace r4ncl::core
