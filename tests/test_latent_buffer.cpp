// Latent replay buffer: storage, memory accounting, materialisation.
#include <gtest/gtest.h>

#include "core/latent_buffer.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {
namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double p, std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(p) ? 1 : 0;
  return r;
}

TEST(LatentBuffer, RawStorageRoundTripsExactly) {
  LatentReplayBuffer buf({.ratio = 1}, 40);
  const auto r = random_raster(40, 50, 0.2, 1);
  buf.add(r, 7);
  const auto ds = buf.materialize();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].raster, r);
  EXPECT_EQ(ds[0].label, 7);
}

TEST(LatentBuffer, CompressedStorageIsLossyButAligned) {
  LatentReplayBuffer buf({.ratio = 2}, 100);
  const auto r = random_raster(100, 50, 0.2, 2);
  buf.add(r, 3);
  const auto ds = buf.materialize();
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].raster.timesteps, 100u);
  EXPECT_LE(ds[0].raster.spike_count(), r.spike_count());
}

TEST(LatentBuffer, RejectsWrongTimesteps) {
  LatentReplayBuffer buf({.ratio = 1}, 40);
  EXPECT_THROW(buf.add(random_raster(100, 10, 0.1, 3), 0), Error);
}

TEST(LatentBuffer, MemoryAccountingRawVsCompressed) {
  // The paper's Fig. 12 comparison: SpikingLR stores codec(r=2) @ T=100
  // (50 packed rows), Replay4NCL stores raw @ T*=40 (40 packed rows) →
  // ≈20% latent-memory saving at every layer width.
  for (std::size_t width : {200u, 100u, 50u}) {
    LatentReplayBuffer sota({.ratio = 2}, 100);
    LatentReplayBuffer r4ncl({.ratio = 1}, 40);
    for (int i = 0; i < 5; ++i) {
      sota.add(random_raster(100, width, 0.2, 10 + i), i);
      r4ncl.add(random_raster(40, width, 0.2, 20 + i), i);
    }
    const double saving = 1.0 - static_cast<double>(r4ncl.memory_bytes()) /
                                    static_cast<double>(sota.memory_bytes());
    EXPECT_GT(saving, 0.18) << "width " << width;
    EXPECT_LT(saving, 0.25) << "width " << width;
  }
}

TEST(LatentBuffer, MemoryGrowsLinearly) {
  LatentReplayBuffer buf({.ratio = 1}, 10);
  buf.add(random_raster(10, 16, 0.5, 1), 0);
  const std::size_t one = buf.memory_bytes();
  buf.add(random_raster(10, 16, 0.5, 2), 1);
  EXPECT_EQ(buf.memory_bytes(), 2 * one);
}

TEST(LatentBuffer, DecompressBitsChargedOnlyWhenCompressed) {
  LatentReplayBuffer raw({.ratio = 1}, 20);
  LatentReplayBuffer packed({.ratio = 2}, 20);
  raw.add(random_raster(20, 8, 0.4, 4), 0);
  packed.add(random_raster(20, 8, 0.4, 4), 0);
  snn::SpikeOpStats raw_stats, packed_stats;
  (void)raw.materialize(&raw_stats);
  (void)packed.materialize(&packed_stats);
  EXPECT_EQ(raw_stats.decompress_bits, 0u);
  EXPECT_GT(packed_stats.decompress_bits, 0u);
}

TEST(LatentBuffer, MaterializePreservesOrderAndLabels) {
  LatentReplayBuffer buf({.ratio = 1}, 5);
  for (int i = 0; i < 4; ++i) buf.add(random_raster(5, 4, 0.3, 100 + i), i * 2);
  const auto ds = buf.materialize();
  ASSERT_EQ(ds.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ds[static_cast<std::size_t>(i)].label, i * 2);
}

TEST(LatentBuffer, HeaderBytesDependOnCodec) {
  LatentReplayBuffer raw({.ratio = 1}, 10);
  LatentReplayBuffer packed({.ratio = 2}, 10);
  EXPECT_LT(raw.header_bytes(), packed.header_bytes());
}

TEST(LatentBuffer, EmptyBufferBehaviour) {
  LatentReplayBuffer buf({.ratio = 2}, 10);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.memory_bytes(), 0u);
  EXPECT_TRUE(buf.materialize().empty());
}

}  // namespace
}  // namespace r4ncl::core
