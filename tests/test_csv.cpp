// ResultTable: row construction, CSV escaping, file round-trip.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace r4ncl {
namespace {

TEST(ResultTable, BuildsRows) {
  ResultTable t({"a", "b"});
  t.add_row();
  t.push("x");
  t.push(1.5);
  t.row({"y", "2"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0], "x");
  EXPECT_EQ(t.rows()[1][1], "2");
}

TEST(ResultTable, RejectsOverfilledRow) {
  ResultTable t({"only"});
  t.add_row();
  t.push("one");
  EXPECT_THROW(t.push("two"), Error);
}

TEST(ResultTable, RejectsPushWithoutRow) {
  ResultTable t({"a"});
  EXPECT_THROW(t.push("x"), Error);
}

TEST(ResultTable, RejectsWrongWidthRow) {
  ResultTable t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(ResultTable, RejectsEmptyHeader) { EXPECT_THROW(ResultTable({}), Error); }

TEST(ResultTable, WritesCsvWithEscaping) {
  ResultTable t({"name", "note"});
  t.row({"plain", "with,comma"});
  t.row({"quo\"te", "multi\nline"});
  const std::string path = ::testing::TempDir() + "r4ncl_csv_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("name,note\n"), std::string::npos);
  EXPECT_NE(content.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("\"quo\"\"te\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultTable, WritesJsonWithEscaping) {
  ResultTable t({"name", "note"});
  t.row({"plain", "with,comma"});
  t.row({"quo\"te", "back\\slash and\nnewline"});
  const std::string path = ::testing::TempDir() + "r4ncl_json_test.json";
  t.write_json(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("{\"name\": \"plain\", \"note\": \"with,comma\"},"),
            std::string::npos);
  EXPECT_NE(content.find("\"quo\\\"te\""), std::string::npos);
  EXPECT_NE(content.find("back\\\\slash and\\nnewline"), std::string::npos);
  // Last row has no trailing comma and the array closes.
  EXPECT_NE(content.find("}\n]\n"), std::string::npos);
  EXPECT_EQ(content.find("},\n]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultTable, JsonEscapesControlCharacters) {
  ResultTable t({"k"});
  t.row({std::string("bell\x07tab\t")});
  const std::string path = ::testing::TempDir() + "r4ncl_json_ctrl.json";
  t.write_json(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("bell\\u0007tab\\t"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultTable, NumericFormatting) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(-0.12345, 3), "-0.123");
}

TEST(ResultTable, PrintDoesNotThrow) {
  ResultTable t({"col"});
  t.row({"val"});
  EXPECT_NO_THROW(t.print("title"));
}

}  // namespace
}  // namespace r4ncl
