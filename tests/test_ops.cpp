// Matmul kernels against a naive reference, plus softmax/CE properties.
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace r4ncl {
namespace {

Tensor random_tensor(std::size_t r, std::size_t c, Rng& rng, double sparsity = 0.0) {
  Tensor t(r, c);
  for (auto& v : t.values()) {
    v = rng.bernoulli(sparsity) ? 0.0f : static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

void expect_tensor_near(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a(i), b(i), tol) << "element " << i;
  }
}

/// Parameterised over (m, k, n, sparsity) so the sparse-skip fast path is
/// exercised alongside the dense path and both thread regimes.
class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, double>> {
};

TEST_P(MatmulSweep, MatchesNaiveReference) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  const Tensor a = random_tensor(m, k, rng, sparsity);
  const Tensor b = random_tensor(k, n, rng);
  Tensor c(m, n);
  matmul(a, b, c);
  expect_tensor_near(c, naive_matmul(a, b));
}

TEST_P(MatmulSweep, AccumulateAddsOnTop) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(m + k + n + 7);
  const Tensor a = random_tensor(m, k, rng, sparsity);
  const Tensor b = random_tensor(k, n, rng);
  Tensor c(m, n);
  c.fill(2.0f);
  matmul(a, b, c, /*accumulate=*/true);
  Tensor expected = naive_matmul(a, b);
  for (auto& v : expected.values()) v += 2.0f;
  expect_tensor_near(c, expected);
}

TEST_P(MatmulSweep, TransposeAAccumulate) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(m * 31 + k * 17 + n);
  const Tensor a = random_tensor(m, k, rng, sparsity);  // (m×k): treated as Aᵀ·B
  const Tensor b = random_tensor(m, n, rng);
  Tensor c(k, n);
  matmul_at_b_accum(a, b, c);
  // Reference: Aᵀ (k×m) · B (m×n).
  Tensor at(k, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) at(j, i) = a(i, j);
  }
  expect_tensor_near(c, naive_matmul(at, b));
}

TEST_P(MatmulSweep, TransposeB) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(m * 13 + k * 7 + n * 3);
  const Tensor a = random_tensor(m, n, rng, sparsity);
  const Tensor b = random_tensor(k, n, rng);
  Tensor c(m, k);
  matmul_a_bt(a, b, c);
  Tensor bt(n, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < n; ++j) bt(j, i) = b(i, j);
  }
  expect_tensor_near(c, naive_matmul(a, bt));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1, 0.0), std::make_tuple(3, 5, 2, 0.0),
                      std::make_tuple(8, 16, 8, 0.5), std::make_tuple(17, 33, 9, 0.9),
                      std::make_tuple(64, 128, 32, 0.95), std::make_tuple(2, 700, 200, 0.98)));

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(matmul(a, b, c), Error);
}

TEST(Ops, Axpy) {
  Tensor x(2, 2), y(2, 2);
  x.fill(3.0f);
  y.fill(1.0f);
  axpy(2.0f, x, y);
  for (float v : y.values()) EXPECT_EQ(v, 7.0f);
}

TEST(Ops, Hadamard) {
  Tensor a(1, 3), b(1, 3), y(1, 3);
  a(0) = 2;
  a(1) = -3;
  a(2) = 0;
  b.fill(4.0f);
  hadamard(a, b, y);
  EXPECT_EQ(y(0), 8.0f);
  EXPECT_EQ(y(1), -12.0f);
  EXPECT_EQ(y(2), 0.0f);
}

TEST(Ops, SumMeanMaxAbs) {
  Tensor t(1, 4);
  t(0) = 1;
  t(1) = -5;
  t(2) = 2;
  t(3) = 0;
  EXPECT_DOUBLE_EQ(sum(t), -2.0);
  EXPECT_DOUBLE_EQ(mean(t), -0.5);
  EXPECT_EQ(max_abs(t), 5.0f);
}

TEST(Ops, ClipInplace) {
  Tensor t(1, 3);
  t(0) = 10;
  t(1) = -10;
  t(2) = 0.5f;
  clip_inplace(t, 1.0f);
  EXPECT_EQ(t(0), 1.0f);
  EXPECT_EQ(t(1), -1.0f);
  EXPECT_EQ(t(2), 0.5f);
}

TEST(Ops, CountNonzero) {
  const float v[] = {0.0f, 1.0f, 0.0f, -2.0f, 0.0f};
  EXPECT_EQ(kernels::count_nonzero(v, 5), 2u);
  EXPECT_EQ(kernels::count_nonzero(v, 0), 0u);
}

TEST(Ops, SoftmaxCrossEntropyUniformLogits) {
  Tensor logits(2, 4);  // all zeros → uniform distribution
  const std::int32_t labels[] = {0, 3};
  const double loss = softmax_cross_entropy(logits, labels, nullptr);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Ops, SoftmaxCrossEntropyPerfectPrediction) {
  Tensor logits(1, 3);
  logits(0, 1) = 100.0f;
  const std::int32_t labels[] = {1};
  EXPECT_NEAR(softmax_cross_entropy(logits, labels, nullptr), 0.0, 1e-6);
}

TEST(Ops, SoftmaxGradientSumsToZeroPerRow) {
  Rng rng(2);
  Tensor logits = random_tensor(3, 5, rng);
  Tensor grad(3, 5);
  const std::int32_t labels[] = {0, 2, 4};
  (void)softmax_cross_entropy(logits, labels, &grad);
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 5; ++j) row_sum += grad(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(Ops, SoftmaxGradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor logits = random_tensor(2, 3, rng);
  Tensor grad(2, 3);
  const std::int32_t labels[] = {1, 2};
  (void)softmax_cross_entropy(logits, labels, &grad);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float keep = logits(i);
    logits(i) = keep + h;
    const double up = softmax_cross_entropy(logits, labels, nullptr);
    logits(i) = keep - h;
    const double down = softmax_cross_entropy(logits, labels, nullptr);
    logits(i) = keep;
    EXPECT_NEAR(grad(i), (up - down) / (2.0 * h), 5e-3) << "logit " << i;
  }
}

TEST(Ops, SoftmaxRejectsBadLabel) {
  Tensor logits(1, 3);
  const std::int32_t labels[] = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, labels, nullptr), Error);
}

TEST(Ops, ArgmaxRows) {
  Tensor t(2, 3);
  t(0, 1) = 5.0f;
  t(1, 2) = 2.0f;
  const auto am = argmax_rows(t);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 2);
}

}  // namespace
}  // namespace r4ncl
