// Spike codec: bit-exact reproduction of the paper's Fig. 7 example plus
// parameterised properties over ratios and strategies.
#include <gtest/gtest.h>

#include "compress/spike_codec.hpp"
#include "util/rng.hpp"

namespace r4ncl::compress {
namespace {

data::SpikeRaster from_bits(std::initializer_list<int> bits) {
  data::SpikeRaster r(bits.size(), 1);
  std::size_t t = 0;
  for (int b : bits) r.set(t++, 0, b != 0);
  return r;
}

std::vector<int> to_bits(const data::SpikeRaster& r) {
  std::vector<int> out;
  out.reserve(r.timesteps);
  for (std::size_t t = 0; t < r.timesteps; ++t) out.push_back(r.at(t, 0));
  return out;
}

TEST(SpikeCodec, PaperFig7CompressExample) {
  // Original: 1 1 0 1 0 1 0 0 1 0 1 1 1 0  →  Compressed: 1 0 0 0 1 1 1
  const auto original = from_bits({1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0});
  const CodecConfig cfg{.ratio = 2, .strategy = CodecStrategy::kSubsample};
  EXPECT_EQ(to_bits(compress(original, cfg)), (std::vector<int>{1, 0, 0, 0, 1, 1, 1}));
}

TEST(SpikeCodec, PaperFig7DecompressExample) {
  // Compressed: 1 0 0 0 1 1 1  →  Decompressed: 1 0 0 0 0 0 0 0 1 0 1 0 1 0
  const auto compressed = from_bits({1, 0, 0, 0, 1, 1, 1});
  const CodecConfig cfg{.ratio = 2, .strategy = CodecStrategy::kSubsample};
  EXPECT_EQ(to_bits(decompress(compressed, 14, cfg)),
            (std::vector<int>{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0}));
}

TEST(SpikeCodec, RatioOneIsIdentity) {
  Rng rng(1);
  data::SpikeRaster r(10, 4);
  for (auto& b : r.bits) b = rng.bernoulli(0.4) ? 1 : 0;
  const CodecConfig cfg{.ratio = 1};
  EXPECT_EQ(compress(r, cfg), r);
  EXPECT_EQ(decompress(r, 10, cfg), r);
}

/// Properties that must hold for every (ratio, strategy) combination.
class CodecSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, CodecStrategy>> {};

TEST_P(CodecSweep, CompressedLengthIsCeilTOverRatio) {
  const auto [ratio, strategy] = GetParam();
  const CodecConfig cfg{.ratio = ratio, .strategy = strategy};
  for (std::size_t T : {1u, 7u, 40u, 100u, 101u}) {
    data::SpikeRaster r(T, 3);
    const auto c = compress(r, cfg);
    EXPECT_EQ(c.timesteps, (T + ratio - 1) / ratio) << "T=" << T;
    EXPECT_EQ(c.channels, 3u);
  }
}

TEST_P(CodecSweep, RoundTripNeverGainsSpikes) {
  const auto [ratio, strategy] = GetParam();
  const CodecConfig cfg{.ratio = ratio, .strategy = strategy};
  Rng rng(ratio * 10 + static_cast<int>(strategy));
  data::SpikeRaster r(100, 8);
  for (auto& b : r.bits) b = rng.bernoulli(0.25) ? 1 : 0;
  const auto round = decompress(compress(r, cfg), 100, cfg);
  if (strategy == CodecStrategy::kGroupOr) {
    // OR keeps one representative per active group: count can only shrink.
    EXPECT_LE(round.spike_count(), r.spike_count());
    EXPECT_GT(round.spike_count(), 0u);
  } else {
    EXPECT_LE(round.spike_count(), r.spike_count());
  }
}

TEST_P(CodecSweep, DecompressedSpikesSitAtGroupStarts) {
  const auto [ratio, strategy] = GetParam();
  if (ratio == 1) GTEST_SKIP() << "identity codec has no group structure";
  const CodecConfig cfg{.ratio = ratio, .strategy = strategy};
  Rng rng(77);
  data::SpikeRaster r(60, 4);
  for (auto& b : r.bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto round = decompress(compress(r, cfg), 60, cfg);
  for (std::size_t t = 0; t < round.timesteps; ++t) {
    if (t % ratio == 0) continue;
    for (std::size_t c = 0; c < round.channels; ++c) {
      EXPECT_EQ(round.at(t, c), 0) << "non-group-start slot must be zero, t=" << t;
    }
  }
}

TEST_P(CodecSweep, PackedPathMatchesUnpackedPath) {
  const auto [ratio, strategy] = GetParam();
  const CodecConfig cfg{.ratio = ratio, .strategy = strategy};
  Rng rng(5);
  data::SpikeRaster r(48, 10);
  for (auto& b : r.bits) b = rng.bernoulli(0.3) ? 1 : 0;
  const auto direct = decompress(compress(r, cfg), 48, cfg);
  const auto packed = decompress_packed(compress_packed(r, cfg), 48, cfg);
  EXPECT_EQ(direct, packed);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndStrategies, CodecSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(CodecStrategy::kSubsample, CodecStrategy::kGroupOr,
                                         CodecStrategy::kGroupMajority)));

TEST(SpikeCodec, GroupOrRetainsMoreThanSubsample) {
  Rng rng(9);
  data::SpikeRaster r(100, 16);
  for (auto& b : r.bits) b = rng.bernoulli(0.15) ? 1 : 0;
  const double ret_or =
      spike_retention(r, {.ratio = 2, .strategy = CodecStrategy::kGroupOr});
  const double ret_sub =
      spike_retention(r, {.ratio = 2, .strategy = CodecStrategy::kSubsample});
  EXPECT_GE(ret_or, ret_sub);
}

TEST(SpikeCodec, RetentionDecreasesWithRatio) {
  Rng rng(10);
  data::SpikeRaster r(96, 16);
  for (auto& b : r.bits) b = rng.bernoulli(0.2) ? 1 : 0;
  double prev = 1.1;
  for (std::uint32_t ratio : {1u, 2u, 4u}) {
    const double ret = spike_retention(r, {.ratio = ratio, .strategy = CodecStrategy::kSubsample});
    EXPECT_LE(ret, prev) << "ratio " << ratio;
    prev = ret;
  }
}

TEST(SpikeCodec, RetentionOfEmptyIsOne) {
  const data::SpikeRaster r(10, 3);
  EXPECT_DOUBLE_EQ(spike_retention(r, {.ratio = 4}), 1.0);
}

TEST(SpikeCodec, DecompressRejectsWrongLength) {
  const data::SpikeRaster r(5, 2);
  EXPECT_THROW((void)decompress(r, 14, {.ratio = 2}), Error);
}

TEST(SpikeCodec, MajorityVotesCorrectly) {
  // Group of 3: two spikes → majority 1; one spike → 0.
  const auto original = from_bits({1, 1, 0, 1, 0, 0});
  const CodecConfig cfg{.ratio = 3, .strategy = CodecStrategy::kGroupMajority};
  EXPECT_EQ(to_bits(compress(original, cfg)), (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace r4ncl::compress
