// Method factories must encode the paper's settings exactly.
#include <gtest/gtest.h>

#include "core/method_config.hpp"

namespace r4ncl::core {
namespace {

TEST(MethodConfig, Replay4NclSettings) {
  const auto cfg = NclMethodConfig::replay4ncl();
  EXPECT_EQ(cfg.name, "Replay4NCL");
  EXPECT_EQ(cfg.cl_timesteps, 40u);            // Sec. III-A, Observation B
  EXPECT_EQ(cfg.storage_codec.ratio, 1u);      // stored directly at T*
  EXPECT_FLOAT_EQ(cfg.lr_cl, kEtaPre / 100.0f);  // Alg. 1 line 6/21
  EXPECT_TRUE(cfg.adaptive_threshold);
  EXPECT_EQ(cfg.adjust_interval, 5);
  EXPECT_TRUE(cfg.use_replay);
}

TEST(MethodConfig, SpikingLrSettings) {
  const auto cfg = NclMethodConfig::spiking_lr();
  EXPECT_EQ(cfg.name, "SpikingLR");
  EXPECT_EQ(cfg.cl_timesteps, 100u);
  EXPECT_EQ(cfg.storage_codec.ratio, 2u);
  EXPECT_EQ(cfg.storage_codec.strategy, compress::CodecStrategy::kSubsample);
  EXPECT_FLOAT_EQ(cfg.lr_cl, kEtaPre);
  EXPECT_FALSE(cfg.adaptive_threshold);
  EXPECT_TRUE(cfg.use_replay);
}

TEST(MethodConfig, ReducedTimestepVariant) {
  const auto cfg = NclMethodConfig::spiking_lr_reduced(20);
  EXPECT_EQ(cfg.cl_timesteps, 20u);
  EXPECT_EQ(cfg.name, "SpikingLR-T20");
  // Everything else stays SpikingLR: this is the "no compensation" case.
  EXPECT_FALSE(cfg.adaptive_threshold);
  EXPECT_FLOAT_EQ(cfg.lr_cl, kEtaPre);
  EXPECT_EQ(cfg.storage_codec.ratio, 2u);
}

TEST(MethodConfig, WithLatentBitsSetsDepthAndKeepsNameTruthful) {
  const auto q8 = NclMethodConfig::replay4ncl().with_latent_bits(8);
  EXPECT_EQ(q8.storage_codec.latent_bits, 8);
  EXPECT_EQ(q8.name, "Replay4NCL-q8");
  // Chained calls replace the suffix rather than stacking it, and resetting
  // to the legacy payload drops it entirely.
  const auto q4 = q8.with_latent_bits(4);
  EXPECT_EQ(q4.storage_codec.latent_bits, 4);
  EXPECT_EQ(q4.name, "Replay4NCL-q4");
  const auto legacy = q4.with_latent_bits(0);
  EXPECT_EQ(legacy.storage_codec.latent_bits, 0);
  EXPECT_EQ(legacy.name, "Replay4NCL");
  // A non-suffix "-q" in the user's own name survives.
  NclMethodConfig custom = NclMethodConfig::spiking_lr_reduced(20);
  EXPECT_EQ(custom.with_latent_bits(2).name, "SpikingLR-T20-q2");
}

TEST(MethodConfig, NaiveBaselineHasNoReplay) {
  const auto cfg = NclMethodConfig::naive_baseline();
  EXPECT_FALSE(cfg.use_replay);
  EXPECT_EQ(cfg.cl_timesteps, 100u);
}

TEST(MethodConfig, PolicyConstructionFixed) {
  const auto cfg = NclMethodConfig::spiking_lr();
  const auto policy = cfg.policy();
  EXPECT_EQ(policy.mode, snn::ThresholdMode::kFixed);
  EXPECT_FLOAT_EQ(policy.fixed_value, 1.0f);
}

TEST(MethodConfig, PolicyConstructionAdaptive) {
  const auto cfg = NclMethodConfig::replay4ncl(40);
  const auto policy = cfg.policy();
  EXPECT_EQ(policy.mode, snn::ThresholdMode::kAdaptive);
  EXPECT_EQ(policy.total_timesteps, 40);
  EXPECT_EQ(policy.adjust_interval, 5);
}

TEST(MethodConfig, Replay4NclCustomTimestep) {
  const auto cfg = NclMethodConfig::replay4ncl(60);
  EXPECT_EQ(cfg.cl_timesteps, 60u);
  EXPECT_EQ(cfg.policy().total_timesteps, 60);
}

}  // namespace
}  // namespace r4ncl::core
