// Finite-difference validation of the manual BPTT implementation.
//
// The hard spike function is non-differentiable, so these tests run the
// layer in SpikeMode::kSoft, where the forward pass uses the continuous
// soft_spike whose analytic derivative equals the fast-sigmoid surrogate.
// With detach_reset = false the backward pass then computes the exact
// gradient of the (smooth) forward function, and central finite differences
// must agree to first order.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "snn/layer.hpp"
#include "snn/readout.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

constexpr float kFdStep = 2e-3f;
constexpr double kRelTol = 4e-2;
constexpr double kAbsTol = 2e-4;

LifParams soft_lif() {
  LifParams lif;
  lif.beta = 0.9f;
  lif.detach_reset = false;  // full gradient so FD matches
  lif.recurrent = true;
  return lif;
}

SurrogateParams smooth_surrogate() {
  // A gentle slope keeps the soft forward well-conditioned for FD.
  return {SurrogateKind::kFastSigmoid, 2.0f};
}

Tensor random_spikes(std::size_t T, std::size_t B, std::size_t N, double p, Rng& rng) {
  Tensor x(T, B, N);
  for (auto& v : x.values()) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return x;
}

/// Weighted-sum loss over the layer output: L = Σ c ⊙ S.  The weights c act
/// as the upstream gradient, exercising every output element.
struct LayerLossFixture {
  LayerLossFixture()
      : rng(123),
        layer(4, 3, soft_lif(), smooth_surrogate(), rng, 1.5f, 0.8f),
        x(random_spikes(6, 2, 4, 0.45, rng)),
        coeff(6, 2, 3) {
    for (auto& v : coeff.values()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  double loss() {
    const Tensor out =
        layer.forward(x, SpikeMode::kSoft, ThresholdPolicy::fixed(0.6f), nullptr, nullptr);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) acc += out(i) * coeff(i);
    return acc;
  }

  /// Analytic gradients via the BPTT backward pass.
  void analytic(Tensor& d_in) {
    LayerCache cache;
    (void)layer.forward(x, SpikeMode::kSoft, ThresholdPolicy::fixed(0.6f), &cache, nullptr);
    layer.zero_grad();
    layer.backward(x, cache, coeff, &d_in, nullptr);
  }

  Rng rng;
  RecurrentLifLayer layer;
  Tensor x;
  Tensor coeff;
};

void expect_close(double analytic, double fd, const std::string& what) {
  const double tol = kAbsTol + kRelTol * std::max(std::fabs(analytic), std::fabs(fd));
  EXPECT_NEAR(analytic, fd, tol) << what;
}

TEST(BpttGradcheck, FeedforwardWeights) {
  LayerLossFixture fx;
  Tensor d_in(fx.x.dim(0), fx.x.dim(1), fx.x.dim(2));
  fx.analytic(d_in);
  Tensor& w = fx.layer.w_ff();
  const Tensor grad = fx.layer.grad_w_ff();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float keep = w(i);
    w(i) = keep + kFdStep;
    const double up = fx.loss();
    w(i) = keep - kFdStep;
    const double down = fx.loss();
    w(i) = keep;
    const double fd = (up - down) / (2.0 * kFdStep);
    expect_close(grad(i), fd, "w_ff[" + std::to_string(i) + "]");
  }
}

TEST(BpttGradcheck, RecurrentWeights) {
  LayerLossFixture fx;
  Tensor d_in(fx.x.dim(0), fx.x.dim(1), fx.x.dim(2));
  fx.analytic(d_in);
  Tensor& w = fx.layer.w_rec();
  const Tensor grad = fx.layer.grad_w_rec();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float keep = w(i);
    w(i) = keep + kFdStep;
    const double up = fx.loss();
    w(i) = keep - kFdStep;
    const double down = fx.loss();
    w(i) = keep;
    const double fd = (up - down) / (2.0 * kFdStep);
    expect_close(grad(i), fd, "w_rec[" + std::to_string(i) + "]");
  }
}

TEST(BpttGradcheck, InputGradient) {
  LayerLossFixture fx;
  Tensor d_in(fx.x.dim(0), fx.x.dim(1), fx.x.dim(2));
  fx.analytic(d_in);
  // Perturb a sampling of input cells (inputs are "spikes" but the math is
  // defined for real values, so FD is legitimate).
  Rng pick(7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t i = pick.uniform_index(fx.x.size());
    const float keep = fx.x(i);
    fx.x(i) = keep + kFdStep;
    const double up = fx.loss();
    fx.x(i) = keep - kFdStep;
    const double down = fx.loss();
    fx.x(i) = keep;
    const double fd = (up - down) / (2.0 * kFdStep);
    expect_close(d_in(i), fd, "x[" + std::to_string(i) + "]");
  }
}

TEST(BpttGradcheck, DetachedResetDropsResetPath) {
  // With detach_reset = true the backward pass must ignore the reset path;
  // verify the gradients differ from the full gradient when the layer spikes.
  Rng rng(5);
  LifParams full = soft_lif();
  LifParams detached = full;
  detached.detach_reset = true;

  RecurrentLifLayer layer_full(3, 2, full, smooth_surrogate(), rng);
  Rng rng2(5);
  RecurrentLifLayer layer_detached(3, 2, detached, smooth_surrogate(), rng2);
  // Identical weights by construction (same seed).
  ASSERT_EQ(layer_full.w_ff()(0), layer_detached.w_ff()(0));

  Rng data_rng(9);
  const Tensor x = random_spikes(5, 1, 3, 0.6, data_rng);
  Tensor d_out(5, 1, 2);
  d_out.fill(1.0f);

  LayerCache cache_full, cache_detached;
  (void)layer_full.forward(x, SpikeMode::kSoft, ThresholdPolicy::fixed(0.5f), &cache_full,
                           nullptr);
  (void)layer_detached.forward(x, SpikeMode::kSoft, ThresholdPolicy::fixed(0.5f),
                               &cache_detached, nullptr);
  layer_full.zero_grad();
  layer_detached.zero_grad();
  layer_full.backward(x, cache_full, d_out, nullptr, nullptr);
  layer_detached.backward(x, cache_detached, d_out, nullptr, nullptr);

  double diff = 0.0;
  for (std::size_t i = 0; i < layer_full.grad_w_ff().size(); ++i) {
    diff += std::fabs(layer_full.grad_w_ff()(i) - layer_detached.grad_w_ff()(i));
  }
  EXPECT_GT(diff, 1e-6) << "reset path should contribute gradient in soft mode";
}

/// End-to-end gradcheck through layer → readout → cross-entropy, i.e. the
/// exact composition used by SnnNetwork::train_step.
TEST(BpttGradcheck, ThroughReadoutAndLoss) {
  Rng rng(31);
  RecurrentLifLayer layer(4, 3, soft_lif(), smooth_surrogate(), rng);
  LeakyReadout readout(3, 2, 0.9f, rng);
  Rng data_rng(17);
  const Tensor x = random_spikes(5, 2, 4, 0.5, data_rng);
  const std::int32_t labels_arr[] = {0, 1};
  const std::span<const std::int32_t> labels(labels_arr, 2);
  const ThresholdPolicy policy = ThresholdPolicy::fixed(0.6f);

  auto loss_fn = [&]() {
    const Tensor spikes = layer.forward(x, SpikeMode::kSoft, policy, nullptr, nullptr);
    const Tensor logits = readout.forward(spikes, nullptr);
    return softmax_cross_entropy(logits, labels, nullptr);
  };

  // Analytic gradients.
  LayerCache cache;
  const Tensor spikes = layer.forward(x, SpikeMode::kSoft, policy, &cache, nullptr);
  const Tensor logits = readout.forward(spikes, nullptr);
  Tensor d_logits(logits.rows(), logits.cols());
  (void)softmax_cross_entropy(logits, labels, &d_logits);
  layer.zero_grad();
  readout.zero_grad();
  Tensor d_spikes(spikes.dim(0), spikes.dim(1), spikes.dim(2));
  readout.backward(spikes, d_logits, &d_spikes, nullptr);
  layer.backward(x, cache, d_spikes, nullptr, nullptr);

  // FD over a sample of layer weights and all readout weights.
  Rng pick(3);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t i = pick.uniform_index(layer.w_ff().size());
    float& wref = layer.w_ff()(i);
    const float keep = wref;
    wref = keep + kFdStep;
    const double up = loss_fn();
    wref = keep - kFdStep;
    const double down = loss_fn();
    wref = keep;
    expect_close(layer.grad_w_ff()(i), (up - down) / (2.0 * kFdStep),
                 "w_ff[" + std::to_string(i) + "] through loss");
  }
  for (std::size_t i = 0; i < readout.w().size(); ++i) {
    float& wref = readout.w()(i);
    const float keep = wref;
    wref = keep + kFdStep;
    const double up = loss_fn();
    wref = keep - kFdStep;
    const double down = loss_fn();
    wref = keep;
    expect_close(readout.grad_w()(i), (up - down) / (2.0 * kFdStep),
                 "readout w[" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace r4ncl::snn
