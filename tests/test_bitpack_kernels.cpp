// Byte-parallel pack/unpack kernels vs scalar references: exhaustive over
// all 256 payload byte values at every depth, round trips at odd channel
// counts (partial tail bytes), the binary nonzero-normalisation contract,
// and serial-vs-parallel decode equality.
//
// The scalar references below are the pre-kernel implementations (one
// shift/mask per element) — the byte-parallel LUT/SWAR kernels must agree
// with them bit for bit on every input.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "compress/bitpack.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace r4ncl::compress {
namespace {

constexpr unsigned kDepths[] = {1, 2, 4, 8};

/// Scalar reference decode: one shift/mask per element (the historical
/// unpack_elements inner loop).
std::vector<std::uint8_t> scalar_unpack_elements(const PackedRaster& packed) {
  const std::size_t row_bytes = packed.row_bytes();
  const unsigned bits = packed.bits_per_element;
  const unsigned mask = (1u << bits) - 1u;
  std::vector<std::uint8_t> out(static_cast<std::size_t>(packed.timesteps) *
                                packed.channels);
  for (std::size_t t = 0; t < packed.timesteps; ++t) {
    const std::uint8_t* row = packed.payload.data() + t * row_bytes;
    std::uint8_t* dst = out.data() + t * packed.channels;
    for (std::size_t c = 0; c < packed.channels; ++c) {
      const std::size_t bit_pos = c * bits;
      dst[c] = static_cast<std::uint8_t>((row[bit_pos >> 3] >> (bit_pos & 7u)) & mask);
    }
  }
  return out;
}

/// Scalar reference encode (the historical pack_elements inner loop).
PackedRaster scalar_pack_elements(const std::vector<std::uint8_t>& values,
                                  std::size_t timesteps, std::size_t channels,
                                  unsigned bits) {
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(timesteps);
  out.channels = static_cast<std::uint32_t>(channels);
  out.bits_per_element = static_cast<std::uint8_t>(bits);
  const std::size_t row_bytes = out.row_bytes();
  out.payload.assign(timesteps * row_bytes, 0);
  for (std::size_t t = 0; t < timesteps; ++t) {
    std::uint8_t* row = out.payload.data() + t * row_bytes;
    const std::uint8_t* src = values.data() + t * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t bit_pos = c * bits;
      row[bit_pos >> 3] |=
          static_cast<std::uint8_t>(static_cast<unsigned>(src[c]) << (bit_pos & 7u));
    }
  }
  return out;
}

std::vector<std::uint8_t> random_values(std::size_t n, unsigned bits, std::uint64_t seed) {
  std::vector<std::uint8_t> values(n);
  Rng rng(seed);
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(rng.uniform_index(1u << bits));
  }
  return values;
}

// ---------------------------------------------------------------------------
// Exhaustive byte-level equivalence
// ---------------------------------------------------------------------------

TEST(BitpackKernels, DecodeMatchesScalarExhaustivelyOverAllByteValues) {
  // One row of 256 payload bytes per depth: every possible byte value
  // decodes through the LUT; the scalar reference is the ground truth.
  for (const unsigned bits : kDepths) {
    const std::size_t per_byte = 8 / bits;
    PackedRaster packed;
    packed.timesteps = 256;
    packed.channels = static_cast<std::uint32_t>(per_byte);
    packed.bits_per_element = static_cast<std::uint8_t>(bits);
    packed.payload.resize(256);
    for (unsigned byte = 0; byte < 256; ++byte) {
      packed.payload[byte] = static_cast<std::uint8_t>(byte);
    }
    EXPECT_EQ(unpack_elements(packed), scalar_unpack_elements(packed))
        << "depth " << bits;
  }
}

TEST(BitpackKernels, EncodeMatchesScalarOnRandomPayloads) {
  for (const unsigned bits : kDepths) {
    for (const std::size_t channels : {1u, 3u, 7u, 8u, 13u, 64u, 701u}) {
      const std::size_t timesteps = 9;
      const auto values = random_values(timesteps * channels, bits, 77 * bits + channels);
      const PackedRaster fast = pack_elements(values, timesteps, channels, bits);
      const PackedRaster reference = scalar_pack_elements(values, timesteps, channels, bits);
      EXPECT_EQ(fast.payload, reference.payload)
          << "depth " << bits << ", channels " << channels;
      EXPECT_EQ(fast.row_bytes(), reference.row_bytes());
    }
  }
}

TEST(BitpackKernels, RoundTripExactAtOddChannelCounts) {
  // Partial tail bytes: every channel count mod per-byte residue.
  for (const unsigned bits : kDepths) {
    for (std::size_t channels = 1; channels <= 17; ++channels) {
      const std::size_t timesteps = 5;
      const auto values = random_values(timesteps * channels, bits, channels * 31 + bits);
      const PackedRaster packed = pack_elements(values, timesteps, channels, bits);
      EXPECT_EQ(unpack_elements(packed), values)
          << "depth " << bits << ", channels " << channels;
    }
  }
}

TEST(BitpackKernels, TailBytePaddingBitsStayZero) {
  // 5 channels at 2 bits = 10 bits = 2 bytes/row; the upper 6 bits of the
  // second byte are padding and must encode as zero (storage accounting and
  // the pinned PR 3 layouts depend on deterministic padding).
  const std::vector<std::uint8_t> values = {3, 2, 1, 0, 3};
  const PackedRaster packed = pack_elements(values, 1, 5, 2);
  ASSERT_EQ(packed.payload.size(), 2u);
  EXPECT_EQ(packed.payload[1] & 0xFCu, 0u);
}

// ---------------------------------------------------------------------------
// Binary layout (pack/unpack) equivalences
// ---------------------------------------------------------------------------

TEST(BitpackKernels, BinaryPackNormalizesNonzeroValues) {
  // pack() historically treats any nonzero byte as a spike; the SWAR row
  // encoder must preserve that (pack_elements, by contrast, rejects > 1).
  data::SpikeRaster raster(2, 11);
  Rng rng(5);
  for (auto& b : raster.bits) {
    b = static_cast<std::uint8_t>(rng.uniform_index(5));  // 0..4
  }
  const PackedRaster packed = pack(raster);
  const data::SpikeRaster round = unpack(packed);
  for (std::size_t i = 0; i < raster.bits.size(); ++i) {
    EXPECT_EQ(round.bits[i], raster.bits[i] != 0 ? 1 : 0);
  }
}

TEST(BitpackKernels, UnpackIntoReusesAllocationAndMatchesUnpack) {
  data::SpikeRaster raster(13, 77);
  Rng rng(6);
  for (auto& b : raster.bits) b = rng.bernoulli(0.3) ? 1 : 0;
  const PackedRaster packed = pack(raster);
  data::SpikeRaster out;
  unpack_into(packed, out);
  EXPECT_EQ(out, unpack(packed));
  const std::uint8_t* data_before = out.bits.data();
  unpack_into(packed, out);  // second decode into the same scratch
  EXPECT_EQ(out, raster);
  EXPECT_EQ(out.bits.data(), data_before) << "scratch reallocation on matched geometry";
}

TEST(BitpackKernels, UnpackRowDecodesSingleRows) {
  data::SpikeRaster raster(7, 29);
  Rng rng(8);
  for (auto& b : raster.bits) b = rng.bernoulli(0.4) ? 1 : 0;
  const PackedRaster packed = pack(raster);
  std::vector<std::uint8_t> row(29);
  for (std::size_t t = 0; t < 7; ++t) {
    unpack_row(packed, t, row.data());
    for (std::size_t c = 0; c < 29; ++c) {
      EXPECT_EQ(row[c], raster.bits[t * 29 + c]) << "t=" << t << " c=" << c;
    }
  }
}

TEST(BitpackKernels, UnpackElementsIntoMatchesAndReusesScratch) {
  const auto values = random_values(64 * 31, 4, 123);
  const PackedRaster packed = pack_elements(values, 64, 31, 4);
  std::vector<std::uint8_t> out;
  unpack_elements_into(packed, out);
  EXPECT_EQ(out, values);
  const std::uint8_t* data_before = out.data();
  unpack_elements_into(packed, out);
  EXPECT_EQ(out, values);
  EXPECT_EQ(out.data(), data_before);
}

// ---------------------------------------------------------------------------
// Range checking survives the SWAR rewrite
// ---------------------------------------------------------------------------

TEST(BitpackKernels, OutOfRangeValueStillNamesTheElement) {
  std::vector<std::uint8_t> values(24, 1);
  values[13] = 9;  // needs 4 bits
  try {
    (void)pack_elements(values, 3, 8, 2);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("element value 9 exceeds 2-bit range"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Parallel split determinism
// ---------------------------------------------------------------------------

TEST(BitpackKernels, ParallelDecodeMatchesSerial) {
  // Big enough that parallel_for engages its workers (when OpenMP is in);
  // the result must be identical to a single-threaded decode either way.
  const std::size_t timesteps = 128;
  const std::size_t channels = 512;
  for (const unsigned bits : kDepths) {
    const auto values = random_values(timesteps * channels, bits, 999 + bits);
    const PackedRaster packed = pack_elements(values, timesteps, channels, bits);
    const int threads_before = num_threads();
    set_num_threads(1);
    const auto serial = unpack_elements(packed);
    set_num_threads(4);
    const auto parallel = unpack_elements(packed);
    set_num_threads(threads_before);
    EXPECT_EQ(serial, parallel) << "depth " << bits;
    EXPECT_EQ(serial, values);
  }
}

}  // namespace
}  // namespace r4ncl::compress
