// SnnNetwork: construction, partial-range execution, insertion widths,
// training-step mechanics, checkpoint round-trip.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "snn/network.hpp"
#include "util/rng.hpp"

namespace r4ncl::snn {
namespace {

NetworkConfig tiny_config() {
  NetworkConfig cfg;
  cfg.layer_sizes = {10, 8, 6, 4};
  cfg.num_classes = 3;
  cfg.seed = 21;
  return cfg;
}

Tensor random_spikes(std::size_t T, std::size_t B, std::size_t N, double p, std::uint64_t seed) {
  Tensor x(T, B, N);
  Rng rng(seed);
  for (auto& v : x.values()) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return x;
}

TEST(Network, GeometryAccessors) {
  SnnNetwork net(tiny_config());
  EXPECT_EQ(net.num_hidden(), 3u);
  EXPECT_EQ(net.num_classes(), 3u);
  EXPECT_EQ(net.insertion_width(0), 10u);
  EXPECT_EQ(net.insertion_width(1), 8u);
  EXPECT_EQ(net.insertion_width(2), 6u);
  EXPECT_EQ(net.insertion_width(3), 4u);
  EXPECT_THROW((void)net.insertion_width(4), Error);
}

TEST(Network, PaperGeometryDefaults) {
  SnnNetwork net{NetworkConfig{}};
  EXPECT_EQ(net.num_hidden(), 3u);
  EXPECT_EQ(net.insertion_width(0), 700u);
  EXPECT_EQ(net.insertion_width(1), 200u);
  EXPECT_EQ(net.insertion_width(2), 100u);
  EXPECT_EQ(net.insertion_width(3), 50u);
  EXPECT_EQ(net.num_classes(), 20u);
}

TEST(Network, ForwardLogitsShape) {
  SnnNetwork net(tiny_config());
  const Tensor x = random_spikes(7, 2, 10, 0.3, 5);
  const Tensor logits = net.forward_logits(x, 0, ThresholdPolicy::fixed(1.0f));
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(Network, RunHiddenRangeComposition) {
  // Running [0,1) then [1,3) must equal running [0,3) in one call.
  SnnNetwork net(tiny_config());
  const Tensor x = random_spikes(6, 2, 10, 0.4, 6);
  const ThresholdPolicy p = ThresholdPolicy::fixed(1.0f);
  const Tensor mid = net.run_hidden(x, 0, 1, p);
  const Tensor split_out = net.run_hidden(mid, 1, 3, p);
  const Tensor direct = net.run_hidden(x, 0, 3, p);
  ASSERT_TRUE(split_out.same_shape(direct));
  for (std::size_t i = 0; i < direct.size(); ++i) EXPECT_EQ(split_out(i), direct(i));
}

TEST(Network, RunHiddenIdentityRange) {
  SnnNetwork net(tiny_config());
  const Tensor x = random_spikes(4, 1, 10, 0.5, 7);
  const Tensor same = net.run_hidden(x, 1, 1, ThresholdPolicy::fixed(1.0f));
  // from == to: input passes through untouched (and width is unchecked).
  EXPECT_EQ(same.size(), x.size());
}

TEST(Network, ForwardFromInsertionPoint) {
  SnnNetwork net(tiny_config());
  const Tensor latent = random_spikes(6, 2, 6, 0.4, 8);  // width of layer 2 input
  const Tensor logits = net.forward_logits(latent, 2, ThresholdPolicy::fixed(1.0f));
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(Network, TrainStepReducesLossOnFixedBatch) {
  SnnNetwork net(tiny_config());
  AdamOptimizer opt;
  const Tensor x = random_spikes(8, 4, 10, 0.4, 9);
  const std::int32_t labels_arr[] = {0, 1, 2, 0};
  const std::span<const std::int32_t> labels(labels_arr, 4);
  const ThresholdPolicy p = ThresholdPolicy::fixed(1.0f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 60; ++i) {
    const StepResult r = net.train_step(x, labels, 0, p, opt, 5e-3f);
    if (i == 0) first_loss = r.loss;
    last_loss = r.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.8) << "repeated steps on one batch must fit it";
}

TEST(Network, TrainStepFromLateInsertionOnlyUpdatesLearningLayers) {
  SnnNetwork net(tiny_config());
  AdamOptimizer opt;
  const Tensor latent = random_spikes(6, 2, 4, 0.5, 10);  // readout input width
  const std::int32_t labels_arr[] = {1, 2};
  // Snapshot all weights.
  std::vector<float> h0(net.hidden(0).w_ff().values().begin(),
                        net.hidden(0).w_ff().values().end());
  std::vector<float> h2(net.hidden(2).w_ff().values().begin(),
                        net.hidden(2).w_ff().values().end());
  std::vector<float> ro(net.readout().w().values().begin(), net.readout().w().values().end());
  (void)net.train_step(latent, {labels_arr, 2}, 3, ThresholdPolicy::fixed(1.0f), opt, 1e-2f);
  // Frozen hidden layers untouched.
  for (std::size_t i = 0; i < h0.size(); ++i) EXPECT_EQ(net.hidden(0).w_ff()(i), h0[i]);
  for (std::size_t i = 0; i < h2.size(); ++i) EXPECT_EQ(net.hidden(2).w_ff()(i), h2[i]);
  // Readout moved.
  double moved = 0.0;
  for (std::size_t i = 0; i < ro.size(); ++i) {
    moved += std::fabs(net.readout().w()(i) - ro[i]);
  }
  EXPECT_GT(moved, 0.0f);
}

TEST(Network, TrainStepMidInsertionFreezesPrefixTrainsSuffix) {
  SnnNetwork net(tiny_config());
  AdamOptimizer opt;
  const Tensor latent = random_spikes(6, 2, 8, 0.5, 11);  // hidden-1 input width
  const std::int32_t labels_arr[] = {0, 1};
  std::vector<float> h0(net.hidden(0).w_ff().values().begin(),
                        net.hidden(0).w_ff().values().end());
  std::vector<float> h1(net.hidden(1).w_ff().values().begin(),
                        net.hidden(1).w_ff().values().end());
  (void)net.train_step(latent, {labels_arr, 2}, 1, ThresholdPolicy::fixed(1.0f), opt, 1e-2f);
  for (std::size_t i = 0; i < h0.size(); ++i) EXPECT_EQ(net.hidden(0).w_ff()(i), h0[i]);
  double moved = 0.0;
  for (std::size_t i = 0; i < h1.size(); ++i) {
    moved += std::fabs(net.hidden(1).w_ff()(i) - h1[i]);
  }
  EXPECT_GT(moved, 0.0f) << "learning layer must receive updates";
}

TEST(Network, SaveLoadRoundTrip) {
  SnnNetwork net(tiny_config());
  const std::string path = ::testing::TempDir() + "r4ncl_net.ckpt";
  net.save(path);
  NetworkConfig cfg2 = tiny_config();
  cfg2.seed = 1234;  // different init
  SnnNetwork restored(cfg2);
  restored.load(path);
  const Tensor x = random_spikes(5, 2, 10, 0.4, 12);
  const ThresholdPolicy p = ThresholdPolicy::fixed(1.0f);
  const Tensor a = net.forward_logits(x, 0, p);
  const Tensor b = restored.forward_logits(x, 0, p);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a(i), b(i));
  std::remove(path.c_str());
}

TEST(Network, LoadRejectsWrongGeometry) {
  SnnNetwork net(tiny_config());
  const std::string path = ::testing::TempDir() + "r4ncl_net2.ckpt";
  net.save(path);
  NetworkConfig other = tiny_config();
  other.layer_sizes = {10, 8, 6, 5};
  SnnNetwork wrong(other);
  EXPECT_THROW(wrong.load(path), Error);
  std::remove(path.c_str());
}

TEST(Network, CloneIsIndependent) {
  SnnNetwork net(tiny_config());
  SnnNetwork copy = net.clone();
  net.hidden(0).w_ff()(0) += 1.0f;
  EXPECT_NE(net.hidden(0).w_ff()(0), copy.hidden(0).w_ff()(0));
}

TEST(Network, DeterministicConstruction) {
  SnnNetwork a(tiny_config()), b(tiny_config());
  for (std::size_t i = 0; i < a.hidden(0).w_ff().size(); ++i) {
    EXPECT_EQ(a.hidden(0).w_ff()(i), b.hidden(0).w_ff()(i));
  }
}

}  // namespace
}  // namespace r4ncl::snn
