// Lossy spike compression/decompression along the time axis (paper Fig. 7,
// adopted from SpikingLR).
//
// With ratio r, compression keeps one bit per group of r source timesteps;
// decompression re-expands each kept bit to the *first* slot of its group and
// zero-fills the rest.  The paper's Fig. 7 example (14 → 7 → 14 bits, r = 2)
// corresponds to the kSubsample strategy and is reproduced bit-exactly in
// tests/test_spike_codec.cpp.
//
// Two additional strategies are provided for the ablation bench:
//   kGroupOr        — compressed bit = OR of the group (keeps bursts alive)
//   kGroupMajority  — compressed bit = majority vote of the group
//
// Quantized payload path (latent_bits > 0; Ravaglia et al., quantized latent
// replays): instead of collapsing each group to one strategy bit, the codec
// stores the group's *spike count* as a latent_bits-wide code (uniform
// quantizer over [0, ratio], deterministic round-half-up) and reconstructs
// that many spikes at the group's leading slots.  8 bits is exact for any
// ratio <= 255; narrower codes trade bounded count error (half an LSB plus
// integer rounding) for proportionally smaller payloads — the knob that
// stretches a fixed replay byte budget (see tests/test_quantized_latents.cpp).
#pragma once

#include <cstdint>

#include "compress/bitpack.hpp"
#include "data/spike_data.hpp"

namespace r4ncl::compress {

/// How a group of `ratio` source timesteps maps to one compressed bit.
enum class CodecStrategy : std::uint8_t {
  kSubsample,      // keep the first bit of each group (paper Fig. 7)
  kGroupOr,        // OR over the group
  kGroupMajority,  // 1 iff more than half the group spiked
};

/// Codec configuration.
struct CodecConfig {
  std::uint32_t ratio = 2;  // source timesteps per compressed bit
  CodecStrategy strategy = CodecStrategy::kSubsample;
  /// Stored bits per (group × channel) element: 0 keeps the historical
  /// binary strategy path bit-identical; 1/2/4/8 switches to the quantized
  /// group-count payload (which supersedes `strategy`).
  std::uint8_t latent_bits = 0;

  [[nodiscard]] bool quantized() const noexcept { return latent_bits > 0; }
};

/// Quantizes a group spike count (<= ratio) to a latent_bits-wide level:
/// uniform over [0, ratio], round half up.  Exact when 2^bits - 1 >= ratio.
[[nodiscard]] std::uint32_t quantize_count(std::uint32_t count, std::uint32_t ratio,
                                           unsigned bits);

/// Reconstructed count for a level (round half up); inverse of
/// quantize_count() whenever the quantizer is exact, and a fixed point of
/// quantize∘dequantize at every depth.
[[nodiscard]] std::uint32_t dequantize_count(std::uint32_t level, std::uint32_t ratio,
                                             unsigned bits);

/// Compresses along time: output has ceil(T / ratio) timesteps.  Binary
/// strategy path only (quantized payloads exist packed-side, where counts
/// wider than one bit can be represented).
data::SpikeRaster compress(const data::SpikeRaster& raster, const CodecConfig& config);

/// Decompresses to `original_timesteps` steps: each compressed bit is placed
/// at its group's first slot, remaining slots zero (Fig. 7 bottom row).
data::SpikeRaster decompress(const data::SpikeRaster& compressed,
                             std::size_t original_timesteps, const CodecConfig& config);

/// Compress + bit-pack in one step (what the latent-replay buffer stores).
/// Quantized configs produce a bits_per_element = latent_bits payload of
/// group-count codes; legacy configs produce the historical binary payload.
PackedRaster compress_packed(const data::SpikeRaster& raster, const CodecConfig& config);

/// Unpack + decompress in one step.  Quantized payloads re-emit each group's
/// reconstructed spike count at the group's leading slots.
data::SpikeRaster decompress_packed(const PackedRaster& packed,
                                    std::size_t original_timesteps,
                                    const CodecConfig& config);

/// decompress_packed() into a caller-owned raster, reusing its allocation
/// when the geometry already matches — the streaming-replay scratch path.
/// `levels_scratch`, when given, is reused for the quantized payload's
/// intermediate level codes so a minibatch cursor allocates nothing in
/// steady state.
void decompress_packed_into(const PackedRaster& packed, std::size_t original_timesteps,
                            const CodecConfig& config, data::SpikeRaster& out,
                            std::vector<std::uint8_t>* levels_scratch = nullptr);

/// Fraction of spikes surviving a compress→decompress round trip; a cheap
/// information-retention proxy used by the codec ablation.
double spike_retention(const data::SpikeRaster& original, const CodecConfig& config);

}  // namespace r4ncl::compress
