// Lossy spike compression/decompression along the time axis (paper Fig. 7,
// adopted from SpikingLR).
//
// With ratio r, compression keeps one bit per group of r source timesteps;
// decompression re-expands each kept bit to the *first* slot of its group and
// zero-fills the rest.  The paper's Fig. 7 example (14 → 7 → 14 bits, r = 2)
// corresponds to the kSubsample strategy and is reproduced bit-exactly in
// tests/test_spike_codec.cpp.
//
// Two additional strategies are provided for the ablation bench:
//   kGroupOr        — compressed bit = OR of the group (keeps bursts alive)
//   kGroupMajority  — compressed bit = majority vote of the group
#pragma once

#include <cstdint>

#include "compress/bitpack.hpp"
#include "data/spike_data.hpp"

namespace r4ncl::compress {

/// How a group of `ratio` source timesteps maps to one compressed bit.
enum class CodecStrategy : std::uint8_t {
  kSubsample,      // keep the first bit of each group (paper Fig. 7)
  kGroupOr,        // OR over the group
  kGroupMajority,  // 1 iff more than half the group spiked
};

/// Codec configuration.
struct CodecConfig {
  std::uint32_t ratio = 2;  // source timesteps per compressed bit
  CodecStrategy strategy = CodecStrategy::kSubsample;
};

/// Compresses along time: output has ceil(T / ratio) timesteps.
data::SpikeRaster compress(const data::SpikeRaster& raster, const CodecConfig& config);

/// Decompresses to `original_timesteps` steps: each compressed bit is placed
/// at its group's first slot, remaining slots zero (Fig. 7 bottom row).
data::SpikeRaster decompress(const data::SpikeRaster& compressed,
                             std::size_t original_timesteps, const CodecConfig& config);

/// Compress + bit-pack in one step (what the latent-replay buffer stores).
PackedRaster compress_packed(const data::SpikeRaster& raster, const CodecConfig& config);

/// Unpack + decompress in one step.
data::SpikeRaster decompress_packed(const PackedRaster& packed,
                                    std::size_t original_timesteps,
                                    const CodecConfig& config);

/// Fraction of spikes surviving a compress→decompress round trip; a cheap
/// information-retention proxy used by the codec ablation.
double spike_retention(const data::SpikeRaster& original, const CodecConfig& config);

}  // namespace r4ncl::compress
