// Bit-packing of spike rasters for latent-memory accounting and storage.
//
// A raster is stored as `bits_per_element` bits per (timestep × channel)
// cell, padded to a whole byte per *timestep row* — the layout a DMA engine
// would use to stream one timestep at a time into a neuromorphic core.  The
// historical binary path is bits_per_element = 1; the quantized latent-replay
// path (Ravaglia et al.) stores sub-byte group-count codes at 2/4/8 bits per
// element through the same container.  The byte-per-row padding is also what
// makes the paper's latent-memory savings land in the 20–21.88% band instead
// of exactly 20% (see DESIGN.md §5).
//
// Decode/encode are byte-parallel: a constexpr 256-row table decodes every
// payload byte's 8/4/2 elements with one small copy, and the encoders fold a
// byte's worth of elements per shift/OR pass (SWAR), with an OpenMP row split
// for large rasters (guarded by openmp_enabled()).  The *_into variants reuse
// caller-owned allocations — the streaming-replay scratch path.
// tests/test_bitpack_kernels.cpp pins kernel == scalar-reference exhaustively
// over all byte values at every depth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/spike_data.hpp"

namespace r4ncl::compress {

/// Bit depths a packed payload may use: a whole number of elements per byte,
/// so no element straddles a byte boundary.
[[nodiscard]] constexpr bool valid_payload_bits(unsigned bits) noexcept {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8;
}

/// A bit-packed raster plus its geometry.
struct PackedRaster {
  std::uint32_t timesteps = 0;
  std::uint32_t channels = 0;
  /// Stored bits per (timestep × channel) element: 1 (binary, the historical
  /// layout) or 2/4/8 (quantized payload).  Elements are packed LSB-first
  /// within each byte.
  std::uint8_t bits_per_element = 1;
  std::vector<std::uint8_t> payload;

  /// Bytes needed per timestep row (channels × bits_per_element bits,
  /// byte-padded).
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return (static_cast<std::size_t>(channels) * bits_per_element + 7u) / 8u;
  }

  /// Total payload bytes.
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Packs a binary raster (1 bit per cell, row-padded to bytes).
PackedRaster pack(const data::SpikeRaster& raster);

/// Unpacks back to a dense raster; exact inverse of pack().  Requires
/// bits_per_element == 1 (quantized payloads decode via unpack_elements()).
data::SpikeRaster unpack(const PackedRaster& packed);

/// unpack() into a caller-owned raster, reusing its allocation when the
/// geometry already matches — the streaming-replay scratch path.
void unpack_into(const PackedRaster& packed, data::SpikeRaster& out);

/// Decodes one timestep row of a binary (bits_per_element == 1) payload into
/// `dst` (`channels` bytes) — the row-level building block fused decoders
/// (spike_codec's decompress_packed_into) are assembled from.
void unpack_row(const PackedRaster& packed, std::size_t t, std::uint8_t* dst);

/// Packs per-cell element values (row-major, each < 2^bits) at `bits` bits
/// per element.  Exact inverse of unpack_elements() — no quantization happens
/// here; callers reduce values to the target range first.
PackedRaster pack_elements(std::span<const std::uint8_t> values, std::size_t timesteps,
                           std::size_t channels, unsigned bits);

/// Element values of a packed raster at any bits_per_element, row-major.
std::vector<std::uint8_t> unpack_elements(const PackedRaster& packed);

/// unpack_elements() into a caller-owned vector (resized to fit), so a
/// streaming decoder can reuse one scratch allocation across entries.
void unpack_elements_into(const PackedRaster& packed, std::vector<std::uint8_t>& out);

/// Storage bytes for a packed raster including the fixed per-sample header
/// (geometry + label + codec metadata) a replay buffer must keep.
std::size_t stored_bytes(const PackedRaster& packed, std::size_t header_bytes);

}  // namespace r4ncl::compress
