// Bit-packing of spike rasters for latent-memory accounting and storage.
//
// A raster is stored as one bit per (timestep × channel) cell, padded to a
// whole byte per *timestep row* — the layout a DMA engine would use to stream
// one timestep at a time into a neuromorphic core.  The byte-per-row padding
// is also what makes the paper's latent-memory savings land in the
// 20–21.88% band instead of exactly 20% (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "data/spike_data.hpp"

namespace r4ncl::compress {

/// A bit-packed raster plus its geometry.
struct PackedRaster {
  std::uint32_t timesteps = 0;
  std::uint32_t channels = 0;
  std::vector<std::uint8_t> payload;

  /// Bytes needed per timestep row (channels bits, byte-padded).
  [[nodiscard]] std::size_t row_bytes() const noexcept { return (channels + 7u) / 8u; }

  /// Total payload bytes.
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Packs a binary raster (1 bit per cell, row-padded to bytes).
PackedRaster pack(const data::SpikeRaster& raster);

/// Unpacks back to a dense raster; exact inverse of pack().
data::SpikeRaster unpack(const PackedRaster& packed);

/// Storage bytes for a packed raster including the fixed per-sample header
/// (geometry + label + codec metadata) a replay buffer must keep.
std::size_t stored_bytes(const PackedRaster& packed, std::size_t header_bytes);

}  // namespace r4ncl::compress
