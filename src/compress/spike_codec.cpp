#include "compress/spike_codec.hpp"

#include "util/error.hpp"

namespace r4ncl::compress {

data::SpikeRaster compress(const data::SpikeRaster& raster, const CodecConfig& config) {
  R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
  if (config.ratio == 1) return raster;
  const std::size_t T = raster.timesteps;
  const std::size_t Tc = (T + config.ratio - 1) / config.ratio;
  data::SpikeRaster out(Tc, raster.channels);
  for (std::size_t tc = 0; tc < Tc; ++tc) {
    const std::size_t lo = tc * config.ratio;
    const std::size_t hi = std::min<std::size_t>(lo + config.ratio, T);
    for (std::size_t c = 0; c < raster.channels; ++c) {
      std::uint8_t bit = 0;
      switch (config.strategy) {
        case CodecStrategy::kSubsample:
          bit = raster.bits[lo * raster.channels + c];
          break;
        case CodecStrategy::kGroupOr: {
          for (std::size_t t = lo; t < hi && bit == 0; ++t) {
            bit = raster.bits[t * raster.channels + c];
          }
          break;
        }
        case CodecStrategy::kGroupMajority: {
          std::size_t count = 0;
          for (std::size_t t = lo; t < hi; ++t) count += raster.bits[t * raster.channels + c];
          bit = 2 * count > (hi - lo) ? 1 : 0;
          break;
        }
      }
      out.bits[tc * out.channels + c] = bit;
    }
  }
  return out;
}

data::SpikeRaster decompress(const data::SpikeRaster& compressed,
                             std::size_t original_timesteps, const CodecConfig& config) {
  R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
  if (config.ratio == 1) return compressed;
  const std::size_t expected = (original_timesteps + config.ratio - 1) / config.ratio;
  R4NCL_CHECK(compressed.timesteps == expected,
              "compressed raster has " << compressed.timesteps << " steps, expected "
                                       << expected);
  data::SpikeRaster out(original_timesteps, compressed.channels);
  for (std::size_t tc = 0; tc < compressed.timesteps; ++tc) {
    const std::size_t t0 = tc * config.ratio;  // group start (Fig. 7 convention)
    if (t0 >= original_timesteps) break;
    for (std::size_t c = 0; c < compressed.channels; ++c) {
      out.bits[t0 * out.channels + c] = compressed.bits[tc * compressed.channels + c];
    }
  }
  return out;
}

PackedRaster compress_packed(const data::SpikeRaster& raster, const CodecConfig& config) {
  return pack(compress(raster, config));
}

data::SpikeRaster decompress_packed(const PackedRaster& packed,
                                    std::size_t original_timesteps,
                                    const CodecConfig& config) {
  return decompress(unpack(packed), original_timesteps, config);
}

double spike_retention(const data::SpikeRaster& original, const CodecConfig& config) {
  const std::size_t before = original.spike_count();
  if (before == 0) return 1.0;
  const data::SpikeRaster round =
      decompress(compress(original, config), original.timesteps, config);
  return static_cast<double>(round.spike_count()) / static_cast<double>(before);
}

}  // namespace r4ncl::compress
