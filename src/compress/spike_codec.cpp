#include "compress/spike_codec.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace r4ncl::compress {

namespace {

void check_quantized_config(const CodecConfig& config) {
  R4NCL_CHECK(valid_payload_bits(config.latent_bits),
              "latent_bits must be 1/2/4/8, got " << int(config.latent_bits));
  R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
  R4NCL_CHECK(config.ratio <= 255, "quantized codec supports ratio <= 255, got "
                                       << config.ratio);
}

}  // namespace

std::uint32_t quantize_count(std::uint32_t count, std::uint32_t ratio, unsigned bits) {
  R4NCL_CHECK(valid_payload_bits(bits), "latent_bits must be 1/2/4/8, got " << bits);
  R4NCL_CHECK(ratio >= 1 && count <= ratio,
              "count " << count << " outside [0, ratio=" << ratio << "]");
  const std::uint32_t levels = (1u << bits) - 1u;
  // round(count * levels / ratio), half up, in exact integer arithmetic.
  return (2u * count * levels + ratio) / (2u * ratio);
}

std::uint32_t dequantize_count(std::uint32_t level, std::uint32_t ratio, unsigned bits) {
  R4NCL_CHECK(valid_payload_bits(bits), "latent_bits must be 1/2/4/8, got " << bits);
  const std::uint32_t levels = (1u << bits) - 1u;
  R4NCL_CHECK(ratio >= 1 && level <= levels,
              "level " << level << " outside [0, " << levels << "]");
  // round(level * ratio / levels), half up.
  return (2u * level * ratio + levels) / (2u * levels);
}

data::SpikeRaster compress(const data::SpikeRaster& raster, const CodecConfig& config) {
  R4NCL_CHECK(!config.quantized(),
              "quantized codecs compress packed-side (compress_packed)");
  R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
  if (config.ratio == 1) return raster;
  const std::size_t T = raster.timesteps;
  const std::size_t Tc = (T + config.ratio - 1) / config.ratio;
  data::SpikeRaster out(Tc, raster.channels);
  for (std::size_t tc = 0; tc < Tc; ++tc) {
    const std::size_t lo = tc * config.ratio;
    const std::size_t hi = std::min<std::size_t>(lo + config.ratio, T);
    for (std::size_t c = 0; c < raster.channels; ++c) {
      std::uint8_t bit = 0;
      switch (config.strategy) {
        case CodecStrategy::kSubsample:
          bit = raster.bits[lo * raster.channels + c];
          break;
        case CodecStrategy::kGroupOr: {
          for (std::size_t t = lo; t < hi && bit == 0; ++t) {
            bit = raster.bits[t * raster.channels + c];
          }
          break;
        }
        case CodecStrategy::kGroupMajority: {
          std::size_t count = 0;
          for (std::size_t t = lo; t < hi; ++t) count += raster.bits[t * raster.channels + c];
          bit = 2 * count > (hi - lo) ? 1 : 0;
          break;
        }
      }
      out.bits[tc * out.channels + c] = bit;
    }
  }
  return out;
}

data::SpikeRaster decompress(const data::SpikeRaster& compressed,
                             std::size_t original_timesteps, const CodecConfig& config) {
  R4NCL_CHECK(!config.quantized(),
              "quantized codecs decompress packed-side (decompress_packed)");
  R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
  if (config.ratio == 1) return compressed;
  const std::size_t expected = (original_timesteps + config.ratio - 1) / config.ratio;
  R4NCL_CHECK(compressed.timesteps == expected,
              "compressed raster has " << compressed.timesteps << " steps, expected "
                                       << expected);
  data::SpikeRaster out(original_timesteps, compressed.channels);
  for (std::size_t tc = 0; tc < compressed.timesteps; ++tc) {
    const std::size_t t0 = tc * config.ratio;  // group start (Fig. 7 convention)
    if (t0 >= original_timesteps) break;
    for (std::size_t c = 0; c < compressed.channels; ++c) {
      out.bits[t0 * out.channels + c] = compressed.bits[tc * compressed.channels + c];
    }
  }
  return out;
}

PackedRaster compress_packed(const data::SpikeRaster& raster, const CodecConfig& config) {
  if (!config.quantized()) return pack(compress(raster, config));
  check_quantized_config(config);
  const std::size_t T = raster.timesteps;
  const std::size_t C = raster.channels;
  const std::size_t Tc = (T + config.ratio - 1) / config.ratio;
  // Counts never exceed `ratio`, so one table lookup replaces the per-element
  // quantize_count() call (and its range checks) on the hot encode path.
  std::vector<std::uint8_t> quant_lut(config.ratio + 1);
  for (std::uint32_t count = 0; count <= config.ratio; ++count) {
    quant_lut[count] =
        static_cast<std::uint8_t>(quantize_count(count, config.ratio, config.latent_bits));
  }
  std::vector<std::uint8_t> levels(Tc * C);
  for (std::size_t tc = 0; tc < Tc; ++tc) {
    const std::size_t lo = tc * config.ratio;
    const std::size_t hi = std::min<std::size_t>(lo + config.ratio, T);
    for (std::size_t c = 0; c < C; ++c) {
      std::uint32_t count = 0;
      for (std::size_t t = lo; t < hi; ++t) count += raster.bits[t * C + c];
      levels[tc * C + c] = quant_lut[count];
    }
  }
  return pack_elements(levels, Tc, C, config.latent_bits);
}

data::SpikeRaster decompress_packed(const PackedRaster& packed,
                                    std::size_t original_timesteps,
                                    const CodecConfig& config) {
  data::SpikeRaster out;
  decompress_packed_into(packed, original_timesteps, config, out);
  return out;
}

void decompress_packed_into(const PackedRaster& packed, std::size_t original_timesteps,
                            const CodecConfig& config, data::SpikeRaster& out,
                            std::vector<std::uint8_t>* levels_scratch) {
  if (!config.quantized()) {
    R4NCL_CHECK(config.ratio >= 1, "codec ratio must be >= 1");
    if (config.ratio == 1) {
      // Raw storage: the payload *is* the raster (decompress() is identity).
      unpack_into(packed, out);
      return;
    }
    R4NCL_CHECK(packed.bits_per_element == 1,
                "unpack() decodes binary payloads; this raster stores "
                    << int(packed.bits_per_element) << " bits/element");
    const std::size_t row_bytes = packed.row_bytes();
    R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
                "packed payload size mismatch");
    const std::size_t expected =
        (original_timesteps + config.ratio - 1) / config.ratio;
    R4NCL_CHECK(packed.timesteps == expected,
                "compressed raster has " << packed.timesteps << " steps, expected "
                                         << expected);
    const std::size_t C = packed.channels;
    out.timesteps = original_timesteps;
    out.channels = C;
    out.bits.assign(original_timesteps * C, 0);
    // Fused unpack + re-expansion: each compressed row decodes straight into
    // its group's first slot (Fig. 7 bottom row); no Tc x C intermediate.
    for (std::size_t tc = 0; tc < packed.timesteps; ++tc) {
      const std::size_t t0 = tc * config.ratio;  // group start
      if (t0 >= original_timesteps) break;
      unpack_row(packed, tc, out.bits.data() + t0 * C);
    }
    return;
  }
  check_quantized_config(config);
  R4NCL_CHECK(packed.bits_per_element == config.latent_bits,
              "payload stores " << int(packed.bits_per_element)
                                << " bits/element, codec expects "
                                << int(config.latent_bits));
  const std::size_t expected =
      (original_timesteps + config.ratio - 1) / config.ratio;
  R4NCL_CHECK(packed.timesteps == expected,
              "quantized payload has " << packed.timesteps << " groups, expected "
                                       << expected);
  std::vector<std::uint8_t> local_levels;
  std::vector<std::uint8_t>& levels = levels_scratch ? *levels_scratch : local_levels;
  unpack_elements_into(packed, levels);
  // Reconstructed spikes fill each group's leading slots (the quantized
  // generalisation of Fig. 7's group-start convention): slot k of a group
  // spikes iff the reconstructed count exceeds k.  dequantize_count() is
  // nondecreasing in the level code, so "count > k" is the threshold test
  // "level >= min_level_over[k]" — one branch-free byte compare per cell,
  // row-major, instead of a strided scatter loop per nonzero count.
  std::array<std::uint8_t, 256> min_level_over{};
  for (std::uint32_t k = 0; k < config.ratio; ++k) {
    std::uint32_t level = 0;
    while (dequantize_count(level, config.ratio, config.latent_bits) <= k) ++level;
    min_level_over[k] = static_cast<std::uint8_t>(level);  // dq[max_level]=ratio>k
  }
  const std::size_t C = packed.channels;
  out.timesteps = original_timesteps;
  out.channels = C;
  out.bits.resize(original_timesteps * C);
  for (std::size_t tc = 0; tc < packed.timesteps; ++tc) {
    const std::size_t lo = tc * config.ratio;
    const std::size_t hi = std::min<std::size_t>(lo + config.ratio, original_timesteps);
    const std::uint8_t* level_row = levels.data() + tc * C;
    for (std::size_t k = 0; k < hi - lo; ++k) {
      std::uint8_t* dst = out.bits.data() + (lo + k) * C;
      const std::uint8_t threshold = min_level_over[k];
      for (std::size_t c = 0; c < C; ++c) dst[c] = level_row[c] >= threshold ? 1 : 0;
    }
  }
}

double spike_retention(const data::SpikeRaster& original, const CodecConfig& config) {
  const std::size_t before = original.spike_count();
  if (before == 0) return 1.0;
  const data::SpikeRaster round =
      config.quantized()
          ? decompress_packed(compress_packed(original, config), original.timesteps, config)
          : decompress(compress(original, config), original.timesteps, config);
  return static_cast<double>(round.spike_count()) / static_cast<double>(before);
}

}  // namespace r4ncl::compress
