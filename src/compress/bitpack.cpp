#include "compress/bitpack.hpp"

#include "util/error.hpp"

namespace r4ncl::compress {

PackedRaster pack(const data::SpikeRaster& raster) {
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(raster.timesteps);
  out.channels = static_cast<std::uint32_t>(raster.channels);
  const std::size_t row_bytes = out.row_bytes();
  out.payload.assign(raster.timesteps * row_bytes, 0);
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    std::uint8_t* row = out.payload.data() + t * row_bytes;
    const std::uint8_t* src = raster.bits.data() + t * raster.channels;
    for (std::size_t c = 0; c < raster.channels; ++c) {
      if (src[c] != 0) row[c >> 3] |= static_cast<std::uint8_t>(1u << (c & 7u));
    }
  }
  return out;
}

data::SpikeRaster unpack(const PackedRaster& packed) {
  R4NCL_CHECK(packed.bits_per_element == 1,
              "unpack() decodes binary payloads; this raster stores "
                  << int(packed.bits_per_element) << " bits/element");
  data::SpikeRaster out(packed.timesteps, packed.channels);
  const std::size_t row_bytes = packed.row_bytes();
  R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
              "packed payload size mismatch");
  for (std::size_t t = 0; t < packed.timesteps; ++t) {
    const std::uint8_t* row = packed.payload.data() + t * row_bytes;
    std::uint8_t* dst = out.bits.data() + t * packed.channels;
    for (std::size_t c = 0; c < packed.channels; ++c) {
      dst[c] = (row[c >> 3] >> (c & 7u)) & 1u;
    }
  }
  return out;
}

PackedRaster pack_elements(std::span<const std::uint8_t> values, std::size_t timesteps,
                           std::size_t channels, unsigned bits) {
  R4NCL_CHECK(valid_payload_bits(bits), "bits_per_element must be 1/2/4/8, got " << bits);
  R4NCL_CHECK(values.size() == timesteps * channels,
              "pack_elements: " << values.size() << " values for a " << timesteps << "x"
                                << channels << " raster");
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(timesteps);
  out.channels = static_cast<std::uint32_t>(channels);
  out.bits_per_element = static_cast<std::uint8_t>(bits);
  const std::size_t row_bytes = out.row_bytes();
  const unsigned mask = (1u << bits) - 1u;
  out.payload.assign(timesteps * row_bytes, 0);
  for (std::size_t t = 0; t < timesteps; ++t) {
    std::uint8_t* row = out.payload.data() + t * row_bytes;
    const std::uint8_t* src = values.data() + t * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      R4NCL_CHECK(src[c] <= mask, "element value " << int(src[c]) << " exceeds " << bits
                                                   << "-bit range");
      const std::size_t bit_pos = c * bits;
      row[bit_pos >> 3] |=
          static_cast<std::uint8_t>(static_cast<unsigned>(src[c]) << (bit_pos & 7u));
    }
  }
  return out;
}

std::vector<std::uint8_t> unpack_elements(const PackedRaster& packed) {
  R4NCL_CHECK(valid_payload_bits(packed.bits_per_element),
              "bits_per_element must be 1/2/4/8, got " << int(packed.bits_per_element));
  const std::size_t row_bytes = packed.row_bytes();
  R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
              "packed payload size mismatch");
  const unsigned bits = packed.bits_per_element;
  const unsigned mask = (1u << bits) - 1u;
  std::vector<std::uint8_t> out(static_cast<std::size_t>(packed.timesteps) * packed.channels);
  for (std::size_t t = 0; t < packed.timesteps; ++t) {
    const std::uint8_t* row = packed.payload.data() + t * row_bytes;
    std::uint8_t* dst = out.data() + t * packed.channels;
    for (std::size_t c = 0; c < packed.channels; ++c) {
      const std::size_t bit_pos = c * bits;
      dst[c] = static_cast<std::uint8_t>((row[bit_pos >> 3] >> (bit_pos & 7u)) & mask);
    }
  }
  return out;
}

std::size_t stored_bytes(const PackedRaster& packed, std::size_t header_bytes) {
  return packed.payload_bytes() + header_bytes;
}

}  // namespace r4ncl::compress
