#include "compress/bitpack.hpp"

#include "util/error.hpp"

namespace r4ncl::compress {

PackedRaster pack(const data::SpikeRaster& raster) {
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(raster.timesteps);
  out.channels = static_cast<std::uint32_t>(raster.channels);
  const std::size_t row_bytes = out.row_bytes();
  out.payload.assign(raster.timesteps * row_bytes, 0);
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    std::uint8_t* row = out.payload.data() + t * row_bytes;
    const std::uint8_t* src = raster.bits.data() + t * raster.channels;
    for (std::size_t c = 0; c < raster.channels; ++c) {
      if (src[c] != 0) row[c >> 3] |= static_cast<std::uint8_t>(1u << (c & 7u));
    }
  }
  return out;
}

data::SpikeRaster unpack(const PackedRaster& packed) {
  data::SpikeRaster out(packed.timesteps, packed.channels);
  const std::size_t row_bytes = packed.row_bytes();
  R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
              "packed payload size mismatch");
  for (std::size_t t = 0; t < packed.timesteps; ++t) {
    const std::uint8_t* row = packed.payload.data() + t * row_bytes;
    std::uint8_t* dst = out.bits.data() + t * packed.channels;
    for (std::size_t c = 0; c < packed.channels; ++c) {
      dst[c] = (row[c >> 3] >> (c & 7u)) & 1u;
    }
  }
  return out;
}

std::size_t stored_bytes(const PackedRaster& packed, std::size_t header_bytes) {
  return packed.payload_bytes() + header_bytes;
}

}  // namespace r4ncl::compress
