#include "compress/bitpack.hpp"

#include <array>
#include <cstring>
#include <type_traits>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace r4ncl::compress {

namespace {

// Byte-parallel decode: at depth b a payload byte holds 8/b elements, so a
// 256-row lookup table turns the scalar shift/mask inner loop into one small
// fixed-size copy per payload byte (the compiler lowers the 8/4/2-byte memcpy
// to a single load/store pair).  Tables are built at compile time; all three
// together cost 3.5 KiB of read-only data.
template <unsigned kBits>
struct DecodeTable {
  static constexpr std::size_t kPerByte = 8 / kBits;
  std::array<std::array<std::uint8_t, kPerByte>, 256> row{};

  constexpr DecodeTable() {
    constexpr unsigned mask = (1u << kBits) - 1u;
    for (unsigned byte = 0; byte < 256; ++byte) {
      for (unsigned e = 0; e < kPerByte; ++e) {
        row[byte][e] = static_cast<std::uint8_t>((byte >> (e * kBits)) & mask);
      }
    }
  }
};

template <unsigned kBits>
constexpr DecodeTable<kBits> kDecode{};

/// Decodes one packed row of `channels` elements, whole payload bytes at a
/// time.  The last byte of a row may be partial (row padding).
template <unsigned kBits>
void decode_row(const std::uint8_t* row, std::uint8_t* dst, std::size_t channels) {
  if constexpr (kBits == 8) {
    std::memcpy(dst, row, channels);
  } else {
    constexpr std::size_t per_byte = DecodeTable<kBits>::kPerByte;
    const std::size_t full = channels / per_byte;
    for (std::size_t b = 0; b < full; ++b) {
      std::memcpy(dst + b * per_byte, kDecode<kBits>.row[row[b]].data(), per_byte);
    }
    const std::size_t done = full * per_byte;
    if (done < channels) {
      const auto& tail = kDecode<kBits>.row[row[full]];
      for (std::size_t e = 0; done + e < channels; ++e) dst[done + e] = tail[e];
    }
  }
}

/// Encodes one row, folding 8/kBits elements into each payload byte
/// (SWAR-style shift/OR over whole bytes).  Returns the OR of every source
/// value so the caller can range-check once per row instead of per element.
template <unsigned kBits>
std::uint8_t encode_row(const std::uint8_t* src, std::uint8_t* row, std::size_t channels) {
  if constexpr (kBits == 8) {
    std::memcpy(row, src, channels);
    return 0;  // every uint8 value fits an 8-bit element
  } else {
    constexpr std::size_t per_byte = 8 / kBits;
    const std::size_t full = channels / per_byte;
    std::uint8_t seen = 0;
    for (std::size_t b = 0; b < full; ++b) {
      unsigned acc = 0;
      for (std::size_t e = 0; e < per_byte; ++e) {
        const std::uint8_t v = src[b * per_byte + e];
        seen = static_cast<std::uint8_t>(seen | v);
        acc |= static_cast<unsigned>(v) << (e * kBits);
      }
      row[b] = static_cast<std::uint8_t>(acc);
    }
    const std::size_t done = full * per_byte;
    if (done < channels) {
      unsigned acc = 0;
      for (std::size_t e = 0; done + e < channels; ++e) {
        const std::uint8_t v = src[done + e];
        seen = static_cast<std::uint8_t>(seen | v);
        acc |= static_cast<unsigned>(v) << (e * kBits);
      }
      row[full] = static_cast<std::uint8_t>(acc);
    }
    return seen;
  }
}

/// Binary pack row: any nonzero source byte becomes a 1 bit (the historical
/// pack() tolerance, unlike pack_elements which requires in-range values).
void encode_binary_row(const std::uint8_t* src, std::uint8_t* row, std::size_t channels) {
  const std::size_t full = channels / 8;
  for (std::size_t b = 0; b < full; ++b) {
    unsigned acc = 0;
    for (std::size_t e = 0; e < 8; ++e) {
      acc |= (src[b * 8 + e] != 0 ? 1u : 0u) << e;
    }
    row[b] = static_cast<std::uint8_t>(acc);
  }
  const std::size_t done = full * 8;
  if (done < channels) {
    unsigned acc = 0;
    for (std::size_t e = 0; done + e < channels; ++e) {
      acc |= (src[done + e] != 0 ? 1u : 0u) << e;
    }
    row[full] = static_cast<std::uint8_t>(acc);
  }
}

/// Runs `row_fn(t)` over every timestep row, split across OpenMP workers for
/// large rasters.  Guarded by openmp_enabled(): without OpenMP the
/// std::thread fallback costs more than the row work it would hide, and the
/// grain hint keeps small rasters on the serial path either way.
template <typename RowFn>
void for_each_row(std::size_t timesteps, std::size_t row_elements, const RowFn& row_fn) {
  if (openmp_enabled() && timesteps > 1) {
    parallel_for(0, timesteps, row_fn, row_elements);
  } else {
    for (std::size_t t = 0; t < timesteps; ++t) row_fn(t);
  }
}

/// Rescans a row the slow scalar way to name the offending element once the
/// per-row OR check has tripped.
[[noreturn]] void throw_out_of_range(const std::uint8_t* src, std::size_t channels,
                                     unsigned bits) {
  const unsigned mask = (1u << bits) - 1u;
  for (std::size_t c = 0; c < channels; ++c) {
    R4NCL_CHECK(src[c] <= mask, "element value " << int(src[c]) << " exceeds " << bits
                                                 << "-bit range");
  }
  throw Error("pack_elements range check tripped but no offending element found");
}

}  // namespace

PackedRaster pack(const data::SpikeRaster& raster) {
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(raster.timesteps);
  out.channels = static_cast<std::uint32_t>(raster.channels);
  const std::size_t row_bytes = out.row_bytes();
  out.payload.assign(raster.timesteps * row_bytes, 0);
  for_each_row(raster.timesteps, raster.channels, [&](std::size_t t) {
    encode_binary_row(raster.bits.data() + t * raster.channels,
                      out.payload.data() + t * row_bytes, raster.channels);
  });
  return out;
}

data::SpikeRaster unpack(const PackedRaster& packed) {
  data::SpikeRaster out;
  unpack_into(packed, out);
  return out;
}

void unpack_into(const PackedRaster& packed, data::SpikeRaster& out) {
  R4NCL_CHECK(packed.bits_per_element == 1,
              "unpack() decodes binary payloads; this raster stores "
                  << int(packed.bits_per_element) << " bits/element");
  const std::size_t row_bytes = packed.row_bytes();
  R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
              "packed payload size mismatch");
  out.timesteps = packed.timesteps;
  out.channels = packed.channels;
  out.bits.resize(static_cast<std::size_t>(packed.timesteps) * packed.channels);
  for_each_row(packed.timesteps, packed.channels, [&](std::size_t t) {
    decode_row<1>(packed.payload.data() + t * row_bytes,
                  out.bits.data() + t * packed.channels, packed.channels);
  });
}

void unpack_row(const PackedRaster& packed, std::size_t t, std::uint8_t* dst) {
  R4NCL_CHECK(packed.bits_per_element == 1,
              "unpack_row() decodes binary payloads; this raster stores "
                  << int(packed.bits_per_element) << " bits/element");
  R4NCL_CHECK(t < packed.timesteps, "row " << t << " out of " << packed.timesteps);
  decode_row<1>(packed.payload.data() + t * packed.row_bytes(), dst, packed.channels);
}

PackedRaster pack_elements(std::span<const std::uint8_t> values, std::size_t timesteps,
                           std::size_t channels, unsigned bits) {
  R4NCL_CHECK(valid_payload_bits(bits), "bits_per_element must be 1/2/4/8, got " << bits);
  R4NCL_CHECK(values.size() == timesteps * channels,
              "pack_elements: " << values.size() << " values for a " << timesteps << "x"
                                << channels << " raster");
  PackedRaster out;
  out.timesteps = static_cast<std::uint32_t>(timesteps);
  out.channels = static_cast<std::uint32_t>(channels);
  out.bits_per_element = static_cast<std::uint8_t>(bits);
  const std::size_t row_bytes = out.row_bytes();
  const unsigned mask = (1u << bits) - 1u;
  out.payload.assign(timesteps * row_bytes, 0);
  // Encoding is kept serial: a row whose OR-accumulator exceeds the element
  // range must throw from a deterministic (first-offender) position, which a
  // parallel split would not guarantee.  Decode is the replay hot path, not
  // encode, so nothing is lost.
  for (std::size_t t = 0; t < timesteps; ++t) {
    const std::uint8_t* src = values.data() + t * channels;
    std::uint8_t* row = out.payload.data() + t * row_bytes;
    std::uint8_t seen = 0;
    switch (bits) {
      case 1: seen = encode_row<1>(src, row, channels); break;
      case 2: seen = encode_row<2>(src, row, channels); break;
      case 4: seen = encode_row<4>(src, row, channels); break;
      default: seen = encode_row<8>(src, row, channels); break;
    }
    if (seen > mask) throw_out_of_range(src, channels, bits);
  }
  return out;
}

std::vector<std::uint8_t> unpack_elements(const PackedRaster& packed) {
  std::vector<std::uint8_t> out;
  unpack_elements_into(packed, out);
  return out;
}

void unpack_elements_into(const PackedRaster& packed, std::vector<std::uint8_t>& out) {
  R4NCL_CHECK(valid_payload_bits(packed.bits_per_element),
              "bits_per_element must be 1/2/4/8, got " << int(packed.bits_per_element));
  const std::size_t row_bytes = packed.row_bytes();
  R4NCL_CHECK(packed.payload.size() == packed.timesteps * row_bytes,
              "packed payload size mismatch");
  const std::size_t channels = packed.channels;
  out.resize(static_cast<std::size_t>(packed.timesteps) * channels);
  const auto decode = [&](auto bits_tag) {
    for_each_row(packed.timesteps, channels, [&](std::size_t t) {
      decode_row<decltype(bits_tag)::value>(packed.payload.data() + t * row_bytes,
                                            out.data() + t * channels, channels);
    });
  };
  switch (packed.bits_per_element) {
    case 1: decode(std::integral_constant<unsigned, 1>{}); break;
    case 2: decode(std::integral_constant<unsigned, 2>{}); break;
    case 4: decode(std::integral_constant<unsigned, 4>{}); break;
    default: decode(std::integral_constant<unsigned, 8>{}); break;
  }
}

std::size_t stored_bytes(const PackedRaster& packed, std::size_t header_bytes) {
  return packed.payload_bytes() + header_bytes;
}

}  // namespace r4ncl::compress
