// Address-Event Representation (AER) storage of spike rasters.
//
// Neuromorphic sensors and chips exchange spikes as (timestep, channel)
// event tuples rather than dense bitmaps.  For sparse rasters AER is the
// smaller encoding; for dense rasters bit-packing wins.  The latent-replay
// buffer's bitmap format (bitpack.hpp) is what the paper's memory accounting
// uses; this module provides the AER alternative plus the crossover analysis
// (aer_is_smaller) so deployments can pick per-layer.
//
// Encoding: events sorted by (t, channel); timestep stored as a delta from
// the previous event's timestep (u8 with 255-escape), channel as u16.
//
// Beyond storage, this header is also the event-*iteration* surface of the
// repo: aer_visit() walks an encoded stream without densifying it, and
// BatchEventList is the batched per-timestep active-channel list the SNN
// hot path consumes (snn::RecurrentLifLayer's event-driven forward), built
// either from AER samples or from a dense (T × B × C) float batch.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/spike_data.hpp"
#include "tensor/tensor.hpp"

namespace r4ncl::compress {

/// AER-encoded raster.
struct AerRaster {
  std::uint32_t timesteps = 0;
  std::uint32_t channels = 0;
  /// Encoded event stream (delta-t / channel pairs).
  std::vector<std::uint8_t> payload;
  /// Number of events (spikes) encoded.
  std::uint32_t num_events = 0;

  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Encodes a dense raster into the AER event stream.
AerRaster aer_encode(const data::SpikeRaster& raster);

/// Decodes back to a dense raster; exact inverse of aer_encode.
data::SpikeRaster aer_decode(const AerRaster& aer);

/// aer_decode() into a caller-owned raster, reusing its allocation when the
/// geometry already matches — the streaming scratch path (every cell is
/// rewritten, so stale contents cannot leak through).
void aer_decode_into(const AerRaster& aer, data::SpikeRaster& out);

/// Walks the encoded event stream in (t, channel) order without densifying
/// it, invoking visit(t, channel) once per event — the iteration primitive
/// batch event lists and event-driven consumers are built from.
void aer_visit(const AerRaster& aer,
               const std::function<void(std::size_t t, std::size_t channel)>& visit);

/// Batched per-timestep active-channel lists: for every (t, b) row of a
/// (T × B × C) spike cube, the channels with a non-zero value, ascending —
/// CSR over rows in t-major order, so one timestep's rows are contiguous.
///
/// Values are stored alongside the channels so non-binary activations stay
/// exact; `unit_values` marks the common all-spikes-are-1.0f case, which
/// lets consumers use add-only kernels.  Iterating a row's events in stored
/// (ascending-channel) order reproduces kernels::matmul's zero-skipping
/// accumulation order exactly, which is what makes the event-driven forward
/// bit-identical to the dense one.
struct BatchEventList {
  std::size_t timesteps = 0;
  std::size_t batch = 0;
  std::size_t channels = 0;
  /// offsets[t * batch + b] .. offsets[t * batch + b + 1) indexes `channel`/
  /// `value` for row (t, b); size timesteps·batch + 1.
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> channel;
  std::vector<float> value;
  bool unit_values = true;

  [[nodiscard]] std::size_t row_begin(std::size_t t, std::size_t b) const noexcept {
    return offsets[t * batch + b];
  }
  [[nodiscard]] std::size_t row_end(std::size_t t, std::size_t b) const noexcept {
    return offsets[t * batch + b + 1];
  }
  /// Events in timestep t across the whole batch (rows are t-major).
  [[nodiscard]] std::size_t events_in_timestep(std::size_t t) const noexcept {
    return offsets[(t + 1) * batch] - offsets[t * batch];
  }
  [[nodiscard]] std::size_t num_events() const noexcept { return channel.size(); }
};

/// Builds the event list of a dense (T × B × C) float batch in one scan.
/// Every cell with a non-zero value becomes an event carrying that value.
BatchEventList events_from_batch(const Tensor& x);

/// Builds the event list of B AER-encoded samples (sample i = batch row i)
/// without densifying any of them; all samples must share geometry.  The
/// result equals events_from_batch() over the decoded dense batch.
BatchEventList events_from_aer(std::span<const AerRaster> samples);

/// Bytes the AER encoding needs for a raster of the given geometry/density
/// (without encoding it): events·3 bytes + escape bytes are density-data
/// dependent, so this computes the exact size by encoding-free counting.
std::size_t aer_bytes(const data::SpikeRaster& raster);

/// True when AER storage is smaller than byte-padded bit-packing for this
/// raster — the sparse/dense crossover used for per-layer format selection.
bool aer_is_smaller(const data::SpikeRaster& raster);

}  // namespace r4ncl::compress
