// Address-Event Representation (AER) storage of spike rasters.
//
// Neuromorphic sensors and chips exchange spikes as (timestep, channel)
// event tuples rather than dense bitmaps.  For sparse rasters AER is the
// smaller encoding; for dense rasters bit-packing wins.  The latent-replay
// buffer's bitmap format (bitpack.hpp) is what the paper's memory accounting
// uses; this module provides the AER alternative plus the crossover analysis
// (aer_is_smaller) so deployments can pick per-layer.
//
// Encoding: events sorted by (t, channel); timestep stored as a delta from
// the previous event's timestep (u8 with 255-escape), channel as u16.
#pragma once

#include <cstdint>
#include <vector>

#include "data/spike_data.hpp"

namespace r4ncl::compress {

/// AER-encoded raster.
struct AerRaster {
  std::uint32_t timesteps = 0;
  std::uint32_t channels = 0;
  /// Encoded event stream (delta-t / channel pairs).
  std::vector<std::uint8_t> payload;
  /// Number of events (spikes) encoded.
  std::uint32_t num_events = 0;

  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload.size(); }
};

/// Encodes a dense raster into the AER event stream.
AerRaster aer_encode(const data::SpikeRaster& raster);

/// Decodes back to a dense raster; exact inverse of aer_encode.
data::SpikeRaster aer_decode(const AerRaster& aer);

/// Bytes the AER encoding needs for a raster of the given geometry/density
/// (without encoding it): events·3 bytes + escape bytes are density-data
/// dependent, so this computes the exact size by encoding-free counting.
std::size_t aer_bytes(const data::SpikeRaster& raster);

/// True when AER storage is smaller than byte-padded bit-packing for this
/// raster — the sparse/dense crossover used for per-layer format selection.
bool aer_is_smaller(const data::SpikeRaster& raster);

}  // namespace r4ncl::compress
