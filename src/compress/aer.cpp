#include "compress/aer.hpp"

#include "compress/bitpack.hpp"
#include "util/error.hpp"

namespace r4ncl::compress {

namespace {
constexpr std::uint8_t kDeltaEscape = 0xff;  // delta ≥ 255 → escape + u16 delta
}

AerRaster aer_encode(const data::SpikeRaster& raster) {
  R4NCL_CHECK(raster.channels < 0x10000, "AER channel field is u16");
  AerRaster out;
  out.timesteps = static_cast<std::uint32_t>(raster.timesteps);
  out.channels = static_cast<std::uint32_t>(raster.channels);
  std::size_t prev_t = 0;
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    for (std::size_t c = 0; c < raster.channels; ++c) {
      if (raster.bits[t * raster.channels + c] == 0) continue;
      std::size_t delta = t - prev_t;
      while (delta >= kDeltaEscape) {
        // Escape: emit 0xff + u16 chunk of the delta (handles long silences).
        out.payload.push_back(kDeltaEscape);
        const std::uint16_t chunk =
            delta > 0xffff ? 0xffff : static_cast<std::uint16_t>(delta);
        out.payload.push_back(static_cast<std::uint8_t>(chunk & 0xff));
        out.payload.push_back(static_cast<std::uint8_t>(chunk >> 8));
        delta -= chunk;
      }
      out.payload.push_back(static_cast<std::uint8_t>(delta));
      out.payload.push_back(static_cast<std::uint8_t>(c & 0xff));
      out.payload.push_back(static_cast<std::uint8_t>(c >> 8));
      prev_t = t;
      ++out.num_events;
    }
  }
  return out;
}

data::SpikeRaster aer_decode(const AerRaster& aer) {
  data::SpikeRaster out(aer.timesteps, aer.channels);
  std::size_t t = 0;
  std::size_t i = 0;
  std::uint32_t decoded = 0;
  while (i < aer.payload.size()) {
    std::size_t delta = 0;
    while (aer.payload[i] == kDeltaEscape) {
      R4NCL_CHECK(i + 2 < aer.payload.size(), "truncated AER escape");
      delta += static_cast<std::size_t>(aer.payload[i + 1]) |
               (static_cast<std::size_t>(aer.payload[i + 2]) << 8);
      i += 3;
      R4NCL_CHECK(i < aer.payload.size(), "truncated AER stream");
    }
    delta += aer.payload[i];
    ++i;
    R4NCL_CHECK(i + 1 < aer.payload.size(), "truncated AER channel");
    const std::size_t c = static_cast<std::size_t>(aer.payload[i]) |
                          (static_cast<std::size_t>(aer.payload[i + 1]) << 8);
    i += 2;
    t += delta;
    R4NCL_CHECK(t < aer.timesteps && c < aer.channels, "AER event out of bounds");
    out.bits[t * aer.channels + c] = 1;
    ++decoded;
  }
  R4NCL_CHECK(decoded == aer.num_events, "AER event count mismatch");
  return out;
}

std::size_t aer_bytes(const data::SpikeRaster& raster) {
  // Encoding is cheap enough to just do; kept as a function for call sites
  // that only need the size.
  return aer_encode(raster).payload_bytes();
}

bool aer_is_smaller(const data::SpikeRaster& raster) {
  return aer_bytes(raster) < pack(raster).payload_bytes();
}

}  // namespace r4ncl::compress
