#include "compress/aer.hpp"

#include "compress/bitpack.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace r4ncl::compress {

namespace {
constexpr std::uint8_t kDeltaEscape = 0xff;  // delta ≥ 255 → escape + u16 delta
}

AerRaster aer_encode(const data::SpikeRaster& raster) {
  R4NCL_CHECK(raster.channels < 0x10000, "AER channel field is u16");
  AerRaster out;
  out.timesteps = static_cast<std::uint32_t>(raster.timesteps);
  out.channels = static_cast<std::uint32_t>(raster.channels);
  std::size_t prev_t = 0;
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    for (std::size_t c = 0; c < raster.channels; ++c) {
      if (raster.bits[t * raster.channels + c] == 0) continue;
      std::size_t delta = t - prev_t;
      while (delta >= kDeltaEscape) {
        // Escape: emit 0xff + u16 chunk of the delta (handles long silences).
        out.payload.push_back(kDeltaEscape);
        const std::uint16_t chunk =
            delta > 0xffff ? 0xffff : static_cast<std::uint16_t>(delta);
        out.payload.push_back(static_cast<std::uint8_t>(chunk & 0xff));
        out.payload.push_back(static_cast<std::uint8_t>(chunk >> 8));
        delta -= chunk;
      }
      out.payload.push_back(static_cast<std::uint8_t>(delta));
      out.payload.push_back(static_cast<std::uint8_t>(c & 0xff));
      out.payload.push_back(static_cast<std::uint8_t>(c >> 8));
      prev_t = t;
      ++out.num_events;
    }
  }
  return out;
}

void aer_visit(const AerRaster& aer,
               const std::function<void(std::size_t t, std::size_t channel)>& visit) {
  std::size_t t = 0;
  std::size_t i = 0;
  std::uint32_t decoded = 0;
  while (i < aer.payload.size()) {
    std::size_t delta = 0;
    while (aer.payload[i] == kDeltaEscape) {
      R4NCL_CHECK(i + 2 < aer.payload.size(), "truncated AER escape");
      delta += static_cast<std::size_t>(aer.payload[i + 1]) |
               (static_cast<std::size_t>(aer.payload[i + 2]) << 8);
      i += 3;
      R4NCL_CHECK(i < aer.payload.size(), "truncated AER stream");
    }
    delta += aer.payload[i];
    ++i;
    R4NCL_CHECK(i + 1 < aer.payload.size(), "truncated AER channel");
    const std::size_t c = static_cast<std::size_t>(aer.payload[i]) |
                          (static_cast<std::size_t>(aer.payload[i + 1]) << 8);
    i += 2;
    t += delta;
    R4NCL_CHECK(t < aer.timesteps && c < aer.channels, "AER event out of bounds");
    visit(t, c);
    ++decoded;
  }
  R4NCL_CHECK(decoded == aer.num_events, "AER event count mismatch");
}

data::SpikeRaster aer_decode(const AerRaster& aer) {
  data::SpikeRaster out(aer.timesteps, aer.channels);
  aer_visit(aer, [&out](std::size_t t, std::size_t c) { out.bits[t * out.channels + c] = 1; });
  return out;
}

void aer_decode_into(const AerRaster& aer, data::SpikeRaster& out) {
  out.timesteps = aer.timesteps;
  out.channels = aer.channels;
  out.bits.assign(static_cast<std::size_t>(aer.timesteps) * aer.channels, 0);
  aer_visit(aer, [&out](std::size_t t, std::size_t c) { out.bits[t * out.channels + c] = 1; });
}

BatchEventList events_from_batch(const Tensor& x) {
  R4NCL_CHECK(x.rank() == 3, "events_from_batch needs a (T × B × C) cube");
  BatchEventList out;
  out.timesteps = x.dim(0);
  out.batch = x.dim(1);
  out.channels = x.dim(2);
  const std::size_t rows = out.timesteps * out.batch;
  out.offsets.resize(rows + 1);
  const float* p = x.raw();
  const std::size_t C = out.channels;
  // Rows come out t-major and each row's channels ascending, the order the
  // bit-identity contract requires.  Each (t, b) row is independent, so both
  // passes parallelise over rows with disjoint writes — the result is
  // byte-identical at any thread count.
  // Pass 1: count the active channels of each row (and whether any value
  // departs from 1.0f), then CSR offsets by exclusive prefix sum.
  std::vector<std::uint32_t> counts(rows);
  std::vector<std::uint8_t> non_unit(rows, 0);
  parallel_for(
      0, rows,
      [&](std::size_t r) {
        const float* row = p + r * C;
        std::uint32_t n = 0;
        std::uint32_t nu = 0;
        // Branch-free so the loop vectorizes (this pass touches every
        // element of the cube — it must run at memory speed).
        for (std::size_t c = 0; c < C; ++c) {
          const float v = row[c];
          n += v != 0.0f ? 1u : 0u;
          nu += (v != 0.0f && v != 1.0f) ? 1u : 0u;
        }
        counts[r] = n;
        non_unit[r] = nu != 0 ? 1 : 0;
      },
      C);
  std::uint32_t cursor = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    out.offsets[r] = cursor;
    cursor += counts[r];
    if (non_unit[r] != 0) out.unit_values = false;
  }
  out.offsets[rows] = cursor;
  // Pass 2: fill — every row writes its own [offsets[r], offsets[r+1]) range.
  out.channel.resize(cursor);
  out.value.resize(cursor);
  parallel_for(
      0, rows,
      [&](std::size_t r) {
        const float* row = p + r * C;
        std::uint32_t w = out.offsets[r];
        // Quad-skip: spike rows are mostly zero, so test four elements per
        // branch and only fall into the per-element loop on a live quad.
        std::size_t c = 0;
        for (; c + 4 <= C; c += 4) {
          if (row[c] == 0.0f && row[c + 1] == 0.0f && row[c + 2] == 0.0f &&
              row[c + 3] == 0.0f) {
            continue;
          }
          for (std::size_t q = c; q < c + 4; ++q) {
            const float v = row[q];
            if (v == 0.0f) continue;
            out.channel[w] = static_cast<std::uint32_t>(q);
            out.value[w] = v;
            ++w;
          }
        }
        for (; c < C; ++c) {
          const float v = row[c];
          if (v == 0.0f) continue;
          out.channel[w] = static_cast<std::uint32_t>(c);
          out.value[w] = v;
          ++w;
        }
      },
      C);
  return out;
}

BatchEventList events_from_aer(std::span<const AerRaster> samples) {
  BatchEventList out;
  if (samples.empty()) return out;
  out.timesteps = samples[0].timesteps;
  out.batch = samples.size();
  out.channels = samples[0].channels;
  const std::size_t rows = out.timesteps * out.batch;
  // Pass 1: events per (t, b) row → CSR offsets by exclusive prefix sum.
  std::vector<std::uint32_t> counts(rows, 0);
  for (std::size_t b = 0; b < samples.size(); ++b) {
    const AerRaster& aer = samples[b];
    R4NCL_CHECK(aer.timesteps == out.timesteps && aer.channels == out.channels,
                "AER batch samples must share geometry");
    aer_visit(aer, [&](std::size_t t, std::size_t) { ++counts[t * out.batch + b]; });
  }
  out.offsets.resize(rows + 1);
  std::uint32_t cursor = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    out.offsets[r] = cursor;
    cursor += counts[r];
  }
  out.offsets[rows] = cursor;
  out.channel.resize(cursor);
  out.value.assign(cursor, 1.0f);  // AER events are binary spikes
  // Pass 2: fill.  aer_visit yields (t, c) sorted ascending, so each row's
  // channels land ascending too.
  std::vector<std::uint32_t> fill(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t b = 0; b < samples.size(); ++b) {
    aer_visit(samples[b], [&](std::size_t t, std::size_t c) {
      out.channel[fill[t * out.batch + b]++] = static_cast<std::uint32_t>(c);
    });
  }
  return out;
}

std::size_t aer_bytes(const data::SpikeRaster& raster) {
  // Encoding is cheap enough to just do; kept as a function for call sites
  // that only need the size.
  return aer_encode(raster).payload_bytes();
}

bool aer_is_smaller(const data::SpikeRaster& raster) {
  return aer_bytes(raster) < pack(raster).payload_bytes();
}

}  // namespace r4ncl::compress
