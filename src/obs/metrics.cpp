#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace r4ncl::obs {

namespace {

/// Shortest-faithful double for the snapshot: %.17g round-trips every finite
/// value, so identical registry states always serialize identically.
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_quoted(std::string& out, std::string_view name) {
  // Metric names are programmer-chosen identifiers ([A-Za-z0-9._-]); anything
  // needing JSON escapes is a bug worth failing loudly on at export time.
  for (const char c : name) {
    R4NCL_CHECK(c >= 0x20 && c != '"' && c != '\\',
                "metric name contains a character that needs JSON escaping");
  }
  out += '"';
  out += name;
  out += '"';
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name), RegistryKey{}, &armed_).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name), RegistryKey{}, &armed_).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::span<const double> edges) {
  R4NCL_CHECK(!edges.empty(), "histogram '" << name << "' needs at least one bucket edge");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    R4NCL_CHECK(edges[i - 1] < edges[i],
                "histogram '" << name << "' edges must be strictly increasing");
  }
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), RegistryKey{}, &armed_, edges).first;
    return it->second;
  }
  const std::span<const double> fixed = it->second.edges();
  const bool same = fixed.size() == edges.size() &&
                    std::equal(fixed.begin(), fixed.end(), edges.begin());
  R4NCL_CHECK(same, "histogram '" << name
                                  << "' re-registered with different bucket edges");
  return it->second;
}

void MetricsRegistry::reset_values() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string MetricsRegistry::snapshot_json() const {
  MutexLock lock(mu_);
  std::string out;
  out += "{\n  \"schema\": \"r4ncl-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value());
    out += ": ";
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    out += json_number(g.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": {\"edges\": [";
    const std::span<const double> edges = h.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i <= edges.size(); ++i) {
      if (i != 0) out += ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, h.bucket_count(i));
      out += buf;
    }
    out += "], \"sum\": ";
    out += json_number(h.sum());
    out += ", \"count\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
    out += buf;
    out += "}";
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

MetricsRegistry& metrics() {
  // Process-lifetime telemetry sink.  Observation-only by contract: nothing
  // in src/ reads a metric back into a computation, so the hidden cross-run
  // state the linter guards against cannot affect any result (pinned by the
  // enabled≡disabled bit-identity tests in tests/test_obs.cpp).
  // r4ncl-lint: allow(static-local) process-wide telemetry registry is write-only from product code and exported at exit; it can never feed back into results
  static MetricsRegistry registry;
  return registry;
}

void write_snapshot(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  R4NCL_CHECK(out.good(), "cannot open metrics_out path '" << path << "' for writing");
  out << registry.snapshot_json() << "\n";
  out.flush();
  R4NCL_CHECK(out.good(), "failed writing metrics snapshot to '" << path << "'");
}

}  // namespace r4ncl::obs
