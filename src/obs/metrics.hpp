// Runtime observability: one telemetry surface for the whole process.
//
// Every layer that used to keep private stats (BatchPipeline stall clocks,
// per-buffer eviction counters, bench-local stopwatches) publishes into a
// MetricsRegistry instead: named monotonic Counters, last-write-wins Gauges,
// and fixed-bucket Histograms, exported as one deterministic JSON snapshot
// (`write_snapshot`, stable key order).  The fleet question "where is the
// time and memory going?" becomes a single registry read.
//
// Contracts, pinned by tests/test_obs.cpp:
//  - Observation-only: metrics never feed back into any computation, so a
//    metrics-enabled run is bit-identical to a disabled one (checked across
//    policy × shards × replay_stream).
//  - Counter values are deterministic across identical runs.  Timer-fed
//    histograms/gauges carry wall-clock and are exempt — their *counts* are
//    still deterministic, only sums vary.
//  - Disarmed cost is one relaxed atomic load per event site (the registry
//    starts disarmed, so instrumented hot paths stay within the PR 8 bench
//    envelope); armed counters/gauges are single relaxed atomic RMWs.
//
// Threading: registration (name → handle) takes the registry's single
// r4ncl::Mutex; handles are stable for the registry's lifetime and their
// value updates are lock-free atomics, so concurrent increments from fleet
// threads never contend on the registry lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace r4ncl::obs {

class MetricsRegistry;

/// Passkey: metric handles are constructible only by MetricsRegistry (their
/// constructors run inside std::map's allocator, where a private constructor
/// plus friendship cannot reach), so the key type itself is the gate.
class RegistryKey {
  friend class MetricsRegistry;
  RegistryKey() = default;
};

/// Monotonic event counter.  add() is a relaxed atomic RMW when the owning
/// registry is armed and a no-op otherwise.
class Counter {
 public:
  Counter(RegistryKey, const std::atomic<bool>* armed) noexcept : armed_(armed) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    if (!armed_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* armed_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (occupancy bytes, configured
/// capacity).  Writers race by design; the snapshot reports whichever write
/// landed last.
class Gauge {
 public:
  Gauge(RegistryKey, const std::atomic<bool>* armed) noexcept : armed_(armed) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!armed_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* armed_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `edges` are strictly increasing upper bounds, and
/// bucket i counts values v with v <= edges[i] (first matching edge); one
/// implicit overflow bucket catches the rest.  Bucket counts, the value sum
/// and the observation count are all relaxed atomics, so record() never
/// takes a lock.
class Histogram {
 public:
  Histogram(RegistryKey, const std::atomic<bool>* armed, std::span<const double> edges)
      : armed_(armed), edges_(edges.begin(), edges.end()), counts_(edges.size() + 1) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v) noexcept {
    if (!armed_->load(std::memory_order_relaxed)) return;
    counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // CAS loop instead of atomic<double>::fetch_add keeps the module off the
    // optional C++20 atomic-float library feature.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  /// Index of the bucket `v` lands in (edges.size() = the overflow bucket).
  /// Exposed so tests can pin the edge semantics exactly.
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept {
    std::size_t lo = 0;
    std::size_t hi = edges_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (v <= edges_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  [[nodiscard]] std::span<const double> edges() const noexcept { return edges_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

  const std::atomic<bool>* armed_;
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // edges_.size() + 1 buckets
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Default edges for latency histograms: 1 µs .. 10 s in decades, seconds.
inline constexpr double kLatencyEdgesSeconds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                                  1e-2, 1e-1, 1.0,  10.0};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Arms (or disarms) value collection.  Registration works either way;
  /// while disarmed every add()/set()/record() is a no-op, which is what
  /// makes enabled vs disabled runs bit-identical *and* cheap.
  void set_armed(bool on) noexcept { armed_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Gates TraceSpan (and other explicitly span-shaped) timing: with trace
  /// off, spans skip their clock reads entirely while plain counters/gauges
  /// keep collecting.  Defaults on; meaningful only while armed.
  void set_trace(bool on) noexcept { trace_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool trace_armed() const noexcept {
    return armed() && trace_.load(std::memory_order_relaxed);
  }

  /// Handle registration: returns the named metric, creating it on first
  /// use.  Handles are stable references for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name) R4NCL_EXCLUDES(mu_);
  [[nodiscard]] Gauge& gauge(std::string_view name) R4NCL_EXCLUDES(mu_);
  /// First registration fixes the bucket edges (strictly increasing,
  /// non-empty); a later lookup with different edges throws Error — two
  /// subsystems silently sharing a name with different buckets would corrupt
  /// both views.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> edges) R4NCL_EXCLUDES(mu_);

  /// Zeroes every registered value, keeping the registrations (and the
  /// handles other subsystems already hold) alive.  Lets tests compare two
  /// identical runs against one process-wide registry.
  void reset_values() R4NCL_EXCLUDES(mu_);

  /// Deterministic JSON snapshot: one object with "schema", then "counters",
  /// "gauges", "histograms" sub-objects, each sorted by metric name.  See
  /// tools/check_bench.py::check_metrics_snapshot for the gated schema.
  [[nodiscard]] std::string snapshot_json() const R4NCL_EXCLUDES(mu_);

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> trace_{true};
  mutable Mutex mu_;
  // std::map keeps node addresses stable across inserts (handle lifetime)
  // and iterates in sorted key order (deterministic snapshot).
  std::map<std::string, Counter, std::less<>> counters_ R4NCL_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ R4NCL_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_ R4NCL_GUARDED_BY(mu_);
};

/// The process-wide default registry every instrumented subsystem publishes
/// into.  Starts disarmed; `metrics_out=` / `trace=` (core::init_metrics) or
/// a direct set_armed() call turn collection on.
[[nodiscard]] MetricsRegistry& metrics();

/// Writes `registry.snapshot_json()` (plus a trailing newline) to `path`,
/// throwing Error on I/O failure.
void write_snapshot(const MetricsRegistry& registry, const std::string& path);

/// RAII scoped timer: records the enclosing scope's wall time into a
/// latency histogram at destruction.  The clock is read only when tracing
/// was armed at construction, so disarmed spans cost two relaxed loads.
class TraceSpan {
 public:
  /// Looks `name` up in `reg` (default latency edges) when tracing is armed.
  TraceSpan(MetricsRegistry& reg, std::string_view name)
      : hist_(reg.trace_armed() ? &reg.histogram(name, kLatencyEdgesSeconds) : nullptr) {}

  /// Pre-registered-handle form for call sites that keep their histogram.
  TraceSpan(MetricsRegistry& reg, Histogram& hist) noexcept
      : hist_(reg.trace_armed() ? &hist : nullptr) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (hist_ != nullptr) hist_->record(watch_.elapsed_seconds());
  }

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

}  // namespace r4ncl::obs
