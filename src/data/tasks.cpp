#include "data/tasks.hpp"

#include <set>

#include "util/error.hpp"

namespace r4ncl::data {

ClassIncrementalTasks build_class_incremental(const SyntheticShdGenerator& generator,
                                              const TaskSplitParams& params) {
  const auto& gp = generator.params();
  R4NCL_CHECK(params.new_class >= 0 &&
                  static_cast<std::size_t>(params.new_class) < gp.classes,
              "new_class out of range");
  R4NCL_CHECK(params.replay_per_class <= params.train_per_class,
              "replay subset cannot exceed the training set");

  ClassIncrementalTasks tasks;
  tasks.new_class = params.new_class;
  for (std::size_t k = 0; k < gp.classes; ++k) {
    const auto label = static_cast<std::int32_t>(k);
    if (label != params.new_class) tasks.old_classes.push_back(label);
  }

  const std::int32_t new_class[] = {params.new_class};
  tasks.pretrain_train =
      generator.make_dataset(tasks.old_classes, params.train_per_class, params.seed);
  tasks.pretrain_test =
      generator.make_dataset(tasks.old_classes, params.test_per_class, params.seed + 1);
  tasks.new_train = generator.make_dataset(new_class, params.train_per_class, params.seed + 2);
  tasks.new_test = generator.make_dataset(new_class, params.test_per_class, params.seed + 3);
  // TS_replay ⊆ TS_pre: reuse stored pre-training samples (first per class),
  // exactly what a deployed system would have kept on device.
  tasks.replay_subset =
      take_per_class(tasks.pretrain_train, tasks.old_classes, params.replay_per_class);
  return tasks;
}

SequentialTasks build_sequential_tasks(const SyntheticShdGenerator& generator,
                                       const TaskSplitParams& params,
                                       std::size_t num_tasks) {
  const auto& gp = generator.params();
  R4NCL_CHECK(num_tasks >= 1 && num_tasks < gp.classes,
              "num_tasks " << num_tasks << " out of range for " << gp.classes << " classes");
  R4NCL_CHECK(params.replay_per_class <= params.train_per_class,
              "replay subset cannot exceed the training set");

  SequentialTasks tasks;
  const std::size_t base_count = gp.classes - num_tasks;
  for (std::size_t k = 0; k < gp.classes; ++k) {
    const auto label = static_cast<std::int32_t>(k);
    if (k < base_count) {
      tasks.base_classes.push_back(label);
    } else {
      tasks.task_classes.push_back(label);
    }
  }

  tasks.pretrain_train =
      generator.make_dataset(tasks.base_classes, params.train_per_class, params.seed);
  tasks.pretrain_test =
      generator.make_dataset(tasks.base_classes, params.test_per_class, params.seed + 1);
  tasks.replay_subset =
      take_per_class(tasks.pretrain_train, tasks.base_classes, params.replay_per_class);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const std::int32_t cls[] = {tasks.task_classes[i]};
    tasks.task_train.push_back(
        generator.make_dataset(cls, params.train_per_class, params.seed + 100 + i));
    tasks.task_test.push_back(
        generator.make_dataset(cls, params.test_per_class, params.seed + 200 + i));
  }
  return tasks;
}

double fraction_with_labels(const Dataset& dataset, std::span<const std::int32_t> classes) {
  if (dataset.empty()) return 0.0;
  const std::set<std::int32_t> keep(classes.begin(), classes.end());
  std::size_t hits = 0;
  for (const auto& s : dataset) {
    if (keep.contains(s.label)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.size());
}

}  // namespace r4ncl::data
