#include "data/shd_synth.hpp"

#include <cmath>

#include "util/error.hpp"

namespace r4ncl::data {

SyntheticShdGenerator::SyntheticShdGenerator(const ShdSynthParams& params) : params_(params) {
  R4NCL_CHECK(params_.classes > 0 && params_.channels > 0 && params_.timesteps > 0,
              "degenerate dataset geometry");
  R4NCL_CHECK(params_.ridges_per_class > 0, "need at least one ridge per class");
  Rng proto_rng(params_.seed);
  const double T = static_cast<double>(params_.timesteps);
  const double C = static_cast<double>(params_.channels);

  // Shared channel-position pool: the same frequency bands are excited by
  // every class, so class identity must be read from ridge *timing*.
  std::vector<double> pool(static_cast<std::size_t>(std::max(1, params_.position_pool)));
  for (auto& p : pool) p = proto_rng.uniform(0.08 * C, 0.92 * C);

  prototypes_.resize(params_.classes);
  for (std::size_t k = 0; k < params_.classes; ++k) {
    Rng rng = proto_rng.fork();
    auto& ridges = prototypes_[k];
    ridges.reserve(static_cast<std::size_t>(params_.ridges_per_class));
    // Stagger ridge onsets across the sequence so each class is a temporal
    // *pattern* (an ordering of band activations), not a static set.
    for (int r = 0; r < params_.ridges_per_class; ++r) {
      Ridge ridge;
      if (rng.uniform() < params_.shared_position_fraction) {
        ridge.start_channel = pool[rng.uniform_index(pool.size())];
      } else {
        ridge.start_channel = rng.uniform(0.05 * C, 0.95 * C);
      }
      ridge.velocity = rng.uniform(-3.0, 3.0);
      // Onset inside the r-th quarter of the sequence → class-specific order.
      const double slot = T / static_cast<double>(params_.ridges_per_class);
      const double on = slot * static_cast<double>(r) + rng.uniform(0.0, 0.6 * slot);
      const double dur = rng.uniform(0.6 * slot, 1.6 * slot);
      ridge.t_on = on;
      ridge.t_off = std::min(T, on + dur);
      ridge.rate_scale = rng.uniform(0.65, 1.0);
      ridges.push_back(ridge);
    }
  }
}

const std::vector<Ridge>& SyntheticShdGenerator::class_prototype(std::int32_t class_id) const {
  R4NCL_CHECK(class_id >= 0 && static_cast<std::size_t>(class_id) < params_.classes,
              "class " << class_id << " out of range");
  return prototypes_[static_cast<std::size_t>(class_id)];
}

double SyntheticShdGenerator::class_rate(std::int32_t class_id, double t,
                                         double channel) const {
  const auto& ridges = class_prototype(class_id);
  double rate = params_.background_rate;
  const double inv_two_sigma2 = 1.0 / (2.0 * params_.ridge_width * params_.ridge_width);
  for (const Ridge& ridge : ridges) {
    if (t < ridge.t_on || t > ridge.t_off) continue;
    const double centre = ridge.start_channel + ridge.velocity * (t - ridge.t_on);
    const double d = channel - centre;
    rate += params_.ridge_peak_rate * ridge.rate_scale * std::exp(-d * d * inv_two_sigma2);
  }
  return rate > 1.0 ? 1.0 : rate;
}

Sample SyntheticShdGenerator::make_sample(std::int32_t class_id, Rng& rng) const {
  const auto& ridges = class_prototype(class_id);
  Sample sample;
  sample.label = class_id;
  sample.raster = SpikeRaster(params_.timesteps, params_.channels);

  // Per-sample deformations: shared across ridges so the whole "utterance"
  // shifts coherently, as a speaker/speed change would.
  const double dt = rng.normal(0.0, params_.time_jitter);
  const double dc = rng.normal(0.0, params_.channel_jitter);
  const double rate_mult = std::max(0.2, 1.0 + rng.normal(0.0, params_.rate_jitter));

  const double inv_two_sigma2 = 1.0 / (2.0 * params_.ridge_width * params_.ridge_width);
  for (std::size_t t = 0; t < params_.timesteps; ++t) {
    const double tt = static_cast<double>(t) - dt;
    // Precompute active ridge centres at this timestep.
    for (std::size_t c = 0; c < params_.channels; ++c) {
      double rate = params_.background_rate;
      for (const Ridge& ridge : ridges) {
        if (tt < ridge.t_on || tt > ridge.t_off) continue;
        const double centre = ridge.start_channel + dc + ridge.velocity * (tt - ridge.t_on);
        const double d = static_cast<double>(c) - centre;
        // Cheap reject: beyond 4σ the contribution is negligible.
        if (std::fabs(d) > 4.0 * params_.ridge_width) continue;
        rate += rate_mult * params_.ridge_peak_rate * ridge.rate_scale *
                std::exp(-d * d * inv_two_sigma2);
      }
      if (rate > 0.0 && rng.bernoulli(rate)) {
        sample.raster.bits[t * params_.channels + c] = 1;
      }
    }
  }
  return sample;
}

Dataset SyntheticShdGenerator::make_dataset(std::size_t per_class, std::uint64_t seed) const {
  std::vector<std::int32_t> all(params_.classes);
  for (std::size_t k = 0; k < params_.classes; ++k) all[k] = static_cast<std::int32_t>(k);
  return make_dataset(all, per_class, seed);
}

Dataset SyntheticShdGenerator::make_dataset(std::span<const std::int32_t> classes,
                                            std::size_t per_class,
                                            std::uint64_t seed) const {
  Dataset out;
  out.reserve(classes.size() * per_class);
  Rng root(seed);
  for (std::int32_t k : classes) {
    // Each (class, seed) pair gets its own stream so adding classes does not
    // perturb the samples of existing ones.
    Rng class_rng(root() ^ (0x9e37u + static_cast<std::uint64_t>(k) * 0x85ebca6bULL));
    for (std::size_t i = 0; i < per_class; ++i) {
      out.push_back(make_sample(k, class_rng));
    }
  }
  return out;
}

}  // namespace r4ncl::data
