// Class-incremental task protocol (paper Sec. IV).
//
// The SNN is pre-trained on 19 of the 20 classes; the 20th class arrives as
// the continual-learning task.  This header builds the train/test splits for
// both phases plus the replay subset drawn from the pre-training data
// (TS_replay ⊆ TS_pre in Alg. 1).
#pragma once

#include <cstdint>

#include "data/shd_synth.hpp"
#include "data/spike_data.hpp"

namespace r4ncl::data {

/// Sizing of the class-incremental experiment.
struct TaskSplitParams {
  std::size_t train_per_class = 12;
  std::size_t test_per_class = 8;
  /// Replay samples kept per old class (TS_replay).
  std::size_t replay_per_class = 4;
  /// The held-out class learned during the CL phase.
  std::int32_t new_class = 19;
  std::uint64_t seed = 1234;
};

/// Materialised class-incremental scenario.
struct ClassIncrementalTasks {
  /// Classes seen during pre-training (all but new_class).
  std::vector<std::int32_t> old_classes;
  std::int32_t new_class = 19;

  Dataset pretrain_train;  // TS_pre
  Dataset pretrain_test;   // old-task evaluation set
  Dataset replay_subset;   // TS_replay ⊆ TS_pre
  Dataset new_train;       // TS_cl
  Dataset new_test;        // new-task evaluation set
};

/// Draws the full scenario from the generator.  Train/test/replay sets use
/// independent seeds derived from params.seed.
ClassIncrementalTasks build_class_incremental(const SyntheticShdGenerator& generator,
                                              const TaskSplitParams& params);

/// Top-1 accuracy bookkeeping helper: fraction of samples in `dataset`
/// whose label is in `classes` (sanity checks for split construction).
double fraction_with_labels(const Dataset& dataset, std::span<const std::int32_t> classes);

/// Multi-task class-incremental scenario: several held-out classes arrive
/// one at a time (the paper's single 20th-class experiment generalised to a
/// task stream — its natural deployment setting for mobile agents).
struct SequentialTasks {
  std::vector<std::int32_t> base_classes;  // pre-training classes
  std::vector<std::int32_t> task_classes;  // arriving classes, in order

  Dataset pretrain_train;
  Dataset pretrain_test;
  Dataset replay_subset;              // TS_replay of the base classes
  std::vector<Dataset> task_train;    // one per arriving class
  std::vector<Dataset> task_test;
};

/// Builds a stream of `num_tasks` classes: the highest-numbered classes are
/// held out and arrive in ascending order; the rest form the base.
SequentialTasks build_sequential_tasks(const SyntheticShdGenerator& generator,
                                       const TaskSplitParams& params,
                                       std::size_t num_tasks);

}  // namespace r4ncl::data
