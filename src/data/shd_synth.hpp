// Synthetic Spiking-Heidelberg-Digits-like dataset generator.
//
// The real SHD dataset (Cramer et al., 2020) encodes spoken digits through a
// cochlea model into 700 spike channels over ~1 s.  Its salient structure is
// a handful of *formant-like ridges*: contiguous channel bands whose centre
// drifts over time, class-identified by where the ridges start, how fast they
// drift and when they are active.
//
// This generator reproduces exactly that structure synthetically (the real
// files are unavailable offline; see DESIGN.md §2): each class owns a seeded
// set of channel–time Gaussian ridges; samples draw Bernoulli spikes from the
// class rate field with per-sample temporal jitter, channel offset and rate
// variation, plus uniform background noise.  The result is a 20-class,
// 700-channel, 100-timestep event dataset that (a) a recurrent SNN can learn,
// (b) degrades under timestep reduction the same way real event data does,
// and (c) exercises every code path of the replay methodology.
#pragma once

#include <cstdint>
#include <vector>

#include "data/spike_data.hpp"
#include "util/rng.hpp"

namespace r4ncl::data {

/// Generator parameters.  Defaults mirror the SHD geometry used by the paper
/// (700 channels, 20 classes, 100 native timesteps).
///
/// Classes are *temporally* coded by default: ridge channel positions come
/// from a pool shared across classes (so channel identity alone cannot
/// separate classes), while onset times, durations, drift velocities and the
/// ridge order are class-specific.  This mirrors spoken digits through a
/// cochleagram — all digits excite similar frequency bands; *when* and *how*
/// the bands move carries the word — and it is what makes timestep reduction
/// genuinely lossy (paper Sec. III-A).
struct ShdSynthParams {
  std::size_t channels = 700;
  std::size_t classes = 20;
  std::size_t timesteps = 100;
  /// Ridges (formant trajectories) per class.
  int ridges_per_class = 4;
  /// Size of the shared channel-position pool.
  int position_pool = 10;
  /// Fraction of ridges whose centre comes from the shared pool (the rest
  /// are class-specific positions).  1.0 = fully temporally coded.
  double shared_position_fraction = 1.0;
  /// Gaussian channel width of a ridge.
  double ridge_width = 22.0;
  /// Peak Bernoulli spike rate at a ridge centre.
  double ridge_peak_rate = 0.40;
  /// Background (noise) spike rate per cell.
  double background_rate = 0.008;
  /// Std-dev of per-sample temporal jitter, in timesteps.
  double time_jitter = 2.5;
  /// Std-dev of per-sample channel offset.
  double channel_jitter = 8.0;
  /// Std-dev of per-sample multiplicative rate variation.
  double rate_jitter = 0.12;
  /// Seed defining the class prototypes (ridge layouts).
  std::uint64_t seed = 42;
};

/// One formant-like ridge of a class prototype.
struct Ridge {
  double start_channel = 0.0;  // centre channel at t_on
  double velocity = 0.0;       // channels per timestep (may be negative)
  double t_on = 0.0;           // activation window start (timesteps)
  double t_off = 0.0;          // activation window end
  double rate_scale = 1.0;     // relative intensity of this ridge
};

/// Deterministic synthetic SHD generator.  Prototypes are fixed by the seed;
/// sample-level randomness comes from the Rng passed to make_sample, so a
/// dataset is fully reproducible from (params, dataset seed).
class SyntheticShdGenerator {
 public:
  explicit SyntheticShdGenerator(const ShdSynthParams& params);

  [[nodiscard]] const ShdSynthParams& params() const noexcept { return params_; }

  /// Ridge prototypes of one class (exposed for tests/inspection).
  [[nodiscard]] const std::vector<Ridge>& class_prototype(std::int32_t class_id) const;

  /// Spike rate (Bernoulli probability) of the class field at (t, channel),
  /// before per-sample jitter.  In [0, 1].
  [[nodiscard]] double class_rate(std::int32_t class_id, double t, double channel) const;

  /// Draws one sample of the given class.
  [[nodiscard]] Sample make_sample(std::int32_t class_id, Rng& rng) const;

  /// Draws `per_class` samples of every class in [0, classes); sample order is
  /// class-major.  `seed` controls the draw (independent of prototype seed).
  [[nodiscard]] Dataset make_dataset(std::size_t per_class, std::uint64_t seed) const;

  /// Draws `per_class` samples of the listed classes only.
  [[nodiscard]] Dataset make_dataset(std::span<const std::int32_t> classes,
                                     std::size_t per_class, std::uint64_t seed) const;

 private:
  ShdSynthParams params_;
  std::vector<std::vector<Ridge>> prototypes_;  // [class][ridge]
};

}  // namespace r4ncl::data
