#include "data/spike_data.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

#include "util/error.hpp"

namespace r4ncl::data {

namespace {
std::atomic<std::uint64_t> g_batch_allocations{0};
}  // namespace

bool ensure_batch_shape(Tensor& batch, std::size_t timesteps, std::size_t batch_count,
                        std::size_t channels) {
  if (batch.rank() == 3 && batch.dim(0) == timesteps && batch.dim(1) == batch_count &&
      batch.dim(2) == channels) {
    return false;
  }
  batch = Tensor(timesteps, batch_count, channels);
  g_batch_allocations.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t batch_tensor_allocations() noexcept {
  return g_batch_allocations.load(std::memory_order_relaxed);
}

std::size_t SpikeRaster::spike_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : bits) n += b;
  return n;
}

double SpikeRaster::density() const noexcept {
  return bits.empty() ? 0.0
                      : static_cast<double>(spike_count()) / static_cast<double>(bits.size());
}

SpikeRaster time_rescale(const SpikeRaster& raster, std::size_t new_timesteps,
                         TimeRescaleMethod method) {
  R4NCL_CHECK(new_timesteps > 0, "new_timesteps must be positive");
  if (new_timesteps == raster.timesteps) return raster;
  SpikeRaster out(new_timesteps, raster.channels);
  const std::size_t T = raster.timesteps;
  for (std::size_t tn = 0; tn < new_timesteps; ++tn) {
    // Source bin [lo, hi) for target step tn; uses exact integer arithmetic so
    // all source steps are covered with no overlap.
    const std::size_t lo = tn * T / new_timesteps;
    std::size_t hi = (tn + 1) * T / new_timesteps;
    if (hi <= lo) hi = lo + 1;
    if (method == TimeRescaleMethod::kSubsample) {
      // Representative step = first of the bin (matches the paper's Fig. 7
      // decompression convention of placing spikes at group starts).
      const std::size_t src = std::min(lo, T - 1);
      for (std::size_t c = 0; c < raster.channels; ++c) {
        out.bits[tn * out.channels + c] = raster.bits[src * raster.channels + c];
      }
    } else {
      for (std::size_t t = lo; t < hi && t < T; ++t) {
        for (std::size_t c = 0; c < raster.channels; ++c) {
          out.bits[tn * out.channels + c] |= raster.bits[t * raster.channels + c];
        }
      }
    }
  }
  return out;
}

Dataset time_rescale(const Dataset& dataset, std::size_t new_timesteps,
                     TimeRescaleMethod method) {
  Dataset out;
  out.reserve(dataset.size());
  for (const auto& s : dataset) {
    out.push_back({time_rescale(s.raster, new_timesteps, method), s.label});
  }
  return out;
}

Tensor make_batch(const Dataset& dataset, std::span<const std::size_t> indices) {
  R4NCL_CHECK(!indices.empty(), "empty batch");
  const SpikeRaster& first = dataset.at(indices[0]).raster;
  Tensor batch(first.timesteps, indices.size(), first.channels);
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const SpikeRaster& r = dataset.at(indices[b]).raster;
    R4NCL_CHECK(r.timesteps == first.timesteps && r.channels == first.channels,
                "raster shape mismatch inside batch");
    fill_batch_column(batch, b, r);
  }
  return batch;
}

void fill_batch_column(Tensor& batch, std::size_t b, const SpikeRaster& raster) {
  R4NCL_CHECK(batch.rank() == 3, "batch must be a (T x B x C) cube");
  R4NCL_CHECK(raster.timesteps == batch.dim(0) && b < batch.dim(1) &&
                  raster.channels == batch.dim(2),
              "raster " << raster.timesteps << "x" << raster.channels
                        << " does not fit batch column " << b);
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    for (std::size_t c = 0; c < raster.channels; ++c) {
      batch(t, b, c) = static_cast<float>(raster.bits[t * raster.channels + c]);
    }
  }
}

std::vector<std::int32_t> batch_labels(const Dataset& dataset,
                                       std::span<const std::size_t> indices) {
  std::vector<std::int32_t> labels;
  labels.reserve(indices.size());
  for (std::size_t idx : indices) labels.push_back(dataset.at(idx).label);
  return labels;
}

Tensor raster_to_batch(const SpikeRaster& raster) {
  Tensor batch(raster.timesteps, 1, raster.channels);
  for (std::size_t t = 0; t < raster.timesteps; ++t) {
    for (std::size_t c = 0; c < raster.channels; ++c) {
      batch(t, 0, c) = static_cast<float>(raster.bits[t * raster.channels + c]);
    }
  }
  return batch;
}

SpikeRaster batch_to_raster(const Tensor& batch, std::size_t batch_index) {
  R4NCL_CHECK(batch.rank() == 3, "batch must be (T × B × C)");
  R4NCL_CHECK(batch_index < batch.dim(1), "batch index out of range");
  SpikeRaster r(batch.dim(0), batch.dim(2));
  for (std::size_t t = 0; t < r.timesteps; ++t) {
    for (std::size_t c = 0; c < r.channels; ++c) {
      r.bits[t * r.channels + c] = batch(t, batch_index, c) > 0.5f ? 1 : 0;
    }
  }
  return r;
}

Dataset filter_classes(const Dataset& dataset, std::span<const std::int32_t> classes) {
  const std::set<std::int32_t> keep(classes.begin(), classes.end());
  Dataset out;
  for (const auto& s : dataset) {
    if (keep.contains(s.label)) out.push_back(s);
  }
  return out;
}

Dataset take_per_class(const Dataset& dataset, std::span<const std::int32_t> classes,
                       std::size_t per_class) {
  const std::set<std::int32_t> keep(classes.begin(), classes.end());
  std::map<std::int32_t, std::size_t> taken;
  Dataset out;
  for (const auto& s : dataset) {
    if (!keep.contains(s.label)) continue;
    if (taken[s.label] >= per_class) continue;
    ++taken[s.label];
    out.push_back(s);
  }
  return out;
}

std::vector<std::int32_t> classes_of(const Dataset& dataset) {
  std::set<std::int32_t> seen;
  for (const auto& s : dataset) seen.insert(s.label);
  return {seen.begin(), seen.end()};
}

}  // namespace r4ncl::data
