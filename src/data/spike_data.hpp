// Binary spike rasters and labelled spike datasets.
//
// A raster is a (timesteps × channels) 0/1 grid — the lingua franca between
// the dataset generator, the compression codec, the latent-replay buffer and
// the SNN training stack (which consumes rasters as float batches).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace r4ncl::data {

/// Dense binary spike raster (row-major: time outer, channel inner).
struct SpikeRaster {
  std::size_t timesteps = 0;
  std::size_t channels = 0;
  /// bits[t * channels + c] ∈ {0, 1}.
  std::vector<std::uint8_t> bits;

  SpikeRaster() = default;
  SpikeRaster(std::size_t t, std::size_t c) : timesteps(t), channels(c), bits(t * c, 0) {}

  [[nodiscard]] std::uint8_t at(std::size_t t, std::size_t c) const {
    return bits[t * channels + c];
  }
  void set(std::size_t t, std::size_t c, bool v) {
    bits[t * channels + c] = v ? 1 : 0;
  }

  /// Total number of spikes.
  [[nodiscard]] std::size_t spike_count() const noexcept;

  /// Spikes per (timestep × channel) cell, in [0, 1].
  [[nodiscard]] double density() const noexcept;

  [[nodiscard]] bool operator==(const SpikeRaster& other) const = default;
};

/// One labelled example.
struct Sample {
  SpikeRaster raster;
  std::int32_t label = 0;
};

/// A dataset is a flat list of samples (order matters only for batching).
using Dataset = std::vector<Sample>;

/// How to map a raster onto a different number of timesteps.
enum class TimeRescaleMethod {
  kGroupOr,    // OR over each source bin group — preserves every spike burst
  kSubsample,  // keep one representative source step per target step
};

/// Re-bins `raster` onto `new_timesteps` steps.  Used to run the continual-
/// learning phase at a reduced timestep (paper Sec. III-A): target step t*
/// covers source steps [t*·T/T*, (t*+1)·T/T*).
SpikeRaster time_rescale(const SpikeRaster& raster, std::size_t new_timesteps,
                         TimeRescaleMethod method = TimeRescaleMethod::kGroupOr);

/// Rescales every sample of a dataset.
Dataset time_rescale(const Dataset& dataset, std::size_t new_timesteps,
                     TimeRescaleMethod method = TimeRescaleMethod::kGroupOr);

/// Builds the (T × B × channels) float batch consumed by the SNN stack from
/// the given sample indices.  All selected samples must share raster shape.
Tensor make_batch(const Dataset& dataset, std::span<const std::size_t> indices);

/// Writes `raster` into column `b` of a (T × B × channels) float batch —
/// the single-sample building block make_batch() and the streaming trainer
/// path assemble batches from, so both produce bit-identical tensors.
void fill_batch_column(Tensor& batch, std::size_t b, const SpikeRaster& raster);

/// Makes `batch` a (timesteps × batch_count × channels) cube, reusing its
/// storage when the shape already matches (fill_batch_column overwrites every
/// cell of a column, so stale contents cannot leak through).  Returns true
/// when a fresh allocation was made; every allocation also bumps
/// batch_tensor_allocations() so tests can pin the hot path's scratch reuse.
bool ensure_batch_shape(Tensor& batch, std::size_t timesteps, std::size_t batch_count,
                        std::size_t channels);

/// Process-wide count of batch-scratch tensor (re)allocations made through
/// ensure_batch_shape() — the trainer's allocation-regression probe.
std::uint64_t batch_tensor_allocations() noexcept;

/// Labels of the given samples, in order.
std::vector<std::int32_t> batch_labels(const Dataset& dataset,
                                       std::span<const std::size_t> indices);

/// Converts a single raster to a (T × 1 × channels) batch.
Tensor raster_to_batch(const SpikeRaster& raster);

/// Converts one batch entry back to a binary raster (values > 0.5 → spike).
SpikeRaster batch_to_raster(const Tensor& batch, std::size_t batch_index);

/// Keeps only samples whose label is in `classes`.
Dataset filter_classes(const Dataset& dataset, std::span<const std::int32_t> classes);

/// Selects up to `per_class` samples of each listed class (deterministic:
/// first occurrences in dataset order).
Dataset take_per_class(const Dataset& dataset, std::span<const std::int32_t> classes,
                       std::size_t per_class);

/// Classes present in the dataset, sorted ascending.
std::vector<std::int32_t> classes_of(const Dataset& dataset);

}  // namespace r4ncl::data
