#include "tensor/tensor.hpp"

namespace r4ncl {

void Tensor::fill_normal(Rng& rng, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

}  // namespace r4ncl
