#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace r4ncl {

namespace kernels {

void matmul(const float* a, std::size_t m, std::size_t k, const float* b, std::size_t n,
            float* c, bool accumulate) {
  parallel_for(
      0, m,
      [&](std::size_t i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        if (!accumulate) std::fill(crow, crow + n, 0.0f);
        // i-k-j order: unit stride on B and C lets the compiler vectorise the
        // inner loop; zero A entries (no spike event) are skipped entirely.
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      k * n);
}

void matmul_at_b_accum(const float* a, std::size_t m, std::size_t k, const float* b,
                       std::size_t n, float* c) {
  parallel_for(
      0, k,
      [&](std::size_t kk) {
        float* crow = c + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
          const float av = a[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = b + i * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      m * n);
}

void matmul_a_bt(const float* a, std::size_t m, std::size_t n, const float* b, std::size_t k,
                 float* c, bool accumulate) {
  parallel_for(
      0, m,
      [&](std::size_t i) {
        const float* arow = a + i * n;
        float* crow = c + i * k;
        for (std::size_t j = 0; j < k; ++j) {
          const float* brow = b + j * n;
          float acc = 0.0f;
          for (std::size_t t = 0; t < n; ++t) acc += arow[t] * brow[t];
          crow[j] = accumulate ? crow[j] + acc : acc;
        }
      },
      n * k);
}

std::size_t count_nonzero(const float* v, std::size_t n) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += v[i] != 0.0f ? 1 : 0;
  return count;
}

}  // namespace kernels

namespace {
void check_2d(const Tensor& t, const char* name) {
  R4NCL_CHECK(t.rank() == 2, name << " must be 2-D, rank=" << t.rank());
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "a");
  check_2d(b, "b");
  check_2d(c, "c");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  R4NCL_CHECK(b.rows() == k,
              "inner dims: a is " << m << "x" << k << ", b has " << b.rows() << " rows");
  R4NCL_CHECK(c.rows() == m && c.cols() == n, "c shape mismatch");
  kernels::matmul(a.raw(), m, k, b.raw(), n, c.raw(), accumulate);
}

void matmul_at_b_accum(const Tensor& a, const Tensor& b, Tensor& c) {
  check_2d(a, "a");
  check_2d(b, "b");
  check_2d(c, "c");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  R4NCL_CHECK(b.rows() == m, "a and b must share rows");
  R4NCL_CHECK(c.rows() == k && c.cols() == n, "c shape mismatch");
  kernels::matmul_at_b_accum(a.raw(), m, k, b.raw(), n, c.raw());
}

void matmul_a_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_2d(a, "a");
  check_2d(b, "b");
  check_2d(c, "c");
  const std::size_t m = a.rows(), n = a.cols(), k = b.rows();
  R4NCL_CHECK(b.cols() == n, "a and b must share cols");
  R4NCL_CHECK(c.rows() == m && c.cols() == k, "c shape mismatch");
  kernels::matmul_a_bt(a.raw(), m, n, b.raw(), k, c.raw(), accumulate);
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  R4NCL_CHECK(x.same_shape(y), "axpy shape mismatch");
  const float* xs = x.raw();
  float* ys = y.raw();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void hadamard(const Tensor& a, const Tensor& b, Tensor& y) {
  R4NCL_CHECK(a.same_shape(b) && a.same_shape(y), "hadamard shape mismatch");
  const float* as = a.raw();
  const float* bs = b.raw();
  float* ys = y.raw();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] = as[i] * bs[i];
}

double sum(const Tensor& t) noexcept {
  double acc = 0.0;
  for (float v : t.values()) acc += v;
  return acc;
}

double mean(const Tensor& t) noexcept {
  return t.empty() ? 0.0 : sum(t) / static_cast<double>(t.size());
}

float max_abs(const Tensor& t) noexcept {
  float best = 0.0f;
  for (float v : t.values()) best = std::max(best, std::abs(v));
  return best;
}

void clip_inplace(Tensor& t, float bound) noexcept {
  for (auto& v : t.values()) v = std::clamp(v, -bound, bound);
}

double softmax_cross_entropy(const Tensor& logits, std::span<const std::int32_t> labels,
                             Tensor* grad) {
  check_2d(logits, "logits");
  const std::size_t batch = logits.rows(), classes = logits.cols();
  R4NCL_CHECK(labels.size() == batch, "labels size " << labels.size() << " != batch " << batch);
  if (grad != nullptr) {
    R4NCL_CHECK(grad->same_shape(logits), "grad shape mismatch");
  }
  double total = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.row_ptr(i);
    const std::int32_t label = labels[i];
    R4NCL_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes,
                "label " << label << " out of range " << classes);
    float mx = row[0];
    for (std::size_t j = 1; j < classes; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < classes; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[static_cast<std::size_t>(label)] - mx) - log_denom);
    if (grad != nullptr) {
      float* grow = grad->row_ptr(i);
      for (std::size_t j = 0; j < classes; ++j) {
        const double p = std::exp(static_cast<double>(row[j] - mx)) / denom;
        grow[j] = static_cast<float>(p * inv_batch);
      }
      grow[static_cast<std::size_t>(label)] -= static_cast<float>(inv_batch);
    }
  }
  return total * inv_batch;
}

std::vector<std::int32_t> argmax_rows(const Tensor& t) {
  R4NCL_CHECK(t.rank() == 2, "argmax_rows requires a 2-D tensor");
  std::vector<std::int32_t> out(t.rows());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const float* row = t.row_ptr(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < t.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<std::int32_t>(best);
  }
  return out;
}

}  // namespace r4ncl
