// Dense kernels for the SNN forward/backward passes.
//
// Conventions: activations are (batch × features) matrices; weight matrices
// are (in_features × out_features) so the forward pass is Y = X · W.  The two
// transpose variants cover the BPTT gradient terms:
//   dW += Xᵀ · dY   (matmul_at_b_accum)
//   dX  = dY · Wᵀ   (matmul_a_bt)
// Kernels parallelise over output rows via parallel_for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace r4ncl {

namespace kernels {

// Raw row-major kernels — the Tensor overloads below wrap these, and the SNN
// layer calls them directly on (batch × features) slabs of 3-D spike cubes.

/// c[m×n] = a[m×k] · b[k×n]; accumulates when `accumulate`.
void matmul(const float* a, std::size_t m, std::size_t k, const float* b, std::size_t n,
            float* c, bool accumulate);

/// c[k×n] += aᵀ[k×m] · b[m×n] (a given as m×k).
void matmul_at_b_accum(const float* a, std::size_t m, std::size_t k, const float* b,
                       std::size_t n, float* c);

/// c[m×k] = a[m×n] · bᵀ[n×k] (b given as k×n); accumulates when `accumulate`.
void matmul_a_bt(const float* a, std::size_t m, std::size_t n, const float* b, std::size_t k,
                 float* c, bool accumulate);

/// Number of non-zero entries in a float span (spike events).
std::size_t count_nonzero(const float* v, std::size_t n) noexcept;

}  // namespace kernels

/// C = A·B (A: m×k, B: k×n, C: m×n).  When accumulate is true, C += A·B.
void matmul(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// C += Aᵀ·B (A: m×k, B: m×n, C: k×n).  Always accumulates — this is the
/// weight-gradient kernel, summed over timesteps.
void matmul_at_b_accum(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A·Bᵀ (A: m×n, B: k×n, C: m×k).  When accumulate is true, C += A·Bᵀ.
void matmul_a_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// y += alpha * x (elementwise over equally-shaped tensors).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// Elementwise y = a ⊙ b.
void hadamard(const Tensor& a, const Tensor& b, Tensor& y);

/// Sum of all elements.
double sum(const Tensor& t) noexcept;

/// Mean of all elements (0 for empty tensors).
double mean(const Tensor& t) noexcept;

/// Maximum absolute element (0 for empty tensors).
float max_abs(const Tensor& t) noexcept;

/// Clips every element into [-bound, bound]; used for gradient clipping.
void clip_inplace(Tensor& t, float bound) noexcept;

/// Row-wise softmax + cross-entropy against integer labels.
/// logits: (batch × classes); labels: one per row.
/// Returns mean loss; when grad is non-null, writes d(mean loss)/d(logits).
double softmax_cross_entropy(const Tensor& logits, std::span<const std::int32_t> labels,
                             Tensor* grad);

/// Row-wise argmax of a (batch × classes) tensor.
std::vector<std::int32_t> argmax_rows(const Tensor& t);

}  // namespace r4ncl
