// Dense row-major float tensor.
//
// This is deliberately a small, concrete value type (C++ Core Guidelines C.10):
// the SNN stack only needs 2-D matrices (batch × features, weights) and 3-D
// spike cubes (time × batch × features); everything else lives in free
// functions in ops.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace r4ncl {

/// Row-major float tensor with up to three dimensions.
class Tensor {
 public:
  Tensor() = default;

  /// 1-D constructor (vector of length n, zero-initialised).
  explicit Tensor(std::size_t n) : shape_{n}, data_(n, 0.0f) {}
  /// 2-D constructor (rows × cols, zero-initialised).
  Tensor(std::size_t rows, std::size_t cols) : shape_{rows, cols}, data_(rows * cols, 0.0f) {}
  /// 3-D constructor (d0 × d1 × d2, zero-initialised).
  Tensor(std::size_t d0, std::size_t d1, std::size_t d2)
      : shape_{d0, d1, d2}, data_(d0 * d1 * d2, 0.0f) {}

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Dimension i; throws when out of range.
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    R4NCL_CHECK(i < shape_.size(), "dim " << i << " out of rank " << shape_.size());
    return shape_[i];
  }

  /// Rows/cols accessors for the common 2-D case.
  [[nodiscard]] std::size_t rows() const { return dim(0); }
  [[nodiscard]] std::size_t cols() const {
    R4NCL_CHECK(rank() == 2, "cols() requires a 2-D tensor, rank=" << rank());
    return shape_[1];
  }

  // Element access.  The 2-D/3-D overloads are bounds-checked in debug-style
  // via R4NCL_CHECK only on the rank (per-index checks would dominate the
  // inner loops); kernels use raw spans.
  float& operator()(std::size_t i) { return data_[i]; }
  float operator()(std::size_t i) const { return data_[i]; }
  float& operator()(std::size_t i, std::size_t j) { return data_[i * shape_[1] + j]; }
  float operator()(std::size_t i, std::size_t j) const { return data_[i * shape_[1] + j]; }
  float& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  [[nodiscard]] std::span<float> values() noexcept { return data_; }
  [[nodiscard]] std::span<const float> values() const noexcept { return data_; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  /// Pointer to row i of a 2-D tensor.
  [[nodiscard]] float* row_ptr(std::size_t i) { return data_.data() + i * shape_[1]; }
  [[nodiscard]] const float* row_ptr(std::size_t i) const { return data_.data() + i * shape_[1]; }

  /// Slice [t] of a 3-D tensor viewed as a (d1 × d2) matrix span.
  [[nodiscard]] std::span<float> slab(std::size_t t) {
    return {data_.data() + t * shape_[1] * shape_[2], shape_[1] * shape_[2]};
  }
  [[nodiscard]] std::span<const float> slab(std::size_t t) const {
    return {data_.data() + t * shape_[1] * shape_[2], shape_[1] * shape_[2]};
  }

  /// Sets all elements to v.
  void fill(float v) noexcept {
    for (auto& x : data_) x = v;
  }

  /// Sets all elements to zero.
  void zero() noexcept { fill(0.0f); }

  /// Fills with N(0, stddev²) draws.
  void fill_normal(Rng& rng, float stddev);

  /// Fills with U(lo, hi) draws.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// True when shapes match exactly.
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace r4ncl
