#include "metrics/cost_model.hpp"

namespace r4ncl::metrics {

double EnergyModel::energy_uj(const snn::SpikeOpStats& stats) const noexcept {
  const double pj = static_cast<double>(stats.synops) * params_.synop_pj +
                    static_cast<double>(stats.neuron_updates) * params_.neuron_update_pj +
                    static_cast<double>(stats.spikes) * params_.spike_pj +
                    static_cast<double>(stats.backward_synops) * params_.backward_op_pj +
                    static_cast<double>(stats.decompress_bits) * params_.decompress_bit_pj +
                    static_cast<double>(stats.timestep_slots) * params_.timestep_slot_pj;
  return pj * 1e-6;  // pJ → µJ
}

double LatencyModel::latency_ms(const snn::SpikeOpStats& stats) const noexcept {
  const double ns = static_cast<double>(stats.synops) * params_.synop_ns +
                    static_cast<double>(stats.neuron_updates) * params_.neuron_update_ns +
                    static_cast<double>(stats.spikes) * params_.spike_ns +
                    static_cast<double>(stats.backward_synops) * params_.backward_op_ns +
                    static_cast<double>(stats.decompress_bits) * params_.decompress_bit_ns +
                    static_cast<double>(stats.timestep_slots) * params_.timestep_slot_ns;
  return ns * 1e-6;  // ns → ms
}

}  // namespace r4ncl::metrics
