// Event-driven latency and energy models.
//
// The paper reports *normalized* latency and energy measured on a GPU; this
// repo substitutes an event-driven neuromorphic cost model in the style used
// throughout the embedded-SNN literature (SpikeDyn, TopSpark, FSpiNN):
//
//   energy  = synops·E_syn + updates·E_upd + spikes·E_spk
//           + backward_ops·E_bwd + decompress_bits·E_bit + slots·E_step
//   latency = the same linear form with per-op times, i.e. a sequential
//             timestep-by-timestep execution.
//
// Only *ratios* between methods enter the reproduced figures, and those
// ratios are driven by timestep counts, spike counts and codec work — the
// quantities the paper's own savings derive from.  Default constants are
// Loihi-class per-op costs (Davies et al., IEEE Micro 2018, order-of-
// magnitude); wall-clock seconds are additionally recorded by the trainers.
#pragma once

#include "snn/layer.hpp"

namespace r4ncl::metrics {

/// Per-op energy constants in picojoules.
struct EnergyModelParams {
  double synop_pj = 23.6;        // per synaptic event delivered
  double neuron_update_pj = 81.0;  // per membrane update per timestep
  double spike_pj = 1.8;         // per emitted spike
  double backward_op_pj = 4.6;   // per dense gradient MAC (training)
  double decompress_bit_pj = 0.9;  // codec work per payload bit
  double timestep_slot_pj = 120.0; // per (layer × timestep × sample) overhead
};

/// Per-op latency constants in nanoseconds (sequential execution model).
struct LatencyModelParams {
  double synop_ns = 3.2;
  double neuron_update_ns = 5.5;
  double spike_ns = 0.0;           // spike emission folded into the update
  double backward_op_ns = 0.55;
  double decompress_bit_ns = 0.4;
  double timestep_slot_ns = 90.0;
};

/// Converts SpikeOpStats into microjoules.
class EnergyModel {
 public:
  explicit EnergyModel(const EnergyModelParams& params = {}) : params_(params) {}
  [[nodiscard]] double energy_uj(const snn::SpikeOpStats& stats) const noexcept;
  [[nodiscard]] const EnergyModelParams& params() const noexcept { return params_; }

 private:
  EnergyModelParams params_;
};

/// Converts SpikeOpStats into milliseconds of modelled processing time.
class LatencyModel {
 public:
  explicit LatencyModel(const LatencyModelParams& params = {}) : params_(params) {}
  [[nodiscard]] double latency_ms(const snn::SpikeOpStats& stats) const noexcept;
  [[nodiscard]] const LatencyModelParams& params() const noexcept { return params_; }

 private:
  LatencyModelParams params_;
};

}  // namespace r4ncl::metrics
