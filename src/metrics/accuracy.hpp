// Task-level accuracy bookkeeping for the class-incremental scenario.
#pragma once

#include "data/tasks.hpp"
#include "snn/trainer.hpp"

namespace r4ncl::metrics {

/// Old-task / new-task Top-1 accuracies at one evaluation point.
struct TaskAccuracy {
  double old_tasks = 0.0;
  double new_task = 0.0;
};

/// Evaluation conditions: the deployed configuration of a method (its
/// timestep setting and threshold policy) must also be used at test time.
struct EvalSettings {
  std::size_t timesteps = 100;  // test rasters are rescaled to this
  data::TimeRescaleMethod rescale = data::TimeRescaleMethod::kGroupOr;
  snn::ThresholdPolicy policy = snn::ThresholdPolicy::fixed(1.0f);
  std::size_t batch_size = 32;
};

/// Evaluates the network on both task test sets under the given settings.
TaskAccuracy evaluate_tasks(const snn::SnnNetwork& net,
                            const data::ClassIncrementalTasks& tasks,
                            const EvalSettings& settings);

/// Forgetting = best old-task accuracy seen so far − current old-task
/// accuracy (the standard continual-learning forgetting measure).
class ForgettingTracker {
 public:
  /// Records an old-task accuracy; returns current forgetting.
  double update(double old_task_accuracy) noexcept;

  [[nodiscard]] double best() const noexcept { return best_; }
  [[nodiscard]] double forgetting() const noexcept { return forgetting_; }

 private:
  double best_ = 0.0;
  double forgetting_ = 0.0;
};

}  // namespace r4ncl::metrics
