#include "metrics/hw_mapper.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace r4ncl::metrics {

namespace {

/// Places one layer of `neurons` cells with `fan_in` inputs each.
LayerPlacement place_layer(std::size_t layer, std::size_t neurons, std::size_t fan_in,
                           const ChipBudget& budget) {
  LayerPlacement p;
  p.layer = layer;
  p.neurons = neurons;
  p.fan_in = fan_in;
  // Neuron-count constraint.
  std::uint32_t cores = static_cast<std::uint32_t>(
      (neurons + budget.neurons_per_core - 1) / budget.neurons_per_core);
  // Synapse-memory constraint: each neuron stores fan_in synapses locally.
  const std::uint64_t bits_per_neuron =
      static_cast<std::uint64_t>(fan_in) * budget.bits_per_synapse;
  if (bits_per_neuron > 0) {
    const std::uint64_t neurons_by_mem =
        std::max<std::uint64_t>(1, budget.synapse_bits_per_core / bits_per_neuron);
    const auto cores_by_mem = static_cast<std::uint32_t>(
        (neurons + neurons_by_mem - 1) / neurons_by_mem);
    cores = std::max(cores, cores_by_mem);
  }
  p.cores_used = std::max<std::uint32_t>(1, cores);
  const std::size_t neurons_per_used_core =
      (neurons + p.cores_used - 1) / p.cores_used;
  p.synapse_fill =
      static_cast<double>(neurons_per_used_core * bits_per_neuron) /
      static_cast<double>(budget.synapse_bits_per_core);
  return p;
}

}  // namespace

MappingResult map_network(const snn::SnnNetwork& net, std::uint64_t latent_bytes,
                          const ChipBudget& budget) {
  R4NCL_CHECK(budget.cores > 0 && budget.neurons_per_core > 0, "degenerate chip budget");
  MappingResult result;
  result.latent_bytes = latent_bytes;

  for (std::size_t l = 0; l < net.num_hidden(); ++l) {
    const auto& layer = net.hidden(l);
    const std::size_t fan_in =
        layer.n_in() + (layer.lif().recurrent ? layer.n_out() : 0);
    result.layers.push_back(place_layer(l, layer.n_out(), fan_in, budget));
  }
  result.layers.push_back(place_layer(net.num_hidden(), net.num_classes(),
                                      net.readout().n_in(), budget));

  result.total_cores = 0;
  result.fits_synapses = true;
  for (const auto& p : result.layers) {
    result.total_cores += p.cores_used;
    if (p.synapse_fill > 1.0) result.fits_synapses = false;
  }
  result.fits_cores = result.total_cores <= budget.cores;
  result.latent_fits_sram = latent_bytes <= budget.shared_sram_bytes;
  result.core_utilisation =
      static_cast<double>(result.total_cores) / static_cast<double>(budget.cores);
  return result;
}

}  // namespace r4ncl::metrics
