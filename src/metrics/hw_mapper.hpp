// Neuromorphic hardware mapping estimate.
//
// The paper targets "tightly-constrained embedded AI systems"; this module
// answers the deployment question the evaluation implies: does the network —
// and, for replay methods, the latent buffer — fit a Loihi-class neuromorphic
// chip, and how many cores does it occupy?
//
// Model (per Davies et al., IEEE Micro 2018, order-of-magnitude): a chip is a
// grid of cores; each core hosts up to `neurons_per_core` neurons and
// `synapse_bits_per_core` bits of synaptic state; a shared SRAM pool can hold
// the latent-replay buffer.  Layers are mapped greedily, splitting a layer
// across ⌈neurons/limit⌉ cores; each core replica stores the full fan-in of
// its neurons (weights are per-target-neuron local).
#pragma once

#include <cstdint>
#include <vector>

#include "snn/network.hpp"

namespace r4ncl::metrics {

/// Chip resource budget (defaults ≈ one Loihi chip).
struct ChipBudget {
  std::uint32_t cores = 128;
  std::uint32_t neurons_per_core = 1024;
  /// Synaptic memory per core, in bits (Loihi: 128 KB/core).
  std::uint64_t synapse_bits_per_core = 128ull * 1024 * 8;
  /// Bits per stored synapse (weight + routing overhead).
  std::uint32_t bits_per_synapse = 9;
  /// Shared on-chip SRAM available for the latent-replay buffer, bytes.
  std::uint64_t shared_sram_bytes = 512ull * 1024;
};

/// Mapping of one layer onto cores.
struct LayerPlacement {
  std::size_t layer = 0;        // hidden index; num_hidden() = readout
  std::size_t neurons = 0;
  std::size_t fan_in = 0;       // feedforward + recurrent inputs per neuron
  std::uint32_t cores_used = 0;
  double synapse_fill = 0.0;    // worst-core synaptic memory utilisation
};

/// Whole-network + buffer mapping result.
struct MappingResult {
  std::vector<LayerPlacement> layers;
  std::uint32_t total_cores = 0;
  bool fits_cores = false;        // total_cores <= budget.cores
  bool fits_synapses = false;     // every core's synapse memory suffices
  bool latent_fits_sram = false;  // buffer bytes <= shared_sram_bytes
  std::uint64_t latent_bytes = 0;
  /// Fraction of the chip's cores occupied.
  double core_utilisation = 0.0;
};

/// Maps `net` (plus a latent buffer of `latent_bytes`) onto `budget`.
MappingResult map_network(const snn::SnnNetwork& net, std::uint64_t latent_bytes,
                          const ChipBudget& budget = {});

}  // namespace r4ncl::metrics
