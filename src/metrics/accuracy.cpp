#include "metrics/accuracy.hpp"

namespace r4ncl::metrics {

TaskAccuracy evaluate_tasks(const snn::SnnNetwork& net,
                            const data::ClassIncrementalTasks& tasks,
                            const EvalSettings& settings) {
  TaskAccuracy acc;
  const data::Dataset old_test =
      data::time_rescale(tasks.pretrain_test, settings.timesteps, settings.rescale);
  const data::Dataset new_test =
      data::time_rescale(tasks.new_test, settings.timesteps, settings.rescale);
  acc.old_tasks = snn::evaluate(net, old_test, 0, settings.policy, settings.batch_size);
  acc.new_task = snn::evaluate(net, new_test, 0, settings.policy, settings.batch_size);
  return acc;
}

double ForgettingTracker::update(double old_task_accuracy) noexcept {
  if (old_task_accuracy > best_) best_ = old_task_accuracy;
  forgetting_ = best_ - old_task_accuracy;
  return forgetting_;
}

}  // namespace r4ncl::metrics
