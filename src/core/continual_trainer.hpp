// The continual-learning engine implementing Alg. 1 for every method.
//
// Phases (Alg. 1):
//   1. Network preparation — split the pre-trained network at the LR
//      insertion layer; run the frozen prefix over TS_replay (under the
//      method's threshold policy and timestep setting) and store the
//      resulting latent activations, codec-compressed, in the replay buffer.
//   2. NCL training — per epoch: regenerate A_new = frozen-prefix inference
//      of TS_cl (line 23), decompress A_LR from the buffer, and train the
//      learning layers on the shuffled union A_new ∪ A_LR with the method's
//      η_cl and threshold policy (lines 24–32).
//
// All modelled latency/energy is charged from the actual event counts of the
// work performed (frozen inference, decompression, forward/backward of the
// learning layers); evaluation passes are never charged.
#pragma once

#include <cstdint>
#include <vector>

#include "core/latent_buffer.hpp"
#include "core/method_config.hpp"
#include "data/tasks.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/cost_model.hpp"
#include "snn/trainer.hpp"

namespace r4ncl::core {

/// One continual-learning run = (method, insertion layer, epochs).
struct ClRunConfig {
  NclMethodConfig method;
  /// LR insertion layer j ∈ [0, num_hidden]; hidden layers < j are frozen.
  std::size_t insertion_layer = 3;
  std::size_t epochs = 50;
  /// Evaluate old/new accuracy every k epochs (1 = every epoch); the final
  /// epoch is always evaluated.
  std::size_t eval_every = 1;
  std::uint64_t seed = 2024;
  metrics::EnergyModelParams energy_params{};
  metrics::LatencyModelParams latency_params{};
  bool verbose = false;
};

/// Per-epoch result row (the series plotted in Figs. 8, 11, 13).
struct ClEpochRow {
  std::size_t epoch = 0;
  double loss = 0.0;
  /// Top-1 accuracies (−1 when this epoch was not evaluated).
  double acc_old = -1.0;
  double acc_new = -1.0;
  /// Modelled cost of this epoch's training work.
  double latency_ms = 0.0;
  double energy_uj = 0.0;
  double wall_seconds = 0.0;
  snn::SpikeOpStats stats;
};

/// Complete result of a continual-learning run.
struct ClRunResult {
  std::string method_name;
  std::size_t insertion_layer = 0;
  std::vector<ClEpochRow> rows;
  /// Latent-memory footprint of the replay buffer (Fig. 12).
  std::size_t latent_memory_bytes = 0;
  /// Cost of the one-time preparation phase (latent generation).
  snn::SpikeOpStats prep_stats;
  double prep_latency_ms = 0.0;
  double prep_energy_uj = 0.0;
  /// Final accuracies (last evaluated epoch).
  double final_acc_old = 0.0;
  double final_acc_new = 0.0;
  double total_wall_seconds = 0.0;

  /// Sum of per-epoch modelled training latency (ms) / energy (µJ),
  /// including the preparation phase.
  [[nodiscard]] double total_latency_ms() const noexcept;
  [[nodiscard]] double total_energy_uj() const noexcept;
};

/// Runs one continual-learning scenario on a *copy*-modifiable network.
/// The network must already be pre-trained on the old classes; it is mutated
/// in place (clone it first to compare methods from the same checkpoint).
ClRunResult run_continual_learning(snn::SnnNetwork& net,
                                   const data::ClassIncrementalTasks& tasks,
                                   const ClRunConfig& config);

}  // namespace r4ncl::core
