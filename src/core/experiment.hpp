// Canonical experiment setup shared by benches, examples and integration
// tests: the paper's network/dataset geometry with a single scale knob so the
// full suite runs on small machines.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/continual_trainer.hpp"
#include "core/pretrain.hpp"
#include "util/config.hpp"

namespace r4ncl::core {

/// Builds the paper-faithful pre-training configuration.
///
/// `scale` ∈ (0, 1] shrinks the *sample counts* (never the architecture or
/// timesteps): scale = 1 uses 12 train / 8 test / 4 replay samples per class.
/// Values are floored at 4/4/2 so every class stays represented.
PretrainConfig standard_pretrain_config(double scale = 1.0);

/// Reads the common bench knobs from `cfg` (CLI "key=value" tokens and
/// R4NCL_* environment variables) and applies them:
///   scale (double), pretrain_epochs, threads, log — returns the resulting
///   pretrain configuration.
PretrainConfig pretrain_config_from(const Config& cfg);

/// Shared bench boilerplate: init threads/logging from the environment, then
/// build (or load) the pre-trained scenario honouring `cfg`.
PretrainedScenario standard_scenario(const Config& cfg);

/// The two comparison methods as run by every bench.
///
/// bench_replay4ncl() applies one documented adaptation of Alg. 1 to the
/// repo-scale dataset: the paper's η_cl = η_pre/100 assumes SHD-sized epochs
/// (hundreds of optimizer steps); our synthetic scenario runs ~6 steps per
/// epoch, so the same *total* update magnitude requires η_cl = η_pre/5.  The
/// paper-exact divisor stays available via NclMethodConfig::replay4ncl() and
/// is exercised by the adjustment-ablation bench.
NclMethodConfig bench_replay4ncl(std::size_t timesteps = 40);
NclMethodConfig bench_spiking_lr();

/// Applies the replay-budget CLI knobs to a method config:
///   budget=<bytes>          replay-buffer byte budget (0 = unbounded)
///   policy=<name>           fifo | reservoir | class_balanced |
///                           low_importance | importance_class_balanced
///   budget_schedule=<spec>  per-task budget evolution: const |
///                           linear:<start>:<end> | step:<task>:<bytes>
///   replay_samples=<k>      per-epoch sample(k) draw (0 = full materialize)
///   latent_bits=<b>         stored payload depth: 0 = legacy binary,
///                           1/2/4/8 = quantized group counts
///   replay_stream=<0|1>     stream the per-epoch draw through a
///                           ReplayStream fused into batch assembly
///   prefetch=<0|1>          decode the next training minibatch on a
///                           background thread while the current one trains
///                           (bit-identical either way)
///   threads=<n>             worker count the run engines assert at run
///                           start (0 = leave the process setting; also
///                           applied globally by standard_scenario)
///   replay_seed=<n>         the buffer's private eviction-stream seed
///   importance_feedback=<0|1>  feed per-sample replay errors back into the
///                           importance scores (importance policies only)
///   shards=<n>              replay-store shard count (ShardedReplayEngine;
///                           1 = bit-identical single-buffer behaviour)
///   shard_by=<class|hash>   shard routing key for adds
/// Keys absent from `cfg` (and the R4NCL_* environment) leave the method's
/// own defaults untouched.  Every value validates eagerly with a pinned
/// message naming the valid set — negative bytes/counts/seeds, policy
/// typos and malformed schedules all throw before any training runs.
void apply_replay_overrides(NclMethodConfig& method, const Config& cfg);

/// Reads the checkpoint/resume CLI knobs:
///   checkpoint=<path>        write a checkpoint at every cadence boundary
///   resume=<path>            restore a prior checkpoint before any unit runs
///   checkpoint_every=<n>     save cadence in completed tasks/epochs (>= 1)
/// Validation is eager with pinned errors: checkpoint_every below 1 and a
/// cadence given without checkpoint= both throw before any training runs.
[[nodiscard]] CheckpointOptions checkpoint_options_from(const Config& cfg);

/// The CLI vocabulary every standard bench/example understands: the scenario
/// knobs read by pretrain_config_from()/standard_scenario() (scale,
/// pretrain_epochs, threads, cache, cache_dir, verbose), the shared CL epoch
/// count (epochs), and the replay knobs of apply_replay_overrides().
[[nodiscard]] std::vector<std::string_view> standard_cli_keys();

/// Rejects unrecognized CLI keys: throws Error (naming the offending key and
/// listing the valid ones) when `cfg` holds an explicitly-set key outside
/// standard_cli_keys() ∪ `extra`.  Call it right after Config::from_args so
/// a typo like `latentbits=4` fails loudly instead of silently running the
/// default configuration.
void validate_standard_keys(const Config& cfg,
                            std::initializer_list<std::string_view> extra = {});

/// One-line human summary of a CL run (final accs + totals).
std::string summarize(const ClRunResult& result);

}  // namespace r4ncl::core
