// Canonical experiment setup shared by benches, examples and integration
// tests: the paper's network/dataset geometry with a single scale knob so the
// full suite runs on small machines.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/continual_trainer.hpp"
#include "core/pretrain.hpp"
#include "util/config.hpp"

namespace r4ncl::core {

/// Builds the paper-faithful pre-training configuration.
///
/// `scale` ∈ (0, 1] shrinks the *sample counts* (never the architecture or
/// timesteps): scale = 1 uses 12 train / 8 test / 4 replay samples per class.
/// Values are floored at 4/4/2 so every class stays represented.
PretrainConfig standard_pretrain_config(double scale = 1.0);

/// Reads the common bench knobs from `cfg` (CLI "key=value" tokens and
/// R4NCL_* environment variables) and applies them:
///   scale (double), pretrain_epochs, threads, log — returns the resulting
///   pretrain configuration.
PretrainConfig pretrain_config_from(const Config& cfg);

/// Shared bench boilerplate: init threads/logging from the environment, then
/// build (or load) the pre-trained scenario honouring `cfg`.
PretrainedScenario standard_scenario(const Config& cfg);

/// The two comparison methods as run by every bench.
///
/// bench_replay4ncl() applies one documented adaptation of Alg. 1 to the
/// repo-scale dataset: the paper's η_cl = η_pre/100 assumes SHD-sized epochs
/// (hundreds of optimizer steps); our synthetic scenario runs ~6 steps per
/// epoch, so the same *total* update magnitude requires η_cl = η_pre/5.  The
/// paper-exact divisor stays available via NclMethodConfig::replay4ncl() and
/// is exercised by the adjustment-ablation bench.
NclMethodConfig bench_replay4ncl(std::size_t timesteps = 40);
NclMethodConfig bench_spiking_lr();

/// One row of the standard CLI knob table: the knob's key, its one-line help
/// text, and — for replay-method knobs — the override that parses, validates
/// and applies it to an NclMethodConfig.  Scenario, checkpoint and telemetry
/// knobs are parsed by their own readers (pretrain_config_from,
/// checkpoint_options_from, init_metrics) and carry a null `apply`.
struct CliKnob {
  std::string_view name;
  std::string_view help;
  void (*apply)(NclMethodConfig&, const Config&) = nullptr;
};

/// The declarative knob table every standard bench/example shares, sorted by
/// name.  standard_cli_keys() and apply_replay_overrides() both derive from
/// it, so a new knob registers exactly once: add a row here and it is
/// simultaneously parsed, validated and listed in unknown-key errors.
[[nodiscard]] std::span<const CliKnob> standard_cli_knobs();

/// Applies every replay-method knob in standard_cli_knobs() to `method`
/// (budget, policy, budget_schedule, replay_samples, latent_bits,
/// replay_stream, prefetch, threads, replay_seed, importance_feedback,
/// shards, shard_by — see each row's `help` for semantics).  Keys absent
/// from `cfg` (and the R4NCL_* environment) leave the method's own defaults
/// untouched.  Every value validates eagerly with a pinned message naming
/// the valid set — negative bytes/counts/seeds, policy typos and malformed
/// schedules all throw before any training runs.
void apply_replay_overrides(NclMethodConfig& method, const Config& cfg);

/// Telemetry knobs as read by init_metrics().
struct MetricsOptions {
  std::string out_path;  ///< metrics_out= destination; empty = no snapshot.
  bool trace = true;     ///< trace= — wall-clock histograms in the registry.
};

/// Reads the telemetry CLI knobs and arms the process-wide registry:
///   metrics_out=<path>  write the obs::MetricsRegistry snapshot (JSON) here
///   trace=<0|1>         include wall-clock trace histograms (default 1)
/// The registry arms only when metrics_out= or trace= is given, so plain
/// runs keep the disarmed (bit-identical, near-zero-cost) fast path.  Call
/// it once, right after Config::from_args; pass the result to
/// write_metrics_snapshot() when the run finishes.
[[nodiscard]] MetricsOptions init_metrics(const Config& cfg);

/// Writes the registry snapshot to options.out_path (no-op when empty).
void write_metrics_snapshot(const MetricsOptions& options);

/// RAII wrapper over init_metrics()/write_metrics_snapshot(): arms the
/// registry from `cfg` at construction and writes the metrics_out= snapshot
/// at scope exit — one line in an example main covers every return path.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(const Config& cfg) : options_(init_metrics(cfg)) {}
  ~ScopedMetrics() { write_metrics_snapshot(options_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsOptions options_;
};

/// Reads the checkpoint/resume CLI knobs:
///   checkpoint=<path>        write a checkpoint at every cadence boundary
///   resume=<path>            restore a prior checkpoint before any unit runs
///   checkpoint_every=<n>     save cadence in completed tasks/epochs (>= 1)
/// Validation is eager with pinned errors: checkpoint_every below 1 and a
/// cadence given without checkpoint= both throw before any training runs.
[[nodiscard]] CheckpointOptions checkpoint_options_from(const Config& cfg);

/// The CLI vocabulary every standard bench/example understands — the `name`
/// column of standard_cli_knobs(): the scenario knobs read by
/// pretrain_config_from()/standard_scenario() (scale, pretrain_epochs,
/// threads, cache, cache_dir, verbose), the shared CL epoch count (epochs),
/// the checkpoint/resume knobs, the telemetry knobs (metrics_out, trace),
/// and the replay knobs of apply_replay_overrides().
[[nodiscard]] std::vector<std::string_view> standard_cli_keys();

/// Rejects unrecognized CLI keys: throws Error (naming the offending key and
/// listing the valid ones) when `cfg` holds an explicitly-set key outside
/// standard_cli_keys() ∪ `extra`.  Call it right after Config::from_args so
/// a typo like `latentbits=4` fails loudly instead of silently running the
/// default configuration.
void validate_standard_keys(const Config& cfg,
                            std::initializer_list<std::string_view> extra = {});

/// One-line human summary of a CL run (final accs + totals).
std::string summarize(const ClRunResult& result);

}  // namespace r4ncl::core
