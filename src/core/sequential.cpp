#include "core/sequential.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "core/latent_source.hpp"
#include "core/replay_stream.hpp"
#include "core/sharded_engine.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {

namespace {

/// Frozen-prefix inference of a dataset (identity when insertion == 0).
data::Dataset to_latents(const snn::SnnNetwork& net, const data::Dataset& dataset,
                         std::size_t insertion, const snn::ThresholdPolicy& policy,
                         std::size_t batch_size, snn::SpikeOpStats* stats) {
  if (insertion == 0 || dataset.empty()) return dataset;
  data::Dataset out;
  out.reserve(dataset.size());
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t lo = 0; lo < indices.size(); lo += batch_size) {
    const std::size_t hi = std::min(indices.size(), lo + batch_size);
    const std::span<const std::size_t> idx(indices.data() + lo, hi - lo);
    const Tensor x = data::make_batch(dataset, idx);
    const Tensor latent = net.run_hidden(x, 0, insertion, policy, stats);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      out.push_back({data::batch_to_raster(latent, b), dataset[idx[b]].label});
    }
  }
  return out;
}

double accuracy_at(const snn::SnnNetwork& net, const data::Dataset& test,
                   const NclMethodConfig& method) {
  const data::Dataset rescaled =
      data::time_rescale(test, method.cl_timesteps, method.rescale);
  return snn::evaluate(net, rescaled, 0, method.policy());
}

}  // namespace

SequentialRunResult run_sequential(snn::SnnNetwork& net, const data::SequentialTasks& tasks,
                                   const SequentialRunConfig& config) {
  return run_sequential(net, tasks, config, CheckpointOptions{});
}

SequentialRunResult run_sequential(snn::SnnNetwork& net, const data::SequentialTasks& tasks,
                                   const SequentialRunConfig& config,
                                   const CheckpointOptions& ckpt) {
  const NclMethodConfig& method = config.method;
  R4NCL_CHECK(!tasks.task_classes.empty(), "no tasks to learn");
  R4NCL_CHECK(config.insertion_layer <= net.num_hidden(), "insertion layer out of range");
  R4NCL_CHECK(config.epochs_per_task > 0, "need at least one epoch per task");
  R4NCL_CHECK(ckpt.every >= 1, "checkpoint_every must be >= 1");
  if (method.threads > 0) set_num_threads(method.threads);

  const metrics::EnergyModel energy_model(config.energy_params);
  const metrics::LatencyModel latency_model(config.latency_params);
  const snn::ThresholdPolicy policy = method.policy();

  SequentialRunResult result;
  result.method_name = method.name;

  // Base-class latents seed the buffer (Alg. 1 network preparation).  An
  // active schedule binds from construction — seeding already runs under the
  // task-0 cap, exactly as in run_continual_learning, so preparation never
  // transiently exceeds the scheduled region.  The task-0 boundary
  // set_capacity below is then a no-op.
  ReplayBufferConfig run_budget = method.replay_budget.with_run_seed(config.seed);
  if (method.budget_schedule.active()) {
    run_budget.capacity_bytes = method.budget_schedule.capacity_for_task(
        0, tasks.task_classes.size(), run_budget.capacity_bytes);
  }
  // The replay store is a ShardedReplayEngine; shards=1 (the default) is
  // bit-identical to the LatentReplayBuffer this engine refactored out, so
  // unsharded runs reproduce the pre-engine results byte for byte.
  ShardedReplayEngine buffer(method.storage_codec, method.cl_timesteps, run_budget,
                             method.replay_sharding);
  const CheckpointMeta meta =
      make_checkpoint_meta(CheckpointKind::kSequential, method, config.insertion_layer,
                           config.seed, tasks.task_classes.size());
  Rng seed_rng(config.seed);
  Rng replay_rng(config.seed ^ kReplayDrawSeedSalt);
  std::size_t first_task = 0;
  if (ckpt.resuming()) {
    // A resumed run replaces the seeding phase entirely: the restored engine
    // already holds the seeded (and since-evolved) latents, the restored
    // totals already include the prep charge, and the restored rng streams
    // put every subsequent draw exactly where the killed run left it.
    const Checkpoint loaded =
        load_checkpoint(ckpt.resume_path, meta, net, nullptr, buffer);
    result.rows = loaded.seq_rows;
    result.total_latency_ms = loaded.seq_total_latency_ms;
    result.total_energy_uj = loaded.seq_total_energy_uj;
    seed_rng.restore(loaded.unit_rng);
    replay_rng.restore(loaded.replay_rng);
    first_task = static_cast<std::size_t>(loaded.meta.next_unit);
  } else {
    snn::SpikeOpStats prep_stats;
    const data::Dataset rescaled =
        data::time_rescale(tasks.replay_subset, method.cl_timesteps, method.rescale);
    for (const auto& s : to_latents(net, rescaled, config.insertion_layer, policy,
                                    method.batch_size, &prep_stats)) {
      buffer.add(s.raster, s.label);
    }
    result.total_latency_ms += latency_model.latency_ms(prep_stats);
    result.total_energy_uj += energy_model.energy_uj(prep_stats);
  }

  const bool importance_feedback =
      method.importance_feedback && is_importance_policy(method.replay_budget.policy);
  std::size_t completed_here = 0;
  for (std::size_t task = first_task; task < tasks.task_classes.size(); ++task) {
    obs::metrics().counter("core.tasks").add(1);
    obs::TraceSpan task_span(obs::metrics(), "core.task_seconds");
    SequentialTaskRow row;
    row.task_index = task;
    row.class_id = tasks.task_classes[task];
    snn::SpikeOpStats task_stats;

    // Task boundary: re-apply the byte-budget schedule before this task's CL
    // phase; a shrink re-evicts deterministically per the buffer's policy.
    // The default const schedule never calls set_capacity, so unscheduled
    // runs stay bit-identical.
    if (method.budget_schedule.active()) {
      buffer.set_capacity(method.budget_schedule.capacity_for_task(
          task, tasks.task_classes.size(), method.replay_budget.capacity_bytes));
    }

    const data::Dataset new_rescaled = data::time_rescale(
        tasks.task_train[task], method.cl_timesteps, method.rescale);

    // CL phase for this task (Alg. 1 lines 21–33 against the current buffer).
    snn::AdamOptimizer optimizer;
    for (std::size_t epoch = 0; epoch < config.epochs_per_task; ++epoch) {
      snn::TrainOptions opts;
      opts.epochs = 1;
      opts.batch_size = method.batch_size;
      opts.lr = method.lr_cl;
      opts.insertion_layer = config.insertion_layer;
      opts.policy = policy;
      opts.shuffle_seed = seed_rng();
      opts.prefetch = method.prefetch ? 1 : 0;
      std::vector<snn::EpochRecord> history;
      if (method.replay_stream) {
        // Streamed replay: same draw (same Rng stream) and same training
        // batches as the materialized branch, decoded one batch at a time.
        // New-task latents stream too: PackedLatentSet stores each latent
        // raster AER- or bit-packed and decodes into a scratch slot on
        // demand, so epoch assembly never holds either half densely.
        PackedLatentSet latents(net, new_rescaled, config.insertion_layer, policy,
                                method.batch_size, &task_stats);
        const std::size_t new_count = latents.size();
        const std::size_t draw = method.replay_samples_per_epoch > 0
                                     ? method.replay_samples_per_epoch
                                     : buffer.size();
        ReplayStream stream =
            buffer.stream(draw, replay_rng, method.batch_size, &task_stats);
        snn::SampleSource source;
        source.size = latents.size() + stream.size();
        source.fetch = [&latents, &stream,
                        n = latents.size()](std::size_t i) -> const data::Sample& {
          return i < n ? latents.fetch(i) : stream.fetch(i - n);
        };
        if (importance_feedback) {
          opts.sample_outcome = buffer.outcome_hook(stream.drawn(), new_count);
        }
        history = snn::train_supervised(net, source, optimizer, opts);
      } else {
        data::Dataset mixed = to_latents(net, new_rescaled, config.insertion_layer, policy,
                                         method.batch_size, &task_stats);
        const std::size_t new_count = mixed.size();
        std::vector<std::size_t> drawn;
        if (importance_feedback) {
          // sample_into() is sample() plus the drawn logical indices, so the
          // outcome hook can route each replay row's top-1 error back to its
          // buffer entry (identical rng consumption and charging).
          const std::size_t draw = method.replay_samples_per_epoch > 0
                                       ? method.replay_samples_per_epoch
                                       : buffer.size();
          drawn = buffer.sample_into(draw, replay_rng, mixed, &task_stats);
          opts.sample_outcome = buffer.outcome_hook(drawn, new_count);
        } else {
          data::Dataset replay =
              method.replay_samples_per_epoch > 0
                  ? buffer.sample(method.replay_samples_per_epoch, replay_rng, &task_stats)
                  : buffer.materialize(&task_stats);
          mixed.insert(mixed.end(), std::make_move_iterator(replay.begin()),
                       std::make_move_iterator(replay.end()));
        }
        history = snn::train_supervised(net, mixed, optimizer, opts);
      }
      task_stats.add(history.front().stats);
    }

    // Record the just-learned class into the buffer (on-device latents).
    {
      data::Dataset keep = data::take_per_class(
          new_rescaled, std::span<const std::int32_t>(&row.class_id, 1),
          config.replay_per_new_class);
      for (const auto& s : to_latents(net, keep, config.insertion_layer, policy,
                                      method.batch_size, &task_stats)) {
        buffer.add(s.raster, s.label);
      }
    }
    row.latent_memory_bytes = buffer.memory_bytes();
    row.budget_bytes = buffer.capacity_bytes();
    row.buffer_entries = buffer.size();
    row.buffer_evictions = buffer.evictions();
    row.latency_ms = latency_model.latency_ms(task_stats);
    row.energy_uj = energy_model.energy_uj(task_stats);
    result.total_latency_ms += row.latency_ms;
    result.total_energy_uj += row.energy_uj;

    // Evaluation: base classes + every task seen so far.
    row.acc_base = accuracy_at(net, tasks.pretrain_test, method);
    double learned_sum = 0.0;
    for (std::size_t seen = 0; seen <= task; ++seen) {
      const double acc = accuracy_at(net, tasks.task_test[seen], method);
      learned_sum += acc;
      if (seen == task) row.acc_current = acc;
    }
    row.acc_learned = learned_sum / static_cast<double>(task + 1);
    if (config.verbose) {
      R4NCL_INFO(method.name << " task " << task << " (class " << row.class_id
                             << "): base=" << row.acc_base << " learned=" << row.acc_learned
                             << " mem=" << row.latent_memory_bytes << "B");
    }
    result.rows.push_back(row);

    // Task boundary: snapshot and/or power down.  stop_after_units is the
    // kill/resume drill — force a save and return the partial result so a
    // fresh process can resume= from here and finish bit-identically.
    ++completed_here;
    const std::size_t done = task + 1;
    const bool finished = done == tasks.task_classes.size();
    const bool stopping =
        ckpt.stop_after_units > 0 && completed_here >= ckpt.stop_after_units && !finished;
    if (ckpt.saving() && (finished || stopping || done % ckpt.every == 0)) {
      Checkpoint ck;
      ck.meta = meta;
      ck.meta.next_unit = done;
      ck.unit_rng = seed_rng.state();
      ck.replay_rng = replay_rng.state();
      ck.seq_rows = result.rows;
      ck.seq_total_latency_ms = result.total_latency_ms;
      ck.seq_total_energy_uj = result.total_energy_uj;
      // Per-task Adam state dies at the boundary anyway, so nothing to save.
      save_checkpoint(ckpt.save_path, ck, net, nullptr, buffer);
    }
    if (stopping) return result;
  }
  return result;
}

}  // namespace r4ncl::core
