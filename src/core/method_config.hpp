// Method configurations for the continual-learning comparison.
//
// One struct parameterises every method evaluated in the paper:
//   * replay4ncl()    — the proposed methodology: reduced timestep (T* = 40),
//                       raw latent storage at T*, adaptive threshold,
//                       η_cl = η_pre / 100 (Sec. III).
//   * spiking_lr()    — the state of the art (Dequino et al.): T = 100,
//                       latent codec ratio 2, fixed threshold, η_cl = η_pre.
//   * spiking_lr_reduced(T) — SpikingLR with naive timestep reduction and no
//                       compensation (the Fig. 2b / Fig. 8 case study).
//   * naive_baseline() — no replay at all: plain fine-tuning on the new task
//                       (the catastrophic-forgetting baseline of Fig. 1a).
#pragma once

#include <cstdint>
#include <string>

#include "compress/spike_codec.hpp"
#include "core/latent_buffer.hpp"
#include "core/sharded_engine.hpp"
#include "data/spike_data.hpp"
#include "snn/network.hpp"

namespace r4ncl::core {

/// Pre-training learning rate shared by all methods (Alg. 1 line 2).
inline constexpr float kEtaPre = 1e-3f;

/// Everything that distinguishes one NCL method from another.
struct NclMethodConfig {
  std::string name = "method";
  /// Timesteps used for latent generation, CL training and deployment.
  std::size_t cl_timesteps = 100;
  /// Codec applied to stored latent activations (ratio 1 = raw).  Its
  /// latent_bits field selects the stored payload depth: 0 keeps the legacy
  /// binary path bit-identical, 1/2/4/8 store quantized group counts — the
  /// sub-byte knob that stretches replay_budget.capacity_bytes (Ravaglia et
  /// al.).
  compress::CodecConfig storage_codec{};
  /// CL-phase learning rate (Alg. 1: η_pre / 100 for Replay4NCL).
  float lr_cl = kEtaPre;
  /// Whether the Alg. 1 adaptive threshold controller is active.
  bool adaptive_threshold = false;
  /// Fixed threshold value / adaptive-rule base.
  float threshold_base = 1.0f;
  /// Adaptive-rule adjustment interval (Alg. 1: 5).
  int adjust_interval = 5;
  /// How input data is re-binned onto cl_timesteps.
  data::TimeRescaleMethod rescale = data::TimeRescaleMethod::kGroupOr;
  /// Latent replay on/off (off = naive fine-tuning baseline).
  bool use_replay = true;
  /// Byte budget + eviction policy of the replay buffer (capacity 0 keeps
  /// the unbounded behaviour of the paper's single-task experiment).  The
  /// run engines mix the run seed into replay_budget.seed so reservoir
  /// eviction reproduces per run.
  ReplayBufferConfig replay_budget{};
  /// Per-task evolution of replay_budget.capacity_bytes: the run engines
  /// apply capacity_for_task() at every task boundary (the single-task
  /// engine counts as a 1-task stream) and the buffer re-evicts
  /// deterministically down to the new cap.  The default const schedule is
  /// never applied, so unscheduled runs stay bit-identical.  CLI knob:
  /// budget_schedule=const|linear:<start>:<end>|step:<task>:<bytes>.
  BudgetSchedule budget_schedule{};
  /// Feed per-sample replay outcomes (top-1 error) back into the buffer's
  /// importance scores after each draw (LatentReplayBuffer::report_outcome).
  /// Only consulted when replay_budget.policy is importance-aware; off, the
  /// importance policies rank purely on insert-time spike density.  CLI
  /// knob: importance_feedback=0|1.
  bool importance_feedback = true;
  /// Replay entries decompressed per CL epoch via LatentReplayBuffer::
  /// sample(); 0 = materialize() the whole buffer every epoch.  Sampling
  /// bounds the per-epoch decompression + training cost when the buffer is
  /// large (the budgeted-stream hot path).
  std::size_t replay_samples_per_epoch = 0;
  /// Stream the per-epoch replay draw through a ReplayStream fused into
  /// training-batch assembly instead of materializing every drawn raster up
  /// front: same Rng stream, bit-identical entry sets and accuracies, but
  /// peak replay-assembly memory drops from draw-size × raster bytes to one
  /// batch of rasters.  CLI knob: replay_stream=1.
  bool replay_stream = false;
  /// Replay-store sharding (ShardedReplayEngine): shards=1 (the default)
  /// keeps every run bit-identical to the single LatentReplayBuffer era;
  /// shards>1 splits the byte budget into independently locked shards routed
  /// by `shard_by` so concurrent device streams can share one engine.  CLI
  /// knobs: shards=<n>, shard_by=class|hash.
  ShardedEngineConfig replay_sharding{};
  /// Decode the next training minibatch on a background thread while the
  /// current one trains (snn::BatchPipeline double buffering).  Batch
  /// contents are independent of the knob, so runs stay bit-identical; it
  /// only overlaps replay decompression with the forward/backward pass.
  /// CLI knob: prefetch=0|1.
  bool prefetch = false;
  /// Worker count the run engines apply via set_num_threads() at run start
  /// (0 = leave the process-wide setting untouched).  The parallel kernels
  /// use fixed reduction orders, so any value is bit-identical to 1.
  /// CLI knob: threads=<n> (applied by standard_scenario).
  int threads = 0;
  std::size_t batch_size = 16;

  /// Builds the ThresholdPolicy implied by this method.
  [[nodiscard]] snn::ThresholdPolicy policy() const;

  /// Copy storing latents at `bits` bits per element (0 restores the legacy
  /// binary payload); the method name gains a "-q<bits>" suffix so sweep
  /// tables stay self-describing.
  [[nodiscard]] NclMethodConfig with_latent_bits(std::uint8_t bits) const;

  static NclMethodConfig replay4ncl(std::size_t timesteps = 40);
  static NclMethodConfig spiking_lr();
  static NclMethodConfig spiking_lr_reduced(std::size_t timesteps);
  static NclMethodConfig naive_baseline();
};

}  // namespace r4ncl::core
