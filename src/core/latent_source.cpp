#include "core/latent_source.hpp"

#include <algorithm>
#include <span>

#include "util/error.hpp"

namespace r4ncl::core {

PackedLatentSet::PackedLatentSet(const snn::SnnNetwork& net, const data::Dataset& dataset,
                                 std::size_t insertion, const snn::ThresholdPolicy& policy,
                                 std::size_t batch_size, snn::SpikeOpStats* stats) {
  if (insertion == 0 || dataset.empty()) {
    passthrough_ = &dataset;
    return;
  }
  R4NCL_CHECK(batch_size > 0, "batch_size must be positive");
  entries_.reserve(dataset.size());
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  // Same contiguous blocks as to_latents/frozen_inference: the adaptive
  // threshold observes whole batches, so any other blocking would change
  // the latents.
  for (std::size_t lo = 0; lo < indices.size(); lo += batch_size) {
    const std::size_t hi = std::min(indices.size(), lo + batch_size);
    const std::span<const std::size_t> idx(indices.data() + lo, hi - lo);
    const Tensor x = data::make_batch(dataset, idx);
    const Tensor latent = net.run_hidden(x, 0, insertion, policy, stats);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      const data::SpikeRaster raster = data::batch_to_raster(latent, b);
      Entry e;
      e.label = dataset[idx[b]].label;
      e.use_aer = compress::aer_is_smaller(raster);
      if (e.use_aer) {
        e.aer = compress::aer_encode(raster);
        packed_bytes_ += e.aer.payload_bytes();
        ++aer_entries_;
      } else {
        e.packed = compress::pack(raster);
        packed_bytes_ += e.packed.payload_bytes();
      }
      entries_.push_back(std::move(e));
    }
  }
}

std::int32_t PackedLatentSet::label(std::size_t i) const {
  if (passthrough_ != nullptr) return (*passthrough_)[i].label;
  return entries_.at(i).label;
}

const data::Sample& PackedLatentSet::fetch(std::size_t i) {
  if (passthrough_ != nullptr) return (*passthrough_)[i];
  const Entry& e = entries_.at(i);
  if (e.use_aer) {
    compress::aer_decode_into(e.aer, scratch_.raster);
  } else {
    compress::unpack_into(e.packed, scratch_.raster);
  }
  scratch_.label = e.label;
  return scratch_;
}

}  // namespace r4ncl::core
