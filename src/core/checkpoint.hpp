// Full-state checkpoint & bit-identical warm resume.
//
// Embedded neuromorphic deployments power-cycle, redeploy, and resume
// mid-mission; latent replay makes persistence tractable because the buffer
// already holds compact quantized payloads that byte-copy to disk without a
// decode.  A checkpoint captures *everything* a run's future depends on:
//   * network weights (with a verified architecture header),
//   * optimizer moment state, keyed by stable parameter paths,
//   * the full ShardedReplayEngine state per shard — logical entry order,
//     per-class accounting, importance scores, capacity, payloads as-is,
//   * the BudgetSchedule position (implied by the unit cursor + capacity),
//   * the stream/task cursor, and
//   * every Rng stream (SplitMix64 state plus the Box–Muller spare-normal
//     flag/value — dropping the spare would shift all subsequent draws).
// A run killed at any task/epoch boundary therefore resumes and finishes
// bit-identical to an uninterrupted run, across every eviction policy, shard
// count, and replay_stream setting (pinned in tests/test_checkpoint.cpp).
//
// Format: util/serialize tagged sections — "R4CK" + version, "META"
// (config fingerprint, verified field-by-field with pinned mismatch errors
// before any state is touched), network ("SNET"/"ARCH"), "OPTM" (optional
// Adam moments), engine ("SRLE" + per-shard "LRBF"), "RNGS", "PROG"
// (completed result rows + cost totals), "KEND".  Loads validate every
// length and count against the remaining file size, so corrupt or truncated
// checkpoints fail with the pinned r4ncl::Error — no crash, no silent
// partial load, no allocation blow-up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sequential.hpp"
#include "core/sharded_engine.hpp"
#include "snn/network.hpp"
#include "snn/optimizer.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {

/// Which run engine produced a checkpoint; a sequential checkpoint cannot
/// resume a continual run (and vice versa).
enum class CheckpointKind : std::uint32_t {
  kSequential = 0,  // run_sequential — units are tasks
  kContinual = 1,   // run_continual_learning — units are epochs
};

/// Configuration fingerprint stored in (and verified against) a checkpoint.
/// Every field that changes the run's future behaviour is pinned: resuming
/// under a different policy, codec, shard layout, seed, or stream setting is
/// a configuration error the loader rejects up front with a pinned
/// "checkpoint mismatch" Error, not a silently diverging run.
struct CheckpointMeta {
  CheckpointKind kind = CheckpointKind::kSequential;
  std::string method_name;
  std::string policy;    // canonical eviction-policy name
  std::string schedule;  // BudgetSchedule::spec()
  std::uint64_t capacity_bytes = 0;
  std::uint32_t codec_ratio = 1;
  std::uint32_t codec_strategy = 0;
  std::uint32_t latent_bits = 0;
  std::uint64_t cl_timesteps = 0;
  std::uint64_t shards = 1;
  std::string shard_by;
  bool replay_stream = false;
  std::uint64_t replay_samples = 0;
  bool importance_feedback = false;
  std::uint64_t batch_size = 0;
  std::uint64_t insertion_layer = 0;
  std::uint64_t seed = 0;
  /// Units (tasks/epochs) in the whole run.
  std::uint64_t total_units = 0;
  /// First unit the resumed process must execute (== units completed).
  std::uint64_t next_unit = 0;
};

/// Builds the fingerprint for a run; next_unit starts at 0.
[[nodiscard]] CheckpointMeta make_checkpoint_meta(CheckpointKind kind,
                                                  const NclMethodConfig& method,
                                                  std::size_t insertion_layer,
                                                  std::uint64_t seed,
                                                  std::size_t total_units);

/// Everything save_checkpoint()/load_checkpoint() carry besides the network,
/// optimizer, and engine (which serialize themselves): the fingerprint, the
/// run's Rng streams, and the completed portion of the run result.  The
/// sequential and continual payloads share the struct; only the fields of
/// meta.kind are serialized.
struct Checkpoint {
  CheckpointMeta meta;
  /// The per-unit stream (seed_rng / epoch_rng) and the replay-draw stream.
  Rng::State unit_rng;
  Rng::State replay_rng;

  // --- kSequential payload ---
  std::vector<SequentialTaskRow> seq_rows;
  double seq_total_latency_ms = 0.0;
  double seq_total_energy_uj = 0.0;

  // --- kContinual payload ---
  std::vector<ClEpochRow> cl_rows;
  snn::SpikeOpStats prep_stats{};
  double prep_latency_ms = 0.0;
  double prep_energy_uj = 0.0;
  std::uint64_t latent_memory_bytes = 0;
  double final_acc_old = 0.0;
  double final_acc_new = 0.0;
  /// Wall seconds accumulated across all prior processes of this run (wall
  /// time is the one result field exempt from the bit-identity contract).
  double total_wall_seconds = 0.0;
};

/// Writes one complete checkpoint.  `optimizer` may be null (run_sequential
/// uses a fresh per-task optimizer, so there is nothing to persist at its
/// task boundaries).  Throws r4ncl::Error on any I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& ck,
                     const snn::SnnNetwork& net, const snn::AdamOptimizer* optimizer,
                     const ShardedReplayEngine& engine);

/// Reads a checkpoint back: verifies the stored fingerprint against
/// `expected` (all fields except next_unit; pinned mismatch errors), then
/// restores the network, optimizer (when non-null — must match the saved
/// presence), and engine in place and returns the carried state.  Corrupt or
/// truncated files throw r4ncl::Error before any multi-GB allocation.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path,
                                         const CheckpointMeta& expected,
                                         snn::SnnNetwork& net,
                                         snn::AdamOptimizer* optimizer,
                                         ShardedReplayEngine& engine);

/// Checkpoint/resume knobs of a run — the CLI's checkpoint=, resume=, and
/// checkpoint_every= map straight onto these.
struct CheckpointOptions {
  /// Write a checkpoint here at every `every`-th completed unit (and at run
  /// end).  Empty = never save.
  std::string save_path;
  /// Resume from this checkpoint before executing any unit.  Empty = fresh
  /// run.  Resume and save may be combined (resume, then keep snapshotting).
  std::string resume_path;
  /// Save cadence in completed units; must be >= 1.
  std::size_t every = 1;
  /// Power-cycle drill: after completing this many units *in this process*,
  /// force a save (to save_path) and return the partial result — the caller
  /// restarts via resume=.  0 = run to completion.
  std::size_t stop_after_units = 0;

  [[nodiscard]] bool saving() const noexcept { return !save_path.empty(); }
  [[nodiscard]] bool resuming() const noexcept { return !resume_path.empty(); }
};

/// run_sequential / run_continual_learning with checkpoint/resume wired in.
/// With default-constructed options these are bit-identical to the 3-arg
/// forms.  When options.stop_after_units cuts the run short, the returned
/// result holds only the completed rows (the checkpoint carries them too).
SequentialRunResult run_sequential(snn::SnnNetwork& net, const data::SequentialTasks& tasks,
                                   const SequentialRunConfig& config,
                                   const CheckpointOptions& options);
ClRunResult run_continual_learning(snn::SnnNetwork& net,
                                   const data::ClassIncrementalTasks& tasks,
                                   const ClRunConfig& config,
                                   const CheckpointOptions& options);

}  // namespace r4ncl::core
