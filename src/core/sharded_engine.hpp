// Sharded replay engine: replay-as-a-service over N LatentReplayBuffer shards.
//
// One LatentReplayBuffer serves exactly one single-threaded run.  The fleet
// scenario — many independent continual learners sharing one constrained
// latent-memory region — needs a concurrent store, so ShardedReplayEngine
// splits the byte budget across `shards` independent LatentReplayBuffer units
// and routes every add/report/set_capacity by a shard key:
//   shard_by=class — uint32(label) % shards: one class's churn stays inside
//                    one shard, so class-balanced eviction pressure never
//                    crosses shard boundaries;
//   shard_by=hash  — FNV-1a over the raster payload (+ label): content-
//                    addressed spreading for label-skewed streams.
// Each shard owns a private mutex and a private rng stream (the base eviction
// seed xor-mixed per shard), so concurrent device streams contend only when
// they land on the same shard.
//
// Determinism contract: shards=1 is *bit-identical* to a bare
// LatentReplayBuffer under the same config — the single shard keeps the
// unmixed seed, the full byte budget, and every add routes to it, while the
// engine's read side (sample/sample_into/materialize/stream/draw) reuses the
// exact draw_replay_indices code path the buffer uses.  The pinned PR 2–5
// replay contracts (ReplayStream draws, budget-schedule re-eviction,
// importance feedback) therefore hold verbatim at shards=1; tests pin this
// across all five eviction policies.  Under shards>1 each shard's eviction
// stream is still deterministic per (seed, shard, arrival order) — a fixed
// interleaving reproduces bit-for-bit — but different interleavings commit
// different global states, exactly like any sharded service.
//
// The global logical index space is the concatenation of the shards' logical
// orders (shard 0's entries first).  Per-entry reads lock only the owning
// shard; aggregate reads lock shards one at a time (a consistent snapshot is
// not promised while writers run).  report_outcome() drops an out-of-range
// index instead of throwing: under concurrent fleet traffic a drawn entry may
// be displaced before its outcome lands, and losing one EMA observation is
// the correct degradation.  Single-threaded runs never hit that branch, so
// the shards=1 contract is unaffected.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/latent_buffer.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace r4ncl::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace r4ncl::obs

namespace r4ncl::core {

/// How adds are routed to shards.
enum class ShardKey : std::uint8_t {
  kClass,  // uint32(label) % shards
  kHash,   // FNV-1a over raster payload + label, % shards
};

/// Canonical lowercase name ("class", "hash").
[[nodiscard]] std::string_view to_string(ShardKey key) noexcept;

/// Inverse of to_string(); throws Error naming the valid set — the CLI
/// surfaces validate shard_by= eagerly through this.
[[nodiscard]] ShardKey parse_shard_key(std::string_view name);

/// Shard-count + routing-key knobs of a ShardedReplayEngine.  shards=1 with
/// any key is the degenerate single-buffer case.
struct ShardedEngineConfig {
  std::size_t shards = 1;
  ShardKey shard_by = ShardKey::kClass;
};

/// FNV-1a content hash of a raster + label — the shard_by=hash routing key.
/// Exposed so tests and benches can predict routing.
[[nodiscard]] std::uint64_t raster_route_hash(const data::SpikeRaster& raster,
                                              std::int32_t label) noexcept;

class ShardedReplayEngine : public ReplayEntrySource {
 public:
  /// `budget.capacity_bytes` is the *total* byte budget: shard i receives
  /// total/shards plus one spare byte for i < total%shards (0 stays
  /// unbounded for every shard).  Shard i's eviction rng is seeded
  /// budget.seed ^ (i * kShardSeedMix), so shard 0 — and therefore the
  /// shards=1 engine — keeps the buffer's exact stream.
  ShardedReplayEngine(const compress::CodecConfig& codec,
                      std::size_t activation_timesteps,
                      const ReplayBufferConfig& budget = {},
                      const ShardedEngineConfig& sharding = {});

  /// Per-shard seed mix (shard i xors in i * this); any odd 64-bit constant
  /// decorrelates the SplitMix64 streams, this one is the golden-gamma
  /// increment's companion constant.
  static constexpr std::uint64_t kShardSeedMix = 0xD1B54A32D192ED03ULL;

  /// Routes to the shard key's shard, locks it, and delegates to
  /// LatentReplayBuffer::add().  Returns false when that shard's policy
  /// dropped the incoming entry (reservoir rejection / importance rejection).
  bool add(const data::SpikeRaster& raster, std::int32_t label);

  /// Shard index an (raster, label) pair routes to.
  [[nodiscard]] std::size_t shard_of(const data::SpikeRaster& raster,
                                     std::int32_t label) const noexcept;

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const ShardedEngineConfig& sharding() const noexcept { return sharding_; }
  /// Direct read access to shard `i`'s buffer — test/bench introspection
  /// only; the caller must not use it while other threads write the engine.
  /// Deliberately unanalyzed: it hands out a reference to lock-guarded state
  /// for quiescent-engine inspection, which thread-safety analysis cannot
  /// express (the alternative — copying the buffer out — would change what
  /// the tests observe).
  [[nodiscard]] const LatentReplayBuffer& shard(std::size_t i) const
      R4NCL_NO_THREAD_SAFETY_ANALYSIS;

  // --- ReplayEntrySource (global concatenated index space) ---
  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] std::size_t activation_timesteps() const noexcept override {
    return activation_timesteps_;
  }
  [[nodiscard]] std::size_t channels() const noexcept override;
  [[nodiscard]] std::int32_t label_at(std::size_t index) const override;
  void decompress_into(std::size_t index, data::Sample& out,
                       snn::SpikeOpStats* stats = nullptr,
                       std::vector<std::uint8_t>* levels_scratch = nullptr) const override;

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Total configured byte budget (the pre-split value).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return capacity_bytes_; }
  /// Moves the total byte budget: re-splits across shards (same remainder
  /// rule as construction) and applies each share in shard order, so every
  /// shard re-evicts per its policy and private rng exactly as a bare
  /// buffer would — shards=1 reproduces BudgetSchedule runs bit-identically.
  void set_capacity(std::size_t new_capacity_bytes);

  /// Aggregates over all shards (locked one shard at a time).  Per-instance
  /// compatibility shims: the registry publishes the same quantities fleet-
  /// wide as `replay_engine.shard<i>.occupancy_bytes` / `.evictions` gauges
  /// and the `replay_engine(.shard<i>).adds` counters — new telemetry
  /// consumers should read obs::MetricsRegistry::snapshot() instead.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  [[nodiscard]] std::size_t stream_seen() const noexcept;
  [[nodiscard]] std::size_t evictions() const noexcept;
  /// Merged per-class occupancy, sorted by label ascending.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::size_t>> class_occupancy() const;

  /// Effective importance of the entry at global `index` (see
  /// LatentReplayBuffer::importance_at).
  [[nodiscard]] float importance_at(std::size_t index) const;

  /// Trainer feedback for the entry at global `index` — routed to the owning
  /// shard under its lock.  Out-of-range indices are dropped (see file
  /// comment); in-range routing matches the buffer's EMA exactly.
  void report_outcome(std::size_t index, float score);

  /// snn::TrainOptions::sample_outcome callback, identical in shape to
  /// LatentReplayBuffer::outcome_hook — `drawn` holds global indices.
  [[nodiscard]] std::function<void(std::size_t, float)> outcome_hook(
      const std::vector<std::size_t>& drawn, std::size_t new_count) {
    return [this, &drawn, new_count](std::size_t i, float error) {
      if (i >= new_count) report_outcome(drawn[i - new_count], error);
    };
  }

  /// Global-index analogues of the LatentReplayBuffer read side — same
  /// draw_replay_indices stream consumption, same decompress_bits charging,
  /// so shards=1 is bit-identical to the buffer methods.
  [[nodiscard]] std::vector<std::size_t> draw_indices(std::size_t k, Rng& rng) const;
  std::vector<std::size_t> sample_into(std::size_t k, Rng& rng, data::Dataset& out,
                                       snn::SpikeOpStats* stats = nullptr) const;
  [[nodiscard]] data::Dataset sample(std::size_t k, Rng& rng,
                                     snn::SpikeOpStats* stats = nullptr) const;
  [[nodiscard]] data::Dataset materialize(snn::SpikeOpStats* stats = nullptr) const;
  /// Streaming minibatch cursor over a global draw (see ReplayStream).  The
  /// engine must outlive the stream and must not be mutated while it is open.
  [[nodiscard]] ReplayStream stream(std::size_t k, Rng& rng, std::size_t minibatch = 16,
                                    snn::SpikeOpStats* stats = nullptr) const;

  /// Serializes the engine: shard count, routing key, total capacity, then
  /// every shard's buffer snapshot in shard order (each under its lock).
  void save(BinaryWriter& out) const;
  /// Restores a snapshot into this engine.  Shard count and routing key must
  /// match the constructed configuration (pinned mismatch errors) — the
  /// checkpoint does not re-shape a live engine.
  void load(BinaryReader& in);

 private:
  struct Shard {
    /// Guards every access to `buffer`; mutable so const reads can lock.
    /// Leaf lock: nothing is acquired while a shard lock is held, and
    /// aggregate walks lock shards strictly one at a time, so no two shard
    /// locks are ever held together and no acquisition order can form.
    mutable Mutex mu;
    LatentReplayBuffer buffer R4NCL_GUARDED_BY(mu);

    Shard(const compress::CodecConfig& codec, std::size_t activation_timesteps,
          const ReplayBufferConfig& budget)
        : buffer(codec, activation_timesteps, budget) {}
  };

  /// Byte budget of shard `i` under total capacity `total` (0 = unbounded).
  [[nodiscard]] std::size_t shard_capacity(std::size_t total, std::size_t i) const noexcept;

  /// Registry handles (obs::metrics()), resolved once at construction.
  /// Counters are deterministic event tallies; the occupancy/eviction gauges
  /// are last-write-wins per shard *name*, so concurrent engines sharing the
  /// process overwrite each other — the fleet view is per-deployment, and a
  /// deployment runs one engine.
  struct ShardTelemetry {
    obs::Counter* adds = nullptr;
    obs::Gauge* evictions = nullptr;
    obs::Gauge* occupancy_bytes = nullptr;
    obs::Gauge* capacity_bytes = nullptr;
  };
  /// Publishes shard `i`'s occupancy/eviction gauges; call under sh.mu.
  void publish_shard_gauges(std::size_t i, const LatentReplayBuffer& buffer) const;

  /// Resolves global `index` to (shard, local index), locking shards one at
  /// a time, and invokes `fn(buffer, local)` under the owning shard's lock.
  /// Returns false when `index` is beyond the live population.
  bool with_entry(std::size_t index,
                  const std::function<void(LatentReplayBuffer&, std::size_t)>& fn) const;

  std::size_t activation_timesteps_;
  ShardedEngineConfig sharding_;
  std::size_t capacity_bytes_;
  /// unique_ptr because Shard owns a mutex (immovable) and the vector is
  /// sized at construction.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardTelemetry> shard_obs_;
  obs::Counter* obs_adds_ = nullptr;
  obs::Gauge* obs_capacity_ = nullptr;
  obs::Histogram* obs_lock_wait_ = nullptr;
};

}  // namespace r4ncl::core
