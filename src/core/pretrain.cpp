#include "core/pretrain.hpp"

#include <filesystem>
#include <sstream>

#include "util/logging.hpp"

namespace r4ncl::core {

namespace {

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

void hash_mix_f(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  hash_mix(h, bits);
}

}  // namespace

std::uint64_t pretrain_config_hash(const PretrainConfig& config) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t s : config.network.layer_sizes) hash_mix(h, s);
  hash_mix(h, config.network.num_classes);
  hash_mix_f(h, config.network.lif.beta);
  hash_mix(h, config.network.lif.detach_reset ? 1 : 0);
  hash_mix(h, config.network.lif.recurrent ? 1 : 0);
  hash_mix(h, static_cast<std::uint64_t>(config.network.surrogate.kind));
  hash_mix_f(h, config.network.surrogate.scale);
  hash_mix_f(h, config.network.readout_beta);
  hash_mix_f(h, config.network.init_gain);
  hash_mix_f(h, config.network.rec_init_gain);
  hash_mix(h, config.network.seed);
  hash_mix(h, config.data_params.channels);
  hash_mix(h, config.data_params.classes);
  hash_mix(h, config.data_params.timesteps);
  hash_mix(h, static_cast<std::uint64_t>(config.data_params.ridges_per_class));
  hash_mix_f(h, config.data_params.ridge_width);
  hash_mix_f(h, config.data_params.ridge_peak_rate);
  hash_mix_f(h, config.data_params.background_rate);
  hash_mix_f(h, config.data_params.time_jitter);
  hash_mix_f(h, config.data_params.channel_jitter);
  hash_mix_f(h, config.data_params.rate_jitter);
  hash_mix(h, config.data_params.seed);
  hash_mix(h, config.split.train_per_class);
  hash_mix(h, config.split.test_per_class);
  hash_mix(h, config.split.replay_per_class);
  hash_mix(h, static_cast<std::uint64_t>(config.split.new_class));
  hash_mix(h, config.split.seed);
  hash_mix(h, config.epochs);
  hash_mix(h, config.batch_size);
  hash_mix_f(h, config.lr);
  hash_mix(h, config.shuffle_seed);
  return h;
}

PretrainedScenario make_pretrained_scenario(const PretrainConfig& config,
                                            const std::string& cache_dir, bool use_cache,
                                            bool verbose) {
  const data::SyntheticShdGenerator generator(config.data_params);
  // The trailing members repeat the struct defaults: -Wextra's
  // missing-field-initializers fires on designated initializers that omit
  // members, and the library builds with -Werror.
  PretrainedScenario scenario{
      .net = snn::SnnNetwork(config.network),
      .tasks = data::build_class_incremental(generator, config.split),
      .pretrain_accuracy = 0.0,
      .history = {},
      .loaded_from_cache = false,
  };

  std::ostringstream path_os;
  path_os << cache_dir << "/r4ncl_pretrain_" << std::hex << pretrain_config_hash(config)
          << ".ckpt";
  const std::string cache_path = path_os.str();

  if (use_cache && std::filesystem::exists(cache_path)) {
    // A stale cache from an older checkpoint format (or a torn write) must
    // not brick every bench that shares the cache dir — fall through to
    // retraining, which overwrites the bad file.
    try {
      scenario.net.load(cache_path);
      scenario.loaded_from_cache = true;
      R4NCL_INFO("loaded pre-trained checkpoint: " << cache_path);
    } catch (const Error& e) {
      R4NCL_WARN("ignoring unreadable pre-train cache " << cache_path << ": " << e.what());
    }
  }
  if (!scenario.loaded_from_cache) {
    R4NCL_INFO("pre-training on " << scenario.tasks.pretrain_train.size() << " samples ("
                                  << scenario.tasks.old_classes.size() << " classes, "
                                  << config.epochs << " epochs)...");
    snn::AdamOptimizer optimizer;
    snn::TrainOptions opts;
    opts.epochs = config.epochs;
    opts.batch_size = config.batch_size;
    opts.lr = config.lr;
    opts.shuffle_seed = config.shuffle_seed;
    opts.verbose = verbose;
    scenario.history =
        snn::train_supervised(scenario.net, scenario.tasks.pretrain_train, optimizer, opts);
    if (use_cache) {
      scenario.net.save(cache_path);
      R4NCL_INFO("saved pre-trained checkpoint: " << cache_path);
    }
  }
  scenario.pretrain_accuracy = snn::evaluate(scenario.net, scenario.tasks.pretrain_test);
  R4NCL_INFO("pre-train old-task test accuracy: " << scenario.pretrain_accuracy);
  return scenario;
}

}  // namespace r4ncl::core
