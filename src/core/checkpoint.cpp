#include "core/checkpoint.hpp"

#include "obs/metrics.hpp"

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace r4ncl::core {

namespace {

constexpr std::uint32_t kFileTag = make_tag("R4CK");
constexpr std::uint32_t kMetaTag = make_tag("META");
constexpr std::uint32_t kOptimTag = make_tag("OPTM");
constexpr std::uint32_t kRngsTag = make_tag("RNGS");
constexpr std::uint32_t kProgTag = make_tag("PROG");
constexpr std::uint32_t kEndTag = make_tag("KEND");
constexpr std::uint32_t kVersion = 1;

void write_rng_state(BinaryWriter& out, const Rng::State& s) {
  out.write_u64(s.state);
  out.write_u32(s.have_spare_normal ? 1u : 0u);
  out.write_f64(s.spare_normal);
}

Rng::State read_rng_state(BinaryReader& in) {
  Rng::State s;
  s.state = in.read_u64();
  const std::uint32_t have_spare = in.read_u32();
  R4NCL_CHECK(have_spare <= 1, "corrupt rng snapshot: spare-normal flag is " << have_spare);
  s.have_spare_normal = have_spare != 0;
  s.spare_normal = in.read_f64();
  return s;
}

void write_stats(BinaryWriter& out, const snn::SpikeOpStats& s) {
  out.write_u64(s.synops);
  out.write_u64(s.neuron_updates);
  out.write_u64(s.spikes);
  out.write_u64(s.timestep_slots);
  out.write_u64(s.backward_synops);
  out.write_u64(s.decompress_bits);
}

snn::SpikeOpStats read_stats(BinaryReader& in) {
  snn::SpikeOpStats s;
  s.synops = in.read_u64();
  s.neuron_updates = in.read_u64();
  s.spikes = in.read_u64();
  s.timestep_slots = in.read_u64();
  s.backward_synops = in.read_u64();
  s.decompress_bits = in.read_u64();
  return s;
}

void write_meta(BinaryWriter& out, const CheckpointMeta& m) {
  out.write_tag(kMetaTag);
  out.write_u32(static_cast<std::uint32_t>(m.kind));
  out.write_string(m.method_name);
  out.write_string(m.policy);
  out.write_string(m.schedule);
  out.write_u64(m.capacity_bytes);
  out.write_u32(m.codec_ratio);
  out.write_u32(m.codec_strategy);
  out.write_u32(m.latent_bits);
  out.write_u64(m.cl_timesteps);
  out.write_u64(m.shards);
  out.write_string(m.shard_by);
  out.write_u32(m.replay_stream ? 1u : 0u);
  out.write_u64(m.replay_samples);
  out.write_u32(m.importance_feedback ? 1u : 0u);
  out.write_u64(m.batch_size);
  out.write_u64(m.insertion_layer);
  out.write_u64(m.seed);
  out.write_u64(m.total_units);
  out.write_u64(m.next_unit);
}

CheckpointMeta read_meta(BinaryReader& in) {
  in.expect_tag(kMetaTag);
  CheckpointMeta m;
  const std::uint32_t kind = in.read_u32();
  R4NCL_CHECK(kind <= 1, "corrupt checkpoint: unknown kind " << kind);
  m.kind = static_cast<CheckpointKind>(kind);
  m.method_name = in.read_string();
  m.policy = in.read_string();
  m.schedule = in.read_string();
  m.capacity_bytes = in.read_u64();
  m.codec_ratio = in.read_u32();
  m.codec_strategy = in.read_u32();
  m.latent_bits = in.read_u32();
  m.cl_timesteps = in.read_u64();
  m.shards = in.read_u64();
  m.shard_by = in.read_string();
  const std::uint32_t stream = in.read_u32();
  R4NCL_CHECK(stream <= 1, "corrupt checkpoint: replay_stream flag is " << stream);
  m.replay_stream = stream != 0;
  m.replay_samples = in.read_u64();
  const std::uint32_t feedback = in.read_u32();
  R4NCL_CHECK(feedback <= 1, "corrupt checkpoint: importance_feedback flag is " << feedback);
  m.importance_feedback = feedback != 0;
  m.batch_size = in.read_u64();
  m.insertion_layer = in.read_u64();
  m.seed = in.read_u64();
  m.total_units = in.read_u64();
  m.next_unit = in.read_u64();
  R4NCL_CHECK(m.next_unit <= m.total_units, "corrupt checkpoint: next unit "
                                                << m.next_unit << " beyond the "
                                                << m.total_units << "-unit run");
  return m;
}

/// One pinned "checkpoint mismatch" comparison; streams both values.
#define R4NCL_META_MATCH(field)                                                        \
  R4NCL_CHECK(stored.field == expected.field,                                          \
              "checkpoint mismatch: " #field " was '" << stored.field << "', this run " \
                                                      << "expects '" << expected.field \
                                                      << "'")

void verify_meta(const CheckpointMeta& stored, const CheckpointMeta& expected) {
  R4NCL_CHECK(stored.kind == expected.kind,
              "checkpoint mismatch: kind was "
                  << static_cast<std::uint32_t>(stored.kind) << " (0=sequential, 1=continual), "
                  << "this run expects " << static_cast<std::uint32_t>(expected.kind));
  R4NCL_META_MATCH(method_name);
  R4NCL_META_MATCH(policy);
  R4NCL_META_MATCH(schedule);
  R4NCL_META_MATCH(capacity_bytes);
  R4NCL_META_MATCH(codec_ratio);
  R4NCL_META_MATCH(codec_strategy);
  R4NCL_META_MATCH(latent_bits);
  R4NCL_META_MATCH(cl_timesteps);
  R4NCL_META_MATCH(shards);
  R4NCL_META_MATCH(shard_by);
  R4NCL_META_MATCH(replay_stream);
  R4NCL_META_MATCH(replay_samples);
  R4NCL_META_MATCH(importance_feedback);
  R4NCL_META_MATCH(batch_size);
  R4NCL_META_MATCH(insertion_layer);
  R4NCL_META_MATCH(seed);
  R4NCL_META_MATCH(total_units);
}

#undef R4NCL_META_MATCH

void write_progress(BinaryWriter& out, const Checkpoint& ck) {
  out.write_tag(kProgTag);
  if (ck.meta.kind == CheckpointKind::kSequential) {
    out.write_u64(ck.seq_rows.size());
    for (const SequentialTaskRow& r : ck.seq_rows) {
      out.write_u64(r.task_index);
      out.write_u32(static_cast<std::uint32_t>(r.class_id));
      out.write_f64(r.acc_base);
      out.write_f64(r.acc_learned);
      out.write_f64(r.acc_current);
      out.write_u64(r.latent_memory_bytes);
      out.write_u64(r.budget_bytes);
      out.write_u64(r.buffer_entries);
      out.write_u64(r.buffer_evictions);
      out.write_f64(r.latency_ms);
      out.write_f64(r.energy_uj);
    }
    out.write_f64(ck.seq_total_latency_ms);
    out.write_f64(ck.seq_total_energy_uj);
  } else {
    out.write_u64(ck.cl_rows.size());
    for (const ClEpochRow& r : ck.cl_rows) {
      out.write_u64(r.epoch);
      out.write_f64(r.loss);
      out.write_f64(r.acc_old);
      out.write_f64(r.acc_new);
      out.write_f64(r.latency_ms);
      out.write_f64(r.energy_uj);
      out.write_f64(r.wall_seconds);
      write_stats(out, r.stats);
    }
    write_stats(out, ck.prep_stats);
    out.write_f64(ck.prep_latency_ms);
    out.write_f64(ck.prep_energy_uj);
    out.write_u64(ck.latent_memory_bytes);
    out.write_f64(ck.final_acc_old);
    out.write_f64(ck.final_acc_new);
    out.write_f64(ck.total_wall_seconds);
  }
}

void read_progress(BinaryReader& in, Checkpoint& ck) {
  in.expect_tag(kProgTag);
  if (ck.meta.kind == CheckpointKind::kSequential) {
    const std::uint64_t n = in.read_u64();
    // A sequential row serializes to 84 bytes; bound the count before the
    // reserve so a corrupt prefix cannot trigger a huge allocation.
    R4NCL_CHECK(n <= in.remaining() / 84,
                "corrupt checkpoint: " << n << " task rows exceed the file");
    ck.seq_rows.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      SequentialTaskRow r;
      r.task_index = in.read_u64();
      r.class_id = static_cast<std::int32_t>(in.read_u32());
      r.acc_base = in.read_f64();
      r.acc_learned = in.read_f64();
      r.acc_current = in.read_f64();
      r.latent_memory_bytes = in.read_u64();
      r.budget_bytes = in.read_u64();
      r.buffer_entries = in.read_u64();
      r.buffer_evictions = in.read_u64();
      r.latency_ms = in.read_f64();
      r.energy_uj = in.read_f64();
      ck.seq_rows.push_back(r);
    }
    ck.seq_total_latency_ms = in.read_f64();
    ck.seq_total_energy_uj = in.read_f64();
  } else {
    const std::uint64_t n = in.read_u64();
    // A continual row serializes to 104 bytes.
    R4NCL_CHECK(n <= in.remaining() / 104,
                "corrupt checkpoint: " << n << " epoch rows exceed the file");
    ck.cl_rows.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ClEpochRow r;
      r.epoch = in.read_u64();
      r.loss = in.read_f64();
      r.acc_old = in.read_f64();
      r.acc_new = in.read_f64();
      r.latency_ms = in.read_f64();
      r.energy_uj = in.read_f64();
      r.wall_seconds = in.read_f64();
      r.stats = read_stats(in);
      ck.cl_rows.push_back(r);
    }
    ck.prep_stats = read_stats(in);
    ck.prep_latency_ms = in.read_f64();
    ck.prep_energy_uj = in.read_f64();
    ck.latent_memory_bytes = in.read_u64();
    ck.final_acc_old = in.read_f64();
    ck.final_acc_new = in.read_f64();
    ck.total_wall_seconds = in.read_f64();
  }
}

}  // namespace

CheckpointMeta make_checkpoint_meta(CheckpointKind kind, const NclMethodConfig& method,
                                    std::size_t insertion_layer, std::uint64_t seed,
                                    std::size_t total_units) {
  CheckpointMeta m;
  m.kind = kind;
  m.method_name = method.name;
  m.policy = std::string(to_string(method.replay_budget.policy));
  m.schedule = method.budget_schedule.spec();
  m.capacity_bytes = method.replay_budget.capacity_bytes;
  m.codec_ratio = method.storage_codec.ratio;
  m.codec_strategy = static_cast<std::uint32_t>(method.storage_codec.strategy);
  m.latent_bits = method.storage_codec.latent_bits;
  m.cl_timesteps = method.cl_timesteps;
  m.shards = method.replay_sharding.shards;
  m.shard_by = std::string(to_string(method.replay_sharding.shard_by));
  m.replay_stream = method.replay_stream;
  m.replay_samples = method.replay_samples_per_epoch;
  m.importance_feedback = method.importance_feedback;
  m.batch_size = method.batch_size;
  m.insertion_layer = insertion_layer;
  m.seed = seed;
  m.total_units = total_units;
  m.next_unit = 0;
  return m;
}

void save_checkpoint(const std::string& path, const Checkpoint& ck,
                     const snn::SnnNetwork& net, const snn::AdamOptimizer* optimizer,
                     const ShardedReplayEngine& engine) {
  obs::metrics().counter("checkpoint.saves").add(1);
  obs::TraceSpan save_span(obs::metrics(), "checkpoint.save_seconds");
  BinaryWriter out(path);
  out.write_tag(kFileTag);
  out.write_u32(kVersion);
  write_meta(out, ck.meta);
  net.save(out);
  out.write_tag(kOptimTag);
  out.write_u32(optimizer != nullptr ? 1u : 0u);
  if (optimizer != nullptr) optimizer->save(out);
  engine.save(out);
  out.write_tag(kRngsTag);
  write_rng_state(out, ck.unit_rng);
  write_rng_state(out, ck.replay_rng);
  write_progress(out, ck);
  out.write_tag(kEndTag);
  out.close();
}

Checkpoint load_checkpoint(const std::string& path, const CheckpointMeta& expected,
                           snn::SnnNetwork& net, snn::AdamOptimizer* optimizer,
                           ShardedReplayEngine& engine) {
  obs::metrics().counter("checkpoint.loads").add(1);
  obs::TraceSpan load_span(obs::metrics(), "checkpoint.load_seconds");
  BinaryReader in(path);
  in.expect_tag(kFileTag);
  const std::uint32_t version = in.read_u32();
  R4NCL_CHECK(version == kVersion, "unsupported checkpoint version " << version
                                                                     << " in " << path
                                                                     << " (this build reads "
                                                                     << kVersion << ")");
  Checkpoint ck;
  ck.meta = read_meta(in);
  verify_meta(ck.meta, expected);
  net.load(in);
  in.expect_tag(kOptimTag);
  const std::uint32_t have_optimizer = in.read_u32();
  R4NCL_CHECK(have_optimizer <= 1,
              "corrupt checkpoint: optimizer flag is " << have_optimizer);
  R4NCL_CHECK((have_optimizer != 0) == (optimizer != nullptr),
              "checkpoint mismatch: optimizer state "
                  << (have_optimizer != 0 ? "present" : "absent") << " in " << path
                  << " but the resuming run " << (optimizer != nullptr ? "needs" : "ignores")
                  << " it");
  if (optimizer != nullptr) optimizer->load(in);
  engine.load(in);
  in.expect_tag(kRngsTag);
  ck.unit_rng = read_rng_state(in);
  ck.replay_rng = read_rng_state(in);
  read_progress(in, ck);
  in.expect_tag(kEndTag);
  R4NCL_CHECK(in.remaining() == 0,
              "corrupt checkpoint: " << in.remaining() << " trailing byte(s) after the end tag in "
                                     << path);
  return ck;
}

}  // namespace r4ncl::core
