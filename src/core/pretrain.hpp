// Pre-training phase (Alg. 1 lines 1–5) with an on-disk checkpoint cache.
//
// Every bench needs the same pre-trained 19-class network; training it takes
// tens of seconds, so the first binary to need it trains and saves a
// checkpoint keyed by a hash of the full configuration, and later binaries
// load it.  Delete r4ncl_pretrain_*.ckpt (or pass use_cache = false) to force
// retraining.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/tasks.hpp"
#include "snn/trainer.hpp"

namespace r4ncl::core {

/// Full description of the pre-training experiment.
struct PretrainConfig {
  snn::NetworkConfig network;
  data::ShdSynthParams data_params;
  data::TaskSplitParams split;
  std::size_t epochs = 12;
  std::size_t batch_size = 16;
  float lr = 1e-3f;  // η_pre (Alg. 1 line 2)
  std::uint64_t shuffle_seed = 77;
};

/// A pre-trained network plus the task splits it was trained against.
struct PretrainedScenario {
  snn::SnnNetwork net;
  data::ClassIncrementalTasks tasks;
  /// Old-task test accuracy after pre-training (native timestep, fixed θ).
  double pretrain_accuracy = 0.0;
  /// Per-epoch history (empty when loaded from cache).
  std::vector<snn::EpochRecord> history;
  bool loaded_from_cache = false;
};

/// FNV-1a hash over every field that influences the pre-trained weights;
/// used as the checkpoint cache key.
std::uint64_t pretrain_config_hash(const PretrainConfig& config);

/// Builds (or loads from `cache_dir`) the pre-trained scenario.
PretrainedScenario make_pretrained_scenario(const PretrainConfig& config,
                                            const std::string& cache_dir = ".",
                                            bool use_cache = true, bool verbose = false);

}  // namespace r4ncl::core
