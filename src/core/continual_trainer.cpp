#include "core/continual_trainer.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "core/latent_source.hpp"
#include "core/replay_stream.hpp"
#include "core/sharded_engine.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace r4ncl::core {

namespace {

/// Runs the frozen prefix [0, insertion) over a dataset and returns the
/// latent dataset at the insertion point.  Identity when insertion == 0.
data::Dataset frozen_inference(const snn::SnnNetwork& net, const data::Dataset& dataset,
                               std::size_t insertion, const snn::ThresholdPolicy& policy,
                               std::size_t batch_size, snn::SpikeOpStats* stats) {
  if (insertion == 0 || dataset.empty()) return dataset;
  data::Dataset out;
  out.reserve(dataset.size());
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t lo = 0; lo < indices.size(); lo += batch_size) {
    const std::size_t hi = std::min(indices.size(), lo + batch_size);
    const std::span<const std::size_t> idx(indices.data() + lo, hi - lo);
    const Tensor x = data::make_batch(dataset, idx);
    const Tensor latent = net.run_hidden(x, 0, insertion, policy, stats);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      out.push_back({data::batch_to_raster(latent, b), dataset[idx[b]].label});
    }
  }
  return out;
}

}  // namespace

double ClRunResult::total_latency_ms() const noexcept {
  double total = prep_latency_ms;
  for (const auto& r : rows) total += r.latency_ms;
  return total;
}

double ClRunResult::total_energy_uj() const noexcept {
  double total = prep_energy_uj;
  for (const auto& r : rows) total += r.energy_uj;
  return total;
}

ClRunResult run_continual_learning(snn::SnnNetwork& net,
                                   const data::ClassIncrementalTasks& tasks,
                                   const ClRunConfig& config) {
  return run_continual_learning(net, tasks, config, CheckpointOptions{});
}

ClRunResult run_continual_learning(snn::SnnNetwork& net,
                                   const data::ClassIncrementalTasks& tasks,
                                   const ClRunConfig& config, const CheckpointOptions& ckpt) {
  const NclMethodConfig& method = config.method;
  R4NCL_CHECK(config.insertion_layer <= net.num_hidden(),
              "insertion layer " << config.insertion_layer << " out of range");
  R4NCL_CHECK(config.epochs > 0, "need at least one epoch");
  R4NCL_CHECK(config.eval_every > 0, "eval_every must be positive");
  R4NCL_CHECK(ckpt.every >= 1, "checkpoint_every must be >= 1");
  if (method.threads > 0) set_num_threads(method.threads);

  Stopwatch total_watch;
  const metrics::EnergyModel energy_model(config.energy_params);
  const metrics::LatencyModel latency_model(config.latency_params);
  const snn::ThresholdPolicy policy = method.policy();

  ClRunResult result;
  result.method_name = method.name;
  result.insertion_layer = config.insertion_layer;

  // ---- Phase 1: network preparation (Alg. 1 lines 6–20) -----------------
  // A budget schedule sees this engine as a 1-task stream: the task-0
  // capacity applies from preparation on.  The default const schedule leaves
  // capacity_bytes untouched, so unscheduled runs stay bit-identical.
  ReplayBufferConfig run_budget = method.replay_budget.with_run_seed(config.seed);
  if (method.budget_schedule.active()) {
    run_budget.capacity_bytes =
        method.budget_schedule.capacity_for_task(0, 1, run_budget.capacity_bytes);
  }
  // The replay store is a ShardedReplayEngine; shards=1 (the default) is
  // bit-identical to the LatentReplayBuffer this engine refactored out, so
  // unsharded runs reproduce the pre-engine results byte for byte.
  ShardedReplayEngine buffer(method.storage_codec, method.cl_timesteps, run_budget,
                             method.replay_sharding);
  const bool importance_feedback = method.use_replay && method.importance_feedback &&
                                   is_importance_policy(method.replay_budget.policy);
  const CheckpointMeta meta = make_checkpoint_meta(
      CheckpointKind::kContinual, method, config.insertion_layer, config.seed, config.epochs);
  snn::AdamOptimizer optimizer;
  Rng epoch_rng(config.seed);
  Rng replay_rng(config.seed ^ kReplayDrawSeedSalt);
  std::size_t first_epoch = 0;
  double prior_wall_seconds = 0.0;
  if (ckpt.resuming()) {
    // A resumed run replaces the preparation phase: the restored engine
    // already holds the prepared latents, prep costs live in the restored
    // result fields, and the run-long optimizer + rng streams continue
    // exactly where the killed run left them.
    Checkpoint loaded = load_checkpoint(ckpt.resume_path, meta, net, &optimizer, buffer);
    result.rows = std::move(loaded.cl_rows);
    result.prep_stats = loaded.prep_stats;
    result.prep_latency_ms = loaded.prep_latency_ms;
    result.prep_energy_uj = loaded.prep_energy_uj;
    result.latent_memory_bytes = static_cast<std::size_t>(loaded.latent_memory_bytes);
    result.final_acc_old = loaded.final_acc_old;
    result.final_acc_new = loaded.final_acc_new;
    prior_wall_seconds = loaded.total_wall_seconds;
    epoch_rng.restore(loaded.unit_rng);
    replay_rng.restore(loaded.replay_rng);
    first_epoch = static_cast<std::size_t>(loaded.meta.next_unit);
  } else if (method.use_replay) {
    const data::Dataset replay_rescaled =
        data::time_rescale(tasks.replay_subset, method.cl_timesteps, method.rescale);
    const data::Dataset latents =
        frozen_inference(net, replay_rescaled, config.insertion_layer, policy,
                         method.batch_size, &result.prep_stats);
    for (const auto& s : latents) buffer.add(s.raster, s.label);
    result.latent_memory_bytes = buffer.memory_bytes();
  }
  if (!ckpt.resuming()) {
    result.prep_latency_ms = latency_model.latency_ms(result.prep_stats);
    result.prep_energy_uj = energy_model.energy_uj(result.prep_stats);
  }

  // New-task training data in the method's time base.
  const data::Dataset new_train_rescaled =
      data::time_rescale(tasks.new_train, method.cl_timesteps, method.rescale);

  // Deployment-configuration evaluation settings (Sec. IV: accuracy is
  // measured with the method's own timestep and threshold behaviour).
  metrics::EvalSettings eval_settings;
  eval_settings.timesteps = method.cl_timesteps;
  eval_settings.rescale = method.rescale;
  eval_settings.policy = policy;

  // ---- Phase 2: NCL training (Alg. 1 lines 21–33) ------------------------
  result.rows.reserve(config.epochs);
  std::size_t completed_here = 0;
  for (std::size_t epoch = first_epoch; epoch < config.epochs; ++epoch) {
    obs::metrics().counter("core.cl_epochs").add(1);
    obs::TraceSpan epoch_span(obs::metrics(), "core.cl_epoch_seconds");
    Stopwatch epoch_watch;
    ClEpochRow row;
    row.epoch = epoch;

    // Train the learning layers on A_new ∪ A_LR (Alg. 1 line 31); A_new =
    // inference(net_f, TS_cl) (line 23, recomputed per epoch) inside each
    // branch.
    snn::TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = method.batch_size;
    opts.lr = method.lr_cl;
    opts.insertion_layer = config.insertion_layer;
    opts.policy = policy;
    opts.shuffle_seed = epoch_rng();
    opts.prefetch = method.prefetch ? 1 : 0;
    std::vector<snn::EpochRecord> history;
    if (method.use_replay && method.replay_stream) {
      // A_LR as a streaming cursor: the same draw from the same Rng as the
      // materialized path below (bit-identical entry sets and training
      // batches), but each drawn raster decodes into a scratch slot only
      // when the shuffled batch assembly reaches it.  A_new streams the same
      // way: PackedLatentSet stores each latent raster AER- or bit-packed
      // and decodes on demand, so neither half is ever dense.
      PackedLatentSet latents(net, new_train_rescaled, config.insertion_layer, policy,
                              method.batch_size, &row.stats);
      const std::size_t new_count = latents.size();
      const std::size_t draw = method.replay_samples_per_epoch > 0
                                   ? method.replay_samples_per_epoch
                                   : buffer.size();
      ReplayStream stream =
          buffer.stream(draw, replay_rng, method.batch_size, &row.stats);
      snn::SampleSource source;
      source.size = latents.size() + stream.size();
      source.fetch = [&latents, &stream,
                      n = latents.size()](std::size_t i) -> const data::Sample& {
        return i < n ? latents.fetch(i) : stream.fetch(i - n);
      };
      if (importance_feedback) {
        opts.sample_outcome = buffer.outcome_hook(stream.drawn(), new_count);
      }
      history = snn::train_supervised(net, source, optimizer, opts);
    } else {
      data::Dataset mixed =
          frozen_inference(net, new_train_rescaled, config.insertion_layer, policy,
                           method.batch_size, &row.stats);
      const std::size_t new_count = mixed.size();
      // A_LR from the buffer (decompression charged to this epoch).  When
      // the method caps its per-epoch replay appetite, only the drawn
      // entries are decompressed — the budgeted-stream hot path.
      std::vector<std::size_t> drawn;
      if (method.use_replay && importance_feedback) {
        // sample_into() is sample() plus the drawn logical indices, so the
        // per-sample outcome hook can route each replay row's error back to
        // its buffer entry (identical rng consumption and charging).
        const std::size_t draw = method.replay_samples_per_epoch > 0
                                     ? method.replay_samples_per_epoch
                                     : buffer.size();
        drawn = buffer.sample_into(draw, replay_rng, mixed, &row.stats);
        opts.sample_outcome = buffer.outcome_hook(drawn, new_count);
      } else if (method.use_replay) {
        data::Dataset replay =
            method.replay_samples_per_epoch > 0
                ? buffer.sample(method.replay_samples_per_epoch, replay_rng, &row.stats)
                : buffer.materialize(&row.stats);
        mixed.insert(mixed.end(), std::make_move_iterator(replay.begin()),
                     std::make_move_iterator(replay.end()));
      }
      history = snn::train_supervised(net, mixed, optimizer, opts);
    }
    row.loss = history.front().loss;
    row.stats.add(history.front().stats);

    row.latency_ms = latency_model.latency_ms(row.stats);
    row.energy_uj = energy_model.energy_uj(row.stats);

    const bool evaluate_now =
        (epoch % config.eval_every == 0) || (epoch + 1 == config.epochs);
    if (evaluate_now) {
      const metrics::TaskAccuracy acc = metrics::evaluate_tasks(net, tasks, eval_settings);
      row.acc_old = acc.old_tasks;
      row.acc_new = acc.new_task;
      result.final_acc_old = acc.old_tasks;
      result.final_acc_new = acc.new_task;
    }
    row.wall_seconds = epoch_watch.elapsed_seconds();
    if (config.verbose) {
      R4NCL_INFO(method.name << " L" << config.insertion_layer << " epoch " << epoch
                             << ": loss=" << row.loss << " old=" << row.acc_old
                             << " new=" << row.acc_new << " (" << row.wall_seconds << "s)");
    }
    result.rows.push_back(std::move(row));

    // Epoch boundary: snapshot and/or power down (see run_sequential; units
    // here are epochs, and the run-long Adam moments ride along).
    ++completed_here;
    const std::size_t done = epoch + 1;
    const bool finished = done == config.epochs;
    const bool stopping =
        ckpt.stop_after_units > 0 && completed_here >= ckpt.stop_after_units && !finished;
    if (ckpt.saving() && (finished || stopping || done % ckpt.every == 0)) {
      Checkpoint ck;
      ck.meta = meta;
      ck.meta.next_unit = done;
      ck.unit_rng = epoch_rng.state();
      ck.replay_rng = replay_rng.state();
      ck.cl_rows = result.rows;
      ck.prep_stats = result.prep_stats;
      ck.prep_latency_ms = result.prep_latency_ms;
      ck.prep_energy_uj = result.prep_energy_uj;
      ck.latent_memory_bytes = result.latent_memory_bytes;
      ck.final_acc_old = result.final_acc_old;
      ck.final_acc_new = result.final_acc_new;
      ck.total_wall_seconds = prior_wall_seconds + total_watch.elapsed_seconds();
      save_checkpoint(ckpt.save_path, ck, net, &optimizer, buffer);
    }
    if (stopping) {
      result.total_wall_seconds = prior_wall_seconds + total_watch.elapsed_seconds();
      return result;
    }
  }
  result.total_wall_seconds = prior_wall_seconds + total_watch.elapsed_seconds();
  return result;
}

}  // namespace r4ncl::core
