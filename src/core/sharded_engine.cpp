#include "core/sharded_engine.hpp"

#include <iterator>
#include <map>

#include "core/replay_stream.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace r4ncl::core {

std::string_view to_string(ShardKey key) noexcept {
  switch (key) {
    case ShardKey::kClass: return "class";
    case ShardKey::kHash: return "hash";
  }
  return "unknown";
}

ShardKey parse_shard_key(std::string_view name) {
  if (name == "class") return ShardKey::kClass;
  if (name == "hash") return ShardKey::kHash;
  throw Error("unknown shard_by '" + std::string(name) + "' (expected class|hash)");
}

std::uint64_t raster_route_hash(const data::SpikeRaster& raster,
                                std::int32_t label) noexcept {
  // FNV-1a 64-bit over the 0/1 payload, then the label bytes: cheap, stable
  // across platforms, and spreads label-skewed streams by content rather
  // than by class.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t bit : raster.bits) {
    h = (h ^ bit) * 0x100000001b3ULL;
  }
  const auto u = static_cast<std::uint32_t>(label);
  for (int shift = 0; shift < 32; shift += 8) {
    h = (h ^ ((u >> shift) & 0xffu)) * 0x100000001b3ULL;
  }
  return h;
}

ShardedReplayEngine::ShardedReplayEngine(const compress::CodecConfig& codec,
                                         std::size_t activation_timesteps,
                                         const ReplayBufferConfig& budget,
                                         const ShardedEngineConfig& sharding)
    : activation_timesteps_(activation_timesteps), sharding_(sharding),
      capacity_bytes_(budget.capacity_bytes) {
  R4NCL_CHECK(sharding.shards >= 1, "shards must be >= 1, got " << sharding.shards);
  shards_.reserve(sharding.shards);
  for (std::size_t i = 0; i < sharding.shards; ++i) {
    ReplayBufferConfig shard_budget = budget;
    shard_budget.capacity_bytes = shard_capacity(budget.capacity_bytes, i);
    // i=0 xors in 0, so the first shard — and therefore the whole shards=1
    // engine — keeps the buffer's exact eviction stream.
    shard_budget.seed = budget.seed ^ (static_cast<std::uint64_t>(i) * kShardSeedMix);
    shards_.push_back(std::make_unique<Shard>(codec, activation_timesteps, shard_budget));
  }
  // Telemetry handles are resolved eagerly so the armed hot path never takes
  // the registry lock; while disarmed every publish below is a no-op.
  obs::MetricsRegistry& reg = obs::metrics();
  obs_adds_ = &reg.counter("replay_engine.adds");
  obs_capacity_ = &reg.gauge("replay_engine.capacity_bytes");
  obs_lock_wait_ =
      &reg.histogram("replay_engine.lock_wait_seconds", obs::kLatencyEdgesSeconds);
  shard_obs_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "replay_engine.shard" + std::to_string(i) + ".";
    shard_obs_.push_back({&reg.counter(prefix + "adds"), &reg.gauge(prefix + "evictions"),
                          &reg.gauge(prefix + "occupancy_bytes"),
                          &reg.gauge(prefix + "capacity_bytes")});
    shard_obs_[i].capacity_bytes->set(
        static_cast<double>(shard_capacity(budget.capacity_bytes, i)));
  }
  obs_capacity_->set(static_cast<double>(capacity_bytes_));
}

void ShardedReplayEngine::publish_shard_gauges(std::size_t i,
                                               const LatentReplayBuffer& buffer) const {
  const ShardTelemetry& t = shard_obs_[i];
  t.occupancy_bytes->set(static_cast<double>(buffer.memory_bytes()));
  t.evictions->set(static_cast<double>(buffer.evictions()));
}

std::size_t ShardedReplayEngine::shard_capacity(std::size_t total,
                                                std::size_t i) const noexcept {
  if (total == 0) return 0;  // unbounded stays unbounded for every shard
  const std::size_t shards = sharding_.shards;
  return total / shards + (i < total % shards ? 1 : 0);
}

std::size_t ShardedReplayEngine::shard_of(const data::SpikeRaster& raster,
                                          std::int32_t label) const noexcept {
  if (shards_.size() == 1) return 0;
  switch (sharding_.shard_by) {
    case ShardKey::kClass:
      return static_cast<std::uint32_t>(label) % shards_.size();
    case ShardKey::kHash:
      return static_cast<std::size_t>(raster_route_hash(raster, label) % shards_.size());
  }
  return 0;
}

bool ShardedReplayEngine::add(const data::SpikeRaster& raster, std::int32_t label) {
  const std::size_t idx = shard_of(raster, label);
  Shard& sh = *shards_[idx];
  obs::MetricsRegistry& reg = obs::metrics();
  if (!reg.armed()) {  // cold path: exactly the pre-telemetry code
    MutexLock lock(sh.mu);
    return sh.buffer.add(raster, label);
  }
  // Armed path: same work plus counter/gauge/timer writes — no rng use, no
  // control-flow change, so enabled ≡ disabled bit-identity holds (pinned by
  // tests/test_obs.cpp).  The wait clock spans the MutexLock acquisition:
  // that *is* the per-shard lock contention the fleet view wants.
  const bool timed = reg.trace_armed();
  Stopwatch wait;
  MutexLock lock(sh.mu);
  if (timed) obs_lock_wait_->record(wait.elapsed_seconds());
  const bool stored = sh.buffer.add(raster, label);
  obs_adds_->add(1);
  shard_obs_[idx].adds->add(1);
  publish_shard_gauges(idx, sh.buffer);
  return stored;
}

const LatentReplayBuffer& ShardedReplayEngine::shard(std::size_t i) const {
  R4NCL_CHECK(i < shards_.size(), "shard " << i << " out of " << shards_.size());
  return shards_[i]->buffer;
}

std::size_t ShardedReplayEngine::size() const noexcept {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    total += sh->buffer.size();
  }
  return total;
}

std::size_t ShardedReplayEngine::channels() const noexcept {
  // All shards store rasters of the run's one insertion-layer width; report
  // the first shard that has fixed it (0 while the whole engine is empty).
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    const std::size_t c = sh->buffer.channels();
    if (c != 0) return c;
  }
  return 0;
}

bool ShardedReplayEngine::with_entry(
    std::size_t index,
    const std::function<void(LatentReplayBuffer&, std::size_t)>& fn) const {
  // The global logical index space concatenates the shards' logical orders;
  // walk shards in order, locking one at a time, until the owner is found.
  std::size_t skipped = 0;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    const std::size_t n = sh->buffer.size();
    if (index - skipped < n) {
      fn(sh->buffer, index - skipped);
      return true;
    }
    skipped += n;
  }
  return false;
}

std::int32_t ShardedReplayEngine::label_at(std::size_t index) const {
  std::int32_t label = 0;
  const bool found = with_entry(index, [&](LatentReplayBuffer& b, std::size_t local) {
    label = b.label_at(local);
  });
  R4NCL_CHECK(found, "entry " << index << " out of " << size());
  return label;
}

void ShardedReplayEngine::decompress_into(std::size_t index, data::Sample& out,
                                          snn::SpikeOpStats* stats,
                                          std::vector<std::uint8_t>* levels_scratch) const {
  const bool found = with_entry(index, [&](LatentReplayBuffer& b, std::size_t local) {
    b.decompress_into(local, out, stats, levels_scratch);
  });
  R4NCL_CHECK(found, "entry " << index << " out of " << size());
}

float ShardedReplayEngine::importance_at(std::size_t index) const {
  float score = 0.0f;
  const bool found = with_entry(index, [&](LatentReplayBuffer& b, std::size_t local) {
    score = b.importance_at(local);
  });
  R4NCL_CHECK(found, "entry " << index << " out of " << size());
  return score;
}

void ShardedReplayEngine::report_outcome(std::size_t index, float score) {
  // Out-of-range indices are dropped, not thrown: under concurrent fleet
  // traffic a drawn entry may be displaced before its outcome lands, and
  // losing one EMA observation is the correct degradation.  Single-threaded
  // runs (the shards=1 contract) never take the miss branch.
  (void)with_entry(index, [score](LatentReplayBuffer& b, std::size_t local) {
    b.report_outcome(local, score);
  });
}

void ShardedReplayEngine::set_capacity(std::size_t new_capacity_bytes) {
  capacity_bytes_ = new_capacity_bytes;
  obs_capacity_->set(static_cast<double>(new_capacity_bytes));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    MutexLock lock(sh.mu);
    sh.buffer.set_capacity(shard_capacity(new_capacity_bytes, i));
    shard_obs_[i].capacity_bytes->set(
        static_cast<double>(shard_capacity(new_capacity_bytes, i)));
    publish_shard_gauges(i, sh.buffer);
  }
}

std::size_t ShardedReplayEngine::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    total += sh->buffer.memory_bytes();
  }
  return total;
}

std::size_t ShardedReplayEngine::stream_seen() const noexcept {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    total += sh->buffer.stream_seen();
  }
  return total;
}

std::size_t ShardedReplayEngine::evictions() const noexcept {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    total += sh->buffer.evictions();
  }
  return total;
}

std::vector<std::pair<std::int32_t, std::size_t>> ShardedReplayEngine::class_occupancy()
    const {
  std::map<std::int32_t, std::size_t> merged;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    for (const auto& [label, count] : sh->buffer.class_occupancy()) {
      merged[label] += count;
    }
  }
  return {merged.begin(), merged.end()};
}

std::vector<std::size_t> ShardedReplayEngine::draw_indices(std::size_t k, Rng& rng) const {
  return draw_replay_indices(size(), k, rng);
}

std::vector<std::size_t> ShardedReplayEngine::sample_into(std::size_t k, Rng& rng,
                                                          data::Dataset& out,
                                                          snn::SpikeOpStats* stats) const {
  std::vector<std::size_t> drawn = draw_indices(k, rng);
  out.reserve(out.size() + drawn.size());
  for (const std::size_t index : drawn) {
    data::Sample s;
    const bool found = with_entry(index, [&](LatentReplayBuffer& b, std::size_t local) {
      b.decompress_into(local, s, stats);
    });
    // Entries displaced between draw and decode (concurrent writers) are
    // skipped; a single-threaded engine decodes every drawn entry, exactly
    // like LatentReplayBuffer::sample_into.
    if (found) out.push_back(std::move(s));
  }
  return drawn;
}

data::Dataset ShardedReplayEngine::sample(std::size_t k, Rng& rng,
                                          snn::SpikeOpStats* stats) const {
  data::Dataset out;
  (void)sample_into(k, rng, out, stats);
  return out;
}

data::Dataset ShardedReplayEngine::materialize(snn::SpikeOpStats* stats) const {
  data::Dataset out;
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    data::Dataset part = sh->buffer.materialize(stats);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

ReplayStream ShardedReplayEngine::stream(std::size_t k, Rng& rng, std::size_t minibatch,
                                         snn::SpikeOpStats* stats) const {
  return ReplayStream(*this, draw_indices(k, rng), minibatch, stats);
}

namespace {
constexpr std::uint32_t kEngineTag = make_tag("SRLE");
}  // namespace

void ShardedReplayEngine::save(BinaryWriter& out) const {
  out.write_tag(kEngineTag);
  out.write_u64(shards_.size());
  out.write_u32(static_cast<std::uint32_t>(sharding_.shard_by));
  out.write_u64(capacity_bytes_);
  for (const auto& sh : shards_) {
    MutexLock lock(sh->mu);
    sh->buffer.save(out);
  }
}

void ShardedReplayEngine::load(BinaryReader& in) {
  in.expect_tag(kEngineTag);
  const std::uint64_t shards = in.read_u64();
  R4NCL_CHECK(shards == shards_.size(),
              "shard-count mismatch: checkpoint has " << shards << " shard(s), this engine "
                                                      << shards_.size());
  const std::uint32_t shard_by = in.read_u32();
  R4NCL_CHECK(shard_by == static_cast<std::uint32_t>(sharding_.shard_by),
              "shard-key mismatch: checkpoint routes by key " << shard_by
                                                              << ", this engine by "
                                                              << to_string(sharding_.shard_by));
  const std::uint64_t capacity = in.read_u64();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    MutexLock lock(sh.mu);
    sh.buffer.load(in);
    // Re-publish the restored occupancy/budget so a warm resume's first
    // snapshot reflects the loaded state, not the empty pre-load engine.
    shard_obs_[i].capacity_bytes->set(static_cast<double>(sh.buffer.capacity_bytes()));
    publish_shard_gauges(i, sh.buffer);
  }
  capacity_bytes_ = static_cast<std::size_t>(capacity);
  obs_capacity_->set(static_cast<double>(capacity_bytes_));
}

}  // namespace r4ncl::core
