// Packed streaming source of new-task latents.
//
// The run engines recompute the new-task latent activations every CL epoch
// (Alg. 1 line 23).  The materialized path stores them as a dense
// data::Dataset — size × (T × C) bytes held for the whole epoch.
// PackedLatentSet runs the same frozen-prefix inference over the same
// contiguous batch_size blocks (bit-identical latents — the adaptive
// threshold couples each sample's latent to its block, so the blocking must
// match to_latents exactly), but stores every raster compressed: per sample
// the smaller of AER and 1-bit packing (compress::aer_is_smaller), the same
// crossover the replay buffer's format analysis exposes.  fetch(i) decodes
// into a single scratch slot, so the SNN trainer's streaming batch assembly
// never materializes the set densely.
//
// When insertion == 0 the "latents" are the raw input samples; the set
// borrows the dataset and fetch is a zero-copy passthrough.
//
// Decoding charges nothing to SpikeOpStats, matching the materialized path
// (to_latents charges only the run_hidden inference, which this constructor
// charges identically).
#pragma once

#include <cstdint>
#include <vector>

#include "compress/aer.hpp"
#include "compress/bitpack.hpp"
#include "data/spike_data.hpp"
#include "snn/network.hpp"

namespace r4ncl::core {

class PackedLatentSet {
 public:
  /// Runs the frozen prefix [0, insertion) over `dataset` in contiguous
  /// batch_size blocks, packing each latent raster as it is produced.
  /// `stats` receives the inference work (exactly what to_latents charges).
  /// With insertion == 0, borrows `dataset` (which must outlive the set).
  PackedLatentSet(const snn::SnnNetwork& net, const data::Dataset& dataset,
                  std::size_t insertion, const snn::ThresholdPolicy& policy,
                  std::size_t batch_size, snn::SpikeOpStats* stats);

  [[nodiscard]] std::size_t size() const noexcept {
    return passthrough_ != nullptr ? passthrough_->size() : entries_.size();
  }
  [[nodiscard]] std::int32_t label(std::size_t i) const;

  /// Sample `i`, decoded into an internal scratch slot — valid until the
  /// next fetch() (the snn::SampleSource streaming contract).
  const data::Sample& fetch(std::size_t i);

  /// Compressed payload bytes held (0 in passthrough mode).
  [[nodiscard]] std::size_t packed_bytes() const noexcept { return packed_bytes_; }
  /// Entries for which AER beat bit-packing.
  [[nodiscard]] std::size_t aer_entries() const noexcept { return aer_entries_; }

 private:
  struct Entry {
    bool use_aer = false;
    compress::PackedRaster packed;  // when !use_aer
    compress::AerRaster aer;        // when use_aer
    std::int32_t label = 0;
  };

  const data::Dataset* passthrough_ = nullptr;
  std::vector<Entry> entries_;
  data::Sample scratch_;
  std::size_t packed_bytes_ = 0;
  std::size_t aer_entries_ = 0;
};

}  // namespace r4ncl::core
