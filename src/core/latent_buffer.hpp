// Latent replay buffer: the on-device store of old-knowledge activations.
//
// Holds bit-packed (optionally codec-compressed, optionally sub-byte
// quantized — CodecConfig::latent_bits) spike rasters captured at the LR
// insertion layer, plus labels.  memory_bytes() is the quantity
// reported in Fig. 12: payload bytes plus a fixed per-sample header
// (geometry + label; codec-compressed entries additionally carry codec
// metadata, which is why SpikingLR's per-sample overhead is slightly larger
// — reproducing the paper's 20–21.88% savings band).
//
// The buffer operates under an explicit *byte budget* (ReplayBufferConfig):
// embedded deployments give latent replay a fixed memory region, so a stream
// of arriving classes must trigger eviction rather than growth.  Five
// selection policies are provided (cf. Pellegrini et al., "Latent Replay for
// Real-Time Continual Learning"; Ravaglia et al., TinyML quantized latent
// replays):
//   kFifo          — evict the oldest stored entries first
//   kReservoir     — Vitter's Algorithm R: every entry of the stream is
//                    retained with equal probability capacity/N
//   kClassBalanced — evict the oldest entry of the most-represented class,
//                    driving per-class occupancy toward equality
//   kLowImportance — content-aware: evict the least-important entry.
//                    Importance is the spike density recorded at insert time
//                    until the trainer feeds back a running loss/error score
//                    via report_outcome(), which then supersedes the static
//                    proxy.  An incoming entry strictly sparser than a
//                    victim still on its density proxy is rejected instead
//                    (density-vs-density only — trainer-scored victims never
//                    block admission, so saturated error scores cannot
//                    starve new-task latents out of the buffer).
//   kImportanceClassBalanced — balance first, then score: evict the
//                    least-important entry of the most-represented class.
// capacity_bytes == 0 keeps the historical unbounded behaviour.
//
// The byte budget itself may move at task boundaries (BudgetSchedule): real
// devices share the replay region with other subsystems, so the run engines
// re-apply the scheduled capacity before each task and the buffer re-evicts
// deterministically (per its policy and private rng) down to the new cap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "compress/spike_codec.hpp"
#include "data/spike_data.hpp"
#include "snn/layer.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace r4ncl::obs {
class Counter;
}  // namespace r4ncl::obs

namespace r4ncl::core {

class ReplayStream;

/// Which stored entry gives way when an add() would exceed the byte budget.
enum class ReplayPolicy : std::uint8_t {
  kFifo,           // oldest entry evicted first
  kReservoir,      // stream-uniform retention (Algorithm R)
  kClassBalanced,  // evict oldest entry of the most-represented class
  kLowImportance,  // evict (or reject) the least-important entry
  kImportanceClassBalanced,  // least-important entry of the heaviest class
};

/// Canonical lowercase name ("fifo", "reservoir", "class_balanced",
/// "low_importance", "importance_class_balanced").
[[nodiscard]] std::string_view to_string(ReplayPolicy policy) noexcept;

/// Inverse of to_string(); also accepts "balanced" and "importance_balanced".
/// Throws Error on unknown names (the CLI surfaces route user input through
/// this, so the message pins the full valid set).
[[nodiscard]] ReplayPolicy parse_replay_policy(std::string_view name);

/// Whether a policy consults per-entry importance scores (and therefore
/// benefits from the trainer's report_outcome() feedback).
[[nodiscard]] constexpr bool is_importance_policy(ReplayPolicy policy) noexcept {
  return policy == ReplayPolicy::kLowImportance ||
         policy == ReplayPolicy::kImportanceClassBalanced;
}

/// How the byte budget evolves over a task stream.  `const` keeps
/// ReplayBufferConfig::capacity_bytes for the whole run (the historical
/// behaviour); the other kinds model a replay region another subsystem
/// claims progressively (linear) or abruptly (step).
enum class BudgetScheduleKind : std::uint8_t {
  kConst,   // capacity_bytes for every task
  kLinear,  // interpolate start → end bytes across the task stream
  kStep,    // capacity_bytes until step_task, step_bytes from then on
};

/// Per-task byte-budget schedule, applied by the run engines at task
/// boundaries via LatentReplayBuffer::set_capacity().
struct BudgetSchedule {
  BudgetScheduleKind kind = BudgetScheduleKind::kConst;
  /// kLinear endpoints (bytes at the first / last task of the stream).
  std::size_t linear_start = 0;
  std::size_t linear_end = 0;
  /// kStep: from task index `step_task` on, the capacity becomes step_bytes.
  std::size_t step_task = 0;
  std::size_t step_bytes = 0;

  /// kConst schedules never override the run's base capacity.
  [[nodiscard]] bool active() const noexcept { return kind != BudgetScheduleKind::kConst; }

  /// Capacity for task `task` of a `num_tasks`-task stream whose base
  /// (unscheduled) capacity is `base_capacity`.  kLinear interpolates
  /// linearly and rounds to the nearest byte; a single-task stream uses
  /// linear_start.  0 means unbounded, exactly as in ReplayBufferConfig.
  [[nodiscard]] std::size_t capacity_for_task(std::size_t task, std::size_t num_tasks,
                                              std::size_t base_capacity) const noexcept;

  /// Canonical spec string ("const", "linear:<start>:<end>",
  /// "step:<task>:<bytes>") — the inverse of parse_budget_schedule().
  [[nodiscard]] std::string spec() const;
};

/// Parses a schedule spec: "const" | "linear:<start>:<end>" |
/// "step:<task>:<bytes>" (byte/task fields are non-negative integers).
/// Throws Error naming the valid forms on anything else — the CLI surfaces
/// validate eagerly through this, so a typo fails before any training runs.
[[nodiscard]] BudgetSchedule parse_budget_schedule(std::string_view spec);

/// Byte budget + eviction policy of a replay buffer.
struct ReplayBufferConfig {
  /// Hard ceiling on memory_bytes(); 0 = unbounded (historical behaviour).
  std::size_t capacity_bytes = 0;
  ReplayPolicy policy = ReplayPolicy::kFifo;
  /// Seed of the buffer's private eviction stream (reservoir draws).  Run
  /// engines mix their run seed into this so whole runs reproduce.
  std::uint64_t seed = 0x5eedb0ffe7ULL;

  /// Copy with the run seed mixed into the eviction stream — the one
  /// derivation both run engines use, so reservoir displacement reproduces
  /// per run without correlating across seeds.
  [[nodiscard]] ReplayBufferConfig with_run_seed(std::uint64_t run_seed) const noexcept {
    ReplayBufferConfig mixed = *this;
    mixed.seed ^= (run_seed + 1) * 0x9E3779B97F4A7C15ULL;
    return mixed;
  }
};

/// Salt deriving the per-run replay-draw Rng (LatentReplayBuffer::sample())
/// from the run seed.  Shared by both run engines; the default
/// full-materialize path never consumes from that stream, so legacy runs
/// stay bit-identical.
inline constexpr std::uint64_t kReplayDrawSeedSalt = 0xA11CE5EEDBEEFULL;

/// Smoothing factor of the report_outcome() running score: each report moves
/// the stored score a quarter of the way toward the new observation, so one
/// bad epoch cannot un-pin an entry the trainer consistently gets wrong.
inline constexpr float kOutcomeEma = 0.25f;

/// Uniform draw without replacement over [0, population) — the shared index
/// draw behind LatentReplayBuffer::draw_indices and the sharded engine's
/// global (cross-shard) draw.  k >= population returns the identity
/// permutation and consumes no rng draws (the materialize() fallback);
/// otherwise a partial Fisher–Yates consumes exactly k draws.
[[nodiscard]] std::vector<std::size_t> draw_replay_indices(std::size_t population,
                                                           std::size_t k, Rng& rng);

/// Read-side interface over a store of replayable latent entries addressed by
/// logical index.  ReplayStream drives its decode through this, so one
/// streaming cursor implementation serves both a single LatentReplayBuffer
/// and the ShardedReplayEngine's concatenated (cross-shard) index space.
class ReplayEntrySource {
 public:
  virtual ~ReplayEntrySource() = default;

  /// Live entries addressable as logical indices [0, size()).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  /// Timestep length of the rasters decompress_into() produces.
  [[nodiscard]] virtual std::size_t activation_timesteps() const noexcept = 0;
  /// Channel width of the stored activations (0 while empty).
  [[nodiscard]] virtual std::size_t channels() const noexcept = 0;
  /// Label of the entry at logical `index` (no decode).
  [[nodiscard]] virtual std::int32_t label_at(std::size_t index) const = 0;
  /// Decompresses the entry at logical `index` into `out`, reusing its
  /// allocations (and `levels_scratch` for quantized payload codes).
  virtual void decompress_into(std::size_t index, data::Sample& out,
                               snn::SpikeOpStats* stats,
                               std::vector<std::uint8_t>* levels_scratch) const = 0;
};

class LatentReplayBuffer : public ReplayEntrySource {
 public:
  /// `activation_timesteps` is the timestep length of the rasters handed to
  /// add() (and returned by materialize()); the codec may store fewer.
  LatentReplayBuffer(const compress::CodecConfig& codec, std::size_t activation_timesteps,
                     const ReplayBufferConfig& budget = {});

  /// Compresses and stores one latent activation raster, evicting per the
  /// configured policy when the byte budget would be exceeded.  All rasters
  /// in a buffer must share the channel width (the insertion-layer width);
  /// the first add() fixes it.  Returns false when the policy chose to drop
  /// the *incoming* entry instead (reservoir rejection); memory_bytes() <=
  /// capacity_bytes holds on return either way.
  bool add(const data::SpikeRaster& raster, std::int32_t label);

  /// Channel width of the stored activations (0 while empty).
  [[nodiscard]] std::size_t channels() const noexcept override { return channels_; }

  [[nodiscard]] std::size_t size() const noexcept override { return order_.size() - head_; }
  [[nodiscard]] bool empty() const noexcept { return order_.size() == head_; }
  [[nodiscard]] std::size_t activation_timesteps() const noexcept override {
    return activation_timesteps_;
  }
  [[nodiscard]] const compress::CodecConfig& codec() const noexcept { return codec_; }
  [[nodiscard]] const ReplayBufferConfig& budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return budget_.capacity_bytes; }

  /// Moves the byte budget (a BudgetSchedule boundary).  Growing (or 0 =
  /// unbounded) never touches stored entries; shrinking re-evicts per the
  /// configured policy — FIFO from the head, reservoir a uniform victim from
  /// the buffer's private rng, the class/importance policies their usual
  /// victim — until memory_bytes() fits, so the same seed and stream yield a
  /// byte-identical buffer on every run.
  void set_capacity(std::size_t new_capacity_bytes);

  /// Entries offered to add() over the buffer's lifetime.  Per-instance
  /// compatibility shim: the process-wide aggregate of the same event stream
  /// is the `replay_buffer.adds` counter in obs::MetricsRegistry::snapshot().
  [[nodiscard]] std::size_t stream_seen() const noexcept { return stream_seen_; }
  /// Entries displaced by the budget (stored entries evicted + incoming
  /// entries the reservoir rejected).  Per-instance compatibility shim over
  /// the same events the registry aggregates as `replay_buffer.evictions`
  /// (and per-policy as `replay_buffer.evictions.<policy>`) — new telemetry
  /// consumers should read obs::MetricsRegistry::snapshot() instead.
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

  /// Occupancy per class, sorted by label ascending; counts sum to size().
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::size_t>> class_occupancy() const;

  /// Total storage footprint in bytes (payload + per-sample headers).
  /// Maintained incrementally, so the budget check in add() is O(1).
  /// Fleet-wide occupancy is published by ShardedReplayEngine as the
  /// `replay_engine.shard<i>.occupancy_bytes` gauges in the obs registry.
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return memory_bytes_; }

  /// Decompresses the whole buffer into a replay dataset (A_LR in Alg. 1).
  /// When `stats` is non-null the codec work is charged as decompress_bits
  /// (zero when the codec ratio is 1, i.e. raw storage).
  [[nodiscard]] data::Dataset materialize(snn::SpikeOpStats* stats = nullptr) const;

  /// Uniformly draws min(k, size()) distinct entries and decompresses only
  /// those — the per-epoch hot path when the buffer is larger than one
  /// epoch's replay appetite.  decompress_bits is charged for the drawn
  /// entries only, proportional to what is actually decompressed.
  [[nodiscard]] data::Dataset sample(std::size_t k, Rng& rng,
                                     snn::SpikeOpStats* stats = nullptr) const;

  /// The index draw behind sample(), without the decode: min(k, size())
  /// distinct logical indices, uniform without replacement (partial
  /// Fisher–Yates).  k >= size() returns the whole buffer in storage order
  /// and consumes no rng draws — exactly sample()'s materialize fallback —
  /// so for the same Rng the returned set is bit-identical to what sample()
  /// would decompress.
  [[nodiscard]] std::vector<std::size_t> draw_indices(std::size_t k, Rng& rng) const;

  /// sample() that also tells the caller *which* entries it drew: appends
  /// the decoded entries to `out` (same rng consumption, bytes and
  /// decompress_bits charging as sample()/materialize()) and returns the
  /// drawn logical indices — the importance-feedback replay assembly both
  /// run engines share, so the per-sample outcome hook can route each
  /// replayed row's error back to its entry via report_outcome().
  std::vector<std::size_t> sample_into(std::size_t k, Rng& rng, data::Dataset& out,
                                       snn::SpikeOpStats* stats = nullptr) const;

  /// Opens a streaming minibatch cursor over a draw (see ReplayStream):
  /// the same entry set as sample(k, rng) for the same Rng, but decoded at
  /// most `minibatch` rasters at a time into a reusable scratch pool, with
  /// decompress_bits charged incrementally per decoded entry.  The buffer
  /// must outlive the stream and not be mutated while it is open.
  [[nodiscard]] ReplayStream stream(std::size_t k, Rng& rng, std::size_t minibatch = 16,
                                    snn::SpikeOpStats* stats = nullptr) const;

  /// Label of the entry at logical index `index` (no decode).
  [[nodiscard]] std::int32_t label_at(std::size_t index) const override;

  /// Spike density of the entry at logical `index`, recorded at add() time
  /// (spikes / (timesteps × channels) of the *source* raster) — the static
  /// importance proxy, free because add() already walks the raster.
  [[nodiscard]] float density_at(std::size_t index) const;

  /// Effective importance of the entry at logical `index`: the running
  /// report_outcome() score once the trainer has reported one, the insert
  /// density before that.  Higher = more informative = evicted later.
  [[nodiscard]] float importance_at(std::size_t index) const;

  /// Trainer feedback hook: folds a loss/error observation for the entry at
  /// logical `index` into its running importance score (EMA, kOutcomeEma).
  /// Run engines call this after each replay draw with the per-sample top-1
  /// error, so entries the network keeps getting wrong are retained longest.
  /// Touches only score bookkeeping — safe while a ReplayStream is open, and
  /// a no-op for the content-blind policies' determinism (scores are always
  /// maintained but only the importance policies read them).
  void report_outcome(std::size_t index, float score);

  /// Builds the snn::TrainOptions::sample_outcome callback both run engines
  /// install: training-set indices >= `new_count` are replay rows whose
  /// logical buffer index is `drawn[i - new_count]`; their errors route to
  /// report_outcome().  `drawn` is borrowed (a sample_into() result or
  /// ReplayStream::drawn()) and must outlive the returned hook.
  [[nodiscard]] std::function<void(std::size_t, float)> outcome_hook(
      const std::vector<std::size_t>& drawn, std::size_t new_count) {
    return [this, &drawn, new_count](std::size_t i, float error) {
      if (i >= new_count) report_outcome(drawn[i - new_count], error);
    };
  }

  /// Decompresses the entry at logical `index` into `out`, reusing its
  /// allocations (and `levels_scratch`, when given, for quantized payload
  /// codes) — the ReplayStream decode path.  Charges decompress_bits exactly
  /// as sample()/materialize() do.
  void decompress_into(std::size_t index, data::Sample& out,
                       snn::SpikeOpStats* stats = nullptr,
                       std::vector<std::uint8_t>* levels_scratch = nullptr) const override;

  /// Stored bits per payload element (0 = legacy binary storage).
  [[nodiscard]] std::uint8_t latent_bits() const noexcept { return codec_.latent_bits; }

  /// Serializes the complete buffer state: capacity, eviction-rng snapshot,
  /// stream/eviction counters, and every live entry in logical order with its
  /// quantized payload byte-copied as-is (no decode).  Together with the
  /// restored rng this makes a loaded buffer behave bit-identically to the
  /// saved one for every subsequent add/evict/sample.
  void save(BinaryWriter& out) const;

  /// Replaces this buffer's contents with a saved snapshot.  The buffer must
  /// be constructed with the run's codec/timesteps/policy (the checkpoint
  /// verifies policy and timesteps with pinned mismatch errors); entries are
  /// rebuilt compacted (dense slots, identity order) — logical order, and
  /// therefore all observable behaviour, is preserved.  Every geometry and
  /// byte-accounting field is validated before use, so a corrupt snapshot
  /// throws r4ncl::Error instead of mis-indexing.
  void load(BinaryReader& in);

  /// Per-sample header bytes: raster geometry (2×u32) + label (i32) +
  /// buffer-entry bookkeeping (u32) = 16; codec entries (time-grouped and/or
  /// quantized) add ratio/strategy/bit-depth/original-length metadata
  /// (8 more).
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return (codec_.ratio > 1 || codec_.quantized()) ? 24 : 16;
  }

 private:
  struct Entry {
    compress::PackedRaster packed;
    std::int32_t label = 0;
    /// Spike density of the source raster at add() time (importance proxy).
    float density = 0.0f;
    /// Running trainer-fed loss/error score; valid once outcome_valid.
    float outcome = 0.0f;
    bool outcome_valid = false;

    [[nodiscard]] float importance() const noexcept {
      return outcome_valid ? outcome : density;
    }
  };

  /// Entry at logical position `index` (0 = oldest stored).  Logical order
  /// is insertion order with evicted entries spliced out — the same order a
  /// plain vector-with-erase would expose, but backed by an index ring so
  /// eviction never moves Entry payloads: slots_ is stable append-only
  /// storage (freed slots recycled through free_slots_), order_ holds slot
  /// ids, and head_ is the ring head a FIFO eviction bumps in O(1).
  [[nodiscard]] const Entry& entry_at(std::size_t index) const noexcept {
    return slots_[order_[head_ + index]];
  }
  [[nodiscard]] Entry& entry_at(std::size_t index) noexcept {
    return slots_[order_[head_ + index]];
  }
  [[nodiscard]] std::size_t entry_bytes(const Entry& e) const noexcept;
  [[nodiscard]] data::Sample decompress_entry(const Entry& e,
                                              snn::SpikeOpStats* stats) const;
  /// Charges the codec's decompression work for one entry (no-op for raw
  /// storage or when stats is null).
  void charge_decompress(const Entry& e, snn::SpikeOpStats* stats) const;
  /// Removes the entry at logical `index`, maintaining the byte and class
  /// accounting.  index 0 (the FIFO case) is amortized O(1); middle
  /// evictions splice a 4-byte slot id out of order_, never an Entry.
  void evict_at(std::size_t index);
  /// Label of the most-represented class; when `incoming` is non-null that
  /// label counts toward its class (ties go to the smallest label).
  [[nodiscard]] std::int32_t heaviest_class(const std::int32_t* incoming) const;
  /// Index of the oldest stored entry of the most-represented class (the
  /// incoming label counts toward its class; ties go to the smallest label)
  /// — the kClassBalanced victim.
  [[nodiscard]] std::size_t balanced_victim(const std::int32_t* incoming) const;
  /// Index of the least-important stored entry (ties go to the oldest) —
  /// the kLowImportance victim.
  [[nodiscard]] std::size_t least_important_victim() const;
  /// Least-important entry of the most-represented class — the
  /// kImportanceClassBalanced victim.
  [[nodiscard]] std::size_t importance_balanced_victim(const std::int32_t* incoming) const;
  /// Evicts per the configured policy until `bytes` more would fit under
  /// `capacity` (the shared add()/set_capacity() shrink loop; incoming is
  /// null during a shrink).  Reservoir shrinks displace a uniform stored
  /// victim from the buffer's private rng — Algorithm R's incoming-rejection
  /// branch happens in add() before this runs.
  void evict_until_fits(std::size_t capacity, std::size_t bytes,
                        const std::int32_t* incoming);
  /// Bumps evictions_ and the registry's total + per-policy eviction
  /// counters — the one place a displacement (stored or incoming) is counted.
  void note_eviction() noexcept;

  compress::CodecConfig codec_;
  std::size_t activation_timesteps_;
  ReplayBufferConfig budget_;
  Rng rng_;
  std::size_t channels_ = 0;
  std::size_t memory_bytes_ = 0;
  std::size_t stream_seen_ = 0;
  std::size_t evictions_ = 0;
  /// Stable entry storage; never reordered, freed slots are reused.
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Logical (insertion) order of live entries as slot ids; order_[head_]
  /// is the oldest.  The dead prefix [0, head_) is compacted amortizedly.
  std::vector<std::uint32_t> order_;
  std::size_t head_ = 0;
  /// Parallel per-class counts (label → stored entries), kept sorted.
  std::vector<std::pair<std::int32_t, std::size_t>> class_counts_;
  /// Balanced-victim index, maintained only for the class-balanced policies
  /// (uses_class_queues_): per-class FIFO queues of slot ids in insertion
  /// order.  The kClassBalanced victim is the queue front of the heaviest
  /// class — O(#classes) per eviction instead of an O(n) ring scan — and the
  /// kImportanceClassBalanced scan walks one class queue instead of the ring.
  std::map<std::int32_t, std::deque<std::uint32_t>> class_queues_;
  /// slot id → absolute position in order_ (logical index = position -
  /// head_), so a queued slot resolves to its logical index without a scan.
  /// Only maintained when uses_class_queues_.
  std::vector<std::uint32_t> order_pos_;
  bool uses_class_queues_ = false;
  /// Registry handles (obs::metrics()), resolved once at construction.
  /// Observation-only: a disarmed registry turns every add() into a relaxed
  /// load, so instrumented and bare buffers behave bit-identically.
  obs::Counter* obs_adds_;
  obs::Counter* obs_evictions_;
  obs::Counter* obs_policy_evictions_;
  obs::Counter* obs_decompress_bits_;
  obs::Counter* obs_restored_;
};

}  // namespace r4ncl::core
