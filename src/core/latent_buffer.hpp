// Latent replay buffer: the on-device store of old-knowledge activations.
//
// Holds bit-packed (optionally codec-compressed) spike rasters captured at
// the LR insertion layer, plus labels.  memory_bytes() is the quantity
// reported in Fig. 12: payload bytes plus a fixed per-sample header
// (geometry + label; codec-compressed entries additionally carry codec
// metadata, which is why SpikingLR's per-sample overhead is slightly larger
// — reproducing the paper's 20–21.88% savings band).
#pragma once

#include <cstdint>
#include <vector>

#include "compress/spike_codec.hpp"
#include "data/spike_data.hpp"
#include "snn/layer.hpp"

namespace r4ncl::core {

class LatentReplayBuffer {
 public:
  /// `activation_timesteps` is the timestep length of the rasters handed to
  /// add() (and returned by materialize()); the codec may store fewer.
  LatentReplayBuffer(const compress::CodecConfig& codec, std::size_t activation_timesteps);

  /// Compresses and stores one latent activation raster.  All rasters in a
  /// buffer must share the channel width (the insertion-layer width); the
  /// first add() fixes it.
  void add(const data::SpikeRaster& raster, std::int32_t label);

  /// Channel width of the stored activations (0 while empty).
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t activation_timesteps() const noexcept {
    return activation_timesteps_;
  }
  [[nodiscard]] const compress::CodecConfig& codec() const noexcept { return codec_; }

  /// Total storage footprint in bytes (payload + per-sample headers).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Decompresses the whole buffer into a replay dataset (A_LR in Alg. 1).
  /// When `stats` is non-null the codec work is charged as decompress_bits
  /// (zero when the codec ratio is 1, i.e. raw storage).
  [[nodiscard]] data::Dataset materialize(snn::SpikeOpStats* stats = nullptr) const;

  /// Per-sample header bytes: raster geometry (2×u32) + label (i32) +
  /// buffer-entry bookkeeping (u32) = 16; codec entries add ratio/strategy/
  /// original-length metadata (8 more).
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return codec_.ratio > 1 ? 24 : 16;
  }

 private:
  struct Entry {
    compress::PackedRaster packed;
    std::int32_t label = 0;
  };
  compress::CodecConfig codec_;
  std::size_t activation_timesteps_;
  std::size_t channels_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace r4ncl::core
