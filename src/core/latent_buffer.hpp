// Latent replay buffer: the on-device store of old-knowledge activations.
//
// Holds bit-packed (optionally codec-compressed, optionally sub-byte
// quantized — CodecConfig::latent_bits) spike rasters captured at the LR
// insertion layer, plus labels.  memory_bytes() is the quantity
// reported in Fig. 12: payload bytes plus a fixed per-sample header
// (geometry + label; codec-compressed entries additionally carry codec
// metadata, which is why SpikingLR's per-sample overhead is slightly larger
// — reproducing the paper's 20–21.88% savings band).
//
// The buffer operates under an explicit *byte budget* (ReplayBufferConfig):
// embedded deployments give latent replay a fixed memory region, so a stream
// of arriving classes must trigger eviction rather than growth.  Three
// selection policies are provided (cf. Pellegrini et al., "Latent Replay for
// Real-Time Continual Learning"; Ravaglia et al., TinyML quantized latent
// replays):
//   kFifo          — evict the oldest stored entries first
//   kReservoir     — Vitter's Algorithm R: every entry of the stream is
//                    retained with equal probability capacity/N
//   kClassBalanced — evict the oldest entry of the most-represented class,
//                    driving per-class occupancy toward equality
// capacity_bytes == 0 keeps the historical unbounded behaviour.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "compress/spike_codec.hpp"
#include "data/spike_data.hpp"
#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace r4ncl::core {

class ReplayStream;

/// Which stored entry gives way when an add() would exceed the byte budget.
enum class ReplayPolicy : std::uint8_t {
  kFifo,           // oldest entry evicted first
  kReservoir,      // stream-uniform retention (Algorithm R)
  kClassBalanced,  // evict oldest entry of the most-represented class
};

/// Canonical lowercase name ("fifo", "reservoir", "class_balanced").
[[nodiscard]] std::string_view to_string(ReplayPolicy policy) noexcept;

/// Inverse of to_string(); also accepts "balanced".  Throws Error on unknown
/// names (the CLI surfaces route user input through this).
[[nodiscard]] ReplayPolicy parse_replay_policy(std::string_view name);

/// Byte budget + eviction policy of a replay buffer.
struct ReplayBufferConfig {
  /// Hard ceiling on memory_bytes(); 0 = unbounded (historical behaviour).
  std::size_t capacity_bytes = 0;
  ReplayPolicy policy = ReplayPolicy::kFifo;
  /// Seed of the buffer's private eviction stream (reservoir draws).  Run
  /// engines mix their run seed into this so whole runs reproduce.
  std::uint64_t seed = 0x5eedb0ffe7ULL;

  /// Copy with the run seed mixed into the eviction stream — the one
  /// derivation both run engines use, so reservoir displacement reproduces
  /// per run without correlating across seeds.
  [[nodiscard]] ReplayBufferConfig with_run_seed(std::uint64_t run_seed) const noexcept {
    ReplayBufferConfig mixed = *this;
    mixed.seed ^= (run_seed + 1) * 0x9E3779B97F4A7C15ULL;
    return mixed;
  }
};

/// Salt deriving the per-run replay-draw Rng (LatentReplayBuffer::sample())
/// from the run seed.  Shared by both run engines; the default
/// full-materialize path never consumes from that stream, so legacy runs
/// stay bit-identical.
inline constexpr std::uint64_t kReplayDrawSeedSalt = 0xA11CE5EEDBEEFULL;

class LatentReplayBuffer {
 public:
  /// `activation_timesteps` is the timestep length of the rasters handed to
  /// add() (and returned by materialize()); the codec may store fewer.
  LatentReplayBuffer(const compress::CodecConfig& codec, std::size_t activation_timesteps,
                     const ReplayBufferConfig& budget = {});

  /// Compresses and stores one latent activation raster, evicting per the
  /// configured policy when the byte budget would be exceeded.  All rasters
  /// in a buffer must share the channel width (the insertion-layer width);
  /// the first add() fixes it.  Returns false when the policy chose to drop
  /// the *incoming* entry instead (reservoir rejection); memory_bytes() <=
  /// capacity_bytes holds on return either way.
  bool add(const data::SpikeRaster& raster, std::int32_t label);

  /// Channel width of the stored activations (0 while empty).
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }

  [[nodiscard]] std::size_t size() const noexcept { return order_.size() - head_; }
  [[nodiscard]] bool empty() const noexcept { return order_.size() == head_; }
  [[nodiscard]] std::size_t activation_timesteps() const noexcept {
    return activation_timesteps_;
  }
  [[nodiscard]] const compress::CodecConfig& codec() const noexcept { return codec_; }
  [[nodiscard]] const ReplayBufferConfig& budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return budget_.capacity_bytes; }

  /// Entries offered to add() over the buffer's lifetime.
  [[nodiscard]] std::size_t stream_seen() const noexcept { return stream_seen_; }
  /// Entries displaced by the budget (stored entries evicted + incoming
  /// entries the reservoir rejected).
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

  /// Occupancy per class, sorted by label ascending; counts sum to size().
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::size_t>> class_occupancy() const;

  /// Total storage footprint in bytes (payload + per-sample headers).
  /// Maintained incrementally, so the budget check in add() is O(1).
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return memory_bytes_; }

  /// Decompresses the whole buffer into a replay dataset (A_LR in Alg. 1).
  /// When `stats` is non-null the codec work is charged as decompress_bits
  /// (zero when the codec ratio is 1, i.e. raw storage).
  [[nodiscard]] data::Dataset materialize(snn::SpikeOpStats* stats = nullptr) const;

  /// Uniformly draws min(k, size()) distinct entries and decompresses only
  /// those — the per-epoch hot path when the buffer is larger than one
  /// epoch's replay appetite.  decompress_bits is charged for the drawn
  /// entries only, proportional to what is actually decompressed.
  [[nodiscard]] data::Dataset sample(std::size_t k, Rng& rng,
                                     snn::SpikeOpStats* stats = nullptr) const;

  /// The index draw behind sample(), without the decode: min(k, size())
  /// distinct logical indices, uniform without replacement (partial
  /// Fisher–Yates).  k >= size() returns the whole buffer in storage order
  /// and consumes no rng draws — exactly sample()'s materialize fallback —
  /// so for the same Rng the returned set is bit-identical to what sample()
  /// would decompress.
  [[nodiscard]] std::vector<std::size_t> draw_indices(std::size_t k, Rng& rng) const;

  /// Opens a streaming minibatch cursor over a draw (see ReplayStream):
  /// the same entry set as sample(k, rng) for the same Rng, but decoded at
  /// most `minibatch` rasters at a time into a reusable scratch pool, with
  /// decompress_bits charged incrementally per decoded entry.  The buffer
  /// must outlive the stream and not be mutated while it is open.
  [[nodiscard]] ReplayStream stream(std::size_t k, Rng& rng, std::size_t minibatch = 16,
                                    snn::SpikeOpStats* stats = nullptr) const;

  /// Label of the entry at logical index `index` (no decode).
  [[nodiscard]] std::int32_t label_at(std::size_t index) const;

  /// Decompresses the entry at logical `index` into `out`, reusing its
  /// allocations (and `levels_scratch`, when given, for quantized payload
  /// codes) — the ReplayStream decode path.  Charges decompress_bits exactly
  /// as sample()/materialize() do.
  void decompress_into(std::size_t index, data::Sample& out,
                       snn::SpikeOpStats* stats = nullptr,
                       std::vector<std::uint8_t>* levels_scratch = nullptr) const;

  /// Stored bits per payload element (0 = legacy binary storage).
  [[nodiscard]] std::uint8_t latent_bits() const noexcept { return codec_.latent_bits; }

  /// Per-sample header bytes: raster geometry (2×u32) + label (i32) +
  /// buffer-entry bookkeeping (u32) = 16; codec entries (time-grouped and/or
  /// quantized) add ratio/strategy/bit-depth/original-length metadata
  /// (8 more).
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return (codec_.ratio > 1 || codec_.quantized()) ? 24 : 16;
  }

 private:
  struct Entry {
    compress::PackedRaster packed;
    std::int32_t label = 0;
  };

  /// Entry at logical position `index` (0 = oldest stored).  Logical order
  /// is insertion order with evicted entries spliced out — the same order a
  /// plain vector-with-erase would expose, but backed by an index ring so
  /// eviction never moves Entry payloads: slots_ is stable append-only
  /// storage (freed slots recycled through free_slots_), order_ holds slot
  /// ids, and head_ is the ring head a FIFO eviction bumps in O(1).
  [[nodiscard]] const Entry& entry_at(std::size_t index) const noexcept {
    return slots_[order_[head_ + index]];
  }
  [[nodiscard]] std::size_t entry_bytes(const Entry& e) const noexcept;
  [[nodiscard]] data::Sample decompress_entry(const Entry& e,
                                              snn::SpikeOpStats* stats) const;
  /// Charges the codec's decompression work for one entry (no-op for raw
  /// storage or when stats is null).
  void charge_decompress(const Entry& e, snn::SpikeOpStats* stats) const;
  /// Removes the entry at logical `index`, maintaining the byte and class
  /// accounting.  index 0 (the FIFO case) is amortized O(1); middle
  /// evictions splice a 4-byte slot id out of order_, never an Entry.
  void evict_at(std::size_t index);
  /// Index of the oldest stored entry of the most-represented class (the
  /// incoming label counts toward its class; ties go to the smallest label)
  /// — the kClassBalanced victim.
  [[nodiscard]] std::size_t balanced_victim(std::int32_t incoming) const;

  compress::CodecConfig codec_;
  std::size_t activation_timesteps_;
  ReplayBufferConfig budget_;
  Rng rng_;
  std::size_t channels_ = 0;
  std::size_t memory_bytes_ = 0;
  std::size_t stream_seen_ = 0;
  std::size_t evictions_ = 0;
  /// Stable entry storage; never reordered, freed slots are reused.
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Logical (insertion) order of live entries as slot ids; order_[head_]
  /// is the oldest.  The dead prefix [0, head_) is compacted amortizedly.
  std::vector<std::uint32_t> order_;
  std::size_t head_ = 0;
  /// Parallel per-class counts (label → stored entries), kept sorted.
  std::vector<std::pair<std::int32_t, std::size_t>> class_counts_;
};

}  // namespace r4ncl::core
