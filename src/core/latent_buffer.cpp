#include "core/latent_buffer.hpp"

#include "util/error.hpp"

namespace r4ncl::core {

LatentReplayBuffer::LatentReplayBuffer(const compress::CodecConfig& codec,
                                       std::size_t activation_timesteps)
    : codec_(codec), activation_timesteps_(activation_timesteps) {
  R4NCL_CHECK(activation_timesteps > 0, "activation_timesteps must be positive");
  R4NCL_CHECK(codec.ratio >= 1, "codec ratio must be >= 1");
}

void LatentReplayBuffer::add(const data::SpikeRaster& raster, std::int32_t label) {
  R4NCL_CHECK(raster.timesteps == activation_timesteps_,
              "raster has " << raster.timesteps << " steps, buffer expects "
                            << activation_timesteps_);
  if (entries_.empty()) {
    channels_ = raster.channels;
  } else {
    R4NCL_CHECK(raster.channels == channels_, "raster has " << raster.channels
                                                            << " channels, buffer holds "
                                                            << channels_);
  }
  Entry entry;
  entry.packed = compress::compress_packed(raster, codec_);
  entry.label = label;
  entries_.push_back(std::move(entry));
}

std::size_t LatentReplayBuffer::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += compress::stored_bytes(e.packed, header_bytes());
  }
  return total;
}

data::Dataset LatentReplayBuffer::materialize(snn::SpikeOpStats* stats) const {
  data::Dataset out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(
        {compress::decompress_packed(e.packed, activation_timesteps_, codec_), e.label});
    if (stats != nullptr && codec_.ratio > 1) {
      stats->decompress_bits += static_cast<std::uint64_t>(e.packed.payload_bytes()) * 8u;
    }
  }
  return out;
}

}  // namespace r4ncl::core
