#include "core/latent_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace r4ncl::core {

std::string_view to_string(ReplayPolicy policy) noexcept {
  switch (policy) {
    case ReplayPolicy::kFifo: return "fifo";
    case ReplayPolicy::kReservoir: return "reservoir";
    case ReplayPolicy::kClassBalanced: return "class_balanced";
  }
  return "unknown";
}

ReplayPolicy parse_replay_policy(std::string_view name) {
  if (name == "fifo") return ReplayPolicy::kFifo;
  if (name == "reservoir") return ReplayPolicy::kReservoir;
  if (name == "class_balanced" || name == "balanced") return ReplayPolicy::kClassBalanced;
  throw Error("unknown replay policy '" + std::string(name) +
              "' (expected fifo|reservoir|class_balanced)");
}

LatentReplayBuffer::LatentReplayBuffer(const compress::CodecConfig& codec,
                                       std::size_t activation_timesteps,
                                       const ReplayBufferConfig& budget)
    : codec_(codec), activation_timesteps_(activation_timesteps), budget_(budget),
      rng_(budget.seed) {
  R4NCL_CHECK(activation_timesteps > 0, "activation_timesteps must be positive");
  R4NCL_CHECK(codec.ratio >= 1, "codec ratio must be >= 1");
  R4NCL_CHECK(codec.latent_bits == 0 || compress::valid_payload_bits(codec.latent_bits),
              "latent_bits must be 0 (legacy) or 1/2/4/8, got "
                  << int(codec.latent_bits));
}

std::size_t LatentReplayBuffer::entry_bytes(const Entry& e) const noexcept {
  return compress::stored_bytes(e.packed, header_bytes());
}

bool LatentReplayBuffer::add(const data::SpikeRaster& raster, std::int32_t label) {
  R4NCL_CHECK(raster.timesteps == activation_timesteps_,
              "raster has " << raster.timesteps << " steps, buffer expects "
                            << activation_timesteps_);
  if (empty()) {
    channels_ = raster.channels;
  } else {
    R4NCL_CHECK(raster.channels == channels_, "raster has " << raster.channels
                                                            << " channels, buffer holds "
                                                            << channels_);
  }
  Entry entry;
  entry.packed = compress::compress_packed(raster, codec_);
  entry.label = label;
  const std::size_t bytes = entry_bytes(entry);
  ++stream_seen_;

  const std::size_t capacity = budget_.capacity_bytes;
  if (capacity > 0) {
    R4NCL_CHECK(bytes <= capacity, "capacity_bytes=" << capacity
                                                     << " cannot hold a single " << bytes
                                                     << "-byte entry");
    if (memory_bytes_ + bytes > capacity) {
      switch (budget_.policy) {
        case ReplayPolicy::kFifo:
          while (memory_bytes_ + bytes > capacity) evict_at(0);
          break;
        case ReplayPolicy::kReservoir: {
          // Algorithm R over the lifetime stream: keep the newcomer with
          // probability size/stream_seen, displacing a uniform victim.  All
          // entries share one geometry, so one eviction always makes room.
          const std::uint64_t j = rng_.uniform_index(stream_seen_);
          if (j >= size()) {
            ++evictions_;  // the incoming entry is the one displaced
            return false;
          }
          evict_at(static_cast<std::size_t>(j));
          break;
        }
        case ReplayPolicy::kClassBalanced:
          // The newcomer counts toward its class when picking the victim so
          // a stream heavy in one class displaces its own entries, not the
          // minority classes'.
          while (memory_bytes_ + bytes > capacity) evict_at(balanced_victim(label));
          break;
      }
    }
  }

  memory_bytes_ += bytes;
  auto it = std::lower_bound(class_counts_.begin(), class_counts_.end(), label,
                             [](const auto& p, std::int32_t l) { return p.first < l; });
  if (it == class_counts_.end() || it->first != label) {
    class_counts_.insert(it, {label, 1});
  } else {
    ++it->second;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(entry);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(entry));
  }
  order_.push_back(slot);
  return true;
}

void LatentReplayBuffer::evict_at(std::size_t index) {
  const std::size_t pos = head_ + index;
  const std::uint32_t slot = order_[pos];
  Entry& victim = slots_[slot];
  memory_bytes_ -= entry_bytes(victim);
  auto it = std::lower_bound(class_counts_.begin(), class_counts_.end(), victim.label,
                             [](const auto& p, std::int32_t l) { return p.first < l; });
  if (--it->second == 0) class_counts_.erase(it);
  victim = Entry{};  // release the payload allocation now, not at compaction
  free_slots_.push_back(slot);
  if (index == 0) {
    // FIFO hot case: bump the ring head instead of erasing, and compact the
    // dead prefix only once it dominates — amortized O(1) per eviction where
    // the old vector erase shifted every remaining Entry.
    ++head_;
    if (head_ >= 64 && head_ * 2 >= order_.size()) {
      order_.erase(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  } else {
    // Middle eviction (reservoir victim / balanced class): splice out a
    // 4-byte slot id; the Entry payloads never move.
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  ++evictions_;
}

std::size_t LatentReplayBuffer::balanced_victim(std::int32_t incoming) const {
  std::int32_t heaviest = 0;
  std::size_t heaviest_count = 0;
  for (const auto& [label, count] : class_counts_) {
    const std::size_t effective = count + (label == incoming ? 1u : 0u);
    if (effective > heaviest_count) {
      heaviest = label;
      heaviest_count = effective;
    }
  }
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (entry_at(i).label == heaviest) return i;
  }
  throw Error("class accounting out of sync with entries");
}

std::vector<std::pair<std::int32_t, std::size_t>> LatentReplayBuffer::class_occupancy()
    const {
  return class_counts_;
}

void LatentReplayBuffer::charge_decompress(const Entry& e, snn::SpikeOpStats* stats) const {
  // Codec entries charge their dequantization/re-expansion work per payload
  // bit, so narrower latent_bits shrink both storage and decompress cost
  // proportionally; raw 1-bit storage (ratio 1, no quantizer) stays free.
  if (stats != nullptr && (codec_.ratio > 1 || codec_.quantized())) {
    stats->decompress_bits += static_cast<std::uint64_t>(e.packed.payload_bytes()) * 8u;
  }
}

data::Sample LatentReplayBuffer::decompress_entry(const Entry& e,
                                                  snn::SpikeOpStats* stats) const {
  charge_decompress(e, stats);
  return {compress::decompress_packed(e.packed, activation_timesteps_, codec_), e.label};
}

std::int32_t LatentReplayBuffer::label_at(std::size_t index) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  return entry_at(index).label;
}

void LatentReplayBuffer::decompress_into(std::size_t index, data::Sample& out,
                                         snn::SpikeOpStats* stats,
                                         std::vector<std::uint8_t>* levels_scratch) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  const Entry& e = entry_at(index);
  charge_decompress(e, stats);
  compress::decompress_packed_into(e.packed, activation_timesteps_, codec_, out.raster,
                                   levels_scratch);
  out.label = e.label;
}

data::Dataset LatentReplayBuffer::materialize(snn::SpikeOpStats* stats) const {
  data::Dataset out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(decompress_entry(entry_at(i), stats));
  return out;
}

std::vector<std::size_t> LatentReplayBuffer::draw_indices(std::size_t k, Rng& rng) const {
  const std::size_t n = size();
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Whole-buffer draws keep storage order and consume no rng draws — the
  // materialize() fallback of sample(), preserved so streamed and
  // materialized paths stay bit-identical run-for-run.
  if (k >= n) return indices;
  // Partial Fisher–Yates: the first k slots become a uniform draw without
  // replacement, consuming exactly k rng draws in sample()'s order.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

data::Dataset LatentReplayBuffer::sample(std::size_t k, Rng& rng,
                                         snn::SpikeOpStats* stats) const {
  const std::vector<std::size_t> drawn = draw_indices(k, rng);
  data::Dataset out;
  out.reserve(drawn.size());
  for (const std::size_t i : drawn) out.push_back(decompress_entry(entry_at(i), stats));
  return out;
}

}  // namespace r4ncl::core
