#include "core/latent_buffer.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace r4ncl::core {

std::string_view to_string(ReplayPolicy policy) noexcept {
  switch (policy) {
    case ReplayPolicy::kFifo: return "fifo";
    case ReplayPolicy::kReservoir: return "reservoir";
    case ReplayPolicy::kClassBalanced: return "class_balanced";
    case ReplayPolicy::kLowImportance: return "low_importance";
    case ReplayPolicy::kImportanceClassBalanced: return "importance_class_balanced";
  }
  return "unknown";
}

ReplayPolicy parse_replay_policy(std::string_view name) {
  if (name == "fifo") return ReplayPolicy::kFifo;
  if (name == "reservoir") return ReplayPolicy::kReservoir;
  if (name == "class_balanced" || name == "balanced") return ReplayPolicy::kClassBalanced;
  if (name == "low_importance") return ReplayPolicy::kLowImportance;
  if (name == "importance_class_balanced" || name == "importance_balanced") {
    return ReplayPolicy::kImportanceClassBalanced;
  }
  throw Error("unknown replay policy '" + std::string(name) +
              "' (expected fifo|reservoir|class_balanced|low_importance|"
              "importance_class_balanced)");
}

std::size_t BudgetSchedule::capacity_for_task(std::size_t task, std::size_t num_tasks,
                                              std::size_t base_capacity) const noexcept {
  switch (kind) {
    case BudgetScheduleKind::kConst: return base_capacity;
    case BudgetScheduleKind::kLinear: {
      if (num_tasks <= 1 || task == 0) return linear_start;
      if (task >= num_tasks - 1) return linear_end;
      // Integer interpolation, rounded to the nearest byte so refreshed
      // sweeps reproduce across platforms (no floating-point in the path).
      // delta*task is decomposed through quotient/remainder so byte counts
      // near SIZE_MAX (which the parser admits) cannot wrap: q*task <= delta
      // and r*task < span^2 (task counts are small).  Exact:
      // (delta*task + span/2) / span == q*task + (r*task + span/2) / span.
      const std::size_t span = num_tasks - 1;
      const auto scaled = [span, task](std::size_t delta) {
        return (delta / span) * task + ((delta % span) * task + span / 2) / span;
      };
      if (linear_end >= linear_start) {
        return linear_start + scaled(linear_end - linear_start);
      }
      return linear_start - scaled(linear_start - linear_end);
    }
    case BudgetScheduleKind::kStep:
      return task >= step_task ? step_bytes : base_capacity;
  }
  return base_capacity;
}

std::string BudgetSchedule::spec() const {
  switch (kind) {
    case BudgetScheduleKind::kConst: return "const";
    case BudgetScheduleKind::kLinear:
      return "linear:" + std::to_string(linear_start) + ":" + std::to_string(linear_end);
    case BudgetScheduleKind::kStep:
      return "step:" + std::to_string(step_task) + ":" + std::to_string(step_bytes);
  }
  return "const";
}

namespace {

/// The pinned parse_budget_schedule() failure: every malformed spec names
/// the valid forms, so sweep-config typos cannot survive to a task boundary.
[[noreturn]] void throw_bad_schedule(std::string_view spec) {
  throw Error("unknown budget_schedule '" + std::string(spec) +
              "' (expected const|linear:<start>:<end>|step:<task>:<bytes>)");
}

/// Parses a non-negative integer field of a schedule spec; rejects empty,
/// signed, non-digit, or size_t-overflowing fields through the pinned
/// message (a wrapped byte count would silently mean "unbounded").
std::size_t schedule_field(std::string_view spec, std::string_view field) {
  std::uint64_t value = 0;
  if (!parse_unsigned_decimal(field, value) ||
      value > std::numeric_limits<std::size_t>::max()) {
    throw_bad_schedule(spec);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

BudgetSchedule parse_budget_schedule(std::string_view spec) {
  BudgetSchedule schedule;
  if (spec == "const") return schedule;
  const std::size_t head_end = spec.find(':');
  if (head_end == std::string_view::npos) throw_bad_schedule(spec);
  const std::string_view head = spec.substr(0, head_end);
  const std::string_view rest = spec.substr(head_end + 1);
  const std::size_t mid = rest.find(':');
  if (mid == std::string_view::npos || rest.find(':', mid + 1) != std::string_view::npos) {
    throw_bad_schedule(spec);
  }
  const std::size_t first = schedule_field(spec, rest.substr(0, mid));
  const std::size_t second = schedule_field(spec, rest.substr(mid + 1));
  if (head == "linear") {
    schedule.kind = BudgetScheduleKind::kLinear;
    schedule.linear_start = first;
    schedule.linear_end = second;
  } else if (head == "step") {
    schedule.kind = BudgetScheduleKind::kStep;
    schedule.step_task = first;
    schedule.step_bytes = second;
  } else {
    throw_bad_schedule(spec);
  }
  return schedule;
}

std::vector<std::size_t> draw_replay_indices(std::size_t population, std::size_t k,
                                             Rng& rng) {
  std::vector<std::size_t> indices(population);
  for (std::size_t i = 0; i < population; ++i) indices[i] = i;
  // Whole-population draws keep storage order and consume no rng draws — the
  // materialize() fallback of sample(), preserved so streamed and
  // materialized paths stay bit-identical run-for-run.
  if (k >= population) return indices;
  // Partial Fisher–Yates: the first k slots become a uniform draw without
  // replacement, consuming exactly k rng draws in sample()'s order.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(population - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

LatentReplayBuffer::LatentReplayBuffer(const compress::CodecConfig& codec,
                                       std::size_t activation_timesteps,
                                       const ReplayBufferConfig& budget)
    : codec_(codec), activation_timesteps_(activation_timesteps), budget_(budget),
      rng_(budget.seed),
      uses_class_queues_(budget.policy == ReplayPolicy::kClassBalanced ||
                         budget.policy == ReplayPolicy::kImportanceClassBalanced),
      obs_adds_(&obs::metrics().counter("replay_buffer.adds")),
      obs_evictions_(&obs::metrics().counter("replay_buffer.evictions")),
      obs_policy_evictions_(&obs::metrics().counter(
          std::string("replay_buffer.evictions.") + std::string(to_string(budget.policy)))),
      obs_decompress_bits_(&obs::metrics().counter("replay_buffer.decompress_bits")),
      obs_restored_(&obs::metrics().counter("replay_buffer.restored_entries")) {
  R4NCL_CHECK(activation_timesteps > 0, "activation_timesteps must be positive");
  R4NCL_CHECK(codec.ratio >= 1, "codec ratio must be >= 1");
  R4NCL_CHECK(codec.latent_bits == 0 || compress::valid_payload_bits(codec.latent_bits),
              "latent_bits must be 0 (legacy) or 1/2/4/8, got "
                  << int(codec.latent_bits));
}

std::size_t LatentReplayBuffer::entry_bytes(const Entry& e) const noexcept {
  return compress::stored_bytes(e.packed, header_bytes());
}

bool LatentReplayBuffer::add(const data::SpikeRaster& raster, std::int32_t label) {
  R4NCL_CHECK(raster.timesteps == activation_timesteps_,
              "raster has " << raster.timesteps << " steps, buffer expects "
                            << activation_timesteps_);
  if (empty()) {
    channels_ = raster.channels;
  } else {
    R4NCL_CHECK(raster.channels == channels_, "raster has " << raster.channels
                                                            << " channels, buffer holds "
                                                            << channels_);
  }
  Entry entry;
  entry.packed = compress::compress_packed(raster, codec_);
  entry.label = label;
  // The density importance proxy is recorded for every policy (the raster is
  // already in cache from compression), so switching a buffer's consumer to
  // an importance policy mid-run needs no re-scoring pass.
  entry.density = static_cast<float>(raster.density());
  const std::size_t bytes = entry_bytes(entry);
  ++stream_seen_;
  obs_adds_->add(1);

  const std::size_t capacity = budget_.capacity_bytes;
  if (capacity > 0) {
    R4NCL_CHECK(bytes <= capacity, "capacity_bytes=" << capacity
                                                     << " cannot hold a single " << bytes
                                                     << "-byte entry");
    if (memory_bytes_ + bytes > capacity) {
      if (budget_.policy == ReplayPolicy::kReservoir) {
        // Algorithm R over the lifetime stream: keep the newcomer with
        // probability size/stream_seen, displacing a uniform victim.  All
        // entries share one geometry, so one eviction always makes room.
        const std::uint64_t j = rng_.uniform_index(stream_seen_);
        if (j >= size()) {
          note_eviction();  // the incoming entry is the one displaced
          return false;
        }
        evict_at(static_cast<std::size_t>(j));
      } else if (budget_.policy == ReplayPolicy::kLowImportance) {
        // One scan settles both questions: whether the *incoming* entry is
        // the one displaced, and otherwise which stored entry gives way.
        // The newcomer competes density-vs-density only — it is rejected
        // when strictly sparser than a victim still on its density proxy
        // (so a long sparse tail cannot cycle out retained knowledge), but
        // a trainer-scored victim (outcome EMA, a different scale) never
        // blocks admission: saturated error scores on decaying old entries
        // must not starve new-task latents out of the buffer.
        const std::size_t victim = least_important_victim();
        const Entry& least = entry_at(victim);
        if (!least.outcome_valid && entry.density < least.density) {
          note_eviction();
          return false;
        }
        evict_at(victim);
        evict_until_fits(capacity, bytes, &label);  // no-op: equal geometry
      } else {
        evict_until_fits(capacity, bytes, &label);
      }
    }
  }

  memory_bytes_ += bytes;
  auto it = std::lower_bound(class_counts_.begin(), class_counts_.end(), label,
                             [](const auto& p, std::int32_t l) { return p.first < l; });
  if (it == class_counts_.end() || it->first != label) {
    class_counts_.insert(it, {label, 1});
  } else {
    ++it->second;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(entry);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(entry));
  }
  order_.push_back(slot);
  if (uses_class_queues_) {
    if (order_pos_.size() < slots_.size()) order_pos_.resize(slots_.size());
    order_pos_[slot] = static_cast<std::uint32_t>(order_.size() - 1);
    class_queues_[label].push_back(slot);
  }
  return true;
}

void LatentReplayBuffer::evict_at(std::size_t index) {
  const std::size_t pos = head_ + index;
  const std::uint32_t slot = order_[pos];
  Entry& victim = slots_[slot];
  memory_bytes_ -= entry_bytes(victim);
  const std::int32_t victim_label = victim.label;
  auto it = std::lower_bound(class_counts_.begin(), class_counts_.end(), victim.label,
                             [](const auto& p, std::int32_t l) { return p.first < l; });
  if (--it->second == 0) class_counts_.erase(it);
  victim = Entry{};  // release the payload allocation now, not at compaction
  free_slots_.push_back(slot);
  if (uses_class_queues_) {
    auto queue_it = class_queues_.find(victim_label);
    R4NCL_CHECK(queue_it != class_queues_.end() && !queue_it->second.empty(),
                "class queue out of sync with entries");
    auto& queue = queue_it->second;
    if (queue.front() == slot) {
      // Balanced victims are the oldest of their class, so this is the hot
      // path; only importance-scored victims land mid-queue.
      queue.pop_front();
    } else {
      const auto slot_it = std::find(queue.begin(), queue.end(), slot);
      R4NCL_CHECK(slot_it != queue.end(), "class queue out of sync with entries");
      queue.erase(slot_it);
    }
    if (queue.empty()) class_queues_.erase(queue_it);
  }
  if (index == 0) {
    // FIFO hot case: bump the ring head instead of erasing, and compact the
    // dead prefix only once it dominates — amortized O(1) per eviction where
    // the old vector erase shifted every remaining Entry.
    ++head_;
    if (head_ >= 64 && head_ * 2 >= order_.size()) {
      order_.erase(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(head_));
      if (uses_class_queues_) {
        for (const std::uint32_t s : order_) {
          order_pos_[s] -= static_cast<std::uint32_t>(head_);
        }
      }
      head_ = 0;
    }
  } else {
    // Middle eviction (reservoir victim / balanced class): splice out a
    // 4-byte slot id; the Entry payloads never move.
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    if (uses_class_queues_) {
      for (std::size_t p = pos; p < order_.size(); ++p) {
        order_pos_[order_[p]] = static_cast<std::uint32_t>(p);
      }
    }
  }
  note_eviction();
}

void LatentReplayBuffer::note_eviction() noexcept {
  ++evictions_;
  obs_evictions_->add(1);
  obs_policy_evictions_->add(1);
}

std::int32_t LatentReplayBuffer::heaviest_class(const std::int32_t* incoming) const {
  std::int32_t heaviest = 0;
  std::size_t heaviest_count = 0;
  for (const auto& [label, count] : class_counts_) {
    const std::size_t effective =
        count + (incoming != nullptr && label == *incoming ? 1u : 0u);
    if (effective > heaviest_count) {
      heaviest = label;
      heaviest_count = effective;
    }
  }
  return heaviest;
}

std::size_t LatentReplayBuffer::balanced_victim(const std::int32_t* incoming) const {
  const std::int32_t heaviest = heaviest_class(incoming);
  // The class queue is kept in insertion order, so its front is exactly the
  // oldest stored entry of the heaviest class the old O(n) ring scan found —
  // now O(#classes) total (the heaviest_class() walk dominates).
  const auto it = class_queues_.find(heaviest);
  if (it == class_queues_.end() || it->second.empty()) {
    throw Error("class accounting out of sync with entries");
  }
  return order_pos_[it->second.front()] - head_;
}

std::size_t LatentReplayBuffer::least_important_victim() const {
  const std::size_t n = size();
  R4NCL_CHECK(n > 0, "no entries to evict");
  std::size_t victim = 0;
  float lowest = entry_at(0).importance();
  // Strict < keeps ties on the oldest entry, so an all-equal-score buffer
  // degrades to FIFO — deterministic without consuming any rng.
  for (std::size_t i = 1; i < n; ++i) {
    const float score = entry_at(i).importance();
    if (score < lowest) {
      victim = i;
      lowest = score;
    }
  }
  return victim;
}

std::size_t LatentReplayBuffer::importance_balanced_victim(
    const std::int32_t* incoming) const {
  const std::int32_t heaviest = heaviest_class(incoming);
  const auto it = class_queues_.find(heaviest);
  if (it == class_queues_.end() || it->second.empty()) {
    throw Error("class accounting out of sync with entries");
  }
  // Walk one class queue (insertion order) instead of the whole ring; strict
  // < keeps ties on the oldest entry of the class, exactly as the ring scan
  // did, so the victim sequence is bit-identical.
  std::uint32_t victim_slot = it->second.front();
  float lowest = slots_[victim_slot].importance();
  for (const std::uint32_t slot : it->second) {
    const float score = slots_[slot].importance();
    if (score < lowest) {
      victim_slot = slot;
      lowest = score;
    }
  }
  return order_pos_[victim_slot] - head_;
}

void LatentReplayBuffer::evict_until_fits(std::size_t capacity, std::size_t bytes,
                                          const std::int32_t* incoming) {
  while (memory_bytes_ + bytes > capacity) {
    switch (budget_.policy) {
      case ReplayPolicy::kFifo:
        evict_at(0);
        break;
      case ReplayPolicy::kReservoir:
        // Shrink-only branch (add() handles Algorithm R before calling
        // here): displace a uniform stored victim so the retained set stays
        // stream-uniform under the tighter cap.
        evict_at(static_cast<std::size_t>(rng_.uniform_index(size())));
        break;
      case ReplayPolicy::kClassBalanced:
        // The newcomer counts toward its class when picking the victim so
        // a stream heavy in one class displaces its own entries, not the
        // minority classes'.
        evict_at(balanced_victim(incoming));
        break;
      case ReplayPolicy::kLowImportance:
        evict_at(least_important_victim());
        break;
      case ReplayPolicy::kImportanceClassBalanced:
        evict_at(importance_balanced_victim(incoming));
        break;
    }
  }
}

void LatentReplayBuffer::set_capacity(std::size_t new_capacity_bytes) {
  budget_.capacity_bytes = new_capacity_bytes;
  if (new_capacity_bytes == 0 || memory_bytes_ <= new_capacity_bytes) return;
  evict_until_fits(new_capacity_bytes, 0, nullptr);
}

std::vector<std::pair<std::int32_t, std::size_t>> LatentReplayBuffer::class_occupancy()
    const {
  return class_counts_;
}

void LatentReplayBuffer::charge_decompress(const Entry& e, snn::SpikeOpStats* stats) const {
  // Codec entries charge their dequantization/re-expansion work per payload
  // bit, so narrower latent_bits shrink both storage and decompress cost
  // proportionally; raw 1-bit storage (ratio 1, no quantizer) stays free.
  if (codec_.ratio > 1 || codec_.quantized()) {
    const std::uint64_t bits = static_cast<std::uint64_t>(e.packed.payload_bytes()) * 8u;
    obs_decompress_bits_->add(bits);
    if (stats != nullptr) stats->decompress_bits += bits;
  }
}

data::Sample LatentReplayBuffer::decompress_entry(const Entry& e,
                                                  snn::SpikeOpStats* stats) const {
  charge_decompress(e, stats);
  return {compress::decompress_packed(e.packed, activation_timesteps_, codec_), e.label};
}

std::int32_t LatentReplayBuffer::label_at(std::size_t index) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  return entry_at(index).label;
}

float LatentReplayBuffer::density_at(std::size_t index) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  return entry_at(index).density;
}

float LatentReplayBuffer::importance_at(std::size_t index) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  return entry_at(index).importance();
}

void LatentReplayBuffer::report_outcome(std::size_t index, float score) {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  Entry& e = entry_at(index);
  if (e.outcome_valid) {
    e.outcome += kOutcomeEma * (score - e.outcome);
  } else {
    e.outcome = score;
    e.outcome_valid = true;
  }
}

void LatentReplayBuffer::decompress_into(std::size_t index, data::Sample& out,
                                         snn::SpikeOpStats* stats,
                                         std::vector<std::uint8_t>* levels_scratch) const {
  R4NCL_CHECK(index < size(), "entry " << index << " out of " << size());
  const Entry& e = entry_at(index);
  charge_decompress(e, stats);
  compress::decompress_packed_into(e.packed, activation_timesteps_, codec_, out.raster,
                                   levels_scratch);
  out.label = e.label;
}

data::Dataset LatentReplayBuffer::materialize(snn::SpikeOpStats* stats) const {
  data::Dataset out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(decompress_entry(entry_at(i), stats));
  return out;
}

std::vector<std::size_t> LatentReplayBuffer::draw_indices(std::size_t k, Rng& rng) const {
  return draw_replay_indices(size(), k, rng);
}

std::vector<std::size_t> LatentReplayBuffer::sample_into(std::size_t k, Rng& rng,
                                                         data::Dataset& out,
                                                         snn::SpikeOpStats* stats) const {
  std::vector<std::size_t> drawn = draw_indices(k, rng);
  out.reserve(out.size() + drawn.size());
  for (const std::size_t index : drawn) {
    data::Sample s;
    decompress_into(index, s, stats);
    out.push_back(std::move(s));
  }
  return drawn;
}

data::Dataset LatentReplayBuffer::sample(std::size_t k, Rng& rng,
                                         snn::SpikeOpStats* stats) const {
  data::Dataset out;
  (void)sample_into(k, rng, out, stats);
  return out;
}

namespace {
constexpr std::uint32_t kBufferTag = make_tag("LRBF");
constexpr std::uint32_t kEntryTag = make_tag("ENTR");
}  // namespace

void LatentReplayBuffer::save(BinaryWriter& out) const {
  out.write_tag(kBufferTag);
  out.write_u32(static_cast<std::uint32_t>(budget_.policy));
  out.write_u64(budget_.capacity_bytes);
  out.write_u64(activation_timesteps_);
  out.write_u64(channels_);
  out.write_u64(memory_bytes_);
  out.write_u64(stream_seen_);
  out.write_u64(evictions_);
  const Rng::State rng = rng_.state();
  out.write_u64(rng.state);
  out.write_u32(rng.have_spare_normal ? 1u : 0u);
  out.write_f64(rng.spare_normal);
  const std::size_t n = size();
  out.write_u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = entry_at(i);
    out.write_tag(kEntryTag);
    out.write_u32(e.packed.timesteps);
    out.write_u32(e.packed.channels);
    out.write_u32(e.packed.bits_per_element);
    out.write_u8_vector(e.packed.payload);
    out.write_u32(static_cast<std::uint32_t>(e.label));
    out.write_f32(e.density);
    out.write_f32(e.outcome);
    out.write_u32(e.outcome_valid ? 1u : 0u);
  }
}

void LatentReplayBuffer::load(BinaryReader& in) {
  in.expect_tag(kBufferTag);
  const std::uint32_t stored_policy = in.read_u32();
  R4NCL_CHECK(stored_policy == static_cast<std::uint32_t>(budget_.policy),
              "replay policy mismatch: checkpoint was saved with policy "
                  << stored_policy << ", this buffer runs "
                  << to_string(budget_.policy));
  const std::uint64_t capacity = in.read_u64();
  const std::uint64_t timesteps = in.read_u64();
  R4NCL_CHECK(timesteps == activation_timesteps_,
              "activation-timesteps mismatch: checkpoint has " << timesteps
                                                               << ", this buffer expects "
                                                               << activation_timesteps_);
  const std::uint64_t channels = in.read_u64();
  const std::uint64_t memory_bytes = in.read_u64();
  const std::uint64_t stream_seen = in.read_u64();
  const std::uint64_t evictions = in.read_u64();
  Rng::State rng;
  rng.state = in.read_u64();
  const std::uint32_t have_spare = in.read_u32();
  R4NCL_CHECK(have_spare <= 1, "corrupt rng snapshot: spare-normal flag is " << have_spare);
  rng.have_spare_normal = have_spare != 0;
  rng.spare_normal = in.read_f64();
  const std::uint64_t n = in.read_u64();

  // Decode into scratch first: a corrupt snapshot must throw without leaving
  // this buffer half-replaced.
  std::vector<Entry> entries;
  entries.reserve(std::min<std::uint64_t>(n, in.remaining() / sizeof(std::uint32_t)));
  std::uint64_t recomputed_bytes = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    in.expect_tag(kEntryTag);
    Entry e;
    e.packed.timesteps = in.read_u32();
    e.packed.channels = in.read_u32();
    const std::uint32_t bits = in.read_u32();
    R4NCL_CHECK(compress::valid_payload_bits(bits),
                "corrupt entry " << i << ": bits_per_element " << bits << " not in {1,2,4,8}");
    e.packed.bits_per_element = static_cast<std::uint8_t>(bits);
    e.packed.payload = in.read_u8_vector();
    const std::size_t expected_payload = e.packed.timesteps * e.packed.row_bytes();
    R4NCL_CHECK(e.packed.payload.size() == expected_payload,
                "corrupt entry " << i << ": payload is " << e.packed.payload.size()
                                 << " byte(s), geometry " << e.packed.timesteps << "x"
                                 << e.packed.channels << "@" << bits << "b needs "
                                 << expected_payload);
    e.label = static_cast<std::int32_t>(in.read_u32());
    e.density = in.read_f32();
    e.outcome = in.read_f32();
    const std::uint32_t outcome_valid = in.read_u32();
    R4NCL_CHECK(outcome_valid <= 1,
                "corrupt entry " << i << ": outcome flag is " << outcome_valid);
    e.outcome_valid = outcome_valid != 0;
    R4NCL_CHECK(i == 0 || e.packed.channels == entries.front().packed.channels,
                "corrupt entry " << i << ": channel width " << e.packed.channels
                                 << " differs from the buffer's "
                                 << entries.front().packed.channels);
    recomputed_bytes += entry_bytes(e);
    entries.push_back(std::move(e));
  }
  R4NCL_CHECK(entries.empty() || channels == entries.front().packed.channels,
              "corrupt buffer snapshot: header claims " << channels
                                                        << " channel(s), entries carry "
                                                        << entries.front().packed.channels);
  R4NCL_CHECK(recomputed_bytes == memory_bytes,
              "corrupt buffer snapshot: entries total " << recomputed_bytes
                                                        << " byte(s), header claims "
                                                        << memory_bytes);
  R4NCL_CHECK(capacity == 0 || memory_bytes <= capacity,
              "corrupt buffer snapshot: " << memory_bytes << " byte(s) stored exceeds the "
                                          << capacity << "-byte capacity");

  // Commit: rebuild compacted (dense slots, identity order).  Logical order
  // is all any observable behaviour reads, so a compacted rebuild is
  // indistinguishable from the saved ring layout.
  budget_.capacity_bytes = static_cast<std::size_t>(capacity);
  channels_ = static_cast<std::size_t>(channels);
  memory_bytes_ = static_cast<std::size_t>(memory_bytes);
  stream_seen_ = static_cast<std::size_t>(stream_seen);
  evictions_ = static_cast<std::size_t>(evictions);
  // Registry counters track *live* events only; checkpoint-restored entries
  // are counted separately so the evictions <= adds + restored_entries
  // cross-invariant (tools/check_bench.py) survives a warm resume.
  obs_restored_->add(entries.size());
  rng_.restore(rng);
  slots_ = std::move(entries);
  free_slots_.clear();
  order_.resize(slots_.size());
  head_ = 0;
  class_counts_.clear();
  class_queues_.clear();
  order_pos_.assign(uses_class_queues_ ? slots_.size() : 0, 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
    const std::int32_t label = slots_[i].label;
    auto it = std::lower_bound(class_counts_.begin(), class_counts_.end(), label,
                               [](const auto& p, std::int32_t l) { return p.first < l; });
    if (it == class_counts_.end() || it->first != label) {
      class_counts_.insert(it, {label, 1});
    } else {
      ++it->second;
    }
    if (uses_class_queues_) {
      order_pos_[i] = static_cast<std::uint32_t>(i);
      class_queues_[label].push_back(static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace r4ncl::core
