#include "core/replay_stream.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace r4ncl::core {

ReplayStream LatentReplayBuffer::stream(std::size_t k, Rng& rng, std::size_t minibatch,
                                        snn::SpikeOpStats* stats) const {
  return ReplayStream(*this, draw_indices(k, rng), minibatch, stats);
}

ReplayStream::ReplayStream(const ReplayEntrySource& source, std::vector<std::size_t> drawn,
                           std::size_t minibatch, snn::SpikeOpStats* stats)
    : source_(&source), drawn_(std::move(drawn)), minibatch_(minibatch), stats_(stats) {
  R4NCL_CHECK(minibatch_ > 0, "minibatch must be positive");
  pool_.resize(std::min(minibatch_, std::max<std::size_t>(drawn_.size(), 1)));
}

std::int32_t ReplayStream::label(std::size_t i) const {
  R4NCL_CHECK(i < drawn_.size(), "draw ordinal " << i << " out of " << drawn_.size());
  return source_->label_at(drawn_[i]);
}

void ReplayStream::decode_to_slot(std::size_t slot, std::size_t ordinal) {
  source_->decompress_into(drawn_[ordinal], pool_[slot], stats_, &levels_scratch_);
  ++decoded_;
}

void ReplayStream::note_assembly_bytes(std::size_t live_slots) noexcept {
  // All rasters in a source share one geometry, so the scratch footprint is
  // live slots × (T × C) decoded bytes plus the sub-byte level scratch.
  const std::size_t raster_bytes =
      source_->activation_timesteps() * source_->channels();
  const std::size_t bytes = live_slots * raster_bytes + levels_scratch_.capacity();
  peak_bytes_ = std::max(peak_bytes_, bytes);
}

std::span<const data::Sample> ReplayStream::next() {
  if (done()) return {};
  const std::size_t count = std::min(minibatch_, drawn_.size() - cursor_);
  for (std::size_t b = 0; b < count; ++b) decode_to_slot(b, cursor_ + b);
  cursor_ += count;
  note_assembly_bytes(count);
  return {pool_.data(), count};
}

const data::Sample& ReplayStream::fetch(std::size_t i) {
  R4NCL_CHECK(i < drawn_.size(), "draw ordinal " << i << " out of " << drawn_.size());
  decode_to_slot(0, i);
  note_assembly_bytes(1);
  return pool_[0];
}

}  // namespace r4ncl::core
