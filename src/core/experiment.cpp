#include "core/experiment.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace r4ncl::core {

PretrainConfig standard_pretrain_config(double scale) {
  scale = std::clamp(scale, 0.05, 4.0);
  PretrainConfig config;
  // Paper geometry: 700-200-100-50 hidden stack, 20-class readout, T = 100.
  config.network.layer_sizes = {700, 200, 100, 50};
  config.network.num_classes = 20;
  config.network.lif.beta = 0.95f;
  config.network.surrogate = {snn::SurrogateKind::kFastSigmoid, 10.0f};
  config.network.readout_beta = 0.95f;
  config.network.seed = 7;
  config.data_params = {};  // 700 channels, 20 classes, 100 timesteps
  config.split.train_per_class = std::max<std::size_t>(4, static_cast<std::size_t>(12 * scale));
  config.split.test_per_class = std::max<std::size_t>(4, static_cast<std::size_t>(8 * scale));
  // Two retained samples per old class keeps the replay buffer small enough
  // that catastrophic-forgetting pressure is visible (as in the paper, where
  // the latent memory is a scarce on-device resource).
  config.split.replay_per_class = std::max<std::size_t>(2, static_cast<std::size_t>(2 * scale));
  config.split.new_class = 19;
  config.epochs = 8;
  config.batch_size = 16;
  config.lr = kEtaPre;
  return config;
}

PretrainConfig pretrain_config_from(const Config& cfg) {
  PretrainConfig config = standard_pretrain_config(cfg.get_double("scale", 1.0));
  config.epochs = static_cast<std::size_t>(
      cfg.get_int("pretrain_epochs", static_cast<long long>(config.epochs)));
  return config;
}

PretrainedScenario standard_scenario(const Config& cfg) {
  init_log_level_from_env();
  init_threads_from_env();
  if (const long long threads = cfg.get_int("threads", 0); threads > 0) {
    set_num_threads(static_cast<int>(threads));
  }
  const PretrainConfig config = pretrain_config_from(cfg);
  const bool use_cache = cfg.get_bool("cache", true);
  return make_pretrained_scenario(config, cfg.get_string("cache_dir", "."), use_cache,
                                  cfg.get_bool("verbose", false));
}

NclMethodConfig bench_replay4ncl(std::size_t timesteps) {
  NclMethodConfig cfg = NclMethodConfig::replay4ncl(timesteps);
  cfg.lr_cl = kEtaPre / 5.0f;  // step-count rescaling; see header comment
  return cfg;
}

NclMethodConfig bench_spiking_lr() { return NclMethodConfig::spiking_lr(); }

namespace {

// ---- The declarative CLI knob table ---------------------------------------
// Each replay-method knob's parse + eager validation lives in one small
// function; the table below binds it to the knob's name and help text.
// Scenario/checkpoint/telemetry knobs keep their own readers and appear
// here with apply = nullptr so the key vocabulary still has one source of
// truth.  Every value validates eagerly with a pinned message naming the
// valid set — a typo in a sweep config must fail before any pre-training
// or task runs, not at the first task boundary.

void apply_budget(NclMethodConfig& method, const Config& cfg) {
  // Negative values would wrap through static_cast<std::size_t> into
  // ~SIZE_MAX (an accidental "unbounded" budget / draw) — reject them.
  const long long budget = cfg.get_int(
      "budget", static_cast<long long>(method.replay_budget.capacity_bytes));
  R4NCL_CHECK(budget >= 0,
              "budget=" << budget << " must be a non-negative byte count (0 = unbounded)");
  method.replay_budget.capacity_bytes = static_cast<std::size_t>(budget);
}

void apply_budget_schedule(NclMethodConfig& method, const Config& cfg) {
  if (const auto schedule = cfg.get("budget_schedule")) {
    method.budget_schedule = parse_budget_schedule(*schedule);
  }
}

void apply_importance_feedback(NclMethodConfig& method, const Config& cfg) {
  method.importance_feedback =
      cfg.get_bool("importance_feedback", method.importance_feedback);
}

void apply_latent_bits(NclMethodConfig& method, const Config& cfg) {
  const long long bits = cfg.get_int(
      "latent_bits", static_cast<long long>(method.storage_codec.latent_bits));
  R4NCL_CHECK(bits == 0 || (bits > 0 && bits <= 8 &&
                            compress::valid_payload_bits(static_cast<unsigned>(bits))),
              "latent_bits=" << bits << " (expected 0|1|2|4|8)");
  method.storage_codec.latent_bits = static_cast<std::uint8_t>(bits);
}

void apply_policy(NclMethodConfig& method, const Config& cfg) {
  if (const auto policy = cfg.get("policy")) {
    method.replay_budget.policy = parse_replay_policy(*policy);
  }
}

void apply_prefetch(NclMethodConfig& method, const Config& cfg) {
  method.prefetch = cfg.get_bool("prefetch", method.prefetch);
}

void apply_replay_samples(NclMethodConfig& method, const Config& cfg) {
  const long long samples = cfg.get_int(
      "replay_samples", static_cast<long long>(method.replay_samples_per_epoch));
  R4NCL_CHECK(samples >= 0, "replay_samples=" << samples
                                              << " must be a non-negative entry count "
                                                 "(0 = full materialize)");
  method.replay_samples_per_epoch = static_cast<std::size_t>(samples);
}

void apply_replay_seed(NclMethodConfig& method, const Config& cfg) {
  if (const auto seed_text = cfg.get("replay_seed")) {
    // Strict decimal parse (get_int would map "abc" to the fallback and
    // "0xdeadbeef" to 0, silently running the wrong seed); also admits the
    // full uint64 range.
    std::uint64_t seed = 0;
    R4NCL_CHECK(parse_unsigned_decimal(*seed_text, seed),
                "replay_seed=" << *seed_text
                               << " must be a non-negative eviction seed");
    method.replay_budget.seed = seed;
  }
}

void apply_replay_stream(NclMethodConfig& method, const Config& cfg) {
  method.replay_stream = cfg.get_bool("replay_stream", method.replay_stream);
}

void apply_shard_by(NclMethodConfig& method, const Config& cfg) {
  if (const auto shard_by = cfg.get("shard_by")) {
    method.replay_sharding.shard_by = parse_shard_key(*shard_by);
  }
}

void apply_shards(NclMethodConfig& method, const Config& cfg) {
  // shards=1 keeps runs bit-identical to the single-buffer era.
  const long long shards =
      cfg.get_int("shards", static_cast<long long>(method.replay_sharding.shards));
  R4NCL_CHECK(shards >= 1, "shards=" << shards << " must be a positive shard count");
  method.replay_sharding.shards = static_cast<std::size_t>(shards);
}

void apply_threads(NclMethodConfig& method, const Config& cfg) {
  // threads= is applied process-wide by standard_scenario; recording it on
  // the method too lets the run engines re-assert it (library callers that
  // never go through standard_scenario get the same knob).
  const long long threads = cfg.get_int("threads", static_cast<long long>(method.threads));
  R4NCL_CHECK(threads >= 0, "threads=" << threads
                                       << " must be a non-negative worker count (0 = default)");
  method.threads = static_cast<int>(threads);
}

// Sorted by name: standard_cli_keys() returns this column order verbatim,
// and validate_keys error messages list keys sorted.
constexpr CliKnob kStandardKnobs[] = {
    {"budget", "replay-buffer byte budget (0 = unbounded)", apply_budget},
    {"budget_schedule",
     "per-task budget evolution: const | linear:<start>:<end> | step:<task>:<bytes>",
     apply_budget_schedule},
    {"cache", "reuse the on-disk pre-trained scenario cache (default 1)", nullptr},
    {"cache_dir", "directory holding the pre-trained scenario cache (default .)", nullptr},
    {"checkpoint", "write a run checkpoint at every cadence boundary to this path", nullptr},
    {"checkpoint_every", "checkpoint save cadence in completed tasks/epochs (>= 1)", nullptr},
    {"epochs", "continual-learning epoch count (bench default when absent)", nullptr},
    {"importance_feedback",
     "feed per-sample replay errors back into importance scores (importance policies only)",
     apply_importance_feedback},
    {"latent_bits", "stored payload depth: 0 = legacy binary, 1/2/4/8 = quantized counts",
     apply_latent_bits},
    {"metrics_out", "write the telemetry registry snapshot (JSON) to this path", nullptr},
    {"policy",
     "eviction policy: fifo | reservoir | class_balanced | low_importance | "
     "importance_class_balanced",
     apply_policy},
    {"prefetch", "decode the next minibatch on a background thread (bit-identical)",
     apply_prefetch},
    {"pretrain_epochs", "pre-training epoch count (default 8)", nullptr},
    {"replay_samples", "per-epoch sample(k) draw (0 = full materialize)",
     apply_replay_samples},
    {"replay_seed", "the buffer's private eviction-stream seed", apply_replay_seed},
    {"replay_stream", "stream the per-epoch draw through a ReplayStream (0|1)",
     apply_replay_stream},
    {"resume", "restore a prior checkpoint from this path before any unit runs", nullptr},
    {"scale", "dataset sample-count scale (1.0 = paper-faithful counts)", nullptr},
    {"shard_by", "shard routing key for adds: class | hash", apply_shard_by},
    {"shards", "replay-store shard count (1 = bit-identical single-buffer)", apply_shards},
    {"threads", "worker count the run engines assert at run start (0 = default)",
     apply_threads},
    {"trace", "wall-clock trace histograms in the metrics registry (default 1)", nullptr},
    {"verbose", "per-epoch progress logging (0|1)", nullptr},
};

}  // namespace

std::span<const CliKnob> standard_cli_knobs() { return kStandardKnobs; }

void apply_replay_overrides(NclMethodConfig& method, const Config& cfg) {
  for (const CliKnob& knob : kStandardKnobs) {
    if (knob.apply != nullptr) knob.apply(method, cfg);
  }
}

MetricsOptions init_metrics(const Config& cfg) {
  MetricsOptions options;
  options.out_path = cfg.get_string("metrics_out", "");
  options.trace = cfg.get_bool("trace", true);
  // Arm only on explicit request: a disarmed registry keeps plain runs on
  // the pre-telemetry fast path (and bit-identical to it, pinned by tests).
  const bool arm = !options.out_path.empty() || cfg.get("trace").has_value();
  obs::MetricsRegistry& registry = obs::metrics();
  registry.set_trace(options.trace);
  registry.set_armed(arm);
  return options;
}

void write_metrics_snapshot(const MetricsOptions& options) {
  if (options.out_path.empty()) return;
  obs::write_snapshot(obs::metrics(), options.out_path);
}

CheckpointOptions checkpoint_options_from(const Config& cfg) {
  CheckpointOptions options;
  options.save_path = cfg.get_string("checkpoint", "");
  options.resume_path = cfg.get_string("resume", "");
  const long long every = cfg.get_int("checkpoint_every", 1);
  R4NCL_CHECK(every >= 1,
              "checkpoint_every=" << every << " must be a positive unit count");
  R4NCL_CHECK(every == 1 || options.saving(),
              "checkpoint_every=" << every << " requires checkpoint=<path>");
  options.every = static_cast<std::size_t>(every);
  return options;
}

std::vector<std::string_view> standard_cli_keys() {
  std::vector<std::string_view> keys;
  keys.reserve(std::size(kStandardKnobs));
  for (const CliKnob& knob : kStandardKnobs) keys.push_back(knob.name);
  return keys;
}

void validate_standard_keys(const Config& cfg,
                            std::initializer_list<std::string_view> extra) {
  std::vector<std::string_view> known = standard_cli_keys();
  known.insert(known.end(), extra.begin(), extra.end());
  cfg.validate_keys(known);
}

std::string summarize(const ClRunResult& result) {
  std::ostringstream os;
  os << result.method_name << " @L" << result.insertion_layer << ": old="
     << result.final_acc_old * 100.0 << "% new=" << result.final_acc_new * 100.0
     << "% latency=" << result.total_latency_ms() << "ms energy="
     << result.total_energy_uj() << "uJ latent_mem=" << result.latent_memory_bytes << "B";
  return os.str();
}

}  // namespace r4ncl::core
