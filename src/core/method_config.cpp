#include "core/method_config.hpp"

namespace r4ncl::core {

snn::ThresholdPolicy NclMethodConfig::policy() const {
  if (adaptive_threshold) {
    return snn::ThresholdPolicy::adaptive(static_cast<int>(cl_timesteps), threshold_base,
                                          adjust_interval);
  }
  return snn::ThresholdPolicy::fixed(threshold_base);
}

NclMethodConfig NclMethodConfig::with_latent_bits(std::uint8_t bits) const {
  NclMethodConfig cfg = *this;
  cfg.storage_codec.latent_bits = bits;
  // Strip any previous "-q<N>" suffix so chained calls stay truthful.
  if (const std::size_t pos = cfg.name.rfind("-q");
      pos != std::string::npos && pos + 2 < cfg.name.size() &&
      cfg.name.find_first_not_of("0123456789", pos + 2) == std::string::npos) {
    cfg.name.erase(pos);
  }
  if (bits > 0) cfg.name += "-q" + std::to_string(bits);
  return cfg;
}

NclMethodConfig NclMethodConfig::replay4ncl(std::size_t timesteps) {
  NclMethodConfig cfg;
  cfg.name = "Replay4NCL";
  cfg.cl_timesteps = timesteps;                 // Sec. III-A: T* = 40
  cfg.storage_codec = {.ratio = 1};             // stored directly at T*
  cfg.lr_cl = kEtaPre / 100.0f;                 // Alg. 1 line 6/21
  cfg.adaptive_threshold = true;                // Alg. 1 lines 10–17 / 25–30
  return cfg;
}

NclMethodConfig NclMethodConfig::spiking_lr() {
  NclMethodConfig cfg;
  cfg.name = "SpikingLR";
  cfg.cl_timesteps = 100;                       // SOTA operates at T = 100
  cfg.storage_codec = {.ratio = 2, .strategy = compress::CodecStrategy::kSubsample};
  cfg.lr_cl = kEtaPre;
  cfg.adaptive_threshold = false;
  return cfg;
}

NclMethodConfig NclMethodConfig::spiking_lr_reduced(std::size_t timesteps) {
  NclMethodConfig cfg = spiking_lr();
  cfg.name = "SpikingLR-T" + std::to_string(timesteps);
  cfg.cl_timesteps = timesteps;  // naive reduction, no compensation (Fig. 8)
  return cfg;
}

NclMethodConfig NclMethodConfig::naive_baseline() {
  NclMethodConfig cfg;
  cfg.name = "Baseline";
  cfg.cl_timesteps = 100;
  cfg.use_replay = false;  // fine-tune on the new task only → forgetting
  cfg.lr_cl = kEtaPre;
  return cfg;
}

}  // namespace r4ncl::core
