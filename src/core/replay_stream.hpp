// Streaming minibatch cursor over a latent-replay draw.
//
// LatentReplayBuffer::sample() materializes every drawn raster up front, so a
// k-entry draw holds k full (T × C) rasters before the first training batch
// is even assembled — the replay-assembly memory spike Pellegrini et al. and
// Ravaglia et al. identify as the real-time bottleneck of latent replay.
// ReplayStream performs the *same draw* (bit-identical entry set for the same
// Rng, identical decompress_bits charging) but fuses decompression into batch
// assembly: entries decode at most one minibatch at a time into a reusable
// scratch pool, so peak replay-assembly memory is minibatch × raster bytes
// instead of k × raster bytes.
//
// Two consumption modes share one cursor object:
//   * next()   — sequential minibatch spans (bench / direct consumers);
//   * fetch(i) — random access for trainers that shuffle the virtual
//                dataset: decodes drawn entry i into a single scratch slot,
//                valid until the next fetch()/next().
// Both charge decompress_bits per decoded entry, exactly as sample() does.
//
// The stream reads through the ReplayEntrySource interface, so one cursor
// implementation serves a single LatentReplayBuffer and the sharded engine's
// concatenated cross-shard index space alike.  It borrows the source: it must
// outlive the stream and must not be mutated (add/evict) while the stream is
// open.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/latent_buffer.hpp"

namespace r4ncl::core {

class ReplayStream {
 public:
  /// Use LatentReplayBuffer::stream() / ShardedReplayEngine::stream() instead
  /// of constructing directly.
  ReplayStream(const ReplayEntrySource& source, std::vector<std::size_t> drawn,
               std::size_t minibatch, snn::SpikeOpStats* stats);

  /// Entries in the draw.
  [[nodiscard]] std::size_t size() const noexcept { return drawn_.size(); }
  [[nodiscard]] bool empty() const noexcept { return drawn_.empty(); }
  [[nodiscard]] std::size_t minibatch() const noexcept { return minibatch_; }
  /// Logical buffer indices of the draw, in sample() order.
  [[nodiscard]] const std::vector<std::size_t>& drawn() const noexcept { return drawn_; }
  /// Label of drawn entry `i` without decoding it.
  [[nodiscard]] std::int32_t label(std::size_t i) const;

  /// Sequential cursor: decodes the next min(minibatch, remaining) entries
  /// into the pool and returns a span over them, valid until the next call.
  /// Returns an empty span once the draw is exhausted.
  [[nodiscard]] std::span<const data::Sample> next();
  [[nodiscard]] bool done() const noexcept { return cursor_ >= drawn_.size(); }
  /// Restarts the cursor over the same draw (no new rng consumption; note
  /// that re-decoding charges decompress_bits again, like a second draw).
  void reset() noexcept { cursor_ = 0; }

  /// Random access: decodes drawn entry `i` into scratch slot 0 and returns
  /// it.  The reference is invalidated by the next fetch()/next() call —
  /// callers copy the sample into their batch tensor before advancing.
  [[nodiscard]] const data::Sample& fetch(std::size_t i);

  /// Entries decoded so far (fetch + next, double decodes counted).
  [[nodiscard]] std::size_t decoded() const noexcept { return decoded_; }
  /// High-water mark of scratch bytes held for decoded rasters — the
  /// replay-assembly footprint the streaming path exists to bound.
  [[nodiscard]] std::size_t peak_assembly_bytes() const noexcept { return peak_bytes_; }

 private:
  /// Decodes drawn entry `ordinal` into pool_[slot] and updates accounting.
  void decode_to_slot(std::size_t slot, std::size_t ordinal);
  void note_assembly_bytes(std::size_t live_slots) noexcept;

  const ReplayEntrySource* source_;
  std::vector<std::size_t> drawn_;
  std::size_t minibatch_;
  snn::SpikeOpStats* stats_;
  std::vector<data::Sample> pool_;
  std::vector<std::uint8_t> levels_scratch_;
  std::size_t cursor_ = 0;
  std::size_t decoded_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace r4ncl::core
