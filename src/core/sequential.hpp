// Sequential multi-task neuromorphic continual learning.
//
// Extension of the paper's single-new-class experiment to a *stream* of new
// classes — the deployment setting its Fig. 1(b) motivates (a mobile agent
// keeps encountering new categories).  For each arriving class the engine
// runs the Alg. 1 CL phase against the current replay buffer, then records
// latent activations of the *just-learned* class through the frozen prefix
// and adds them to the buffer (on-device self-recording: the raw samples are
// discarded, only compressed latents persist — exactly what the latent-
// replay memory is for).
#pragma once

#include <vector>

#include "core/continual_trainer.hpp"
#include "data/tasks.hpp"

namespace r4ncl::core {

/// Configuration of a sequential run.
struct SequentialRunConfig {
  NclMethodConfig method;
  std::size_t insertion_layer = 2;
  std::size_t epochs_per_task = 20;
  /// Latent samples recorded per newly learned class.
  std::size_t replay_per_new_class = 2;
  std::uint64_t seed = 4242;
  metrics::EnergyModelParams energy_params{};
  metrics::LatencyModelParams latency_params{};
  bool verbose = false;
};

/// Result row after finishing task i.
struct SequentialTaskRow {
  std::size_t task_index = 0;
  std::int32_t class_id = 0;
  /// Accuracy on the base (pre-training) test set.
  double acc_base = 0.0;
  /// Mean accuracy over the test sets of all tasks learned so far.
  double acc_learned = 0.0;
  /// Accuracy on the just-learned task's test set.
  double acc_current = 0.0;
  /// Replay-buffer footprint after recording this task's latents.
  std::size_t latent_memory_bytes = 0;
  /// Byte budget in force during this task (0 = unbounded) — varies across
  /// rows when the method carries an active BudgetSchedule.
  std::size_t budget_bytes = 0;
  /// Stored replay entries / cumulative budget evictions after this task
  /// (evictions stay 0 on unbounded runs).
  std::size_t buffer_entries = 0;
  std::size_t buffer_evictions = 0;
  double latency_ms = 0.0;  // modelled cost of this task's CL phase
  double energy_uj = 0.0;
};

/// Complete sequential-run record.
struct SequentialRunResult {
  std::string method_name;
  std::vector<SequentialTaskRow> rows;
  double total_latency_ms = 0.0;
  double total_energy_uj = 0.0;
};

/// Runs the task stream on a pre-trained network (mutated in place).
SequentialRunResult run_sequential(snn::SnnNetwork& net, const data::SequentialTasks& tasks,
                                   const SequentialRunConfig& config);

}  // namespace r4ncl::core
