#include "snn/trainer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "snn/batch_pipeline.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace r4ncl::snn {

std::vector<EpochRecord> train_supervised(SnnNetwork& net, const data::Dataset& dataset,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook) {
  SampleSource source;
  source.size = dataset.size();
  source.fetch = [&dataset](std::size_t i) -> const data::Sample& { return dataset[i]; };
  return train_supervised(net, source, optimizer, options, hook);
}

std::vector<EpochRecord> train_supervised(SnnNetwork& net, const SampleSource& source,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook) {
  R4NCL_CHECK(source.size > 0, "cannot train on an empty dataset");
  R4NCL_CHECK(static_cast<bool>(source.fetch), "SampleSource.fetch must be set");
  R4NCL_CHECK(options.batch_size > 0, "batch_size must be positive");
  Rng shuffle_rng(options.shuffle_seed);
  std::vector<EpochRecord> history;
  history.reserve(options.epochs);
  std::vector<std::uint8_t> row_correct;

  // Samples are copied into a persistent scratch batch one at a time, so a
  // lazy source only ever needs its current sample alive — the streaming
  // replay contract.  With prefetch > 0 the pipeline decodes the next batch
  // on a background thread while this one trains.
  BatchPipeline pipeline(source, options.batch_size, options.prefetch);
  double assemble_base = 0.0;
  double stall_base = 0.0;
  obs::MetricsRegistry& reg = obs::metrics();
  obs::Histogram& obs_epoch =
      reg.histogram("trainer.epoch_seconds", obs::kLatencyEdgesSeconds);
  obs::Counter& obs_epochs = reg.counter("trainer.epochs");

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    Stopwatch watch;
    EpochRecord rec;
    rec.epoch = epoch;
    auto order = shuffle_rng.permutation(source.size);
    pipeline.begin_epoch(order);
    std::size_t correct = 0;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (const PreparedBatch* pb = pipeline.next_batch()) {
      const StepResult step =
          net.train_step(pb->batch, pb->labels, options.insertion_layer, options.policy,
                         optimizer, options.lr, options.mode, &rec.stats,
                         options.sample_outcome ? &row_correct : nullptr);
      loss_sum += step.loss;
      correct += step.correct;
      if (options.sample_outcome) {
        for (std::size_t b = 0; b < pb->count; ++b) {
          options.sample_outcome(order[pb->lo + b], row_correct[b] != 0 ? 0.0f : 1.0f);
        }
      }
      ++batches;
    }
    rec.loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    rec.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(source.size);
    rec.wall_seconds = watch.elapsed_seconds();
    obs_epoch.record(rec.wall_seconds);
    obs_epochs.add(1);
    rec.assembly_seconds = pipeline.assemble_seconds() - assemble_base;
    rec.assembly_stall_seconds = pipeline.stall_seconds() - stall_base;
    assemble_base += rec.assembly_seconds;
    stall_base += rec.assembly_stall_seconds;
    if (options.verbose) {
      R4NCL_INFO("epoch " << epoch << ": loss=" << rec.loss
                          << " train_acc=" << rec.train_accuracy << " ("
                          << rec.wall_seconds << "s, assembly stall "
                          << rec.assembly_stall_seconds << "s)");
    }
    if (hook) hook(rec);
    history.push_back(std::move(rec));
  }
  return history;
}

double evaluate(const SnnNetwork& net, const data::Dataset& dataset,
                std::size_t insertion_layer, const ThresholdPolicy& policy,
                std::size_t batch_size, SpikeOpStats* stats) {
  SampleSource source;
  source.size = dataset.size();
  source.fetch = [&dataset](std::size_t i) -> const data::Sample& { return dataset[i]; };
  return evaluate(net, source, insertion_layer, policy, batch_size, stats);
}

double evaluate(const SnnNetwork& net, const SampleSource& source, std::size_t insertion_layer,
                const ThresholdPolicy& policy, std::size_t batch_size, SpikeOpStats* stats) {
  if (source.size == 0) return 0.0;
  obs::metrics().counter("trainer.evals").add(1);
  obs::TraceSpan eval_span(obs::metrics(), "trainer.eval_seconds");
  R4NCL_CHECK(static_cast<bool>(source.fetch), "SampleSource.fetch must be set");
  R4NCL_CHECK(batch_size > 0, "batch_size must be positive");
  std::size_t correct = 0;
  // One scratch batch reused across the whole sweep: samples stream through
  // it one at a time, so peak assembly memory is a single minibatch.
  Tensor batch;
  std::vector<std::int32_t> labels;
  labels.reserve(batch_size);
  for (std::size_t lo = 0; lo < source.size; lo += batch_size) {
    const std::size_t hi = std::min(source.size, lo + batch_size);
    const std::size_t count = hi - lo;
    labels.clear();
    for (std::size_t b = 0; b < count; ++b) {
      const data::Sample& s = source.fetch(lo + b);
      if (b == 0) {
        data::ensure_batch_shape(batch, s.raster.timesteps, count, s.raster.channels);
      } else {
        R4NCL_CHECK(s.raster.timesteps == batch.dim(0) && s.raster.channels == batch.dim(2),
                    "raster shape mismatch inside batch");
      }
      data::fill_batch_column(batch, b, s.raster);
      labels.push_back(s.label);
    }
    const Tensor logits = net.forward_logits(batch, insertion_layer, policy, stats);
    const auto preds = argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(source.size);
}

}  // namespace r4ncl::snn
