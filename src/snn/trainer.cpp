#include "snn/trainer.hpp"

#include <algorithm>

#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace r4ncl::snn {

std::vector<EpochRecord> train_supervised(SnnNetwork& net, const data::Dataset& dataset,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook) {
  SampleSource source;
  source.size = dataset.size();
  source.fetch = [&dataset](std::size_t i) -> const data::Sample& { return dataset[i]; };
  return train_supervised(net, source, optimizer, options, hook);
}

std::vector<EpochRecord> train_supervised(SnnNetwork& net, const SampleSource& source,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook) {
  R4NCL_CHECK(source.size > 0, "cannot train on an empty dataset");
  R4NCL_CHECK(static_cast<bool>(source.fetch), "SampleSource.fetch must be set");
  R4NCL_CHECK(options.batch_size > 0, "batch_size must be positive");
  Rng shuffle_rng(options.shuffle_seed);
  std::vector<EpochRecord> history;
  history.reserve(options.epochs);
  std::vector<std::int32_t> labels;
  labels.reserve(options.batch_size);
  std::vector<std::uint8_t> row_correct;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    Stopwatch watch;
    EpochRecord rec;
    rec.epoch = epoch;
    auto order = shuffle_rng.permutation(source.size);
    std::size_t correct = 0;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t lo = 0; lo < order.size(); lo += options.batch_size) {
      const std::size_t hi = std::min(order.size(), lo + options.batch_size);
      const std::size_t batch_count = hi - lo;
      // Samples are copied into the batch tensor one at a time, so a lazy
      // source only ever needs its current sample alive — the streaming
      // replay contract.
      Tensor batch;
      labels.clear();
      for (std::size_t b = 0; b < batch_count; ++b) {
        const data::Sample& s = source.fetch(order[lo + b]);
        if (b == 0) {
          batch = Tensor(s.raster.timesteps, batch_count, s.raster.channels);
        } else {
          R4NCL_CHECK(s.raster.timesteps == batch.dim(0) && s.raster.channels == batch.dim(2),
                      "raster shape mismatch inside batch");
        }
        data::fill_batch_column(batch, b, s.raster);
        labels.push_back(s.label);
      }
      const StepResult step =
          net.train_step(batch, labels, options.insertion_layer, options.policy, optimizer,
                         options.lr, options.mode, &rec.stats,
                         options.sample_outcome ? &row_correct : nullptr);
      loss_sum += step.loss;
      correct += step.correct;
      if (options.sample_outcome) {
        for (std::size_t b = 0; b < batch_count; ++b) {
          options.sample_outcome(order[lo + b], row_correct[b] != 0 ? 0.0f : 1.0f);
        }
      }
      ++batches;
    }
    rec.loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    rec.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(source.size);
    rec.wall_seconds = watch.elapsed_seconds();
    if (options.verbose) {
      R4NCL_INFO("epoch " << epoch << ": loss=" << rec.loss
                          << " train_acc=" << rec.train_accuracy << " ("
                          << rec.wall_seconds << "s)");
    }
    if (hook) hook(rec);
    history.push_back(std::move(rec));
  }
  return history;
}

double evaluate(const SnnNetwork& net, const data::Dataset& dataset,
                std::size_t insertion_layer, const ThresholdPolicy& policy,
                std::size_t batch_size, SpikeOpStats* stats) {
  if (dataset.empty()) return 0.0;
  R4NCL_CHECK(batch_size > 0, "batch_size must be positive");
  std::size_t correct = 0;
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (std::size_t lo = 0; lo < indices.size(); lo += batch_size) {
    const std::size_t hi = std::min(indices.size(), lo + batch_size);
    const std::span<const std::size_t> idx(indices.data() + lo, hi - lo);
    const Tensor batch = data::make_batch(dataset, idx);
    const auto labels = data::batch_labels(dataset, idx);
    const Tensor logits = net.forward_logits(batch, insertion_layer, policy, stats);
    const auto preds = argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace r4ncl::snn
