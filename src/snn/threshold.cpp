#include "snn/threshold.hpp"

#include <cmath>

namespace r4ncl::snn {

ThresholdState::ThresholdState(const ThresholdPolicy& policy) noexcept
    : policy_(policy), current_(policy.fixed_value) {}

float ThresholdState::threshold_at(int t) noexcept {
  if (policy_.mode == ThresholdMode::kFixed) return policy_.fixed_value;
  // Adjust only on interval boundaries (Alg. 1 line 10); between boundaries
  // the previous value persists.
  if (policy_.adjust_interval > 0 && t % policy_.adjust_interval == 0) {
    if (window_spikes_ > 0) {
      const double avg_spike_time =
          window_time_sum_ / static_cast<double>(window_spikes_);
      // Alg. 1 line 13: Vthr = 1 + 0.01 (Tstep − avg_spike_time).  Early
      // spikes (small avg time) push the threshold up; late spikes pull it
      // toward the base.
      current_ = policy_.fixed_value +
                 policy_.gain * static_cast<float>(policy_.total_timesteps - avg_spike_time);
    } else {
      // Alg. 1 line 16: sigmoidal decay toward ~0.5 when the layer is silent,
      // making neurons easier to fire under sparse (reduced-timestep) input.
      current_ = 1.0f / (1.0f + std::exp(-policy_.decay * static_cast<float>(t)));
    }
    window_spikes_ = 0;
    window_time_sum_ = 0.0;
  }
  return current_;
}

void ThresholdState::observe(int t, std::size_t spike_count) noexcept {
  if (policy_.mode == ThresholdMode::kFixed || spike_count == 0) return;
  window_spikes_ += spike_count;
  window_time_sum_ += static_cast<double>(spike_count) * static_cast<double>(t);
}

}  // namespace r4ncl::snn
