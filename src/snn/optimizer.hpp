// First-order optimizers for the SNN parameters.
//
// The Adam state is keyed by the parameter tensor's storage address — valid
// because layer parameter tensors are allocated once at construction and
// never resized.  The learning rate is passed per step() so the continual-
// learning phase can use η_cl = η_pre / 100 (paper Sec. III-B) without
// rebuilding optimizer state.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "tensor/tensor.hpp"

namespace r4ncl::snn {

/// Adam hyper-parameters (defaults follow Kingma & Ba).
struct AdamParams {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// Gradients are clipped elementwise to ±clip before the update (0 = off).
  float grad_clip = 5.0f;
};

/// Adam with per-tensor first/second-moment state.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(const AdamParams& params = {}) : params_(params) {}

  /// Applies one Adam update to `param` given `grad`.
  void step(Tensor& param, const Tensor& grad, float lr);

  /// Drops all moment state (used when switching training phases).
  void reset() { states_.clear(); }

  [[nodiscard]] const AdamParams& params() const noexcept { return params_; }

 private:
  struct State {
    Tensor m;
    Tensor v;
    std::int64_t t = 0;
  };
  AdamParams params_;
  std::unordered_map<const float*, State> states_;
};

/// Plain SGD (used by tests and the ablation bench as a control).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float momentum = 0.0f) : momentum_(momentum) {}

  void step(Tensor& param, const Tensor& grad, float lr);
  void reset() { velocity_.clear(); }

 private:
  float momentum_;
  std::unordered_map<const float*, Tensor> velocity_;
};

}  // namespace r4ncl::snn
