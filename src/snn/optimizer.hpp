// First-order optimizers for the SNN parameters.
//
// Moment state is keyed by a stable *parameter path* (e.g. "readout.w",
// "hidden1.w_ff") so it survives a checkpoint/restore cycle: the historical
// storage-address key died with the process, which made warm resume
// impossible (a reloaded network allocates at different addresses).  The
// address-based step() overload remains for callers that never persist
// (it derives a per-process key from the storage address).  The learning
// rate is passed per step() so the continual-learning phase can use
// η_cl = η_pre / 100 (paper Sec. III-B) without rebuilding optimizer state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tensor/tensor.hpp"
#include "util/serialize.hpp"

namespace r4ncl::snn {

/// Adam hyper-parameters (defaults follow Kingma & Ba).
struct AdamParams {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// Gradients are clipped elementwise to ±clip before the update (0 = off).
  float grad_clip = 5.0f;
};

/// Adam with per-parameter first/second-moment state.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(const AdamParams& params = {}) : params_(params) {}

  /// Applies one Adam update to `param` given `grad`, with moment state
  /// keyed by the stable parameter path `key` — the persistable form every
  /// run-engine call site uses, so checkpointed moments reattach to the
  /// right tensors on resume.
  void step(std::string_view key, Tensor& param, const Tensor& grad, float lr);

  /// Address-keyed convenience overload for callers that never persist the
  /// optimizer (the key is derived from the parameter's storage address, so
  /// it is NOT stable across processes).
  void step(Tensor& param, const Tensor& grad, float lr);

  /// Drops all moment state (used when switching training phases).
  void reset() { states_.clear(); }

  /// Number of parameter tensors with live moment state.
  [[nodiscard]] std::size_t num_states() const noexcept { return states_.size(); }

  [[nodiscard]] const AdamParams& params() const noexcept { return params_; }

  /// Serializes every (key → m, v, t) entry, sorted by key so the bytes are
  /// deterministic.  load() replaces all state; a later step() with a loaded
  /// key verifies the stored moment shape against the live parameter.
  void save(BinaryWriter& out) const;
  void load(BinaryReader& in);

 private:
  struct State {
    Tensor m;
    Tensor v;
    std::int64_t t = 0;
  };
  AdamParams params_;
  std::unordered_map<std::string, State> states_;
};

/// Plain SGD (used by tests and the ablation bench as a control).  Keyed and
/// serialized exactly like AdamOptimizer so either optimizer can back a
/// checkpointed run.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float momentum = 0.0f) : momentum_(momentum) {}

  void step(std::string_view key, Tensor& param, const Tensor& grad, float lr);
  void step(Tensor& param, const Tensor& grad, float lr);
  void reset() { velocity_.clear(); }

  void save(BinaryWriter& out) const;
  void load(BinaryReader& in);

 private:
  float momentum_;
  std::unordered_map<std::string, Tensor> velocity_;
};

}  // namespace r4ncl::snn
