#include "snn/surrogate.hpp"

#include <cmath>

namespace r4ncl::snn {

float hard_spike(float u) noexcept { return u > 0.0f ? 1.0f : 0.0f; }

float surrogate_grad(float u, const SurrogateParams& p) noexcept {
  switch (p.kind) {
    case SurrogateKind::kFastSigmoid: {
      const float d = p.scale * std::fabs(u) + 1.0f;
      return 1.0f / (d * d);
    }
    case SurrogateKind::kAtan: {
      const float su = p.scale * u;
      return 1.0f / (1.0f + su * su);
    }
    case SurrogateKind::kBoxcar:
      return std::fabs(u) < 1.0f / p.scale ? 1.0f : 0.0f;
  }
  return 0.0f;
}

float soft_spike(float u, const SurrogateParams& p) noexcept {
  // d/du [u / (1 + s|u|)] = 1 / (1 + s|u|)^2, i.e. exactly the fast-sigmoid
  // surrogate; the 0.5 offset keeps the "spike" in a sensible (0,1)-ish range.
  const float s = p.scale;
  return 0.5f + u / (1.0f + s * std::fabs(u));
}

}  // namespace r4ncl::snn
