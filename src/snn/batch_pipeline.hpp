// Double-buffered minibatch assembly for the supervised training loop.
//
// BatchPipeline turns a SampleSource + epoch permutation into a sequence of
// ready-to-train PreparedBatch slots.  With prefetch = 0 it assembles each
// batch synchronously into a persistent scratch tensor (the allocation-free
// fast path the trainer always gets).  With prefetch ≥ 1 a single background
// producer thread decodes batch t+1..t+prefetch into spare slots while the
// consumer trains on batch t, overlapping replay decompression with the
// forward/backward pass.
//
// Correctness contracts:
//  - All SampleSource::fetch calls happen on one thread (the producer when
//    prefetch ≥ 1, the caller otherwise), preserving the source's
//    single-scratch streaming contract.
//  - Batch contents and consumption order are independent of `prefetch`, so
//    prefetch=N is bit-identical to prefetch=0 (pinned by tests/bench).
//  - Producer-side exceptions are captured and rethrown from next_batch().
//
// stall_seconds() (consumer wait) vs assemble_seconds() (decode + fill work)
// is the overlap headline: with prefetch=0 every assembled second stalls the
// train loop; with prefetch=1 only the un-overlapped remainder does.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "snn/trainer.hpp"
#include "tensor/tensor.hpp"

namespace r4ncl::snn {

/// One assembled minibatch: the (T × count × C) input cube, its labels, and
/// its offset into the epoch permutation (order[lo + b] is row b's source
/// index — what the sample_outcome hook reports against).
struct PreparedBatch {
  Tensor batch;
  std::vector<std::int32_t> labels;
  std::size_t lo = 0;
  std::size_t count = 0;
};

class BatchPipeline {
 public:
  /// `source` must outlive the pipeline.  `prefetch` is the number of batches
  /// decoded ahead of the consumer (0 = synchronous).
  BatchPipeline(const SampleSource& source, std::size_t batch_size, std::size_t prefetch);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Starts an epoch over the given permutation of [0, source.size).  The
  /// previous epoch must have been fully consumed.
  void begin_epoch(const std::vector<std::size_t>& order);

  /// Next assembled batch, or nullptr at epoch end.  The returned slot stays
  /// valid until the next next_batch() call.  Rethrows producer exceptions.
  const PreparedBatch* next_batch();

  /// Cumulative seconds the consumer spent blocked waiting for a batch.
  [[nodiscard]] double stall_seconds() const;
  /// Cumulative seconds spent decoding + filling batch tensors.
  [[nodiscard]] double assemble_seconds() const;

 private:
  struct Slot {
    PreparedBatch pb;
    bool ready = false;
  };

  void assemble(PreparedBatch& pb, std::size_t batch_index);
  void producer_main();

  const SampleSource& source_;
  std::size_t batch_size_;
  std::size_t prefetch_;
  std::vector<Slot> slots_;
  std::vector<std::size_t> order_;
  std::size_t num_batches_ = 0;

  // Consumer-side cursor (threaded mode: guarded by mu_).
  std::size_t next_consume_ = 0;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t held_slot_ = kNoSlot;

  // Producer state (guarded by mu_).
  std::size_t produce_next_ = 0;
  std::size_t produced_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;

  double stall_seconds_ = 0.0;
  double assemble_seconds_ = 0.0;  // guarded by mu_ in threaded mode

  mutable std::mutex mu_;
  std::condition_variable cv_producer_;
  std::condition_variable cv_consumer_;
  std::thread producer_;
};

}  // namespace r4ncl::snn
