// Double-buffered minibatch assembly for the supervised training loop.
//
// BatchPipeline turns a SampleSource + epoch permutation into a sequence of
// ready-to-train PreparedBatch slots.  With prefetch = 0 it assembles each
// batch synchronously into a persistent scratch tensor (the allocation-free
// fast path the trainer always gets).  With prefetch ≥ 1 a single background
// producer thread decodes batch t+1..t+prefetch into spare slots while the
// consumer trains on batch t, overlapping replay decompression with the
// forward/backward pass.
//
// Correctness contracts:
//  - All SampleSource::fetch calls happen on one thread (the producer when
//    prefetch ≥ 1, the caller otherwise), preserving the source's
//    single-scratch streaming contract.
//  - Batch contents and consumption order are independent of `prefetch`, so
//    prefetch=N is bit-identical to prefetch=0 (pinned by tests/bench).
//  - Producer-side exceptions are captured and rethrown from next_batch().
//
// stall_seconds() (consumer wait) vs assemble_seconds() (decode + fill work)
// is the overlap headline: with prefetch=0 every assembled second stalls the
// train loop; with prefetch=1 only the un-overlapped remainder does.
#pragma once

#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "snn/trainer.hpp"
#include "tensor/tensor.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace r4ncl::obs {
class Histogram;
}  // namespace r4ncl::obs

namespace r4ncl::snn {

/// One assembled minibatch: the (T × count × C) input cube, its labels, and
/// its offset into the epoch permutation (order[lo + b] is row b's source
/// index — what the sample_outcome hook reports against).
struct PreparedBatch {
  Tensor batch;
  std::vector<std::int32_t> labels;
  std::size_t lo = 0;
  std::size_t count = 0;
};

class BatchPipeline {
 public:
  /// `source` must outlive the pipeline.  `prefetch` is the number of batches
  /// decoded ahead of the consumer (0 = synchronous).
  BatchPipeline(const SampleSource& source, std::size_t batch_size, std::size_t prefetch);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Starts an epoch over the given permutation of [0, source.size).  The
  /// previous epoch must have been fully consumed.
  void begin_epoch(const std::vector<std::size_t>& order) R4NCL_EXCLUDES(mu_);

  /// Next assembled batch, or nullptr at epoch end.  The returned slot stays
  /// valid until the next next_batch() call.  Rethrows producer exceptions.
  const PreparedBatch* next_batch() R4NCL_EXCLUDES(mu_);

  /// Cumulative seconds the consumer spent blocked waiting for a batch.
  /// Per-instance compatibility shim: the same stalls feed the registry's
  /// `pipeline.stall_seconds` histogram (one record per wait), so the fleet
  /// view is obs::MetricsRegistry::snapshot() — prefer it for new telemetry.
  [[nodiscard]] double stall_seconds() const R4NCL_EXCLUDES(mu_);
  /// Cumulative seconds spent decoding + filling batch tensors.  Shim over
  /// the registry's `pipeline.assemble_seconds` histogram, as above.
  [[nodiscard]] double assemble_seconds() const R4NCL_EXCLUDES(mu_);

 private:
  struct Slot {
    /// Batch payload.  Deliberately not guarded by mu_: a slot's pb is owned
    /// by the producer while !ready and by the consumer while it is the held
    /// slot; the `ready` flip under mu_ publishes the hand-off.
    PreparedBatch pb;
    bool ready = false;  // guarded by mu_ (see field block below)
  };

  void assemble(PreparedBatch& pb, std::size_t batch_index) R4NCL_EXCLUDES(mu_);
  void producer_main() R4NCL_EXCLUDES(mu_);

  const SampleSource& source_;
  std::size_t batch_size_;
  std::size_t prefetch_;
  /// Slot vector shape is construction-fixed; element `ready` flags follow
  /// the mu_ discipline, element payloads the ownership protocol above.
  std::vector<Slot> slots_;
  /// Epoch-stable: written by begin_epoch under mu_ while the producer is
  /// parked (the fully-consumed precondition proves it cannot be decoding),
  /// read without the lock by assemble() for the rest of the epoch.
  std::vector<std::size_t> order_;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  // Shared cursor/stat state.  Everything below is guarded by mu_ in *both*
  // modes: the prefetch=0 path has no producer thread, but stall_seconds()/
  // assemble_seconds() may legitimately be polled from another thread while
  // an epoch runs, so the synchronous path takes the (uncontended) lock too.
  std::size_t num_batches_ R4NCL_GUARDED_BY(mu_) = 0;
  std::size_t next_consume_ R4NCL_GUARDED_BY(mu_) = 0;
  std::size_t held_slot_ R4NCL_GUARDED_BY(mu_) = kNoSlot;
  std::size_t produce_next_ R4NCL_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ R4NCL_GUARDED_BY(mu_);
  bool shutdown_ R4NCL_GUARDED_BY(mu_) = false;
  double stall_seconds_ R4NCL_GUARDED_BY(mu_) = 0.0;
  double assemble_seconds_ R4NCL_GUARDED_BY(mu_) = 0.0;

  mutable Mutex mu_;
  CondVar cv_producer_;
  CondVar cv_consumer_;
  std::thread producer_;

  /// Registry handles (obs::metrics()), resolved at construction.  record()
  /// is lock-free, so publishing under mu_ adds no lock-ordering edge; a
  /// disarmed registry reduces each record to one relaxed load.
  obs::Histogram* obs_stall_;
  obs::Histogram* obs_assemble_;
};

}  // namespace r4ncl::snn
