// Surrogate gradients for the non-differentiable spike activation.
//
// Forward pass (paper Fig. 5a): S(t) = 1 if u > 0 else 0, with u = V − Vthr.
// Backward pass (paper Fig. 5b): fast-sigmoid surrogate
//     ∂S/∂u ≈ 1 / (scale·|u| + 1)²
// Atan and boxcar variants are provided for the ablation bench.
//
// A continuous "soft spike" forward mode is also provided whose analytic
// derivative equals the surrogate exactly; the BPTT implementation is
// validated against finite differences in that mode (tests/test_bptt.cpp).
#pragma once

namespace r4ncl::snn {

/// Supported surrogate-gradient families.
enum class SurrogateKind {
  kFastSigmoid,  // 1/(scale|u|+1)^2 — the paper's choice
  kAtan,         // 1/(1+(scale·u)^2) · (1/π scaling folded into `scale`)
  kBoxcar,       // 1 inside |u| < 1/scale, else 0
};

/// Surrogate parameters. `scale` controls the sharpness around u = 0;
/// the paper's Fig. 5 corresponds to fast-sigmoid with scale = 10.
struct SurrogateParams {
  SurrogateKind kind = SurrogateKind::kFastSigmoid;
  float scale = 10.0f;
};

/// Hard spike: Θ(u).
float hard_spike(float u) noexcept;

/// Surrogate derivative ∂S/∂u evaluated at u.
float surrogate_grad(float u, const SurrogateParams& p) noexcept;

/// Continuous spike function h(u) with h'(u) == surrogate_grad(u) for the
/// fast-sigmoid family: h(u) = 0.5 + u / (1 + scale·|u|).  Only defined for
/// kFastSigmoid (the gradcheck mode); other kinds fall back to fast-sigmoid.
float soft_spike(float u, const SurrogateParams& p) noexcept;

}  // namespace r4ncl::snn
