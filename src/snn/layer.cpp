#include "snn/layer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace r4ncl::snn {

namespace {
constexpr std::uint32_t kLayerTag = make_tag("LAYR");

std::atomic<SparseForward> g_sparse_forward{SparseForward::kAuto};
}  // namespace

void set_sparse_forward(SparseForward mode) noexcept {
  g_sparse_forward.store(mode, std::memory_order_relaxed);
}

SparseForward sparse_forward() noexcept {
  return g_sparse_forward.load(std::memory_order_relaxed);
}

RecurrentLifLayer::RecurrentLifLayer(std::size_t n_in, std::size_t n_out, const LifParams& lif,
                                     const SurrogateParams& surrogate, Rng& rng, float gain,
                                     float rec_gain)
    : n_in_(n_in),
      n_out_(n_out),
      lif_(lif),
      surrogate_(surrogate),
      w_ff_(n_in, n_out),
      w_rec_(lif.recurrent ? n_out : 0, lif.recurrent ? n_out : 0),
      d_w_ff_(n_in, n_out),
      d_w_rec_(lif.recurrent ? n_out : 0, lif.recurrent ? n_out : 0) {
  R4NCL_CHECK(n_in > 0 && n_out > 0, "layer dims must be positive");
  w_ff_.fill_normal(rng, gain / std::sqrt(static_cast<float>(n_in)));
  if (lif_.recurrent) {
    w_rec_.fill_normal(rng, rec_gain / std::sqrt(static_cast<float>(n_out)));
  }
}

Tensor RecurrentLifLayer::forward(const Tensor& x, SpikeMode mode,
                                  const ThresholdPolicy& policy, LayerCache* cache,
                                  SpikeOpStats* stats) const {
  R4NCL_CHECK(x.rank() == 3, "input must be (T × B × n_in)");
  R4NCL_CHECK(x.dim(2) == n_in_, "input feature dim " << x.dim(2) << " != " << n_in_);
  // Hard mode goes event-driven: one scan of x builds the active-channel
  // lists (the same traffic the dense path's per-timestep count_nonzero
  // stats rescan used to cost), then every timestep does O(events·n_out)
  // work.  Soft mode (gradcheck) keeps the dense kernels.
  if (mode == SpikeMode::kHard && sparse_forward() != SparseForward::kNever) {
    return forward_sparse(compress::events_from_batch(x), policy, cache, stats);
  }
  return forward_dense(x, mode, policy, cache, stats);
}

Tensor RecurrentLifLayer::forward_events(const compress::BatchEventList& events, SpikeMode mode,
                                         const ThresholdPolicy& policy,
                                         SpikeOpStats* stats) const {
  R4NCL_CHECK(mode == SpikeMode::kHard, "event-driven forward is hard-mode only");
  R4NCL_CHECK(events.channels == n_in_,
              "event-list channel count " << events.channels << " != " << n_in_);
  return forward_sparse(events, policy, nullptr, stats);
}

Tensor RecurrentLifLayer::forward_sparse(const compress::BatchEventList& events,
                                         const ThresholdPolicy& policy, LayerCache* cache,
                                         SpikeOpStats* stats) const {
  const std::size_t T = events.timesteps, B = events.batch;
  Tensor out(T, B, n_out_);
  Tensor v(B, n_out_);        // current membrane
  Tensor prev_s(B, n_out_);   // S(t−1)
  Tensor current(B, n_out_);  // I(t)
  if (cache != nullptr) {
    cache->membrane = Tensor(T, B, n_out_);
    cache->spikes = Tensor(T, B, n_out_);
    cache->theta.assign(T, policy.fixed_value);
  }

  ThresholdState th(policy);
  float theta_prev = policy.fixed_value;
  const std::size_t bn = B * n_out_;

  // Fixed threshold: θ(t) never depends on the batch's spike counts, so the
  // rows are fully independent — each batch row runs its entire T-step
  // sequence on one thread (one parallel dispatch per pass instead of one
  // per timestep, and row state stays hot in cache).  The per-(b, t) FP op
  // sequence is exactly the per-timestep loop below, so the output is
  // bit-identical to it (and to the dense kernel) at any thread count.
  if (policy.mode == ThresholdMode::kFixed) {
    // Everything the inner loops touch is hoisted into locals: member and
    // vector accesses through `this`/`events` would otherwise defeat the
    // auto-vectorizer (a float store could alias lif_.beta).
    const float theta = policy.fixed_value;
    const std::size_t N = n_out_;
    const float beta = lif_.beta;
    const bool recurrent = lif_.recurrent;
    const float* wff = w_ff_.raw();
    const float* wrec = recurrent ? w_rec_.raw() : nullptr;
    const std::uint32_t* offs = events.offsets.data();
    const std::uint32_t* chan = events.channel.data();
    const float* val = events.value.data();
    const bool unit = events.unit_values;
    float* outp = out.raw();
    float* cmem = cache != nullptr ? cache->membrane.raw() : nullptr;
    float* cspk = cache != nullptr ? cache->spikes.raw() : nullptr;
    std::vector<std::uint32_t> rec_idx(recurrent ? bn : 0);
    std::vector<std::size_t> row_total(B, 0);  // spikes over all T
    std::vector<std::size_t> row_last(B, 0);   // spikes at t = T−1
    const std::vector<float> zero_row(N, 0.0f);  // S(−1)
    parallel_for(
        0, B,
        [&](std::size_t b) {
          float* vrow = v.raw() + b * N;
          float* crow = current.raw() + b * N;
          std::uint32_t* ridx = recurrent ? rec_idx.data() + b * N : nullptr;
          std::uint32_t rn = 0;
          std::size_t total = 0, last = 0;
          for (std::size_t t = 0; t < T; ++t) {
            std::fill(crow, crow + N, 0.0f);
            const std::size_t lo = offs[t * B + b], hi = offs[t * B + b + 1];
            if (unit) {
              for (std::size_t e = lo; e < hi; ++e) {
                const float* wrow = wff + chan[e] * N;
                for (std::size_t j = 0; j < N; ++j) crow[j] += wrow[j];
              }
            } else {
              for (std::size_t e = lo; e < hi; ++e) {
                const float av = val[e];
                const float* wrow = wff + chan[e] * N;
                for (std::size_t j = 0; j < N; ++j) crow[j] += av * wrow[j];
              }
            }
            if (recurrent && t > 0) {
              for (std::uint32_t e = 0; e < rn; ++e) {
                const float* wrow = wrec + ridx[e] * N;
                for (std::size_t j = 0; j < N; ++j) crow[j] += wrow[j];
              }
            }
            // S(t−1) is row b of the previous output slab — no prev_s copy.
            const float* srow_prev =
                t > 0 ? outp + ((t - 1) * B + b) * N : zero_row.data();
            float* srow_out = outp + (t * B + b) * N;
            // Membrane update + spike emission, branch-free over j so it
            // vectorizes; the select equals hard_spike(vt − θ) exactly.
            for (std::size_t j = 0; j < N; ++j) {
              const float vt = beta * vrow[j] - theta * srow_prev[j] + crow[j];
              vrow[j] = vt;
              srow_out[j] = vt - theta > 0.0f ? 1.0f : 0.0f;
            }
            // Spike-index/count scan, kept out of the arithmetic loop above
            // so its data-dependent branch cannot block vectorization.
            std::size_t count = 0;
            if (ridx != nullptr) {
              for (std::size_t j = 0; j < N; ++j) {
                if (srow_out[j] != 0.0f) ridx[count++] = static_cast<std::uint32_t>(j);
              }
            } else {
              for (std::size_t j = 0; j < N; ++j) count += srow_out[j] != 0.0f ? 1u : 0u;
            }
            rn = static_cast<std::uint32_t>(count);
            total += count;
            if (t + 1 == T) last = count;
            if (cmem != nullptr) {
              std::copy(vrow, vrow + N, cmem + (t * B + b) * N);
              std::copy(srow_out, srow_out + N, cspk + (t * B + b) * N);
            }
          }
          row_total[b] = total;
          row_last[b] = last;
        },
        T * n_out_ * 4);
    if (stats != nullptr) {
      // Fixed-order reduction over rows (integer sums, but keep row order
      // anyway).  ff synops = every event × n_out; recurrent synops at step
      // t charge the spikes of step t−1, i.e. all spikes except t = T−1's.
      std::size_t spike_total = 0, rec_events = 0;
      for (std::size_t b = 0; b < B; ++b) {
        spike_total += row_total[b];
        rec_events += row_total[b] - row_last[b];
      }
      stats->synops += static_cast<std::uint64_t>(events.num_events()) * n_out_;
      if (lif_.recurrent) {
        stats->synops += static_cast<std::uint64_t>(rec_events) * n_out_;
      }
      stats->neuron_updates += static_cast<std::uint64_t>(T) * bn;
      stats->spikes += spike_total;
      stats->timestep_slots += static_cast<std::uint64_t>(T) * B;
    }
    return out;
  }

  // Output spikes double as the next step's recurrent *events*: each row
  // records its spike indices while it computes them, so the recurrent
  // matmul is event-driven too (hard-mode spikes are exactly 1.0f, and the
  // indices are ascending — the dense kernel's accumulation order).
  std::vector<std::uint32_t> rec_idx(lif_.recurrent ? bn : 0);
  std::vector<std::uint32_t> rec_len(lif_.recurrent ? B : 0, 0);
  std::vector<std::size_t> row_spikes(B, 0);
  std::size_t prev_spike_total = 0;  // spikes at t−1 = this step's recurrent events

  for (std::size_t t = 0; t < T; ++t) {
    const float theta_t = th.threshold_at(static_cast<int>(t));

    // Per batch row: event-driven I(t), membrane update, spike emission and
    // next-step recurrent event recording.  Rows write disjoint slices, so
    // any thread count produces identical bits; the per-row grain keeps tiny
    // layers serial (parallel_for's 2048-element floor).
    parallel_for(
        0, B,
        [&](std::size_t b) {
          float* crow = current.raw() + b * n_out_;
          std::fill(crow, crow + n_out_, 0.0f);
          // I(t) = X(t)·W_ff: accumulate the weight row of every active
          // input channel, ascending — bit-identical to kernels::matmul's
          // zero-skipping k loop over the dense slab.
          const std::size_t lo = events.row_begin(t, b), hi = events.row_end(t, b);
          if (events.unit_values) {
            for (std::size_t e = lo; e < hi; ++e) {
              const float* wrow = w_ff_.raw() + events.channel[e] * n_out_;
              for (std::size_t j = 0; j < n_out_; ++j) crow[j] += wrow[j];
            }
          } else {
            for (std::size_t e = lo; e < hi; ++e) {
              const float av = events.value[e];
              const float* wrow = w_ff_.raw() + events.channel[e] * n_out_;
              for (std::size_t j = 0; j < n_out_; ++j) crow[j] += av * wrow[j];
            }
          }
          // I(t) += S(t−1)·W_rec over last step's recorded spike indices.
          if (lif_.recurrent && t > 0) {
            const std::uint32_t* ridx = rec_idx.data() + b * n_out_;
            const std::uint32_t rn = rec_len[b];
            for (std::uint32_t e = 0; e < rn; ++e) {
              const float* wrow = w_rec_.raw() + ridx[e] * n_out_;
              for (std::size_t j = 0; j < n_out_; ++j) crow[j] += wrow[j];
            }
          }
          // V(t) = β·V(t−1) − θ(t−1)·S(t−1) + I(t);  S(t) = Θ(V(t) − θ(t))
          float* vrow = v.raw() + b * n_out_;
          const float* srow_prev = prev_s.raw() + b * n_out_;
          float* srow_out = out.slab(t).data() + b * n_out_;
          std::uint32_t* ridx_out = lif_.recurrent ? rec_idx.data() + b * n_out_ : nullptr;
          std::size_t count = 0;
          for (std::size_t j = 0; j < n_out_; ++j) {
            const float vt = lif_.beta * vrow[j] - theta_prev * srow_prev[j] + crow[j];
            vrow[j] = vt;
            const float s = hard_spike(vt - theta_t);
            srow_out[j] = s;
            if (s != 0.0f) {
              if (ridx_out != nullptr) ridx_out[count] = static_cast<std::uint32_t>(j);
              ++count;
            }
          }
          if (lif_.recurrent) rec_len[b] = static_cast<std::uint32_t>(count);
          row_spikes[b] = count;
        },
        n_out_ * 4);

    // Fixed-order reduction of the per-row spike counts (row 0 first) keeps
    // the adaptive-threshold observation identical across thread counts.
    std::size_t spike_count = 0;
    for (std::size_t b = 0; b < B; ++b) spike_count += row_spikes[b];
    th.observe(static_cast<int>(t), spike_count);

    const float* sp_out = out.slab(t).data();
    if (cache != nullptr) {
      std::copy(v.raw(), v.raw() + bn, cache->membrane.slab(t).data());
      std::copy(sp_out, sp_out + bn, cache->spikes.slab(t).data());
      cache->theta[t] = theta_t;
    }
    if (stats != nullptr) {
      // Synop stats fall straight out of the event list — the counts the
      // dense path re-derived with a count_nonzero rescan of every slab.
      stats->synops += static_cast<std::uint64_t>(events.events_in_timestep(t)) * n_out_;
      if (lif_.recurrent && t > 0) {
        stats->synops += static_cast<std::uint64_t>(prev_spike_total) * n_out_;
      }
      stats->neuron_updates += bn;
      stats->spikes += spike_count;
      stats->timestep_slots += B;
    }

    std::copy(sp_out, sp_out + bn, prev_s.raw());
    theta_prev = theta_t;
    prev_spike_total = spike_count;
  }
  return out;
}

Tensor RecurrentLifLayer::forward_dense(const Tensor& x, SpikeMode mode,
                                        const ThresholdPolicy& policy, LayerCache* cache,
                                        SpikeOpStats* stats) const {
  const std::size_t T = x.dim(0), B = x.dim(1);

  Tensor out(T, B, n_out_);
  Tensor v(B, n_out_);        // current membrane
  Tensor prev_s(B, n_out_);   // S(t−1)
  Tensor current(B, n_out_);  // I(t)
  if (cache != nullptr) {
    cache->membrane = Tensor(T, B, n_out_);
    cache->spikes = Tensor(T, B, n_out_);
    cache->theta.assign(T, policy.fixed_value);
  }

  ThresholdState th(policy);
  float theta_prev = policy.fixed_value;  // θ used for the (empty) step −1 reset
  const std::size_t bn = B * n_out_;

  for (std::size_t t = 0; t < T; ++t) {
    const float theta_t = th.threshold_at(static_cast<int>(t));

    // I(t) = X(t)·W_ff (+ S(t−1)·W_rec)
    kernels::matmul(x.slab(t).data(), B, n_in_, w_ff_.raw(), n_out_, current.raw(), false);
    if (lif_.recurrent && t > 0) {
      kernels::matmul(prev_s.raw(), B, n_out_, w_rec_.raw(), n_out_, current.raw(), true);
    }

    // V(t) = β·V(t−1) − θ(t−1)·S(t−1) + I(t);  S(t) = spike(V(t) − θ(t))
    float* vp = v.raw();
    const float* ip = current.raw();
    const float* sp_prev = prev_s.raw();
    float* sp_out = out.slab(t).data();
    std::size_t spike_count = 0;
    for (std::size_t i = 0; i < bn; ++i) {
      const float vt = lif_.beta * vp[i] - theta_prev * sp_prev[i] + ip[i];
      vp[i] = vt;
      const float u = vt - theta_t;
      const float s = mode == SpikeMode::kHard ? hard_spike(u) : soft_spike(u, surrogate_);
      sp_out[i] = s;
      if (s != 0.0f) ++spike_count;
    }
    th.observe(static_cast<int>(t), spike_count);

    if (cache != nullptr) {
      std::copy(vp, vp + bn, cache->membrane.slab(t).data());
      std::copy(sp_out, sp_out + bn, cache->spikes.slab(t).data());
      cache->theta[t] = theta_t;
    }
    if (stats != nullptr) {
      const std::size_t in_events = kernels::count_nonzero(x.slab(t).data(), B * n_in_);
      stats->synops += static_cast<std::uint64_t>(in_events) * n_out_;
      if (lif_.recurrent && t > 0) {
        const std::size_t rec_events = kernels::count_nonzero(sp_prev, bn);
        stats->synops += static_cast<std::uint64_t>(rec_events) * n_out_;
      }
      stats->neuron_updates += bn;
      stats->spikes += spike_count;
      stats->timestep_slots += B;
    }

    std::copy(sp_out, sp_out + bn, prev_s.raw());
    theta_prev = theta_t;
  }
  return out;
}

void RecurrentLifLayer::backward(const Tensor& x, const LayerCache& cache, const Tensor& d_out,
                                 Tensor* d_in, SpikeOpStats* stats) {
  R4NCL_CHECK(x.rank() == 3 && d_out.rank() == 3, "x and d_out must be 3-D");
  const std::size_t T = x.dim(0), B = x.dim(1);
  R4NCL_CHECK(d_out.dim(0) == T && d_out.dim(1) == B && d_out.dim(2) == n_out_,
              "d_out shape mismatch");
  R4NCL_CHECK(cache.membrane.dim(0) == T, "cache does not match this pass");
  if (d_in != nullptr) {
    R4NCL_CHECK(d_in->same_shape(x), "d_in shape mismatch");
  }

  Tensor d_v(B, n_out_);       // ∂L/∂V(t+1), carried across iterations
  Tensor d_s_rec(B, n_out_);   // recurrent + reset contribution to ∂L/∂S(t)
  Tensor d_s_total(B, n_out_); // scratch
  std::uint64_t bwd_ops = 0;

  for (std::size_t ti = T; ti-- > 0;) {
    // ∂L/∂S(t) = upstream + contributions propagated from step t+1, then
    // ∂L/∂V(t) = ∂L/∂S(t)·Θ′(u) + β·∂L/∂V(t+1).  Both are elementwise, so
    // batch rows write disjoint slices — bit-identical at any thread count.
    const float* up = d_out.slab(ti).data();
    const float* rec = d_s_rec.raw();
    float* ds = d_s_total.raw();
    const float* vcache = cache.membrane.slab(ti).data();
    const float theta_t = cache.theta[ti];
    float* dv = d_v.raw();
    parallel_for(
        0, B,
        [&](std::size_t b) {
          const std::size_t lo = b * n_out_, hi = lo + n_out_;
          for (std::size_t i = lo; i < hi; ++i) ds[i] = up[i] + rec[i];
          for (std::size_t i = lo; i < hi; ++i) {
            const float u = vcache[i] - theta_t;
            dv[i] = ds[i] * surrogate_grad(u, surrogate_) + lif_.beta * dv[i];
          }
        },
        n_out_ * 2);

    // Weight gradients: dW_ff += X(t)ᵀ·dV(t); dW_rec += S(t−1)ᵀ·dV(t).
    kernels::matmul_at_b_accum(x.slab(ti).data(), B, n_in_, dv, n_out_, d_w_ff_.raw());
    bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_out_;
    if (lif_.recurrent && ti > 0) {
      kernels::matmul_at_b_accum(cache.spikes.slab(ti - 1).data(), B, n_out_, dv, n_out_,
                                 d_w_rec_.raw());
      bwd_ops += static_cast<std::uint64_t>(B) * n_out_ * n_out_;
    }

    // Input gradient: dX(t) = dV(t)·W_ffᵀ.
    if (d_in != nullptr) {
      kernels::matmul_a_bt(dv, B, n_out_, w_ff_.raw(), n_in_, d_in->slab(ti).data(), false);
      bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_out_;
    }

    // Contribution to ∂L/∂S(t−1): through W_rec and (optionally) the reset.
    if (ti > 0) {
      if (lif_.recurrent) {
        kernels::matmul_a_bt(dv, B, n_out_, w_rec_.raw(), n_out_, d_s_rec.raw(), false);
        bwd_ops += static_cast<std::uint64_t>(B) * n_out_ * n_out_;
      } else {
        d_s_rec.zero();
      }
      if (!lif_.detach_reset) {
        // V(t) contains −θ(t−1)·S(t−1).
        const float theta_prev = cache.theta[ti - 1];
        float* dsr = d_s_rec.raw();
        parallel_for(
            0, B,
            [&](std::size_t b) {
              const std::size_t lo = b * n_out_, hi = lo + n_out_;
              for (std::size_t i = lo; i < hi; ++i) dsr[i] -= theta_prev * dv[i];
            },
            n_out_);
      }
    }
  }
  if (stats != nullptr) stats->backward_synops += bwd_ops;
}

void RecurrentLifLayer::zero_grad() {
  d_w_ff_.zero();
  if (lif_.recurrent) d_w_rec_.zero();
}

void RecurrentLifLayer::save(BinaryWriter& out) const {
  out.write_tag(kLayerTag);
  out.write_u64(n_in_);
  out.write_u64(n_out_);
  out.write_f32(lif_.beta);
  out.write_u32(lif_.detach_reset ? 1 : 0);
  out.write_u32(lif_.recurrent ? 1 : 0);
  out.write_u32(static_cast<std::uint32_t>(surrogate_.kind));
  out.write_f32(surrogate_.scale);
  out.write_f32_vector({w_ff_.values().begin(), w_ff_.values().end()});
  out.write_f32_vector({w_rec_.values().begin(), w_rec_.values().end()});
}

void RecurrentLifLayer::load(BinaryReader& in) {
  in.expect_tag(kLayerTag);
  const std::size_t n_in = in.read_u64();
  const std::size_t n_out = in.read_u64();
  R4NCL_CHECK(n_in == n_in_ && n_out == n_out_,
              "checkpoint layer is " << n_in << "x" << n_out << ", expected " << n_in_ << "x"
                                     << n_out_);
  lif_.beta = in.read_f32();
  lif_.detach_reset = in.read_u32() != 0;
  const bool recurrent = in.read_u32() != 0;
  R4NCL_CHECK(recurrent == lif_.recurrent, "checkpoint recurrence mismatch");
  surrogate_.kind = static_cast<SurrogateKind>(in.read_u32());
  surrogate_.scale = in.read_f32();
  const auto ff = in.read_f32_vector();
  R4NCL_CHECK(ff.size() == w_ff_.size(), "w_ff size mismatch");
  std::copy(ff.begin(), ff.end(), w_ff_.values().begin());
  const auto rec = in.read_f32_vector();
  R4NCL_CHECK(rec.size() == w_rec_.size(), "w_rec size mismatch");
  std::copy(rec.begin(), rec.end(), w_rec_.values().begin());
}

}  // namespace r4ncl::snn
