#include "snn/layer.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace r4ncl::snn {

namespace {
constexpr std::uint32_t kLayerTag = make_tag("LAYR");
}

RecurrentLifLayer::RecurrentLifLayer(std::size_t n_in, std::size_t n_out, const LifParams& lif,
                                     const SurrogateParams& surrogate, Rng& rng, float gain,
                                     float rec_gain)
    : n_in_(n_in),
      n_out_(n_out),
      lif_(lif),
      surrogate_(surrogate),
      w_ff_(n_in, n_out),
      w_rec_(lif.recurrent ? n_out : 0, lif.recurrent ? n_out : 0),
      d_w_ff_(n_in, n_out),
      d_w_rec_(lif.recurrent ? n_out : 0, lif.recurrent ? n_out : 0) {
  R4NCL_CHECK(n_in > 0 && n_out > 0, "layer dims must be positive");
  w_ff_.fill_normal(rng, gain / std::sqrt(static_cast<float>(n_in)));
  if (lif_.recurrent) {
    w_rec_.fill_normal(rng, rec_gain / std::sqrt(static_cast<float>(n_out)));
  }
}

Tensor RecurrentLifLayer::forward(const Tensor& x, SpikeMode mode,
                                  const ThresholdPolicy& policy, LayerCache* cache,
                                  SpikeOpStats* stats) const {
  R4NCL_CHECK(x.rank() == 3, "input must be (T × B × n_in)");
  R4NCL_CHECK(x.dim(2) == n_in_, "input feature dim " << x.dim(2) << " != " << n_in_);
  const std::size_t T = x.dim(0), B = x.dim(1);

  Tensor out(T, B, n_out_);
  Tensor v(B, n_out_);        // current membrane
  Tensor prev_s(B, n_out_);   // S(t−1)
  Tensor current(B, n_out_);  // I(t)
  if (cache != nullptr) {
    cache->membrane = Tensor(T, B, n_out_);
    cache->spikes = Tensor(T, B, n_out_);
    cache->theta.assign(T, policy.fixed_value);
  }

  ThresholdState th(policy);
  float theta_prev = policy.fixed_value;  // θ used for the (empty) step −1 reset
  const std::size_t bn = B * n_out_;

  for (std::size_t t = 0; t < T; ++t) {
    const float theta_t = th.threshold_at(static_cast<int>(t));

    // I(t) = X(t)·W_ff (+ S(t−1)·W_rec)
    kernels::matmul(x.slab(t).data(), B, n_in_, w_ff_.raw(), n_out_, current.raw(), false);
    if (lif_.recurrent && t > 0) {
      kernels::matmul(prev_s.raw(), B, n_out_, w_rec_.raw(), n_out_, current.raw(), true);
    }

    // V(t) = β·V(t−1) − θ(t−1)·S(t−1) + I(t);  S(t) = spike(V(t) − θ(t))
    float* vp = v.raw();
    const float* ip = current.raw();
    const float* sp_prev = prev_s.raw();
    float* sp_out = out.slab(t).data();
    std::size_t spike_count = 0;
    for (std::size_t i = 0; i < bn; ++i) {
      const float vt = lif_.beta * vp[i] - theta_prev * sp_prev[i] + ip[i];
      vp[i] = vt;
      const float u = vt - theta_t;
      const float s = mode == SpikeMode::kHard ? hard_spike(u) : soft_spike(u, surrogate_);
      sp_out[i] = s;
      if (s != 0.0f) ++spike_count;
    }
    th.observe(static_cast<int>(t), spike_count);

    if (cache != nullptr) {
      std::copy(vp, vp + bn, cache->membrane.slab(t).data());
      std::copy(sp_out, sp_out + bn, cache->spikes.slab(t).data());
      cache->theta[t] = theta_t;
    }
    if (stats != nullptr) {
      const std::size_t in_events = kernels::count_nonzero(x.slab(t).data(), B * n_in_);
      stats->synops += static_cast<std::uint64_t>(in_events) * n_out_;
      if (lif_.recurrent && t > 0) {
        const std::size_t rec_events = kernels::count_nonzero(sp_prev, bn);
        stats->synops += static_cast<std::uint64_t>(rec_events) * n_out_;
      }
      stats->neuron_updates += bn;
      stats->spikes += spike_count;
      stats->timestep_slots += B;
    }

    std::copy(sp_out, sp_out + bn, prev_s.raw());
    theta_prev = theta_t;
  }
  return out;
}

void RecurrentLifLayer::backward(const Tensor& x, const LayerCache& cache, const Tensor& d_out,
                                 Tensor* d_in, SpikeOpStats* stats) {
  R4NCL_CHECK(x.rank() == 3 && d_out.rank() == 3, "x and d_out must be 3-D");
  const std::size_t T = x.dim(0), B = x.dim(1);
  R4NCL_CHECK(d_out.dim(0) == T && d_out.dim(1) == B && d_out.dim(2) == n_out_,
              "d_out shape mismatch");
  R4NCL_CHECK(cache.membrane.dim(0) == T, "cache does not match this pass");
  if (d_in != nullptr) {
    R4NCL_CHECK(d_in->same_shape(x), "d_in shape mismatch");
  }

  const std::size_t bn = B * n_out_;
  Tensor d_v(B, n_out_);       // ∂L/∂V(t+1), carried across iterations
  Tensor d_s_rec(B, n_out_);   // recurrent + reset contribution to ∂L/∂S(t)
  Tensor d_s_total(B, n_out_); // scratch
  std::uint64_t bwd_ops = 0;

  for (std::size_t ti = T; ti-- > 0;) {
    // ∂L/∂S(t) = upstream + contributions propagated from step t+1.
    const float* up = d_out.slab(ti).data();
    const float* rec = d_s_rec.raw();
    float* ds = d_s_total.raw();
    for (std::size_t i = 0; i < bn; ++i) ds[i] = up[i] + rec[i];

    // ∂L/∂V(t) = ∂L/∂S(t)·Θ′(u) + β·∂L/∂V(t+1)
    const float* vcache = cache.membrane.slab(ti).data();
    const float theta_t = cache.theta[ti];
    float* dv = d_v.raw();
    for (std::size_t i = 0; i < bn; ++i) {
      const float u = vcache[i] - theta_t;
      dv[i] = ds[i] * surrogate_grad(u, surrogate_) + lif_.beta * dv[i];
    }

    // Weight gradients: dW_ff += X(t)ᵀ·dV(t); dW_rec += S(t−1)ᵀ·dV(t).
    kernels::matmul_at_b_accum(x.slab(ti).data(), B, n_in_, dv, n_out_, d_w_ff_.raw());
    bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_out_;
    if (lif_.recurrent && ti > 0) {
      kernels::matmul_at_b_accum(cache.spikes.slab(ti - 1).data(), B, n_out_, dv, n_out_,
                                 d_w_rec_.raw());
      bwd_ops += static_cast<std::uint64_t>(B) * n_out_ * n_out_;
    }

    // Input gradient: dX(t) = dV(t)·W_ffᵀ.
    if (d_in != nullptr) {
      kernels::matmul_a_bt(dv, B, n_out_, w_ff_.raw(), n_in_, d_in->slab(ti).data(), false);
      bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_out_;
    }

    // Contribution to ∂L/∂S(t−1): through W_rec and (optionally) the reset.
    if (ti > 0) {
      if (lif_.recurrent) {
        kernels::matmul_a_bt(dv, B, n_out_, w_rec_.raw(), n_out_, d_s_rec.raw(), false);
        bwd_ops += static_cast<std::uint64_t>(B) * n_out_ * n_out_;
      } else {
        d_s_rec.zero();
      }
      if (!lif_.detach_reset) {
        // V(t) contains −θ(t−1)·S(t−1).
        const float theta_prev = cache.theta[ti - 1];
        float* dsr = d_s_rec.raw();
        for (std::size_t i = 0; i < bn; ++i) dsr[i] -= theta_prev * dv[i];
      }
    }
  }
  if (stats != nullptr) stats->backward_synops += bwd_ops;
}

void RecurrentLifLayer::zero_grad() {
  d_w_ff_.zero();
  if (lif_.recurrent) d_w_rec_.zero();
}

void RecurrentLifLayer::save(BinaryWriter& out) const {
  out.write_tag(kLayerTag);
  out.write_u64(n_in_);
  out.write_u64(n_out_);
  out.write_f32(lif_.beta);
  out.write_u32(lif_.detach_reset ? 1 : 0);
  out.write_u32(lif_.recurrent ? 1 : 0);
  out.write_u32(static_cast<std::uint32_t>(surrogate_.kind));
  out.write_f32(surrogate_.scale);
  out.write_f32_vector({w_ff_.values().begin(), w_ff_.values().end()});
  out.write_f32_vector({w_rec_.values().begin(), w_rec_.values().end()});
}

void RecurrentLifLayer::load(BinaryReader& in) {
  in.expect_tag(kLayerTag);
  const std::size_t n_in = in.read_u64();
  const std::size_t n_out = in.read_u64();
  R4NCL_CHECK(n_in == n_in_ && n_out == n_out_,
              "checkpoint layer is " << n_in << "x" << n_out << ", expected " << n_in_ << "x"
                                     << n_out_);
  lif_.beta = in.read_f32();
  lif_.detach_reset = in.read_u32() != 0;
  const bool recurrent = in.read_u32() != 0;
  R4NCL_CHECK(recurrent == lif_.recurrent, "checkpoint recurrence mismatch");
  surrogate_.kind = static_cast<SurrogateKind>(in.read_u32());
  surrogate_.scale = in.read_f32();
  const auto ff = in.read_f32_vector();
  R4NCL_CHECK(ff.size() == w_ff_.size(), "w_ff size mismatch");
  std::copy(ff.begin(), ff.end(), w_ff_.values().begin());
  const auto rec = in.read_f32_vector();
  R4NCL_CHECK(rec.size() == w_rec_.size(), "w_rec size mismatch");
  std::copy(rec.begin(), rec.end(), w_rec_.values().begin());
}

}  // namespace r4ncl::snn
