#include "snn/readout.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace r4ncl::snn {

namespace {
constexpr std::uint32_t kReadoutTag = make_tag("RDOT");
}

LeakyReadout::LeakyReadout(std::size_t n_in, std::size_t n_classes, float beta, Rng& rng,
                           float gain)
    : n_in_(n_in), n_classes_(n_classes), beta_(beta), w_(n_in, n_classes),
      d_w_(n_in, n_classes) {
  R4NCL_CHECK(n_in > 0 && n_classes > 0, "readout dims must be positive");
  w_.fill_normal(rng, gain / std::sqrt(static_cast<float>(n_in)));
}

Tensor LeakyReadout::forward(const Tensor& x, SpikeOpStats* stats) const {
  R4NCL_CHECK(x.rank() == 3 && x.dim(2) == n_in_, "readout input shape mismatch");
  const std::size_t T = x.dim(0), B = x.dim(1);
  Tensor logits(B, n_classes_);
  Tensor v(B, n_classes_);
  Tensor current(B, n_classes_);
  const std::size_t bc = B * n_classes_;
  for (std::size_t t = 0; t < T; ++t) {
    kernels::matmul(x.slab(t).data(), B, n_in_, w_.raw(), n_classes_, current.raw(), false);
    float* vp = v.raw();
    const float* ip = current.raw();
    float* lp = logits.raw();
    for (std::size_t i = 0; i < bc; ++i) {
      vp[i] = beta_ * vp[i] + ip[i];
      lp[i] += vp[i];
    }
    if (stats != nullptr) {
      const std::size_t events = kernels::count_nonzero(x.slab(t).data(), B * n_in_);
      stats->synops += static_cast<std::uint64_t>(events) * n_classes_;
      stats->neuron_updates += bc;
      stats->timestep_slots += B;
    }
  }
  // Time-mean normalisation (see header): keeps the softmax temperature
  // independent of T.
  const float inv_t = 1.0f / static_cast<float>(T);
  for (auto& l : logits.values()) l *= inv_t;
  return logits;
}

void LeakyReadout::backward(const Tensor& x, const Tensor& d_logits, Tensor* d_in,
                            SpikeOpStats* stats) {
  R4NCL_CHECK(x.rank() == 3 && x.dim(2) == n_in_, "readout input shape mismatch");
  const std::size_t T = x.dim(0), B = x.dim(1);
  R4NCL_CHECK(d_logits.rank() == 2 && d_logits.rows() == B && d_logits.cols() == n_classes_,
              "d_logits shape mismatch");
  if (d_in != nullptr) {
    R4NCL_CHECK(d_in->same_shape(x), "d_in shape mismatch");
  }
  // logits = (1/T)·Σ_t V(t) with V(t) = β V(t−1) + I(t)  ⇒
  // ∂L/∂I(t) = (1/T)·Σ_{t'≥t} β^{t'−t} ∂L/∂logits ≡ c(t), built backward:
  // c(T−1) = d_logits/T; c(t) = d_logits/T + β·c(t+1).
  Tensor c(B, n_classes_);
  const std::size_t bc = B * n_classes_;
  const float inv_t = 1.0f / static_cast<float>(T);
  std::uint64_t bwd_ops = 0;
  for (std::size_t ti = T; ti-- > 0;) {
    float* cp = c.raw();
    const float* gp = d_logits.raw();
    for (std::size_t i = 0; i < bc; ++i) cp[i] = gp[i] * inv_t + beta_ * cp[i];
    kernels::matmul_at_b_accum(x.slab(ti).data(), B, n_in_, cp, n_classes_, d_w_.raw());
    bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_classes_;
    if (d_in != nullptr) {
      kernels::matmul_a_bt(cp, B, n_classes_, w_.raw(), n_in_, d_in->slab(ti).data(), false);
      bwd_ops += static_cast<std::uint64_t>(B) * n_in_ * n_classes_;
    }
  }
  if (stats != nullptr) stats->backward_synops += bwd_ops;
}

void LeakyReadout::zero_grad() { d_w_.zero(); }

void LeakyReadout::save(BinaryWriter& out) const {
  out.write_tag(kReadoutTag);
  out.write_u64(n_in_);
  out.write_u64(n_classes_);
  out.write_f32(beta_);
  out.write_f32_vector({w_.values().begin(), w_.values().end()});
}

void LeakyReadout::load(BinaryReader& in) {
  in.expect_tag(kReadoutTag);
  const std::size_t n_in = in.read_u64();
  const std::size_t n_classes = in.read_u64();
  R4NCL_CHECK(n_in == n_in_ && n_classes == n_classes_, "readout shape mismatch");
  beta_ = in.read_f32();
  const auto w = in.read_f32_vector();
  R4NCL_CHECK(w.size() == w_.size(), "readout weight size mismatch");
  std::copy(w.begin(), w.end(), w_.values().begin());
}

}  // namespace r4ncl::snn
