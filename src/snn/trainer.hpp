// Supervised training / evaluation loops over spike datasets.
//
// train_supervised drives the pre-training phase (Alg. 1 lines 1–5) and is
// reused by the continual-learning trainers in src/core; evaluate() computes
// Top-1 accuracy from any insertion point, so latent datasets can be scored
// with the same code path as raw input data.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/spike_data.hpp"
#include "snn/network.hpp"

namespace r4ncl::snn {

/// Options for a supervised training run.
struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  float lr = 1e-3f;
  /// Hidden-layer index the inputs are injected at (0 = raw input).
  std::size_t insertion_layer = 0;
  ThresholdPolicy policy = ThresholdPolicy::fixed(1.0f);
  SpikeMode mode = SpikeMode::kHard;
  std::uint64_t shuffle_seed = 99;
  bool verbose = false;
  /// Minibatches to decode ahead of the train loop on a background thread
  /// (0 = synchronous).  Batch contents and visit order are independent of
  /// this knob, so results are bit-identical for any value — it only moves
  /// sample decode off the critical path (see snn::BatchPipeline).
  std::size_t prefetch = 0;
  /// Optional per-sample outcome hook: called once per trained sample per
  /// epoch with the sample's source index and its pre-update top-1 error
  /// (0.0 = correct, 1.0 = miss).  This is the trainer→replay-buffer
  /// feedback channel of the importance-aware eviction policies
  /// (core::LatentReplayBuffer::report_outcome); unset costs nothing.
  std::function<void(std::size_t index, float error)> sample_outcome;
};

/// Per-epoch record of a training run.
struct EpochRecord {
  std::size_t epoch = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double wall_seconds = 0.0;
  /// Seconds spent decoding samples + filling batch tensors this epoch.
  double assembly_seconds = 0.0;
  /// Seconds the train loop was blocked waiting on batch assembly; equals
  /// assembly_seconds when prefetch = 0, shrinks toward 0 with overlap.
  double assembly_stall_seconds = 0.0;
  SpikeOpStats stats;  // forward+backward work of this epoch
};

/// Per-epoch hook: called after each epoch (e.g. to evaluate held-out sets).
using EpochHook = std::function<void(const EpochRecord&)>;

/// Random-access view over a virtual training set: `size` samples produced
/// on demand.  fetch(i) may return a reference into an internal scratch slot
/// that is only valid until the next fetch — the trainer copies each sample
/// into the batch tensor before fetching the next one, which is what lets a
/// streaming replay source decode one sample at a time instead of
/// materializing the whole set (see core::ReplayStream).
struct SampleSource {
  std::size_t size = 0;
  std::function<const data::Sample&(std::size_t)> fetch;
};

/// Trains `net` on `dataset` (spike cubes at `insertion_layer`).  Returns the
/// per-epoch history.  The caller owns the optimizer so moment state can
/// persist across phases when desired.
std::vector<EpochRecord> train_supervised(SnnNetwork& net, const data::Dataset& dataset,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook = nullptr);

/// train_supervised over a lazily-fetched source.  Bit-identical to the
/// Dataset overload for the same shuffle seed and sample values — the
/// Dataset overload is implemented on top of this one.
std::vector<EpochRecord> train_supervised(SnnNetwork& net, const SampleSource& source,
                                          AdamOptimizer& optimizer, const TrainOptions& options,
                                          const EpochHook& hook = nullptr);

/// Top-1 accuracy of `net` on `dataset` fed at `insertion_layer`.
double evaluate(const SnnNetwork& net, const data::Dataset& dataset,
                std::size_t insertion_layer = 0,
                const ThresholdPolicy& policy = ThresholdPolicy::fixed(1.0f),
                std::size_t batch_size = 32, SpikeOpStats* stats = nullptr);

/// evaluate() over a lazily-fetched source: samples stream one at a time
/// into a single reused scratch batch, so a replay-buffer-backed source is
/// scored without ever materializing the set densely.  Bit-identical to the
/// Dataset overload (which is implemented on top of this one).
double evaluate(const SnnNetwork& net, const SampleSource& source,
                std::size_t insertion_layer = 0,
                const ThresholdPolicy& policy = ThresholdPolicy::fixed(1.0f),
                std::size_t batch_size = 32, SpikeOpStats* stats = nullptr);

}  // namespace r4ncl::snn
