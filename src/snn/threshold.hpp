// Threshold policies: fixed Vthr, statically rescaled Vthr, and the paper's
// adaptive spike-timing controller (Alg. 1, lines 10–17 / 25–30).
//
// Adaptive rule, evaluated once per `adjust_interval` timesteps over the
// spikes observed since the previous adjustment:
//   spikes occurred:  Vthr = base + gain · (Tstep − avg_spike_time)
//   no spikes:        Vthr = 1 / (1 + exp(−decay · t))      (sigmoidal decay)
// with paper constants base = 1, gain = 0.01, decay = 0.001,
// adjust_interval = 5.  "Spike timing" is the timestep index of each emitted
// spike; the average is taken over the adjustment window.
#pragma once

#include <cstddef>
#include <cstdint>

namespace r4ncl::snn {

/// Which threshold behaviour a forward pass should use.
enum class ThresholdMode : std::uint8_t {
  kFixed,     // constant Vthr = fixed_value
  kAdaptive,  // Alg. 1 controller
};

/// Value-type policy handed to layer forward passes.
struct ThresholdPolicy {
  ThresholdMode mode = ThresholdMode::kFixed;
  /// Constant threshold for kFixed, and the `base` of the adaptive rule.
  float fixed_value = 1.0f;
  /// Adaptive-rule constants (paper values).
  int adjust_interval = 5;
  float gain = 0.01f;
  float decay = 0.001f;
  /// Total timesteps Tstep of the sequences this policy will see; required
  /// for the adaptive rule (enters the "Tstep − avg_spike_time" term).
  int total_timesteps = 0;

  /// Convenience factories.
  static ThresholdPolicy fixed(float v) {
    ThresholdPolicy p;
    p.mode = ThresholdMode::kFixed;
    p.fixed_value = v;
    return p;
  }
  static ThresholdPolicy adaptive(int total_timesteps, float base = 1.0f,
                                  int adjust_interval = 5, float gain = 0.01f,
                                  float decay = 0.001f) {
    ThresholdPolicy p;
    p.mode = ThresholdMode::kAdaptive;
    p.fixed_value = base;
    p.adjust_interval = adjust_interval;
    p.gain = gain;
    p.decay = decay;
    p.total_timesteps = total_timesteps;
    return p;
  }
};

/// Per-sequence mutable state of the adaptive controller.  One instance per
/// layer per forward pass; cheap to construct.
class ThresholdState {
 public:
  explicit ThresholdState(const ThresholdPolicy& policy) noexcept;

  /// Threshold to apply at timestep t.  Must be called with increasing t.
  float threshold_at(int t) noexcept;

  /// Reports the spikes emitted at timestep t (count and sum of their
  /// timestep indices, i.e. count·t for a single step).
  void observe(int t, std::size_t spike_count) noexcept;

  /// Current threshold value without advancing (for inspection/tests).
  [[nodiscard]] float current() const noexcept { return current_; }

 private:
  ThresholdPolicy policy_;
  float current_;
  // Spikes accumulated since the previous adjustment boundary.
  std::size_t window_spikes_ = 0;
  double window_time_sum_ = 0.0;
};

}  // namespace r4ncl::snn
