#include "snn/network.hpp"

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace r4ncl::snn {

namespace {
constexpr std::uint32_t kNetTag = make_tag("SNET");
constexpr std::uint32_t kArchTag = make_tag("ARCH");

/// "700-200-100-50/20 classes" — the spec string used in architecture
/// mismatch diagnostics.
std::string arch_spec(const std::vector<std::uint64_t>& sizes, std::uint64_t classes) {
  std::string s;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) s += '-';
    s += std::to_string(sizes[i]);
  }
  s += '/';
  s += std::to_string(classes);
  s += " classes";
  return s;
}

LeakyReadout make_readout(const NetworkConfig& config, Rng& rng) {
  R4NCL_CHECK(config.layer_sizes.size() >= 2,
              "need an input width and at least one hidden layer");
  return LeakyReadout(config.layer_sizes.back(), config.num_classes, config.readout_beta, rng,
                      config.init_gain);
}
}  // namespace

SnnNetwork::SnnNetwork(const NetworkConfig& config)
    : config_(config), readout_([&] {
        Rng tmp(config.seed + 1);
        return make_readout(config, tmp);
      }()) {
  Rng rng(config_.seed);
  hidden_.reserve(config_.layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < config_.layer_sizes.size(); ++i) {
    Rng layer_rng = rng.fork();
    hidden_.emplace_back(config_.layer_sizes[i], config_.layer_sizes[i + 1], config_.lif,
                         config_.surrogate, layer_rng, config_.init_gain,
                         config_.rec_init_gain);
  }
}

std::size_t SnnNetwork::insertion_width(std::size_t insertion_layer) const {
  R4NCL_CHECK(insertion_layer <= num_hidden(),
              "insertion layer " << insertion_layer << " > " << num_hidden());
  return config_.layer_sizes.at(insertion_layer);
}

Tensor SnnNetwork::run_hidden(const Tensor& x, std::size_t from, std::size_t to,
                              const ThresholdPolicy& policy, SpikeOpStats* stats) const {
  R4NCL_CHECK(from <= to && to <= num_hidden(), "bad layer range [" << from << ", " << to << ")");
  if (from == to) return x;
  Tensor cur = hidden_[from].forward(x, SpikeMode::kHard, policy, nullptr, stats);
  for (std::size_t i = from + 1; i < to; ++i) {
    cur = hidden_[i].forward(cur, SpikeMode::kHard, policy, nullptr, stats);
  }
  return cur;
}

Tensor SnnNetwork::forward_logits(const Tensor& x, std::size_t from,
                                  const ThresholdPolicy& policy, SpikeOpStats* stats) const {
  const Tensor readout_in = run_hidden(x, from, num_hidden(), policy, stats);
  return readout_.forward(readout_in, stats);
}

StepResult SnnNetwork::train_step(const Tensor& x, std::span<const std::int32_t> labels,
                                  std::size_t from, const ThresholdPolicy& policy,
                                  AdamOptimizer& optimizer, float lr, SpikeMode mode,
                                  SpikeOpStats* stats,
                                  std::vector<std::uint8_t>* row_correct) {
  R4NCL_CHECK(from <= num_hidden(), "insertion layer out of range");
  const std::size_t trained = num_hidden() - from;
  const std::size_t B = x.dim(1);
  R4NCL_CHECK(labels.size() == B, "labels/batch mismatch");

  // Forward through the learning layers, caching for BPTT.  activations[k]
  // is the input of hidden layer from+k; activations[trained] feeds the
  // readout.
  std::vector<Tensor> activations;
  activations.reserve(trained + 1);
  std::vector<LayerCache> caches(trained);
  activations.push_back(x.rank() == 3 ? Tensor(x) : Tensor());
  R4NCL_CHECK(x.rank() == 3, "input must be (T × B × C)");
  for (std::size_t k = 0; k < trained; ++k) {
    activations.push_back(
        hidden_[from + k].forward(activations[k], mode, policy, &caches[k], stats));
  }
  Tensor logits = readout_.forward(activations[trained], stats);

  // Loss and logits gradient.
  Tensor d_logits(logits.rows(), logits.cols());
  StepResult result;
  result.loss = softmax_cross_entropy(logits, labels, &d_logits);
  const auto preds = argmax_rows(logits);
  if (row_correct != nullptr) row_correct->assign(B, 0);
  for (std::size_t i = 0; i < B; ++i) {
    if (preds[i] == labels[i]) {
      ++result.correct;
      if (row_correct != nullptr) (*row_correct)[i] = 1;
    }
  }

  // Backward: readout, then the hidden learning layers in reverse.
  readout_.zero_grad();
  for (std::size_t k = 0; k < trained; ++k) hidden_[from + k].zero_grad();

  Tensor d_act(activations[trained].dim(0), activations[trained].dim(1),
               activations[trained].dim(2));
  readout_.backward(activations[trained], d_logits, trained > 0 ? &d_act : nullptr, stats);
  for (std::size_t k = trained; k-- > 0;) {
    RecurrentLifLayer& layer = hidden_[from + k];
    if (k > 0) {
      Tensor d_prev(activations[k].dim(0), activations[k].dim(1), activations[k].dim(2));
      layer.backward(activations[k], caches[k], d_act, &d_prev, stats);
      d_act = std::move(d_prev);
    } else {
      layer.backward(activations[k], caches[k], d_act, nullptr, stats);
    }
  }

  // Parameter updates, keyed by stable parameter path (absolute layer index)
  // so Adam moments captured in a checkpoint reattach on warm resume.
  optimizer.step("readout.w", readout_.w(), readout_.grad_w(), lr);
  for (std::size_t k = 0; k < trained; ++k) {
    RecurrentLifLayer& layer = hidden_[from + k];
    const std::string prefix = "hidden" + std::to_string(from + k);
    optimizer.step(prefix + ".w_ff", layer.w_ff(), layer.grad_w_ff(), lr);
    if (layer.lif().recurrent) {
      optimizer.step(prefix + ".w_rec", layer.w_rec(), layer.grad_w_rec(), lr);
    }
  }
  return result;
}

void SnnNetwork::save(const std::string& path) const {
  BinaryWriter out(path);
  save(out);
  out.close();
}

void SnnNetwork::load(const std::string& path) {
  BinaryReader in(path);
  load(in);
}

void SnnNetwork::save(BinaryWriter& out) const {
  out.write_tag(kNetTag);
  out.write_tag(kArchTag);
  out.write_u64(config_.layer_sizes.size());
  for (const std::size_t s : config_.layer_sizes) out.write_u64(s);
  out.write_u64(config_.num_classes);
  out.write_u64(hidden_.size());
  for (const auto& layer : hidden_) layer.save(out);
  readout_.save(out);
}

void SnnNetwork::load(BinaryReader& in) {
  in.expect_tag(kNetTag);
  in.expect_tag(kArchTag);
  const std::uint64_t rank = in.read_u64();
  // Bound the loop by the remaining file size so a corrupt rank cannot spin
  // through billions of read_u64 calls before the short-read check fires.
  R4NCL_CHECK(rank <= in.remaining() / sizeof(std::uint64_t),
              "corrupt architecture section: " << rank << " layer sizes exceed the file");
  std::vector<std::uint64_t> stored_sizes(rank);
  for (auto& s : stored_sizes) s = in.read_u64();
  const std::uint64_t stored_classes = in.read_u64();

  std::vector<std::uint64_t> own_sizes(config_.layer_sizes.begin(), config_.layer_sizes.end());
  R4NCL_CHECK(stored_sizes == own_sizes && stored_classes == config_.num_classes,
              "architecture mismatch: checkpoint is "
                  << arch_spec(stored_sizes, stored_classes) << ", this network is "
                  << arch_spec(own_sizes, config_.num_classes));

  const std::uint64_t n = in.read_u64();
  R4NCL_CHECK(n == hidden_.size(), "checkpoint has " << n << " hidden layers, expected "
                                                     << hidden_.size());
  for (auto& layer : hidden_) layer.load(in);
  readout_.load(in);
}

}  // namespace r4ncl::snn
