#include "snn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace r4ncl::snn {

void AdamOptimizer::step(Tensor& param, const Tensor& grad, float lr) {
  R4NCL_CHECK(param.same_shape(grad), "param/grad shape mismatch");
  if (param.empty()) return;
  State& st = states_[param.raw()];
  if (st.m.empty()) {
    st.m = Tensor(param.rows(), param.cols());
    st.v = Tensor(param.rows(), param.cols());
  }
  ++st.t;
  const float b1 = params_.beta1, b2 = params_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(st.t));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(st.t));
  float* p = param.raw();
  const float* g = grad.raw();
  float* m = st.m.raw();
  float* v = st.v.raw();
  const float clip = params_.grad_clip;
  const std::size_t n = param.size();
  for (std::size_t i = 0; i < n; ++i) {
    float gi = g[i];
    if (clip > 0.0f) gi = std::clamp(gi, -clip, clip);
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
    const float mhat = m[i] / bias1;
    const float vhat = v[i] / bias2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + params_.epsilon);
  }
}

void SgdOptimizer::step(Tensor& param, const Tensor& grad, float lr) {
  R4NCL_CHECK(param.same_shape(grad), "param/grad shape mismatch");
  if (param.empty()) return;
  float* p = param.raw();
  const float* g = grad.raw();
  const std::size_t n = param.size();
  if (momentum_ == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) p[i] -= lr * g[i];
    return;
  }
  Tensor& vel = velocity_[param.raw()];
  if (vel.empty()) vel = Tensor(param.rows(), param.cols());
  float* v = vel.raw();
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = momentum_ * v[i] + g[i];
    p[i] -= lr * v[i];
  }
}

}  // namespace r4ncl::snn
