#include "snn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/error.hpp"

namespace r4ncl::snn {

namespace {

constexpr std::uint32_t kAdamTag = make_tag("ADAM");
constexpr std::uint32_t kSgdTag = make_tag("SGDM");

/// Per-process fallback key for the address-based step() overloads.
std::string address_key(const Tensor& param) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "addr:%p", static_cast<const void*>(param.raw()));
  return buf;
}

std::vector<std::string> sorted_keys_of(const auto& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [k, _] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void write_tensor_2d(BinaryWriter& out, const Tensor& t) {
  out.write_u64(t.rows());
  out.write_u64(t.cols());
  out.write_f32_vector({t.values().begin(), t.values().end()});
}

Tensor read_tensor_2d(BinaryReader& in, const char* what) {
  const std::uint64_t rows = in.read_u64();
  const std::uint64_t cols = in.read_u64();
  const std::vector<float> data = in.read_f32_vector();
  R4NCL_CHECK(data.size() == rows * cols, "corrupt " << what << ": " << rows << "x" << cols
                                                     << " tensor carries " << data.size()
                                                     << " value(s)");
  Tensor t(rows, cols);
  std::copy(data.begin(), data.end(), t.raw());
  return t;
}

}  // namespace

void AdamOptimizer::step(std::string_view key, Tensor& param, const Tensor& grad, float lr) {
  R4NCL_CHECK(param.same_shape(grad), "param/grad shape mismatch");
  if (param.empty()) return;
  State& st = states_[std::string(key)];
  if (st.m.empty()) {
    st.m = Tensor(param.rows(), param.cols());
    st.v = Tensor(param.rows(), param.cols());
  }
  R4NCL_CHECK(st.m.same_shape(param),
              "optimizer moment shape mismatch for '" << key << "': stored " << st.m.rows() << "x"
                                                      << st.m.cols() << ", parameter is "
                                                      << param.rows() << "x" << param.cols());
  ++st.t;
  const float b1 = params_.beta1, b2 = params_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(st.t));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(st.t));
  float* p = param.raw();
  const float* g = grad.raw();
  float* m = st.m.raw();
  float* v = st.v.raw();
  const float clip = params_.grad_clip;
  const std::size_t n = param.size();
  for (std::size_t i = 0; i < n; ++i) {
    float gi = g[i];
    if (clip > 0.0f) gi = std::clamp(gi, -clip, clip);
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
    const float mhat = m[i] / bias1;
    const float vhat = v[i] / bias2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + params_.epsilon);
  }
}

void AdamOptimizer::step(Tensor& param, const Tensor& grad, float lr) {
  step(address_key(param), param, grad, lr);
}

void AdamOptimizer::save(BinaryWriter& out) const {
  out.write_tag(kAdamTag);
  out.write_u64(states_.size());
  for (const std::string& key : sorted_keys_of(states_)) {
    const State& st = states_.at(key);
    out.write_string(key);
    out.write_i64(st.t);
    write_tensor_2d(out, st.m);
    write_tensor_2d(out, st.v);
  }
}

void AdamOptimizer::load(BinaryReader& in) {
  in.expect_tag(kAdamTag);
  const std::uint64_t n = in.read_u64();
  std::unordered_map<std::string, State> loaded;
  loaded.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = in.read_string();
    State st;
    st.t = in.read_i64();
    st.m = read_tensor_2d(in, "Adam first moment");
    st.v = read_tensor_2d(in, "Adam second moment");
    R4NCL_CHECK(st.m.same_shape(st.v), "corrupt Adam state for '" << key << "': m/v shapes differ");
    const bool inserted = loaded.emplace(std::move(key), std::move(st)).second;
    R4NCL_CHECK(inserted, "corrupt Adam state: duplicate parameter key");
  }
  states_ = std::move(loaded);
}

void SgdOptimizer::step(std::string_view key, Tensor& param, const Tensor& grad, float lr) {
  R4NCL_CHECK(param.same_shape(grad), "param/grad shape mismatch");
  if (param.empty()) return;
  float* p = param.raw();
  const float* g = grad.raw();
  const std::size_t n = param.size();
  if (momentum_ == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) p[i] -= lr * g[i];
    return;
  }
  Tensor& vel = velocity_[std::string(key)];
  if (vel.empty()) vel = Tensor(param.rows(), param.cols());
  R4NCL_CHECK(vel.same_shape(param),
              "optimizer velocity shape mismatch for '" << key << "': stored " << vel.rows() << "x"
                                                        << vel.cols() << ", parameter is "
                                                        << param.rows() << "x" << param.cols());
  float* v = vel.raw();
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = momentum_ * v[i] + g[i];
    p[i] -= lr * v[i];
  }
}

void SgdOptimizer::step(Tensor& param, const Tensor& grad, float lr) {
  step(address_key(param), param, grad, lr);
}

void SgdOptimizer::save(BinaryWriter& out) const {
  out.write_tag(kSgdTag);
  out.write_f32(momentum_);
  out.write_u64(velocity_.size());
  for (const std::string& key : sorted_keys_of(velocity_)) {
    out.write_string(key);
    write_tensor_2d(out, velocity_.at(key));
  }
}

void SgdOptimizer::load(BinaryReader& in) {
  in.expect_tag(kSgdTag);
  momentum_ = in.read_f32();
  const std::uint64_t n = in.read_u64();
  std::unordered_map<std::string, Tensor> loaded;
  loaded.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = in.read_string();
    Tensor vel = read_tensor_2d(in, "SGD velocity");
    const bool inserted = loaded.emplace(std::move(key), std::move(vel)).second;
    R4NCL_CHECK(inserted, "corrupt SGD state: duplicate parameter key");
  }
  velocity_ = std::move(loaded);
}

}  // namespace r4ncl::snn
