// Non-spiking leaky readout layer (Fig. 6, rightmost stage).
//
// The readout integrates incoming spikes into per-class membrane traces and
// the classifier output is the time-mean of those traces:
//     V(t) = β_out·V(t−1) + X(t)·W,      logits = (1/T)·Σ_t V(t)
// The leaky trace weights early evidence more heavily (a spike at time t
// contributes Σ_{t'≥t} β^{t'−t}), matching the readout commonly used for
// SHD-style temporal classification; the 1/T normalisation keeps the logit
// scale — and therefore the softmax temperature — independent of the
// timestep setting, so T = 100 and T* = 40 deployments are directly
// comparable.
#pragma once

#include "snn/layer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace r4ncl::snn {

class LeakyReadout {
 public:
  LeakyReadout(std::size_t n_in, std::size_t n_classes, float beta, Rng& rng,
               float gain = 1.0f);

  [[nodiscard]] std::size_t n_in() const noexcept { return n_in_; }
  [[nodiscard]] std::size_t n_classes() const noexcept { return n_classes_; }

  /// Forward over a (T × B × n_in) spike cube → (B × classes) logits.
  Tensor forward(const Tensor& x, SpikeOpStats* stats) const;

  /// Backward from ∂L/∂logits; accumulates dW and, when non-null, writes
  /// ∂L/∂X.  `x` must be the tensor passed to forward.
  void backward(const Tensor& x, const Tensor& d_logits, Tensor* d_in, SpikeOpStats* stats);

  void zero_grad();

  Tensor& w() noexcept { return w_; }
  const Tensor& w() const noexcept { return w_; }
  Tensor& grad_w() noexcept { return d_w_; }
  const Tensor& grad_w() const noexcept { return d_w_; }

  void save(BinaryWriter& out) const;
  void load(BinaryReader& in);

 private:
  std::size_t n_in_;
  std::size_t n_classes_;
  float beta_;
  Tensor w_;    // (n_in × classes)
  Tensor d_w_;  // gradient accumulator
};

}  // namespace r4ncl::snn
