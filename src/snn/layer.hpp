// Recurrent LIF spiking layer with manual backpropagation-through-time.
//
// Discrete-time dynamics (paper Eq. 1–2, soft reset, per-layer recurrence as
// in Fig. 6):
//     I(t) = X(t)·W_ff + S(t−1)·W_rec
//     V(t) = β·V(t−1) − θ(t−1)·S(t−1) + I(t)
//     S(t) = Θ(V(t) − θ(t))                (hard mode)
//            h(V(t) − θ(t))                (soft mode, gradcheck only)
// with V(−1) = S(−1) = 0 and θ(t) supplied by a ThresholdPolicy (fixed or the
// paper's adaptive controller).
//
// Backward: exact BPTT through the above recurrences with the fast-sigmoid
// surrogate standing in for Θ′.  The reset path (−θ·S term) is detached by
// default (LifParams::detach_reset), matching common SNN training practice;
// the non-detached variant exists so finite-difference tests can validate the
// complete gradient in soft mode.
// Hot path (hard mode): the forward pass is event-driven — the input cube is
// turned into per-timestep active-channel lists (compress::BatchEventList)
// once, I(t) accumulates O(events·n_out) weight rows in ascending channel
// order (the exact accumulation order of kernels::matmul's zero-skipping
// loop, so sparse ≡ dense bit-for-bit), the membrane update runs
// batch-parallel over B rows (disjoint writes, per-row spike counts reduced
// in fixed row order — threads=N ≡ threads=1), and synop stats fall out of
// the event list instead of a per-timestep count_nonzero rescan.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/aer.hpp"
#include "snn/surrogate.hpp"
#include "snn/threshold.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace r4ncl::snn {

/// Forward-pass kernel selection.  Both paths are bit-identical, so this is
/// purely a performance knob; kNever exists as the bench baseline and
/// escape hatch.  Soft mode always uses the dense path (gradcheck only).
enum class SparseForward : std::uint8_t {
  kAuto,   // event-driven in hard mode (the default)
  kAlways, // event-driven in hard mode, asserting the input is binary-friendly
  kNever,  // legacy dense matmul + count_nonzero stats
};

/// Process-wide forward-kernel selection (benches/tests toggle it; the
/// bit-identity contract makes it safe to flip at any point).
void set_sparse_forward(SparseForward mode) noexcept;
[[nodiscard]] SparseForward sparse_forward() noexcept;

/// LIF neuron constants shared by all neurons of a layer.
struct LifParams {
  /// Membrane decay per timestep: β = exp(−Δt/τ).
  float beta = 0.95f;
  /// Whether the backward pass ignores the reset path.
  bool detach_reset = true;
  /// Whether the layer has same-layer recurrent weights (Fig. 6).
  bool recurrent = true;
};

/// Forward evaluation mode.
enum class SpikeMode : std::uint8_t {
  kHard,  // binary spikes (production)
  kSoft,  // continuous surrogate forward (finite-difference validation)
};

/// Event and work counters accumulated by forward/backward passes; the
/// metrics library converts these into modelled latency and energy.
struct SpikeOpStats {
  std::uint64_t synops = 0;           // weight ops triggered by input/recurrent events
  std::uint64_t neuron_updates = 0;   // membrane updates (= T·B·N per layer pass)
  std::uint64_t spikes = 0;           // spikes emitted
  std::uint64_t timestep_slots = 0;   // Σ layers (T·B): per-timestep bookkeeping cost
  std::uint64_t backward_synops = 0;  // gradient-pass weight ops (training only)
  std::uint64_t decompress_bits = 0;  // codec work charged by the replay path

  void add(const SpikeOpStats& other) noexcept {
    synops += other.synops;
    neuron_updates += other.neuron_updates;
    spikes += other.spikes;
    timestep_slots += other.timestep_slots;
    backward_synops += other.backward_synops;
    decompress_bits += other.decompress_bits;
  }
};

/// Per-pass tensors retained for the backward pass.
struct LayerCache {
  Tensor membrane;           // V, (T × B × N)
  Tensor spikes;             // S, (T × B × N)
  std::vector<float> theta;  // θ(t), one per timestep
};

/// One recurrent spiking layer (n_in → n_out).
class RecurrentLifLayer {
 public:
  /// Weights are initialised N(0, gain/√n_in) (feedforward) and
  /// N(0, rec_gain/√n_out) (recurrent).
  RecurrentLifLayer(std::size_t n_in, std::size_t n_out, const LifParams& lif,
                    const SurrogateParams& surrogate, Rng& rng, float gain = 1.5f,
                    float rec_gain = 0.5f);

  [[nodiscard]] std::size_t n_in() const noexcept { return n_in_; }
  [[nodiscard]] std::size_t n_out() const noexcept { return n_out_; }
  [[nodiscard]] const LifParams& lif() const noexcept { return lif_; }
  [[nodiscard]] const SurrogateParams& surrogate() const noexcept { return surrogate_; }

  /// Runs the layer over a (T × B × n_in) spike cube; returns (T × B × n_out)
  /// output spikes.  When `cache` is non-null the pass records everything the
  /// backward pass needs.  `stats`, if non-null, accumulates event counts.
  /// Hard mode dispatches through the event-driven path (see file comment)
  /// unless set_sparse_forward(kNever); results are bit-identical either way.
  Tensor forward(const Tensor& x, SpikeMode mode, const ThresholdPolicy& policy,
                 LayerCache* cache, SpikeOpStats* stats) const;

  /// Event-driven forward directly from per-timestep active-channel lists
  /// (e.g. built from AER samples via compress::events_from_aer) — no dense
  /// input cube exists at any point.  Bit-identical to forward() over the
  /// equivalent dense cube.  Inference-only: backward() needs the dense x,
  /// so `cache` capture is not offered here.
  Tensor forward_events(const compress::BatchEventList& events, SpikeMode mode,
                        const ThresholdPolicy& policy, SpikeOpStats* stats) const;

  /// BPTT backward.  `x` must be the exact tensor passed to forward, `d_out`
  /// is ∂L/∂S (T × B × n_out).  Accumulates weight gradients internally and,
  /// when `d_in` is non-null, writes ∂L/∂X (same shape as x).
  void backward(const Tensor& x, const LayerCache& cache, const Tensor& d_out, Tensor* d_in,
                SpikeOpStats* stats);

  /// Zeroes accumulated weight gradients.
  void zero_grad();

  // Parameter / gradient access for the optimizer and for serialization.
  Tensor& w_ff() noexcept { return w_ff_; }
  const Tensor& w_ff() const noexcept { return w_ff_; }
  Tensor& w_rec() noexcept { return w_rec_; }
  const Tensor& w_rec() const noexcept { return w_rec_; }
  Tensor& grad_w_ff() noexcept { return d_w_ff_; }
  const Tensor& grad_w_ff() const noexcept { return d_w_ff_; }
  Tensor& grad_w_rec() noexcept { return d_w_rec_; }
  const Tensor& grad_w_rec() const noexcept { return d_w_rec_; }

  void save(BinaryWriter& out) const;
  void load(BinaryReader& in);

 private:
  /// The legacy dense kernel path (per-timestep matmul + count_nonzero
  /// stats) — soft mode and the SparseForward::kNever bench baseline.
  Tensor forward_dense(const Tensor& x, SpikeMode mode, const ThresholdPolicy& policy,
                       LayerCache* cache, SpikeOpStats* stats) const;
  /// The event-driven, batch-parallel path (hard mode).
  Tensor forward_sparse(const compress::BatchEventList& events, const ThresholdPolicy& policy,
                        LayerCache* cache, SpikeOpStats* stats) const;

  std::size_t n_in_;
  std::size_t n_out_;
  LifParams lif_;
  SurrogateParams surrogate_;
  Tensor w_ff_;    // (n_in × n_out)
  Tensor w_rec_;   // (n_out × n_out); empty when !lif_.recurrent
  Tensor d_w_ff_;  // gradient accumulators
  Tensor d_w_rec_;
};

}  // namespace r4ncl::snn
