// The 4-layer recurrent SNN of Fig. 6 and its partial-range execution.
//
// Architecture (paper defaults): 700-channel input → three recurrent LIF
// hidden layers (200, 100, 50) → 20-class leaky readout.  "Insertion layer"
// j ∈ [0, num_hidden] names the point where latent-replay data enters the
// network: hidden layers < j are frozen (forward-only), hidden layers ≥ j and
// the readout are the learning layers.  j = num_hidden trains the readout
// alone; j = 0 trains everything (replaying raw input spikes).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snn/layer.hpp"
#include "snn/optimizer.hpp"
#include "snn/readout.hpp"
#include "snn/threshold.hpp"

namespace r4ncl::snn {

/// Static description of an SnnNetwork.
struct NetworkConfig {
  /// layer_sizes[0] is the input width; the rest are hidden widths.
  std::vector<std::size_t> layer_sizes = {700, 200, 100, 50};
  std::size_t num_classes = 20;
  LifParams lif;
  SurrogateParams surrogate;
  float readout_beta = 0.95f;
  /// Feedforward / recurrent init gains (× 1/√fan_in).
  float init_gain = 1.5f;
  float rec_init_gain = 0.5f;
  std::uint64_t seed = 7;
};

/// Result of one training step.
struct StepResult {
  double loss = 0.0;
  std::size_t correct = 0;  // training-batch top-1 hits
};

class SnnNetwork {
 public:
  explicit SnnNetwork(const NetworkConfig& config);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_hidden() const noexcept { return hidden_.size(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return readout_.n_classes(); }

  /// Width of the activation entering hidden layer j (j = num_hidden → the
  /// readout input width).  This is the latent-replay channel count.
  [[nodiscard]] std::size_t insertion_width(std::size_t insertion_layer) const;

  [[nodiscard]] RecurrentLifLayer& hidden(std::size_t i) { return hidden_.at(i); }
  [[nodiscard]] const RecurrentLifLayer& hidden(std::size_t i) const { return hidden_.at(i); }
  [[nodiscard]] LeakyReadout& readout() noexcept { return readout_; }
  [[nodiscard]] const LeakyReadout& readout() const noexcept { return readout_; }

  /// Runs hidden layers [from, to) over x (spike cube at layer `from`'s
  /// input) and returns the spike cube entering layer `to`.  to = num_hidden
  /// yields the readout input.  Evaluation only (no caches kept).
  [[nodiscard]] Tensor run_hidden(const Tensor& x, std::size_t from, std::size_t to,
                                  const ThresholdPolicy& policy,
                                  SpikeOpStats* stats = nullptr) const;

  /// Full forward from hidden layer `from` through the readout → logits.
  [[nodiscard]] Tensor forward_logits(const Tensor& x, std::size_t from,
                                      const ThresholdPolicy& policy,
                                      SpikeOpStats* stats = nullptr) const;

  /// One BPTT training step on hidden layers [from, num_hidden) plus the
  /// readout.  `x` is the spike cube at the insertion point, `labels` one
  /// per batch row.  Returns the batch loss and top-1 hits.  When
  /// `row_correct` is non-null it is resized to the batch and filled with
  /// each row's pre-update top-1 hit (1 = correct) — the per-sample outcome
  /// signal importance-aware replay feeds back to its buffer.
  StepResult train_step(const Tensor& x, std::span<const std::int32_t> labels,
                        std::size_t from, const ThresholdPolicy& policy,
                        AdamOptimizer& optimizer, float lr,
                        SpikeMode mode = SpikeMode::kHard, SpikeOpStats* stats = nullptr,
                        std::vector<std::uint8_t>* row_correct = nullptr);

  /// Deep copy (fresh optimizer state required afterwards).
  [[nodiscard]] SnnNetwork clone() const { return *this; }

  void save(const std::string& path) const;
  /// Loads weights into this network; shapes must match the checkpoint.
  void load(const std::string& path);

  /// Stream forms used when the network is one section of a larger
  /// checkpoint.  The format carries an architecture header (layer sizes +
  /// class count); load() verifies it against this network and throws a
  /// pinned "architecture mismatch" Error before touching any weight.
  void save(BinaryWriter& out) const;
  void load(BinaryReader& in);

 private:
  NetworkConfig config_;
  std::vector<RecurrentLifLayer> hidden_;
  LeakyReadout readout_;
};

}  // namespace r4ncl::snn
