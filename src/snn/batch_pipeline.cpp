#include "snn/batch_pipeline.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace r4ncl::snn {

BatchPipeline::BatchPipeline(const SampleSource& source, std::size_t batch_size,
                             std::size_t prefetch)
    : source_(source), batch_size_(batch_size), prefetch_(prefetch),
      obs_stall_(&obs::metrics().histogram("pipeline.stall_seconds",
                                           obs::kLatencyEdgesSeconds)),
      obs_assemble_(&obs::metrics().histogram("pipeline.assemble_seconds",
                                              obs::kLatencyEdgesSeconds)) {
  R4NCL_CHECK(batch_size_ > 0, "batch_size must be positive");
  R4NCL_CHECK(static_cast<bool>(source_.fetch), "SampleSource.fetch must be set");
  // prefetch batches in flight + the one the consumer holds.
  slots_.resize(prefetch_ + 1);
  if (prefetch_ > 0) {
    producer_ = std::thread([this] { producer_main(); });
  }
}

BatchPipeline::~BatchPipeline() {
  if (producer_.joinable()) {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_producer_.notify_all();
    producer_.join();
  }
}

void BatchPipeline::begin_epoch(const std::vector<std::size_t>& order) {
  {
    MutexLock lock(mu_);
    R4NCL_CHECK(next_consume_ == num_batches_ && held_slot_ == kNoSlot,
                "begin_epoch before the previous epoch was fully consumed");
    // The producer is parked in its work-wait here (produce_next_ ==
    // num_batches_, and a producer decoding batch i implies i is neither
    // produced nor consumed, contradicting the fully-consumed check above),
    // so mutating shared state — including the unguarded epoch-stable
    // order_ — under the lock is safe.
    order_ = order;
    num_batches_ = (order_.size() + batch_size_ - 1) / batch_size_;
    next_consume_ = 0;
    produce_next_ = 0;
    for (Slot& s : slots_) s.ready = false;
  }
  cv_producer_.notify_all();
}

void BatchPipeline::assemble(PreparedBatch& pb, std::size_t batch_index) {
  const std::size_t lo = batch_index * batch_size_;
  const std::size_t hi = std::min(order_.size(), lo + batch_size_);
  pb.lo = lo;
  pb.count = hi - lo;
  pb.labels.clear();
  for (std::size_t b = 0; b < pb.count; ++b) {
    const data::Sample& s = source_.fetch(order_[lo + b]);
    if (b == 0) {
      data::ensure_batch_shape(pb.batch, s.raster.timesteps, pb.count, s.raster.channels);
    } else {
      R4NCL_CHECK(s.raster.timesteps == pb.batch.dim(0) && s.raster.channels == pb.batch.dim(2),
                  "raster shape mismatch inside batch");
    }
    data::fill_batch_column(pb.batch, b, s.raster);
    pb.labels.push_back(s.label);
  }
}

void BatchPipeline::producer_main() {
  for (;;) {
    std::size_t idx = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && produce_next_ >= num_batches_) cv_producer_.wait(mu_);
      if (shutdown_) return;
      idx = produce_next_;
      while (!shutdown_ && slots_[idx % slots_.size()].ready) cv_producer_.wait(mu_);
      if (shutdown_) return;
    }
    // A non-ready slot is producer-exclusive and order_/source_ are stable
    // for the whole epoch, so the decode runs outside the lock.
    Slot& slot = slots_[idx % slots_.size()];
    double seconds = 0.0;
    std::exception_ptr err;
    try {
      Stopwatch watch;
      assemble(slot.pb, idx);
      seconds = watch.elapsed_seconds();
    } catch (...) {
      err = std::current_exception();
    }
    MutexLock lock(mu_);
    if (err != nullptr) {
      error_ = err;
      produce_next_ = num_batches_;  // abandon the epoch
      cv_consumer_.notify_all();
      continue;
    }
    assemble_seconds_ += seconds;
    obs_assemble_->record(seconds);
    slot.ready = true;
    produce_next_ = idx + 1;
    cv_consumer_.notify_all();
  }
}

const PreparedBatch* BatchPipeline::next_batch() {
  if (prefetch_ == 0) {
    // Synchronous path: no producer thread exists, but the cursor and the
    // stat accumulators stay under mu_ so stall_seconds() / assemble_seconds()
    // can be polled from another thread mid-epoch without a race.
    std::size_t idx = 0;
    {
      MutexLock lock(mu_);
      if (next_consume_ == num_batches_) return nullptr;
      idx = next_consume_;
    }
    // The whole assembly is train-loop stall by definition.
    Stopwatch watch;
    assemble(slots_[0].pb, idx);
    const double seconds = watch.elapsed_seconds();
    MutexLock lock(mu_);
    assemble_seconds_ += seconds;
    stall_seconds_ += seconds;
    obs_assemble_->record(seconds);
    obs_stall_->record(seconds);
    next_consume_ = idx + 1;
    return &slots_[0].pb;
  }

  MutexLock lock(mu_);
  if (held_slot_ != kNoSlot) {
    slots_[held_slot_].ready = false;
    held_slot_ = kNoSlot;
    cv_producer_.notify_all();
  }
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    next_consume_ = num_batches_;
    std::rethrow_exception(err);
  }
  if (next_consume_ == num_batches_) return nullptr;
  const std::size_t slot_idx = next_consume_ % slots_.size();
  Stopwatch watch;
  while (!slots_[slot_idx].ready && error_ == nullptr) cv_consumer_.wait(mu_);
  const double waited = watch.elapsed_seconds();
  stall_seconds_ += waited;
  obs_stall_->record(waited);
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    next_consume_ = num_batches_;
    std::rethrow_exception(err);
  }
  held_slot_ = slot_idx;
  ++next_consume_;
  return &slots_[slot_idx].pb;
}

double BatchPipeline::stall_seconds() const {
  MutexLock lock(mu_);
  return stall_seconds_;
}

double BatchPipeline::assemble_seconds() const {
  MutexLock lock(mu_);
  return assemble_seconds_;
}

}  // namespace r4ncl::snn
