#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace r4ncl {

ResultTable::ResultTable(std::vector<std::string> header) : header_(std::move(header)) {
  R4NCL_CHECK(!header_.empty(), "table needs at least one column");
}

void ResultTable::add_row() { rows_.emplace_back(); }

void ResultTable::push(const std::string& value) {
  R4NCL_CHECK(!rows_.empty(), "call add_row() before push()");
  R4NCL_CHECK(rows_.back().size() < header_.size(),
              "row already has " << header_.size() << " cells");
  rows_.back().push_back(value);
}

void ResultTable::push(double value) { push(format_double(value)); }

void ResultTable::push(long long value) { push(std::to_string(value)); }

void ResultTable::row(std::initializer_list<std::string> cells) {
  R4NCL_CHECK(cells.size() == header_.size(),
              "row width " << cells.size() << " != header width " << header_.size());
  add_row();
  for (const auto& c : cells) push(c);
}

namespace {
// RFC-4180-style quoting: wrap when the cell contains a comma, quote, or
// newline; embedded quotes are doubled.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void ResultTable::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  R4NCL_CHECK(out.good(), "cannot open for writing: " << path);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out << ',';
    out << csv_escape(header_[i]);
  }
  out << '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(r[i]);
    }
    out << '\n';
  }
  out.flush();
  R4NCL_CHECK(out.good(), "write failed: " << path);
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void ResultTable::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  R4NCL_CHECK(out.good(), "cannot open for writing: " << path);
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "  {";
    for (std::size_t i = 0; i < rows_[r].size() && i < header_.size(); ++i) {
      if (i) out << ", ";
      out << '"' << json_escape(header_[i]) << "\": \"" << json_escape(rows_[r][i]) << '"';
    }
    out << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  out.flush();
  R4NCL_CHECK(out.good(), "write failed: " << path);
}

void ResultTable::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("|");
  for (std::size_t i = 0; i < header_.size(); ++i) {
    for (std::size_t k = 0; k < width[i] + 2; ++k) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& r : rows_) print_row(r);
  std::fflush(stdout);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace r4ncl
