#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace r4ncl {

Rng::result_type Rng::operator()() noexcept {
  // SplitMix64 (Steele, Lea, Flood 2014).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng Rng::fork() noexcept {
  // A fresh draw seeds the child; parent state advances so successive forks
  // yield independent streams.
  return Rng((*this)());
}

double Rng::uniform() noexcept {
  // 53 high bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Modulo bias is negligible for n << 2^64 (worst case here: n ~ 1e9).
  return n == 0 ? 0 : (*this)() % n;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 is nudged away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint32_t k = 0;
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; fine for rate modelling.
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw < 0.0 ? 0u : static_cast<std::uint32_t>(draw + 0.5);
}

void Rng::shuffle(std::vector<std::size_t>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  shuffle(v);
  return v;
}

}  // namespace r4ncl
