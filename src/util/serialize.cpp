#include "util/serialize.hpp"

#include <cstdio>

namespace r4ncl {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  R4NCL_CHECK(out_.good(), "cannot open for writing: " << path);
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  R4NCL_CHECK(out_.good(), "write failed: " << path_);
}

void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size());
}

void BinaryWriter::write_tag(std::uint32_t tag) { write_u32(tag); }

void BinaryWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  R4NCL_CHECK(out_.good(), "flush failed: " << path_);
  out_.close();
}

BinaryWriter::~BinaryWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; explicit close() reports errors.
  }
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  R4NCL_CHECK(in_.good(), "cannot open for reading: " << path);
  // Cache the file size so length-prefixed reads can reject a corrupt prefix
  // before allocating (see check_length).
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  in_.seekg(0, std::ios::beg);
  R4NCL_CHECK(end >= 0 && in_.good(), "cannot size: " << path);
  file_size_ = static_cast<std::uint64_t>(end);
}

std::uint64_t BinaryReader::remaining() {
  const std::streamoff pos = in_.tellg();
  R4NCL_CHECK(pos >= 0, "cannot tell position in: " << path_);
  const auto upos = static_cast<std::uint64_t>(pos);
  return upos >= file_size_ ? 0 : file_size_ - upos;
}

void BinaryReader::check_length(std::uint64_t n, std::size_t elem_size, const char* what) {
  // Division form: n * elem_size could wrap std::uint64_t for a hostile
  // prefix (e.g. n = 2^62 floats), silently passing a <= comparison on the
  // product.  n <= remaining / elem_size cannot.
  const std::uint64_t rem = remaining();
  R4NCL_CHECK(n <= rem / elem_size,
              "corrupt " << what << " length in " << path_ << ": " << n << " element(s) of "
                         << elem_size << " byte(s) exceeds the " << rem
                         << " byte(s) remaining");
}

void BinaryReader::read_raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  R4NCL_CHECK(in_.gcount() == static_cast<std::streamsize>(bytes),
              "short read from: " << path_);
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof v);
  return v;
}

double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  check_length(n, 1, "string");
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  check_length(n, sizeof(float), "f32 vector");
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vector() {
  const std::uint64_t n = read_u64();
  check_length(n, 1, "u8 vector");
  std::vector<std::uint8_t> v(n);
  if (n > 0) read_raw(v.data(), n);
  return v;
}

void BinaryReader::expect_tag(std::uint32_t expected) {
  const std::uint32_t got = read_u32();
  R4NCL_CHECK(got == expected, "tag mismatch in " << path_ << ": expected "
                                                  << tag_name(expected) << ", got "
                                                  << tag_name(got));
}

std::string tag_name(std::uint32_t tag) {
  std::string out = "'";
  for (int shift = 0; shift < 32; shift += 8) {
    const auto c = static_cast<unsigned char>((tag >> shift) & 0xffu);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char hex[5];
      std::snprintf(hex, sizeof hex, "\\x%02X", c);
      out += hex;
    }
  }
  out.push_back('\'');
  return out;
}

}  // namespace r4ncl
