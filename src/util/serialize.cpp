#include "util/serialize.hpp"

namespace r4ncl {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  R4NCL_CHECK(out_.good(), "cannot open for writing: " << path);
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  R4NCL_CHECK(out_.good(), "write failed: " << path_);
}

void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size());
}

void BinaryWriter::write_tag(std::uint32_t tag) { write_u32(tag); }

void BinaryWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  R4NCL_CHECK(out_.good(), "flush failed: " << path_);
  out_.close();
}

BinaryWriter::~BinaryWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; explicit close() reports errors.
  }
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  R4NCL_CHECK(in_.good(), "cannot open for reading: " << path);
}

void BinaryReader::read_raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  R4NCL_CHECK(in_.gcount() == static_cast<std::streamsize>(bytes),
              "short read from: " << path_);
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof v);
  return v;
}

double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::uint8_t> v(n);
  if (n > 0) read_raw(v.data(), n);
  return v;
}

void BinaryReader::expect_tag(std::uint32_t expected) {
  const std::uint32_t got = read_u32();
  R4NCL_CHECK(got == expected,
              "tag mismatch in " << path_ << ": expected " << expected << ", got " << got);
}

}  // namespace r4ncl
