// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang's capability attributes when the compiler supports
// them (clang with -Wthread-safety; the `tidy` CMake preset turns the
// analysis into errors) and to nothing everywhere else, so GCC/MSVC builds
// see plain declarations.  Annotate with the repo-prefixed macros only —
// the determinism linter (tools/lint/determinism_lint.py) rejects raw
// std::mutex members precisely so every lock in src/ flows through the
// annotated util::Mutex wrapper in util/sync.hpp and stays visible to the
// analysis.
//
// Cheat sheet (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   R4NCL_CAPABILITY("mutex")      - class is a lockable capability
//   R4NCL_SCOPED_CAPABILITY        - RAII guard class (MutexLock)
//   R4NCL_GUARDED_BY(mu)           - member readable/writable only under mu
//   R4NCL_PT_GUARDED_BY(mu)        - pointee guarded by mu
//   R4NCL_REQUIRES(mu)             - caller must hold mu (held across call)
//   R4NCL_ACQUIRE(mu) / R4NCL_RELEASE(mu) - function locks / unlocks mu
//   R4NCL_TRY_ACQUIRE(ok, mu)      - locks mu when returning `ok`
//   R4NCL_EXCLUDES(mu)             - caller must NOT hold mu (lock-order pin:
//                                    public APIs that take mu internally)
//   R4NCL_ACQUIRED_BEFORE/AFTER    - static lock-order edges
//   R4NCL_NO_THREAD_SAFETY_ANALYSIS - opt a definition out (reason required
//                                    by the determinism linter's review rule)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define R4NCL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(R4NCL_THREAD_ANNOTATION)
#define R4NCL_THREAD_ANNOTATION(x)  // not Clang (or too old): annotations erase
#endif

#define R4NCL_CAPABILITY(x) R4NCL_THREAD_ANNOTATION(capability(x))
#define R4NCL_SCOPED_CAPABILITY R4NCL_THREAD_ANNOTATION(scoped_lockable)
#define R4NCL_GUARDED_BY(x) R4NCL_THREAD_ANNOTATION(guarded_by(x))
#define R4NCL_PT_GUARDED_BY(x) R4NCL_THREAD_ANNOTATION(pt_guarded_by(x))
#define R4NCL_REQUIRES(...) R4NCL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define R4NCL_REQUIRES_SHARED(...) \
  R4NCL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define R4NCL_ACQUIRE(...) R4NCL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define R4NCL_ACQUIRE_SHARED(...) \
  R4NCL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define R4NCL_RELEASE(...) R4NCL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define R4NCL_RELEASE_SHARED(...) \
  R4NCL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define R4NCL_TRY_ACQUIRE(...) R4NCL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define R4NCL_EXCLUDES(...) R4NCL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define R4NCL_ACQUIRED_BEFORE(...) R4NCL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define R4NCL_ACQUIRED_AFTER(...) R4NCL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define R4NCL_RETURN_CAPABILITY(x) R4NCL_THREAD_ANNOTATION(lock_returned(x))
#define R4NCL_NO_THREAD_SAFETY_ANALYSIS R4NCL_THREAD_ANNOTATION(no_thread_safety_analysis)
