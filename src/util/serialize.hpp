// Tagged binary serialization for model checkpoints and latent buffers.
//
// Format: little-endian, each field written as <u32 tag><payload>.  Tags make
// the checkpoint self-describing enough to fail loudly on format drift
// (instead of silently mis-reading), which matters because benches share a
// pre-trained model cache across binaries.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace r4ncl {

/// Sequential binary writer.  All write_* members throw r4ncl::Error on I/O
/// failure so callers never proceed with a truncated checkpoint.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);

  /// Writes a tag marking the start of a named section.
  void write_tag(std::uint32_t tag);

  /// Flushes and closes; throws on failure.  Also called by the destructor
  /// (which swallows errors — call close() explicitly for checked shutdown).
  void close();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);
  std::ofstream out_;
  std::string path_;
};

/// Sequential binary reader mirroring BinaryWriter.  Throws r4ncl::Error on
/// short reads or tag mismatches.  Length-prefixed reads (strings, vectors)
/// validate the on-disk length against the bytes actually remaining in the
/// file *before* allocating, so a corrupt or truncated checkpoint fails with
/// the pinned Error instead of a multi-GB allocation (OOM / bad_alloc).
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint8_t> read_u8_vector();

  /// Reads a tag and checks it equals `expected`.  Mismatches report both
  /// tags by their four-char names ("expected 'SNET', got 'LRBF'"), not raw
  /// decimal u32s, so format-drift failures are readable.
  void expect_tag(std::uint32_t expected);

  /// Bytes between the read cursor and the end of the file.
  [[nodiscard]] std::uint64_t remaining();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

 private:
  void read_raw(void* data, std::size_t bytes);
  /// Validates a length prefix of `n` elements of `elem_size` bytes against
  /// remaining(); the division form also guards the n * elem_size multiply
  /// from wrapping.  Throws the pinned Error on overrun.
  void check_length(std::uint64_t n, std::size_t elem_size, const char* what);
  std::ifstream in_;
  std::string path_;
  std::uint64_t file_size_ = 0;
};

/// Builds a four-character tag, e.g. make_tag("WGHT").
constexpr std::uint32_t make_tag(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) | (static_cast<std::uint32_t>(s[1]) << 8) |
         (static_cast<std::uint32_t>(s[2]) << 16) | (static_cast<std::uint32_t>(s[3]) << 24);
}

/// Inverse of make_tag() for diagnostics: decodes a tag to its four-char name
/// quoted ("'SNET'"); non-printable bytes render as \xNN so a bit-flipped tag
/// still prints safely.
[[nodiscard]] std::string tag_name(std::uint32_t tag);

}  // namespace r4ncl
