// Tagged binary serialization for model checkpoints and latent buffers.
//
// Format: little-endian, each field written as <u32 tag><payload>.  Tags make
// the checkpoint self-describing enough to fail loudly on format drift
// (instead of silently mis-reading), which matters because benches share a
// pre-trained model cache across binaries.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace r4ncl {

/// Sequential binary writer.  All write_* members throw r4ncl::Error on I/O
/// failure so callers never proceed with a truncated checkpoint.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);

  /// Writes a tag marking the start of a named section.
  void write_tag(std::uint32_t tag);

  /// Flushes and closes; throws on failure.  Also called by the destructor
  /// (which swallows errors — call close() explicitly for checked shutdown).
  void close();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);
  std::ofstream out_;
  std::string path_;
};

/// Sequential binary reader mirroring BinaryWriter.  Throws r4ncl::Error on
/// short reads or tag mismatches.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint8_t> read_u8_vector();

  /// Reads a tag and checks it equals `expected`.
  void expect_tag(std::uint32_t expected);

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

 private:
  void read_raw(void* data, std::size_t bytes);
  std::ifstream in_;
  std::string path_;
};

/// Builds a four-character tag, e.g. make_tag("WGHT").
constexpr std::uint32_t make_tag(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) | (static_cast<std::uint32_t>(s[1]) << 8) |
         (static_cast<std::uint32_t>(s[2]) << 16) | (static_cast<std::uint32_t>(s[3]) << 24);
}

}  // namespace r4ncl
