// Parallel-for helper used by the tensor kernels.
//
// Built on OpenMP when available (R4NCL_HAVE_OPENMP), otherwise a serial
// fallback.  The thread count is controlled by set_num_threads() or the
// R4NCL_THREADS environment variable; the default is the hardware concurrency.
#pragma once

#include <cstddef>
#include <functional>

namespace r4ncl {

/// Sets the worker count for subsequent parallel_for calls (clamped to >= 1).
void set_num_threads(int n) noexcept;

/// Current worker count.
int num_threads() noexcept;

/// Applies R4NCL_THREADS from the environment if present.
void init_threads_from_env();

/// True when the library was compiled with OpenMP (R4NCL_HAVE_OPENMP);
/// false means parallel_for uses the std::thread fallback and a one-time
/// warning is logged the first time that matters.
bool openmp_enabled() noexcept;

/// Invokes body(i) for i in [begin, end).  Iterations must be independent.
/// Small ranges (or grain hints) run serially to avoid fork overhead.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Worker-pool entry point for long-lived concurrent tasks (fleet device
/// streams against a ShardedReplayEngine, stress tests): spawns exactly
/// `workers` std::threads running body(worker_index) and joins them all.
/// Unlike parallel_for this never dispatches through OpenMP (the workers are
/// coarse, stateful tasks, not loop iterations) and never runs serially —
/// workers == 1 still gets its own thread, so sanitizer lanes exercise the
/// real threading path.  The first exception a worker throws is rethrown on
/// the caller after every worker has joined; later ones are dropped.
void run_workers(std::size_t workers, const std::function<void(std::size_t)>& body);

}  // namespace r4ncl
