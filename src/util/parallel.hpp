// Parallel-for helper used by the tensor kernels.
//
// Built on OpenMP when available (R4NCL_HAVE_OPENMP), otherwise a serial
// fallback.  The thread count is controlled by set_num_threads() or the
// R4NCL_THREADS environment variable; the default is the hardware concurrency.
#pragma once

#include <cstddef>
#include <functional>

namespace r4ncl {

/// Sets the worker count for subsequent parallel_for calls (clamped to >= 1).
void set_num_threads(int n) noexcept;

/// Current worker count.
int num_threads() noexcept;

/// Applies R4NCL_THREADS from the environment if present.
void init_threads_from_env();

/// True when the library was compiled with OpenMP (R4NCL_HAVE_OPENMP);
/// false means parallel_for uses the std::thread fallback and a one-time
/// warning is logged the first time that matters.
bool openmp_enabled() noexcept;

/// Invokes body(i) for i in [begin, end).  Iterations must be independent.
/// Small ranges (or grain hints) run serially to avoid fork overhead.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace r4ncl
