#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace r4ncl {

Config Config::from_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos && eq > 0) {
      cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    } else {
      cfg.positionals_.push_back(tok);
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

std::optional<std::string> Config::get(const std::string& key) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_key_for(key).c_str())) return std::string(env);
  return std::nullopt;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long long Config::get_int(const std::string& key, long long fallback) const {
  if (auto v = get(key)) {
    try {
      return std::stoll(*v);
    } catch (...) {
      return fallback;
    }
  }
  return fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  if (auto v = get(key)) {
    try {
      return std::stod(*v);
    } catch (...) {
      return fallback;
    }
  }
  return fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (auto v = get(key)) {
    if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
    if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  }
  return fallback;
}

void Config::validate_keys(std::span<const std::string_view> known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::vector<std::string_view> sorted(known.begin(), known.end());
    std::sort(sorted.begin(), sorted.end());
    std::string msg = "unknown config key '" + key + "' (valid keys: ";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) msg += ", ";
      msg.append(sorted[i]);
    }
    msg += ")";
    throw Error(msg);
  }
}

std::string env_key_for(const std::string& key) {
  std::string out = "R4NCL_";
  for (char c : key) {
    out.push_back(c == '-' || c == '.'
                      ? '_'
                      : static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}


bool parse_unsigned_decimal(std::string_view text, std::uint64_t& value) noexcept {
  if (text.empty()) return false;
  std::uint64_t parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (parsed > (~std::uint64_t{0} - digit) / 10) return false;  // would wrap
    parsed = parsed * 10 + digit;
  }
  value = parsed;
  return true;
}

}  // namespace r4ncl
