// Deterministic random number generation for all stochastic components.
//
// Every stochastic piece of the library (dataset synthesis, weight init,
// minibatch shuffling) takes an explicit seed so experiments reproduce
// bit-for-bit.  Rng wraps a SplitMix64 core — small, fast, and with
// well-understood statistical quality for simulation workloads.
#pragma once

#include <cstdint>
#include <vector>

namespace r4ncl {

/// Seeded pseudo-random generator with the sampling helpers the library needs.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the member helpers below are the preferred interface —
/// they are deterministic across standard libraries (std::normal_distribution
/// is not guaranteed to produce identical streams on different platforms).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit draw (SplitMix64 step).
  result_type operator()() noexcept;

  /// Derives an independent child generator; used to give each dataset /
  /// layer / epoch its own stream without correlation.
  Rng fork() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Poisson draw (Knuth for small lambda, normal approximation for large).
  std::uint32_t poisson(double lambda) noexcept;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v) noexcept;

  /// [0, 1, ..., n-1] shuffled — the common minibatch-order helper.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Complete serializable snapshot of a generator.  The Box–Muller spare
  /// normal is part of the stream: dropping it on a checkpoint/restore cycle
  /// would shift every subsequent normal() draw by one, so both the flag and
  /// the cached value must round-trip for resumed runs to stay bit-identical.
  struct State {
    std::uint64_t state = 0;
    bool have_spare_normal = false;
    double spare_normal = 0.0;

    [[nodiscard]] bool operator==(const State&) const noexcept = default;
  };

  [[nodiscard]] State state() const noexcept {
    return {state_, have_spare_normal_, spare_normal_};
  }
  void restore(const State& s) noexcept {
    state_ = s.state;
    have_spare_normal_ = s.have_spare_normal;
    spare_normal_ = s.spare_normal;
  }

 private:
  std::uint64_t state_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace r4ncl
