#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace r4ncl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_emit_mutex;
/// Both swap and call hold g_emit_mutex, so replacing the sink can never
/// race an emission already formatting through the old one.
LogSink g_sink R4NCL_GUARDED_BY(g_emit_mutex);  // empty = default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  MutexLock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

LogLevel parse_log_level(const std::string& s) noexcept {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void init_log_level_from_env() {
  if (const char* env = std::getenv("R4NCL_LOG")) set_log_level(parse_log_level(env));
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  MutexLock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%8.3fs %s] %s\n", elapsed, level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace r4ncl
