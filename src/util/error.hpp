// Error-handling helpers shared across the replay4ncl libraries.
//
// The library reports precondition violations and invariant breaks by throwing
// r4ncl::Error (derived from std::runtime_error).  The R4NCL_CHECK macro keeps
// call sites terse while still producing messages that carry the failing
// expression and source location.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace r4ncl {

/// Exception type thrown by all replay4ncl components on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const std::string& msg,
                                             const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: (" << expr << ')';
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace r4ncl

/// Throws r4ncl::Error when `expr` is false.  `...` is streamed into the
/// message, e.g. R4NCL_CHECK(rows > 0, "rows=" << rows).
#define R4NCL_CHECK(expr, ...)                                                      \
  do {                                                                              \
    if (!(expr)) {                                                                  \
      std::ostringstream r4ncl_check_os_;                                           \
      __VA_OPT__(r4ncl_check_os_ << __VA_ARGS__;)                                   \
      ::r4ncl::detail::throw_check_failure(#expr, r4ncl_check_os_.str(),            \
                                           std::source_location::current());        \
    }                                                                               \
  } while (false)
