// Lightweight experiment configuration: key=value overrides from the
// environment (R4NCL_<KEY>) or from "key=value" command-line tokens.
//
// Benches and examples use this to stay runnable on small machines
// (R4NCL_SCALE, R4NCL_EPOCHS, ...) while keeping paper-faithful defaults in
// code rather than in external files.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace r4ncl {

/// String-keyed option bag with typed getters.  Lookup order:
/// explicit set() / parsed CLI > environment (R4NCL_<UPPERCASED KEY>) > fallback.
class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens; other tokens are collected as positionals.
  static Config from_args(int argc, char** argv);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Throws Error when any explicitly-set key (a parsed CLI token or set()
  /// call) is not in `known`; the message names the first offending key and
  /// lists the valid ones sorted, so a typo like `latentbits=4` fails loudly
  /// instead of silently running the defaults.  Environment variables are
  /// not validated — they are read on demand through the known keys only.
  void validate_keys(std::span<const std::string_view> known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

/// "epochs" → "R4NCL_EPOCHS".
std::string env_key_for(const std::string& key);

/// Strict non-negative decimal parse: digits only (no sign, hex prefix,
/// whitespace or empty string), overflow-checked over the full uint64
/// range.  Returns false instead of guessing — the CLI surfaces use this
/// where get_int()'s lenient stoll semantics ("0x10" → 0, "abc" →
/// fallback) would let a malformed value run silently.
[[nodiscard]] bool parse_unsigned_decimal(std::string_view text,
                                          std::uint64_t& value) noexcept;

}  // namespace r4ncl
