// Annotated synchronization primitives.
//
// libstdc++'s std::mutex / std::lock_guard carry no Clang Thread Safety
// Analysis attributes, so code locking them is invisible to -Wthread-safety.
// Every lock in src/ therefore goes through these thin wrappers instead:
// Mutex is a capability, MutexLock a scoped acquire, and CondVar a
// condition variable whose wait() states (and the analysis verifies) that
// the mutex is held.  The wrappers add no state beyond the std primitives
// and compile to the same code.
//
// Lock discipline, pinned by annotation rather than comment:
//   - public APIs of lock-owning classes are R4NCL_EXCLUDES(mu): callers
//     never hold the lock, so no acquisition order across classes can form;
//   - waits are explicit `while (!pred) cv.wait(mu);` loops so the predicate
//     reads of R4NCL_GUARDED_BY state stay inside the analyzed locked scope
//     (lambda predicates are analyzed as unlocked standalone functions).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace r4ncl {

class CondVar;

/// std::mutex annotated as a Clang TSA capability.
class R4NCL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() R4NCL_ACQUIRE() { mu_.lock(); }
  void unlock() R4NCL_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() R4NCL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() re-parks on the raw handle via adopt_lock
  // r4ncl-lint: allow(raw-mutex) this IS the annotated wrapper; the raw mutex is private and reachable only through the capability methods above
  std::mutex mu_;
};

/// RAII lock for Mutex — the annotated std::lock_guard.
class R4NCL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) R4NCL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() R4NCL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex.  wait() requires the mutex held and holds
/// it again on return; use a `while (!pred) cv.wait(mu);` loop so the
/// predicate is evaluated inside the locked (and analyzed) scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) R4NCL_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the park, then
    // release the unique_lock wrapper so ownership stays with the caller's
    // MutexLock.  std::condition_variable::wait only throws if the mutex
    // operations do, which std::mutex's do not.
    std::unique_lock<std::mutex> parked(mu.mu_, std::adopt_lock);
    cv_.wait(parked);
    parked.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace r4ncl
