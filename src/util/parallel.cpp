#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

#if defined(R4NCL_HAVE_OPENMP)
#include <omp.h>
#endif

namespace r4ncl {

namespace {
std::atomic<int> g_threads{0};  // 0 = uninitialised → hardware_concurrency

int default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// The serial/std::thread fallback must never be invisible: hot paths like
// kernels::matmul assume the OpenMP dispatch, so a build without it warns
// exactly once.
void warn_if_no_openmp() {
#if !defined(R4NCL_HAVE_OPENMP)
  // r4ncl-lint: allow(static-local) std::call_once's flag is its own synchronization
  static std::once_flag flag;
  std::call_once(flag, [] {
    R4NCL_WARN("r4ncl built without OpenMP: parallel_for uses the std::thread "
               "fallback; rebuild with OpenMP for full matmul throughput");
  });
#endif
}
}  // namespace

void set_num_threads(int n) noexcept { g_threads.store(n < 1 ? 1 : n); }

int num_threads() noexcept {
  int n = g_threads.load();
  if (n == 0) {
    n = default_threads();
    g_threads.store(n);
  }
  return n;
}

void init_threads_from_env() {
  warn_if_no_openmp();
  if (const char* env = std::getenv("R4NCL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) set_num_threads(n);
  }
}

bool openmp_enabled() noexcept {
#if defined(R4NCL_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const int workers = num_threads();
  if (workers <= 1 || count * grain < 2048) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
#if defined(R4NCL_HAVE_OPENMP)
#pragma omp parallel for num_threads(workers) schedule(static)
  for (long long i = static_cast<long long>(begin); i < static_cast<long long>(end); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  // Portable fallback: block partitioning over std::thread.
  warn_if_no_openmp();
  const std::size_t chunk = (count + static_cast<std::size_t>(workers) - 1) /
                            static_cast<std::size_t>(workers);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const std::size_t lo = begin + chunk * static_cast<std::size_t>(w);
    if (lo >= end) break;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    pool.emplace_back([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  for (auto& t : pool) t.join();
#endif
}

namespace {

/// First-exception slot shared by a run_workers pool.  The mutex is a leaf:
/// capture() runs inside worker catch blocks and calls nothing else, so no
/// acquisition order with caller-side locks can form — take_first() is
/// R4NCL_EXCLUDES(mu_), which additionally pins that the joining caller
/// reads the slot lock-free of its own locks.
class FirstError {
 public:
  void capture(std::exception_ptr err) R4NCL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!err_) err_ = std::move(err);
  }

  /// The first captured exception (empty if none).  Call after every writer
  /// has joined.
  [[nodiscard]] std::exception_ptr take_first() R4NCL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return std::move(err_);
  }

 private:
  Mutex mu_;
  std::exception_ptr err_ R4NCL_GUARDED_BY(mu_);
};

}  // namespace

void run_workers(std::size_t workers, const std::function<void(std::size_t)>& body) {
  if (workers == 0) return;
  // Coarse stateful tasks, not loop iterations: always plain std::threads
  // (even for one worker), so OpenMP runtime quirks never shape fleet
  // concurrency and TSan sees the real threading.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  FirstError first_error;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([w, &body, &first_error] {
      try {
        body(w);
      } catch (...) {
        first_error.capture(std::current_exception());
      }
    });
  }
  for (auto& t : pool) t.join();
  if (std::exception_ptr err = first_error.take_first()) std::rethrow_exception(err);
}

}  // namespace r4ncl
