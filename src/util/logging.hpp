// Minimal leveled logger used by trainers and benches.
//
// The library itself stays quiet at Info level except for experiment progress;
// set R4NCL_LOG=debug|info|warn|error (env var) or call set_log_level() to
// adjust verbosity.
//
// Thread safety: the level is an atomic and every emission (and sink swap)
// holds one internal mutex, so concurrent shard workers can log without
// interleaving partial lines and set_log_sink() never races an in-flight
// message.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace r4ncl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Destination of formatted log messages.  Invoked under the logger's
/// emission mutex, so a sink body needs no locking of its own (and must not
/// log re-entrantly).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the emission sink (default: stderr lines "[elapsed LEVEL] msg").
/// An empty sink restores the default.  Swap and emission serialize on one
/// mutex, so the previous sink is never mid-call when this returns.
void set_log_sink(LogSink sink);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive); unknown
/// strings map to kInfo.
LogLevel parse_log_level(const std::string& s) noexcept;

/// Reads the R4NCL_LOG environment variable once and applies it.
void init_log_level_from_env();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace r4ncl

#define R4NCL_LOG_AT(level, ...)                                        \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::r4ncl::log_level())) { \
      std::ostringstream r4ncl_log_os_;                                 \
      r4ncl_log_os_ << __VA_ARGS__;                                     \
      ::r4ncl::detail::log_emit(level, r4ncl_log_os_.str());            \
    }                                                                   \
  } while (false)

#define R4NCL_DEBUG(...) R4NCL_LOG_AT(::r4ncl::LogLevel::kDebug, __VA_ARGS__)
#define R4NCL_INFO(...) R4NCL_LOG_AT(::r4ncl::LogLevel::kInfo, __VA_ARGS__)
#define R4NCL_WARN(...) R4NCL_LOG_AT(::r4ncl::LogLevel::kWarn, __VA_ARGS__)
#define R4NCL_ERROR(...) R4NCL_LOG_AT(::r4ncl::LogLevel::kError, __VA_ARGS__)
