// CSV emission + console tables for the benchmark harness.
//
// Every bench prints the paper-style rows to stdout and mirrors them into a
// CSV file so the figures can be re-plotted without re-running experiments.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace r4ncl {

/// Column-oriented result table.  Cells are stored as strings; numeric
/// convenience setters format with enough digits to round-trip.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> header);

  /// Starts a new row; subsequent set()/push() calls fill it.
  void add_row();

  /// Appends a cell to the current row (in header order).
  void push(const std::string& value);
  void push(double value);
  void push(long long value);

  /// Full-row convenience: table.row({"a", "b", "c"}).
  void row(std::initializer_list<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Writes the table as CSV; throws r4ncl::Error on I/O failure.
  void write_csv(const std::string& path) const;

  /// Writes the table as a JSON array of {header: cell} objects; throws
  /// r4ncl::Error on I/O failure.  Cells stay strings (they are formatted
  /// for the paper tables, e.g. "4.88x"), so consumers parse as needed.
  void write_json(const std::string& path) const;

  /// Pretty-prints an aligned ASCII table to stdout.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
std::string format_double(double v, int precision = 4);

}  // namespace r4ncl
