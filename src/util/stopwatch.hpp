// Wall-clock stopwatch for measured (as opposed to modelled) latency.
#pragma once

#include <chrono>

namespace r4ncl {

/// Steady-clock stopwatch.  Construction starts it; elapsed_seconds() may be
/// polled repeatedly; restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations across start()/stop() pairs.  Used by
/// the latency model to attribute wall-clock to training phases.
class AccumulatingTimer {
 public:
  void start() noexcept {
    running_ = true;
    origin_ = clock::now();
  }

  void stop() noexcept {
    if (!running_) return;
    total_ += std::chrono::duration<double>(clock::now() - origin_).count();
    running_ = false;
  }

  void reset() noexcept {
    total_ = 0.0;
    running_ = false;
  }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point origin_{};
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace r4ncl
