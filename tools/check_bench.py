#!/usr/bin/env python3
"""Bench-regression gate over the checked-in BENCH_*.json files.

Validates three things for every known bench artifact:

1. Schema — the file parses, carries its metadata envelope (or, for
   BENCH_replay_stream.json, is a bare row array) and every row has the full
   column set with numeric fields that actually parse.
2. Self-check fields — invariants the generating benches themselves enforce
   must still hold in the committed data: sample-vs-stream spike-checksum
   parity, streamed peak-assembly bytes strictly under the materialized
   peak, buffer bytes within the byte budget, delta_vs_unbounded agreeing
   with the accuracy columns, and — for the fleet bench — deterministic
   checksum parity across reps, shards=1 bit-identity anchoring, exact
   lifetime accounting (entries == adds - evictions) and >= 4 concurrent
   device streams.
3. Pinned headline statistics — the numbers the README/ROADMAP quote may
   not silently regress past tolerance when a sweep is refreshed: the
   importance policies must match or beat the best content-blind policy at
   the tightest budget, 4-bit latents must hold >= QUANT_CAPACITY_MIN_RATIO
   x the 8-bit entries at equal bytes, the 2-bit element kernel must beat
   the scalar binary unpack, and the Table-1 latent-memory saving must stay
   inside the paper's band.

Exit code 0 = all gates pass.  Any failure prints `bench gate: FAIL ...`
and exits 1, which is what the CI `bench gate` job keys off.

The fleet artifact additionally embeds the generating run's
obs::MetricsRegistry snapshot under "metrics"; check_metrics_snapshot
validates its schema, value sanity and counter/byte cross-invariants, and
the same validator runs standalone over any metrics_out= file via
--metrics-snapshot (the metrics_smoke ctest lane).

    python3 tools/check_bench.py              # validate the repo's files
    python3 tools/check_bench.py --dir DIR    # validate copies elsewhere
    python3 tools/check_bench.py --self-test  # prove the gate catches
                                              # hand-corrupted data
    python3 tools/check_bench.py --metrics-snapshot FILE  # one snapshot

The self-test corrupts in-memory copies of the real files (checksum flip,
budget overflow, headline regression, dropped column, delta mismatch) and
fails if any corruption slips through — so the gate cannot rot into a
rubber stamp.
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import sys
from pathlib import Path

# ---- Tolerances / pinned bands ---------------------------------------------
# Accuracy columns are deterministic for a given toolchain, so the float
# comparisons only need to absorb the two-decimal formatting.
DELTA_PARITY_TOL = 0.011
# The importance headline: best importance-aware policy vs best content-blind
# policy at the tightest const budget fraction (accuracy points).
IMPORTANCE_HEADROOM_TOL = 0.0
# Ravaglia-effect floor: resident 4-bit entries per resident 8-bit entry at
# equal capacity (ideal 2.0; header overhead eats a little).
QUANT_CAPACITY_MIN_RATIO = 1.5
# Table-1 anchor: the paper reports a 20% latent-memory saving; the repo's
# byte-per-row padding lands it in the 20-21.88% band.  Gate generously.
BASELINE_MEMORY_SAVING_BAND = (15.0, 30.0)
BASELINE_MIN_LATENCY_SPEEDUP = 1.3

CONTENT_BLIND = {"fifo", "reservoir", "class_balanced"}
IMPORTANCE_AWARE = {"low_importance", "importance_class_balanced"}

BUDGET_SWEEP_COLUMNS = [
    "method", "latent_bits", "budget_frac", "budget_bytes", "policy", "schedule",
    "final_bytes", "entries", "evictions", "acc_base", "acc_learned",
    "delta_vs_unbounded", "latency_ms",
]
REPLAY_STREAM_COLUMNS = [
    "mode", "codec", "latent_bits", "minibatch", "draws", "wall_ms", "ns_per_elem",
    "peak_assembly_bytes", "decompress_mbits", "spike_checksum",
]
FLEET_COLUMNS = [
    "mode", "streams", "shards", "shard_by", "policy", "adds", "entries",
    "evictions", "memory_bytes", "capacity_bytes", "wall_ms", "adds_per_sec",
    "checksum", "rep",
]
# The fleet bench's acceptance floor: concurrent rows must exercise at least
# this many real device threads against the shared engine.
FLEET_MIN_CONCURRENT_STREAMS = 4

HOT_PATH_COLUMNS = [
    "mode", "density", "threads", "prefetch", "reps", "wall_ms", "ref_ms",
    "speedup", "stall_ms", "blocking_ms", "stall_frac", "spike_checksum",
    "identical",
]
# The hot-path acceptance gates (mirrors the bench's own strict=1 envelope):
# from stored AER the event-driven forward must be >= 2x the decode-to-dense
# pipeline at <= 10% density, and prefetch must hide > 80% of the blocking
# batch-assembly cost.
HOT_PATH_MIN_AER_SPEEDUP = 2.0
HOT_PATH_MAX_STALL_FRAC = 0.20
# speedup / stall_frac are derived columns re-computed from the wall columns;
# the tolerance only absorbs their three-decimal formatting.
HOT_PATH_DERIVED_TOL = 0.02


class GateFailure(Exception):
    """One failed gate; the message names the file, row and invariant."""


def fnum(row: dict, key: str, context: str) -> float:
    value = row.get(key)
    try:
        return float(value)
    except (TypeError, ValueError):
        raise GateFailure(f"{context}: field '{key}' is not numeric (got {value!r})")


def require_columns(rows: list, columns: list, context: str) -> None:
    if not rows:
        raise GateFailure(f"{context}: no rows")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise GateFailure(f"{context}: row {i} is not an object")
        missing = [c for c in columns if c not in row]
        if missing:
            raise GateFailure(f"{context}: row {i} missing column(s) {missing}")


def require_envelope(doc: dict, context: str) -> list:
    if not isinstance(doc, dict):
        raise GateFailure(f"{context}: expected a metadata object envelope")
    for key in ("bench", "description", "generated", "command", "rows"):
        if key not in doc:
            raise GateFailure(f"{context}: metadata envelope missing '{key}'")
    if not isinstance(doc["rows"], list):
        raise GateFailure(f"{context}: 'rows' is not an array")
    return doc["rows"]


def base_method(name: str) -> str:
    """Replay4NCL-q4 -> Replay4NCL (the -q<bits> suffix is per-depth)."""
    stem, sep, suffix = name.rpartition("-q")
    if sep and suffix.isdigit():
        return stem
    return name


# ---- BENCH_budget_sweep.json -----------------------------------------------

def check_budget_sweep(doc) -> int:
    ctx = "budget_sweep"
    rows = require_envelope(doc, ctx)
    require_columns(rows, BUDGET_SWEEP_COLUMNS, ctx)
    checks = 0

    # Reference (unbounded) accuracy per method family, for delta parity.
    reference = {}
    for row in rows:
        if row["policy"] == "unbounded":
            reference[base_method(row["method"])] = fnum(row, "acc_learned", ctx)

    tightest_frac = None
    for row in rows:
        frac = row["budget_frac"]
        try:
            value = float(frac)
        except ValueError:
            continue
        if value < 1.0 and (tightest_frac is None or value < float(tightest_frac)):
            tightest_frac = frac
    if tightest_frac is None:
        raise GateFailure(f"{ctx}: no bounded budget_frac rows (sweep 1 missing)")

    for i, row in enumerate(rows):
        where = f"{ctx}: row {i} ({row['method']}/{row['budget_frac']}/{row['policy']})"
        budget = fnum(row, "budget_bytes", where)
        final = fnum(row, "final_bytes", where)
        # Self-check: the byte budget held (unbounded rows carry budget 0).
        if budget > 0 and final > budget:
            raise GateFailure(f"{where}: final_bytes {final} exceeds budget_bytes {budget}")
        checks += 1
        for key in ("acc_base", "acc_learned"):
            acc = fnum(row, key, where)
            if not 0.0 <= acc <= 100.0:
                raise GateFailure(f"{where}: {key}={acc} outside [0, 100]")
        # Self-check: the delta column is derived, so it must agree with the
        # accuracy columns against the method family's unbounded reference.
        family = base_method(row["method"])
        if family in reference:
            expected = fnum(row, "acc_learned", where) - reference[family]
            delta = fnum(row, "delta_vs_unbounded", where)
            if abs(delta - expected) > DELTA_PARITY_TOL:
                raise GateFailure(
                    f"{where}: delta_vs_unbounded {delta} != acc_learned - unbounded "
                    f"({expected:.2f})")
            checks += 1

    # Headline: at the tightest const budget the best importance-aware policy
    # matches or beats the best content-blind policy.
    best = {}
    for row in rows:
        if row["budget_frac"] != tightest_frac or row["schedule"] != "const":
            continue
        policy = row["policy"]
        acc = fnum(row, "acc_learned", f"{ctx}: tightest-budget row")
        best[policy] = max(best.get(policy, acc), acc)
    blind = [best[p] for p in CONTENT_BLIND if p in best]
    aware = [best[p] for p in IMPORTANCE_AWARE if p in best]
    if not blind or not aware:
        raise GateFailure(
            f"{ctx}: tightest budget ({tightest_frac}) lacks content-blind or "
            f"importance-aware policy rows (have: {sorted(best)})")
    if max(aware) + IMPORTANCE_HEADROOM_TOL < max(blind):
        raise GateFailure(
            f"{ctx}: importance headline regressed at budget_frac {tightest_frac}: "
            f"best importance-aware acc_learned {max(aware):.2f} < best "
            f"content-blind {max(blind):.2f}")
    checks += 1

    # Headline: 4-bit latents hold >= QUANT_CAPACITY_MIN_RATIO x the 8-bit
    # entries at equal capacity (Replay4NCL family, quant sweep).
    entries = {}
    for row in rows:
        if row["budget_frac"] == "quant" and base_method(row["method"]) == "Replay4NCL":
            entries[row["latent_bits"]] = fnum(row, "entries", f"{ctx}: quant row")
    if "8" not in entries or "4" not in entries:
        raise GateFailure(f"{ctx}: quant sweep missing 8-bit or 4-bit Replay4NCL rows")
    if entries["8"] <= 0 or entries["4"] / entries["8"] < QUANT_CAPACITY_MIN_RATIO:
        raise GateFailure(
            f"{ctx}: quant capacity headline regressed: 4-bit entries {entries['4']} "
            f"vs 8-bit {entries['8']} (< {QUANT_CAPACITY_MIN_RATIO}x)")
    checks += 1
    return checks


# ---- BENCH_replay_stream.json ----------------------------------------------

def check_replay_stream(doc) -> int:
    ctx = "replay_stream"
    if not isinstance(doc, list):
        raise GateFailure(f"{ctx}: expected a bare row array")
    require_columns(doc, REPLAY_STREAM_COLUMNS, ctx)
    checks = 0

    sample = {row["codec"]: row for row in doc if row["mode"] == "sample"}
    if not sample:
        raise GateFailure(f"{ctx}: no sample-mode rows")
    for i, row in enumerate(doc):
        if row["mode"] != "stream":
            continue
        codec = row["codec"]
        where = f"{ctx}: row {i} (stream/{codec}/mb{row['minibatch']})"
        ref = sample.get(codec)
        if ref is None:
            raise GateFailure(f"{where}: no sample-mode row for codec {codec}")
        # Self-check: checksum parity — the stream decodes the *same* draw.
        if row["spike_checksum"] != ref["spike_checksum"]:
            raise GateFailure(
                f"{where}: spike_checksum {row['spike_checksum']} diverges from "
                f"sample checksum {ref['spike_checksum']}")
        if row["decompress_mbits"] != ref["decompress_mbits"]:
            raise GateFailure(
                f"{where}: decompress_mbits {row['decompress_mbits']} diverges from "
                f"sample {ref['decompress_mbits']}")
        # Self-check: the streaming path exists to bound assembly memory.
        if fnum(row, "peak_assembly_bytes", where) >= fnum(ref, "peak_assembly_bytes", where):
            raise GateFailure(
                f"{where}: streamed peak_assembly_bytes not below the sample peak")
        checks += 3

    # Headline: the byte-parallel 2-bit element kernel beats the scalar
    # binary reference unpack per element.
    kernels = {row["codec"] + ":" + row["latent_bits"]: row
               for row in doc if row["mode"] == "kernel"}
    scalar = kernels.get("binary-scalar:0")
    elem2 = kernels.get("elements:2")
    if scalar is None or elem2 is None:
        raise GateFailure(f"{ctx}: kernel rows missing (binary-scalar and elements/2)")
    if fnum(elem2, "ns_per_elem", ctx) >= fnum(scalar, "ns_per_elem", ctx):
        raise GateFailure(
            f"{ctx}: kernel headline regressed: 2-bit unpack "
            f"{elem2['ns_per_elem']} ns/elem not below scalar binary "
            f"{scalar['ns_per_elem']}")
    checks += 1
    return checks


# ---- BENCH_baseline.json ----------------------------------------------------

def check_baseline(doc) -> int:
    ctx = "baseline"
    rows = require_envelope(doc, ctx)
    require_columns(rows, ["metric", "SpikingLR", "Replay4NCL"], ctx)
    by_metric = {row["metric"]: row for row in rows}
    checks = 0

    saving_row = by_metric.get("latent memory saving [%]")
    if saving_row is None:
        raise GateFailure(f"{ctx}: missing 'latent memory saving [%]' row")
    saving = fnum(saving_row, "Replay4NCL", ctx)
    lo, hi = BASELINE_MEMORY_SAVING_BAND
    if not lo <= saving <= hi:
        raise GateFailure(
            f"{ctx}: latent-memory saving {saving}% outside the pinned "
            f"[{lo}, {hi}]% band")
    checks += 1

    speedup_row = by_metric.get("latency speedup")
    if speedup_row is None:
        raise GateFailure(f"{ctx}: missing 'latency speedup' row")
    raw = str(speedup_row.get("Replay4NCL", "")).rstrip("x")
    try:
        speedup = float(raw)
    except ValueError:
        raise GateFailure(f"{ctx}: latency speedup is not numeric "
                          f"(got {speedup_row.get('Replay4NCL')!r})")
    if speedup < BASELINE_MIN_LATENCY_SPEEDUP:
        raise GateFailure(
            f"{ctx}: Replay4NCL latency speedup {speedup}x below the pinned "
            f"{BASELINE_MIN_LATENCY_SPEEDUP}x floor")
    checks += 1
    return checks


# ---- obs metrics snapshots ---------------------------------------------------

METRICS_SCHEMA = "r4ncl-metrics-v1"


def finite_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def check_metrics_snapshot(doc, ctx: str = "metrics_snapshot") -> int:
    """Validates one obs::MetricsRegistry snapshot: the pinned schema tag,
    per-section value sanity (counters are non-negative integers, gauges are
    finite, histogram edges strictly increase and bucket counts reconcile
    with the total), and the cross-metric invariants the instrumented code
    guarantees (shard adds sum to the engine total, per-policy evictions sum
    to the buffer total, evictions never exceed adds + restored entries, and
    occupancy gauges respect their capacity gauges).  Used both for
    standalone metrics_out= files (--metrics-snapshot) and for the snapshot
    embedded in BENCH_fleet_replay.json."""
    checks = 0
    if not isinstance(doc, dict):
        raise GateFailure(f"{ctx}: expected a snapshot object")
    if doc.get("schema") != METRICS_SCHEMA:
        raise GateFailure(f"{ctx}: schema {doc.get('schema')!r} != {METRICS_SCHEMA!r}")
    checks += 1
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            raise GateFailure(f"{ctx}: missing '{section}' object")
    counters = doc["counters"]
    gauges = doc["gauges"]

    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise GateFailure(
                f"{ctx}: counter {name} = {value!r} is not a non-negative integer")
        checks += 1
    for name, value in gauges.items():
        if not finite_number(value):
            raise GateFailure(f"{ctx}: gauge {name} = {value!r} is not a finite number")
        checks += 1
    for name, hist in doc["histograms"].items():
        where = f"{ctx}: histogram {name}"
        if not isinstance(hist, dict):
            raise GateFailure(f"{where}: not an object")
        edges = hist.get("edges")
        counts = hist.get("counts")
        if not isinstance(edges, list) or not edges:
            raise GateFailure(f"{where}: missing or empty edges")
        if not all(finite_number(e) for e in edges):
            raise GateFailure(f"{where}: non-finite edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise GateFailure(f"{where}: edges not strictly increasing: {edges}")
        if not isinstance(counts, list) or len(counts) != len(edges) + 1:
            raise GateFailure(
                f"{where}: counts must have len(edges) + 1 buckets "
                f"(the last is overflow), got {counts!r}")
        if any(not isinstance(c, int) or isinstance(c, bool) or c < 0 for c in counts):
            raise GateFailure(f"{where}: bucket counts must be non-negative integers")
        if hist.get("count") != sum(counts):
            raise GateFailure(
                f"{where}: count {hist.get('count')!r} != bucket sum {sum(counts)}")
        if not finite_number(hist.get("sum")):
            raise GateFailure(f"{where}: sum {hist.get('sum')!r} is not finite")
        checks += 4

    # Cross-invariants between named metrics.  Each fires only when its
    # metrics are present — the registry registers lazily, so a snapshot from
    # a run that never touched the engine has no shard counters to reconcile.
    shard_adds = [v for k, v in counters.items()
                  if k.startswith("replay_engine.shard") and k.endswith(".adds")]
    if shard_adds and "replay_engine.adds" in counters:
        if sum(shard_adds) != counters["replay_engine.adds"]:
            raise GateFailure(
                f"{ctx}: shard adds sum {sum(shard_adds)} != engine total "
                f"{counters['replay_engine.adds']}")
        checks += 1
    policy_evictions = [v for k, v in counters.items()
                        if k.startswith("replay_buffer.evictions.")]
    if policy_evictions and "replay_buffer.evictions" in counters:
        if sum(policy_evictions) != counters["replay_buffer.evictions"]:
            raise GateFailure(
                f"{ctx}: per-policy evictions sum {sum(policy_evictions)} != "
                f"total {counters['replay_buffer.evictions']}")
        checks += 1
    needed = {"replay_buffer.evictions", "replay_buffer.adds",
              "replay_buffer.restored_entries"}
    if needed <= counters.keys():
        budget = counters["replay_buffer.adds"] + counters["replay_buffer.restored_entries"]
        if counters["replay_buffer.evictions"] > budget:
            raise GateFailure(
                f"{ctx}: evictions {counters['replay_buffer.evictions']} exceed "
                f"adds + restored_entries ({budget}) — an entry was evicted twice")
        checks += 1
    for name, occupancy in gauges.items():
        if not name.endswith(".occupancy_bytes"):
            continue
        capacity = gauges.get(name[:-len("occupancy_bytes")] + "capacity_bytes")
        if capacity is not None and capacity > 0 and occupancy > capacity:
            raise GateFailure(
                f"{ctx}: {name} = {occupancy} exceeds its capacity gauge {capacity}")
        checks += 1
    return checks


# ---- BENCH_fleet_replay.json -------------------------------------------------

def check_fleet_replay(doc) -> int:
    ctx = "fleet_replay"
    rows = require_envelope(doc, ctx)
    require_columns(rows, FLEET_COLUMNS, ctx)
    checks = 0

    # The artifact carries the generating run's telemetry snapshot; it must
    # be present and internally consistent (schema + cross-invariants).
    if "metrics" not in doc:
        raise GateFailure(f"{ctx}: missing embedded 'metrics' registry snapshot")
    checks += check_metrics_snapshot(doc["metrics"], f"{ctx}: metrics")

    # Self-check on every row: the lifetime accounting balances exactly and
    # the byte budget held (capacity 0 would mean unbounded).
    for i, row in enumerate(rows):
        where = f"{ctx}: row {i} ({row['mode']}/shards{row['shards']}/rep{row['rep']})"
        if row["mode"] not in ("det", "concurrent"):
            raise GateFailure(f"{where}: unknown mode {row['mode']!r}")
        adds = fnum(row, "adds", where)
        entries = fnum(row, "entries", where)
        evictions = fnum(row, "evictions", where)
        if entries != adds - evictions:
            raise GateFailure(
                f"{where}: entries {entries} != adds {adds} - evictions {evictions}")
        capacity = fnum(row, "capacity_bytes", where)
        if capacity > 0 and fnum(row, "memory_bytes", where) > capacity:
            raise GateFailure(
                f"{where}: memory_bytes {row['memory_bytes']} exceeds "
                f"capacity_bytes {row['capacity_bytes']}")
        if fnum(row, "adds_per_sec", where) <= 0:
            raise GateFailure(f"{where}: non-positive adds_per_sec")
        checks += 3

    # Self-check: det rows are deterministic — every rep of a (shards,
    # shard_by) cell must report the same final-state checksum.
    det_cells = {}
    for row in rows:
        if row["mode"] == "det":
            det_cells.setdefault((row["shards"], row["shard_by"]), []).append(row)
    if not det_cells:
        raise GateFailure(f"{ctx}: no det-mode rows")
    for cell, cell_rows in sorted(det_cells.items()):
        if len(cell_rows) < 2:
            raise GateFailure(f"{ctx}: det cell {cell} has a single rep; "
                              f"checksum parity needs >= 2")
        checksums = {r["checksum"] for r in cell_rows}
        if len(checksums) != 1:
            raise GateFailure(
                f"{ctx}: det cell {cell} reps disagree on checksum: {sorted(checksums)}")
        checks += 1

    # The bit-identity anchor (shards=1, checked in-binary against the plain
    # LatentReplayBuffer) must be part of the sweep.
    if not any(shards == "1" for shards, _ in det_cells):
        raise GateFailure(f"{ctx}: no shards=1 det rows — bit-identity anchor missing")
    checks += 1

    # Headline: concurrent rows ran with a real fleet (>= 4 device threads)
    # and at least one multi-shard configuration.
    concurrent = [r for r in rows if r["mode"] == "concurrent"]
    if not concurrent:
        raise GateFailure(f"{ctx}: no concurrent-mode rows")
    for row in concurrent:
        streams = fnum(row, "streams", f"{ctx}: concurrent row")
        if streams < FLEET_MIN_CONCURRENT_STREAMS:
            raise GateFailure(
                f"{ctx}: concurrent row ran only {streams:.0f} streams "
                f"(floor is {FLEET_MIN_CONCURRENT_STREAMS})")
    if not any(fnum(r, "shards", ctx) > 1 for r in concurrent):
        raise GateFailure(f"{ctx}: no concurrent rows with shards > 1")
    checks += 2
    return checks


# ---- BENCH_hot_path.json -----------------------------------------------------

def check_hot_path(doc) -> int:
    ctx = "hot_path"
    if not isinstance(doc, list):
        raise GateFailure(f"{ctx}: expected a bare row array")
    require_columns(doc, HOT_PATH_COLUMNS, ctx)
    checks = 0

    # Self-check on every row: the bit-identity flag held (sparse ≡ dense /
    # threads=N ≡ 1 / prefetch=1 ≡ 0 — the bench exits nonzero otherwise, so
    # a committed 0 means the artifact was generated from a broken build).
    for i, row in enumerate(doc):
        where = f"{ctx}: row {i} ({row['mode']}/{row['density']})"
        if row["identical"] != "1":
            raise GateFailure(f"{where}: bit-identity flag is not 1")
        if fnum(row, "wall_ms", where) <= 0:
            raise GateFailure(f"{where}: non-positive wall_ms")
        checks += 2
        # speedup is derived; it must agree with ref_ms / wall_ms.
        if row["speedup"] != "-":
            expected = fnum(row, "ref_ms", where) / fnum(row, "wall_ms", where)
            if abs(fnum(row, "speedup", where) - expected) > HOT_PATH_DERIVED_TOL:
                raise GateFailure(
                    f"{where}: speedup {row['speedup']} != ref_ms / wall_ms "
                    f"({expected:.3f})")
            checks += 1

    by_mode = {}
    for row in doc:
        by_mode.setdefault(row["mode"], []).append(row)
    for mode in ("forward", "forward_aer", "train_threads", "train_prefetch"):
        if mode not in by_mode:
            raise GateFailure(f"{ctx}: no {mode} rows")
    checks += 1

    # Headline: from stored AER, the event path must clear the pinned speedup
    # at replay-realistic density.
    gated = [fnum(r, "speedup", f"{ctx}: forward_aer row")
             for r in by_mode["forward_aer"] if float(r["density"]) <= 0.10]
    if not gated:
        raise GateFailure(f"{ctx}: no forward_aer rows at density <= 0.10")
    if max(gated) < HOT_PATH_MIN_AER_SPEEDUP:
        raise GateFailure(
            f"{ctx}: best from-AER forward speedup {max(gated):.3f} below the "
            f"pinned {HOT_PATH_MIN_AER_SPEEDUP}x floor")
    checks += 1

    # Headline: prefetch hides > 80% of the blocking assembly cost, and the
    # committed stall_frac agrees with its stall/blocking columns.
    for row in by_mode["train_prefetch"]:
        where = f"{ctx}: train_prefetch row"
        stall = fnum(row, "stall_ms", where)
        blocking = fnum(row, "blocking_ms", where)
        frac = fnum(row, "stall_frac", where)
        if blocking <= 0:
            raise GateFailure(f"{where}: non-positive blocking_ms")
        if abs(frac - stall / blocking) > HOT_PATH_DERIVED_TOL:
            raise GateFailure(
                f"{where}: stall_frac {frac} != stall_ms / blocking_ms "
                f"({stall / blocking:.3f})")
        if frac >= HOT_PATH_MAX_STALL_FRAC:
            raise GateFailure(
                f"{where}: stall_frac {frac} not below the pinned "
                f"{HOT_PATH_MAX_STALL_FRAC} ceiling")
        checks += 3
    return checks


# ---- BENCH_resume_parity.json ------------------------------------------------

def check_resume_parity(doc) -> int:
    ctx = "resume_parity"
    rows = require_envelope(doc, ctx)
    checks = 0

    parity = [r for r in rows if isinstance(r, dict) and r.get("mode") == "parity"]
    corruption = {r.get("kind"): r for r in rows
                  if isinstance(r, dict) and r.get("mode") == "corruption"}
    if len(parity) < 3:
        raise GateFailure(f"{ctx}: only {len(parity)} parity rows (need >= 3 tasks)")
    require_columns(parity, ["task", "full", "resumed", "identical"], f"{ctx}: parity")

    # Self-check: the resumed process printed byte-identical rows, and the
    # recorded row text actually agrees with the flag.
    for i, row in enumerate(parity):
        where = f"{ctx}: parity row {i} (task {row['task']})"
        if row["identical"] != "1":
            raise GateFailure(f"{where}: resume diverged from the reference run")
        if row["full"] != row["resumed"]:
            raise GateFailure(f"{where}: identical flag set but row text differs")
        checks += 2

    # Headline: the corruption sweep ran, truncations were all contained on
    # the pinned error path, and nothing crashed.
    for kind in ("truncation", "bitflip"):
        row = corruption.get(kind)
        if row is None:
            raise GateFailure(f"{ctx}: missing corruption row for {kind}")
        where = f"{ctx}: corruption/{kind}"
        if fnum(row, "trials", where) <= 0:
            raise GateFailure(f"{where}: no trials recorded")
        if fnum(row, "crashes", where) != 0:
            raise GateFailure(f"{where}: {row['crashes']} corrupted load(s) crashed")
        checks += 2
    trunc = corruption["truncation"]
    if fnum(trunc, "clean_passes", ctx) != 0:
        raise GateFailure(f"{ctx}: a truncated checkpoint loaded cleanly")
    if fnum(trunc, "pinned_errors", ctx) != fnum(trunc, "trials", ctx):
        raise GateFailure(f"{ctx}: truncation trials not all on the pinned error path")
    checks += 2
    return checks


CHECKS = {
    "BENCH_budget_sweep.json": check_budget_sweep,
    "BENCH_replay_stream.json": check_replay_stream,
    "BENCH_baseline.json": check_baseline,
    "BENCH_fleet_replay.json": check_fleet_replay,
    "BENCH_resume_parity.json": check_resume_parity,
    "BENCH_hot_path.json": check_hot_path,
}


def load(path: Path):
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise GateFailure(f"{path}: missing")
    except json.JSONDecodeError as err:
        raise GateFailure(f"{path}: not valid JSON ({err})")


def run_gate(directory: Path) -> int:
    total = 0
    for name, check in sorted(CHECKS.items()):
        doc = load(directory / name)
        total += check(doc)
    return total


# ---- Self-test ---------------------------------------------------------------

def expect_failure(label: str, check, doc) -> None:
    try:
        check(doc)
    except GateFailure:
        return
    raise SystemExit(f"bench gate: SELF-TEST FAIL — corruption not caught: {label}")


def self_test(directory: Path) -> int:
    """Corrupts in-memory copies of the real artifacts and asserts that every
    corruption trips its gate — the 'hand-corrupted JSON must fail' proof."""
    sweep = load(directory / "BENCH_budget_sweep.json")
    stream = load(directory / "BENCH_replay_stream.json")
    baseline = load(directory / "BENCH_baseline.json")
    fleet = load(directory / "BENCH_fleet_replay.json")
    resume = load(directory / "BENCH_resume_parity.json")
    hot_path = load(directory / "BENCH_hot_path.json")
    # The pristine copies must pass before corruption means anything.
    check_budget_sweep(copy.deepcopy(sweep))
    check_replay_stream(copy.deepcopy(stream))
    check_baseline(copy.deepcopy(baseline))
    check_fleet_replay(copy.deepcopy(fleet))
    check_resume_parity(copy.deepcopy(resume))
    check_hot_path(copy.deepcopy(hot_path))

    cases = 0

    bad = copy.deepcopy(sweep)
    for row in bad["rows"]:
        if float(row["budget_bytes"] or 0) > 0:
            row["final_bytes"] = str(int(float(row["budget_bytes"])) + 1)
            break
    expect_failure("budget overflow", check_budget_sweep, bad)
    cases += 1

    # Headline regression written with *consistent* deltas, so the per-row
    # delta-parity check cannot mask a deleted/broken headline gate — only
    # the importance-vs-content-blind comparison itself can catch this one.
    bad = copy.deepcopy(sweep)
    references = {base_method(r["method"]): float(r["acc_learned"])
                  for r in bad["rows"] if r["policy"] == "unbounded"}
    for row in bad["rows"]:
        if row["policy"] in IMPORTANCE_AWARE:
            row["acc_learned"] = "0.00"
            row["delta_vs_unbounded"] = (
                f"{0.0 - references[base_method(row['method'])]:.2f}")
    expect_failure("importance headline regression", check_budget_sweep, bad)
    cases += 1

    bad = copy.deepcopy(sweep)
    bad["rows"][0]["acc_learned"] = "41.00"  # breaks delta parity
    expect_failure("delta/accuracy mismatch", check_budget_sweep, bad)
    cases += 1

    bad = copy.deepcopy(sweep)
    del bad["rows"][1]["policy"]
    expect_failure("dropped column", check_budget_sweep, bad)
    cases += 1

    bad = copy.deepcopy(sweep)
    for row in bad["rows"]:
        if row["latent_bits"] == "4":
            row["entries"] = "1"
    expect_failure("quant capacity regression", check_budget_sweep, bad)
    cases += 1

    bad = copy.deepcopy(stream)
    for row in bad:
        if row["mode"] == "stream":
            row["spike_checksum"] = str(int(row["spike_checksum"]) + 1)
            break
    expect_failure("checksum parity", check_replay_stream, bad)
    cases += 1

    bad = copy.deepcopy(stream)
    for row in bad:
        if row["mode"] == "stream":
            row["peak_assembly_bytes"] = "999999999"
    expect_failure("peak-bytes invariant", check_replay_stream, bad)
    cases += 1

    bad = copy.deepcopy(baseline)
    for row in bad["rows"]:
        if row["metric"] == "latent memory saving [%]":
            row["Replay4NCL"] = "2.00"
    expect_failure("memory-saving band", check_baseline, bad)
    cases += 1

    bad = copy.deepcopy(sweep)
    bad.pop("command")
    expect_failure("missing metadata envelope field", check_budget_sweep, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    for row in bad["rows"]:
        if row["mode"] == "det":
            row["checksum"] = str(int(row["checksum"]) + 1)
            break
    expect_failure("fleet det checksum parity", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    bad["rows"][0]["entries"] = str(int(bad["rows"][0]["entries"]) + 1)
    expect_failure("fleet lifetime accounting", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    for row in bad["rows"]:
        row["memory_bytes"] = str(int(float(row["capacity_bytes"])) + 1)
    expect_failure("fleet byte-budget overflow", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    for row in bad["rows"]:
        if row["mode"] == "concurrent":
            row["streams"] = "2"
    expect_failure("fleet stream-count floor", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    bad["rows"] = [r for r in bad["rows"]
                   if not (r["mode"] == "det" and r["shards"] == "1")]
    expect_failure("fleet bit-identity anchor dropped", check_fleet_replay, bad)
    cases += 1

    # Resume divergence written *consistently* (flag and text both lie the
    # same way is impossible: flag=0 trips the flag gate, differing text with
    # flag=1 trips the text gate) — corrupt each side separately.
    bad = copy.deepcopy(resume)
    for row in bad["rows"]:
        if row["mode"] == "parity":
            row["identical"] = "0"
            break
    expect_failure("resume parity flag", check_resume_parity, bad)
    cases += 1

    bad = copy.deepcopy(resume)
    for row in bad["rows"]:
        if row["mode"] == "parity":
            row["resumed"] = row["resumed"] + "x"
            break
    expect_failure("resume row text divergence", check_resume_parity, bad)
    cases += 1

    bad = copy.deepcopy(resume)
    for row in bad["rows"]:
        if row["mode"] == "corruption":
            row["crashes"] = "1"
            break
    expect_failure("resume corruption crash", check_resume_parity, bad)
    cases += 1

    bad = copy.deepcopy(resume)
    for row in bad["rows"]:
        if row["mode"] == "corruption" and row["kind"] == "truncation":
            row["clean_passes"] = "1"
    expect_failure("truncated checkpoint loaded cleanly", check_resume_parity, bad)
    cases += 1

    bad = copy.deepcopy(hot_path)
    for row in bad:
        if row["mode"] == "forward":
            row["identical"] = "0"
            break
    expect_failure("hot-path bit-identity flag", check_hot_path, bad)
    cases += 1

    # Speedup regression written *consistently* (wall, ref and the derived
    # speedup column all agreeing), so only the pinned floor can catch it.
    bad = copy.deepcopy(hot_path)
    for row in bad:
        if row["mode"] == "forward_aer":
            row["ref_ms"] = row["wall_ms"]
            row["speedup"] = "1.000"
    expect_failure("hot-path AER speedup floor", check_hot_path, bad)
    cases += 1

    bad = copy.deepcopy(hot_path)
    for row in bad:
        if row["mode"] == "forward_aer":
            row["speedup"] = "9.999"  # no longer ref_ms / wall_ms
            break
    expect_failure("hot-path speedup/wall mismatch", check_hot_path, bad)
    cases += 1

    bad = copy.deepcopy(hot_path)
    for row in bad:
        if row["mode"] == "train_prefetch":
            row["stall_ms"] = row["blocking_ms"]
            row["stall_frac"] = "1.000"
    expect_failure("hot-path stall ceiling", check_hot_path, bad)
    cases += 1

    bad = copy.deepcopy(hot_path)
    bad = [r for r in bad if r["mode"] != "train_prefetch"]
    expect_failure("hot-path prefetch rows dropped", check_hot_path, bad)
    cases += 1

    bad = copy.deepcopy(hot_path)
    del bad[0]["spike_checksum"]
    expect_failure("hot-path dropped column", check_hot_path, bad)
    cases += 1

    # ---- metrics snapshot corruptions (embedded in the fleet artifact) ----
    bad = copy.deepcopy(fleet)
    del bad["metrics"]
    expect_failure("fleet metrics snapshot dropped", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    bad["metrics"]["schema"] = "r4ncl-metrics-v0"
    expect_failure("metrics schema tag", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    name = sorted(bad["metrics"]["counters"])[0]
    bad["metrics"]["counters"][name] = -1
    expect_failure("negative counter", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    bad["metrics"]["counters"]["replay_engine.adds"] += 1
    expect_failure("shard adds / engine total mismatch", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    bad["metrics"]["counters"]["replay_buffer.evictions"] = (
        bad["metrics"]["counters"]["replay_buffer.adds"]
        + bad["metrics"]["counters"]["replay_buffer.restored_entries"] + 1)
    expect_failure("evictions exceed adds + restored", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    hist_name = sorted(bad["metrics"]["histograms"])[0]
    bad["metrics"]["histograms"][hist_name]["count"] += 1
    expect_failure("histogram count / bucket-sum mismatch", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    hist = bad["metrics"]["histograms"][sorted(bad["metrics"]["histograms"])[0]]
    hist["edges"] = sorted(hist["edges"], reverse=True)
    expect_failure("histogram edges not increasing", check_fleet_replay, bad)
    cases += 1

    bad = copy.deepcopy(fleet)
    for gauge in list(bad["metrics"]["gauges"]):
        if gauge.endswith(".capacity_bytes"):
            occ = gauge[:-len("capacity_bytes")] + "occupancy_bytes"
            bad["metrics"]["gauges"][occ] = bad["metrics"]["gauges"][gauge] + 1
            break
    expect_failure("occupancy gauge over capacity", check_fleet_replay, bad)
    cases += 1

    return cases


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dir", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="directory holding the BENCH_*.json files (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="corrupt in-memory copies and assert every gate trips")
    parser.add_argument("--metrics-snapshot", type=Path, default=None,
                        help="validate one metrics_out= snapshot file instead of "
                             "the checked-in BENCH_*.json artifacts")
    args = parser.parse_args()

    try:
        if args.metrics_snapshot is not None:
            checks = check_metrics_snapshot(load(args.metrics_snapshot),
                                            str(args.metrics_snapshot))
            print(f"bench gate: metrics snapshot OK ({checks} checks)")
        elif args.self_test:
            cases = self_test(args.dir)
            print(f"bench gate: self-test OK ({cases} corruptions all caught)")
        else:
            checks = run_gate(args.dir)
            print(f"bench gate: OK ({len(CHECKS)} files, {checks} checks)")
    except GateFailure as err:
        print(f"bench gate: FAIL — {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
