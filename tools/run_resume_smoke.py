#!/usr/bin/env python3
"""Kill/resume smoke driver over the budget_stream example.

Proves the checkpoint story at the process level, where the unit tests
cannot: a *fresh OS process* resumed from a checkpoint file must print the
exact per-task result rows of a process that was never interrupted.

Three invocations of the same budgeted sequential stream:

1. full    — runs all tasks uninterrupted; its row table is the reference.
2. killed  — same configuration plus checkpoint=<tmp> stop_after=<k>; the
             process saves full state after k tasks and exits 0.
3. resumed — a fresh process with resume=<tmp>; it must finish the stream
             and print a row table byte-identical to the full run's (the
             restored rows are re-printed, so the two tables diff directly).

The driver then hardens the loader from the outside: a sample of truncations
and single-bit flips of the real checkpoint file is fed back through
resume=.  Every corrupted load must either fail with the pinned error path
(exit 2, "error:" on stderr — the r4ncl::Error convention shared by all
examples) or, for flips landing in plain payload data, load cleanly and run
to completion (exit 0).  Any other exit — a crash, a sanitizer abort, an
uncaught exception — fails the smoke.  A mismatched-configuration resume
(different eviction policy) must die with the pinned "checkpoint mismatch".

    python3 tools/run_resume_smoke.py --binary build/examples/budget_stream
    python3 tools/run_resume_smoke.py --binary ... --emit-json BENCH_resume_parity.json

Exit 0 = parity held and every corruption was contained.  CI runs this under
the ASan+UBSan preset as the `ctest -L resume_smoke` lane, so the corrupted
loads also run sanitizer-checked.
"""

from __future__ import annotations

import argparse
import datetime
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

# Small but non-trivial stream: 4 arriving classes, kill after 2, so the
# resumed process replays half the stream from restored state.
COMMON_ARGS = ["scale=0.25", "tasks=4", "epochs=2", "pretrain_epochs=3",
               "policy=reservoir", "replay_samples=6"]
STOP_AFTER = 2
NUM_TASKS = 4
# Sampled offsets per corruption mode; the exhaustive every-byte sweep lives
# in tests/test_checkpoint.cpp — the smoke samples the same contract through
# a real process boundary.
CORRUPTION_SAMPLES = 16

# A per-task row printed by budget_stream:
#   "   0    14     832/4096      4       0     75.0%     75.0%"
ROW_RE = re.compile(r"^\s*\d+\s+\d+\s+\d+/\d+\s+\d+\s+\d+\s+[\d.]+%\s+[\d.]+%\s*$")


def run(binary: Path, extra: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run([str(binary)] + COMMON_ARGS + extra, cwd=cwd,
                          capture_output=True, text=True, timeout=1200)


def row_lines(stdout: str) -> list[str]:
    return [line for line in stdout.splitlines() if ROW_RE.match(line)]


def fail(message: str) -> None:
    print(f"resume smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def check_exit(proc: subprocess.CompletedProcess, what: str, expect: int = 0) -> None:
    if proc.returncode != expect:
        sys.stderr.write(proc.stdout[-2000:] + "\n" + proc.stderr[-2000:] + "\n")
        fail(f"{what} exited {proc.returncode} (expected {expect})")


def corruption_trial(binary: Path, mangled: Path, payload: bytes,
                     cwd: Path, counts: dict) -> None:
    mangled.write_bytes(payload)
    proc = run(binary, [f"resume={mangled}"], cwd)
    counts["trials"] += 1
    if proc.returncode == 2 and "error:" in proc.stderr:
        counts["pinned_errors"] += 1
    elif proc.returncode == 0:
        # The flip landed in plain payload data; a clean (different) run is
        # within contract.  Truncations can never get here: every strict
        # prefix fails a length or tag check.
        counts["clean_passes"] += 1
    else:
        counts["crashes"] += 1
        sys.stderr.write(proc.stderr[-2000:] + "\n")
        fail(f"corrupted checkpoint ({mangled.name}) exited {proc.returncode} "
             f"instead of the pinned error path")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--binary", type=Path, required=True,
                        help="path to the built budget_stream example")
    parser.add_argument("--emit-json", type=Path, default=None,
                        help="write a BENCH_resume_parity.json artifact here")
    args = parser.parse_args()
    binary = args.binary.resolve()
    if not binary.exists():
        fail(f"binary not found: {binary}")

    with tempfile.TemporaryDirectory(prefix="resume_smoke_") as tmp:
        workdir = Path(tmp)
        ckpt = workdir / "run.ckpt"

        print("resume smoke: reference run (uninterrupted)...")
        full = run(binary, [], workdir)
        check_exit(full, "reference run")
        full_rows = row_lines(full.stdout)
        if len(full_rows) != NUM_TASKS:
            fail(f"reference run printed {len(full_rows)} rows, expected {NUM_TASKS}")

        print(f"resume smoke: killed run (checkpoint after {STOP_AFTER} tasks)...")
        killed = run(binary, [f"checkpoint={ckpt}", f"stop_after={STOP_AFTER}"], workdir)
        check_exit(killed, "killed run")
        killed_rows = row_lines(killed.stdout)
        if len(killed_rows) != STOP_AFTER:
            fail(f"killed run printed {len(killed_rows)} rows, expected {STOP_AFTER}")
        if f"stopped after {STOP_AFTER}/{NUM_TASKS} tasks" not in killed.stdout:
            fail("killed run did not report the early stop")
        if not ckpt.exists():
            fail("killed run left no checkpoint file")
        ckpt_bytes = ckpt.read_bytes()

        print("resume smoke: resumed run (fresh process)...")
        resumed = run(binary, [f"resume={ckpt}"], workdir)
        check_exit(resumed, "resumed run")
        resumed_rows = row_lines(resumed.stdout)

        # The parity contract: byte-identical row tables.
        if killed_rows != full_rows[:STOP_AFTER]:
            fail("killed run's completed rows diverge from the reference:\n"
                 + "\n".join(killed_rows) + "\n-- vs --\n"
                 + "\n".join(full_rows[:STOP_AFTER]))
        if resumed_rows != full_rows:
            fail("resumed rows diverge from the uninterrupted run:\n"
                 + "\n".join(resumed_rows) + "\n-- vs --\n" + "\n".join(full_rows))
        print(f"resume smoke: parity OK — {NUM_TASKS} rows byte-identical across "
              f"the process boundary")

        # Mismatched configuration: same checkpoint, different eviction
        # policy — must die on the pinned fingerprint check.
        mismatch = subprocess.run(
            [str(binary)] + ["scale=0.25", "tasks=4", "epochs=2", "pretrain_epochs=3",
                             "policy=fifo", "replay_samples=6", f"resume={ckpt}"],
            cwd=workdir, capture_output=True, text=True, timeout=1200)
        if mismatch.returncode != 2 or "checkpoint mismatch" not in mismatch.stderr:
            fail(f"mismatched-policy resume exited {mismatch.returncode} without "
                 f"the pinned mismatch error (stderr: {mismatch.stderr[-500:]!r})")
        print("resume smoke: mismatched-policy resume correctly rejected")

        # Corruption sweep (sampled; the exhaustive sweep is a unit test).
        mangled = workdir / "mangled.ckpt"
        truncation = {"trials": 0, "pinned_errors": 0, "clean_passes": 0, "crashes": 0}
        step = max(1, len(ckpt_bytes) // CORRUPTION_SAMPLES)
        for cut in range(0, len(ckpt_bytes), step):
            corruption_trial(binary, mangled, ckpt_bytes[:cut], workdir, truncation)
        if truncation["clean_passes"]:
            fail("a truncated checkpoint loaded cleanly")

        bitflip = {"trials": 0, "pinned_errors": 0, "clean_passes": 0, "crashes": 0}
        for offset in range(0, len(ckpt_bytes), step):
            payload = bytearray(ckpt_bytes)
            payload[offset] ^= 0x10
            corruption_trial(binary, mangled, bytes(payload), workdir, bitflip)
        if not bitflip["pinned_errors"]:
            fail("no bit flip tripped the pinned error path (sweep too shallow?)")
        print(f"resume smoke: corruption contained — "
              f"{truncation['trials']} truncations all pinned, "
              f"{bitflip['trials']} bit flips "
              f"({bitflip['pinned_errors']} pinned, {bitflip['clean_passes']} clean)")

        if args.emit_json:
            rows = []
            for i, (ref, res) in enumerate(zip(full_rows, resumed_rows)):
                rows.append({"mode": "parity", "task": str(i), "full": ref.strip(),
                             "resumed": res.strip(),
                             "identical": "1" if ref == res else "0"})
            for kind, counts in (("truncation", truncation), ("bitflip", bitflip)):
                rows.append({"mode": "corruption", "kind": kind,
                             **{k: str(v) for k, v in counts.items()}})
            doc = {
                "bench": "resume_parity",
                "description": "budget_stream kill/resume parity across a process "
                               "boundary, plus a sampled checkpoint-corruption sweep",
                "generated": datetime.datetime.now(datetime.timezone.utc)
                    .strftime("%Y-%m-%dT%H:%M:%SZ"),
                "command": "python3 tools/run_resume_smoke.py --binary "
                           "<build>/examples/budget_stream --emit-json "
                           "BENCH_resume_parity.json",
                "stop_after": str(STOP_AFTER),
                "tasks": str(NUM_TASKS),
                "rows": rows,
            }
            args.emit_json.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"resume smoke: wrote {args.emit_json}")

    print("resume smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
