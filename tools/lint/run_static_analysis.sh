#!/usr/bin/env bash
# Static-analysis driver: determinism linter + compile-database clang-tidy.
#
# Usage:
#   run_static_analysis.sh [options] [PATHS...]
#     PATHS                 files/dirs for the determinism linter (default:
#                           src bench examples)
#     -p, --build-dir DIR   compile database dir for clang-tidy (default:
#                           build-tidy, falling back to build-release)
#     --require-clang-tidy  fail when clang-tidy is not installed (CI); the
#                           default is to skip that layer with a notice so
#                           bare machines can still run the determinism wall
#     --skip-clang-tidy     never run clang-tidy even if present
#     --self-test           prove the wall has teeth: linter --self-test must
#                           pass, the good fixture must lint clean, and the
#                           deliberately-bad fixture must FAIL
#
# Exit codes: 0 clean, 1 findings (or bad fixture unexpectedly passing),
# 2 usage/toolchain errors.
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(cd "${SCRIPT_DIR}/../.." && pwd)"
LINTER="${SCRIPT_DIR}/determinism_lint.py"
PYTHON="${PYTHON:-python3}"

BUILD_DIR=""
REQUIRE_TIDY=0
SKIP_TIDY=0
SELF_TEST=0
PATHS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    -p|--build-dir) BUILD_DIR="$2"; shift 2 ;;
    --require-clang-tidy) REQUIRE_TIDY=1; shift ;;
    --skip-clang-tidy) SKIP_TIDY=1; shift ;;
    --self-test) SELF_TEST=1; shift ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    -*) echo "run_static_analysis.sh: unknown option '$1'" >&2; exit 2 ;;
    *) PATHS+=("$1"); shift ;;
  esac
done

if [[ ${SELF_TEST} -eq 1 ]]; then
  rc=0
  echo "== determinism linter self-test =="
  "${PYTHON}" "${LINTER}" --self-test || rc=2
  echo "== good fixture must pass =="
  if "${PYTHON}" "${LINTER}" --root "${REPO_ROOT}" \
      "${SCRIPT_DIR}/fixtures/good_determinism.cpp"; then
    echo "good fixture: clean (as expected)"
  else
    echo "SELF-TEST FAIL: good fixture reported findings" >&2
    rc=2
  fi
  echo "== bad fixture must fail =="
  if "${PYTHON}" "${LINTER}" --root "${REPO_ROOT}" \
      "${SCRIPT_DIR}/fixtures/bad_determinism.cpp"; then
    echo "SELF-TEST FAIL: bad fixture passed the linter" >&2
    rc=1
  else
    echo "bad fixture: rejected (as expected)"
  fi
  exit "${rc}"
fi

rc=0

echo "== determinism linter =="
if [[ ${#PATHS[@]} -gt 0 ]]; then
  "${PYTHON}" "${LINTER}" --root "${REPO_ROOT}" "${PATHS[@]}" || rc=1
else
  "${PYTHON}" "${LINTER}" --root "${REPO_ROOT}" || rc=1
fi

if [[ ${SKIP_TIDY} -eq 1 ]]; then
  echo "== clang-tidy: skipped (--skip-clang-tidy) =="
elif ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ ${REQUIRE_TIDY} -eq 1 ]]; then
    echo "run_static_analysis.sh: clang-tidy required but not installed" >&2
    exit 2
  fi
  echo "== clang-tidy: not installed; skipping (pass --require-clang-tidy to enforce) =="
else
  if [[ -z "${BUILD_DIR}" ]]; then
    for candidate in "${REPO_ROOT}/build-tidy" "${REPO_ROOT}/build-release"; do
      if [[ -f "${candidate}/compile_commands.json" ]]; then
        BUILD_DIR="${candidate}"
        break
      fi
    done
  fi
  if [[ -z "${BUILD_DIR}" || ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "run_static_analysis.sh: no compile_commands.json (configure the tidy" \
         "preset first: cmake --preset tidy)" >&2
    exit 2
  fi
  echo "== clang-tidy (database: ${BUILD_DIR}) =="
  # Library sources only: benches/examples are covered by the tree-wide
  # warning wall; clang-tidy's deep checks target the long-lived core.
  mapfile -t TIDY_SOURCES < <(find "${REPO_ROOT}/src" -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${BUILD_DIR}" "${TIDY_SOURCES[@]}" || rc=1
  else
    clang-tidy --quiet -p "${BUILD_DIR}" "${TIDY_SOURCES[@]}" || rc=1
  fi
fi

if [[ ${rc} -eq 0 ]]; then
  echo "static analysis: clean"
else
  echo "static analysis: FINDINGS (see above)" >&2
fi
exit "${rc}"
