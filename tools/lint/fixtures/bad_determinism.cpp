// Deliberately-broken fixture: every determinism-linter rule fires here.
// run_static_analysis.sh --self-test (and the CI negative check) prove the
// wall has teeth by requiring the driver to FAIL on this file.  Never add it
// to any build target.
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, float> g_scores;

// unordered-iteration: fold order is implementation-defined.
inline float total() {
  float t = 0.0f;
  for (const auto& [k, v] : g_scores) t += v;
  return t;
}

// raw-random: both calls bypass the seeded util/rng streams.
inline int noisy_draw() { return static_cast<int>(time(nullptr)) ^ rand(); }

// static-local: hidden cross-run state.
inline int call_count() {
  static int calls = 0;
  return ++calls;
}

// raw-mutex: invisible to -Wthread-safety, state not R4NCL_GUARDED_BY-tied.
class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;
  int n_ = 0;
};

// omp-float-accum: unordered parallel float reduction, no fixed-order marker.
inline double unstable_sum(const double* x, int n) {
  double acc = 0.0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

}  // namespace fixture
