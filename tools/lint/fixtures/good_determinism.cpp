// Clean fixture: determinism-safe counterparts of everything
// bad_determinism.cpp does wrong, including one reason-annotated
// suppression.  run_static_analysis.sh --self-test requires the linter to
// pass this file.  Never add it to any build target.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace fixture {

std::unordered_map<int, float> g_scores;

// Iterate a sorted key vector instead of the unordered container.
inline float total_sorted() {
  std::vector<int> keys;
  keys.reserve(g_scores.size());
  // r4ncl-lint: allow(unordered-iteration) keys are collected then sorted; emission order is the sorted order
  for (const auto& [k, v] : g_scores) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  float t = 0.0f;
  for (const int k : keys) t += g_scores.at(k);
  return t;
}

// Annotated lock: the mutex is a capability and the state is tied to it.
class Counter {
 public:
  void bump() R4NCL_EXCLUDES(mu_) {
    r4ncl::MutexLock lock(mu_);
    ++n_;
  }

 private:
  r4ncl::Mutex mu_;
  int n_ R4NCL_GUARDED_BY(mu_) = 0;
};

// Parallel float reduction with the order pinned (per-chunk partials folded
// serially), carrying the fixed-order marker the linter looks for.
inline double stable_sum(const double* x, int n) {
  std::vector<double> partials(4, 0.0);
#pragma omp parallel for  // partials folded serially below in fixed-order
  for (int i = 0; i < n; ++i) {
    partials[static_cast<std::size_t>(i) % 4] += x[i];
  }
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

}  // namespace fixture
