#!/usr/bin/env python3
"""Determinism linter: file-scope checks for the repo's bit-identity hazards.

Every headline contract in this repo is a determinism contract (shards=1
bit-identical to the single buffer, threads=N == threads=1, sparse == dense,
bit-identical warm resume).  The sanitizer lanes catch races *dynamically*;
this linter catches the constructs that historically break bit-identity
*statically*, before a bench ever drifts:

  unordered-iteration  iteration over std::unordered_map / std::unordered_set
                       (element order is implementation-defined, so any fold
                       or emission over it is non-deterministic across
                       libraries and hash seeds)
  raw-random           rand()/srand()/time()/std::random_device outside
                       util/rng (all randomness must flow through the seeded,
                       checkpointable Rng streams)
  omp-float-accum      float/double accumulation (+=, -=, *=, /=) inside a
                       #pragma omp / run_workers region without a
                       `fixed-order` marker comment asserting the reduction
                       order is pinned
  static-local         `static` mutable function-locals in product code (hidden
                       cross-run state; tests and `static const`/`constexpr` are fine)
  raw-mutex            std::mutex / std::recursive_mutex declarations whose
                       file never ties them to a R4NCL_GUARDED_BY annotation
                       (locks must be util::Mutex wrapped in annotated
                       classes so -Wthread-safety can see them)

Suppression syntax (same line or the line directly above the finding):

    // r4ncl-lint: allow(<rule>) <reason>

The reason is mandatory: a bare allow() is itself a lint error, so every
suppression in the tree carries a written justification.

Usage:
    determinism_lint.py [--root DIR] [PATHS...]   lint files/dirs (default:
                                                  src bench examples under
                                                  --root, which defaults to
                                                  the repo root)
    determinism_lint.py --self-test               run the embedded fixtures
    determinism_lint.py --list-rules              print rule names

Exit codes: 0 clean, 1 findings, 2 usage/self-test failure.

Finding format (pinned by tests/test_determinism_lint.py):
    <path>:<line>: [<rule>] <message>
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = (
    "unordered-iteration",
    "raw-random",
    "omp-float-accum",
    "static-local",
    "raw-mutex",
)

CPP_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}

SUPPRESS_RE = re.compile(r"//\s*r4ncl-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line: str) -> str:
    """Blank out string/char literals and // comments so regexes cannot match
    inside them.  Block comments are handled coarsely (full-line only)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def suppressions(lines: list[str]) -> dict[int, tuple[str, str, int]]:
    """Maps 0-based line numbers covered by an allow() to (rule, reason,
    directive_line).  A directive covers its own line and the next line."""
    covered: dict[int, tuple[str, str, int]] = {}
    for i, line in enumerate(lines):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        covered[i] = (rule, reason, i)
        covered[i + 1] = (rule, reason, i)
    return covered


# --- rule implementations (each takes the file's lines, yields findings) ---

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([A-Za-z_][\w.\->]*)\s*\)")
BEGIN_CALL_RE = re.compile(r"([A-Za-z_][\w.\->]*)\s*(?:\.|->)\s*(?:c?begin|c?end)\s*\(")


def check_unordered_iteration(lines: list[str]):
    unordered_names: set[str] = set()
    for line in lines:
        code = strip_strings_and_comments(line)
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        names = []
        m = RANGE_FOR_RE.search(code)
        if m:
            names.append(m.group(1))
        for call in BEGIN_CALL_RE.finditer(code):
            names.append(call.group(1))
        for name in names:
            base = re.split(r"[.\->]", name)[-1] or name
            if base in unordered_names or name in unordered_names:
                yield Finding(
                    "", i + 1, "unordered-iteration",
                    f"iteration over unordered container '{base}' has "
                    "implementation-defined order; iterate a sorted key "
                    "vector (or an ordered container) instead",
                )
                break


RAW_RANDOM_RE = re.compile(
    r"std::random_device|std::s?rand\b|std::time\b|(?<![\w:.])(?:s?rand|time)\s*\("
)


def check_raw_random(lines: list[str], relpath: str):
    if relpath.replace("\\", "/").find("util/rng") != -1:
        return  # the seeded Rng implementation is the sanctioned home
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        m = RAW_RANDOM_RE.search(code)
        if m:
            yield Finding(
                "", i + 1, "raw-random",
                f"'{m.group(0).strip()}' bypasses the seeded util/rng "
                "streams; all randomness must be checkpointable and "
                "replayable from a recorded seed",
            )


OMP_REGION_RE = re.compile(r"#\s*pragma\s+omp|run_workers\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*(?:=|;|\{)")
COMPOUND_ASSIGN_RE = re.compile(r"(\w+(?:\[[^\]]*\])?)\s*(?:\+=|-=|\*=|/=)")
FIXED_ORDER_RE = re.compile(r"//.*fixed-order")


def region_end(lines: list[str], start: int) -> int:
    """End (exclusive) of the brace-balanced region opened at/after `start`."""
    depth = 0
    opened = False
    for j in range(start, len(lines)):
        code = strip_strings_and_comments(lines[j])
        depth += code.count("{") - code.count("}")
        if code.count("{"):
            opened = True
        if opened and depth <= 0:
            return j + 1
        if not opened and j > start + 2:
            return j + 1  # pragma followed by a braceless statement
    return len(lines)


def check_omp_float_accum(lines: list[str]):
    float_vars: set[str] = set()
    for line in lines:
        code = strip_strings_and_comments(line)
        for m in FLOAT_DECL_RE.finditer(code):
            float_vars.add(m.group(1))
    i = 0
    while i < len(lines):
        code = strip_strings_and_comments(lines[i])
        if not OMP_REGION_RE.search(code):
            i += 1
            continue
        end = region_end(lines, i)
        # The marker may sit inside the region or on the line introducing it.
        region_fixed = any(FIXED_ORDER_RE.search(lines[j])
                           for j in range(max(0, i - 1), end))
        if not region_fixed:
            for j in range(i, end):
                rcode = strip_strings_and_comments(lines[j])
                for m in COMPOUND_ASSIGN_RE.finditer(rcode):
                    var = m.group(1).split("[")[0]
                    if var in float_vars:
                        yield Finding(
                            "", j + 1, "omp-float-accum",
                            f"float accumulation into '{var}' inside a "
                            "parallel region: floating-point addition is not "
                            "associative, so the reduction order must be "
                            "pinned (add a `// ... fixed-order ...` comment "
                            "once it is)",
                        )
        i = end
    return


STATIC_LOCAL_RE = re.compile(r"^\s+static\s+(?!const\b|constexpr\b|_?assert)")


def check_static_local(lines: list[str], relpath: str):
    # Product code only: tests may stash fixture state in statics.
    if relpath.replace("\\", "/").startswith("tests/"):
        return
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not STATIC_LOCAL_RE.search(code):
            continue
        # Skip member-function / static-member *declarations*: a parameter
        # list opening before any initializer marks a function signature.
        paren = code.find("(")
        init = min((p for p in (code.find("="), code.find("{")) if p != -1),
                   default=-1)
        if paren != -1 and (init == -1 or paren < init):
            continue
        yield Finding(
            "", i + 1, "static-local",
            "mutable `static` local carries hidden cross-run state; hoist it "
            "into an owned object (or mark it const/constexpr)",
        )


RAW_MUTEX_RE = re.compile(r"\bstd::(?:recursive_)?mutex\s+(\w+)")


def check_raw_mutex(lines: list[str]):
    text = "\n".join(lines)
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        m = RAW_MUTEX_RE.search(code)
        if not m:
            continue
        name = m.group(1)
        if f"R4NCL_GUARDED_BY({name})" in text:
            continue
        yield Finding(
            "", i + 1, "raw-mutex",
            f"raw std::mutex '{name}' is invisible to -Wthread-safety; use "
            "util::Mutex and guard its state with R4NCL_GUARDED_BY",
        )


def lint_lines(lines: list[str], relpath: str) -> list[Finding]:
    """Lints one file's lines; returns unsuppressed findings plus suppression
    misuse findings.  `relpath` is the repo-relative path used in messages
    and in path-scoped rules."""
    raw: list[Finding] = []
    raw.extend(check_unordered_iteration(lines))
    raw.extend(check_raw_random(lines, relpath))
    raw.extend(check_omp_float_accum(lines))
    raw.extend(check_static_local(lines, relpath))
    raw.extend(check_raw_mutex(lines))

    covered = suppressions(lines)
    findings: list[Finding] = []
    used_directives: set[int] = set()

    for f in raw:
        entry = covered.get(f.line - 1)
        if entry and entry[0] == f.rule:
            used_directives.add(entry[2])
            if not entry[1]:
                findings.append(Finding(
                    relpath, entry[2] + 1, "bare-allow",
                    f"allow({f.rule}) without a reason: every suppression "
                    "must say why the construct is determinism-safe",
                ))
            continue
        f.path = relpath
        findings.append(f)

    # Misuse diagnostics: unknown rule names and directives that cover no
    # finding (stale suppressions rot into false documentation).
    for i, line in enumerate(lines):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule = m.group(1)
        if rule not in RULES:
            findings.append(Finding(
                relpath, i + 1, "unknown-rule",
                f"allow({rule}) names no linter rule (rules: {', '.join(RULES)})",
            ))
        elif i not in used_directives:
            findings.append(Finding(
                relpath, i + 1, "stale-allow",
                f"allow({rule}) suppresses nothing here; delete the stale "
                "directive",
            ))

    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def lint_file(path: Path, root: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(str(path), 0, "io-error", str(e))]
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    return lint_lines(text.splitlines(), rel.replace("\\", "/"))


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*") if q.suffix in CPP_SUFFIXES))
        elif p.suffix in CPP_SUFFIXES or p.is_file():
            files.append(p)
    return files


# --- self-test fixtures: (name, source, expected rule or None) -------------

SELF_TEST_FIXTURES = [
    ("bad_unordered_range_for", """\
#include <unordered_map>
std::unordered_map<int, float> scores;
float total() {
  float t = 0;
  for (const auto& [k, v] : scores) t += v;
  return t;
}
""", "unordered-iteration"),
    ("bad_unordered_begin", """\
#include <unordered_set>
std::unordered_set<int> seen;
int first() { return *seen.begin(); }
""", "unordered-iteration"),
    ("good_unordered_lookup", """\
#include <unordered_map>
std::unordered_map<int, float> scores;
float at(int k) { return scores.at(k); }
""", None),
    ("bad_rand", """\
#include <cstdlib>
int draw() { return rand() % 6; }
""", "raw-random"),
    ("bad_random_device", """\
#include <random>
unsigned seed() { return std::random_device{}(); }
""", "raw-random"),
    ("bad_time", """\
#include <ctime>
long stamp() { return time(nullptr); }
""", "raw-random"),
    ("good_elapsed_time_name", """\
double elapsed_time(double a);
double f() { return elapsed_time(1.0); }
""", None),
    ("bad_omp_accum", """\
void sum(const float* x, int n) {
  double acc = 0;
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
}
""", "omp-float-accum"),
    ("good_omp_fixed_order", """\
void sum(const float* x, int n) {
  double acc = 0;
  // per-chunk partials are combined in fixed-order below
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
}
""", None),
    ("bad_run_workers_accum", """\
#include "util/parallel.hpp"
void fleet(int n) {
  float total = 0;
  r4ncl::run_workers(4, [&](std::size_t w) {
    total += static_cast<float>(w);
  });
}
""", "omp-float-accum"),
    ("bad_static_local", """\
int counter() {
  static int calls = 0;
  return ++calls;
}
""", "static-local"),
    ("good_static_const", """\
int limit() {
  static const int cap = 64;
  static constexpr int floor_v = 2;
  return cap + floor_v;
}
""", None),
    ("bad_raw_mutex", """\
#include <mutex>
class Counter {
  std::mutex mu_;
  int n_ = 0;
};
""", "raw-mutex"),
    ("good_guarded_mutex", """\
#include <mutex>
#include "util/thread_annotations.hpp"
class Counter {
  std::mutex mu_;
  int n_ R4NCL_GUARDED_BY(mu_) = 0;
};
""", None),
    ("good_suppressed", """\
#include <unordered_map>
std::unordered_map<int, int> m;
int fold() {
  int t = 0;
  // r4ncl-lint: allow(unordered-iteration) addition is commutative over int
  for (const auto& [k, v] : m) t += v;
  return t;
}
""", None),
    ("bad_bare_allow", """\
#include <unordered_map>
std::unordered_map<int, int> m;
int fold() {
  int t = 0;
  // r4ncl-lint: allow(unordered-iteration)
  for (const auto& [k, v] : m) t += v;
  return t;
}
""", "bare-allow"),
    ("bad_stale_allow", """\
// r4ncl-lint: allow(raw-random) nothing random here
int f() { return 1; }
""", "stale-allow"),
    ("bad_unknown_rule", """\
// r4ncl-lint: allow(made-up-rule) reasons
int f() { return 1; }
""", "unknown-rule"),
]


def run_self_test() -> int:
    failures = 0
    for name, source, expected in SELF_TEST_FIXTURES:
        # static-local is src/-scoped, so fixtures lint as src/ files.
        findings = lint_lines(source.splitlines(), f"src/fixtures/{name}.cpp")
        rules = {f.rule for f in findings}
        if expected is None:
            if findings:
                print(f"SELF-TEST FAIL {name}: expected clean, got:")
                for f in findings:
                    print(f"  {f}")
                failures += 1
        elif expected not in rules:
            print(f"SELF-TEST FAIL {name}: expected [{expected}], got "
                  f"{sorted(rules) if rules else 'clean'}")
            failures += 1
        elif expected is not None and (rules - {expected}):
            print(f"SELF-TEST FAIL {name}: unexpected extra findings "
                  f"{sorted(rules - {expected})}")
            failures += 1
    total = len(SELF_TEST_FIXTURES)
    if failures:
        print(f"self-test: {failures}/{total} fixtures FAILED")
        return 2
    print(f"self-test: {total}/{total} fixtures passed")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root for relative paths and default dirs "
                             "(default: this script's ../../)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded good/bad fixtures")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0
    if args.self_test:
        return run_self_test()

    root = args.root or Path(__file__).resolve().parents[2]
    paths = args.paths or [root / "src", root / "bench", root / "examples"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    files = collect_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, root))
    for f in findings:
        print(f)
    if findings:
        print(f"determinism lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"determinism lint: clean ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
