// Walk-through of the paper's Fig. 7 compression/decompression mechanism and
// the latent-memory arithmetic behind Fig. 12.
//
// Prints: the exact Fig. 7 bit example, codec behaviour on a synthetic spike
// train, and the SpikingLR-vs-Replay4NCL storage comparison for each latent
// width of the paper's network.
#include <cstdio>
#include <string>

#include "compress/spike_codec.hpp"
#include "core/latent_buffer.hpp"
#include "util/rng.hpp"

using namespace r4ncl;

namespace {

std::string bits_to_string(const data::SpikeRaster& r) {
  std::string out;
  for (std::size_t t = 0; t < r.timesteps; ++t) {
    out += r.at(t, 0) ? '1' : '0';
    out += ' ';
  }
  return out;
}

data::SpikeRaster from_bits(std::initializer_list<int> bits) {
  data::SpikeRaster r(bits.size(), 1);
  std::size_t t = 0;
  for (int b : bits) r.set(t++, 0, b != 0);
  return r;
}

}  // namespace

int main() {
  // --- Fig. 7, bit-exact -------------------------------------------------
  const auto original = from_bits({1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0});
  const compress::CodecConfig fig7{.ratio = 2, .strategy = compress::CodecStrategy::kSubsample};
  const auto compressed = compress::compress(original, fig7);
  const auto decompressed = compress::decompress(compressed, original.timesteps, fig7);

  std::printf("Fig. 7 example (ratio 2, subsampling codec):\n");
  std::printf("  original     : %s\n", bits_to_string(original).c_str());
  std::printf("  compressed   : %s\n", bits_to_string(compressed).c_str());
  std::printf("  decompressed : %s\n", bits_to_string(decompressed).c_str());
  std::printf("  (spikes land on group starts; odd-step spikes are the loss)\n\n");

  // --- codec behaviour on a realistic spike train ------------------------
  Rng rng(7);
  data::SpikeRaster train(100, 1);
  for (std::size_t t = 0; t < 100; ++t) train.set(t, 0, rng.bernoulli(0.15));
  for (std::uint32_t ratio : {2u, 3u, 4u}) {
    const compress::CodecConfig cfg{.ratio = ratio,
                                    .strategy = compress::CodecStrategy::kSubsample};
    std::printf("ratio %u: %3zu -> %3zu timesteps, spike retention %.0f%%\n", ratio,
                train.timesteps, compress::compress(train, cfg).timesteps,
                100.0 * compress::spike_retention(train, cfg));
  }

  // --- Fig. 12 storage arithmetic ----------------------------------------
  std::printf("\nlatent storage per sample (paper network widths):\n");
  std::printf("%-8s %22s %22s %10s\n", "width", "SpikingLR (r=2 @T=100)",
              "Replay4NCL (raw @T=40)", "saving");
  Rng data_rng(9);
  for (std::size_t width : {200u, 100u, 50u}) {
    core::LatentReplayBuffer sota({.ratio = 2}, 100);
    core::LatentReplayBuffer r4ncl({.ratio = 1}, 40);
    data::SpikeRaster at100(100, width), at40(40, width);
    for (auto& b : at100.bits) b = data_rng.bernoulli(0.1) ? 1 : 0;
    for (auto& b : at40.bits) b = data_rng.bernoulli(0.1) ? 1 : 0;
    sota.add(at100, 0);
    r4ncl.add(at40, 0);
    const double saving =
        1.0 - static_cast<double>(r4ncl.memory_bytes()) / sota.memory_bytes();
    std::printf("%-8zu %16zu bytes %16zu bytes %9.2f%%\n", width, sota.memory_bytes(),
                r4ncl.memory_bytes(), 100.0 * saving);
  }
  std::printf("\n(50 stored bit-columns vs 40 → ≈20%% saving, modulated by the\n"
              "per-sample header; the paper reports 20–21.88%%.)\n");

  // --- quantized payload path (Ravaglia et al.) --------------------------
  // latent_bits stores each group's spike *count* instead of a strategy bit:
  // 8 bits is lossless in count terms; narrower codes shrink storage
  // proportionally at bounded count error — the sub-byte knob that stretches
  // a fixed replay byte budget.
  data::SpikeRaster wide(100, 8);
  for (auto& b : wide.bits) b = rng.bernoulli(0.15) ? 1 : 0;
  std::printf("\nquantized group counts (ratio 4, T=100, 8 channels):\n");
  std::printf("%-6s %14s %16s\n", "bits", "payload bytes", "spike retention");
  for (const std::uint8_t bits : {std::uint8_t{8}, std::uint8_t{4}, std::uint8_t{2},
                                  std::uint8_t{1}}) {
    const compress::CodecConfig cfg{.ratio = 4, .latent_bits = bits};
    const auto packed = compress::compress_packed(wide, cfg);
    std::printf("%-6d %14zu %15.0f%%\n", bits, packed.payload_bytes(),
                100.0 * compress::spike_retention(wide, cfg));
  }
  std::printf("(the legacy subsample strategy at ratio 4 retains %.0f%%)\n",
              100.0 * compress::spike_retention(
                          wide, {.ratio = 4,
                                 .strategy = compress::CodecStrategy::kSubsample}));
  return 0;
}
