// Quickstart: the public API in ~50 lines.
//
// 1. Build the paper's scenario (700-channel synthetic SHD, 4-layer
//    recurrent SNN) at half scale — pre-training takes ~15 s and is cached
//    as a checkpoint for subsequent runs.
// 2. Learn the held-out 20th class with Replay4NCL.
// 3. Report accuracy and the modelled latency/energy/memory costs.
//
// Run:  ./quickstart                        (defaults)
//       ./quickstart scale=1.0 epochs=40    (full-size scenario)
#include <cstdio>

#include "core/experiment.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  // --- 1: dataset + network + pre-training (checkpoint-cached) -----------
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg);
  const core::ScopedMetrics metrics(cfg);
  if (!cfg.get("scale")) cfg.set("scale", "0.5");
  core::PretrainedScenario scenario = core::standard_scenario(cfg);
  std::printf("pre-trained on %zu old classes: test accuracy %.1f%%\n",
              scenario.tasks.old_classes.size(), 100.0 * scenario.pretrain_accuracy);

  // --- 2: continual learning with Replay4NCL -----------------------------
  core::ClRunConfig run;
  run.method = core::bench_replay4ncl();  // T* = 40, adaptive Vthr, reduced η
  run.method.lr_cl = 5e-4f;  // η rescaled for the half-size dataset (fewer steps/epoch)
  run.insertion_layer = 2;   // latent replay enters hidden layer 2
  run.epochs = static_cast<std::size_t>(cfg.get_int("epochs", 40));
  run.eval_every = 10;

  const core::ClRunResult result =
      core::run_continual_learning(scenario.net, scenario.tasks, run);

  // --- 3: report ----------------------------------------------------------
  std::printf("\nafter Replay4NCL continual learning (insertion layer %zu):\n",
              run.insertion_layer);
  std::printf("  old-task accuracy : %.1f%%\n", 100.0 * result.final_acc_old);
  std::printf("  new-task accuracy : %.1f%%\n", 100.0 * result.final_acc_new);
  std::printf("  latent memory     : %zu bytes\n", result.latent_memory_bytes);
  std::printf("  modelled latency  : %.1f ms\n", result.total_latency_ms());
  std::printf("  modelled energy   : %.1f uJ\n", result.total_energy_uj());
  return 0;
}
