// Interactive version of the paper's Sec. III-A timestep exploration.
//
// Evaluates a pre-trained network at user-selected timestep settings, with
// fixed and adaptive thresholds, and prints the accuracy / modelled-latency
// trade-off — the analysis that leads to the paper's choice of T* = 40.
//
// Usage: ./timestep_explorer [timesteps=100,60,40,20] [scale=0.5]
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/cost_model.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

namespace {

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long v = std::stol(tok);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"timesteps"});
  const core::ScopedMetrics metrics(cfg);
  Config scaled = cfg;
  if (!cfg.get("scale")) scaled.set("scale", "0.5");
  core::PretrainedScenario scenario = core::standard_scenario(scaled);

  const auto settings = parse_list(scaled.get_string("timesteps", "100,60,40,20"));
  const metrics::LatencyModel latency_model;

  std::printf("\n%-10s %14s %16s %18s %14s\n", "timesteps", "old-task(fix)",
              "old-task(adapt)", "inference latency", "vs T=100");
  double reference = 0.0;
  for (std::size_t T : settings) {
    const data::Dataset test = data::time_rescale(
        scenario.tasks.pretrain_test, T, data::TimeRescaleMethod::kSubsample);

    snn::SpikeOpStats stats;
    const double acc_fixed =
        snn::evaluate(scenario.net, test, 0, snn::ThresholdPolicy::fixed(1.0f), 32, &stats);
    const double acc_adaptive = snn::evaluate(
        scenario.net, test, 0, snn::ThresholdPolicy::adaptive(static_cast<int>(T)));
    const double lat = latency_model.latency_ms(stats);
    if (reference == 0.0) reference = lat;
    std::printf("%-10zu %13.1f%% %15.1f%% %15.2f ms %13.2fx\n", T, 100.0 * acc_fixed,
                100.0 * acc_adaptive, lat, lat / reference);
  }

  std::printf("\nreading the table: pick the smallest T whose fixed-threshold accuracy\n"
              "is still acceptable (the paper picks T*=40, its Observation B), then\n"
              "recover the residual loss with Replay4NCL's parameter adjustments\n"
              "during continual-learning training (Sec. III-B).\n");
  return 0;
}
