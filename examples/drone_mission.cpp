// The paper's Fig. 1(b) use case: an SNN-based autonomous mobile agent
// (e.g. a drone) deployed in remote dynamic environments.
//
// Mission storyline:
//   1. The drone ships with a sound classifier pre-trained on 19 known
//      acoustic event classes (SHD-like spike streams from its sensor).
//   2. In the field it encounters a new event class (class 19) and must
//      learn it on-device — under a tight energy and memory budget, without
//      forgetting the 19 known classes.
//   3. We compare three adaptation strategies the drone could use:
//      naive fine-tuning (forgets), SpikingLR (expensive), and Replay4NCL.
//
// The example prints a mission report with the accuracy/latency/energy/
// memory trade-offs.  Uses a reduced-scale dataset so it runs in ~2 minutes;
// pass scale=1.0 epochs=40 for the full-size scenario.
//
// Mid-mission power loss: the Replay4NCL adaptation (the strategy the drone
// would actually deploy) honours the standard checkpoint knobs —
//   drone_mission checkpoint=leg.ckpt stop_after=5
//   drone_mission resume=leg.ckpt
// The first invocation saves full state after 5 adaptation epochs and lands;
// the relaunched mission resumes and finishes bit-identical to one that was
// never interrupted.
#include <cstdio>
#include <exception>

#include "core/experiment.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

namespace {

int run_main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"stop_after"});
  const core::ScopedMetrics metrics(cfg);
  // Checkpoint knobs validate eagerly, before the (expensive) pre-training.
  core::CheckpointOptions ckpt = core::checkpoint_options_from(cfg);
  const long long stop_after = cfg.get_int("stop_after", 0);
  R4NCL_CHECK(stop_after >= 0,
              "stop_after=" << stop_after << " must be a non-negative epoch count");
  R4NCL_CHECK(stop_after == 0 || ckpt.saving(),
              "stop_after=" << stop_after << " requires checkpoint=<path>");
  ckpt.stop_after_units = static_cast<std::size_t>(stop_after);

  Config scaled = cfg;
  if (!cfg.get("scale")) scaled.set("scale", "0.5");  // default: half-size mission
  core::PretrainedScenario scenario = core::standard_scenario(scaled);

  const std::size_t epochs =
      static_cast<std::size_t>(scaled.get_int("epochs", 60));
  const std::size_t insertion_layer = 3;  // cheapest on-device option

  std::printf("\n=== drone mission report ===\n");
  std::printf("pre-deployment: %zu known classes, Top-1 %.1f%%\n",
              scenario.tasks.old_classes.size(), 100.0 * scenario.pretrain_accuracy);
  std::printf("field event: new class %d observed (%zu training encounters)\n\n",
              scenario.tasks.new_class, scenario.tasks.new_train.size());

  struct Strategy {
    const char* name;
    core::NclMethodConfig method;
    std::size_t insertion;
    /// Checkpoint/resume applies only to the deployed strategy (Replay4NCL);
    /// the comparison baselines always run fresh.
    bool checkpointed;
  };
  core::NclMethodConfig r4ncl = core::bench_replay4ncl();
  // Half-size mission → half the optimizer steps per epoch; rescale η as
  // documented in core/experiment.hpp.
  r4ncl.lr_cl = 5e-4f;
  const Strategy strategies[] = {
      {"naive fine-tune", core::NclMethodConfig::naive_baseline(), 0, false},
      {"SpikingLR", core::bench_spiking_lr(), insertion_layer, false},
      {"Replay4NCL", r4ncl, insertion_layer, true},
  };
  if (ckpt.resuming()) {
    std::printf("relaunch: resuming the Replay4NCL adaptation from %s\n\n",
                ckpt.resume_path.c_str());
  }

  bool stopped_early = false;
  std::printf("%-16s %10s %10s %12s %12s %12s\n", "strategy", "old-task", "new-task",
              "latency[ms]", "energy[uJ]", "memory[B]");
  for (const Strategy& s : strategies) {
    snn::SnnNetwork net = scenario.net.clone();
    core::ClRunConfig run;
    run.method = s.method;
    run.insertion_layer = s.insertion;
    run.epochs = epochs;
    run.eval_every = epochs;  // only the post-adaptation state matters here
    const core::ClRunResult res =
        s.checkpointed
            ? core::run_continual_learning(net, scenario.tasks, run, ckpt)
            : core::run_continual_learning(net, scenario.tasks, run);
    std::printf("%-16s %9.1f%% %9.1f%% %12.1f %12.1f %12zu\n", s.name,
                100.0 * res.final_acc_old, 100.0 * res.final_acc_new,
                res.total_latency_ms(), res.total_energy_uj(), res.latent_memory_bytes);
    if (s.checkpointed && res.rows.size() < epochs) stopped_early = true;
  }

  if (stopped_early) {
    std::printf("\nmission leg complete: Replay4NCL powered down after %zu epoch(s);\n"
                "full adaptation state saved to %s — relaunch with resume= to finish.\n",
                ckpt.stop_after_units, ckpt.save_path.c_str());
    return 0;
  }
  std::printf("\nverdict: Replay4NCL keeps the known-class accuracy of replay methods\n"
              "at a fraction of the adaptation latency/energy, fitting the drone's\n"
              "on-device budget (the naive strategy forgets the known classes).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Exit 2 = pinned r4ncl::Error (bad CLI values, corrupt/mismatched
  // checkpoint), distinct from crashes and sanitizer aborts.
  try {
    return run_main(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
