// Deployment feasibility report: maps the paper's SNN and each method's
// latent-replay buffer onto a Loihi-class neuromorphic chip budget.
//
// No training involved — pure resource arithmetic — so this runs instantly
// and shows how the 20% latent-memory saving translates into on-chip SRAM
// headroom for the embedded targets the paper motivates.
#include <cstdio>

#include "core/latent_buffer.hpp"
#include "metrics/hw_mapper.hpp"
#include "util/rng.hpp"

using namespace r4ncl;

namespace {

/// Latent buffer bytes for a method storing `columns` bit-columns per sample
/// at the given layer width (19 old classes × 2 replay samples).
std::size_t buffer_bytes(std::size_t width, std::size_t timesteps, std::uint32_t ratio) {
  core::LatentReplayBuffer buffer({.ratio = ratio}, timesteps);
  Rng rng(1);
  for (int i = 0; i < 38; ++i) {
    data::SpikeRaster r(timesteps, width);
    for (auto& b : r.bits) b = rng.bernoulli(0.1) ? 1 : 0;
    buffer.add(r, i % 19);
  }
  return buffer.memory_bytes();
}

}  // namespace

int main() {
  const snn::SnnNetwork net{snn::NetworkConfig{}};
  const metrics::ChipBudget chip;  // Loihi-class defaults

  std::printf("network: 700 -> 200 -> 100 -> 50 -> 20 (recurrent hidden layers)\n");
  std::printf("chip   : %u cores, %u neurons/core, %llu KB synapse mem/core, %llu KB SRAM\n\n",
              chip.cores, chip.neurons_per_core,
              static_cast<unsigned long long>(chip.synapse_bits_per_core / 8 / 1024),
              static_cast<unsigned long long>(chip.shared_sram_bytes / 1024));

  const metrics::MappingResult base = metrics::map_network(net, 0, chip);
  std::printf("%-8s %8s %8s %8s %12s\n", "layer", "neurons", "fan-in", "cores", "syn fill");
  for (const auto& p : base.layers) {
    std::printf("%-8zu %8zu %8zu %8u %11.1f%%\n", p.layer, p.neurons, p.fan_in, p.cores_used,
                100.0 * p.synapse_fill);
  }
  std::printf("total cores: %u / %u (%.1f%% of the chip)\n\n", base.total_cores, chip.cores,
              100.0 * base.core_utilisation);

  std::printf("latent buffer vs shared SRAM (%llu KB), insertion layer 3 (width 50):\n",
              static_cast<unsigned long long>(chip.shared_sram_bytes / 1024));
  struct Row {
    const char* method;
    std::size_t bytes;
  };
  const Row rows[] = {
      {"SpikingLR (codec r=2 @ T=100)", buffer_bytes(50, 100, 2)},
      {"Replay4NCL (raw @ T*=40)", buffer_bytes(50, 40, 1)},
  };
  for (const Row& r : rows) {
    const metrics::MappingResult m = metrics::map_network(net, r.bytes, chip);
    std::printf("  %-30s %6zu B  -> %5.1f%% of SRAM, fits=%s\n", r.method, r.bytes,
                100.0 * static_cast<double>(r.bytes) /
                    static_cast<double>(chip.shared_sram_bytes),
                m.latent_fits_sram ? "yes" : "NO");
  }
  std::printf("\nthe ~20%% latent-memory saving is headroom for more replay samples —\n"
              "or for the next task's buffer in the sequential-stream setting.\n");
  return 0;
}
