// Deployment feasibility report: maps the paper's SNN and each method's
// latent-replay buffer onto a Loihi-class neuromorphic chip budget.
//
// Part 1 is pure resource arithmetic — no training — showing how the 20%
// latent-memory saving translates into on-chip SRAM headroom for the
// embedded targets the paper motivates.
//
// Part 2 is the power-cycle drill those targets actually face: a mission is
// killed mid-stream, the device reboots with *blank* weights, and the run
// must resume from its checkpoint and finish bit-identical to a run that
// was never interrupted.  The drill executes a tiny sequential scenario
// three ways (uninterrupted / killed-after-one-task / resumed-from-disk),
// compares every result row exactly, and reports the checkpoint footprint
// against the chip's shared SRAM.  The report exits 1 on any divergence,
// so CI runs it as a self-checking test (ctest -L resume_smoke).
//
// Run:  ./deployment_report              (report + drill)
//       ./deployment_report drill=0      (resource report only)
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "core/latent_buffer.hpp"
#include "core/pretrain.hpp"
#include "core/sequential.hpp"
#include "metrics/hw_mapper.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace r4ncl;

namespace {

/// Latent buffer bytes for a method storing `columns` bit-columns per sample
/// at the given layer width (19 old classes × 2 replay samples).
std::size_t buffer_bytes(std::size_t width, std::size_t timesteps, std::uint32_t ratio) {
  core::LatentReplayBuffer buffer({.ratio = ratio}, timesteps);
  Rng rng(1);
  for (int i = 0; i < 38; ++i) {
    data::SpikeRaster r(timesteps, width);
    for (auto& b : r.bits) b = rng.bernoulli(0.1) ? 1 : 0;
    buffer.add(r, i % 19);
  }
  return buffer.memory_bytes();
}

/// Tiny deterministic scenario for the drill (same shape as the integration
/// tests: 96-48-24-12 network, 6 classes, 24 timesteps) — small enough that
/// three full runs stay in report territory, not bench territory.
core::PretrainConfig drill_config() {
  core::PretrainConfig cfg;
  cfg.network.layer_sizes = {96, 48, 24, 12};
  cfg.network.num_classes = 6;
  cfg.network.seed = 31;
  cfg.data_params.channels = 96;
  cfg.data_params.classes = 6;
  cfg.data_params.timesteps = 24;
  cfg.data_params.seed = 37;
  cfg.split.train_per_class = 8;
  cfg.split.test_per_class = 4;
  cfg.split.replay_per_class = 2;
  cfg.split.seed = 41;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  return cfg;
}

snn::SnnNetwork drill_pretrained(const data::SequentialTasks& tasks) {
  snn::SnnNetwork net(drill_config().network);
  snn::AdamOptimizer opt;
  snn::TrainOptions opts;
  opts.epochs = drill_config().epochs;
  opts.batch_size = drill_config().batch_size;
  (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  return net;
}

core::SequentialRunConfig drill_run() {
  core::SequentialRunConfig cfg;
  cfg.method = core::NclMethodConfig::replay4ncl(12);
  cfg.method.lr_cl = 5e-4f;
  cfg.method.batch_size = 8;
  cfg.insertion_layer = 1;
  cfg.epochs_per_task = 3;
  cfg.replay_per_new_class = 2;
  return cfg;
}

/// Exact comparison of two result-row tables.  Every field participates —
/// accuracies, buffer accounting, and the modelled latency/energy are all
/// deterministic functions of the restored state, so "close enough" would
/// hide a real divergence.
bool rows_identical(const std::vector<core::SequentialTaskRow>& a,
                    const std::vector<core::SequentialTaskRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.task_index != y.task_index || x.class_id != y.class_id ||
        x.acc_base != y.acc_base || x.acc_learned != y.acc_learned ||
        x.acc_current != y.acc_current ||
        x.latent_memory_bytes != y.latent_memory_bytes ||
        x.budget_bytes != y.budget_bytes || x.buffer_entries != y.buffer_entries ||
        x.buffer_evictions != y.buffer_evictions || x.latency_ms != y.latency_ms ||
        x.energy_uj != y.energy_uj) {
      return false;
    }
  }
  return true;
}

bool tensor_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::equal(a.values().begin(), a.values().end(), b.values().begin());
}

bool weights_identical(const snn::SnnNetwork& a, const snn::SnnNetwork& b) {
  if (!tensor_equal(a.readout().w(), b.readout().w())) return false;
  for (std::size_t i = 0; i < a.num_hidden(); ++i) {
    if (!tensor_equal(a.hidden(i).w_ff(), b.hidden(i).w_ff())) return false;
    if (a.hidden(i).lif().recurrent &&
        !tensor_equal(a.hidden(i).w_rec(), b.hidden(i).w_rec())) {
      return false;
    }
  }
  return true;
}

int run_drill(const metrics::ChipBudget& chip) {
  std::printf("power-cycle drill (tiny 96-48-24-12 scenario, 2-task stream):\n");
  const data::SyntheticShdGenerator gen(drill_config().data_params);
  const data::SequentialTasks tasks =
      data::build_sequential_tasks(gen, drill_config().split, 2);

  // Reference: the mission is never interrupted.
  snn::SnnNetwork ref_net = drill_pretrained(tasks);
  const core::SequentialRunResult ref = core::run_sequential(ref_net, tasks, drill_run());

  // Mission leg 1: identical start, but the power is cut after one task —
  // the engine force-saves a checkpoint and returns the partial result.
  const std::string path =
      (std::filesystem::temp_directory_path() / "deployment_report_drill.ckpt").string();
  snn::SnnNetwork first = drill_pretrained(tasks);
  core::CheckpointOptions save_opts;
  save_opts.save_path = path;
  save_opts.stop_after_units = 1;
  const core::SequentialRunResult partial =
      core::run_sequential(first, tasks, drill_run(), save_opts);
  const std::uintmax_t ckpt_bytes = std::filesystem::file_size(path);

  // Mission leg 2: reboot.  The replacement process starts from *blank*
  // weights — everything it needs (weights, buffer, rng streams, completed
  // rows) must come off the checkpoint.
  snn::SnnNetwork second(drill_config().network);
  core::CheckpointOptions resume_opts;
  resume_opts.resume_path = path;
  const core::SequentialRunResult resumed =
      core::run_sequential(second, tasks, drill_run(), resume_opts);
  std::filesystem::remove(path);

  std::printf("  checkpoint: %llu bytes after task 1 -> %.1f%% of shared SRAM, fits=%s\n",
              static_cast<unsigned long long>(ckpt_bytes),
              100.0 * static_cast<double>(ckpt_bytes) /
                  static_cast<double>(chip.shared_sram_bytes),
              ckpt_bytes <= chip.shared_sram_bytes ? "yes" : "NO");

  bool ok = true;
  if (partial.rows.size() != 1) {
    std::printf("  FAIL: interrupted leg ran %zu task(s), expected 1\n", partial.rows.size());
    ok = false;
  }
  if (!rows_identical(resumed.rows, ref.rows)) {
    std::printf("  FAIL: resumed rows diverge from the uninterrupted run\n");
    ok = false;
  }
  if (resumed.total_latency_ms != ref.total_latency_ms ||
      resumed.total_energy_uj != ref.total_energy_uj) {
    std::printf("  FAIL: resumed cost totals diverge from the uninterrupted run\n");
    ok = false;
  }
  if (!weights_identical(second, ref_net)) {
    std::printf("  FAIL: resumed weights diverge from the uninterrupted run\n");
    ok = false;
  }
  if (ok) {
    std::printf("  resume is bit-identical: %zu/%zu rows, cost totals and all weights "
                "match the uninterrupted run\n",
                resumed.rows.size(), ref.rows.size());
  }
  return ok ? 0 : 1;
}

int run_main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string_view known[] = {"drill", "metrics_out", "trace"};
  cfg.validate_keys(known);
  const core::ScopedMetrics metrics(cfg);

  const snn::SnnNetwork net{snn::NetworkConfig{}};
  const metrics::ChipBudget chip;  // Loihi-class defaults

  std::printf("network: 700 -> 200 -> 100 -> 50 -> 20 (recurrent hidden layers)\n");
  std::printf("chip   : %u cores, %u neurons/core, %llu KB synapse mem/core, %llu KB SRAM\n\n",
              chip.cores, chip.neurons_per_core,
              static_cast<unsigned long long>(chip.synapse_bits_per_core / 8 / 1024),
              static_cast<unsigned long long>(chip.shared_sram_bytes / 1024));

  const metrics::MappingResult base = metrics::map_network(net, 0, chip);
  std::printf("%-8s %8s %8s %8s %12s\n", "layer", "neurons", "fan-in", "cores", "syn fill");
  for (const auto& p : base.layers) {
    std::printf("%-8zu %8zu %8zu %8u %11.1f%%\n", p.layer, p.neurons, p.fan_in, p.cores_used,
                100.0 * p.synapse_fill);
  }
  std::printf("total cores: %u / %u (%.1f%% of the chip)\n\n", base.total_cores, chip.cores,
              100.0 * base.core_utilisation);

  std::printf("latent buffer vs shared SRAM (%llu KB), insertion layer 3 (width 50):\n",
              static_cast<unsigned long long>(chip.shared_sram_bytes / 1024));
  struct Row {
    const char* method;
    std::size_t bytes;
  };
  const Row rows[] = {
      {"SpikingLR (codec r=2 @ T=100)", buffer_bytes(50, 100, 2)},
      {"Replay4NCL (raw @ T*=40)", buffer_bytes(50, 40, 1)},
  };
  for (const Row& r : rows) {
    const metrics::MappingResult m = metrics::map_network(net, r.bytes, chip);
    std::printf("  %-30s %6zu B  -> %5.1f%% of SRAM, fits=%s\n", r.method, r.bytes,
                100.0 * static_cast<double>(r.bytes) /
                    static_cast<double>(chip.shared_sram_bytes),
                m.latent_fits_sram ? "yes" : "NO");
  }
  std::printf("\nthe ~20%% latent-memory saving is headroom for more replay samples —\n"
              "or for the next task's buffer in the sequential-stream setting.\n\n");

  if (!cfg.get_bool("drill", true)) return 0;
  return run_drill(chip);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
