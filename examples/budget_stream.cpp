// Budgeted long-stream demo: latent replay under a fixed byte budget.
//
// A mobile agent keeps meeting new classes (the paper's Fig. 1(b) setting)
// but its latent-replay region is a fixed memory block.  This example
// 1. sizes the budget from a probe of the per-entry footprint (default:
//    room for the base latents plus ~3 tasks of recordings),
// 2. runs a long sequential stream with that budget and the chosen policy,
// 3. prints per-task memory/accuracy rows — the buffer saturates instead of
//    growing — plus the final per-class occupancy of a standalone buffer fed
//    the same stream of labels, to show what each policy retains.
//
// Run:  ./budget_stream                             (defaults: 6 tasks, reservoir)
//       ./budget_stream tasks=8 policy=fifo
//       ./budget_stream budget=4096 policy=class_balanced epochs=4
//       ./budget_stream latent_bits=2 tasks=8       (sub-byte quantized latents)
//       ./budget_stream replay_stream=1 replay_samples=8   (streamed replay:
//           the per-epoch draw decodes one training batch at a time instead
//           of materializing every raster up front — same entries, same
//           accuracy, bounded replay-assembly memory)
//       ./budget_stream policy=low_importance tasks=8      (importance-aware
//           eviction: spike density at insert, overridden by the trainer's
//           per-sample error feedback)
//       ./budget_stream budget_schedule=linear:16384:4096 policy=low_importance
//           (the budget shrinks at every task boundary — another subsystem
//           claiming the replay region — with deterministic re-eviction)
//       ./budget_stream checkpoint=run.ckpt stop_after=2 tasks=6
//       ./budget_stream resume=run.ckpt checkpoint=run.ckpt tasks=6
//           (power-cycle drill: the first invocation saves a full-state
//           checkpoint after 2 tasks and exits; the second — a fresh
//           process — resumes and finishes bit-identical to an
//           uninterrupted run.  tools/run_resume_smoke.py automates this.)
#include <cstdio>
#include <exception>

#include "core/experiment.hpp"
#include "core/sequential.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

namespace {

int run_main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"tasks", "stop_after"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t num_tasks = static_cast<std::size_t>(cfg.get_int("tasks", 6));
  const core::ReplayPolicy policy =
      core::parse_replay_policy(cfg.get_string("policy", "reservoir"));
  // Checkpoint knobs validate eagerly — a bad cadence or a stop_after
  // without a checkpoint path fails before any pre-training runs.
  core::CheckpointOptions ckpt = core::checkpoint_options_from(cfg);
  const long long stop_after = cfg.get_int("stop_after", 0);
  R4NCL_CHECK(stop_after >= 0,
              "stop_after=" << stop_after << " must be a non-negative task count");
  R4NCL_CHECK(stop_after == 0 || ckpt.saving(),
              "stop_after=" << stop_after << " requires checkpoint=<path>");
  ckpt.stop_after_units = static_cast<std::size_t>(stop_after);

  core::PretrainConfig pc = core::pretrain_config_from(cfg);
  const data::SyntheticShdGenerator generator(pc.data_params);
  const data::SequentialTasks tasks =
      data::build_sequential_tasks(generator, pc.split, num_tasks);

  std::printf("pre-training on %zu base classes (stream of %zu arriving classes)...\n",
              tasks.base_classes.size(), num_tasks);
  snn::SnnNetwork net{pc.network};
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    opts.lr = pc.lr;
    (void)snn::train_supervised(net, tasks.pretrain_train, opt, opts);
  }

  core::SequentialRunConfig run;
  run.method = core::bench_replay4ncl();
  core::apply_replay_overrides(run.method, cfg);
  run.insertion_layer = 2;
  run.epochs_per_task = static_cast<std::size_t>(cfg.get_int("epochs", 8));
  run.replay_per_new_class = pc.split.replay_per_class;
  run.method.replay_budget.policy = policy;

  if (run.method.replay_budget.capacity_bytes == 0) {
    // Probe the per-entry footprint at the insertion layer and grant the
    // buffer the base latents plus ~3 tasks of per-class recordings.
    core::LatentReplayBuffer probe(run.method.storage_codec, run.method.cl_timesteps);
    const data::Dataset rescaled = data::time_rescale(
        tasks.replay_subset, run.method.cl_timesteps, run.method.rescale);
    const Tensor latent = net.run_hidden(data::raster_to_batch(rescaled.front().raster), 0,
                                         run.insertion_layer, run.method.policy(), nullptr);
    probe.add(data::batch_to_raster(latent, 0), rescaled.front().label);
    const std::size_t entry = probe.memory_bytes();
    run.method.replay_budget.capacity_bytes =
        entry * (tasks.replay_subset.size() + 3 * run.replay_per_new_class);
  }
  const std::size_t budget = run.method.replay_budget.capacity_bytes;
  if (run.method.budget_schedule.active()) {
    std::printf("budget schedule: %s (re-applied at every task boundary)\n",
                run.method.budget_schedule.spec().c_str());
  }
  if (run.method.replay_stream) {
    std::printf("replay draw: streamed (ReplayStream fused into batch assembly, "
                "%zu samples/epoch, batches of %zu)\n",
                run.method.replay_samples_per_epoch, run.method.batch_size);
  }
  if (run.method.storage_codec.quantized()) {
    std::printf("replay budget: %zu bytes, policy %s, latents quantized to %d bits\n\n",
                budget, std::string(core::to_string(policy)).c_str(),
                int(run.method.storage_codec.latent_bits));
  } else {
    std::printf("replay budget: %zu bytes, policy %s, legacy binary latents\n\n", budget,
                std::string(core::to_string(policy)).c_str());
  }

  if (ckpt.resuming()) {
    std::printf("resuming from %s\n", ckpt.resume_path.c_str());
  }
  const core::SequentialRunResult res = core::run_sequential(net, tasks, run, ckpt);
  std::printf("task class  mem[B]/budget  entries evicted  acc_base acc_stream\n");
  for (const auto& row : res.rows) {
    // row.budget_bytes is the cap actually in force for this task — it
    // tracks the schedule when one is active and equals `budget` otherwise.
    std::printf("%4zu %5d  %6zu/%-6zu  %7zu %7zu  %7.1f%% %9.1f%%\n", row.task_index,
                row.class_id, row.latent_memory_bytes, row.budget_bytes,
                row.buffer_entries, row.buffer_evictions, 100.0 * row.acc_base,
                100.0 * row.acc_learned);
    if (row.budget_bytes > 0 && row.latent_memory_bytes > row.budget_bytes) {
      std::printf("BUG: budget exceeded\n");
      return 1;
    }
  }
  if (res.rows.size() < num_tasks) {
    // stop_after power-down: the checkpoint carries everything; a fresh
    // process with resume= picks up at the next task.
    std::printf("\nstopped after %zu/%zu tasks; checkpoint saved to %s\n",
                res.rows.size(), num_tasks, ckpt.save_path.c_str());
    return 0;
  }

  // Occupancy view: feed the same label stream into a standalone buffer
  // with room for only half the stream, so the eviction policy must choose.
  data::SpikeRaster blank(run.method.cl_timesteps, 32);
  const std::size_t stream_len =
      tasks.replay_subset.size() + num_tasks * run.replay_per_new_class;
  core::ReplayBufferConfig demo_budget = run.method.replay_budget;
  {
    core::LatentReplayBuffer probe(run.method.storage_codec, run.method.cl_timesteps);
    probe.add(blank, 0);
    demo_budget.capacity_bytes = probe.memory_bytes() * (stream_len / 2);
  }
  core::LatentReplayBuffer occupancy(run.method.storage_codec, run.method.cl_timesteps,
                                     demo_budget);
  for (const auto& s : tasks.replay_subset) (void)occupancy.add(blank, s.label);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    for (std::size_t i = 0; i < run.replay_per_new_class; ++i) {
      (void)occupancy.add(blank, tasks.task_classes[t]);
    }
  }
  std::printf("\nper-class occupancy of a %s buffer fed the same label stream:\n",
              std::string(core::to_string(policy)).c_str());
  for (const auto& [label, count] : occupancy.class_occupancy()) {
    std::printf("  class %2d: %zu\n", label, count);
  }
  std::printf("stream seen %zu, stored %zu, evicted %zu\n", occupancy.stream_seen(),
              occupancy.size(), occupancy.evictions());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Exit 2 distinguishes the pinned r4ncl::Error path (bad CLI values, a
  // corrupt/mismatched checkpoint) from crashes and sanitizer aborts — the
  // corruption sweep in tools/run_resume_smoke.py keys off it.
  try {
    return run_main(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
