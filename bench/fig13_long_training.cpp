// Fig. 13: long-training comparison (paper: 150 epochs, LR layer 3).
//
// New-task accuracy profile of SpikingLR vs Replay4NCL over a long CL run:
// the paper's point is that Replay4NCL's lower learning rate yields smoother,
// better-converging curves.  Default 100 epochs here (override epochs=150
// for the paper's exact span).
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(100);
  const std::size_t layer = 3;

  const core::ClRunResult sota =
      bench::run_method(ctx, core::bench_spiking_lr(), layer, epochs, 4);
  const core::ClRunResult r4ncl =
      bench::run_method(ctx, core::bench_replay4ncl(), layer, epochs, 4);

  ResultTable table({"epoch", "sota_new", "r4ncl_new", "sota_old", "r4ncl_old"});
  for (std::size_t e = 0; e < epochs; ++e) {
    if (sota.rows[e].acc_new < 0.0 || r4ncl.rows[e].acc_new < 0.0) continue;
    table.add_row();
    table.push(static_cast<long long>(e));
    table.push(bench::pct(sota.rows[e].acc_new));
    table.push(bench::pct(r4ncl.rows[e].acc_new));
    table.push(bench::pct(sota.rows[e].acc_old));
    table.push(bench::pct(r4ncl.rows[e].acc_old));
  }
  bench::emit(table, "fig13_long_training",
              "Fig 13: new-task accuracy over a long training period (LR layer 3) [%]");

  // Curve smoothness: mean absolute epoch-to-epoch change of new-task
  // accuracy (the paper argues R4NCL's lower η gives a smoother curve).
  auto roughness = [](const core::ClRunResult& res) {
    double total = 0.0;
    std::size_t count = 0;
    double prev = -1.0;
    for (const auto& row : res.rows) {
      if (row.acc_new < 0.0) continue;
      if (prev >= 0.0) {
        total += std::abs(row.acc_new - prev);
        ++count;
      }
      prev = row.acc_new;
    }
    return count > 0 ? total / static_cast<double>(count) : 0.0;
  };
  std::printf("\nSummary: final new-task %s%% (SOTA) vs %s%% (R4NCL); curve roughness "
              "%.4f vs %.4f (lower = smoother convergence)\n",
              bench::pct(sota.final_acc_new).c_str(), bench::pct(r4ncl.final_acc_new).c_str(),
              roughness(sota), roughness(r4ncl));
  return 0;
}
