// Fig. 10: SpikingLR vs Replay4NCL across LR insertion layers 0–3.
//
// (a) Top-1 accuracy for old and new tasks per layer and method;
// (b) processing time normalized to SpikingLR at insertion layer 0;
// (c) energy consumption normalized likewise.
// Paper shapes: comparable accuracy (R4NCL reaches 100% new-task at layers
// 0–2), up to 2.34× speedup and up to 56.7% energy saving for Replay4NCL.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(25);

  struct Entry {
    core::ClRunResult sota;
    core::ClRunResult r4ncl;
  };
  std::vector<Entry> entries;
  for (std::size_t layer = 0; layer <= 3; ++layer) {
    entries.push_back({
        bench::run_method(ctx, core::bench_spiking_lr(), layer, epochs, epochs),
        bench::run_method(ctx, core::bench_replay4ncl(), layer, epochs, epochs),
    });
  }

  // (a) accuracy.
  ResultTable acc({"lr_layer", "sota_new", "r4ncl_new", "sota_old", "r4ncl_old"});
  for (std::size_t layer = 0; layer <= 3; ++layer) {
    const Entry& e = entries[layer];
    acc.add_row();
    acc.push(static_cast<long long>(layer));
    acc.push(bench::pct(e.sota.final_acc_new));
    acc.push(bench::pct(e.r4ncl.final_acc_new));
    acc.push(bench::pct(e.sota.final_acc_old));
    acc.push(bench::pct(e.r4ncl.final_acc_old));
  }
  bench::emit(acc, "fig10a_accuracy", "Fig 10(a): Top-1 accuracy per LR insertion layer [%]");

  // (b)+(c) normalized latency and energy.
  const double lat0 = entries[0].sota.total_latency_ms();
  const double en0 = entries[0].sota.total_energy_uj();
  ResultTable cost({"lr_layer", "sota_latency", "r4ncl_latency", "speedup", "sota_energy",
                    "r4ncl_energy", "energy_saving_pct"});
  double best_speedup = 0.0, best_saving = 0.0;
  for (std::size_t layer = 0; layer <= 3; ++layer) {
    const Entry& e = entries[layer];
    const double speedup = e.sota.total_latency_ms() / e.r4ncl.total_latency_ms();
    const double saving = 1.0 - e.r4ncl.total_energy_uj() / e.sota.total_energy_uj();
    best_speedup = std::max(best_speedup, speedup);
    best_saving = std::max(best_saving, saving);
    cost.add_row();
    cost.push(static_cast<long long>(layer));
    cost.push(format_double(e.sota.total_latency_ms() / lat0, 3));
    cost.push(format_double(e.r4ncl.total_latency_ms() / lat0, 3));
    cost.push(bench::ratio(speedup) + "x");
    cost.push(format_double(e.sota.total_energy_uj() / en0, 3));
    cost.push(format_double(e.r4ncl.total_energy_uj() / en0, 3));
    cost.push(bench::pct(saving));
  }
  bench::emit(cost, "fig10bc_cost",
              "Fig 10(b,c): latency & energy normalized to SpikingLR @ layer 0");

  std::printf("\nSummary: up to %sx speedup and %s%% energy saving across insertion layers\n",
              bench::ratio(best_speedup).c_str(), bench::pct(best_saving).c_str());
  return 0;
}
