// Fig. 2: the motivational case study.
//
// (a) SpikingLR's training latency and energy, normalized to the baseline
//     network without NCL techniques, across LR insertion layers 0–3
//     (the paper reports ~2–8× overheads).
// (b) Aggressive timestep reduction (100 → 20) applied naively to SpikingLR
//     degrades old-task accuracy significantly (accuracy-vs-epoch series).
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(12);

  // ---- Part (a): SOTA overhead vs baseline per insertion layer ----------
  // The baseline at layer j fine-tunes the same learning layers on the new
  // task only (no replay, no codec): the overhead isolates what the NCL
  // technique itself costs, as in the paper's Fig. 2(a).
  ResultTable overhead({"lr_insertion_layer", "latency_vs_baseline", "energy_vs_baseline"});
  for (std::size_t layer = 0; layer <= 3; ++layer) {
    const core::ClRunResult base = bench::run_method(
        ctx, core::NclMethodConfig::naive_baseline(), layer, epochs, epochs);
    const core::ClRunResult sota =
        bench::run_method(ctx, core::NclMethodConfig::spiking_lr(), layer, epochs, epochs);
    overhead.add_row();
    overhead.push(static_cast<long long>(layer));
    overhead.push(bench::ratio(sota.total_latency_ms() / base.total_latency_ms()) + "x");
    overhead.push(bench::ratio(sota.total_energy_uj() / base.total_energy_uj()) + "x");
  }
  bench::emit(overhead, "fig02a_sota_overheads",
              "Fig 2(a): SpikingLR latency/energy overhead vs baseline");

  // ---- Part (b): naive timestep reduction hurts accuracy ----------------
  const std::size_t curve_epochs = ctx.epochs(20);
  const core::ClRunResult full = bench::run_method(
      ctx, core::NclMethodConfig::spiking_lr(), 1, curve_epochs, 1);
  const core::ClRunResult reduced = bench::run_method(
      ctx, core::NclMethodConfig::spiking_lr_reduced(20), 1, curve_epochs, 1);

  ResultTable curves({"epoch", "acc_old_T100_pct", "acc_old_T20_pct"});
  for (std::size_t e = 0; e < curve_epochs; ++e) {
    if (full.rows[e].acc_old < 0.0) continue;
    curves.add_row();
    curves.push(static_cast<long long>(e));
    curves.push(bench::pct(full.rows[e].acc_old));
    curves.push(bench::pct(reduced.rows[e].acc_old));
  }
  bench::emit(curves, "fig02b_timestep_degradation",
              "Fig 2(b): aggressive timestep reduction (100 -> 20) degrades accuracy");

  std::printf("\nSummary: T=100 old-task %s%% vs naive T=20 old-task %s%%\n",
              bench::pct(full.final_acc_old).c_str(),
              bench::pct(reduced.final_acc_old).c_str());
  return 0;
}
