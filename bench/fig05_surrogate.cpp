// Fig. 5: the surrogate-gradient function pair.
//
// (a) forward pass: hard step S(x) = Θ(x − θ) at θ = 0;
// (b) backward pass: fast-sigmoid surrogate ∂S/∂x ≈ 1/(scale·|x|+1)².
// Regenerates the two curves over the paper's input range [−0.1, 0.1]
// (scale = 10), plus the soft-spike used by the gradcheck mode.
#include "common.hpp"
#include "snn/surrogate.hpp"

using namespace r4ncl;

int main(int, char**) {
  const snn::SurrogateParams params{snn::SurrogateKind::kFastSigmoid, 10.0f};
  ResultTable table({"input", "step_forward", "fast_sigmoid_grad", "soft_spike"});
  for (int i = -40; i <= 40; ++i) {
    const float x = static_cast<float>(i) * 0.0025f;  // [-0.1, 0.1]
    table.add_row();
    table.push(format_double(x, 4));
    table.push(format_double(snn::hard_spike(x), 1));
    table.push(format_double(snn::surrogate_grad(x, params), 5));
    table.push(format_double(snn::soft_spike(x, params), 5));
  }
  bench::emit(table, "fig05_surrogate",
              "Fig 5: spike activation (forward) and fast-sigmoid surrogate (backward)");

  std::printf("\nSummary: grad(0)=%.3f, grad(+-0.05)=%.3f, grad(+-0.1)=%.3f (scale=10)\n",
              snn::surrogate_grad(0.0f, params), snn::surrogate_grad(0.05f, params),
              snn::surrogate_grad(0.1f, params));
  return 0;
}
