// Shared benchmark harness plumbing.
//
// Every figure bench: parses key=value CLI overrides (plus R4NCL_* env vars),
// builds the standard pre-trained scenario (cached on disk, shared by all
// bench binaries), runs its continual-learning configurations, prints the
// paper-style rows, and mirrors them into <bench>.csv in the working
// directory.
//
// Common knobs (CLI "key=value" or env R4NCL_<KEY>):
//   scale=1.0        dataset sample-count scale
//   epochs=<n>       override the bench's default CL epoch count
//   pretrain_epochs  pre-training epochs (default 8)
//   threads=<n>      worker threads
//   cache=0          disable the pre-trained checkpoint cache
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "core/experiment.hpp"
#include "util/csv.hpp"

namespace r4ncl::bench {

/// Scenario + config shared by a bench binary.
struct BenchContext {
  Config cfg;
  core::PretrainedScenario scenario;
  /// Telemetry knobs (metrics_out=, trace=) as armed by make_context().
  core::MetricsOptions metrics;

  BenchContext(Config cfg_in, core::PretrainedScenario scenario_in,
               core::MetricsOptions metrics_in)
      : cfg(std::move(cfg_in)), scenario(std::move(scenario_in)),
        metrics(std::move(metrics_in)) {}
  BenchContext(const BenchContext&) = delete;
  BenchContext& operator=(const BenchContext&) = delete;
  BenchContext(BenchContext&& other) noexcept
      : cfg(std::move(other.cfg)), scenario(std::move(other.scenario)),
        metrics(std::move(other.metrics)) {
    // The moved-from context must not also write the snapshot at scope exit.
    other.metrics.out_path.clear();
  }
  BenchContext& operator=(BenchContext&&) = delete;
  /// End-of-bench hook: writes the metrics_out= registry snapshot, so every
  /// bench binary exports telemetry without per-bench wiring.
  ~BenchContext() { core::write_metrics_snapshot(metrics); }

  /// CL epoch count: bench default, overridable via epochs=N.
  [[nodiscard]] std::size_t epochs(std::size_t fallback) const {
    return static_cast<std::size_t>(
        cfg.get_int("epochs", static_cast<long long>(fallback)));
  }
};

/// Builds the context (threads/logging init + cached pre-training).  CLI
/// keys outside the standard vocabulary (core::standard_cli_keys()) plus
/// `extra_keys` are rejected with an Error listing the valid ones, so knob
/// typos fail loudly instead of silently running the defaults.
BenchContext make_context(int argc, char** argv,
                          std::initializer_list<std::string_view> extra_keys = {});

/// Prints the table and writes `<name>.csv`.
void emit(const ResultTable& table, const std::string& name, const std::string& title);

/// Percentage formatting helper (0.9043 → "90.43").
std::string pct(double fraction);

/// "x.xx" ratio formatting helper.
std::string ratio(double value);

/// Runs one continual-learning configuration on a fresh clone of the
/// scenario's pre-trained network.
core::ClRunResult run_method(const BenchContext& ctx, const core::NclMethodConfig& method,
                             std::size_t insertion_layer, std::size_t epochs,
                             std::size_t eval_every = 1);

}  // namespace r4ncl::bench
