// Ablation: latent-storage codec strategy and ratio (Sec. III-A / Fig. 7).
//
// Runs SpikingLR-style CL (T = 100, LR layer 2) with each codec strategy at
// ratios 1–4, reporting latent memory, spike retention of the stored data,
// and final accuracies — the memory/accuracy trade-off behind the paper's
// choice of the subsampling codec at ratio 2.
#include "common.hpp"
#include "compress/spike_codec.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(15);
  const std::size_t layer = 2;

  struct StrategyEntry {
    compress::CodecStrategy strategy;
    const char* name;
  };
  const StrategyEntry strategies[] = {
      {compress::CodecStrategy::kSubsample, "subsample"},
      {compress::CodecStrategy::kGroupOr, "group-or"},
      {compress::CodecStrategy::kGroupMajority, "majority"},
  };

  ResultTable table({"strategy", "ratio", "latent_bytes", "retention_pct", "acc_old",
                     "acc_new"});
  auto run_one = [&](const char* name, const compress::CodecConfig& codec) {
    core::NclMethodConfig method = core::bench_spiking_lr();
    method.storage_codec = codec;
    const core::ClRunResult res = bench::run_method(ctx, method, layer, epochs, epochs);

    // Spike retention of the codec on replay inputs (information proxy).
    double retention = 0.0;
    for (const auto& sample : ctx.scenario.tasks.replay_subset) {
      retention += compress::spike_retention(sample.raster, method.storage_codec);
    }
    retention /= static_cast<double>(ctx.scenario.tasks.replay_subset.size());

    table.add_row();
    table.push(name);
    table.push(static_cast<long long>(codec.ratio));
    table.push(static_cast<long long>(res.latent_memory_bytes));
    table.push(bench::pct(retention));
    table.push(bench::pct(res.final_acc_old));
    table.push(bench::pct(res.final_acc_new));
  };

  run_one("raw", {.ratio = 1});  // strategy-independent reference
  for (const auto& s : strategies) {
    for (std::uint32_t ratio : {2u, 4u}) {
      run_one(s.name, {.ratio = ratio, .strategy = s.strategy});
    }
  }
  bench::emit(table, "abl_codec",
              "Ablation: latent codec strategy x ratio (SpikingLR config, LR layer 2)");
  return 0;
}
