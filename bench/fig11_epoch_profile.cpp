// Fig. 11: epoch profiles at LR insertion layer 3.
//
// (a) old-task Top-1 accuracy vs epoch for SpikingLR and Replay4NCL;
// (b) cumulative processing time at epoch milestones 10/30/50, normalized to
//     SpikingLR at epoch 10; (c) the same for energy.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(50);
  const std::size_t layer = 3;

  const core::ClRunResult sota =
      bench::run_method(ctx, core::bench_spiking_lr(), layer, epochs, 2);
  const core::ClRunResult r4ncl =
      bench::run_method(ctx, core::bench_replay4ncl(), layer, epochs, 2);

  // (a) old-task accuracy profile.
  ResultTable acc({"epoch", "sota_old", "r4ncl_old"});
  for (std::size_t e = 0; e < epochs; ++e) {
    if (sota.rows[e].acc_old < 0.0 || r4ncl.rows[e].acc_old < 0.0) continue;
    acc.add_row();
    acc.push(static_cast<long long>(e));
    acc.push(bench::pct(sota.rows[e].acc_old));
    acc.push(bench::pct(r4ncl.rows[e].acc_old));
  }
  bench::emit(acc, "fig11a_old_task_accuracy",
              "Fig 11(a): old-task accuracy vs epoch (LR layer 3) [%]");

  // (b)+(c) cumulative cost at milestones.
  auto cumulative = [](const core::ClRunResult& res, std::size_t upto, bool energy) {
    double total = energy ? res.prep_energy_uj : res.prep_latency_ms;
    for (std::size_t e = 0; e < upto && e < res.rows.size(); ++e) {
      total += energy ? res.rows[e].energy_uj : res.rows[e].latency_ms;
    }
    return total;
  };
  const double lat_ref = cumulative(sota, 10, false);
  const double en_ref = cumulative(sota, 10, true);
  ResultTable cost({"epoch_milestone", "sota_latency", "r4ncl_latency", "sota_energy",
                    "r4ncl_energy"});
  for (std::size_t milestone : {std::size_t{10}, std::size_t{30}, std::size_t{50}}) {
    const std::size_t upto = std::min(milestone, epochs);
    cost.add_row();
    cost.push(static_cast<long long>(upto));
    cost.push(format_double(cumulative(sota, upto, false) / lat_ref, 3));
    cost.push(format_double(cumulative(r4ncl, upto, false) / lat_ref, 3));
    cost.push(format_double(cumulative(sota, upto, true) / en_ref, 3));
    cost.push(format_double(cumulative(r4ncl, upto, true) / en_ref, 3));
  }
  bench::emit(cost, "fig11bc_cost",
              "Fig 11(b,c): cumulative latency/energy at epoch milestones "
              "(normalized to SpikingLR @ epoch 10)");

  const double saving =
      1.0 - cumulative(r4ncl, epochs, true) / cumulative(sota, epochs, true);
  std::printf("\nSummary (layer 3): final old-task %s%% (SOTA) vs %s%% (R4NCL); "
              "energy saving %s%%\n",
              bench::pct(sota.final_acc_old).c_str(), bench::pct(r4ncl.final_acc_old).c_str(),
              bench::pct(saving).c_str());
  return 0;
}
