#include "common.hpp"

#include <cstdio>

namespace r4ncl::bench {

BenchContext make_context(int argc, char** argv,
                          std::initializer_list<std::string_view> extra_keys) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, extra_keys);
  core::MetricsOptions metrics = core::init_metrics(cfg);
  core::PretrainedScenario scenario = core::standard_scenario(cfg);
  return BenchContext{std::move(cfg), std::move(scenario), std::move(metrics)};
}

void emit(const ResultTable& table, const std::string& name, const std::string& title) {
  table.print(title);
  const std::string csv_path = name + ".csv";
  table.write_csv(csv_path);
  const std::string json_path = name + ".json";
  table.write_json(json_path);
  std::printf("[%s] wrote %s and %s\n", name.c_str(), csv_path.c_str(), json_path.c_str());
}

std::string pct(double fraction) { return format_double(fraction * 100.0, 2); }

std::string ratio(double value) { return format_double(value, 2); }

core::ClRunResult run_method(const BenchContext& ctx, const core::NclMethodConfig& method,
                             std::size_t insertion_layer, std::size_t epochs,
                             std::size_t eval_every) {
  snn::SnnNetwork net = ctx.scenario.net.clone();
  core::ClRunConfig rc;
  rc.method = method;
  rc.insertion_layer = insertion_layer;
  rc.epochs = epochs;
  rc.eval_every = eval_every;
  rc.seed = 2024;
  return core::run_continual_learning(net, ctx.scenario.tasks, rc);
}

}  // namespace r4ncl::bench
