// Fig. 8: the timestep-optimization case study (Sec. III-A).
//
// Memory-replay CL runs at T ∈ {100, 60, 40, 20} with *no* parameter
// adjustments (fixed threshold, SOTA learning rate), reporting
// (a) old/new-task accuracy profiles across epochs per setting, and
// (b) per-epoch processing time normalized to the T = 100 setting.
// Expected observations: A — T=20 degrades old-task accuracy significantly;
// B — T≥40 stays acceptable; C — latency falls with T.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(16);
  const std::size_t layers[] = {1};  // the case study's LR insertion layer
  const std::size_t timesteps[] = {100, 60, 40, 20};

  std::vector<core::ClRunResult> results;
  for (std::size_t T : timesteps) {
    core::NclMethodConfig method = T == 100 ? core::NclMethodConfig::spiking_lr()
                                            : core::NclMethodConfig::spiking_lr_reduced(T);
    results.push_back(bench::run_method(ctx, method, layers[0], epochs, 1));
  }

  // (a) accuracy profiles.
  ResultTable acc({"epoch", "old_T100", "new_T100", "old_T60", "new_T60", "old_T40",
                   "new_T40", "old_T20", "new_T20"});
  for (std::size_t e = 0; e < epochs; ++e) {
    acc.add_row();
    acc.push(static_cast<long long>(e));
    for (const auto& res : results) {
      acc.push(bench::pct(res.rows[e].acc_old));
      acc.push(bench::pct(res.rows[e].acc_new));
    }
  }
  bench::emit(acc, "fig08a_timestep_accuracy",
              "Fig 8(a): accuracy profiles at T = 100/60/40/20 (no compensation)");

  // (b) processing time normalized to T = 100.
  const double t100 = results[0].total_latency_ms();
  ResultTable lat({"timesteps", "latency_norm_T100"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    lat.add_row();
    lat.push(static_cast<long long>(timesteps[i]));
    lat.push(format_double(results[i].total_latency_ms() / t100, 3));
  }
  bench::emit(lat, "fig08b_timestep_latency",
              "Fig 8(b): processing time vs timestep setting (normalized to T=100)");

  std::printf("\nObservation A/B: final old-task acc — T100 %s%%, T60 %s%%, T40 %s%%, T20 %s%%\n",
              bench::pct(results[0].final_acc_old).c_str(),
              bench::pct(results[1].final_acc_old).c_str(),
              bench::pct(results[2].final_acc_old).c_str(),
              bench::pct(results[3].final_acc_old).c_str());
  std::printf("Observation C: latency ratios 1.00 / %s / %s / %s\n",
              format_double(results[1].total_latency_ms() / t100, 2).c_str(),
              format_double(results[2].total_latency_ms() / t100, 2).c_str(),
              format_double(results[3].total_latency_ms() / t100, 2).c_str());
  return 0;
}
