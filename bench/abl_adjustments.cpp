// Ablation: which of Replay4NCL's ingredients does what (Sec. III-B/C).
//
// At the headline configuration (T* = 40, LR layer 3), toggles:
//   full           — adaptive Vthr + reduced η (the method)
//   no-adaptive    — fixed Vthr = 1, reduced η
//   no-lr-reduction— adaptive Vthr, η_cl = η_pre
//   neither        — plain timestep reduction (the Fig. 8 failure case)
//   paper-eta      — adaptive Vthr with the paper-exact η_pre/100 divisor
//                    (illustrates the step-count rescaling documented in
//                    core/experiment.hpp)
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(25);
  const std::size_t layer = 3;

  struct Variant {
    std::string name;
    core::NclMethodConfig method;
  };
  std::vector<Variant> variants;
  {
    core::NclMethodConfig m = core::bench_replay4ncl();
    variants.push_back({"full (Replay4NCL)", m});
  }
  {
    core::NclMethodConfig m = core::bench_replay4ncl();
    m.adaptive_threshold = false;
    variants.push_back({"no adaptive Vthr", m});
  }
  {
    core::NclMethodConfig m = core::bench_replay4ncl();
    m.lr_cl = core::kEtaPre;
    variants.push_back({"no lr reduction", m});
  }
  {
    core::NclMethodConfig m = core::bench_replay4ncl();
    m.adaptive_threshold = false;
    m.lr_cl = core::kEtaPre;
    variants.push_back({"neither (naive T*=40)", m});
  }
  {
    core::NclMethodConfig m = core::NclMethodConfig::replay4ncl();  // η_pre/100
    variants.push_back({"paper-eta (eta_pre/100)", m});
  }

  ResultTable table({"variant", "acc_old", "acc_new", "latency_ms", "energy_uJ"});
  for (const auto& v : variants) {
    const core::ClRunResult res = bench::run_method(ctx, v.method, layer, epochs, epochs);
    table.add_row();
    table.push(v.name);
    table.push(bench::pct(res.final_acc_old));
    table.push(bench::pct(res.final_acc_new));
    table.push(format_double(res.total_latency_ms(), 1));
    table.push(format_double(res.total_energy_uj(), 1));
  }
  bench::emit(table, "abl_adjustments",
              "Ablation: Replay4NCL parameter adjustments (LR layer 3, T*=40)");
  return 0;
}
