// Ablation: surrogate-gradient family (Sec. II-B design choice).
//
// The paper trains with the fast-sigmoid surrogate (Fig. 5).  This bench
// re-runs pre-training + Replay4NCL with atan and boxcar surrogates to show
// the choice matters for training quality but not for the efficiency story
// (latency/energy/memory are surrogate-independent).
//
// Note: each surrogate needs its own pre-training run, so this bench keeps
// the scenario at reduced scale by default (scale=0.5) for runtime.
#include "common.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg);
  const core::ScopedMetrics metrics(cfg);
  if (!cfg.get("scale")) cfg.set("scale", "0.5");
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 20));

  struct Family {
    snn::SurrogateKind kind;
    float scale;
    const char* name;
  };
  const Family families[] = {
      {snn::SurrogateKind::kFastSigmoid, 10.0f, "fast-sigmoid (paper)"},
      {snn::SurrogateKind::kAtan, 10.0f, "atan"},
      {snn::SurrogateKind::kBoxcar, 10.0f, "boxcar"},
  };

  ResultTable table({"surrogate", "pretrain_acc", "r4ncl_old", "r4ncl_new"});
  for (const Family& f : families) {
    core::PretrainConfig pc = core::pretrain_config_from(cfg);
    pc.network.surrogate = {f.kind, f.scale};
    core::PretrainedScenario scenario =
        core::make_pretrained_scenario(pc, cfg.get_string("cache_dir", "."), true);

    core::ClRunConfig run;
    run.method = core::bench_replay4ncl();
    run.method.lr_cl = 5e-4f;  // half-scale η rescaling (DESIGN.md §5.10)
    run.insertion_layer = 2;
    run.epochs = epochs;
    run.eval_every = epochs;
    const core::ClRunResult res =
        core::run_continual_learning(scenario.net, scenario.tasks, run);

    table.add_row();
    table.push(f.name);
    table.push(bench::pct(scenario.pretrain_accuracy));
    table.push(bench::pct(res.final_acc_old));
    table.push(bench::pct(res.final_acc_new));
  }
  bench::emit(table, "abl_surrogate",
              "Ablation: surrogate-gradient family (half-scale scenario, LR layer 2)");
  return 0;
}
