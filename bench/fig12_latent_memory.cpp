// Fig. 12: latent-memory sizes across LR insertion layers 1–3.
//
// SpikingLR stores codec-compressed (ratio 2) activations recorded at
// T = 100; Replay4NCL stores raw activations recorded at T* = 40.  The paper
// reports 20–21.88% savings, with later layers needing less memory because
// they have fewer neurons.  Values normalized to SpikingLR at layer 1.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);

  // Only the preparation phase matters for memory; one epoch keeps it quick.
  ResultTable table({"lr_layer", "sota_bytes", "r4ncl_bytes", "sota_norm", "r4ncl_norm",
                     "saving_pct"});
  double norm = 0.0;
  double min_saving = 1.0, max_saving = 0.0;
  for (std::size_t layer = 1; layer <= 3; ++layer) {
    const core::ClRunResult sota =
        bench::run_method(ctx, core::bench_spiking_lr(), layer, 1, 1);
    const core::ClRunResult r4ncl =
        bench::run_method(ctx, core::bench_replay4ncl(), layer, 1, 1);
    if (layer == 1) norm = static_cast<double>(sota.latent_memory_bytes);
    const double saving = 1.0 - static_cast<double>(r4ncl.latent_memory_bytes) /
                                    static_cast<double>(sota.latent_memory_bytes);
    min_saving = std::min(min_saving, saving);
    max_saving = std::max(max_saving, saving);
    table.add_row();
    table.push(static_cast<long long>(layer));
    table.push(static_cast<long long>(sota.latent_memory_bytes));
    table.push(static_cast<long long>(r4ncl.latent_memory_bytes));
    table.push(format_double(static_cast<double>(sota.latent_memory_bytes) / norm, 3));
    table.push(format_double(static_cast<double>(r4ncl.latent_memory_bytes) / norm, 3));
    table.push(bench::pct(saving));
  }
  bench::emit(table, "fig12_latent_memory",
              "Fig 12: latent memory per LR insertion layer (normalized to SOTA @ layer 1)");

  std::printf("\nSummary: Replay4NCL saves %s%%-%s%% latent memory vs SpikingLR\n",
              bench::pct(min_saving).c_str(), bench::pct(max_saving).c_str());
  return 0;
}
