// Extension experiment: latent replay under a hard byte budget.
//
// The paper's Fig. 12 treats latent memory as the scarce on-device resource
// but lets the buffer grow with the stream; here the buffer gets a *fixed*
// capacity and an eviction policy, the deployment reality of embedded latent
// replay (Pellegrini et al.; Ravaglia et al.).  A sequential class stream
// runs once unbounded to establish the footprint and the accuracy ceiling,
// then once per (budget fraction × policy) cell.  Reported per cell: final
// buffer bytes, evictions, mean stream accuracy, accuracy drop vs the
// unbounded run, and modelled latency.
//
// Extra knobs on top of the common ones (key=value or R4NCL_<KEY>):
//   tasks=4            stream length (arriving classes)
//   epochs=16          CL epochs per task
//   replay_per_task=8  latents recorded per learned class (2 — the single-
//                      task default — leaves stream classes too thin to
//                      retain, which would drown the policy deltas in noise)
//   replay_samples=0   per-epoch sample(k) draw (0 = full materialize)
// budget=/policy= are NOT honoured here — the sweep itself owns those axes.
#include <vector>

#include "common.hpp"
#include "core/sequential.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t num_tasks = static_cast<std::size_t>(cfg.get_int("tasks", 4));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 16));

  core::PretrainConfig pc = core::pretrain_config_from(cfg);
  const data::SyntheticShdGenerator generator(pc.data_params);
  const data::SequentialTasks tasks =
      data::build_sequential_tasks(generator, pc.split, num_tasks);

  R4NCL_INFO("pre-training on " << tasks.base_classes.size() << " base classes...");
  snn::SnnNetwork pretrained{pc.network};
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    opts.lr = pc.lr;
    (void)snn::train_supervised(pretrained, tasks.pretrain_train, opt, opts);
  }

  core::SequentialRunConfig run;
  run.method = core::bench_replay4ncl();
  // The sweep owns budget/policy, so of the replay CLI knobs only the
  // per-epoch draw applies here (budget=/policy= work on budget_stream).
  run.method.replay_samples_per_epoch =
      static_cast<std::size_t>(cfg.get_int("replay_samples", 0));
  run.insertion_layer = 2;
  run.epochs_per_task = epochs;
  run.replay_per_new_class =
      static_cast<std::size_t>(cfg.get_int("replay_per_task", 8));

  const auto run_stream = [&](std::size_t capacity, core::ReplayPolicy policy) {
    snn::SnnNetwork net = pretrained.clone();
    core::SequentialRunConfig bounded = run;
    bounded.method.replay_budget.capacity_bytes = capacity;
    bounded.method.replay_budget.policy = policy;
    return core::run_sequential(net, tasks, bounded);
  };

  // Unbounded reference: footprint ceiling + accuracy ceiling.
  const core::SequentialRunResult unbounded =
      run_stream(0, core::ReplayPolicy::kFifo);
  const std::size_t full_bytes = unbounded.rows.back().latent_memory_bytes;
  const double full_acc = unbounded.rows.back().acc_learned;
  R4NCL_INFO("unbounded stream: " << full_bytes << " B, acc_learned "
                                  << bench::pct(full_acc) << "%");

  ResultTable table({"budget_frac", "budget_bytes", "policy", "final_bytes", "evictions",
                     "acc_base", "acc_learned", "delta_vs_unbounded", "latency_ms"});
  table.add_row();
  table.push("1.00");
  table.push(static_cast<long long>(0));
  table.push("unbounded");
  table.push(static_cast<long long>(full_bytes));
  table.push(static_cast<long long>(0));
  table.push(bench::pct(unbounded.rows.back().acc_base));
  table.push(bench::pct(full_acc));
  table.push("0.00");
  table.push(format_double(unbounded.total_latency_ms, 1));

  const double fractions[] = {0.75, 0.5, 0.25};
  const core::ReplayPolicy policies[] = {core::ReplayPolicy::kFifo,
                                         core::ReplayPolicy::kReservoir,
                                         core::ReplayPolicy::kClassBalanced};
  for (const double frac : fractions) {
    const std::size_t capacity =
        static_cast<std::size_t>(static_cast<double>(full_bytes) * frac);
    for (const core::ReplayPolicy policy : policies) {
      const core::SequentialRunResult res = run_stream(capacity, policy);
      const auto& last = res.rows.back();
      table.add_row();
      table.push(format_double(frac, 2));
      table.push(static_cast<long long>(capacity));
      table.push(std::string(core::to_string(policy)));
      table.push(static_cast<long long>(last.latent_memory_bytes));
      table.push(static_cast<long long>(last.buffer_evictions));
      table.push(bench::pct(last.acc_base));
      table.push(bench::pct(last.acc_learned));
      table.push(bench::pct(last.acc_learned - full_acc));
      table.push(format_double(res.total_latency_ms, 1));
    }
  }
  bench::emit(table, "ext_memory_budget",
              "Extension: capacity-bounded latent replay (LR layer 2) — budget x "
              "policy sweep over a sequential class stream");
  return 0;
}
