// Extension experiment: latent replay under a hard byte budget.
//
// The paper's Fig. 12 treats latent memory as the scarce on-device resource
// but lets the buffer grow with the stream; here the buffer gets a *fixed*
// capacity and an eviction policy, the deployment reality of embedded latent
// replay (Pellegrini et al.; Ravaglia et al.).  Three sweeps share one table:
//
// 1. budget × policy (legacy storage): a sequential class stream runs once
//    unbounded per method to establish the footprint and accuracy ceiling,
//    then once per (budget fraction × policy) cell for Replay4NCL — the
//    content-blind policies (fifo / reservoir / class_balanced) against the
//    importance-aware pair (low_importance / importance_class_balanced,
//    insert-time spike density refined by per-sample trainer error
//    feedback).  The headline comparison lives at the tightest fraction.
// 2. codec × latent_bits: both methods — Replay4NCL (raw T* = 40 storage)
//    and SpikingLR (ratio-2 codec at T = 100) — run under one *fixed* byte
//    capacity at stored depths 0 (legacy binary), 8, 4 and 2 bits/element.
//    The capacity is sized so the 8-bit configuration is budget-starved;
//    halving the depth must roughly double the resident entries (the
//    Ravaglia et al. effect the quantized payload path exists for).
// 3. budget schedules: the byte budget *moves* during the stream —
//    linear:<full>:<quarter> (another subsystem claiming the region
//    gradually) and step:<mid-task>:<quarter> (an abrupt reclaim) — each
//    under reservoir and low_importance eviction, landing on the same final
//    cap as sweep 1's tightest fraction so the end states compare directly.
//
// Reported per cell: final buffer bytes, resident entries, evictions, mean
// stream accuracy, accuracy drop vs that method's unbounded run, and
// modelled latency.
//
// Extra knobs on top of the common ones (key=value or R4NCL_<KEY>):
//   tasks=4            stream length (arriving classes)
//   epochs=16          CL epochs per task
//   replay_per_task=8  latents recorded per learned class (2 — the single-
//                      task default — leaves stream classes too thin to
//                      retain, which would drown the policy deltas in noise)
//   replay_samples=0   per-epoch sample(k) draw (0 = full materialize)
//   spiking_lr=1       include the SpikingLR codec path in the bits sweep
// budget=/policy=/latent_bits= are NOT honoured here — the sweep itself owns
// those axes.
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/sequential.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

using namespace r4ncl;

namespace {

/// Stored bytes of one latent entry of the given geometry under `codec` —
/// all entries of a stream share the insertion-layer geometry, so one probe
/// add() prices the whole buffer.
std::size_t probe_entry_bytes(const compress::CodecConfig& codec, std::size_t timesteps,
                              std::size_t channels) {
  core::LatentReplayBuffer probe(codec, timesteps);
  probe.add(data::SpikeRaster(timesteps, channels), 0);
  return probe.memory_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg, {"tasks", "replay_per_task", "spiking_lr"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t num_tasks = static_cast<std::size_t>(cfg.get_int("tasks", 4));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 16));

  core::PretrainConfig pc = core::pretrain_config_from(cfg);
  const data::SyntheticShdGenerator generator(pc.data_params);
  const data::SequentialTasks tasks =
      data::build_sequential_tasks(generator, pc.split, num_tasks);

  R4NCL_INFO("pre-training on " << tasks.base_classes.size() << " base classes...");
  snn::SnnNetwork pretrained{pc.network};
  {
    snn::AdamOptimizer opt;
    snn::TrainOptions opts;
    opts.epochs = pc.epochs;
    opts.batch_size = pc.batch_size;
    opts.lr = pc.lr;
    (void)snn::train_supervised(pretrained, tasks.pretrain_train, opt, opts);
  }

  core::SequentialRunConfig run;
  run.method = core::bench_replay4ncl();
  // The sweep owns budget/policy/latent_bits, so of the replay CLI knobs only
  // the per-epoch draw applies here (the others work on budget_stream).
  run.method.replay_samples_per_epoch =
      static_cast<std::size_t>(cfg.get_int("replay_samples", 0));
  run.insertion_layer = 2;
  run.epochs_per_task = epochs;
  run.replay_per_new_class =
      static_cast<std::size_t>(cfg.get_int("replay_per_task", 8));

  const auto run_stream = [&](const core::NclMethodConfig& method, std::size_t capacity,
                              core::ReplayPolicy policy,
                              const core::BudgetSchedule& schedule = {}) {
    snn::SnnNetwork net = pretrained.clone();
    core::SequentialRunConfig bounded = run;
    bounded.method = method;
    bounded.method.replay_samples_per_epoch = run.method.replay_samples_per_epoch;
    bounded.method.replay_budget.capacity_bytes = capacity;
    bounded.method.replay_budget.policy = policy;
    bounded.method.budget_schedule = schedule;
    return core::run_sequential(net, tasks, bounded);
  };

  ResultTable table({"method", "latent_bits", "budget_frac", "budget_bytes", "policy",
                     "schedule", "final_bytes", "entries", "evictions", "acc_base",
                     "acc_learned", "delta_vs_unbounded", "latency_ms"});
  const auto add_row = [&](const core::NclMethodConfig& method, const std::string& frac,
                           std::size_t capacity, std::string_view policy,
                           const core::SequentialRunResult& res, double reference_acc,
                           const core::BudgetSchedule& schedule = {}) {
    const auto& last = res.rows.back();
    table.add_row();
    table.push(method.name);
    table.push(static_cast<long long>(method.storage_codec.latent_bits));
    table.push(frac);
    table.push(static_cast<long long>(capacity));
    table.push(std::string(policy));
    table.push(schedule.spec());
    table.push(static_cast<long long>(last.latent_memory_bytes));
    table.push(static_cast<long long>(last.buffer_entries));
    table.push(static_cast<long long>(last.buffer_evictions));
    table.push(bench::pct(last.acc_base));
    table.push(bench::pct(last.acc_learned));
    table.push(bench::pct(last.acc_learned - reference_acc));
    table.push(format_double(res.total_latency_ms, 1));
  };

  // ---- Sweep 1: budget × policy (legacy storage, Replay4NCL) --------------
  const core::SequentialRunResult unbounded =
      run_stream(run.method, 0, core::ReplayPolicy::kFifo);
  const std::size_t full_bytes = unbounded.rows.back().latent_memory_bytes;
  const double full_acc = unbounded.rows.back().acc_learned;
  R4NCL_INFO("unbounded stream: " << full_bytes << " B, acc_learned "
                                  << bench::pct(full_acc) << "%");
  add_row(run.method, "1.00", 0, "unbounded", unbounded, full_acc);

  const double fractions[] = {0.75, 0.5, 0.25};
  const core::ReplayPolicy policies[] = {core::ReplayPolicy::kFifo,
                                         core::ReplayPolicy::kReservoir,
                                         core::ReplayPolicy::kClassBalanced,
                                         core::ReplayPolicy::kLowImportance,
                                         core::ReplayPolicy::kImportanceClassBalanced};
  for (const double frac : fractions) {
    const std::size_t capacity =
        static_cast<std::size_t>(static_cast<double>(full_bytes) * frac);
    for (const core::ReplayPolicy policy : policies) {
      const core::SequentialRunResult res = run_stream(run.method, capacity, policy);
      add_row(run.method, format_double(frac, 2), capacity, core::to_string(policy), res,
              full_acc);
    }
  }

  // ---- Sweep 3: moving budgets (schedule × policy) ------------------------
  // Both schedules land on sweep 1's tightest cap, so their final states
  // compare directly against the const-budget 0.25 rows: linear cedes the
  // region one task at a time, step halves the stream then reclaims at once.
  {
    const std::size_t quarter =
        static_cast<std::size_t>(static_cast<double>(full_bytes) * 0.25);
    core::BudgetSchedule linear;
    linear.kind = core::BudgetScheduleKind::kLinear;
    linear.linear_start = full_bytes;
    linear.linear_end = quarter;
    core::BudgetSchedule step;
    step.kind = core::BudgetScheduleKind::kStep;
    step.step_task = num_tasks / 2;
    step.step_bytes = quarter;
    for (const core::BudgetSchedule& schedule : {linear, step}) {
      for (const core::ReplayPolicy policy :
           {core::ReplayPolicy::kReservoir, core::ReplayPolicy::kLowImportance}) {
        const core::SequentialRunResult res =
            run_stream(run.method, full_bytes, policy, schedule);
        add_row(run.method, "sched", res.rows.back().budget_bytes,
                core::to_string(policy), res, full_acc, schedule);
      }
    }
  }

  // ---- Sweep 2: codec × latent_bits at one fixed capacity -----------------
  // Capacity per method: a quarter of the stream's total 8-bit demand, so
  // the 8-bit run is hard-starved and every halving of the depth shows up as
  // ~2x resident entries.  Reservoir keeps retention stream-uniform, so the
  // entry count — not selection luck — drives the accuracy delta.
  const std::size_t stream_entries =
      tasks.replay_subset.size() + num_tasks * run.replay_per_new_class;
  std::vector<core::NclMethodConfig> codec_methods = {core::bench_replay4ncl()};
  if (cfg.get_bool("spiking_lr", true)) codec_methods.push_back(core::bench_spiking_lr());
  const std::uint8_t depths[] = {0, 8, 4, 2};
  for (const core::NclMethodConfig& base : codec_methods) {
    const std::size_t width = pc.network.layer_sizes[run.insertion_layer];
    const std::size_t entry8 = probe_entry_bytes(
        base.with_latent_bits(8).storage_codec, base.cl_timesteps, width);
    const std::size_t capacity = entry8 * (stream_entries / 4);
    std::optional<core::SequentialRunResult> method_ref;
    double reference_acc = full_acc;
    if (base.name != run.method.name) {
      method_ref = run_stream(base, 0, core::ReplayPolicy::kFifo);
      reference_acc = method_ref->rows.back().acc_learned;
      add_row(base, "1.00", 0, "unbounded", *method_ref, reference_acc);
    }
    for (const std::uint8_t bits : depths) {
      const core::NclMethodConfig method = base.with_latent_bits(bits);
      if (bits == 0) {
        // The legacy binary payload is ~1/8 the 8-bit entry size, so this
        // capacity never evicts at depth 0 and the run would reproduce the
        // unbounded reference exactly — reuse it instead of retraining.
        add_row(method, "quant", capacity, "reservoir",
                method_ref ? *method_ref : unbounded, reference_acc);
        continue;
      }
      const core::SequentialRunResult res =
          run_stream(method, capacity, core::ReplayPolicy::kReservoir);
      add_row(method, "quant", capacity, "reservoir", res, reference_acc);
    }
  }

  bench::emit(table, "ext_memory_budget",
              "Extension: capacity-bounded latent replay (LR layer 2) — budget x policy "
              "sweep plus codec x latent_bits sweep over a sequential class stream");
  return 0;
}
