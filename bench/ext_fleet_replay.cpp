// Fleet-simulation bench: N independent device streams against one shared
// ShardedReplayEngine — replay-as-a-service under concurrent trainer threads.
//
// The embedded fleet scenario behind the ROADMAP's north star: many
// continual learners share one constrained latent-memory region.  Each
// simulated device stream adds its own latents (deterministic per-stream
// content), periodically draws a replay sample and feeds outcomes back —
// the add/sample/report_outcome traffic a trainer generates — while the
// engine routes everything to per-shard buffers behind per-shard locks.
//
// Row modes (the bench self-checks; it exits nonzero on any violation):
//   det        — the same N streams interleaved round-robin on ONE thread.
//                Deterministic by construction, so every rep must produce a
//                bit-identical final state (checksum parity across reps).
//                At shards=1 the binary additionally replays the identical
//                interleaving into a plain LatentReplayBuffer and asserts
//                the engine checksum matches it — the refactor's
//                single-shard bit-identity contract, enforced at bench time.
//   concurrent — the same N streams on N real threads (util run_workers)
//                against the shared engine.  Final state depends on the
//                interleaving the scheduler chose, so the checksum is
//                reported but not compared; instead the lifetime accounting
//                must balance exactly (entries == adds - evictions), the
//                byte budget must hold, and shard sizes must sum to the
//                global size.  Throughput (adds_per_sec) is the headline.
//
// This bench is synthetic (no SNN training): it isolates the replay store,
// runs in seconds, and the det rows are deterministic per seed.  Knobs
// (key=value or R4NCL_<KEY>): streams=8 adds=300 channels=64 timesteps=16
// reps=2 capacity_entries=64 shards=4 shard_by=class|hash policy=<eviction>
// threads=N verbose=1.  Writes ext_fleet_replay.csv/.json (checked in at
// the repo root as BENCH_fleet_replay.json, gated by tools/check_bench.py).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/replay_stream.hpp"
#include "core/sharded_engine.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

using namespace r4ncl;

namespace {

data::SpikeRaster random_raster(std::size_t T, std::size_t C, double density,
                                std::uint64_t seed) {
  data::SpikeRaster r(T, C);
  Rng rng(seed);
  for (auto& b : r.bits) b = rng.bernoulli(density) ? 1 : 0;
  return r;
}

/// Order-sensitive FNV-1a over (spike_count, label) of every stored entry —
/// the det-mode parity fingerprint of a replay store's final state.
std::uint64_t state_checksum(const data::Dataset& ds) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& s : ds) {
    h = (h ^ static_cast<std::uint64_t>(s.raster.spike_count())) * 0x100000001b3ULL;
    h = (h ^ static_cast<std::uint32_t>(s.label)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc, argv);
  core::validate_standard_keys(cfg,
                               {"streams", "adds", "channels", "timesteps", "reps",
                                "capacity_entries"});
  const core::ScopedMetrics metrics(cfg);
  init_log_level_from_env();
  init_threads_from_env();
  const std::size_t streams = static_cast<std::size_t>(cfg.get_int("streams", 8));
  const std::size_t adds = static_cast<std::size_t>(cfg.get_int("adds", 300));
  const std::size_t C = static_cast<std::size_t>(cfg.get_int("channels", 64));
  const std::size_t T = static_cast<std::size_t>(cfg.get_int("timesteps", 16));
  const std::size_t reps = std::max<std::size_t>(
      2, static_cast<std::size_t>(cfg.get_int("reps", 2)));  // parity needs >= 2
  const std::size_t capacity_entries =
      static_cast<std::size_t>(cfg.get_int("capacity_entries", 64));
  const std::size_t shards_knob = static_cast<std::size_t>(cfg.get_int("shards", 4));
  const core::ShardKey shard_by =
      core::parse_shard_key(cfg.get_string("shard_by", "class"));
  const core::ReplayPolicy policy =
      core::parse_replay_policy(cfg.get_string("policy", "class_balanced"));

  // Shard counts swept: the bit-identity anchor (1) plus the requested count.
  std::vector<std::size_t> shard_sweep{1};
  if (shards_knob > 1) shard_sweep.push_back(shards_knob);

  const compress::CodecConfig codec{.ratio = 1};
  const std::size_t entry_bytes = [&] {
    core::LatentReplayBuffer probe(codec, T);
    probe.add(random_raster(T, C, 0.2, 1), 0);
    return probe.memory_bytes();
  }();
  const std::size_t capacity = capacity_entries * entry_bytes;
  const std::size_t total_adds = streams * adds;
  const core::ReplayBufferConfig budget{.capacity_bytes = capacity, .policy = policy,
                                        .seed = 0xf1ee7ULL};

  // One step of device stream `w`: content and label are functions of (w, i)
  // only, so det and concurrent modes replay the exact same per-stream work.
  const auto stream_add = [&](auto& store, std::size_t w, std::size_t i) {
    const double density = 0.1 + 0.02 * static_cast<double>(w % 5);
    (void)store.add(random_raster(T, C, density, (w << 24) | i),
                    static_cast<std::int32_t>((w * 7 + i) % 10));
  };

  ResultTable table({"mode", "streams", "shards", "shard_by", "policy", "adds",
                     "entries", "evictions", "memory_bytes", "capacity_bytes",
                     "wall_ms", "adds_per_sec", "checksum", "rep"});
  const auto add_row = [&](const std::string& mode, std::size_t shards,
                           const core::ShardedReplayEngine& eng, double wall_ms,
                           std::uint64_t checksum, std::size_t rep) {
    table.add_row();
    table.push(mode);
    table.push(static_cast<long long>(streams));
    table.push(static_cast<long long>(shards));
    table.push(std::string(core::to_string(shard_by)));
    table.push(std::string(core::to_string(policy)));
    table.push(static_cast<long long>(total_adds));
    table.push(static_cast<long long>(eng.size()));
    table.push(static_cast<long long>(eng.evictions()));
    table.push(static_cast<long long>(eng.memory_bytes()));
    table.push(static_cast<long long>(eng.capacity_bytes()));
    table.push(format_double(wall_ms, 3));
    table.push(format_double(static_cast<double>(total_adds) * 1e3 / wall_ms, 1));
    table.push(std::to_string(checksum));  // uint64 — don't squeeze into long long
    table.push(static_cast<long long>(rep));
  };

  bool failed = false;

  // -- det: round-robin interleaving on one thread, rep-parity checked ------
  for (const std::size_t shards : shard_sweep) {
    std::uint64_t det_checksum = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::ShardedReplayEngine eng(codec, T, budget, {.shards = shards,
                                                       .shard_by = shard_by});
      Stopwatch watch;
      for (std::size_t i = 0; i < adds; ++i) {
        for (std::size_t w = 0; w < streams; ++w) stream_add(eng, w, i);
      }
      const double wall = watch.elapsed_ms();
      const std::uint64_t checksum = state_checksum(eng.materialize());
      add_row("det", shards, eng, wall, checksum, rep);
      if (rep == 0) {
        det_checksum = checksum;
      } else if (checksum != det_checksum) {
        std::printf("BUG: det rep %zu checksum %llu != rep 0 checksum %llu (shards=%zu)\n",
                    rep, static_cast<unsigned long long>(checksum),
                    static_cast<unsigned long long>(det_checksum), shards);
        failed = true;
      }
      if (eng.stream_seen() != total_adds ||
          eng.size() != eng.stream_seen() - eng.evictions()) {
        std::printf("BUG: det accounting: seen=%zu entries=%zu evictions=%zu\n",
                    eng.stream_seen(), eng.size(), eng.evictions());
        failed = true;
      }
    }
    if (shards == 1) {
      // The refactor's anchor: the identical interleaving into a plain
      // LatentReplayBuffer must land in a bit-identical final state.
      core::LatentReplayBuffer buf(codec, T, budget);
      for (std::size_t i = 0; i < adds; ++i) {
        for (std::size_t w = 0; w < streams; ++w) stream_add(buf, w, i);
      }
      const std::uint64_t reference = state_checksum(buf.materialize());
      if (reference != det_checksum) {
        std::printf("BUG: shards=1 engine checksum %llu != LatentReplayBuffer %llu\n",
                    static_cast<unsigned long long>(det_checksum),
                    static_cast<unsigned long long>(reference));
        failed = true;
      }
    }
  }

  // -- concurrent: one real thread per device stream ------------------------
  for (const std::size_t shards : shard_sweep) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::ShardedReplayEngine eng(codec, T, budget, {.shards = shards,
                                                       .shard_by = shard_by});
      Stopwatch watch;
      run_workers(streams, [&](std::size_t w) {
        Rng draw_rng(0xd0a0ULL + w);
        for (std::size_t i = 0; i < adds; ++i) {
          stream_add(eng, w, i);
          if (i % 32 == 0) {
            // Trainer-shaped read traffic: a small replay draw plus outcome
            // feedback for the drawn entries.
            data::Dataset out;
            const std::vector<std::size_t> drawn = eng.sample_into(4, draw_rng, out);
            for (const std::size_t d : drawn) {
              eng.report_outcome(d, 0.4f + 0.01f * static_cast<float>(w));
            }
          }
        }
      });
      const double wall = watch.elapsed_ms();
      const std::uint64_t checksum = state_checksum(eng.materialize());
      add_row("concurrent", shards, eng, wall, checksum, rep);
      if (eng.stream_seen() != total_adds) {
        std::printf("BUG: concurrent lost adds: seen=%zu expected=%zu (shards=%zu)\n",
                    eng.stream_seen(), total_adds, shards);
        failed = true;
      }
      if (eng.size() != eng.stream_seen() - eng.evictions()) {
        std::printf("BUG: concurrent accounting: entries=%zu seen=%zu evictions=%zu\n",
                    eng.size(), eng.stream_seen(), eng.evictions());
        failed = true;
      }
      if (capacity > 0 && eng.memory_bytes() > capacity) {
        std::printf("BUG: concurrent run broke the byte budget: %zu > %zu\n",
                    eng.memory_bytes(), capacity);
        failed = true;
      }
      std::size_t shard_sum = 0;
      for (std::size_t s = 0; s < eng.num_shards(); ++s) shard_sum += eng.shard(s).size();
      if (shard_sum != eng.size()) {
        std::printf("BUG: shard sizes sum to %zu, global size is %zu\n", shard_sum,
                    eng.size());
        failed = true;
      }
    }
  }

  bench::emit(table, "ext_fleet_replay",
              "Fleet replay engine: N device streams vs one sharded store — det "
              "round-robin parity (+ shards=1 buffer bit-identity) and concurrent "
              "throughput under the byte budget");
  return failed ? 1 : 0;
}
