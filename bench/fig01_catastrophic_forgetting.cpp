// Fig. 1(a): catastrophic forgetting of the baseline network.
//
// The pre-trained SNN (19 classes) is fine-tuned on the 20th class with no
// NCL technique.  The paper's panel shows new-task accuracy rising to ~100%
// while old-task accuracy collapses within a few epochs.  Series printed:
// epoch, old-task Top-1, new-task Top-1.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(30);

  core::NclMethodConfig baseline = core::NclMethodConfig::naive_baseline();
  const core::ClRunResult res = bench::run_method(ctx, baseline, 0, epochs, 1);

  ResultTable table({"epoch", "acc_old_pct", "acc_new_pct"});
  // Epoch 0 row = state right after pre-training (the paper's curves start
  // at the pre-trained level).
  table.row({"pretrained", bench::pct(ctx.scenario.pretrain_accuracy), bench::pct(0.0)});
  for (const auto& row : res.rows) {
    if (row.acc_old < 0.0) continue;
    table.add_row();
    table.push(static_cast<long long>(row.epoch + 1));
    table.push(bench::pct(row.acc_old));
    table.push(bench::pct(row.acc_new));
  }
  bench::emit(table, "fig01_catastrophic_forgetting",
              "Fig 1(a): baseline (no NCL) — old knowledge collapses");

  std::printf("\nSummary: old-task accuracy %s%% -> %s%% while learning the new task to %s%%\n",
              bench::pct(ctx.scenario.pretrain_accuracy).c_str(),
              bench::pct(res.final_acc_old).c_str(), bench::pct(res.final_acc_new).c_str());
  return 0;
}
