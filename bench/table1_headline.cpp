// Headline results table (paper abstract / Sec. V):
//   old-task Top-1 90.43% (Replay4NCL) vs 86.22% (SpikingLR),
//   4.88× latency speedup, 20% latent-memory saving, 36.43% energy saving.
// Reproduced at the paper's headline configuration (LR insertion layer 3)
// on the simulated substrate; absolute accuracies differ (synthetic data),
// the comparison shape is the reproduction target.
#include "common.hpp"

using namespace r4ncl;

int main(int argc, char** argv) {
  bench::BenchContext ctx = bench::make_context(argc, argv);
  const std::size_t epochs = ctx.epochs(40);
  const std::size_t layer = 3;

  const core::ClRunResult sota =
      bench::run_method(ctx, core::bench_spiking_lr(), layer, epochs, 5);
  const core::ClRunResult r4ncl =
      bench::run_method(ctx, core::bench_replay4ncl(), layer, epochs, 5);

  const double speedup = sota.total_latency_ms() / r4ncl.total_latency_ms();
  const double wall_speedup = sota.total_wall_seconds / r4ncl.total_wall_seconds;
  const double energy_saving = 1.0 - r4ncl.total_energy_uj() / sota.total_energy_uj();
  const double memory_saving = 1.0 - static_cast<double>(r4ncl.latent_memory_bytes) /
                                         static_cast<double>(sota.latent_memory_bytes);

  ResultTable table({"metric", "SpikingLR", "Replay4NCL", "paper_reports"});
  table.row({"old-task Top-1 [%]", bench::pct(sota.final_acc_old),
             bench::pct(r4ncl.final_acc_old), "86.22 vs 90.43"});
  table.row({"new-task Top-1 [%]", bench::pct(sota.final_acc_new),
             bench::pct(r4ncl.final_acc_new), "comparable"});
  table.row({"training latency [ms, modelled]", format_double(sota.total_latency_ms(), 1),
             format_double(r4ncl.total_latency_ms(), 1),
             "4.88x speedup"});
  table.row({"latency speedup", "1.00x", bench::ratio(speedup) + "x", "4.88x"});
  table.row({"wall-clock speedup", "1.00x", bench::ratio(wall_speedup) + "x", "(GPU pipeline)"});
  table.row({"latent memory [B]", std::to_string(sota.latent_memory_bytes),
             std::to_string(r4ncl.latent_memory_bytes), "20% saving"});
  table.row({"latent memory saving [%]", "-", bench::pct(memory_saving), "20.00"});
  table.row({"energy [uJ, modelled]", format_double(sota.total_energy_uj(), 1),
             format_double(r4ncl.total_energy_uj(), 1), "36.43% saving"});
  table.row({"energy saving [%]", "-", bench::pct(energy_saving), "36.43"});
  bench::emit(table, "table1_headline", "Headline comparison (LR insertion layer 3)");
  return 0;
}
